// Accuracy explorer: interactive-grade sweep of the ASR accuracy knobs —
// block size and imaging geometry — against the analytic error model.
// Shows how to use the asr:: error-model API to *predict* whether a block
// size meets an accuracy budget before running the kernel, and verifies
// the prediction with a real backprojection against the double reference.
//
// Build & run:  ./build/examples/accuracy_explorer [--ix 192] [--pulses 48]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "asr/error_model.h"
#include "backprojection/kernel.h"
#include "common/rng.h"
#include "common/snr.h"
#include "geometry/grid.h"
#include "geometry/trajectory.h"
#include "sim/collector.h"
#include "sim/scene.h"

namespace {

long arg(int argc, char** argv, const char* key, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], key) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sarbp;
  const Index image = arg(argc, argv, "--ix", 192);
  const Index pulses = arg(argc, argv, "--pulses", 48);

  const geometry::ImageGrid grid(image, image, 0.5);
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  Rng rng(9);
  const auto poses = geometry::circular_orbit(orbit, {}, pulses, rng);

  // Dense random data: every pixel carries signal, so the image SNR tracks
  // the mean phase error the model predicts.
  sim::CollectorParams collector;
  collector.fidelity = sim::CollectionFidelity::kRandom;
  const sim::PhaseHistory history =
      sim::collect(collector, grid, sim::ReflectorScene{}, poses, rng);

  Grid2D<CDouble> reference(image, image);
  const Region all{0, 0, image, image};
  bp::backproject_ref(history, grid, all, 0, pulses, reference);

  const geometry::Vec3 radar = poses.front().recorded_position;
  std::printf("geometry: %.1f km slant range, %.2f m pixels, k = %.1f\n",
              geometry::distance(radar, grid.centre()) / 1000.0,
              grid.spacing(), history.wavenumber());
  std::printf("\n%8s | %18s %18s | %14s\n", "block", "predicted SNR (dB)",
              "measured SNR (dB)", "range err (m)");
  std::printf("------------------------------------------------------------------\n");

  for (Index block : {8, 16, 32, 64, 128}) {
    if (block > image) continue;
    const double predicted = asr::predicted_snr_db(
        grid, radar, history.wavenumber(), block, block);
    const asr::BlockErrorStats err = asr::measure_block_error(
        grid.centre(), radar, grid.spacing(), grid.spacing(), block, block);

    bp::SoaTile tile(image, image);
    bp::backproject_asr_simd(history, grid, all, 0, pulses, block, block,
                             geometry::LoopOrder::kXInner, tile);
    Grid2D<CFloat> img(image, image);
    tile.accumulate_into(img, all);
    const double measured = snr_db(img, reference);

    std::printf("%5lldx%-3lld| %18.1f %18.1f | %14.2e\n",
                static_cast<long long>(block), static_cast<long long>(block),
                predicted, measured, err.max_abs_m);
  }
  std::printf("\nthe prediction covers only the quadratic-approximation error "
              "(worst block, worst pixel): measured SNR sits above it once "
              "that error dominates, falling ~18 dB per block-size doubling "
              "(third-order Taylor remainder). At small blocks the measured "
              "SNR saturates at the single-precision arithmetic floor "
              "(~95 dB), which the model deliberately excludes.\n");
  return 0;
}
