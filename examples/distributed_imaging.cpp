// Distributed imaging: form one image across a simulated multi-node
// cluster (the in-process MPI substitute). Demonstrates the cluster API:
// pulse broadcast, image-dimension-first partitioning (paper §4.2), rank
// backprojection, and tile gather — plus the communication accounting the
// weak-scaling analysis builds on.
//
// Build & run:  ./build/examples/distributed_imaging [--ranks 4]
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cluster/distributed.h"
#include "cluster/torus_model.h"
#include "common/rng.h"
#include "common/snr.h"
#include "geometry/trajectory.h"
#include "sim/collector.h"
#include "sim/scene.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  int ranks = 4;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--ranks") == 0) ranks = std::atoi(argv[i + 1]);
  }

  const Index image = 128;
  const Index pulses = 64;
  const geometry::ImageGrid grid(image, image, 0.5);

  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.066;
  Rng rng(17);
  const auto poses = geometry::circular_orbit(orbit, {}, pulses, rng);

  sim::ClusterSceneParams scene_params;
  const auto scene = sim::make_cluster_scene(grid, scene_params, rng);
  sim::CollectorParams collector;
  const auto history = sim::collect(collector, grid, scene, poses, rng);

  bp::BackprojectOptions options;
  options.threads = 1;  // each rank is one worker; ranks are the parallelism
  options.min_region_edge = 32;

  std::printf("forming a %lldx%lld image from %lld pulses on %d simulated "
              "ranks...\n",
              static_cast<long long>(image), static_cast<long long>(image),
              static_cast<long long>(pulses), ranks);

  cluster::DistributedReport report;
  const Grid2D<CFloat> distributed = cluster::distributed_backprojection(
      ranks, history, grid, options, &report);

  // Single-rank baseline for verification.
  const Grid2D<CFloat> single =
      cluster::distributed_backprojection(1, history, grid, options);
  std::printf("multi-rank vs single-rank image parity: %.1f dB SNR\n",
              snr_db(distributed, single));

  std::printf("\ncommunication accounting:\n");
  std::printf("  pulse broadcast : %.2f MB total\n",
              report.broadcast_bytes / 1e6);
  std::printf("  tile gather     : %.2f MB\n", report.gather_bytes / 1e6);
  std::printf("  critical path   : %.3f s (slowest rank)\n",
              report.max_rank_compute_s);

  // What the interconnect model says this costs at scale.
  const cluster::InterconnectModel net;
  const auto volumes = cluster::communication_volumes(
      ranks, image, pulses, history.samples_per_pulse(), 31, 25, 25);
  std::printf("\n3D-torus model (2 GB/s channels), %d nodes:\n", ranks);
  std::printf("  per-node pulse scatter : %.3f ms\n",
              1e3 * net.mpi_seconds(volumes.pulse_scatter_bytes));
  std::printf("  per-node boundary exch : %.3f ms\n",
              1e3 * net.mpi_seconds(volumes.boundary_bytes));
  std::printf("  average hop count      : %.2f\n",
              net.average_hops(ranks));
  return 0;
}
