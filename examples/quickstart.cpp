// Quickstart: simulate a spotlight SAR collection over a few point
// reflectors, form the image with ASR backprojection, and render it as
// ASCII art. Shows the minimal end-to-end path through the public API:
//
//   ImageGrid -> circular_orbit -> ReflectorScene -> collect
//            -> Backprojector::form_image
//
// Build & run:  ./build/examples/quickstart
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>

#include "backprojection/backprojector.h"
#include "common/rng.h"
#include "geometry/grid.h"
#include "geometry/trajectory.h"
#include "sim/collector.h"
#include "sim/scene.h"

int main() {
  using namespace sarbp;

  // 1. Imaging geometry: a 96 x 96 pixel grid at 0.5 m spacing, X-band
  //    radar orbiting at 40 km standoff.
  const geometry::ImageGrid grid(96, 96, 0.5);
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.066;  // enough aperture to resolve 0.5 m
  orbit.prf_hz = 400.0;

  // 2. A scene: three reflectors forming an "L".
  sim::ReflectorScene scene;
  for (auto [px, py] : {std::pair{24, 24}, {24, 72}, {72, 24}}) {
    sim::Reflector r;
    r.position = grid.position(px, py);
    r.amplitude = 2.0;
    scene.add(r);
  }

  // 3. Collect 192 pulses along a (slightly perturbed) orbit and
  //    range-compress them.
  Rng rng(1);
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.05;
  const auto poses = geometry::circular_orbit(orbit, errors, 192, rng);
  sim::CollectorParams collector;
  collector.fidelity = sim::CollectionFidelity::kIdealResponse;
  const sim::PhaseHistory history =
      sim::collect(collector, grid, scene, poses, rng);

  // 4. Backproject (ASR + SIMD + OpenMP by default).
  const bp::Backprojector backprojector(grid, {});
  const Grid2D<CFloat> image = backprojector.form_image(history);

  // 5. Render: 48 x 24 ASCII downsample of the magnitude image.
  std::printf("reconstructed scene (should show three bright points):\n\n");
  const char* shades = " .:-=+*#%@";
  float peak = 0.0f;
  for (const auto& v : image.flat()) peak = std::max(peak, std::abs(v));
  for (Index row = 0; row < 24; ++row) {
    for (Index col = 0; col < 48; ++col) {
      float mag = 0.0f;
      for (Index sy = 0; sy < 4; ++sy) {
        for (Index sx = 0; sx < 2; ++sx) {
          mag = std::max(mag, std::abs(image.at(col * 2 + sx, row * 4 + sy)));
        }
      }
      const int level = std::min<int>(
          9, static_cast<int>(10.0f * std::sqrt(mag / peak)));
      std::putchar(shades[level]);
    }
    std::putchar('\n');
  }

  // 6. Report the focused peaks.
  std::printf("\npeak magnitude %.1f; reflectors at pixels (24,24), (24,72), "
              "(72,24)\n",
              peak);
  for (auto [px, py] : {std::pair{24, 24}, {24, 72}, {72, 24}}) {
    std::printf("  |image(%d, %d)| = %.1f\n", static_cast<int>(px),
                static_cast<int>(py), std::abs(image.at(px, py)));
  }
  return 0;
}
