// Ultrasound B-mode imaging with the ASR beamformer — the paper's §7
// cross-domain application. Simulates a plane-wave acquisition of a cyst
// phantom (speckle background + anechoic hole + bright point targets),
// beamforms it with ASR delay-and-sum, and renders the log-compressed
// envelope as ASCII art.
//
// Build & run:  ./build/examples/ultrasound_imaging
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "beamform/beamformer.h"
#include "beamform/simulator.h"
#include "common/rng.h"

int main() {
  using namespace sarbp;
  using namespace sarbp::beamform;

  Transducer transducer;
  transducer.elements = 64;
  ScanRegion region;
  region.width = 160;
  region.depth = 160;

  // Cyst phantom: dense speckle, a 3 mm anechoic cyst, two wire targets.
  Rng rng(33);
  std::vector<Scatterer> phantom = random_phantom(region, 2500, rng);
  const double cyst_x = region.pixel_x(100);
  const double cyst_z = region.pixel_z(80);
  std::erase_if(phantom, [&](const Scatterer& s) {
    return std::hypot(s.x_m - cyst_x, s.z_m - cyst_z) < 3e-3;
  });
  for (auto [px, pz] : {std::pair{40, 40}, {40, 120}}) {
    Scatterer wire;
    wire.x_m = region.pixel_x(px);
    wire.z_m = region.pixel_z(pz);
    wire.amplitude = 25.0;
    phantom.push_back(wire);
  }

  std::printf("simulating %zu scatterers into %d channels...\n",
              phantom.size(), transducer.elements);
  const auto data = simulate_channels(transducer, region, phantom, 0.02);

  std::printf("beamforming %lldx%lld pixels with ASR delay-and-sum...\n",
              static_cast<long long>(region.width),
              static_cast<long long>(region.depth));
  const auto image = beamform_asr(transducer, region, data);

  // Log-compressed envelope over a 40 dB display range.
  float peak = 0.0f;
  for (const auto& v : image.flat()) peak = std::max(peak, std::abs(v));
  const char* shades = " .:-=+*#%@";
  std::printf("\nB-mode (x lateral, z down; bright wires at (40,40) and "
              "(40,120); dark cyst at (100,80)):\n\n");
  for (Index z = 0; z < region.depth; z += 4) {
    for (Index x = 0; x < region.width; x += 2) {
      float mag = 0.0f;
      for (Index sz = 0; sz < 4; ++sz) {
        for (Index sx = 0; sx < 2; ++sx) {
          mag = std::max(mag, std::abs(image.at(x + sx, z + sz)));
        }
      }
      const double db = 20.0 * std::log10(std::max(1e-6f, mag / peak));
      const int level =
          std::clamp(static_cast<int>((db + 40.0) / 40.0 * 9.99), 0, 9);
      std::putchar(shades[level]);
    }
    std::putchar('\n');
  }
  std::printf("\n(the cyst shows as a dark hole in the speckle; the wires as "
              "bright points — the classic image-quality phantom)\n");
  return 0;
}
