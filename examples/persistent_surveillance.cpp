// Persistent surveillance (the paper's motivating application, Fig. 2):
// a streaming pipeline that forms one image per pulse batch, registers it
// to a reference, runs coherent change detection, and reports CFAR
// detections — while a target appears and later disappears in the scene.
//
// Demonstrates: SurveillancePipeline, repeat-pass collection geometry,
// incremental accumulation, and the threaded stage structure with bounded
// queues (compute overlapped with ingest).
//
// Build & run:  ./build/examples/persistent_surveillance
#include <cstdio>

#include "common/rng.h"
#include "geometry/trajectory.h"
#include "pipeline/pipeline.h"
#include "sim/collector.h"
#include "sim/scene.h"

int main() {
  using namespace sarbp;
  using namespace sarbp::pipeline;

  const Index image = 128;
  const Index pulses_per_frame = 96;
  const int frames = 5;

  const geometry::ImageGrid grid(image, image, 0.5);

  // Scene: dense coherent clutter + a vehicle-like target that parks at
  // t = 1.5 s and leaves at t = 3.5 s (present in frames 2 and 3).
  Rng rng(42);
  sim::ReflectorScene scene = sim::make_clutter_field(grid, 4, 1.0, rng);
  sim::Reflector target;
  target.position = grid.position(88, 40);
  target.amplitude = 8.0;
  target.appear_s = 1.5;
  target.disappear_s = 3.5;
  scene.add(target);
  std::printf("scene: %zu clutter reflectors + 1 transient target at pixel "
              "(88, 40), present in frames 2-3\n",
              scene.size() - 1);

  // Repeat-pass orbit: each frame revisits the same aspect angles (one
  // pass per second), which keeps the clutter coherent between frames.
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.066;
  orbit.prf_hz = 400.0;
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.03;

  PipelineConfig config;
  config.accumulation_factor = 0;   // one batch per frame (repeat-pass CCD)
  config.registration.patch = 31;
  config.ccd.window = 9;
  config.cfar.window = 17;
  config.cfar.guard = 5;
  config.cfar.candidate_correlation = 0.75;
  config.cfar.scale = 2.5;
  SurveillancePipeline pipeline(grid, config);

  sim::CollectorParams collector;
  for (int f = 0; f < frames; ++f) {
    Rng pass_rng(100 + static_cast<std::uint64_t>(f));
    auto poses =
        geometry::circular_orbit(orbit, errors, pulses_per_frame, pass_rng);
    for (auto& pose : poses) pose.time_s += f;  // pass f flies at t ~ f s
    Rng col_rng(200 + static_cast<std::uint64_t>(f));
    pipeline.push_pulses(sim::collect(collector, grid, scene, poses, col_rng));
  }
  pipeline.close_input();

  std::printf("\n%-6s %-10s %-12s %-36s\n", "frame", "role", "detections",
              "strongest detection");
  std::printf("--------------------------------------------------------------\n");
  while (auto frame = pipeline.pop_result()) {
    if (frame->is_reference) {
      std::printf("%-6lld %-10s %-12s %-36s\n",
                  static_cast<long long>(frame->frame), "reference", "-", "-");
      continue;
    }
    const Detection* best = nullptr;
    for (const auto& d : frame->cfar.detections) {
      if (best == nullptr || d.statistic > best->statistic) best = &d;
    }
    char detail[64] = "-";
    if (best != nullptr) {
      std::snprintf(detail, sizeof(detail),
                    "pixel (%lld, %lld), stat %.1f, corr %.2f",
                    static_cast<long long>(best->x),
                    static_cast<long long>(best->y), best->statistic,
                    best->correlation);
    }
    std::printf("%-6lld %-10s %-12zu %-36s\n",
                static_cast<long long>(frame->frame), "surveil",
                frame->cfar.detections.size(), detail);
  }
  std::printf("\nexpected: strong detections near (88, 40) in frames 2 and 3 "
              "(target present vs target-free reference); frames 1 and 4 "
              "match the reference and should stay near-quiet\n");
  return 0;
}
