// Persistent surveillance (the paper's motivating application, Fig. 2),
// now on the streaming sliding-aperture subsystem (DESIGN.md §13): pulses
// arrive continuously, the live image tracks the last W sub-aperture
// chunks by incremental add/subtract updates, and a transient target
// brightens as its chunks enter the window and fades as they slide out.
//
// Demonstrates: StreamSession ingestion, sliding-window snapshots,
// per-update deadlines, periodic re-anchoring, and the shared
// SubApertureCache (a second pass over the same scene hits it).
//
// Build & run:  ./build/examples/persistent_surveillance
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "geometry/trajectory.h"
#include "service/service.h"
#include "sim/collector.h"
#include "sim/scene.h"
#include "streaming/streaming.h"
#include "streaming/subaperture_cache.h"

int main() {
  using namespace sarbp;
  using namespace std::chrono_literals;

  const Index image = 96;
  const Index chunk_pulses = 16;
  const Index window_chunks = 4;
  const int chunks = 12;

  const geometry::ImageGrid grid(image, image, 0.5);

  // Scene: dense coherent clutter + a vehicle-like target that parks at
  // t = 1.0 s and leaves at t = 2.0 s — roughly chunks 5..9 of the pass.
  Rng rng(42);
  sim::ReflectorScene scene = sim::make_clutter_field(grid, 4, 1.0, rng);
  const Index tx = 66;
  const Index ty = 30;
  sim::Reflector target;
  target.position = grid.position(tx, ty);
  target.amplitude = 12.0;
  target.appear_s = 1.0;
  target.disappear_s = 2.0;
  scene.add(target);
  std::printf("scene: %zu clutter reflectors + 1 transient target at pixel "
              "(%lld, %lld), parked t = 1..2 s\n",
              scene.size() - 1, static_cast<long long>(tx),
              static_cast<long long>(ty));

  // One continuous pass; the %.0f Hz PRF makes each %lld-pulse chunk
  // cover a fixed slice of slow time.
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.02;
  orbit.prf_hz = 64.0;
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.03;
  Rng pass_rng(7);
  const auto poses = geometry::circular_orbit(
      orbit, errors, chunk_pulses * static_cast<Index>(chunks), pass_rng);
  sim::CollectorParams collector;
  Rng col_rng(11);
  const sim::PhaseHistory history =
      sim::collect(collector, grid, scene, poses, col_rng);

  // The serving stack underneath: the session's updates are ordinary
  // (custom) jobs with fair queueing, deadlines, and cancellation.
  service::ServiceConfig sc;
  sc.workers = 2;
  service::ImageFormationService srv(sc);

  streaming::SubApertureCache cache;

  streaming::StreamConfig config;
  config.grid = grid;
  config.asr_block_w = config.asr_block_h = 32;
  config.chunk_pulses = chunk_pulses;
  config.window_chunks = window_chunks;
  config.reanchor_interval = 6;    // bound the add/subtract drift
  config.update_deadline = 10s;    // a missed deadline drops that update
  config.cache = &cache;
  streaming::StreamSession session = streaming::open_stream(srv, config);

  std::printf("\nstreaming: %lld-pulse chunks, window = last %lld chunks, "
              "re-anchor every %d updates\n",
              static_cast<long long>(chunk_pulses),
              static_cast<long long>(window_chunks), config.reanchor_interval);
  std::printf("\n%6s %8s %8s %10s %14s %s\n", "update", "window", "anchor",
              "latency", "target |px|", "target");
  std::printf("----------------------------------------------------------------\n");

  // Continuous source: push pulse-by-pulse; every filled chunk becomes
  // one incremental update.
  Index pulse = 0;
  for (int c = 0; c < chunks; ++c) {
    sim::PhaseHistory delta(chunk_pulses, history.samples_per_pulse(),
                            history.bin_spacing(), history.wavenumber());
    for (Index p = 0; p < chunk_pulses; ++p, ++pulse) {
      const auto src = history.pulse(pulse);
      std::copy(src.begin(), src.end(), delta.pulse(p).begin());
      delta.meta(p) = history.meta(pulse);
    }
    session.push(delta);
    session.wait_for_update(static_cast<std::uint64_t>(c) + 1, 120s);
    const auto snap = session.latest();
    if (snap == nullptr) continue;  // dropped (deadline) — image unchanged
    const double mag = std::abs(snap->image.at(tx, ty));
    double mean = 0.0;
    for (const CFloat& v : snap->image.flat()) mean += std::abs(v);
    mean /= static_cast<double>(snap->image.flat().size());
    const bool visible = mag > 8.0 * mean;
    std::printf("%6llu %8lld %8s %8.1fms %14.1f %s\n",
                static_cast<unsigned long long>(snap->seq),
                static_cast<long long>(snap->window_pulses),
                snap->reanchored ? "yes" : "-",
                snap->latency_seconds * 1e3, mag, visible ? "VISIBLE" : "-");
  }
  session.close();

  const streaming::StreamStats stats = session.stats();
  std::printf("\nsession: %llu updates (%llu re-anchors), %llu sweep ops, "
              "%llu cache hits\n",
              static_cast<unsigned long long>(stats.updates_completed),
              static_cast<unsigned long long>(stats.reanchors),
              static_cast<unsigned long long>(stats.backprojections),
              static_cast<unsigned long long>(stats.cache_hits));

  // Second analyst on the same scene: the shared sub-aperture cache
  // already holds every chunk partial, so this session re-sweeps nothing
  // except its re-anchors.
  streaming::StreamSession replay = streaming::open_stream(srv, config);
  for (int c = 0; c < chunks; ++c) {
    sim::PhaseHistory delta(chunk_pulses, history.samples_per_pulse(),
                            history.bin_spacing(), history.wavenumber());
    for (Index p = 0; p < chunk_pulses; ++p) {
      const Index q = static_cast<Index>(c) * chunk_pulses + p;
      const auto src = history.pulse(q);
      std::copy(src.begin(), src.end(), delta.pulse(p).begin());
      delta.meta(p) = history.meta(q);
    }
    replay.push(delta);
  }
  replay.wait_idle(120s);
  const streaming::StreamStats warm = replay.stats();
  replay.close();
  std::printf("replay session: %llu updates, %llu cache hits, %llu sweep ops "
              "(vs %llu cold)\n",
              static_cast<unsigned long long>(warm.updates_completed),
              static_cast<unsigned long long>(warm.cache_hits),
              static_cast<unsigned long long>(warm.backprojections),
              static_cast<unsigned long long>(stats.backprojections));

  std::printf("\nexpected: the target column jumps while chunks 5-9 are in "
              "the window and fades once they slide out; the replay session "
              "sweeps only its re-anchors\n");
  return 0;
}
