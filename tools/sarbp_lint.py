#!/usr/bin/env python3
"""Repo lint for the concurrency rules that compilers cannot check.

Rules (names are what `// lint: allow(<rule>)` suppressions refer to):

  order-comment   Every explicit std::memory_order_* argument must carry a
                  `// order:` justification on the same line or within the
                  three lines above it. The justification is the reviewable
                  artifact: it states WHY the chosen ordering is sufficient.
                  Applies to src/.

  raw-mutex       std::mutex / std::condition_variable and their lock
                  helpers may be spelled only in
                  src/common/thread_annotations.h. Everything else uses the
                  annotated sarbp::Mutex / MutexLock / CondVar wrappers so
                  Clang's -Wthread-safety analysis sees every acquisition.
                  Applies to src/.

  sleep-poll      No std::this_thread::sleep_for in src/: waiting for
                  another thread's state change must use a condition
                  variable (or a timed queue op), not a poll loop. Pure
                  pacing sleeps need an explicit suppression explaining why
                  nothing could notify them.

  isa-ifdef       No raw `#ifdef __AVX2__` / `__AVX512*` conditionals in
                  src/ outside the per-ISA kernel translation units
                  (src/backprojection/kernel_asr_avx2.cpp, _avx512.cpp).
                  ISA selection is a *runtime* decision routed through
                  bp::asr_resolve_isa / common/cpu.h; compile-time macro
                  branches reintroduce the one-binary-one-width builds the
                  dispatcher exists to kill. Capability *reporting* (cpu.cpp
                  telling you what the build's baseline was) carries
                  explicit suppressions.

  queue-result    In src/service, src/cluster, and src/streaming,
                  BoundedQueue push/pop family results and Communicator
                  recv-family results must not be discarded — neither as a
                  bare expression statement nor via a (void) cast.
                  Admission control, the close/drain protocol, and the
                  shard gather protocol live entirely in those return
                  values: a dropped recv is a reply (or abort notification)
                  silently thrown away. Streaming rides the same serving
                  queues (stream updates are custom service jobs), so a
                  dropped result there is a silently lost update.

  lock-level      Every `sarbp::Mutex` declaration in src/ must declare its
                  rank in the repo-wide lock hierarchy with
                  `SARBP_LOCK_LEVEL("name")`, the name must exist in
                  tools/lock_hierarchy.py LEVELS, and any
                  SARBP_ACQUIRED_BEFORE/AFTER edge between mutexes declared
                  in the same file must agree with the registry's
                  topological order. A deliberately unleveled mutex (e.g. a
                  test-only fixture lock) carries
                  `// lint: allow(lock-level)` with a rationale.

Suppression syntax (same line, or alone on the line directly above):

    // lint: allow(<rule>) -- <rationale>

The rationale is mandatory; a suppression without `--` text is itself a
finding. Run with --selftest to exercise the rules against embedded
fixtures.

Exit status: 0 clean, 1 findings, 2 usage/self-test failure.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import lock_hierarchy  # noqa: E402  (the repo lock-level registry)

ANNOTATION_HEADER = pathlib.Path("src/common/thread_annotations.h")

MEMORY_ORDER_RE = re.compile(r"\bstd::memory_order_[a-z_]+\b")
ORDER_COMMENT_RE = re.compile(r"//\s*order:")
ORDER_LOOKBACK = 3   # lines above the statement that may hold the comment
ORDER_WALK_CAP = 12  # max continuation/comment lines walked upward

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)

SLEEP_RE = re.compile(r"\bsleep_for\s*\(")

# A queue op whose value is dropped: either a bare expression statement
# (`q.push(x);` / `tokens_->try_push(...)`) or an explicit (void) cast.
QUEUE_DISCARD_RE = re.compile(
    r"(?:^\s*|\(\s*void\s*\)\s*)[A-Za-z_][\w]*(?:\.|->)"
    r"(?:push|try_push|try_push_for|pop|try_pop|try_pop_for)\s*\("
)

# A gather-mailbox receive whose payload is dropped. recv/recv_vec/
# recv_value may carry template arguments (`recv_value<int>(...)`).
MAILBOX_DISCARD_RE = re.compile(
    r"(?:^\s*|\(\s*void\s*\)\s*)[A-Za-z_][\w]*(?:\.|->)"
    r"(?:recv_value|recv_vec|recv)\s*(?:<[^;(]*>)?\s*\("
)

# A compile-time vector-ISA conditional: `__AVX2__` / `__AVX512F__` etc.
# in any preprocessor or defined() context. The per-ISA kernel TUs are the
# only places allowed to assume a width at compile time.
ISA_IFDEF_RE = re.compile(r"\b__AVX(?:2|512[A-Z]*)__\b")

# The per-ISA kernel TUs: each is compiled with its own explicit -march,
# so compile-time ISA macros are their raison d'être.
ISA_TU_ALLOWLIST = (
    "src/backprojection/kernel_asr_avx2.cpp",
    "src/backprojection/kernel_asr_avx512.cpp",
)

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)\s*(--\s*\S.*)?")

# A value-type sarbp::Mutex declaration: `Mutex name`, optionally mutable/
# static, optionally followed by SARBP_ACQUIRED_* attributes and a brace
# initializer spanning lines. References (`Mutex&`), pointers (`Mutex*`),
# and MutexLock never match.
MUTEX_DECL_RE = re.compile(
    r"\b(?:sarbp::)?Mutex\s+([A-Za-z_]\w*)\s*(?=[;{]|SARBP_|$)")
LOCK_LEVEL_IN_DECL_RE = re.compile(r'SARBP_LOCK_LEVEL\(\s*"([^"]+)"\s*\)')
ACQ_EDGE_RE = re.compile(r"SARBP_ACQUIRED_(BEFORE|AFTER)\(([^)]*)\)")
MUTEX_DECL_JOIN_CAP = 8  # max lines a single declaration may span

RULES = ("order-comment", "raw-mutex", "sleep-poll", "isa-ifdef",
         "queue-result", "lock-level")


@dataclass
class Finding:
    path: pathlib.Path
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings(line: str) -> str:
    """Blanks out string/char literals so their contents never match."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def code_part(line: str) -> str:
    """The line with literals blanked and any // comment removed."""
    stripped = strip_strings(line)
    cut = stripped.find("//")
    return stripped if cut < 0 else stripped[:cut]


def order_comment_near(lines: list[str], idx: int) -> bool:
    """True when a `// order:` comment covers the statement holding line idx.

    Statements span lines and are frequently preceded by (or interleaved
    with) multi-line comments, so the search walks upward from `idx`
    through continuation lines (code not ended by `;`, `{`, or `}`) and
    pure comment lines to the statement's first line, then looks a further
    ORDER_LOOKBACK lines above it. The walk is capped to keep a distant,
    unrelated comment from justifying anything.
    """
    start = idx
    for _ in range(ORDER_WALK_CAP):
        if start == 0:
            break
        prev = lines[start - 1]
        prev_code = code_part(prev).strip()
        is_comment_only = not prev_code and "//" in prev
        is_continuation = bool(prev_code) and prev_code[-1] not in ";{}"
        if is_comment_only or is_continuation:
            start -= 1
        else:
            break
    return any(
        ORDER_COMMENT_RE.search(lines[j])
        for j in range(max(0, start - ORDER_LOOKBACK), idx + 1)
    )


def statement_start(lines: list[str], idx: int) -> bool:
    """True when line idx begins a statement (not a continuation).

    A bare `comm.recv_vec<T>(...)` on a continuation line is the tail of an
    assignment like `const auto payload =` — the value IS consumed, so the
    discard rules must not fire on it.
    """
    if idx == 0:
        return True
    prev = code_part(lines[idx - 1]).strip()
    return not prev or prev[-1] in ";{}"


def suppressions_for(lines: list[str], idx: int) -> tuple[set[str], list[Finding] | None]:
    """Rules suppressed at line index `idx` (same line or the line above)."""
    allowed: set[str] = set()
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = ALLOW_RE.search(lines[probe])
        if not m:
            continue
        if not m.group(2):
            # A suppression with no rationale is reported at its own line.
            return allowed, [
                Finding(
                    pathlib.Path("?"), probe + 1, "bad-suppression",
                    "lint suppression is missing its `-- rationale` text",
                )
            ]
        allowed.add(m.group(1))
    return allowed, None


def join_declaration(lines: list[str], idx: int) -> str:
    """The code text of the declaration statement starting at line idx.

    Mutex declarations may spread the SARBP_ACQUIRED_* attributes and the
    SARBP_LOCK_LEVEL initializer over several lines; the join runs to the
    terminating `;` (capped, so a runaway match cannot swallow the file).
    """
    parts: list[str] = []
    for j in range(idx, min(idx + MUTEX_DECL_JOIN_CAP, len(lines))):
        # Cut the // comment (located on string-blanked text so a // inside
        # a literal cannot truncate) but KEEP string contents: the level
        # name lives inside the SARBP_LOCK_LEVEL("...") literal.
        cut = strip_strings(lines[j]).find("//")
        code = lines[j] if cut < 0 else lines[j][:cut]
        parts.append(code)
        if ";" in strip_strings(code):
            break
    return " ".join(parts)


def scan_lock_levels(rel: pathlib.Path, lines: list[str]) -> list[Finding]:
    """The `lock-level` rule: leveled declarations, known names, sane edges.

    Edge direction is validated only between mutexes declared in the same
    file (the attribute argument is resolvable there); cross-module edges
    live in lock_hierarchy.EDGES and the runtime detector.
    """
    findings: list[Finding] = []
    declared: dict[str, tuple[str | None, int]] = {}  # member -> (level, line)
    edges: list[tuple[str, str, str, int]] = []  # (member, kind, target, line)

    for i, raw in enumerate(lines):
        code = code_part(raw)
        m = MUTEX_DECL_RE.search(code)
        if not m:
            continue
        allowed, _bad = suppressions_for(lines, i)
        stmt = join_declaration(lines, i)
        level_m = LOCK_LEVEL_IN_DECL_RE.search(stmt)
        level = level_m.group(1) if level_m else None
        declared[m.group(1)] = (level, i + 1)
        for edge_m in ACQ_EDGE_RE.finditer(stmt):
            for target in edge_m.group(2).split(","):
                target = target.strip()
                if target:
                    edges.append((m.group(1), edge_m.group(1), target, i + 1))
        if "lock-level" in allowed:
            continue
        if level is None:
            findings.append(Finding(
                rel, i + 1, "lock-level",
                f"Mutex `{m.group(1)}` declares no SARBP_LOCK_LEVEL; pick "
                "its slot in tools/lock_hierarchy.py (or suppress with a "
                "rationale for a deliberately unleveled mutex)"))
        elif lock_hierarchy.level_index(level) < 0:
            findings.append(Finding(
                rel, i + 1, "lock-level",
                f'lock level "{level}" is not in tools/lock_hierarchy.py '
                "LEVELS; register it there first"))

    for member, kind, target, line in edges:
        self_level = declared.get(member, (None, 0))[0]
        target_level = declared.get(target, (None, 0))[0]
        if self_level is None or target_level is None:
            continue  # unresolvable here; the registry covers it
        self_rank = lock_hierarchy.level_index(self_level)
        target_rank = lock_hierarchy.level_index(target_level)
        if self_rank < 0 or target_rank < 0:
            continue  # unknown level already reported above
        ok = self_rank < target_rank if kind == "BEFORE" \
            else self_rank > target_rank
        if not ok:
            findings.append(Finding(
                rel, line, "lock-level",
                f"SARBP_ACQUIRED_{kind}({target}) contradicts the "
                f'registry order: "{self_level}" (rank {self_rank}) vs '
                f'"{target_level}" (rank {target_rank}) in '
                "tools/lock_hierarchy.py"))
    return findings


def scan_file(path: pathlib.Path, text: str) -> list[Finding]:
    rel = path
    in_queue_scope = ("src/service" in path.as_posix() or
                      "src/cluster" in path.as_posix() or
                      "src/streaming" in path.as_posix())
    in_src = path.as_posix().startswith("src/")
    is_annotation_header = path.as_posix() == ANNOTATION_HEADER.as_posix()

    lines = text.splitlines()
    findings: list[Finding] = []
    if in_src and not is_annotation_header:
        findings.extend(scan_lock_levels(rel, lines))

    for i, raw in enumerate(lines):
        code = code_part(raw)
        allowed, bad = suppressions_for(lines, i)
        if bad:
            for f in bad:
                f.path = rel
                findings.append(f)

        if in_src and MEMORY_ORDER_RE.search(code):
            if not order_comment_near(lines, i) and "order-comment" not in allowed:
                findings.append(Finding(
                    rel, i + 1, "order-comment",
                    "explicit memory_order without a `// order:` "
                    "justification nearby"))

        if in_src and not is_annotation_header and RAW_MUTEX_RE.search(code):
            if "raw-mutex" not in allowed:
                findings.append(Finding(
                    rel, i + 1, "raw-mutex",
                    "raw std synchronization primitive; use the annotated "
                    "sarbp::Mutex/MutexLock/CondVar wrappers "
                    "(src/common/thread_annotations.h)"))

        if (in_src and path.as_posix() not in ISA_TU_ALLOWLIST
                and ISA_IFDEF_RE.search(code)):
            if "isa-ifdef" not in allowed:
                findings.append(Finding(
                    rel, i + 1, "isa-ifdef",
                    "compile-time vector-ISA macro outside the per-ISA "
                    "kernel TUs; route ISA selection through "
                    "bp::asr_resolve_isa / common/cpu.h at runtime"))

        if in_src and SLEEP_RE.search(code):
            if "sleep-poll" not in allowed:
                findings.append(Finding(
                    rel, i + 1, "sleep-poll",
                    "sleep_for in src/: wait on a condition variable "
                    "instead of polling (suppress only for pure pacing)"))

        if in_queue_scope and QUEUE_DISCARD_RE.search(code):
            if "queue-result" not in allowed:
                findings.append(Finding(
                    rel, i + 1, "queue-result",
                    "BoundedQueue result discarded; the admission/close "
                    "protocol lives in that return value"))

        if (in_queue_scope and MAILBOX_DISCARD_RE.search(code)
                and statement_start(lines, i)):
            if "queue-result" not in allowed:
                findings.append(Finding(
                    rel, i + 1, "queue-result",
                    "mailbox recv result discarded; a dropped reply breaks "
                    "the shard gather protocol (consume or bind it)"))

    return findings


def iter_sources(root: pathlib.Path) -> list[pathlib.Path]:
    out: list[pathlib.Path] = []
    for sub in ("src",):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".h", ".hpp", ".cpp", ".cc", ".cxx"):
                out.append(path.relative_to(root))
    return out


def run(root: pathlib.Path) -> int:
    findings: list[Finding] = []
    for rel in iter_sources(root):
        text = (root / rel).read_text(encoding="utf-8", errors="replace")
        findings.extend(scan_file(rel, text))
    for f in findings:
        print(f.render())
    if findings:
        print(f"sarbp_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"sarbp_lint: clean ({len(iter_sources(root))} files)")
    return 0


# --------------------------------------------------------------------------
# Self-test fixtures: (virtual path, source, expected rule names).
SELFTEST_CASES = [
    ("src/a.cpp",
     "x.load(std::memory_order_relaxed);\n",
     ["order-comment"]),
    ("src/a.cpp",
     "// order: relaxed — pure counter\nx.load(std::memory_order_relaxed);\n",
     []),
    ("src/a.cpp",
     "// order: above\n//\n//\nx.load(std::memory_order_acquire);\n",
     []),  # within 3-line lookback
    ("src/a.cpp",
     "y = 1;\n// order: spans the statement\nwhile (a &&\n"
     "       x.compare_exchange_weak(a, b, std::memory_order_relaxed)) {\n}\n",
     []),  # continuation lines walk back to the statement head
    ("src/a.cpp",
     "foo();\nbar();\nbaz();\nqux();\nx.load(std::memory_order_acquire);\n",
     ["order-comment"]),  # unrelated code above justifies nothing
    ("src/a.cpp",
     'printf("std::memory_order_relaxed");\n',
     []),  # literals never match
    ("src/a.cpp",
     "x.load(std::memory_order_relaxed);  "
     "// lint: allow(order-comment) -- test\n",
     []),
    ("src/a.cpp",
     "x.load(std::memory_order_relaxed);  // lint: allow(order-comment)\n",
     ["bad-suppression", "order-comment"]),
    ("src/b.cpp", "std::mutex m;\n", ["raw-mutex"]),
    ("src/b.cpp", "std::scoped_lock lock(m);\n", ["raw-mutex"]),
    ("src/common/thread_annotations.h", "std::mutex m_;\n", []),
    ("tests/b.cpp", "std::mutex m;\n", []),  # tests are out of scope
    ("src/c.cpp", "std::this_thread::sleep_for(1ms);\n", ["sleep-poll"]),
    ("src/c.cpp",
     "// lint: allow(sleep-poll) -- pacing\n"
     "std::this_thread::sleep_for(1ms);\n",
     []),
    ("src/d.cpp", "#ifdef __AVX2__\n#endif\n", ["isa-ifdef"]),
    ("src/d.cpp", "#if defined(__AVX512F__) && defined(__AVX512VL__)\n",
     ["isa-ifdef"]),
    ("src/backprojection/kernel_asr_avx2.cpp", "#ifdef __AVX2__\n", []),
    ("src/backprojection/kernel_asr_avx512.cpp", "#ifdef __AVX512F__\n", []),
    ("src/d.cpp",
     "#ifdef __AVX2__  // lint: allow(isa-ifdef) -- baseline reporting\n",
     []),
    ("tests/d.cpp", "#ifdef __AVX2__\n", []),  # tests are out of scope
    ("src/service/s.cpp", "queue_.push(std::move(x));\n", ["queue-result"]),
    ("src/service/s.cpp", "(void)queue_.try_pop();\n", ["queue-result"]),
    ("src/service/s.cpp", "if (!queue_.push(x)) return;\n", []),
    ("src/service/s.cpp", "const bool ok = q.try_push_for(x, grace);\n", []),
    ("src/other/s.cpp", "queue_.push(std::move(x));\n", []),
    ("src/cluster/c.cpp", "queue_.push(std::move(x));\n", ["queue-result"]),
    ("src/cluster/c.cpp", "comm.recv(0, 7);\n", ["queue-result"]),
    ("src/cluster/c.cpp", "(void)comm.recv_value<int>(0, 7);\n",
     ["queue-result"]),
    ("src/cluster/c.cpp",
     "const auto payload =\n    comm.recv_vec<T>(src, tag);\n",
     []),  # continuation of an assignment: the value IS consumed
    ("src/service/s.cpp", "fe->recv_vec<float>(s, kTag);\n",
     ["queue-result"]),
    ("src/other/s.cpp", "comm.recv(0, 7);\n", []),  # out of scope
    # src/streaming is in scope for the src-wide rules AND queue-result.
    ("src/streaming/s.cpp", "std::mutex m;\n", ["raw-mutex"]),
    ("src/streaming/s.cpp", "x.store(1, std::memory_order_release);\n",
     ["order-comment"]),
    ("src/streaming/s.cpp", "pending_.push(std::move(chunk));\n",
     ["queue-result"]),
    ("src/streaming/s.cpp", "if (!pending_.push(chunk)) return false;\n",
     []),
    # lock-level: every Mutex declaration in src/ names its hierarchy rank.
    ("src/e.h", "mutable Mutex mutex_;\n", ["lock-level"]),
    ("src/e.h",
     'mutable Mutex mutex_{SARBP_LOCK_LEVEL("service.job")};\n',
     []),
    ("src/e.h",
     'Mutex m_{SARBP_LOCK_LEVEL("no.such.level")};\n',
     ["lock-level"]),  # level must exist in tools/lock_hierarchy.py
    ("src/e.h",
     "Mutex fixture_mutex_;  // lint: allow(lock-level) -- test-only lock\n",
     []),
    ("src/e.h",
     'static Mutex mutex{SARBP_LOCK_LEVEL("signal.chebyshev")};\n',
     []),
    ("src/e.h", "MutexLock lock(mutex_);\n", []),  # a lock, not a mutex
    ("src/e.h", "void wait(Mutex& mutex);\n", []),  # references never match
    ("tests/e.h", "Mutex m_;\n", []),  # tests are out of scope
    # Declarations may spread attributes/initializer over lines; edges are
    # validated against the registry's topological order.
    ("src/e.h",
     "Mutex barrier_mutex_ SARBP_ACQUIRED_BEFORE(reason_mutex_){\n"
     '    SARBP_LOCK_LEVEL("cluster.barrier")};\n'
     "mutable Mutex reason_mutex_ SARBP_ACQUIRED_AFTER(barrier_mutex_){\n"
     '    SARBP_LOCK_LEVEL("cluster.reason")};\n',
     []),
    ("src/e.h",
     'Mutex a_ SARBP_ACQUIRED_BEFORE(b_){SARBP_LOCK_LEVEL("obs.registry")};\n'
     'Mutex b_{SARBP_LOCK_LEVEL("service.job")};\n',
     ["lock-level"]),  # obs.registry is innermost: the edge is backward
    ("src/e.h",
     'Mutex a_ SARBP_ACQUIRED_AFTER(b_){SARBP_LOCK_LEVEL("service.fair")};\n'
     'Mutex b_{SARBP_LOCK_LEVEL("obs.registry")};\n',
     ["lock-level"]),  # ACQUIRED_AFTER pointing at an inner level
]


def selftest() -> int:
    failures = 0
    for idx, (vpath, source, expected) in enumerate(SELFTEST_CASES):
        got = [f.rule for f in scan_file(pathlib.Path(vpath), source)]
        if got != expected:
            failures += 1
            print(f"selftest case {idx}: expected {expected}, got {got}",
                  file=sys.stderr)
    if failures:
        print(f"sarbp_lint selftest: {failures} failure(s)", file=sys.stderr)
        return 2
    print(f"sarbp_lint selftest: {len(SELFTEST_CASES)} cases ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the embedded rule fixtures and exit")
    ns = parser.parse_args()
    if ns.selftest:
        return selftest()
    return run(pathlib.Path(ns.root).resolve())


if __name__ == "__main__":
    sys.exit(main())
