// sarbp — command-line front end for the library.
//
//   sarbp simulate --out collection.sarbp [--ix N --pulses N --seed N ...]
//       Simulate a spotlight collection over a clutter+cluster scene and
//       save the range-compressed phase history.
//   sarbp info --in collection.sarbp
//       Describe a saved phase history.
//   sarbp image --in collection.sarbp --out image.npy [--pgm image.pgm]
//       Backproject a saved collection (ASR + SIMD + OpenMP); optional
//       kernel/block/ffbp switches.
//   sarbp pipeline --frames N [--ix N --pulses N] [--out-prefix frames_]
//       Run the streaming surveillance pipeline on simulated repeat-pass
//       data and report CFAR detections per frame.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "backprojection/backprojector.h"
#include "backprojection/ffbp.h"
#include "common/rng.h"
#include "common/timer.h"
#include "geometry/trajectory.h"
#include "io/history_io.h"
#include "io/image_io.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"
#include "quality/metrics.h"
#include "service/service.h"
#include "service/trace.h"
#include "sim/collector.h"
#include "sim/scene.h"
#include "streaming/subaperture_cache.h"
#include "streaming/trace_replay.h"

namespace {

using namespace sarbp;

struct Cli {
  /// Tokens after the subcommand; "--key=value" is split into two tokens so
  /// both spellings work.
  std::vector<std::string> tokens;

  Cli(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      const std::string token = argv[i];
      const std::size_t eq = token.find('=');
      if (token.rfind("--", 0) == 0 && eq != std::string::npos) {
        tokens.push_back(token.substr(0, eq));
        tokens.push_back(token.substr(eq + 1));
      } else {
        tokens.push_back(token);
      }
    }
  }

  [[nodiscard]] std::optional<std::string> get(const char* key) const {
    const std::string flag = std::string("--") + key;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (flag == tokens[i]) return tokens[i + 1];
    }
    return std::nullopt;
  }
  [[nodiscard]] long get_long(const char* key, long fallback) const {
    const auto v = get(key);
    return v ? std::atol(v->c_str()) : fallback;
  }
  [[nodiscard]] double get_double(const char* key, double fallback) const {
    const auto v = get(key);
    return v ? std::atof(v->c_str()) : fallback;
  }
  [[nodiscard]] bool has(const char* key) const {
    const std::string flag = std::string("--") + key;
    for (const auto& token : tokens) {
      if (flag == token) return true;
    }
    return false;
  }

  /// First "--flag" token not in `allowed`, or nullopt when every flag is
  /// recognized. Value tokens are skipped (only "--"-prefixed tokens are
  /// checked), so values that happen to contain dashes stay legal.
  [[nodiscard]] std::optional<std::string> unknown_flag(
      std::initializer_list<const char*> allowed) const {
    for (const auto& token : tokens) {
      if (token.rfind("--", 0) != 0) continue;
      bool known = false;
      for (const char* a : allowed) {
        if (token == std::string("--") + a) {
          known = true;
          break;
        }
      }
      if (!known) return token;
    }
    return std::nullopt;
  }
};

geometry::OrbitParams default_orbit(const Cli& cli) {
  geometry::OrbitParams orbit;
  orbit.radius_m = cli.get_double("standoff", 40000.0);
  orbit.altitude_m = cli.get_double("altitude", 8000.0);
  orbit.angular_rate_rad_s = cli.get_double("rate", 0.066);
  orbit.prf_hz = cli.get_double("prf", 400.0);
  return orbit;
}

int cmd_simulate(const Cli& cli) {
  const auto out = cli.get("out");
  if (!out) {
    std::fprintf(stderr, "simulate: --out <file> is required\n");
    return 2;
  }
  const Index image = cli.get_long("ix", 256);
  const Index pulses = cli.get_long("pulses", 256);
  const auto seed = static_cast<std::uint64_t>(cli.get_long("seed", 1));

  Rng rng(seed);
  const geometry::ImageGrid grid(image, image,
                                 cli.get_double("pixel", 0.5));
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = cli.get_double("perturb", 0.05);
  const auto poses =
      geometry::circular_orbit(default_orbit(cli), errors, pulses, rng);

  sim::ReflectorScene scene;
  if (cli.has("clutter")) {
    scene = sim::make_clutter_field(grid, cli.get_long("clutter", 4), 1.0, rng);
  }
  sim::ClusterSceneParams clusters;
  clusters.clusters = static_cast<int>(cli.get_long("clusters", 4));
  scene.extend(sim::make_cluster_scene(grid, clusters, rng));

  sim::CollectorParams collector;
  if (cli.has("full-waveform")) {
    collector.fidelity = sim::CollectionFidelity::kFullWaveform;
  }
  collector.noise_sigma = cli.get_double("noise", 0.0);
  const auto history = sim::collect(collector, grid, scene, poses, rng);
  io::save_phase_history(*out, history);
  std::printf("wrote %s: %lld pulses x %lld samples (%.1f MB), %zu reflectors\n",
              out->c_str(), static_cast<long long>(history.num_pulses()),
              static_cast<long long>(history.samples_per_pulse()),
              static_cast<double>(history.payload_bytes()) / 1e6,
              scene.size());
  return 0;
}

int cmd_info(const Cli& cli) {
  const auto in = cli.get("in");
  if (!in) {
    std::fprintf(stderr, "info: --in <file> is required\n");
    return 2;
  }
  const auto history = io::load_phase_history(*in);
  std::printf("%s:\n", in->c_str());
  std::printf("  pulses            %lld\n",
              static_cast<long long>(history.num_pulses()));
  std::printf("  samples per pulse %lld\n",
              static_cast<long long>(history.samples_per_pulse()));
  std::printf("  bin spacing       %.4f m\n", history.bin_spacing());
  std::printf("  wavenumber k      %.2f cycles/m (f0 ~ %.2f GHz)\n",
              history.wavenumber(),
              history.wavenumber() * 299792458.0 / 2.0 / 1e9);
  std::printf("  payload           %.1f MB\n",
              static_cast<double>(history.payload_bytes()) / 1e6);
  if (history.num_pulses() > 0) {
    const auto& first = history.meta(0);
    const auto& last = history.meta(history.num_pulses() - 1);
    std::printf("  first pulse at    (%.0f, %.0f, %.0f) m, r0 = %.0f m\n",
                first.position.x, first.position.y, first.position.z,
                first.start_range_m);
    std::printf("  time span         %.3f s\n", last.time_s - first.time_s);
  }
  return 0;
}

int cmd_image(const Cli& cli) {
  const auto in = cli.get("in");
  const auto out = cli.get("out");
  if (!in || !out) {
    std::fprintf(stderr, "image: --in <file> and --out <file.npy> are required\n");
    return 2;
  }
  const auto history = io::load_phase_history(*in);
  const Index image = cli.get_long("ix", 256);
  const geometry::ImageGrid grid(image, image, cli.get_double("pixel", 0.5));

  Grid2D<CFloat> result(image, image);
  Timer timer;
  if (cli.has("ffbp")) {
    bp::FfbpOptions ffbp;
    ffbp.group = cli.get_long("group", 4);
    ffbp.tile = cli.get_long("tile", 64);
    result = bp::ffbp_form_image(history, grid, ffbp);
  } else {
    bp::BackprojectOptions options;
    options.asr_block_w = options.asr_block_h = cli.get_long("block", 64);
    if (cli.has("baseline")) options.kernel = bp::KernelKind::kBaseline;
    if (cli.has("scalar")) options.kernel = bp::KernelKind::kAsrScalar;
    const bp::Backprojector backprojector(grid, options);
    result = backprojector.form_image(history);
  }
  const double seconds = timer.seconds();
  io::write_npy(*out, result);
  if (const auto pgm = cli.get("pgm")) {
    io::write_pgm(*pgm, result);
  }
  const double bp_count = static_cast<double>(image) *
                          static_cast<double>(image) *
                          static_cast<double>(history.num_pulses());
  std::printf("formed %lldx%lld image in %.3f s (%.1f Mbp/s); contrast %.1f; "
              "wrote %s\n",
              static_cast<long long>(image), static_cast<long long>(image),
              seconds, bp_count / seconds / 1e6,
              quality::peak_to_mean(result), out->c_str());
  return 0;
}

int cmd_pipeline(const Cli& cli) {
  const int frames = static_cast<int>(cli.get_long("frames", 3));
  const Index image = cli.get_long("ix", 128);
  const Index pulses = cli.get_long("pulses", 96);
  const auto prefix = cli.get("out-prefix");

  Rng rng(static_cast<std::uint64_t>(cli.get_long("seed", 7)));
  const geometry::ImageGrid grid(image, image, cli.get_double("pixel", 0.5));
  auto scene = sim::make_clutter_field(grid, 4, 1.0, rng);
  // A transient target appearing after the first frame, so the run always
  // has something to detect.
  sim::Reflector transient;
  transient.position = grid.position(image / 3, 2 * image / 3);
  transient.amplitude = 6.0;
  transient.appear_s = 0.5;
  scene.add(transient);

  pipeline::PipelineConfig config;
  config.accumulation_factor = 0;
  config.registration.patch = image > 96 ? 31 : 15;
  config.registration.control_points_x = 3;
  config.registration.control_points_y = 3;
  config.ccd.window = 9;
  config.cfar.window = 15;
  config.cfar.guard = 5;
  pipeline::SurveillancePipeline pipe(grid, config);

  geometry::OrbitParams orbit = default_orbit(cli);
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.02;
  sim::CollectorParams collector;
  for (int f = 0; f < frames; ++f) {
    Rng pass_rng(100 + static_cast<std::uint64_t>(f));
    auto poses = geometry::circular_orbit(orbit, errors, pulses, pass_rng);
    for (auto& pose : poses) pose.time_s += f;
    Rng col_rng(200 + static_cast<std::uint64_t>(f));
    pipe.push_pulses(sim::collect(collector, grid, scene, poses, col_rng));
  }
  pipe.close_input();

  while (auto frame = pipe.pop_result()) {
    std::printf("frame %lld: %s, %zu detections\n",
                static_cast<long long>(frame->frame),
                frame->is_reference ? "reference" : "surveillance",
                frame->cfar.detections.size());
    for (const auto& d : frame->cfar.detections) {
      std::printf("  detection at (%lld, %lld), statistic %.1f\n",
                  static_cast<long long>(d.x), static_cast<long long>(d.y),
                  d.statistic);
    }
    if (prefix) {
      io::write_pgm(*prefix + std::to_string(frame->frame) + ".pgm",
                    frame->image);
    }
  }
  return 0;
}

int cmd_serve_trace(const Cli& cli) {
  service::Trace trace;
  if (const auto path = cli.get("trace")) {
    std::ifstream in(*path);
    if (!in) {
      std::fprintf(stderr, "serve-trace: cannot read %s\n", path->c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    trace = service::parse_trace_json(buffer.str());
  } else if (cli.has("streaming")) {
    trace = service::make_streaming_trace(
        static_cast<int>(cli.get_long("streams", 2)),
        static_cast<int>(cli.get_long("pushes", 12)), cli.get_long("ix", 96),
        cli.get_long("pulses", 16), cli.get_long("block", 32),
        cli.get_long("chunk", 16), cli.get_long("window", 4),
        static_cast<int>(cli.get_long("reanchor", 8)));
  } else {
    trace = service::make_repeated_scene_trace(
        static_cast<int>(cli.get_long("scenes", 3)),
        static_cast<int>(cli.get_long("repeats", 4)), cli.get_long("ix", 96),
        cli.get_long("pulses", 48), cli.get_long("block", 32));
  }
  if (const auto emit = cli.get("emit-trace")) {
    std::ofstream out(*emit);
    out << service::to_json(trace);
    std::printf("wrote trace (%zu requests) to %s\n", trace.requests.size(),
                emit->c_str());
  }

  service::ServiceConfig config;
  config.workers = static_cast<int>(cli.get_long("workers", 2));
  config.max_pending =
      static_cast<std::size_t>(cli.get_long("max-pending", 64));
  config.shards = static_cast<int>(cli.get_long("shards", 1));
  config.shard_workers = static_cast<int>(cli.get_long("shard-workers", 1));
  if (const auto cache = cli.get("cache")) {
    if (*cache == "off") {
      config.plan_cache_capacity = 0;
    } else if (*cache != "on") {
      std::fprintf(stderr, "serve-trace: --cache must be on|off\n");
      return 2;
    }
  }

  bool has_streams = false;
  for (const auto& entry : trace.requests) {
    if (entry.stream != 0) has_streams = true;
  }
  if (has_streams && config.shards >= 2) {
    std::fprintf(stderr,
                 "serve-trace: streaming entries need a local-mode service "
                 "(--shards 1)\n");
    return 2;
  }

  service::ImageFormationService srv(config);
  streaming::SubApertureCacheConfig cache_config;
  if (config.plan_cache_capacity == 0) cache_config.capacity = 0;
  streaming::SubApertureCache subaperture_cache(cache_config);
  streaming::TraceStreamReplayer stream_replayer(srv, &subaperture_cache);
  const service::ReplayStats stats =
      service::replay_trace(trace, srv, &stream_replayer);
  srv.drain();

  if (config.shards >= 2) {
    std::printf("replayed %zu requests on %d shards x %d workers "
                "(plan cache %s)\n",
                stats.submitted + stats.rejected, config.shards,
                config.shard_workers,
                config.plan_cache_capacity > 0 ? "on" : "off");
  } else {
    std::printf("replayed %zu requests on %d workers (plan cache %s)\n",
                stats.submitted + stats.rejected, config.workers,
                config.plan_cache_capacity > 0 ? "on" : "off");
  }
  std::printf("  done %zu  failed %zu  cancelled %zu  expired %zu  "
              "rejected %zu\n",
              stats.done, stats.failed, stats.cancelled, stats.expired,
              stats.rejected);
  std::printf("  wall %.3f s, throughput %.2f jobs/s\n", stats.wall_seconds,
              stats.throughput_jobs_per_s);
  std::printf("  latency p50/p90/p99 = %.3f / %.3f / %.3f s\n",
              stats.latency_p50_s, stats.latency_p90_s, stats.latency_p99_s);
  std::printf("  plan cache: %zu hits, %zu misses; setup %.4f s (hit) vs "
              "%.4f s (miss)\n",
              stats.plan_hits, stats.plan_misses, stats.mean_setup_hit_s,
              stats.mean_setup_miss_s);
  if (stats.streams > 0) {
    std::printf("  streaming: %zu sessions, %zu pushes -> %zu updates "
                "(%zu re-anchors), %zu sub-aperture cache hits, %zu "
                "dropped\n",
                stats.streams, stats.stream_pushes, stats.stream_updates,
                stats.stream_reanchors, stats.stream_cache_hits,
                stats.stream_dropped);
  }
  return stats.failed == 0 ? 0 : 1;
}

void usage() {
  std::fprintf(stderr,
               "usage: sarbp <simulate|info|image|pipeline|serve-trace> "
               "[--key value ...]\n"
               "  simulate --out f.sarbp [--ix 256 --pulses 256 --seed 1 "
               "--clutter 4 --full-waveform --noise 0.0 --perturb 0.05]\n"
               "  info     --in f.sarbp\n"
               "  image    --in f.sarbp --out f.npy [--pgm f.pgm --ix 256 "
               "--block 64 --baseline | --scalar | --ffbp --group 4]\n"
               "  pipeline --frames 3 [--ix 128 --pulses 96 --out-prefix p_]\n"
               "  serve-trace [--trace f.json | --scenes 3 --repeats 4 "
               "--ix 96 --pulses 48 --block 32 | --streaming --streams 2 "
               "--pushes 12 --chunk 16 --window 4 --reanchor 8] "
               "[--workers 2 --cache on|off --max-pending 64 --shards 1 "
               "--shard-workers 1 --emit-trace f.json]\n"
               "      replay a sarbp.trace.v1 request trace (or a synthetic\n"
               "      repeated-scene workload) through the multi-tenant job\n"
               "      service and report throughput, latency percentiles,\n"
               "      and plan-cache effectiveness; --streaming generates a\n"
               "      sliding-aperture workload instead (trace entries with\n"
               "      a nonzero \"stream\" feed incremental-update sessions)\n"
               "unknown subcommands or flags exit with status 2\n"
               "every command accepts --metrics-out=metrics.json to dump the\n"
               "structured observability registry (stage spans, queue gauges,\n"
               "throughput) as schema-versioned JSON\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const Cli cli{argc, argv};
  const std::string command = argv[1];
  try {
    int rc = 2;
    bool known = true;
    std::optional<std::string> bad_flag;
    if (command == "simulate") {
      bad_flag = cli.unknown_flag(
          {"out", "ix", "pulses", "seed", "pixel", "clutter", "clusters",
           "full-waveform", "noise", "perturb", "standoff", "altitude", "rate",
           "prf", "metrics-out"});
      if (!bad_flag) rc = cmd_simulate(cli);
    } else if (command == "info") {
      bad_flag = cli.unknown_flag({"in", "metrics-out"});
      if (!bad_flag) rc = cmd_info(cli);
    } else if (command == "image") {
      bad_flag = cli.unknown_flag({"in", "out", "pgm", "ix", "pixel", "block",
                                   "baseline", "scalar", "ffbp", "group",
                                   "tile", "metrics-out"});
      if (!bad_flag) rc = cmd_image(cli);
    } else if (command == "pipeline") {
      bad_flag = cli.unknown_flag({"frames", "ix", "pulses", "out-prefix",
                                   "seed", "pixel", "standoff", "altitude",
                                   "rate", "prf", "metrics-out"});
      if (!bad_flag) rc = cmd_pipeline(cli);
    } else if (command == "serve-trace") {
      bad_flag = cli.unknown_flag({"trace", "emit-trace", "scenes", "repeats",
                                   "ix", "pulses", "block", "workers", "cache",
                                   "max-pending", "shards", "shard-workers",
                                   "streaming", "streams", "pushes", "chunk",
                                   "window", "reanchor", "metrics-out"});
      if (!bad_flag) rc = cmd_serve_trace(cli);
    } else {
      known = false;
    }
    if (bad_flag) {
      std::fprintf(stderr, "sarbp %s: unknown flag %s\n", command.c_str(),
                   bad_flag->c_str());
      usage();
      return 2;
    }
    if (known) {
      if (const auto metrics_out = cli.get("metrics-out")) {
        obs::write_json_file(obs::registry(), *metrics_out);
        std::printf("wrote metrics to %s\n", metrics_out->c_str());
      }
      return rc;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sarbp %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  usage();
  return 2;
}
