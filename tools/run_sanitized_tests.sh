#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
#   tools/run_sanitized_tests.sh [asan|tsan|all]   (default: all)
#
# Two configurations, mirroring the SARBP_SANITIZE CMake presets:
#
#   build-asan  -DSARBP_SANITIZE=address;undefined — full ctest suite.
#   build-tsan  -DSARBP_SANITIZE=thread           — the concurrency-heavy
#               test binaries (queue, pipeline shutdown, observability),
#               run directly with OMP_NUM_THREADS=1. libgomp is not built
#               with TSan instrumentation, so OpenMP parallel regions
#               produce false positives; pinning OpenMP to one thread keeps
#               the std::thread synchronization under test fully visible
#               to TSan without the noise.
#
# The TSan configuration also turns on SARBP_DEADLOCK_CHECK, so every run
# doubles as a lock-order audit: the runtime cycle detector (DESIGN.md
# section 14) watches each binary's real acquisitions, and any hierarchy
# violation prints a [sarbp lockdep] cycle report. test_deadlock exercises
# the detector itself and only has teeth in this configuration.
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_asan() {
  echo "=== address+undefined sanitizer: configure, build, full ctest ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSARBP_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

run_tsan() {
  echo "=== thread sanitizer: concurrency-focused test binaries ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSARBP_SANITIZE="thread" -DSARBP_DEADLOCK_CHECK=ON >/dev/null
  cmake --build build-tsan -j "$jobs" --target \
    test_common test_deadlock test_obs test_exec test_backends test_pipeline \
    test_service test_streaming test_cluster test_cluster_service
  for t in test_common test_deadlock test_obs test_exec test_backends \
           test_pipeline test_service test_streaming test_cluster \
           test_cluster_service; do
    echo "--- tsan: $t ---"
    tsan_opts="halt_on_error=1"
    # test_deadlock seeds deliberate lock-order inversions to exercise the
    # sarbp detector; TSan's own inversion heuristic would flag those same
    # seeded cycles, so it is off for this one binary (race detection and
    # every other check stay on).
    if [ "$t" = "test_deadlock" ]; then
      tsan_opts="$tsan_opts:detect_deadlocks=0"
    fi
    OMP_NUM_THREADS=1 TSAN_OPTIONS="$tsan_opts" "build-tsan/tests/$t"
  done
}

case "$mode" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)  run_asan; run_tsan ;;
  *) echo "usage: $0 [asan|tsan|all]" >&2; exit 2 ;;
esac
echo "sanitized test run ($mode): OK"
