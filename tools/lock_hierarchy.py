#!/usr/bin/env python3
"""The repo-wide lock hierarchy registry (DESIGN.md section 14).

Single source of truth for the lock levels declared with
SARBP_LOCK_LEVEL("...") in src/ and for the known acquires-after edges
between them. Three consumers:

  - tools/sarbp_lint.py (`lock-level` rule): every sarbp::Mutex member in
    src/ must declare a level that exists in LEVELS, and every
    SARBP_ACQUIRED_BEFORE/AFTER edge in the code must agree with the
    topological order below.
  - humans adding a mutex: pick the slot in LEVELS that matches where the
    new lock nests, add it here first, then declare it in the code.
  - the runtime lock-order detector (src/common/deadlock.cpp,
    SARBP_DEADLOCK_CHECK builds) discovers edges empirically; running any
    test binary with SARBP_LOCKDEP_DUMP=1 prints the observed set, which
    must stay a subset of what this order permits.

Running this file directly self-checks the registry (unknown levels in
EDGES, backward edges, duplicate levels) and prints the table.

The order is outermost first: a thread holding a lock at some level may
only blocking-acquire locks at STRICTLY LATER levels. Same-level nesting
must use try_lock (the runtime detector records no edge into a
try-acquisition). Levels never observed nesting still get a defensive
slot so the order is total.
"""

from __future__ import annotations

import sys

# Outermost -> innermost. Comments give the owning declaration.
LEVELS: list[str] = [
    "streaming.session",    # streaming/streaming.cpp StreamSession::Impl
    "streaming.cache",      # streaming/subaperture_cache.h SubApertureCache
    "service.gate",         # service/service.h drain gate
    "service.fair",         # service/fair_queue.h FairScheduler
    "service.shard_table",  # service/shard_router.h in-flight job table
    "service.runctx",       # service/service.cpp per-run RunCtx
    "service.job",          # service/job.h JobHandle lifecycle
    "service.part",         # service/shard_router.cpp per-part state
    "service.plan_cache",   # service/plan_cache.h PlanCache LRU
    "exec.live",            # exec/executor.h live-group set
    "exec.group",           # exec/task_group.h TaskGroup completion
    "exec.idle",            # exec/executor.h idle wait
    "exec.backend",         # exec/tile_backend.h BackendSet rates
    "cluster.barrier",      # cluster/comm.h generation barrier
    "cluster.mailbox",      # cluster/comm.h per-rank Mailbox
    "cluster.reason",       # cluster/comm.h abort reason
    "cluster.shard_error",  # cluster/shard.h first-error slot
    "common.queue",         # common/queue.h BoundedQueue
    "signal.chebyshev",     # signal/chebyshev.cpp plan table
    "obs.registry",         # obs/metrics.h Registry (innermost: metric
                            # lookups happen under module locks everywhere)
]

# Known acquires-after edges (from is held while to is blocking-acquired),
# with the code path that creates each. Every edge must be FORWARD in
# LEVELS. The runtime detector's observed set (SARBP_LOCKDEP_DUMP=1 over
# the test suite) is checked against this list by tests/test_deadlock.cpp
# for the seeded cases and by review for the rest.
EDGES: list[tuple[str, str, str]] = [
    ("streaming.session", "service.fair",
     "StreamSession pump_locked() submits to the service under the session lock"),
    ("streaming.session", "service.job",
     "documented session -> handle order (StreamSession close/cancel paths)"),
    ("streaming.session", "obs.registry",
     "transitive: FairScheduler tenant counters resolve while the session lock is held"),
    ("service.fair", "obs.registry",
     "FairScheduler::submit tenant counters are by-name lookups under the scheduler lock"),
    ("service.job", "obs.registry",
     "JobHandle::finish_locked stamps job metrics by name under the handle lock"),
    ("cluster.barrier", "cluster.reason",
     "wait_barrier() throws aborted_error(), which reads the reason, under the barrier lock"),
    ("cluster.mailbox", "cluster.reason",
     "take() throws aborted_error(), which reads the reason, under the box lock"),
]


def level_index(name: str) -> int:
    """Rank of a level name, or -1 if it is not in the registry."""
    try:
        return LEVELS.index(name)
    except ValueError:
        return -1


def check() -> list[str]:
    """Returns the registry's self-consistency violations (empty = OK)."""
    problems: list[str] = []
    seen: set[str] = set()
    for name in LEVELS:
        if name in seen:
            problems.append(f"duplicate level: {name}")
        seen.add(name)
    for src, dst, _why in EDGES:
        src_rank, dst_rank = level_index(src), level_index(dst)
        if src_rank < 0:
            problems.append(f"edge references unknown level: {src}")
        if dst_rank < 0:
            problems.append(f"edge references unknown level: {dst}")
        if src_rank >= 0 and dst_rank >= 0 and src_rank >= dst_rank:
            problems.append(
                f"backward edge {src} -> {dst}: contradicts the level order "
                f"({src_rank} >= {dst_rank})")
    return problems


def main() -> int:
    problems = check()
    for problem in problems:
        print(f"lock_hierarchy: {problem}", file=sys.stderr)
    if problems:
        return 1
    width = max(len(name) for name in LEVELS)
    print(f"{len(LEVELS)} levels (outermost first), {len(EDGES)} known edges")
    for rank, name in enumerate(LEVELS):
        outgoing = [dst for src, dst, _ in EDGES if src == name]
        arrow = f"  -> {', '.join(outgoing)}" if outgoing else ""
        print(f"  {rank:2d}  {name:<{width}}{arrow}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
