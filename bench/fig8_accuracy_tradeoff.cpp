// Reproduces paper Fig. 8: accuracy-performance trade-off of ASR vs block
// size, against a full-double-precision reference. Paper findings:
//   - baseline (double range + EP-accuracy trig): ~55 dB;
//   - libm trig instead: marginally better (~58 dB);
//   - single-precision range computation: collapses to ~12 dB;
//   - ASR beats the baseline's accuracy for blocks <= 64x64 while getting
//     faster as blocks grow (less precompute per pixel).
#include <cstdio>
#include <vector>

#include "asr/error_model.h"
#include "backprojection/kernel.h"
#include "bench_util.h"
#include "common/snr.h"
#include "common/timer.h"

namespace {

using namespace sarbp;

struct Row {
  std::string label;
  double snr_db;
  double seconds;
};

Grid2D<CFloat> tile_to_image(const bp::SoaTile& tile) {
  Grid2D<CFloat> img(tile.width(), tile.height());
  tile.accumulate_into(img, Region{0, 0, tile.width(), tile.height()});
  return img;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 256);
  const Index pulses = args.get("pulses", 64);

  auto scenario = bench::make_bench_scenario(image, pulses);
  const Region all{0, 0, image, image};

  bench::print_header("Fig. 8 - ASR accuracy-performance trade-off");
  std::printf("workload: %lldx%lld image, %lld pulses; reference: all-double kernel\n",
              static_cast<long long>(image), static_cast<long long>(image),
              static_cast<long long>(pulses));

  Grid2D<CDouble> reference(image, image);
  bp::backproject_ref(scenario.history, scenario.grid, all, 0, pulses,
                      reference);

  std::vector<Row> rows;
  auto run_float_kernel = [&](const std::string& label, auto&& kernel) {
    bp::SoaTile tile(image, image);
    Timer timer;
    kernel(tile);
    const double secs = timer.seconds();
    rows.push_back({label, snr_db(tile_to_image(tile), reference), secs});
  };

  run_float_kernel("baseline (double r, EP trig)", [&](bp::SoaTile& tile) {
    bp::backproject_baseline(scenario.history, scenario.grid, all, 0, pulses,
                             false, geometry::LoopOrder::kXInner, tile);
  });
  run_float_kernel("baseline (float r)", [&](bp::SoaTile& tile) {
    bp::backproject_baseline(scenario.history, scenario.grid, all, 0, pulses,
                             true, geometry::LoopOrder::kXInner, tile);
  });
  for (Index block : {16, 32, 64, 128, 256}) {
    if (block > image) continue;
    run_float_kernel("ASR " + std::to_string(block) + "x" + std::to_string(block),
                     [&](bp::SoaTile& tile) {
                       bp::backproject_asr_scalar(
                           scenario.history, scenario.grid, all, 0, pulses,
                           block, block, geometry::LoopOrder::kXInner, tile);
                     });
  }

  const double base_time = rows[0].seconds;
  const double base_snr = rows[0].snr_db;
  std::printf("\n%-30s %10s %12s %14s %12s\n", "variant", "SNR (dB)",
              "time (s)", "speedup vs base", "model (dB)");
  bench::print_rule();
  std::size_t asr_index = 0;
  for (const auto& row : rows) {
    char predicted[16] = "-";
    if (row.label.rfind("ASR", 0) == 0) {
      const Index block = Index{16} << asr_index++;
      const double floor_db = asr::predicted_snr_db(
          scenario.grid, scenario.history.meta(0).position,
          scenario.history.wavenumber(), block, block);
      std::snprintf(predicted, sizeof(predicted), ">%.0f", floor_db);
    }
    std::printf("%-30s %10.1f %12.4f %13.2fx %12s\n", row.label.c_str(),
                row.snr_db, row.seconds, base_time / row.seconds, predicted);
  }
  std::printf(
      "\npaper shape checks:\n"
      "  baseline ~55 dB (here %.1f dB); float-r baseline ~12 dB (here %.1f dB)\n",
      base_snr, rows[1].snr_db);
  // Locate the crossover block: largest block still at/above baseline SNR.
  Index crossover = 0;
  for (std::size_t i = 2; i < rows.size(); ++i) {
    if (rows[i].snr_db >= base_snr) {
      crossover = Index{16} << (i - 2);
    }
  }
  std::printf("  largest ASR block with accuracy >= baseline: %lld (paper: 64)\n",
              static_cast<long long>(crossover));
  return 0;
}
