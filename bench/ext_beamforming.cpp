// Extension experiment (paper §7): ASR applied to ultrasound delay-and-sum
// beamforming — "we have applied the ASR method to beamforming used in
// ultrasound imaging, thereby achieving a 5x speedup."
//
// Reports baseline vs ASR beamformer time and accuracy over block-size
// choices on a plane-wave speckle phantom.
#include <cstdio>

#include "beamform/beamformer.h"
#include "beamform/simulator.h"
#include "bench_util.h"
#include "common/snr.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  using namespace sarbp::beamform;
  const bench::Args args(argc, argv);
  const Index width = args.get("width", 192);
  const Index depth = args.get("depth", 192);
  const int elements = static_cast<int>(args.get("elements", 64));

  bench::print_header("Extension - ASR for ultrasound beamforming (paper: 5x)");

  Transducer transducer;
  transducer.elements = elements;
  ScanRegion region;
  region.width = width;
  region.depth = depth;
  Rng rng(21);
  const auto phantom = random_phantom(region, 300, rng);
  const auto data = simulate_channels(transducer, region, phantom);
  std::printf("phantom: %zu scatterers; %d elements x %lld samples; "
              "%lldx%lld pixels at %.2f mm\n",
              phantom.size(), elements,
              static_cast<long long>(data.samples()),
              static_cast<long long>(width), static_cast<long long>(depth),
              region.pixel_m * 1e3);

  const auto reference = beamform_ref(transducer, region, data);
  Timer t_base;
  const auto baseline = beamform_baseline(transducer, region, data);
  const double base_s = t_base.seconds();
  const double base_snr = snr_db(baseline, reference);

  std::printf("\n%-22s %10s %10s %12s\n", "beamformer", "time (s)",
              "speedup", "SNR (dB)");
  bench::print_rule();
  std::printf("%-22s %10.3f %9.2fx %12.1f\n", "baseline (sqrt+trig)", base_s,
              1.0, base_snr);
  struct BlockChoice {
    Index x, z;
  };
  for (const BlockChoice b : {BlockChoice{8, 16}, {16, 32}, {32, 64}}) {
    Timer t_asr;
    const auto asr = beamform_asr(transducer, region, data, b.x, b.z);
    const double asr_s = t_asr.seconds();
    char label[32];
    std::snprintf(label, sizeof(label), "ASR %lldx%lld blocks",
                  static_cast<long long>(b.x), static_cast<long long>(b.z));
    std::printf("%-22s %10.3f %9.2fx %12.1f\n", label, asr_s, base_s / asr_s,
                snr_db(asr, reference));
  }
  std::printf("\n(the paper quotes 5x on 2012 hardware whose sqrt/trig were "
              "far slower relative to FMAs than today's; the structural win "
              "— math functions out of the inner loop — is the claim)\n");
  return 0;
}
