// Extension experiment (paper §6/§7): hierarchical (fast factorized)
// backprojection on top of the ASR base case — "when combined with
// hierarchical backprojection techniques, we believe our optimizations
// will render computationally challenging SAR imaging via backprojection
// considerably more affordable."
//
// Sweeps the pulse-group size and reports wall time, the work-model
// prediction, and image SNR against direct ASR backprojection.
#include <cstdio>

#include "backprojection/ffbp.h"
#include "bench_util.h"
#include "common/snr.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 256);
  const Index pulses = args.get("pulses", 1024);

  bench::print_header("Extension - fast factorized backprojection (ASR base case)");
  auto scenario = bench::make_bench_scenario(
      image, pulses, sim::CollectionFidelity::kIdealResponse);
  std::printf("workload: %lldx%lld image, %lld pulses\n",
              static_cast<long long>(image), static_cast<long long>(image),
              static_cast<long long>(pulses));

  // Direct production path for timing; the quality reference uses the
  // same upsampled data FFBP consumes, so SNR isolates FFBP's own
  // approximation.
  double direct_s = 0.0;
  {
    bp::SoaTile tile(image, image);
    Timer timer;
    bp::backproject_asr_simd(scenario.history, scenario.grid,
                             Region{0, 0, image, image}, 0, pulses, 64, 64,
                             geometry::LoopOrder::kXInner, tile);
    direct_s = timer.seconds();
  }
  Timer upsample_timer;
  const sim::PhaseHistory upsampled = scenario.history.upsampled(4);
  const double upsample_s = upsample_timer.seconds();
  Grid2D<CFloat> direct(image, image);
  {
    bp::SoaTile tile(image, image);
    bp::backproject_asr_simd(upsampled, scenario.grid,
                             Region{0, 0, image, image}, 0, pulses, 64, 64,
                             geometry::LoopOrder::kXInner, tile);
    tile.accumulate_into(direct, Region{0, 0, image, image});
  }
  std::printf("direct ASR backprojection: %.3f s; one-off range upsampling "
              "(amortized across frames): %.3f s\n",
              direct_s, upsample_s);

  std::printf("\n%8s %8s | %10s %9s %12s | %12s\n", "group", "tile",
              "time (s)", "speedup", "model frac", "SNR vs direct");
  bench::print_rule();
  for (const Index group : {1, 2, 4, 8, 16}) {
    bp::FfbpOptions options;
    options.group = group;
    options.tile = 64;
    Timer timer;
    const auto img =
        bp::ffbp_form_image_upsampled(upsampled, scenario.grid, options);
    const double secs = timer.seconds();
    const double dr_syn = scenario.history.bin_spacing() /
                          static_cast<double>(options.oversample);
    const double margin_m =
        0.707 * static_cast<double>(options.tile) * scenario.grid.spacing() +
        static_cast<double>(options.range_margin_bins) * dr_syn;
    const double model = bp::ffbp_work_fraction(
        options, pulses, image, static_cast<Index>(2.0 * margin_m / dr_syn));
    std::printf("%8lld %8lld | %10.3f %8.2fx %12.2f | %10.1f dB\n",
                static_cast<long long>(group),
                static_cast<long long>(options.tile), secs, direct_s / secs,
                model, snr_db(img, direct));
  }
  std::printf("\n(speedup approaches the group size once the per-tile "
              "combining pass amortizes; accuracy falls as group x tile "
              "grows — the same budget arithmetic as the ASR block size)\n");
  return 0;
}
