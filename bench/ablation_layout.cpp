// Ablation (§4.4): input-pulse memory layout for the irregular inner-loop
// read. On Xeon the paper keeps In in AoS so In[bin]/In[bin+1] load as one
// 128-bit pair (then 30 AVX shuffle ops per 8 pixels); on Xeon Phi it keeps
// SoA planes and issues hardware gathers. This microbench isolates the two
// access patterns over realistic slowly-varying bin sequences.
#include <benchmark/benchmark.h>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>

// GCC's -Wmaybe-uninitialized fires inside the AVX-512 intrinsic headers:
// the intrinsics deliberately start from _mm512_undefined_* (GCC bug
// 105593). Suppress just that diagnostic for this translation unit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#endif

#include "common/aligned.h"
#include "common/rng.h"
#include "common/types.h"

namespace {

using namespace sarbp;

constexpr Index kSamples = 1 << 16;
constexpr Index kReads = 1 << 14;

struct LayoutData {
  AlignedVector<CFloat> aos;
  AlignedVector<float> soa_re;
  AlignedVector<float> soa_im;
  AlignedVector<int> bins;
  AlignedVector<float> fracs;
};

const LayoutData& data() {
  static const LayoutData d = [] {
    LayoutData out;
    Rng rng(5);
    out.aos.resize(kSamples);
    out.soa_re.resize(kSamples);
    out.soa_im.resize(kSamples);
    for (Index i = 0; i < kSamples; ++i) {
      const auto re = static_cast<float>(rng.normal());
      const auto im = static_cast<float>(rng.normal());
      out.aos[static_cast<std::size_t>(i)] = {re, im};
      out.soa_re[static_cast<std::size_t>(i)] = re;
      out.soa_im[static_cast<std::size_t>(i)] = im;
    }
    // Slowly-varying bins (the post-reordering locality regime: ~17
    // consecutive same-bin accesses).
    out.bins.resize(kReads);
    out.fracs.resize(kReads);
    double bin = 100.0;
    for (Index i = 0; i < kReads; ++i) {
      bin += 0.06 + 0.02 * rng.uniform();
      if (bin > kSamples - 2) bin = 100.0;
      out.bins[static_cast<std::size_t>(i)] = static_cast<int>(bin);
      out.fracs[static_cast<std::size_t>(i)] = static_cast<float>(bin - static_cast<int>(bin));
    }
    return out;
  }();
  return d;
}

void BM_AosScalarInterp(benchmark::State& state) {
  const auto& d = data();
  for (auto _ : state) {
    float acc_r = 0.0f, acc_i = 0.0f;
    for (Index i = 0; i < kReads; ++i) {
      const int b = d.bins[static_cast<std::size_t>(i)];
      const float f = d.fracs[static_cast<std::size_t>(i)];
      const CFloat v0 = d.aos[static_cast<std::size_t>(b)];
      const CFloat v1 = d.aos[static_cast<std::size_t>(b) + 1];
      acc_r += v0.real() + f * (v1.real() - v0.real());
      acc_i += v0.imag() + f * (v1.imag() - v0.imag());
    }
    benchmark::DoNotOptimize(acc_r);
    benchmark::DoNotOptimize(acc_i);
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(kReads), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_AosScalarInterp);

#if defined(__AVX512F__)
void BM_SoaGatherInterp(benchmark::State& state) {
  const auto& d = data();
  for (auto _ : state) {
    __m512 acc_r = _mm512_setzero_ps();
    __m512 acc_i = _mm512_setzero_ps();
    for (Index i = 0; i + 16 <= kReads; i += 16) {
      const __m512i idx = _mm512_loadu_si512(&d.bins[static_cast<std::size_t>(i)]);
      const __m512i idx1 = _mm512_add_epi32(idx, _mm512_set1_epi32(1));
      const __m512 f = _mm512_loadu_ps(&d.fracs[static_cast<std::size_t>(i)]);
      const __m512 r0 = _mm512_i32gather_ps(idx, d.soa_re.data(), 4);
      const __m512 r1 = _mm512_i32gather_ps(idx1, d.soa_re.data(), 4);
      const __m512 i0 = _mm512_i32gather_ps(idx, d.soa_im.data(), 4);
      const __m512 i1 = _mm512_i32gather_ps(idx1, d.soa_im.data(), 4);
      acc_r = _mm512_add_ps(acc_r,
                            _mm512_fmadd_ps(f, _mm512_sub_ps(r1, r0), r0));
      acc_i = _mm512_add_ps(acc_i,
                            _mm512_fmadd_ps(f, _mm512_sub_ps(i1, i0), i0));
    }
    float sink_r = _mm512_reduce_add_ps(acc_r);
    float sink_i = _mm512_reduce_add_ps(acc_i);
    benchmark::DoNotOptimize(sink_r);
    benchmark::DoNotOptimize(sink_i);
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(kReads), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SoaGatherInterp);
#elif defined(__AVX2__)
void BM_SoaGatherInterp(benchmark::State& state) {
  const auto& d = data();
  for (auto _ : state) {
    __m256 acc_r = _mm256_setzero_ps();
    __m256 acc_i = _mm256_setzero_ps();
    for (Index i = 0; i + 8 <= kReads; i += 8) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&d.bins[static_cast<std::size_t>(i)]));
      const __m256i idx1 = _mm256_add_epi32(idx, _mm256_set1_epi32(1));
      const __m256 f = _mm256_loadu_ps(&d.fracs[static_cast<std::size_t>(i)]);
      const __m256 r0 = _mm256_i32gather_ps(d.soa_re.data(), idx, 4);
      const __m256 r1 = _mm256_i32gather_ps(d.soa_re.data(), idx1, 4);
      const __m256 i0 = _mm256_i32gather_ps(d.soa_im.data(), idx, 4);
      const __m256 i1 = _mm256_i32gather_ps(d.soa_im.data(), idx1, 4);
      acc_r = _mm256_add_ps(acc_r,
                            _mm256_fmadd_ps(f, _mm256_sub_ps(r1, r0), r0));
      acc_i = _mm256_add_ps(acc_i,
                            _mm256_fmadd_ps(f, _mm256_sub_ps(i1, i0), i0));
    }
    benchmark::DoNotOptimize(acc_r);
    benchmark::DoNotOptimize(acc_i);
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(kReads), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SoaGatherInterp);
#endif

}  // namespace

BENCHMARK_MAIN();
