// Reproduces paper Table 4: multi-node weak scaling under the real-time
// constraint (1-16 nodes; image grows with the cluster; throughput in
// backprojections/s; MPI parallelization efficiency 1.00 -> 0.93).
//
// Two complementary reproductions:
//  1. the analytic node model sized exactly like the paper (same method as
//     its own Table 5 projection) — reproduces the (image, k, S,
//     throughput) columns;
//  2. a *measured* weak-scaling run on the in-process cluster substrate:
//     ranks x a scaled tile, reporting parallel efficiency from the
//     slowest rank's compute time (wall-clock parallelism is unobservable
//     on one core, so efficiency is computed from critical-path work).
#include <cstdio>

#include "bench_util.h"
#include "cluster/distributed.h"
#include "perfmodel/projection.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  const bench::Args args(argc, argv);
  const Index tile = args.get("tile", 192);   // per-rank image tile edge
  const Index pulses = args.get("pulses", 48);

  bench::print_header("Table 4 - multi-node weak scaling (real-time sizing)");

  // --- Analytic reproduction of the published rows.
  perfmodel::NodeModel model;
  const Index counts[] = {1, 2, 4, 8, 16};
  const auto points = perfmodel::weak_scaling_projection(model, counts);
  struct PaperRow {
    const char* image;
    int k;
    const char* s;
    int gbps;
    double eff;
  };
  const PaperRow paper[] = {{"3K", 2, "4K", 35, 1.00},
                            {"4K", 3, "6K", 71, 1.01},
                            {"6K", 4, "9K", 138, 0.97},
                            {"9K", 6, "13K", 265, 0.94},
                            {"13K", 9, "19K", 530, 0.93}};
  std::printf("\nanalytic model vs paper:\n");
  std::printf("%5s | %6s %3s %6s %6s %5s | %6s %3s %6s %6s %5s\n", "nodes",
              "img", "k", "S", "Gbp/s", "eff", "img", "k", "S", "Gbp/s",
              "eff");
  bench::print_rule();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::printf(
        "%5lld | %6s %3d %6s %6d %5.2f | %5.1fK %3d %5.1fK %6.0f %5.2f\n",
        static_cast<long long>(p.nodes), paper[i].image, paper[i].k,
        paper[i].s, paper[i].gbps, paper[i].eff,
        static_cast<double>(p.image) / 1000.0, p.accumulation,
        static_cast<double>(p.samples) / 1000.0,
        p.throughput_bp_per_s / 1e9, p.parallel_efficiency);
  }
  std::printf("(left: paper Table 4; right: model)\n");

  // --- Measured run on the in-process cluster substrate (weak scaling:
  // the image edge grows ~ sqrt(ranks) so per-rank work stays constant).
  std::printf("\nmeasured in-process cluster substrate (tile %lld px/rank):\n",
              static_cast<long long>(tile));
  std::printf("%5s %8s %14s %16s %10s\n", "ranks", "image",
              "crit.path (s)", "Gbp/s (modeled)", "efficiency");
  bench::print_rule();
  double base_rate = 0.0;
  for (Index ranks : {1, 2, 4}) {
    const auto side = static_cast<Index>(
        tile * (ranks == 1 ? 1 : (ranks == 2 ? 1.414 : 2.0)));
    auto scenario = bench::make_bench_scenario(side, pulses);
    bp::BackprojectOptions options;
    options.threads = 1;
    options.min_region_edge = 32;
    cluster::DistributedReport report;
    (void)cluster::distributed_backprojection(static_cast<int>(ranks),
                                              scenario.history, scenario.grid,
                                              options, &report);
    const double work = static_cast<double>(side) * static_cast<double>(side) *
                        static_cast<double>(pulses);
    // Modeled cluster throughput: every rank works in parallel, so the
    // frame takes the slowest rank's time.
    const double gbps = work / report.max_rank_compute_s / 1e9;
    const double per_rank_rate = gbps / static_cast<double>(ranks);
    if (ranks == 1) base_rate = per_rank_rate;
    std::printf("%5lld %8lld %14.3f %16.3f %10.2f\n",
                static_cast<long long>(ranks), static_cast<long long>(side),
                report.max_rank_compute_s, gbps,
                per_rank_rate / base_rate);
  }
  std::printf("(ranks execute serially on this 1-core host; throughput and\n"
              " efficiency are computed from the critical-path rank time)\n");
  return 0;
}
