// Extension experiment (paper §2's qualitative comparison, quantified):
// polar formatting vs backprojection as trajectory deviations grow.
//
//   "PFA assumes an idealized trajectory for the radar platform. To an
//    extent, compensation can be applied for deviations from these
//    assumptions, but image quality degrades as the deviations increase.
//    Backprojection ... can handle non-ideal collection trajectories."
//
// Sweeps the per-pulse trajectory perturbation and reports image contrast
// (peak/mean) and entropy for: PFA with the idealized-orbit assumption,
// PFA mapping the recorded trajectory, and ASR backprojection. Also prints
// the speed side of the trade (PFA's FFT complexity is why anyone accepts
// its assumptions at all).
#include <cstdio>

#include "backprojection/kernel.h"
#include "bench_util.h"
#include "common/timer.h"
#include "pfa/pfa.h"
#include "quality/metrics.h"

namespace {

using namespace sarbp;

struct Images {
  Grid2D<CFloat> pfa_ideal;
  Grid2D<CFloat> pfa_recorded;
  Grid2D<CFloat> bp;
  double pfa_seconds = 0.0;
  double bp_seconds = 0.0;
};

Images form_all(const geometry::ImageGrid& grid,
                const sim::PhaseHistory& history) {
  Images out{Grid2D<CFloat>(grid.width(), grid.height()),
             Grid2D<CFloat>(grid.width(), grid.height()),
             Grid2D<CFloat>(grid.width(), grid.height())};
  pfa::PfaParams ideal;
  ideal.assume_ideal_trajectory = true;
  Timer t_pfa;
  out.pfa_ideal = pfa::PolarFormatter(grid, ideal).form_image(history);
  out.pfa_seconds = t_pfa.seconds();
  out.pfa_recorded = pfa::PolarFormatter(grid, {}).form_image(history);
  const Region all{0, 0, grid.width(), grid.height()};
  bp::SoaTile tile(all.width, all.height);
  Timer t_bp;
  bp::backproject_asr_simd(history, grid, all, 0, history.num_pulses(), 64,
                           64, geometry::LoopOrder::kXInner, tile);
  out.bp_seconds = t_bp.seconds();
  tile.accumulate_into(out.bp, all);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 96);
  const Index pulses = args.get("pulses", 192);

  bench::print_header("Extension - PFA vs backprojection under trajectory error");

  geometry::ImageGrid grid(image, image, 0.5);
  std::printf("point-target scene, %lld pulses, %lldx%lld image\n",
              static_cast<long long>(pulses), static_cast<long long>(image),
              static_cast<long long>(image));
  std::printf("\n%12s | %22s %22s %22s\n", "perturb (m)",
              "PFA ideal-orbit", "PFA recorded-orbit", "backprojection");
  std::printf("%12s | %11s %10s %11s %10s %11s %10s\n", "", "contrast",
              "entropy", "contrast", "entropy", "contrast", "entropy");
  bench::print_rule();

  double pfa_time = 0.0;
  double bp_time = 0.0;
  for (const double sigma : {0.0, 0.01, 0.02, 0.05, 0.1}) {
    geometry::OrbitParams orbit;
    orbit.radius_m = 40000.0;
    orbit.altitude_m = 8000.0;
    orbit.angular_rate_rad_s = 0.066;
    orbit.prf_hz = 400.0;
    geometry::TrajectoryErrorModel errors;
    errors.perturbation_sigma_m = sigma;
    Rng rng(11);
    const auto poses = geometry::circular_orbit(orbit, errors, pulses, rng);
    sim::ReflectorScene scene;
    sim::Reflector r;
    r.position = grid.position(image / 2, image / 2);
    scene.add(r);
    const auto history = sim::collect({}, grid, scene, poses, rng);

    const Images images = form_all(grid, history);
    pfa_time = images.pfa_seconds;
    bp_time = images.bp_seconds;
    std::printf("%12.2f | %11.0f %10.2f %11.0f %10.2f %11.0f %10.2f\n",
                sigma, quality::peak_to_mean(images.pfa_ideal),
                quality::image_entropy(images.pfa_ideal),
                quality::peak_to_mean(images.pfa_recorded),
                quality::image_entropy(images.pfa_recorded),
                quality::peak_to_mean(images.bp),
                quality::image_entropy(images.bp));
  }
  std::printf("\nexpected shape: ideal-orbit PFA contrast collapses with "
              "sigma; backprojection barely moves (it consumes the recorded "
              "positions exactly).\n");
  std::printf("\nthe price of robustness (this workload): PFA %.3f s vs "
              "backprojection %.3f s (%.1fx); at the paper's high-end scale "
              "the model ratio is %.0fx.\n",
              pfa_time, bp_time, bp_time / pfa_time,
              38.0 * 2809.0 * 57000.0 * 57000.0 /
                  pfa::pfa_flops(2809, 81000, 57000));
  return 0;
}
