// Ablation (§5.2.2): OpenMP thread scaling of the backprojection driver.
// Paper: near-linear 15.9x on 16 Xeon cores, super-linear 63x on 60 Phi
// cores (working set per core shrinks into cache), SMT 1.2x/2.2x.
//
// NOTE: this container exposes a single core, so measured speedups are ~1x
// by construction; the sweep still exercises the partitioning/reduction
// machinery at every thread count and reports the partition chosen.
#include <cstdio>

#include "backprojection/backprojector.h"
#include "backprojection/partition.h"
#include "bench_util.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 256);
  const Index pulses = args.get("pulses", 48);

  auto scenario = bench::make_bench_scenario(image, pulses);

  bench::print_header("Ablation - OpenMP thread scaling");
  std::printf("hardware threads available: %d (paper: 16 Xeon cores / 60 Phi "
              "cores)\n\n",
              cpu_info().hardware_threads);
  std::printf("%8s %10s %10s %9s %24s\n", "threads", "time (s)", "Gbp/s",
              "speedup", "partition (x*y*pulse)");
  bench::print_rule();

  const double work = static_cast<double>(image) * static_cast<double>(image) *
                      static_cast<double>(pulses);
  double base = 0.0;
  for (int threads : {1, 2, 4, 8, 16}) {
    bp::BackprojectOptions options;
    options.threads = threads;
    const bp::Backprojector driver(scenario.grid, options);
    // Warm-up + timed run.
    (void)driver.form_image(scenario.history);
    Timer timer;
    (void)driver.form_image(scenario.history);
    const double secs = timer.seconds();
    if (threads == 1) base = secs;
    const bp::CubeShape shape{pulses, image, image};
    const auto choice = bp::choose_partition(shape, threads,
                                             options.min_region_edge);
    std::printf("%8d %10.3f %10.3f %8.2fx %15lldx%lldx%lld\n", threads, secs,
                work / secs / 1e9, base / secs,
                static_cast<long long>(choice.parts_x),
                static_cast<long long>(choice.parts_y),
                static_cast<long long>(choice.parts_pulse));
  }
  return 0;
}
