// Reproduces paper Fig. 7: backprojection execution-time breakdown before
// and after approximate strength reduction. The paper reports, on a scaled
// 3K x 3K / 2,809-pulse workload:
//   - before ASR, double-precision square roots dominate, and 40% of the
//     sin/cos time is argument reduction;
//   - ASR removes sqrt/sin/cos from the inner loop with small precompute
//     overhead, for 2.2x (Xeon) / 3.9x (Xeon Phi) kernel speedups.
#include <cstdio>

#include "backprojection/breakdown.h"
#include "backprojection/kernel.h"
#include "bench_util.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 384);
  const Index pulses = args.get("pulses", 96);
  const Index block = args.get("block", 64);

  auto scenario = bench::make_bench_scenario(image, pulses);
  const Region all{0, 0, image, image};
  const double backprojections =
      static_cast<double>(image) * static_cast<double>(image) *
      static_cast<double>(pulses);

  bench::print_header("Fig. 7 - ASR execution-time breakdown (single thread)");
  std::printf("workload: %lldx%lld image, %lld pulses, %lld samples/pulse\n",
              static_cast<long long>(image), static_cast<long long>(image),
              static_cast<long long>(pulses),
              static_cast<long long>(scenario.history.samples_per_pulse()));

  const bp::BaselineBreakdown base = bp::measure_baseline_breakdown(
      scenario.history, scenario.grid, all, 0, pulses);
  std::printf("\nbaseline kernel (Fig. 3(a)): %.3f s total  (%.1f Mbp/s)\n",
              base.total_s, backprojections / base.total_s / 1e6);
  bench::print_rule();
  auto pct = [&](double v) { return 100.0 * v / base.total_s; };
  std::printf("  %-28s %8.3f s  %5.1f %%\n", "sqrt (double range)",
              base.sqrt_s, pct(base.sqrt_s));
  std::printf("  %-28s %8.3f s  %5.1f %%\n", "argument reduction (double)",
              base.argred_s, pct(base.argred_s));
  std::printf("  %-28s %8.3f s  %5.1f %%\n", "sin/cos polynomials",
              base.sincos_s, pct(base.sincos_s));
  std::printf("  %-28s %8.3f s  %5.1f %%\n", "pulse access + interp",
              base.interp_s, pct(base.interp_s));
  std::printf("  %-28s %8.3f s  %5.1f %%\n", "other (loop/position)",
              base.other_s, pct(base.other_s));
  std::printf("  argument reduction is %.0f%% of trig time (paper: ~40%%)\n",
              100.0 * base.argred_s / (base.trig_s() > 0 ? base.trig_s() : 1));

  const bp::AsrBreakdown asr = bp::measure_asr_breakdown(
      scenario.history, scenario.grid, all, 0, pulses, block, block);
  std::printf("\nASR scalar kernel (Fig. 3(b), %lldx%lld blocks): %.3f s total  (%.1f Mbp/s)\n",
              static_cast<long long>(block), static_cast<long long>(block),
              asr.total_s, backprojections / asr.total_s / 1e6);
  bench::print_rule();
  std::printf("  %-28s %8.3f s  %5.1f %%\n", "table precompute (A..Gamma)",
              asr.precompute_s, 100.0 * asr.precompute_s / asr.total_s);
  std::printf("  %-28s %8.3f s  %5.1f %%\n", "strength-reduced inner loop",
              asr.inner_s, 100.0 * asr.inner_s / asr.total_s);

  // SIMD ASR for the full after-picture.
  double simd_s = 0.0;
  if (bp::asr_simd_available()) {
    bp::SoaTile tile(image, image);
    Timer timer;
    bp::backproject_asr_simd(scenario.history, scenario.grid, all, 0, pulses,
                             block, block, geometry::LoopOrder::kXInner, tile);
    simd_s = timer.seconds();
    std::printf("\nASR SIMD kernel (%d-wide): %.3f s  (%.1f Mbp/s)\n",
                bp::asr_simd_width(), simd_s,
                backprojections / simd_s / 1e6);
  }

  std::printf("\nspeedups from ASR:\n");
  bench::print_rule();
  std::printf("  scalar baseline -> scalar ASR : %.2fx   (paper Xeon: 2.2x)\n",
              base.total_s / asr.total_s);
  if (simd_s > 0.0) {
    std::printf("  scalar baseline -> SIMD ASR   : %.2fx\n",
                base.total_s / simd_s);
  }
  return 0;
}
