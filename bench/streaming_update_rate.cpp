// Streaming update-rate sweep (DESIGN.md §13): window size x delta-pulses
// x sub-aperture cache on/off. Each configuration replays the same chunk
// stream through two consecutive StreamSessions sharing one cache — the
// first populates it, the second (the measured one) is the
// overlapping-window / concurrent-session case the cache exists for. With
// the cache off the second session re-sweeps every chunk, so the
// cache-on/cache-off pair isolates the partial-image reuse.
//
// The ops columns are the obs-counter observable from the acceptance
// test: incremental (pixel, pulse) sweep operations actually performed
// vs the O(full) cost of reforming the whole window every update.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "service/service.h"
#include "sim/phase_history.h"
#include "streaming/streaming.h"
#include "streaming/subaperture_cache.h"

namespace {

using namespace sarbp;

std::vector<Index> parse_index_list(const std::string& spec,
                                    std::vector<Index> fallback) {
  std::vector<Index> values;
  std::string current;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!current.empty()) values.push_back(std::atol(current.c_str()));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  return values.empty() ? fallback : values;
}

sim::PhaseHistory slice(const sim::PhaseHistory& h, Index p0, Index p1) {
  sim::PhaseHistory out(p1 - p0, h.samples_per_pulse(), h.bin_spacing(),
                        h.wavenumber());
  for (Index p = p0; p < p1; ++p) {
    const auto src = h.pulse(p);
    std::copy(src.begin(), src.end(), out.pulse(p - p0).begin());
    out.meta(p - p0) = h.meta(p);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 96);
  const Index block = args.get("block", 32);
  const int updates = static_cast<int>(args.get("updates", 16));
  const int workers = static_cast<int>(args.get("workers", 2));
  const int reanchor = static_cast<int>(args.get("reanchor", 0));
  const std::vector<Index> windows =
      parse_index_list(args.gets("windows"), {4, 8});
  const std::vector<Index> deltas =
      parse_index_list(args.gets("deltas"), {4, 16});
  const bench::RepeatSpec spec = bench::repeat_spec(args);
  bench::JsonReporter json("streaming_update_rate", spec);

  bench::print_header("Streaming update rate - window x delta x cache");
  std::printf("image %lldx%lld, block %lld, %d updates/session, %d workers, "
              "re-anchor %s\n",
              static_cast<long long>(image), static_cast<long long>(image),
              static_cast<long long>(block), updates, workers,
              reanchor > 0 ? std::to_string(reanchor).c_str() : "off");
  std::printf("\n%6s %6s %6s %12s %6s %14s %14s %8s\n", "window", "delta",
              "cache", "updates/s", "hits", "ops(stream)", "ops(full)",
              "saving");
  bench::print_rule();

  for (const Index window : windows) {
    for (const Index delta : deltas) {
      const auto scenario = bench::make_bench_scenario(
          image, static_cast<Index>(updates) * delta);
      // O(full) baseline: reforming the whole applied window on every
      // update — window u holds min(u, window) chunks of `delta` pulses.
      std::uint64_t full_ops = 0;
      for (int u = 1; u <= updates; ++u) {
        full_ops += static_cast<std::uint64_t>(image) *
                    static_cast<std::uint64_t>(image) *
                    static_cast<std::uint64_t>(
                        std::min<Index>(static_cast<Index>(u), window) * delta);
      }
      for (const bool cache_on : {false, true}) {
        streaming::StreamStats warm_stats;
        const bench::SampleStats rate = bench::run_repeated(spec, [&] {
          streaming::SubApertureCacheConfig cache_config;
          cache_config.capacity = static_cast<std::size_t>(updates) * 2;
          streaming::SubApertureCache cache(cache_config);

          service::ServiceConfig sc;
          sc.workers = workers;
          service::ImageFormationService srv(sc);

          streaming::StreamConfig config;
          config.grid = scenario.grid;
          config.asr_block_w = config.asr_block_h = block;
          config.chunk_pulses = delta;
          config.window_chunks = window;
          config.reanchor_interval = reanchor;
          if (cache_on) config.cache = &cache;

          // Populate pass: the first session on this scene sweeps every
          // chunk and (cache on) fills the shared partial cache.
          {
            streaming::StreamSession cold = streaming::open_stream(srv, config);
            for (int u = 0; u < updates; ++u) {
              cold.push(slice(scenario.history, u * delta, (u + 1) * delta));
            }
            cold.wait_idle(std::chrono::minutes(5));
            cold.close();
          }
          // Measured pass: a second session replaying the same stream —
          // every non-anchor update hits the warm cache.
          streaming::StreamSession warm = streaming::open_stream(srv, config);
          Timer t;
          for (int u = 0; u < updates; ++u) {
            warm.push(slice(scenario.history, u * delta, (u + 1) * delta));
          }
          warm.wait_idle(std::chrono::minutes(5));
          const double seconds = t.seconds();
          warm_stats = warm.stats();
          warm.close();
          return static_cast<double>(warm_stats.updates_completed) / seconds;
        });
        const std::uint64_t stream_ops = warm_stats.backprojections;
        char saving[32];
        if (stream_ops > 0) {
          std::snprintf(saving, sizeof(saving), "%7.1fx",
                        static_cast<double>(full_ops) /
                            static_cast<double>(stream_ops));
        } else {
          // All-hit replay: zero sweeps performed.
          std::snprintf(saving, sizeof(saving), "%8s", "all-hit");
        }
        std::printf(
            "%6lld %6lld %6s %12.1f %6llu %14llu %14llu %s\n",
            static_cast<long long>(window), static_cast<long long>(delta),
            cache_on ? "on" : "off", rate.median,
            static_cast<unsigned long long>(warm_stats.cache_hits),
            static_cast<unsigned long long>(stream_ops),
            static_cast<unsigned long long>(full_ops), saving);
        json.add("update_rate",
                 {{"image", std::to_string(image)},
                  {"window", std::to_string(window)},
                  {"delta", std::to_string(delta)},
                  {"cache", cache_on ? "on" : "off"},
                  {"updates", std::to_string(updates)}},
                 "updates/s", rate);
      }
    }
  }
  std::printf("\n(streaming is O(delta) per update vs O(window*delta) per full "
              "reform; the saving column is the measured op ratio)\n");
  return 0;
}
