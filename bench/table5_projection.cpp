// Reproduces paper Table 5: projection of the largest inputs that satisfy
// the real-time constraint on 32-256 nodes, with per-stage time-breakdown
// percentages (registration, CCD, PCIe, MPI, disk).
//
// The paper's own Table 5 is an analytic projection (§5.4); this bench
// evaluates the same model: per-stage FLOPs / (peak x efficiency), 10% FFT
// efficiency, 6 GB/s PCIe, 2 GB/s MPI, 200 MB/s disk.
#include <cstdio>

#include "bench_util.h"
#include "perfmodel/projection.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  const bench::Args args(argc, argv);

  perfmodel::NodeModel model;
  model.new_pulses = args.get("pulses", model.new_pulses);

  bench::print_header("Table 5 - projection of largest real-time inputs");

  struct PaperRow {
    Index nodes;
    const char* image;
    int k;
    const char* s;
    double tbps;
    double eff;
    double reg, ccd, pcie, mpi, disk;  // time-breakdown %
  };
  const PaperRow paper[] = {
      {32, "18K", 12, "26K", 1.060, 0.93, 0.11, 0.30, 1.63, 3.71, 10.38},
      {64, "27K", 17, "38K", 2.115, 0.93, 0.18, 0.45, 1.52, 3.45, 7.19},
      {128, "38K", 23, "54K", 4.213, 0.93, 0.39, 0.63, 1.45, 3.35, 5.05},
      {256, "54K", 33, "77K", 8.373, 0.92, 0.76, 0.89, 1.40, 3.37, 3.52},
  };

  std::printf("\n%-6s | %-38s | %s\n", "", "paper", "model");
  std::printf("%-6s | %5s %3s %5s %6s %4s | %5s %3s %5s %6s %4s\n", "nodes",
              "img", "k", "S", "Tbp/s", "eff", "img", "k", "S", "Tbp/s",
              "eff");
  bench::print_rule();
  std::vector<perfmodel::ScalingPoint> points;
  for (const auto& row : paper) {
    const Index image = perfmodel::largest_realtime_image(model, row.nodes);
    const auto p = perfmodel::evaluate_point(model, row.nodes, image);
    points.push_back(p);
    std::printf(
        "%-6lld | %5s %3d %5s %6.3f %4.2f | %4.0fK %3d %4.0fK %6.3f %4.2f\n",
        static_cast<long long>(row.nodes), row.image, row.k, row.s, row.tbps,
        row.eff, static_cast<double>(p.image) / 1000.0, p.accumulation,
        static_cast<double>(p.samples) / 1000.0,
        p.throughput_bp_per_s / 1e12, p.parallel_efficiency);
  }

  std::printf("\ntime breakdown (%% of the 1 s real-time budget):\n");
  std::printf("%-6s | %-30s | %s\n", "", "paper (reg/ccd/pcie/mpi/disk)",
              "model (reg/ccd/pcie/mpi/disk)");
  bench::print_rule();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& row = paper[i];
    const auto& p = points[i];
    std::printf(
        "%-6lld | %5.2f %5.2f %5.2f %5.2f %6.2f | %5.2f %5.2f %5.2f %5.2f %6.2f\n",
        static_cast<long long>(row.nodes), row.reg, row.ccd, row.pcie,
        row.mpi, row.disk, 100.0 * p.t_registration, 100.0 * p.t_ccd,
        100.0 * p.t_pcie, 100.0 * p.t_mpi, 100.0 * p.t_disk);
  }
  std::printf("\nhigh-end scenario check: 256 nodes handle a %lldK image "
              "(paper: ~the 57K scenario at ~256 nodes)\n",
              static_cast<long long>(points.back().image / 1000));
  return 0;
}
