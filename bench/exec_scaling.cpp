// Tile-executor scaling bench: one backprojection job decomposed into
// (region-tile x pulse-chunk) tasks by the §4.2 partitioner, run through
// the work-stealing TileExecutor while sweeping worker count, job size,
// and steal on/off.
//
// steal=off is the serial baseline: the whole group runs on the worker
// that injected it (exactly the pre-executor service behaviour, one job
// per core). steal=on lets every idle worker converge on the job, so the
// steal-on/steal-off ratio at each worker count is the intra-job speedup
// the executor buys. Parity with Backprojector::add_pulses is asserted
// bit-exactly in tests/test_exec.cpp; this bench only measures time.
//
//   exec_scaling [--ix 96,160 --pulses 48 --block 32 --workers 1,2,4
//                 --min-edge 32 --warmup 1 --repeat 3 --json out.json]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/grid2d.h"
#include "common/timer.h"
#include "exec/executor.h"
#include "exec/formation_tasks.h"

namespace {

using namespace sarbp;

std::vector<Index> parse_index_list(const std::string& spec,
                                    std::vector<Index> fallback) {
  std::vector<Index> values;
  std::string current;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!current.empty()) values.push_back(std::atol(current.c_str()));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  return values.empty() ? fallback : values;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::vector<Index> images =
      parse_index_list(args.gets("ix"), {96, 160});
  const std::vector<Index> workers_list =
      parse_index_list(args.gets("workers"), {1, 2, 4});
  const Index pulses = args.get("pulses", 48);
  const Index block = args.get("block", 32);
  const Index min_edge = args.get("min-edge", 32);
  const bench::RepeatSpec spec = bench::repeat_spec(args);
  bench::JsonReporter json("exec_scaling", spec);

  bench::print_header(
      "tile-executor scaling: workers x job size x steal on/off");
  std::printf("pulses %lld, ASR block %lld, min region edge %lld, "
              "warmup %d, repeat %d\n",
              static_cast<long long>(pulses), static_cast<long long>(block),
              static_cast<long long>(min_edge), spec.warmup, spec.repeat);
  bench::print_rule();
  std::printf("%6s %8s %6s %11s %11s %8s %8s\n", "image", "workers", "steal",
              "median s", "iqr s", "tasks", "speedup");
  bench::print_rule();

  for (const Index image : images) {
    const auto scenario =
        bench::make_bench_scenario(image, pulses);
    bp::BackprojectOptions options;
    options.kernel = bp::KernelKind::kAsrScalar;
    options.asr_block_w = block;
    options.asr_block_h = block;
    options.min_region_edge = min_edge;

    for (const Index workers : workers_list) {
      double serial_median = 0.0;
      for (const bool steal : {false, true}) {
        std::size_t tasks = 0;
        const auto sample = [&]() -> double {
          Grid2D<CFloat> out(scenario.grid.width(), scenario.grid.height());
          exec::ExecOptions exec_options;
          exec_options.workers = static_cast<int>(workers);
          exec_options.steal = steal;
          obs::Registry registry;
          exec_options.metrics = &registry;
          exec::TileExecutor executor(std::move(exec_options));
          auto group = exec::make_backprojection_group(
              scenario.history, scenario.grid, options,
              static_cast<int>(workers), out);
          Timer timer;
          executor.run(group);
          const double seconds = timer.seconds();
          tasks = registry.counter("exec.tasks.run").value();
          return seconds;
        };
        const bench::SampleStats stats = bench::run_repeated(spec, sample);
        if (!steal) serial_median = stats.median;
        const double speedup =
            steal && stats.median > 0.0 ? serial_median / stats.median : 1.0;
        std::printf("%6lld %8lld %6s %11.5f %11.5f %8zu %7.2fx\n",
                    static_cast<long long>(image),
                    static_cast<long long>(workers), steal ? "on" : "off",
                    stats.median, stats.iqr(), tasks, speedup);
        json.add("backprojection_job",
                 {{"image", std::to_string(image)},
                  {"workers", std::to_string(workers)},
                  {"steal", steal ? "on" : "off"},
                  {"pulses", std::to_string(pulses)},
                  {"tasks", std::to_string(tasks)}},
                 "seconds", stats);
      }
    }
    bench::print_rule();
  }
  return 0;
}
