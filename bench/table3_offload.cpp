// Reproduces paper Table 3: single-node backprojection throughput for a
// dual-socket Xeon, one Xeon Phi, and Xeon + 2 Xeon Phi.
//
// Paper:   Xeon 7.4 Gbp/s (1.0x, 42%), 1 Phi 14.0 (1.9x, 28%),
//          Xeon + 2 Phi 35.5 (4.8x, 30%).
// Here the coprocessors are device models anchored to the measured host
// kernel rate (DESIGN.md §2), so the *ratios* and efficiencies are the
// reproduction target; absolute Gbp/s reflect this container's one core.
// The pure-model column shows the throughput the paper hardware implies.
#include <cstdio>

#include "backprojection/kernel.h"
#include "bench_util.h"
#include "offload/runtime.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  using namespace sarbp::offload;
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 384);
  const Index pulses = args.get("pulses", 64);
  const int frames = static_cast<int>(args.get("frames", 4));

  auto scenario = bench::make_bench_scenario(image, pulses);
  bp::BackprojectOptions bp_opts;

  bench::print_header("Table 3 - single-node backprojection throughput");
  std::printf("workload: %lldx%lld image, %lld pulses; device models anchored "
              "to measured host rate\n",
              static_cast<long long>(image), static_cast<long long>(image),
              static_cast<long long>(pulses));

  struct ConfigRow {
    const char* label;
    const char* paper_gbps;
    const char* paper_speedup;
    const char* paper_eff;
    OffloadConfig config;
    double model_gbps;  // what the specs alone imply
  };
  const double xeon_eff = xeon_e5_2670_dual().effective_gflops();
  const double knc_eff = knights_corner().effective_gflops();
  const double per_bp = bp::kFlopsPerBackprojection;

  OffloadConfig xeon_only;
  OffloadConfig knc_only;
  knc_only.use_host_compute = false;
  knc_only.coprocessors = {knights_corner()};
  OffloadConfig combined;
  combined.coprocessors = {knights_corner(), knights_corner()};

  ConfigRow rows[] = {
      {"Xeon (2-socket)", "7.4", "1.0x", "42%", xeon_only,
       xeon_eff / per_bp},
      {"1 Xeon Phi", "14.0", "1.9x", "28%", knc_only, knc_eff / per_bp},
      {"Xeon + 2 Xeon Phi", "35.5", "4.8x", "30%", combined,
       (xeon_eff + 2 * knc_eff) / per_bp},
  };

  double measured[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    OffloadRuntime runtime(scenario.grid, bp_opts, rows[i].config);
    Grid2D<CFloat> out(image, image);
    OffloadReport report;
    for (int f = 0; f < frames; ++f) {
      out.fill(CFloat{});
      report = runtime.form_image(scenario.history, out);
    }
    measured[i] = report.throughput_bp_per_s();
  }

  std::printf("\n%-20s | %8s %8s %5s | %14s %8s | %11s\n", "configuration",
              "paper", "speedup", "eff", "measured Gbp/s", "speedup",
              "model Gbp/s");
  bench::print_rule();
  for (int i = 0; i < 3; ++i) {
    std::printf("%-20s | %8s %8s %5s | %14.3f %7.2fx | %11.1f\n",
                rows[i].label, rows[i].paper_gbps, rows[i].paper_speedup,
                rows[i].paper_eff, measured[i] / 1e9,
                measured[i] / measured[0], rows[i].model_gbps);
  }
  std::printf("\n(the model column is peak x efficiency / 38 FLOP, i.e. the\n"
              " paper-hardware throughput the Table 3 efficiencies imply)\n");
  return 0;
}
