// Job-service throughput bench: replays the canonical repeated-scene trace
// through the multi-tenant image-formation service, sweeping the worker
// count and toggling the formation-plan cache. Reports throughput, latency
// percentiles, and per-request setup time with the cache on vs off — the
// cache's whole value proposition is that repeated-geometry requests skip
// the ASR table construction, so `setup(hit)` should collapse toward zero
// while `setup(miss)` stays at the full build cost.
//
//   service_throughput [--scenes 4 --repeats 6 --ix 128 --pulses 64
//                       --block 32 --workers 1,2,4 --steal 1
//                       --warmup 1 --repeat 3 --json out.json
//                       --metrics-out m.json]
//
// --warmup/--repeat rerun each (workers, cache) replay and report the
// median-throughput run; --json emits a sarbp.bench.v1 record per
// configuration (median + IQR of jobs/s over the repeats).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "service/trace.h"

namespace {

using namespace sarbp;

std::vector<int> parse_worker_list(const std::string& spec) {
  std::vector<int> workers;
  std::string current;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!current.empty()) workers.push_back(std::atoi(current.c_str()));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  return workers;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const int scenes = static_cast<int>(args.get("scenes", 4));
  const int repeats = static_cast<int>(args.get("repeats", 6));
  const Index image = args.get("ix", 128);
  const Index pulses = args.get("pulses", 64);
  const Index block = args.get("block", 32);
  const bool steal = args.get("steal", 1) != 0;
  std::vector<int> worker_counts = parse_worker_list(args.gets("workers"));
  if (worker_counts.empty()) worker_counts = {1, 2, 4};
  const bench::RepeatSpec spec = bench::repeat_spec(args);
  bench::JsonReporter json("service_throughput", spec);

  bench::print_header("job service throughput: workers x plan cache");
  std::printf("trace: %d scenes x %d repeats, %lldx%lld px, %lld pulses, "
              "ASR block %lld\n",
              scenes, repeats, static_cast<long long>(image),
              static_cast<long long>(image), static_cast<long long>(pulses),
              static_cast<long long>(block));
  const service::Trace trace = service::make_repeated_scene_trace(
      scenes, repeats, image, pulses, block);

  bench::print_rule();
  std::printf("%7s %6s %9s %9s %9s %9s %10s %10s %6s %6s\n", "workers",
              "cache", "jobs/s", "p50 s", "p90 s", "p99 s", "setup-hit",
              "setup-miss", "hits", "miss");
  bench::print_rule();

  double setup_hit = 0.0;
  double setup_miss = 0.0;
  for (const int workers : worker_counts) {
    for (const bool cache_on : {false, true}) {
      // Replay warmup+repeat times; print the median-throughput run so the
      // table and the JSON summary describe the same sample set.
      std::vector<service::ReplayStats> runs;
      const auto sample = [&]() -> double {
        service::ServiceConfig config;
        config.workers = workers;
        config.steal = steal;
        config.max_pending = static_cast<std::size_t>(scenes * repeats + 1);
        config.plan_cache_capacity =
            cache_on ? static_cast<std::size_t>(scenes) : 0;
        service::ImageFormationService srv(config);
        const service::ReplayStats run = service::replay_trace(trace, srv);
        srv.drain();
        runs.push_back(run);
        return run.throughput_jobs_per_s;
      };
      const bench::SampleStats sampled = bench::run_repeated(spec, sample);
      json.add("replay",
               {{"workers", std::to_string(workers)},
                {"cache", cache_on ? "on" : "off"},
                {"steal", steal ? "on" : "off"},
                {"scenes", std::to_string(scenes)},
                {"repeats", std::to_string(repeats)}},
               "jobs_per_s", sampled);
      // The run whose throughput is closest to the median of the measured
      // samples (warmup runs were also pushed; skip them).
      const service::ReplayStats* best = &runs.back();
      for (std::size_t i = static_cast<std::size_t>(spec.warmup);
           i < runs.size(); ++i) {
        if (std::abs(runs[i].throughput_jobs_per_s - sampled.median) <
            std::abs(best->throughput_jobs_per_s - sampled.median)) {
          best = &runs[i];
        }
      }
      const service::ReplayStats& stats = *best;

      std::printf("%7d %6s %9.2f %9.4f %9.4f %9.4f %10.5f %10.5f %6zu %6zu\n",
                  workers, cache_on ? "on" : "off",
                  stats.throughput_jobs_per_s, stats.latency_p50_s,
                  stats.latency_p90_s, stats.latency_p99_s,
                  stats.mean_setup_hit_s, stats.mean_setup_miss_s,
                  stats.plan_hits, stats.plan_misses);
      if (stats.failed + stats.cancelled + stats.expired + stats.rejected > 0) {
        std::printf("  !! %zu failed, %zu cancelled, %zu expired, "
                    "%zu rejected\n",
                    stats.failed, stats.cancelled, stats.expired,
                    stats.rejected);
      }
      if (cache_on && stats.plan_hits > 0) {
        setup_hit = stats.mean_setup_hit_s;
        setup_miss = stats.mean_setup_miss_s;
      }
    }
  }
  bench::print_rule();
  if (setup_miss > 0.0) {
    std::printf("plan-cache setup speedup (last cache-on row): %.1fx "
                "(%.5f s -> %.5f s per request)\n",
                setup_hit > 0.0 ? setup_miss / setup_hit : 0.0, setup_miss,
                setup_hit);
  }

  const std::string metrics_out = args.gets("metrics-out");
  if (!metrics_out.empty()) {
    obs::write_json_file(obs::registry(), metrics_out);
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}
