// Shared helpers for the reproduction benches: command-line options,
// table printing, and the standard calibrated scenario (DESIGN.md §5).
//
// Every bench accepts --ix/--iy/--pulses/--frames style overrides so the
// paper-scale configurations can be run on bigger machines; the defaults
// are scaled to finish in seconds on one core. Shapes (ratios, who-wins,
// crossovers) are the reproduction target, not absolute wall-clock.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "backprojection/backprojector.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "geometry/grid.h"
#include "geometry/trajectory.h"
#include "sim/collector.h"
#include "sim/scene.h"

namespace sarbp::bench {

/// Minimal --key value / --key=value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      // Normalize "--key=value" into separate key and value tokens so every
      // accessor handles both spellings.
      const std::string token = argv[i];
      const std::size_t eq = token.find('=');
      if (token.rfind("--", 0) == 0 && eq != std::string::npos) {
        tokens_.push_back(token.substr(0, eq));
        tokens_.push_back(token.substr(eq + 1));
      } else {
        tokens_.push_back(token);
      }
    }
  }

  [[nodiscard]] long get(const std::string& key, long fallback) const {
    const auto v = gets(key);
    return v.empty() ? fallback : std::atol(v.c_str());
  }

  [[nodiscard]] double getf(const std::string& key, double fallback) const {
    const auto v = gets(key);
    return v.empty() ? fallback : std::atof(v.c_str());
  }

  /// String-valued option; empty when absent.
  [[nodiscard]] std::string gets(const std::string& key) const {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i] == "--" + key) return tokens_[i + 1];
    }
    return {};
  }

  [[nodiscard]] bool has(const std::string& flag) const {
    for (const auto& token : tokens_) {
      if (token == "--" + flag) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> tokens_;
};

/// The calibrated X-band scenario every bench draws from: 40 km standoff,
/// 0.5 m pixels (matched to the 300 MHz chirp), dense random-fidelity pulse
/// data unless a bench needs reflector structure.
struct BenchScenario {
  geometry::ImageGrid grid;
  std::vector<geometry::PulsePose> poses;
  sim::PhaseHistory history;
};

/// `oversample` multiplies the ADC rate: more range bins per metre, i.e.
/// larger In arrays and wider gather spreads (the paper's 81K-sample pulses
/// are far bigger than any cache level).
inline BenchScenario make_bench_scenario(
    Index image, Index pulses,
    sim::CollectionFidelity fidelity = sim::CollectionFidelity::kRandom,
    std::uint64_t seed = 20120615, double oversample = 1.0) {
  Rng rng(seed);
  geometry::ImageGrid grid(image, image, 0.5);
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.02;
  orbit.prf_hz = 500.0;
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.05;
  auto poses = geometry::circular_orbit(orbit, errors, pulses, rng);

  sim::ClusterSceneParams scene_params;
  scene_params.clusters = 4;
  const auto scene = sim::make_cluster_scene(grid, scene_params, rng);
  sim::CollectorParams collector;
  collector.fidelity = fidelity;
  collector.chirp.sample_rate_hz *= oversample;
  auto history = sim::collect(collector, grid, scene, poses, rng);
  return BenchScenario{grid, std::move(poses), std::move(history)};
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("host: %s\n", cpu_summary().c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace sarbp::bench
