// Shared helpers for the reproduction benches: command-line options,
// table printing, and the standard calibrated scenario (DESIGN.md §5).
//
// Every bench accepts --ix/--iy/--pulses/--frames style overrides so the
// paper-scale configurations can be run on bigger machines; the defaults
// are scaled to finish in seconds on one core. Shapes (ratios, who-wins,
// crossovers) are the reproduction target, not absolute wall-clock.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "backprojection/backprojector.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "geometry/grid.h"
#include "geometry/trajectory.h"
#include "sim/collector.h"
#include "sim/scene.h"

namespace sarbp::bench {

/// Minimal --key value / --key=value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      // Normalize "--key=value" into separate key and value tokens so every
      // accessor handles both spellings.
      const std::string token = argv[i];
      const std::size_t eq = token.find('=');
      if (token.rfind("--", 0) == 0 && eq != std::string::npos) {
        tokens_.push_back(token.substr(0, eq));
        tokens_.push_back(token.substr(eq + 1));
      } else {
        tokens_.push_back(token);
      }
    }
  }

  [[nodiscard]] long get(const std::string& key, long fallback) const {
    const auto v = gets(key);
    return v.empty() ? fallback : std::atol(v.c_str());
  }

  [[nodiscard]] double getf(const std::string& key, double fallback) const {
    const auto v = gets(key);
    return v.empty() ? fallback : std::atof(v.c_str());
  }

  /// String-valued option; empty when absent.
  [[nodiscard]] std::string gets(const std::string& key) const {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i] == "--" + key) return tokens_[i + 1];
    }
    return {};
  }

  [[nodiscard]] bool has(const std::string& flag) const {
    for (const auto& token : tokens_) {
      if (token == "--" + flag) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> tokens_;
};

/// The calibrated X-band scenario every bench draws from: 40 km standoff,
/// 0.5 m pixels (matched to the 300 MHz chirp), dense random-fidelity pulse
/// data unless a bench needs reflector structure.
struct BenchScenario {
  geometry::ImageGrid grid;
  std::vector<geometry::PulsePose> poses;
  sim::PhaseHistory history;
};

/// `oversample` multiplies the ADC rate: more range bins per metre, i.e.
/// larger In arrays and wider gather spreads (the paper's 81K-sample pulses
/// are far bigger than any cache level).
inline BenchScenario make_bench_scenario(
    Index image, Index pulses,
    sim::CollectionFidelity fidelity = sim::CollectionFidelity::kRandom,
    std::uint64_t seed = 20120615, double oversample = 1.0) {
  Rng rng(seed);
  geometry::ImageGrid grid(image, image, 0.5);
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.02;
  orbit.prf_hz = 500.0;
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.05;
  auto poses = geometry::circular_orbit(orbit, errors, pulses, rng);

  sim::ClusterSceneParams scene_params;
  scene_params.clusters = 4;
  const auto scene = sim::make_cluster_scene(grid, scene_params, rng);
  sim::CollectorParams collector;
  collector.fidelity = fidelity;
  collector.chirp.sample_rate_hz *= oversample;
  auto history = sim::collect(collector, grid, scene, poses, rng);
  return BenchScenario{grid, std::move(poses), std::move(history)};
}

// ------------------------------------------------------ repetition/json ---
//
// Every bench that reports timings accepts:
//   --warmup=N   discarded runs before measurement (default 0)
//   --repeat=N   measured runs per configuration (default 1)
//   --json=PATH  machine-readable results: one `sarbp.bench.v1` record per
//                file, carrying median + IQR over the repeat samples.

struct RepeatSpec {
  int warmup = 0;
  int repeat = 1;
  std::string json_path;  ///< empty = no JSON output
};

inline RepeatSpec repeat_spec(const Args& args) {
  RepeatSpec spec;
  spec.warmup = static_cast<int>(args.get("warmup", 0));
  spec.repeat = std::max(1, static_cast<int>(args.get("repeat", 1)));
  spec.json_path = args.gets("json");
  return spec;
}

/// Robust summary of repeat samples. With one sample median == q1 == q3.
struct SampleStats {
  double median = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;

  [[nodiscard]] double iqr() const { return q3 - q1; }
};

inline SampleStats summarize(std::vector<double> samples) {
  SampleStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  // Linear-interpolation quantile (the common "type 7" estimator).
  const auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  stats.q1 = quantile(0.25);
  stats.median = quantile(0.5);
  stats.q3 = quantile(0.75);
  return stats;
}

/// Runs `sample` warmup+repeat times (discarding the warmups) and returns
/// the summary over the measured samples. `sample` returns the metric for
/// one run (seconds, jobs/s, ...).
inline SampleStats run_repeated(const RepeatSpec& spec,
                                const std::function<double()>& sample) {
  for (int i = 0; i < spec.warmup; ++i) (void)sample();
  std::vector<double> measured;
  measured.reserve(static_cast<std::size_t>(spec.repeat));
  for (int i = 0; i < spec.repeat; ++i) measured.push_back(sample());
  return summarize(std::move(measured));
}

/// Accumulates bench results and writes one schema-versioned JSON document:
///   {"schema": "sarbp.bench.v1", "bench": ..., "host": ...,
///    "warmup": N, "repeat": N,
///    "results": [{"name": ..., "params": {...}, "unit": ...,
///                 "median": ..., "q1": ..., "q3": ..., "iqr": ...}, ...]}
/// No-op when the spec carries no --json path.
class JsonReporter {
 public:
  JsonReporter(std::string bench_name, RepeatSpec spec)
      : bench_name_(std::move(bench_name)), spec_(std::move(spec)) {}

  ~JsonReporter() { write(); }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  void add(const std::string& name,
           std::vector<std::pair<std::string, std::string>> params,
           const std::string& unit, const SampleStats& stats) {
    rows_.push_back(Row{name, std::move(params), unit, stats});
  }

  /// Writes the document (idempotent; implied by the destructor).
  void write() {
    if (spec_.json_path.empty() || written_) return;
    written_ = true;
    std::FILE* f = std::fopen(spec_.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json: cannot open %s\n", spec_.json_path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"schema\": \"sarbp.bench.v1\",\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", escape(bench_name_).c_str());
    std::fprintf(f, "  \"host\": \"%s\",\n", escape(cpu_summary()).c_str());
    std::fprintf(f, "  \"warmup\": %d,\n  \"repeat\": %d,\n", spec_.warmup,
                 spec_.repeat);
    std::fprintf(f, "  \"results\": [");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"params\": {",
                   i == 0 ? "" : ",", escape(row.name).c_str());
      for (std::size_t j = 0; j < row.params.size(); ++j) {
        std::fprintf(f, "%s\"%s\": \"%s\"", j == 0 ? "" : ", ",
                     escape(row.params[j].first).c_str(),
                     escape(row.params[j].second).c_str());
      }
      std::fprintf(f,
                   "}, \"unit\": \"%s\", \"median\": %.9g, \"q1\": %.9g, "
                   "\"q3\": %.9g, \"iqr\": %.9g}",
                   escape(row.unit).c_str(), row.stats.median, row.stats.q1,
                   row.stats.q3, row.stats.iqr());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("json: wrote %zu result(s) to %s\n", rows_.size(),
                spec_.json_path.c_str());
  }

 private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;
    std::string unit;
    SampleStats stats;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string bench_name_;
  RepeatSpec spec_;
  std::vector<Row> rows_;
  bool written_ = false;
};

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("host: %s\n", cpu_summary().c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace sarbp::bench
