// Table 4 through the serving stack: weak scaling of the *sharded*
// formation service. The paper grows the image with the cluster so
// per-node work stays constant (1-16 nodes, efficiency 1.00 -> 0.93); here
// the image edge grows ~ sqrt(shards), block-aligned so the grid splitter
// cuts on ASR block boundaries, and every request flows through the full
// service path: admission -> weighted-fair claim -> shard router ->
// per-rank tile executor -> mailbox gather.
//
//   table4_service_scaling [--edge 96 --pulses 32 --block 16 --jobs 4
//                           --shards 1,2,4 --shard-workers 1
//                           --warmup 0 --repeat 1 --json out.json]
//
// The host interleaves all rank threads on the same cores, so wall-clock
// speedup is unobservable; like table4_weak_scaling, per-shard efficiency
// is computed from the gathered critical path (`compute_seconds` is the
// max over shard parts). Throughput is reported both as completed jobs/s
// (service view) and modeled Gbp/s = pixels x pulses / critical path
// (cluster view, every shard running in parallel).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "service/service.h"

namespace {

using namespace sarbp;

std::vector<int> parse_int_list(const std::string& spec) {
  std::vector<int> out;
  std::string current;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!current.empty()) out.push_back(std::atoi(current.c_str()));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  return out;
}

/// Smallest block multiple >= edge * sqrt(shards): weak scaling with cuts
/// that stay on plan-block boundaries.
Index scaled_edge(Index edge, int shards, Index block) {
  const double side = static_cast<double>(edge) *
                      std::sqrt(static_cast<double>(shards));
  const auto blocks = static_cast<Index>(
      std::ceil(side / static_cast<double>(block)));
  return std::max<Index>(1, blocks) * block;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const Index edge = args.get("edge", 96);
  const Index pulses = args.get("pulses", 32);
  const Index block = args.get("block", 16);
  const int jobs = static_cast<int>(args.get("jobs", 4));
  const int shard_workers = static_cast<int>(args.get("shard-workers", 1));
  std::vector<int> shard_counts = parse_int_list(args.gets("shards"));
  if (shard_counts.empty()) shard_counts = {1, 2, 4};
  const bench::RepeatSpec spec = bench::repeat_spec(args);
  bench::JsonReporter json("table4_service_scaling", spec);

  bench::print_header("Table 4 via the sharded formation service");
  std::printf("weak scaling: image edge ~ %lld x sqrt(shards) "
              "(block-aligned to %lld), %lld pulses, %d jobs/config\n",
              static_cast<long long>(edge), static_cast<long long>(block),
              static_cast<long long>(pulses), jobs);
  bench::print_rule();
  std::printf("%6s %8s %14s %10s %16s %10s\n", "shards", "image",
              "crit.path (s)", "jobs/s", "Gbp/s (modeled)", "efficiency");
  bench::print_rule();

  double base_rate = 0.0;
  for (const int shards : shard_counts) {
    const Index side = scaled_edge(edge, shards, block);
    const auto scenario = bench::make_bench_scenario(side, pulses);
    const auto history =
        std::make_shared<const sim::PhaseHistory>(scenario.history);

    double crit_path = 0.0;  // filled by the median-throughput sample
    const auto sample = [&]() -> double {
      service::ServiceConfig config;
      config.workers = 1;
      config.shards = shards;
      config.shard_workers = shard_workers;
      // Force the splitter: weak scaling measures the sharded data path,
      // so even the base image must not take the single-shard shortcut.
      config.shard_small_pixels = 0;
      config.max_pending = static_cast<std::size_t>(jobs) + 1;
      service::ImageFormationService srv(config);

      std::vector<std::shared_ptr<service::JobHandle>> handles;
      Timer wall;
      for (int j = 0; j < jobs; ++j) {
        service::ImageFormationRequest req;
        req.grid = scenario.grid;
        req.pulses = history;
        req.asr_block_w = req.asr_block_h = block;
        auto outcome = srv.submit(std::move(req));
        if (!outcome.admitted()) continue;
        handles.push_back(std::move(outcome.handle));
      }
      double done = 0.0;
      double max_compute = 0.0;
      for (const auto& handle : handles) {
        const service::JobResult& result = handle->wait();
        if (result.state != service::JobState::kDone) continue;
        done += 1.0;
        max_compute = std::max(max_compute, result.compute_seconds);
      }
      const double seconds = wall.seconds();
      srv.drain();
      crit_path = max_compute;
      return seconds > 0.0 ? done / seconds : 0.0;
    };
    const bench::SampleStats sampled = bench::run_repeated(spec, sample);

    const double work = static_cast<double>(side) *
                        static_cast<double>(side) *
                        static_cast<double>(pulses);
    const double gbps =
        crit_path > 0.0 ? work / crit_path / 1e9 : 0.0;
    const double per_shard_rate = gbps / static_cast<double>(shards);
    if (base_rate == 0.0) base_rate = per_shard_rate;
    const double efficiency =
        base_rate > 0.0 ? per_shard_rate / base_rate : 0.0;
    std::printf("%6d %8lld %14.3f %10.2f %16.3f %10.2f\n", shards,
                static_cast<long long>(side), crit_path, sampled.median,
                gbps, efficiency);

    json.add("weak_scaling",
             {{"shards", std::to_string(shards)},
              {"shard_workers", std::to_string(shard_workers)},
              {"image", std::to_string(side)},
              {"pulses", std::to_string(pulses)},
              {"jobs", std::to_string(jobs)},
              {"critical_path_s", std::to_string(crit_path)},
              {"efficiency", std::to_string(efficiency)}},
             "jobs_per_s", sampled);
  }
  bench::print_rule();
  std::printf("(efficiency: per-shard modeled rate vs the first row; the\n"
              " in-process cluster shares one machine, so speedup is\n"
              " critical-path based as in table4_weak_scaling)\n");
  return 0;
}
