// Ablation (§3.5): ASR block-size sweep — "a larger block size increases
// errors, but reduces the pre-computation time". google-benchmark sweep of
// the ASR kernel over block edges, with the precompute fraction reported.
#include <benchmark/benchmark.h>

#include "backprojection/breakdown.h"
#include "backprojection/kernel.h"
#include "bench_util.h"

namespace {

using namespace sarbp;

const bench::BenchScenario& scenario() {
  static const bench::BenchScenario s = bench::make_bench_scenario(256, 32);
  return s;
}

void BM_AsrBlockSweep(benchmark::State& state) {
  const auto& s = scenario();
  const auto block = static_cast<Index>(state.range(0));
  const Region all{0, 0, s.grid.width(), s.grid.height()};
  bp::SoaTile tile(all.width, all.height);
  for (auto _ : state) {
    bp::backproject_asr_scalar(s.history, s.grid, all, 0,
                               s.history.num_pulses(), block, block,
                               geometry::LoopOrder::kXInner, tile);
  }
  const auto breakdown = bp::measure_asr_breakdown(
      s.history, s.grid, all, 0, s.history.num_pulses(), block, block);
  state.counters["precompute_frac"] =
      breakdown.total_s > 0 ? breakdown.precompute_s / breakdown.total_s : 0;
}
BENCHMARK(BM_AsrBlockSweep)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
