// Ablation (paper §2): incremental backprojection via the circular batch
// buffer. Backprojecting only the N new pulses and summing k+1 stored
// batch images must beat re-backprojecting all (k+1)N pulses by ~k+1x,
// at identical output (linearity).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "backprojection/accumulator.h"
#include "backprojection/backprojector.h"
#include "bench_util.h"
#include "common/snr.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 192);
  const Index batch = args.get("pulses", 24);  // N: new pulses per image
  const bench::RepeatSpec spec = bench::repeat_spec(args);
  bench::JsonReporter json("ablation_incremental", spec);

  bench::print_header("Ablation - incremental backprojection (circular buffer)");
  std::printf("image %lldx%lld, N = %lld new pulses per frame, "
              "warmup %d, repeat %d\n",
              static_cast<long long>(image), static_cast<long long>(image),
              static_cast<long long>(batch), spec.warmup, spec.repeat);
  std::printf("\n%4s %18s %18s %9s %12s\n", "k", "recompute (s)",
              "incremental (s)", "speedup", "SNR (dB)");
  bench::print_rule();

  bp::BackprojectOptions options;
  options.threads = 1;

  for (int k : {1, 2, 4, 8}) {
    const Index total_pulses = static_cast<Index>(k + 1) * batch;
    auto scenario = bench::make_bench_scenario(image, total_pulses);
    const bp::Backprojector driver(scenario.grid, options);
    const Region all{0, 0, image, image};

    // Full recompute of the (k+1)N-pulse image.
    Grid2D<CFloat> full(image, image);
    const bench::SampleStats full_stats = bench::run_repeated(spec, [&] {
      full = Grid2D<CFloat>(image, image);
      Timer t;
      driver.add_pulses_region(scenario.history, all, 0, total_pulses, full);
      return t.seconds();
    });

    // Batches 0..k-1 precomputed once — in steady state they are already
    // in the buffer; the measured per-frame cost is one new batch plus
    // the buffer re-sum.
    std::vector<Grid2D<CFloat>> warm;
    warm.reserve(static_cast<std::size_t>(k));
    for (int b = 0; b < k; ++b) {
      Grid2D<CFloat> img(image, image);
      driver.add_pulses_region(scenario.history, all, b * batch,
                               (b + 1) * batch, img);
      warm.push_back(std::move(img));
    }
    Grid2D<CFloat> combined(image, image);
    const bench::SampleStats inc_stats = bench::run_repeated(spec, [&] {
      bp::IncrementalAccumulator acc(image, image, k);
      for (const auto& img : warm) acc.push(Grid2D<CFloat>(img));
      Timer t;
      Grid2D<CFloat> newest(image, image);
      driver.add_pulses_region(scenario.history, all, k * batch,
                               (k + 1) * batch, newest);
      acc.push(std::move(newest));
      combined = Grid2D<CFloat>(image, image);
      acc.current_into(combined);
      return t.seconds();
    });

    std::printf("%4d %18.3f %18.3f %8.2fx %12.1f\n", k, full_stats.median,
                inc_stats.median, full_stats.median / inc_stats.median,
                snr_db(combined, full));
    const std::vector<std::pair<std::string, std::string>> params = {
        {"image", std::to_string(image)},
        {"batch", std::to_string(batch)},
        {"k", std::to_string(k)}};
    json.add("recompute", params, "s", full_stats);
    json.add("incremental", params, "s", inc_stats);
  }
  std::printf("\n(paper: k = 34 in the high-end scenario — a 34x compute cut "
              "for 9.5x the image memory)\n");
  return 0;
}
