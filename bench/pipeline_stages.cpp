// Reproduces the paper's Fig. 4 pipeline-stage accounting: per-stage times
// of the streaming surveillance pipeline at steady state. Paper findings
// (16 nodes, 13K images): backprojection ~0.9 s dominates; registration,
// CCD, CFAR and all transfers are kept far below it (non-BP compute < 4%).
#include <cstdio>

#include "bench_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  using namespace sarbp::pipeline;
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 256);
  const Index pulses = args.get("pulses", 1024);
  const int frames = static_cast<int>(args.get("frames", 3));
  const std::string metrics_out = args.gets("metrics-out");

  bench::print_header("Fig. 4 - pipeline stage times at steady state");
  std::printf("workload: %lldx%lld image, %lld pulses/frame, %d frames "
              "(repeat-pass geometry)\n",
              static_cast<long long>(image), static_cast<long long>(image),
              static_cast<long long>(pulses), frames);

  // Repeat-pass clutter scene so registration/CCD operate on coherent
  // data, plus one transient target so CFAR has a real change to find.
  Rng rng(7);
  geometry::ImageGrid grid(image, image, 0.5);
  auto scene = sim::make_clutter_field(grid, 8, 1.0, rng);
  sim::Reflector transient;
  transient.position = grid.position(image / 3, 2 * image / 3);
  transient.amplitude = 8.0;
  transient.appear_s = 1.5;  // shows up from the second pass on
  scene.add(transient);
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.066;
  orbit.prf_hz = 500.0;
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.02;

  PipelineConfig config;
  config.accumulation_factor = 0;  // repeat-pass: one batch per frame
  config.registration.patch = 31;
  config.registration.control_points_x = 3;
  config.registration.control_points_y = 3;
  config.ccd.window = 25;   // the paper's Ncor
  config.cfar.window = 25;  // the paper's Ncfar
  config.cfar.guard = 7;
  SurveillancePipeline pipeline(grid, config);

  sim::CollectorParams collector;
  for (int f = 0; f < frames; ++f) {
    Rng pass_rng(100 + static_cast<std::uint64_t>(f));
    auto poses = geometry::circular_orbit(orbit, errors, pulses, pass_rng);
    for (auto& pose : poses) pose.time_s += f;  // one pass per second
    Rng col_rng(200 + static_cast<std::uint64_t>(f));
    pipeline.push_pulses(sim::collect(collector, grid, scene, poses, col_rng));
  }
  pipeline.close_input();

  std::printf("\n%-6s %6s %14s %12s %8s %8s %10s\n", "frame", "ref?",
              "backproj (s)", "regist (s)", "ccd (s)", "cfar (s)",
              "detections");
  bench::print_rule();
  while (auto frame = pipeline.pop_result()) {
    auto stage = [&](const char* name) {
      const auto it = frame->stage_seconds.find(name);
      return it == frame->stage_seconds.end() ? 0.0 : it->second;
    };
    std::printf("%-6lld %6s %14.3f %12.3f %8.3f %8.3f %10zu\n",
                static_cast<long long>(frame->frame),
                frame->is_reference ? "yes" : "no", stage("backprojection"),
                stage("registration"), stage("ccd"), stage("cfar"),
                frame->cfar.detections.size());
  }

  const SectionTimes totals = pipeline.cumulative_stage_times();
  const double bp_total = totals.get("backprojection");
  const double other = totals.get("registration") + totals.get("ccd") +
                       totals.get("cfar") + totals.get("accumulate");
  std::printf("\ncumulative: backprojection %.3f s, all other stages %.3f s "
              "(%.1f%% of BP; paper keeps non-BP < 4%% after parallelization)\n",
              bp_total, other, 100.0 * other / bp_total);

  // Structured observability view: stage latency percentiles, queue
  // occupancy, and end-to-end frame throughput from the obs registry.
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  std::printf("\n%-32s %8s %10s %10s %10s\n", "span", "count", "p50 (s)",
              "p99 (s)", "total (s)");
  bench::print_rule();
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("pipeline.stage.", 0) == 0 ||
        name == "pipeline.frame.latency_s" || name == "bp.add_pulses_s") {
      std::printf("%-32s %8llu %10.4f %10.4f %10.4f\n", name.c_str(),
                  static_cast<unsigned long long>(h.count), h.p50, h.p99,
                  h.sum);
    }
  }
  std::printf("\nqueue gauges (depth now/max):");
  for (const auto& [name, g] : snap.gauges) {
    if (name.rfind("queue.pipeline.", 0) == 0) {
      std::printf("  %s %lld/%lld", name.c_str(),
                  static_cast<long long>(g.value),
                  static_cast<long long>(g.max));
    }
  }
  const auto completed = snap.histograms.find("pipeline.frame.completed_at_s");
  if (completed != snap.histograms.end() && completed->second.max > 0.0) {
    std::printf("\nend-to-end: %llu frames in %.3f s (%.2f frames/s)\n",
                static_cast<unsigned long long>(completed->second.count),
                completed->second.max,
                static_cast<double>(completed->second.count) /
                    completed->second.max);
  }

  if (!metrics_out.empty()) {
    obs::write_json_file(obs::registry(), metrics_out);
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}
