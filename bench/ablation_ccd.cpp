// Ablation (paper §2): CCD complexity — the straightforward
// Theta(Ncor^2 Ix Iy) window evaluation vs the incremental
// Theta(Ncor Ix Iy) (organized here as amortized Theta(Ix Iy)) sliding
// update. The speedup must grow with the window size.
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "pipeline/ccd.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  using namespace sarbp::pipeline;
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 384);

  bench::print_header("Ablation - CCD direct vs incremental");

  // Two correlated speckle images.
  Rng rng(3);
  Grid2D<CFloat> current(image, image);
  Grid2D<CFloat> reference(image, image);
  for (Index i = 0; i < current.size(); ++i) {
    const CFloat shared(static_cast<float>(rng.normal()),
                        static_cast<float>(rng.normal()));
    const CFloat noise(static_cast<float>(rng.normal() * 0.3),
                       static_cast<float>(rng.normal() * 0.3));
    current.flat()[static_cast<std::size_t>(i)] = shared + noise;
    reference.flat()[static_cast<std::size_t>(i)] = shared;
  }

  std::printf("\nimage %lldx%lld\n", static_cast<long long>(image),
              static_cast<long long>(image));
  std::printf("%8s %14s %14s %10s\n", "window", "direct (s)",
              "incremental(s)", "speedup");
  bench::print_rule();
  for (Index window : {5, 9, 15, 25}) {
    CcdParams params;
    params.window = window;
    Timer t1;
    const auto direct = ccd_direct(current, reference, params);
    const double direct_s = t1.seconds();
    Timer t2;
    const auto fast = ccd(current, reference, params);
    const double fast_s = t2.seconds();
    // Consistency spot check.
    const float delta = std::abs(direct.at(image / 2, image / 2) -
                                 fast.at(image / 2, image / 2));
    std::printf("%8lld %14.3f %14.3f %9.1fx%s\n",
                static_cast<long long>(window), direct_s, fast_s,
                direct_s / fast_s, delta > 1e-3f ? "  MISMATCH" : "");
  }
  std::printf("\n(paper Table 1 uses Ncor = 25: the incremental form is what "
              "keeps CCD at 3 TFLOPS instead of ~75)\n");
  return 0;
}
