// Ablation (§4.3, Fig. 6): dynamic x/y loop reordering. Paper: reordering
// cuts the input-pulse access time 42% on Xeon Phi by reducing the cache
// lines touched per gather; analytically, consecutive same-bin accesses
// rise from ~5 to ~17 in their geometry.
//
// Reports, per loop order: the measured locality statistics and the SIMD
// kernel time for a pulse whose wavefront favours one order.
#include <cstdio>

#include "backprojection/kernel.h"
#include "backprojection/locality.h"
#include "bench_util.h"
#include "common/timer.h"
#include "geometry/wavefront.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 512);
  const Index pulses = args.get("pulses", 48);
  const double oversample = args.getf("oversample", 24.0);

  // Oversampled ADC: In grows past the L1/L2 capacity so the gather spread
  // actually costs memory traffic (the paper's pulses are 81K samples —
  // bigger than any cache level on its hardware).
  auto scenario = bench::make_bench_scenario(
      image, pulses, sim::CollectionFidelity::kRandom, 20120615, oversample);
  const Region all{0, 0, image, image};

  bench::print_header("Ablation - dynamic loop reordering (Fig. 6)");
  std::printf("samples per pulse: %lld (%.0f KiB per SoA plane)\n",
              static_cast<long long>(scenario.history.samples_per_pulse()),
              static_cast<double>(scenario.history.samples_per_pulse()) * 4 /
                  1024.0);

  const geometry::LoopOrder good = geometry::choose_loop_order(
      scenario.history.meta(0).position, scenario.grid.centre());
  const geometry::LoopOrder bad = good == geometry::LoopOrder::kXInner
                                      ? geometry::LoopOrder::kYInner
                                      : geometry::LoopOrder::kXInner;

  // Analytic expectation (paper's 5 -> 17 analysis for its geometry).
  const double dr = scenario.history.bin_spacing();
  const double exp_good = geometry::expected_consecutive_same_bin(
      scenario.history.meta(0).position, scenario.grid, dr, good);
  const double exp_bad = geometry::expected_consecutive_same_bin(
      scenario.history.meta(0).position, scenario.grid, dr, bad);

  // Empirical measurement over the actual traversal.
  const auto with = bp::measure_gather_locality(scenario.history,
                                                scenario.grid, all, 0, good);
  const auto without = bp::measure_gather_locality(scenario.history,
                                                   scenario.grid, all, 0, bad);

  std::printf("\n%-26s %16s %16s\n", "", "reordered", "fixed order");
  bench::print_rule();
  std::printf("%-26s %16.1f %16.1f\n", "analytic same-bin run", exp_good,
              exp_bad);
  std::printf("%-26s %16.1f %16.1f\n", "measured same-bin run",
              with.mean_run_length, without.mean_run_length);
  std::printf("%-26s %16.2f %16.2f\n", "cache lines / 16-gather",
              with.cache_lines_per_gather, without.cache_lines_per_gather);

  // Kernel time under each order (SIMD path: where gather locality matters).
  auto time_kernel = [&](geometry::LoopOrder order) {
    bp::SoaTile tile(image, image);
    Timer timer;
    bp::backproject_asr_simd(scenario.history, scenario.grid, all, 0, pulses,
                             64, 64, order, tile);
    return timer.seconds();
  };
  const double t_good = time_kernel(good);
  const double t_bad = time_kernel(bad);
  std::printf("%-26s %15.3fs %15.3fs\n", "ASR SIMD kernel time", t_good,
              t_bad);
  std::printf("\nmeasured reordering speedup on this host: %.2fx\n",
              t_bad / t_good);
  // Knights Corner issued gathers one cache line per cycle, so its
  // pulse-access cost is proportional to the lines touched per gather —
  // exactly the quantity reordering improves. Project that cost model:
  std::printf("KNC gather-cost model (cycles ~ lines/gather): access time "
              "x%.2f, i.e. -%.0f%% (paper: -42%%)\n",
              with.cache_lines_per_gather / without.cache_lines_per_gather,
              100.0 * (1.0 - with.cache_lines_per_gather /
                                 without.cache_lines_per_gather));
  std::printf("(modern out-of-order cores hide small gather spreads, so the "
              "wall-clock effect here is muted; the locality counters above "
              "are the architecture-independent reproduction)\n");
  return 0;
}
