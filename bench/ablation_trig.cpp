// Ablation (paper §6 related work): trigonometric evaluation strategies
// for the backprojection matched-filter phase — per-call cost and accuracy
// of libm, Chebyshev/Taylor polynomials (with the mandatory double
// argument reduction), CORDIC, and the ASR recurrence that replaces them
// all with ~10 multiply/adds per pixel and no reduction.
//
// The paper's point (§6): "reducing arguments to a specific range is often
// the most time-consuming and accuracy-sensitive part of trigonometric
// function calculation ... In contrast, ASR can achieve a high accuracy
// mostly using single precision operations for even arguments with large
// magnitude."
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "signal/chebyshev.h"
#include "signal/cordic.h"
#include "signal/trig.h"

namespace {

using namespace sarbp;
using namespace sarbp::signal;

struct Result {
  const char* name;
  double ns_per_call;
  double max_error;
};

template <class F>
Result measure(const char* name, const std::vector<double>& args, F&& f) {
  // Warm-up + timed pass; a running sum defeats dead-code elimination.
  float sink = 0.0f;
  for (std::size_t i = 0; i < args.size() / 8; ++i) {
    const SinCos sc = f(args[i]);
    sink += sc.sin;
  }
  Timer timer;
  for (const double x : args) {
    const SinCos sc = f(x);
    sink += sc.sin - sc.cos;
  }
  const double seconds = timer.seconds();
  double worst = 0.0;
  for (std::size_t i = 0; i < args.size(); i += 7) {
    const SinCos sc = f(args[i]);
    worst = std::max(worst, std::abs(static_cast<double>(sc.sin) -
                                     std::sin(args[i])));
    worst = std::max(worst, std::abs(static_cast<double>(sc.cos) -
                                     std::cos(args[i])));
  }
  if (sink == 1.2345f) std::printf("!");  // consume the sink
  return {name, seconds / static_cast<double>(args.size()) * 1e9, worst};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args_cli(argc, argv);
  const auto count = static_cast<std::size_t>(args_cli.get("count", 2000000));

  bench::print_header("Ablation - trigonometric strategies for 2*pi*k*r");

  // Realistic backprojection arguments: 2*pi*k*r with r ~ 41 km, k ~ 64.
  Rng rng(3);
  std::vector<double> args(count);
  for (auto& x : args) x = rng.uniform(1.64e7, 1.68e7);
  std::printf("argument magnitude ~%.1e rad (the large-argument regime that "
              "makes reduction expensive)\n\n",
              args[0]);

  std::vector<Result> results;
  results.push_back(measure("libm sin+cos (double)", args, [](double x) {
    return SinCos{static_cast<float>(std::sin(x)),
                  static_cast<float>(std::cos(x))};
  }));
  results.push_back(measure("double-reduce + poly (deg 7/8)", args,
                            [](double x) { return sincos_baseline(x); }));
  results.push_back(measure("double-reduce + EP poly (deg 3/4)", args,
                            [](double x) { return sincos_baseline_ep(x); }));
  results.push_back(measure("double-reduce + Chebyshev deg 9", args,
                            [](double x) {
                              return sincos_chebyshev(
                                  static_cast<float>(reduce_to_pi(x)), 9);
                            }));
  results.push_back(measure("CORDIC 24 iters (+reduce)", args, [](double x) {
    return sincos_cordic_full(x, 24);
  }));
  results.push_back(measure("float reduce + poly (BROKEN)", args,
                            [](double x) {
                              return sincos_float_reduction(
                                  static_cast<float>(x));
                            }));

  std::printf("%-36s %12s %14s\n", "strategy", "ns/call", "max |error|");
  bench::print_rule();
  for (const auto& r : results) {
    std::printf("%-36s %12.2f %14.2e\n", r.name, r.ns_per_call, r.max_error);
  }

  // The ASR comparison point: per inner-loop iteration, the phase costs
  // two complex multiplies (8 mul + 4 add) plus the gamma update — no
  // reduction, no polynomial, single precision throughout.
  {
    const std::size_t n = args.size();
    std::vector<float> phi_r(1024), phi_i(1024);
    for (std::size_t i = 0; i < 1024; ++i) {
      phi_r[i] = std::cos(static_cast<float>(i) * 0.01f);
      phi_i[i] = std::sin(static_cast<float>(i) * 0.01f);
    }
    float g_r = 1.0f, g_i = 0.0f, acc = 0.0f;
    const float gam_r = 0.99998f, gam_i = 0.0063f;
    Timer timer;
    for (std::size_t i = 0; i < n; ++i) {
      const float pr = phi_r[i & 1023], pi_ = phi_i[i & 1023];
      const float tr = pr * g_r - pi_ * g_i;
      const float ti = pr * g_i + pi_ * g_r;
      const float ng = g_r * gam_r - g_i * gam_i;
      g_i = g_r * gam_i + g_i * gam_r;
      g_r = ng;
      acc += tr - ti;
    }
    const double secs = timer.seconds();
    if (acc == 1.25f) std::printf("!");
    std::printf("%-36s %12.2f %14s\n", "ASR recurrence (per pixel)",
                secs / static_cast<double>(n) * 1e9, "(block-size dep.)");
  }
  std::printf("\n(the reduction step alone forces double precision on the "
              "baseline paths; ASR hoists it into the per-block tables)\n");
  return 0;
}
