// Reproduces paper Table 1: compute requirements of the high-end
// persistent-surveillance scenario under the one-image-per-second
// real-time constraint (after approximate strength reduction).
#include <cstdio>

#include "bench_util.h"
#include "perfmodel/flops.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  using namespace sarbp::perfmodel;
  const bench::Args args(argc, argv);

  HighEndScenario s;
  s.image = args.get("image", s.image);
  s.new_pulses = args.get("pulses", s.new_pulses);

  bench::print_header(
      "Table 1 - high-end input parameters and compute requirements");
  std::printf("%-36s %12s\n", "parameter", "value");
  bench::print_rule();
  std::printf("%-36s %12lld\n", "New pulses per image (N)",
              static_cast<long long>(s.new_pulses));
  std::printf("%-36s %12lld\n", "Samples per pulse (S)",
              static_cast<long long>(s.samples_per_pulse));
  std::printf("%-36s %7lldx%lld\n", "Image size (Ix, Iy)",
              static_cast<long long>(s.image), static_cast<long long>(s.image));
  std::printf("%-36s %12d\n", "Accumulation factor (k)", s.accumulation_factor);
  std::printf("%-36s %12lld\n", "Registration control points (Nc)",
              static_cast<long long>(s.control_points));
  std::printf("%-36s %12lld\n", "Registration neighborhood (Sc)",
              static_cast<long long>(s.sc));
  std::printf("%-36s %12lld\n", "CCD neighborhood (Ncor)",
              static_cast<long long>(s.ncor));
  std::printf("%-36s %12lld\n", "CFAR neighborhood (Ncfar)",
              static_cast<long long>(s.ncfar));

  const ComputeRequirements r = compute_requirements(s);
  std::printf("\n%-24s %14s %14s\n", "compute requirement", "paper (TFLOPS)",
              "model (TFLOPS)");
  bench::print_rule();
  std::printf("%-24s %14s %14.1f\n", "Total", "351", r.total_tflops());
  std::printf("%-24s %14s %14.1f\n", "Backprojection", "347",
              r.backprojection_tflops);
  std::printf("%-24s %14s %14.2f\n", "2D-Correlation", "0.7",
              r.correlation_tflops);
  std::printf("%-24s %14s %14.2f\n", "Interpolation", "0.2",
              r.interpolation_tflops);
  std::printf("%-24s %14s %14.1f\n", "CCD", "3", r.ccd_tflops);
  std::printf("\nbackprojection share of total FLOPs: %.2f%% (paper: >98%%)\n",
              100.0 * r.backprojection_fraction());

  const MemoryRequirements m = memory_requirements(s);
  std::printf("\nfootnote 3 (incremental backprojection memory cost):\n");
  bench::print_rule();
  std::printf("%-44s %7s %7s\n", "", "paper", "model");
  std::printf("%-44s %7s %6.0f\n", "direct organization (GB)", "100",
              m.direct_gb);
  std::printf("%-44s %7s %6.0f\n", "incremental (circular buffer) (GB)",
              "948", m.incremental_gb);
  std::printf("%-44s %7s %7d\n", "8 GB Xeon Phis to hold it", "119",
              m.coprocessors_for_memory);
  std::printf("%-44s %7s %7d\n", "Xeon Phis for 351 TFLOPS at 100% eff",
              ">182", m.coprocessors_for_compute);
  return 0;
}
