// Ablation (§5.2.2): vectorization speedup of the ASR kernel. Paper: 4.6x
// on Xeon (8-wide AVX) and 10x on Xeon Phi (16-wide IMCI), sub-linear
// mostly due to irregular pulse access. google-benchmark microbench.
#include <benchmark/benchmark.h>

#include "backprojection/kernel.h"
#include "bench_util.h"

namespace {

using namespace sarbp;

const bench::BenchScenario& scenario() {
  static const bench::BenchScenario s = bench::make_bench_scenario(256, 32);
  return s;
}

void set_counters(benchmark::State& state) {
  const auto& s = scenario();
  const double bp = static_cast<double>(s.grid.width()) *
                    static_cast<double>(s.grid.height()) *
                    static_cast<double>(s.history.num_pulses());
  state.counters["backprojections/s"] =
      benchmark::Counter(bp, benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Baseline(benchmark::State& state) {
  const auto& s = scenario();
  const Region all{0, 0, s.grid.width(), s.grid.height()};
  bp::SoaTile tile(all.width, all.height);
  for (auto _ : state) {
    bp::backproject_baseline(s.history, s.grid, all, 0,
                             s.history.num_pulses(), false,
                             geometry::LoopOrder::kXInner, tile);
  }
  set_counters(state);
}
BENCHMARK(BM_Baseline)->Unit(benchmark::kMillisecond);

void BM_AsrScalar(benchmark::State& state) {
  const auto& s = scenario();
  const Region all{0, 0, s.grid.width(), s.grid.height()};
  bp::SoaTile tile(all.width, all.height);
  for (auto _ : state) {
    bp::backproject_asr_scalar(s.history, s.grid, all, 0,
                               s.history.num_pulses(), 64, 64,
                               geometry::LoopOrder::kXInner, tile);
  }
  set_counters(state);
}
BENCHMARK(BM_AsrScalar)->Unit(benchmark::kMillisecond);

void BM_AsrSimd(benchmark::State& state) {
  if (!bp::asr_simd_available()) {
    state.SkipWithError("no SIMD kernel compiled");
    return;
  }
  const auto& s = scenario();
  const Region all{0, 0, s.grid.width(), s.grid.height()};
  bp::SoaTile tile(all.width, all.height);
  for (auto _ : state) {
    bp::backproject_asr_simd(s.history, s.grid, all, 0,
                             s.history.num_pulses(), 64, 64,
                             geometry::LoopOrder::kXInner, tile);
  }
  set_counters(state);
}
BENCHMARK(BM_AsrSimd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
