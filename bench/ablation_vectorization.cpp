// Ablation (§5.2.2, §4.4): vectorization speedup of the ASR kernel and
// the inner-loop implementation variants. Paper: 4.6x on Xeon (8-wide
// AVX) and 10x on Xeon Phi (16-wide IMCI), sub-linear mostly due to
// irregular pulse access.
//
// Rows, in backprojections/s:
//   baseline                 pre-ASR production kernel (Fig. 3(a))
//   asr-scalar               portable ASR sweep (Fig. 3(b))
//   asr-simd/<isa>           streaming SIMD kernel, one row per usable ISA
//   plan/scalar              plan-replay scalar sweep (prebuilt tables)
//   plan/<isa>/<variant>     fused plan-replay SIMD sweep per ISA x
//                            {gather, shuffle, gather-nofma}
//
// The plan rows run through the exec::TileBackend interface — the same
// code path the service routes jobs over — so the numbers here are the
// per-backend rates the §5.3 split adapts to.
#include <cstdio>
#include <string>
#include <vector>

#include "backprojection/kernel.h"
#include "bench_util.h"
#include "common/timer.h"
#include "exec/tile_backend.h"
#include "service/plan_cache.h"

int main(int argc, char** argv) {
  using namespace sarbp;
  const bench::Args args(argc, argv);
  const Index image = args.get("ix", 256);
  const Index pulses = args.get("pulses", 32);
  const Index block = args.get("block", 64);
  const bench::RepeatSpec spec = bench::repeat_spec(args);
  bench::JsonReporter json("ablation_vectorization", spec);

  const auto scenario = bench::make_bench_scenario(image, pulses);
  const Region all{0, 0, image, image};
  const double bp_per_run = static_cast<double>(all.pixels()) *
                            static_cast<double>(pulses);

  bench::print_header(
      "Ablation - ASR vectorization and kernel variants (§5.2.2, §4.4)");
  std::printf("image %lldx%lld, %lld pulses, block %lld; %s=%d %s=%d\n",
              static_cast<long long>(image), static_cast<long long>(image),
              static_cast<long long>(pulses), static_cast<long long>(block),
              "warmup", spec.warmup, "repeat", spec.repeat);
  std::printf("\n%-28s %16s %14s\n", "kernel", "backproj/s", "speedup");
  bench::print_rule();

  double scalar_rate = 0.0;
  const auto report = [&](const std::string& name,
                          std::vector<std::pair<std::string, std::string>>
                              params,
                          const std::function<double()>& run_seconds) {
    const bench::SampleStats seconds =
        bench::run_repeated(spec, run_seconds);
    bench::SampleStats rate;
    // Inverting seconds swaps the quartiles (faster run = higher rate).
    rate.median = bp_per_run / seconds.median;
    rate.q1 = bp_per_run / seconds.q3;
    rate.q3 = bp_per_run / seconds.q1;
    if (name == "asr-scalar") scalar_rate = rate.median;
    const double speedup = scalar_rate > 0 ? rate.median / scalar_rate : 0.0;
    std::printf("%-28s %16.3g %13.2fx\n", name.c_str(), rate.median, speedup);
    json.add(name, std::move(params), "backprojections/s", rate);
  };

  report("baseline", {{"kernel", "baseline"}}, [&] {
    bp::SoaTile tile(all.width, all.height);
    Timer timer;
    bp::backproject_baseline(scenario.history, scenario.grid, all, 0, pulses,
                             false, geometry::LoopOrder::kXInner, tile);
    return timer.seconds();
  });

  report("asr-scalar", {{"kernel", "asr-scalar"}}, [&] {
    bp::SoaTile tile(all.width, all.height);
    Timer timer;
    bp::backproject_asr_scalar(scenario.history, scenario.grid, all, 0,
                               pulses, block, block,
                               geometry::LoopOrder::kXInner, tile);
    return timer.seconds();
  });

  const std::vector<bp::SimdIsa> isas = {bp::SimdIsa::kAvx2,
                                         bp::SimdIsa::kAvx512};
  for (const bp::SimdIsa isa : isas) {
    if (!bp::asr_isa_available(isa)) continue;
    const std::string isa_name = bp::simd_isa_name(isa);
    report("asr-simd/" + isa_name,
           {{"kernel", "asr-simd"}, {"isa", isa_name}}, [&] {
             bp::SoaTile tile(all.width, all.height);
             Timer timer;
             bp::backproject_asr_simd(scenario.history, scenario.grid, all, 0,
                                      pulses, block, block,
                                      geometry::LoopOrder::kXInner, tile, isa);
             return timer.seconds();
           });
  }

  // Plan-replay rows: prebuilt tables swept through the TileBackend
  // interface (the service's routed path).
  const auto plan = service::build_formation_plan(
      scenario.grid, all, block, block, scenario.history);
  exec::PlanView view;
  view.blocks = plan->blocks.data();
  view.num_blocks = static_cast<Index>(plan->blocks.size());
  view.pulse_order = plan->pulse_order.data();
  view.num_pulses = plan->num_pulses();
  view.tables = plan->tables.data();
  view.region_x0 = all.x0;
  view.region_y0 = all.y0;

  const auto report_backend = [&](const std::string& name,
                                  std::vector<std::pair<std::string,
                                                        std::string>> params,
                                  const exec::BackendSpec& backend_spec) {
    const auto backend = exec::make_backend(backend_spec, 0.5, nullptr);
    report(name, std::move(params), [&] {
      bp::SoaTile tile(all.width, all.height);
      Timer timer;
      for (Index b = 0; b < view.num_blocks; ++b) {
        backend->sweep_block(view, scenario.history, b, 0, pulses, tile);
      }
      return timer.seconds();
    });
  };

  exec::BackendSpec scalar_spec;
  scalar_spec.kind = exec::BackendSpec::Kind::kHostScalar;
  report_backend("plan/scalar", {{"kernel", "plan"}, {"isa", "scalar"}},
                 scalar_spec);

  const std::vector<std::pair<bp::KernelVariant, const char*>> variants = {
      {bp::KernelVariant::kGather, "gather"},
      {bp::KernelVariant::kShuffleTranspose, "shuffle"},
      {bp::KernelVariant::kGatherNoFma, "gather-nofma"},
  };
  for (const bp::SimdIsa isa : isas) {
    if (!bp::asr_isa_available(isa)) continue;
    const std::string isa_name = bp::simd_isa_name(isa);
    for (const auto& [variant, variant_name] : variants) {
      exec::BackendSpec simd_spec;
      simd_spec.kind = exec::BackendSpec::Kind::kHostSimd;
      simd_spec.isa = isa;
      simd_spec.variant = variant;
      simd_spec.name = "bench-" + isa_name + "-" + variant_name;
      report_backend("plan/" + isa_name + "/" + variant_name,
                     {{"kernel", "plan"},
                      {"isa", isa_name},
                      {"variant", variant_name}},
                     simd_spec);
    }
  }

  std::printf("\n(speedup column is relative to asr-scalar; paper §5.2.2: "
              "4.6x on 8-wide AVX, 10x on 16-wide IMCI)\n");
  return 0;
}
