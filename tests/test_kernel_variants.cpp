// Runtime ISA dispatch and kernel-variant parity for the ASR SIMD kernel:
// every (ISA, variant) pair runs the *same* formation plan through the
// backend sweep, so differences can only come from the inner loop.
//
// Parity contract (kernel.h):
//  - kGather vs kShuffleTranspose: bit-identical (same arithmetic, same
//    order; only the load mechanism differs).
//  - scalar vs vector, FMA vs no-FMA, AVX2 vs AVX-512: different rounding
//    and/or reduction widths, so parity is at SNR level (> 70 dB).
//  - forcing an unavailable ISA fails with PreconditionError, never SIGILL.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "backprojection/kernel.h"
#include "backprojection/soa_tile.h"
#include "common/check.h"
#include "common/grid2d.h"
#include "common/snr.h"
#include "exec/tile_backend.h"
#include "service/plan_cache.h"
#include "test_helpers.h"

namespace sarbp {
namespace {

constexpr Index kImage = 96;
constexpr Index kPulses = 24;
constexpr Index kBlock = 32;

class KernelVariantTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testing::ScenarioConfig cfg;
    cfg.image = kImage;
    cfg.pulses = kPulses;
    scenario_ = new testing::SmallScenario(testing::make_scenario(cfg));
    region_ = Region{0, 0, kImage, kImage};
    plan_ = service::build_formation_plan(scenario_->grid, region_, kBlock,
                                          kBlock, scenario_->history);
  }

  static void TearDownTestSuite() {
    plan_.reset();
    delete scenario_;
    scenario_ = nullptr;
  }

  static exec::PlanView plan_view() {
    exec::PlanView view;
    view.blocks = plan_->blocks.data();
    view.num_blocks = static_cast<Index>(plan_->blocks.size());
    view.pulse_order = plan_->pulse_order.data();
    view.num_pulses = plan_->num_pulses();
    view.tables = plan_->tables.data();
    view.region_x0 = region_.x0;
    view.region_y0 = region_.y0;
    return view;
  }

  /// Sweeps the whole plan through one backend — the routed service path.
  static bp::SoaTile run_backend(const exec::BackendSpec& spec) {
    const auto backend = exec::make_backend(spec, 0.5, nullptr);
    const exec::PlanView view = plan_view();
    bp::SoaTile tile(region_.width, region_.height);
    for (Index b = 0; b < view.num_blocks; ++b) {
      backend->sweep_block(view, scenario_->history, b, 0, kPulses, tile);
    }
    return tile;
  }

  static bp::SoaTile run_simd_plan(bp::SimdIsa isa, bp::KernelVariant variant) {
    exec::BackendSpec spec;
    spec.kind = exec::BackendSpec::Kind::kHostSimd;
    spec.isa = isa;
    spec.variant = variant;
    return run_backend(spec);
  }

  static bp::SoaTile run_scalar_plan() {
    exec::BackendSpec spec;
    spec.kind = exec::BackendSpec::Kind::kHostScalar;
    return run_backend(spec);
  }

  static Grid2D<CFloat> to_grid(const bp::SoaTile& tile) {
    Grid2D<CFloat> out(tile.width(), tile.height());
    for (Index y = 0; y < tile.height(); ++y) {
      for (Index x = 0; x < tile.width(); ++x) {
        out.at(x, y) = CFloat{tile.row_re(y)[x], tile.row_im(y)[x]};
      }
    }
    return out;
  }

  static bool bit_identical(const bp::SoaTile& a, const bp::SoaTile& b) {
    for (Index y = 0; y < a.height(); ++y) {
      if (std::memcmp(a.row_re(y), b.row_re(y),
                      sizeof(float) * static_cast<std::size_t>(a.width())) !=
              0 ||
          std::memcmp(a.row_im(y), b.row_im(y),
                      sizeof(float) * static_cast<std::size_t>(a.width())) !=
              0) {
        return false;
      }
    }
    return true;
  }

  static testing::SmallScenario* scenario_;
  static Region region_;
  static std::shared_ptr<const service::FormationPlan> plan_;
};

testing::SmallScenario* KernelVariantTest::scenario_ = nullptr;
Region KernelVariantTest::region_;
std::shared_ptr<const service::FormationPlan> KernelVariantTest::plan_;

TEST_F(KernelVariantTest, AvailabilityInvariants) {
  EXPECT_EQ(bp::asr_simd_available(), bp::asr_simd_width() > 1);
  EXPECT_TRUE(bp::asr_isa_available(bp::SimdIsa::kScalar));
  EXPECT_TRUE(bp::asr_isa_available(bp::SimdIsa::kAuto));
  // kAuto resolves to the widest usable ISA, consistent with the width.
  const bp::SimdIsa resolved = bp::asr_resolve_isa(bp::SimdIsa::kAuto);
  switch (resolved) {
    case bp::SimdIsa::kAvx512: EXPECT_EQ(bp::asr_simd_width(), 16); break;
    case bp::SimdIsa::kAvx2: EXPECT_EQ(bp::asr_simd_width(), 8); break;
    case bp::SimdIsa::kScalar: EXPECT_EQ(bp::asr_simd_width(), 1); break;
    case bp::SimdIsa::kAuto: FAIL() << "kAuto must resolve to a concrete ISA";
  }
  // An AVX-512 host can always also run the narrower AVX2 TU.
  if (resolved == bp::SimdIsa::kAvx512) {
    EXPECT_TRUE(bp::asr_isa_available(bp::SimdIsa::kAvx2));
  }
}

TEST_F(KernelVariantTest, ForcingUnavailableIsaFailsCleanly) {
  // On hosts (or builds) missing an ISA the resolve must throw a clear
  // error — never dispatch into illegal instructions.
  for (const bp::SimdIsa isa : {bp::SimdIsa::kAvx2, bp::SimdIsa::kAvx512}) {
    if (bp::asr_isa_available(isa)) continue;
    EXPECT_THROW((void)bp::asr_resolve_isa(isa), PreconditionError);
  }
  SUCCEED();
}

TEST_F(KernelVariantTest, GatherVsShuffleBitIdentical) {
  // Same arithmetic in the same order; only the sample-load mechanism
  // differs. Checked per usable vector ISA.
  bool checked = false;
  for (const bp::SimdIsa isa : {bp::SimdIsa::kAvx2, bp::SimdIsa::kAvx512}) {
    if (!bp::asr_isa_available(isa)) continue;
    const bp::SoaTile gather =
        run_simd_plan(isa, bp::KernelVariant::kGather);
    const bp::SoaTile shuffle =
        run_simd_plan(isa, bp::KernelVariant::kShuffleTranspose);
    EXPECT_TRUE(bit_identical(gather, shuffle))
        << "gather vs shuffle-transpose diverged under "
        << bp::simd_isa_name(isa);
    checked = true;
  }
  if (!checked) GTEST_SKIP() << "no vector ISA usable on this host";
}

TEST_F(KernelVariantTest, VectorIsasMatchScalarAtSnrLevel) {
  // Vector reduction order differs from scalar (lane-parallel recurrence,
  // Gamma^W stepping), so parity is at SNR level, not bitwise.
  const Grid2D<CFloat> scalar = to_grid(run_scalar_plan());
  bool checked = false;
  for (const bp::SimdIsa isa : {bp::SimdIsa::kAvx2, bp::SimdIsa::kAvx512}) {
    if (!bp::asr_isa_available(isa)) continue;
    for (const bp::KernelVariant variant :
         {bp::KernelVariant::kGather, bp::KernelVariant::kShuffleTranspose,
          bp::KernelVariant::kGatherNoFma}) {
      const Grid2D<CFloat> vec = to_grid(run_simd_plan(isa, variant));
      EXPECT_GT(snr_db(vec, scalar), 70.0)
          << bp::simd_isa_name(isa) << "/"
          << bp::kernel_variant_name(variant);
      checked = true;
    }
  }
  if (!checked) GTEST_SKIP() << "no vector ISA usable on this host";
}

TEST_F(KernelVariantTest, NoFmaMatchesGatherAtSnrLevel) {
  // Splitting each fused multiply-add into mul+add changes rounding only:
  // the images must agree far above the ASR approximation floor.
  bool checked = false;
  for (const bp::SimdIsa isa : {bp::SimdIsa::kAvx2, bp::SimdIsa::kAvx512}) {
    if (!bp::asr_isa_available(isa)) continue;
    const Grid2D<CFloat> fma =
        to_grid(run_simd_plan(isa, bp::KernelVariant::kGather));
    const Grid2D<CFloat> nofma =
        to_grid(run_simd_plan(isa, bp::KernelVariant::kGatherNoFma));
    EXPECT_GT(snr_db(nofma, fma), 80.0) << bp::simd_isa_name(isa);
    checked = true;
  }
  if (!checked) GTEST_SKIP() << "no vector ISA usable on this host";
}

TEST_F(KernelVariantTest, ForcedAvx2OnWiderHostMatchesAuto) {
  // The narrow-TU-on-wide-host case: an AVX-512 machine forced down to the
  // 8-lane AVX2 kernel still produces an equivalent image. The reduction
  // widths differ (8 vs 16 lanes), so parity is SNR-level.
  if (bp::asr_resolve_isa(bp::SimdIsa::kAuto) != bp::SimdIsa::kAvx512) {
    GTEST_SKIP() << "host is not AVX-512";
  }
  const Grid2D<CFloat> wide =
      to_grid(run_simd_plan(bp::SimdIsa::kAvx512, bp::KernelVariant::kGather));
  const Grid2D<CFloat> narrow =
      to_grid(run_simd_plan(bp::SimdIsa::kAvx2, bp::KernelVariant::kGather));
  EXPECT_GT(snr_db(narrow, wide), 70.0);
}

TEST_F(KernelVariantTest, StreamingKernelHonoursForcedIsa) {
  // The streaming (non-plan) entry point takes the same ISA override; a
  // forced narrow ISA must agree with the scalar streaming kernel.
  bp::SoaTile scalar(kImage, kImage);
  bp::backproject_asr_scalar(scenario_->history, scenario_->grid, region_, 0,
                             kPulses, kBlock, kBlock,
                             geometry::LoopOrder::kXInner, scalar);
  bool checked = false;
  for (const bp::SimdIsa isa : {bp::SimdIsa::kAvx2, bp::SimdIsa::kAvx512}) {
    if (!bp::asr_isa_available(isa)) continue;
    bp::SoaTile simd(kImage, kImage);
    bp::backproject_asr_simd(scenario_->history, scenario_->grid, region_, 0,
                             kPulses, kBlock, kBlock,
                             geometry::LoopOrder::kXInner, simd, isa);
    EXPECT_GT(snr_db(to_grid(simd), to_grid(scalar)), 70.0)
        << bp::simd_isa_name(isa);
    checked = true;
  }
  if (!checked) GTEST_SKIP() << "no vector ISA usable on this host";
}

}  // namespace
}  // namespace sarbp
