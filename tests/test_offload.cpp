// Offload-model tests: device specs, the async transfer engine, the
// runtime's correctness (offloaded image == plain image), split adaptation,
// transfer overlap accounting, and the Table 3 throughput-ratio shape.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <vector>

#include "common/snr.h"
#include "offload/device.h"
#include "offload/runtime.h"
#include "offload/transfer.h"
#include "test_helpers.h"

namespace sarbp::offload {
namespace {

using sarbp::testing::ScenarioConfig;
using sarbp::testing::SmallScenario;
using sarbp::testing::make_scenario;

TEST(Device, PaperSpecsEncodeTable2And3) {
  const DeviceSpec xeon = xeon_e5_2670_dual();
  EXPECT_TRUE(xeon.is_host);
  EXPECT_DOUBLE_EQ(xeon.peak_gflops, 660.0);
  EXPECT_NEAR(xeon.effective_gflops(), 277.2, 0.1);
  const DeviceSpec knc = knights_corner();
  EXPECT_FALSE(knc.is_host);
  EXPECT_DOUBLE_EQ(knc.peak_gflops, 1920.0);
  EXPECT_NEAR(knc.effective_gflops(), 537.6, 0.1);
  // Table 3: one KNC ~ 1.9x a dual-socket Xeon at backprojection.
  EXPECT_NEAR(knc.effective_gflops() / xeon.effective_gflops(), 1.9, 0.1);
}

TEST(Device, ValidateRejectsNonsense) {
  DeviceSpec bad = knights_corner();
  bad.flop_efficiency = 0.0;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = knights_corner();
  bad.pcie_gbps = 0.0;
  EXPECT_THROW(bad.validate(), PreconditionError);
}

TEST(Transfer, CopiesBytesAndReportsModeledTime) {
  AsyncTransferEngine engine(6.0);
  std::vector<std::byte> src(1 << 20);
  std::vector<std::byte> dst(1 << 20);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 31u);
  }
  TransferHandle handle = engine.submit(src, dst);
  const double seconds = handle.wait();
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  EXPECT_NEAR(seconds, static_cast<double>(src.size()) / 6e9, 1e-12);
}

TEST(Transfer, MultipleInFlightTransfersComplete) {
  AsyncTransferEngine engine(1.0, 2);
  constexpr int kN = 16;
  std::vector<std::vector<std::byte>> srcs(kN), dsts(kN);
  std::vector<TransferHandle> handles;
  for (int i = 0; i < kN; ++i) {
    srcs[static_cast<std::size_t>(i)].assign(4096, static_cast<std::byte>(i));
    dsts[static_cast<std::size_t>(i)].resize(4096);
    handles.push_back(engine.submit(srcs[static_cast<std::size_t>(i)],
                                    dsts[static_cast<std::size_t>(i)]));
  }
  for (int i = 0; i < kN; ++i) {
    handles[static_cast<std::size_t>(i)].wait();
    EXPECT_EQ(dsts[static_cast<std::size_t>(i)][0], static_cast<std::byte>(i));
  }
}

TEST(Transfer, SizeMismatchThrows) {
  AsyncTransferEngine engine(1.0);
  std::vector<std::byte> src(8), dst(4);
  EXPECT_THROW((void)engine.submit(src, dst), PreconditionError);
}

class OffloadRuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Large enough that per-executor regions run for milliseconds —
    // sub-millisecond regions are dominated by fixed overheads and timer
    // noise, which destabilizes the observed-rate adaptation.
    ScenarioConfig cfg;
    cfg.image = 256;
    cfg.pulses = 48;
    cfg.fidelity = sim::CollectionFidelity::kRandom;
    scenario_ = new SmallScenario(make_scenario(cfg));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static OffloadConfig host_plus_two_knc() {
    OffloadConfig config;
    config.coprocessors = {knights_corner(), knights_corner()};
    return config;
  }

  static SmallScenario* scenario_;
};

SmallScenario* OffloadRuntimeTest::scenario_ = nullptr;

TEST_F(OffloadRuntimeTest, OffloadedImageMatchesPlainBackprojection) {
  const auto& s = *scenario_;
  bp::BackprojectOptions bp_opts;
  bp_opts.threads = 1;
  OffloadRuntime runtime(s.grid, bp_opts, host_plus_two_knc());
  Grid2D<CFloat> offloaded(s.grid.width(), s.grid.height());
  (void)runtime.form_image(s.history, offloaded);

  const bp::Backprojector plain(s.grid, bp_opts);
  const Grid2D<CFloat> expected = plain.form_image(s.history);
  // Row-strip partitioning changes ASR block placement, so agreement is at
  // approximation (not rounding) level.
  EXPECT_GT(snr_db(offloaded, expected), 55.0);
}

TEST_F(OffloadRuntimeTest, SplitConvergesTowardEffectiveRates) {
  const auto& s = *scenario_;
  bp::BackprojectOptions bp_opts;
  bp_opts.threads = 1;
  OffloadRuntime runtime(s.grid, bp_opts, host_plus_two_knc());
  Grid2D<CFloat> out(s.grid.width(), s.grid.height());
  for (int frame = 0; frame < 6; ++frame) {
    out.fill(CFloat{});
    (void)runtime.form_image(s.history, out);
  }
  const auto& split = runtime.current_split();
  ASSERT_EQ(split.size(), 3u);
  // Expected fractions from effective rates: 277 : 538 : 538. The loose
  // tolerance absorbs the timing noise of a shared single-core machine;
  // the structural property is host < device and device ~ device.
  EXPECT_NEAR(split[0], 277.2 / 1352.4, 0.13);
  EXPECT_NEAR(split[1], 537.6 / 1352.4, 0.13);
  EXPECT_NEAR(split[2], 537.6 / 1352.4, 0.13);
  EXPECT_LT(split[0], split[1]);
  EXPECT_LT(split[0], split[2]);
}

TEST_F(OffloadRuntimeTest, Table3ThroughputRatios) {
  // The Table 3 shape: 1 KNC ~ 1.9x the dual Xeon; Xeon + 2 KNC ~ 4.8x.
  const auto& s = *scenario_;
  bp::BackprojectOptions bp_opts;
  bp_opts.threads = 1;

  auto run = [&](OffloadConfig config) {
    OffloadRuntime runtime(s.grid, bp_opts, std::move(config));
    Grid2D<CFloat> out(s.grid.width(), s.grid.height());
    // Two settle frames for the split adaptation, then best-of-4: scheduler
    // interference on a shared core only ever *lowers* a frame's measured
    // throughput, so the max is the noise-robust estimate.
    double best = 0.0;
    for (int frame = 0; frame < 6; ++frame) {
      out.fill(CFloat{});
      const OffloadReport report = runtime.form_image(s.history, out);
      if (frame >= 2) best = std::max(best, report.throughput_bp_per_s());
    }
    return best;
  };

  // Process-level warmup: the very first frames after startup pay cold
  // caches/page faults and depress whichever config is measured first,
  // which showed up as a flaky inflated knc/xeon ratio. One discarded
  // pass levels the field before any ratio is formed.
  (void)run(OffloadConfig{});

  OffloadConfig xeon_only;
  const double xeon = run(xeon_only);

  OffloadConfig knc_only;
  knc_only.use_host_compute = false;
  knc_only.coprocessors = {knights_corner()};
  const double knc = run(knc_only);

  const double combined = run(host_plus_two_knc());

  // Single-core container timing is too noisy for tight factors; assert
  // the Table 3 *ordering* and coarse magnitudes (paper: 1.9x and 4.8x).
  // The table3_offload bench reports the precise model-anchored numbers.
  EXPECT_GT(knc, xeon);
  EXPECT_GT(combined, knc);
  EXPECT_NEAR(knc / xeon, 1.9, 0.7);
  EXPECT_NEAR(combined / xeon, 4.8, 2.3);
}

TEST_F(OffloadRuntimeTest, TransferOverlapHidesWireTime) {
  const auto& s = *scenario_;
  bp::BackprojectOptions bp_opts;
  bp_opts.threads = 1;

  OffloadConfig overlapped = host_plus_two_knc();
  overlapped.overlap_transfers = true;
  OffloadConfig serialized = host_plus_two_knc();
  serialized.overlap_transfers = false;

  OffloadRuntime r1(s.grid, bp_opts, overlapped);
  OffloadRuntime r2(s.grid, bp_opts, serialized);
  Grid2D<CFloat> out(s.grid.width(), s.grid.height());
  const OffloadReport a = r1.form_image(s.history, out);
  out.fill(CFloat{});
  const OffloadReport b = r2.form_image(s.history, out);
  EXPECT_GT(a.transfer_seconds, 0.0);
  // Overlapped wall = max(compute, transfer); serialized = compute + transfer.
  const double a_compute = *std::max_element(a.executor_seconds.begin(),
                                             a.executor_seconds.end());
  const double b_compute = *std::max_element(b.executor_seconds.begin(),
                                             b.executor_seconds.end());
  EXPECT_DOUBLE_EQ(a.wall_seconds, std::max(a_compute, a.transfer_seconds));
  EXPECT_DOUBLE_EQ(b.wall_seconds, b_compute + b.transfer_seconds);
}

TEST_F(OffloadRuntimeTest, ReportAccountsBackprojections) {
  const auto& s = *scenario_;
  bp::BackprojectOptions bp_opts;
  bp_opts.threads = 1;
  OffloadRuntime runtime(s.grid, bp_opts, host_plus_two_knc());
  Grid2D<CFloat> out(s.grid.width(), s.grid.height());
  const OffloadReport report = runtime.form_image(s.history, out);
  EXPECT_DOUBLE_EQ(report.backprojections,
                   static_cast<double>(s.grid.width() * s.grid.height() *
                                       s.history.num_pulses()));
  EXPECT_EQ(report.executor_seconds.size(), 3u);
  EXPECT_EQ(report.split.size(), 3u);
}

TEST_F(OffloadRuntimeTest, StagingCopyOverlapsWithCompute) {
  // The offload_transfer/offload_wait analogue: the real staging memcpy
  // runs on the I/O thread while executors compute, so the compute
  // thread's wait at the end is a small fraction of the frame.
  const auto& s = *scenario_;
  bp::BackprojectOptions bp_opts;
  bp_opts.threads = 1;
  OffloadRuntime runtime(s.grid, bp_opts, host_plus_two_knc());
  Grid2D<CFloat> out(s.grid.width(), s.grid.height());
  const OffloadReport report = runtime.form_image(s.history, out);
  const double compute = *std::max_element(report.executor_seconds.begin(),
                                           report.executor_seconds.end());
  EXPECT_LT(report.staging_wait_seconds, 0.5 * compute);
}

TEST(OffloadRuntime, NoStagingWithoutCoprocessors) {
  geometry::ImageGrid grid(64, 64, 0.5);
  OffloadConfig config;  // host only
  OffloadRuntime runtime(grid, {}, config);
  sim::PhaseHistory history(4, 128, 0.5, 64.0);
  for (Index p = 0; p < history.num_pulses(); ++p) {
    history.meta(p).position = {40000.0, static_cast<double>(p), 8000.0};
    history.meta(p).start_range_m = 40750.0;
  }
  history.build_soa();
  Grid2D<CFloat> out(64, 64);
  const OffloadReport report = runtime.form_image(history, out);
  EXPECT_DOUBLE_EQ(report.staging_wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.transfer_seconds, 0.0);
}

TEST(OffloadRuntime, NoExecutorsThrows) {
  geometry::ImageGrid grid(32, 32, 1.0);
  OffloadConfig config;
  config.use_host_compute = false;
  EXPECT_THROW(OffloadRuntime(grid, {}, config), PreconditionError);
}

}  // namespace
}  // namespace sarbp::offload
