// Schedule-exploring model checks for the concurrency core.
//
// Each test drives real production code (BasicStealDeque instantiated with
// the instrumented atomics policy, TaskGroup's completion machinery through
// the ModelAccess seam) or a distilled model of a production protocol under
// the virtual scheduler in model_sync.h, then explores many distinct
// interleavings: an exhaustive DFS over the first few scheduling choices
// plus a large batch of seeded random tails. Invariants are asserted inside
// every execution, so a violation pinpoints the schedule (hash) that broke.
//
// The suite also checks the checker: intentionally buggy variants — an
// owner pop without the last-item CAS, the pre-PR 3 notify-after-unlock
// completion path, the pre-PR 9 classify-after-publish streaming tail, and
// the pre-PR 6 abort-blind mailbox wait — MUST produce a violation (or a
// detected deadlock) in some explored schedule, while the shipped fixed
// variants must stay clean across the same exploration.
#include "model_sync.h"

#include <array>
#include <cstdint>
#include <functional>
#include <set>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"
#include "exec/steal_deque.h"
#include "exec/task_group.h"

namespace sarbp::exec {

/// Friend seam (declared in task_group.h): lets the model checker drive
/// TaskGroup's private failure/retire machinery exactly the way
/// TileExecutor::run_unit does, without spinning up real workers.
struct ModelAccess {
  static void fail(TaskGroup& g, const std::string& message) {
    g.fail(message);
  }

  /// Replicates the executor's retire path for one task: the thread whose
  /// decrement hits zero runs on_complete and publishes done_ with the
  /// notify under the lock. Returns true for that last finisher.
  static bool retire(TaskGroup& g) {
    if (g.remaining_.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return false;
    }
    if (g.on_complete_) g.on_complete_(g);
    MutexLock lock(g.mutex_);
    g.done_ = true;
    g.cv_.notify_all();
    return true;
  }
};

}  // namespace sarbp::exec

namespace sarbp::model {
namespace {

using Result = VirtualScheduler::Result;

// ---------------------------------------------------------------------------
// explore(): the two-strategy schedule explorer.

struct Exploration {
  int executions = 0;
  int deadlocks = 0;
  int truncated = 0;
  int violations = 0;  ///< use-after-destroy poison hits
  std::set<std::uint64_t> schedules;
};

/// A runner builds FRESH state, runs one execution under (forced, seed),
/// asserts its invariants, and returns the scheduler's Result.
using Runner =
    std::function<Result(const std::vector<int>& forced, std::uint64_t seed)>;

void record(Exploration& out, const Result& r) {
  ++out.executions;
  out.deadlocks += r.deadlock ? 1 : 0;
  out.truncated += r.truncated ? 1 : 0;
  out.violations += r.use_after_destroy ? 1 : 0;
  out.schedules.insert(r.hash);
}

/// Exhaustive over the first `depth_left` choice points: runs the prefix,
/// then recurses into every alternative at the next choice point. Parent
/// prefixes re-run one child's schedule redundantly; that only costs time.
void dfs(const Runner& run, std::vector<int>& prefix, int depth_left,
         std::uint64_t seed, Exploration& out) {
  const Result r = run(prefix, seed);
  record(out, r);
  const std::size_t pos = prefix.size();
  if (depth_left == 0 || pos >= r.branching.size()) return;
  for (int c = 0; c < static_cast<int>(r.branching[pos]); ++c) {
    prefix.push_back(c);
    dfs(run, prefix, depth_left - 1, seed, out);
    prefix.pop_back();
  }
}

/// DFS over the first `dfs_depth` choices, then `random_runs` seeded random
/// tails. Deterministic for fixed (dfs_depth, random_runs, base_seed).
Exploration explore(const Runner& run, int dfs_depth, int random_runs,
                    std::uint64_t base_seed = 0x5a3bULL) {
  Exploration out;
  std::vector<int> prefix;
  dfs(run, prefix, dfs_depth, base_seed, out);
  for (int i = 0; i < random_runs; ++i) {
    record(out, run({}, base_seed + 1 + static_cast<std::uint64_t>(i)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// 1. The real deque, model-instrumented: linearizability of pop/steal.

constexpr int kDequeItems = 4;

/// One execution of owner (push all, pop 3) vs two thieves (2 steals each)
/// over the production Chase-Lev algorithm. Asserts exactly-once delivery:
/// every pushed item is claimed by exactly one thread or still in the deque.
Result deque_round(const std::vector<int>& forced, std::uint64_t seed) {
  exec::BasicStealDeque<ModelAtomicPolicy> deque(kDequeItems);
  std::array<exec::TaskUnit, kDequeItems> units{};
  std::array<int, kDequeItems> claims{};
  for (int i = 0; i < kDequeItems; ++i) {
    units[static_cast<std::size_t>(i)] =
        exec::TaskUnit{nullptr, static_cast<std::uint32_t>(i)};
  }
  auto claim = [&](exec::TaskUnit* unit) {
    if (unit != nullptr) ++claims[unit->index];
  };

  VirtualScheduler sched(forced, seed);
  const Result result = sched.run({
      [&] {  // owner
        for (auto& unit : units) EXPECT_TRUE(deque.push(&unit));
        claim(deque.pop());
        claim(deque.pop());
        claim(deque.pop());
      },
      [&] {  // thief 1
        claim(deque.steal());
        claim(deque.steal());
      },
      [&] {  // thief 2
        claim(deque.steal());
        claim(deque.steal());
      },
  });
  EXPECT_FALSE(result.deadlock) << "lock-free code cannot deadlock";
  EXPECT_FALSE(result.truncated);

  // Quiescent now (run() joined everything): drain what nobody claimed.
  while (exec::TaskUnit* unit = deque.steal()) claim(unit);
  for (int i = 0; i < kDequeItems; ++i) {
    EXPECT_EQ(claims[static_cast<std::size_t>(i)], 1)
        << "item " << i << " delivered " << claims[static_cast<std::size_t>(i)]
        << " times under schedule hash " << result.hash;
  }
  return result;
}

TEST(ModelDeque, ExactlyOnceAcrossTenThousandSchedules) {
  // DFS over the first choices, then random tails until the distinct-
  // schedule count clears the bar (deterministic: the tail loop always runs
  // in the same seed order and the bar is checked at fixed points).
  Exploration out;
  std::vector<int> prefix;
  dfs(deque_round, prefix, /*depth_left=*/5, 0x5a3bULL, out);
  const int kTarget = 10000;
  const int kMaxRandom = 30000;
  int i = 0;
  for (; i < kMaxRandom && static_cast<int>(out.schedules.size()) < kTarget;
       ++i) {
    record(out, deque_round({}, 0x900d + static_cast<std::uint64_t>(i)));
  }
  EXPECT_GE(static_cast<int>(out.schedules.size()), kTarget)
      << "only " << out.schedules.size() << " distinct schedules after "
      << out.executions << " executions";
  EXPECT_EQ(out.deadlocks, 0);
  EXPECT_EQ(out.truncated, 0);
  EXPECT_EQ(out.violations, 0);
}

// ---------------------------------------------------------------------------
// 2. Checking the checker: a deque whose pop skips the last-item CAS MUST
// hand out some item twice in some schedule.

/// Chase-Lev with the classic bug: pop() takes the last item without racing
/// thieves through the CAS on top_.
class BuggyPopDeque {
 public:
  explicit BuggyPopDeque(std::size_t capacity) : cells_(capacity) {}

  bool push(exec::TaskUnit* unit) {
    const std::int64_t b = bottom_.load();
    const std::int64_t t = top_.load();
    if (b - t >= static_cast<std::int64_t>(cells_.size())) return false;
    cells_[static_cast<std::size_t>(b) % cells_.size()].store(unit);
    bottom_.store(b + 1);
    return true;
  }

  exec::TaskUnit* pop() {
    const std::int64_t b = bottom_.load() - 1;
    bottom_.store(b);
    const std::int64_t t = top_.load();
    if (t > b) {
      bottom_.store(b + 1);
      return nullptr;
    }
    // BUG: when t == b this is the last item and a thief may be claiming it
    // concurrently; the real algorithm must CAS top_ here.
    return cells_[static_cast<std::size_t>(b) % cells_.size()].load();
  }

  exec::TaskUnit* steal() {
    std::int64_t t = top_.load();
    const std::int64_t b = bottom_.load();
    if (t >= b) return nullptr;
    exec::TaskUnit* unit = cells_[static_cast<std::size_t>(t) % cells_.size()].load();
    if (!top_.compare_exchange_strong(t, t + 1)) return nullptr;
    return unit;
  }

 private:
  std::vector<ModelAtomic<exec::TaskUnit*>> cells_;
  ModelAtomic<std::int64_t> top_{0};
  ModelAtomic<std::int64_t> bottom_{0};
};

TEST(ModelDeque, CheckerCatchesMissingLastItemCas) {
  int duplicated_runs = 0;
  auto round = [&](const std::vector<int>& forced, std::uint64_t seed) {
    BuggyPopDeque deque(4);
    exec::TaskUnit unit{nullptr, 0};
    std::array<int, 2> claims{};  // [owner, thief]
    VirtualScheduler sched(forced, seed);
    const Result result = sched.run({
        [&] {
          EXPECT_TRUE(deque.push(&unit));
          if (deque.pop() != nullptr) ++claims[0];
        },
        [&] {
          if (deque.steal() != nullptr) ++claims[1];
        },
    });
    if (claims[0] + claims[1] > 1) ++duplicated_runs;
    return result;
  };
  const Exploration out = explore(round, /*dfs_depth=*/8, /*random_runs=*/200);
  EXPECT_GT(duplicated_runs, 0)
      << "the checker failed to surface the known owner/thief race in "
      << out.executions << " executions";
}

// ---------------------------------------------------------------------------
// 3. The PR 3 use-after-free class: completion must notify UNDER the lock,
// because the waiter may destroy the condition variable the moment it
// observes done. The buggy variant (notify after unlock) is exactly the
// code this repo shipped before the fix; the model checker proves the fix
// is load-bearing by finding the poisoned access in the buggy variant and
// finding none in the fixed one.

template <bool kNotifyUnderLock>
struct CompletionGate {
  ModelMutex mu;
  ModelCondVar cv;
  bool done = false;

  void complete() {
    if constexpr (kNotifyUnderLock) {
      mu.lock();
      done = true;
      cv.notify_all();
      mu.unlock();
    } else {
      mu.lock();
      done = true;
      mu.unlock();
      cv.notify_all();  // BUG: gate may already be destroyed by the waiter
    }
  }

  /// The waiter owns the gate and tears it down as soon as it sees done —
  /// exactly what TileExecutor::run's caller does with its TaskGroup.
  void wait_and_destroy() {
    mu.lock();
    while (!done) cv.wait(mu);
    mu.unlock();
    cv.destroy();
    mu.destroy();
  }
};

template <bool kNotifyUnderLock>
Exploration explore_gate() {
  auto round = [](const std::vector<int>& forced, std::uint64_t seed) {
    auto gate = std::make_unique<CompletionGate<kNotifyUnderLock>>();
    VirtualScheduler sched(forced, seed);
    return sched.run({
        [&] { gate->complete(); },
        [&] { gate->wait_and_destroy(); },
    });
  };
  return explore(round, /*dfs_depth=*/10, /*random_runs=*/300);
}

TEST(ModelCompletion, NotifyAfterUnlockIsAUseAfterFree) {
  const Exploration out = explore_gate</*kNotifyUnderLock=*/false>();
  EXPECT_GT(out.violations, 0)
      << "the pre-fix notify-after-unlock path should touch the destroyed "
         "condvar in some schedule ("
      << out.executions << " explored)";
}

TEST(ModelCompletion, NotifyUnderLockNeverTouchesDestroyedGate) {
  const Exploration out = explore_gate</*kNotifyUnderLock=*/true>();
  EXPECT_EQ(out.violations, 0);
  EXPECT_EQ(out.deadlocks, 0);
  EXPECT_EQ(out.truncated, 0);
}

// ---------------------------------------------------------------------------
// 4. TaskGroup completion/abort races, driven through the ModelAccess seam:
// on_complete runs exactly once (on the last retirer), and concurrent
// failures keep the FIRST error (first-error-wins), under every explored
// interleaving of ticket acquisition and retirement.

TEST(ModelTaskGroup, ExactlyOneCompletionAndFirstErrorWins) {
  constexpr int kThreads = 3;
  auto round = [](const std::vector<int>& forced,
                  std::uint64_t seed) -> Result {
    int completions = 0;
    exec::TaskGroup group(
        std::vector<exec::TaskGroup::Task>(
            kThreads, [](int, exec::TaskGroup&) {}),
        /*checkpoint=*/nullptr,
        /*on_complete=*/[&](exec::TaskGroup&) { ++completions; });

    // Scheduling points come from this instrumented ticket counter; the
    // group's own Mutex is real but only ever taken in uninstrumented
    // stretches (one model thread at a time, no scheduling point while
    // held), so it is never contended and never blocks the scheduler.
    ModelAtomic<int> ticket{0};
    std::array<int, kThreads> ticket_of{};  // thread index -> ticket
    std::array<int, kThreads> last_retire{};

    std::vector<std::function<void()>> bodies;
    for (int i = 0; i < kThreads; ++i) {
      bodies.push_back([&, i] {
        // No scheduling point between the ticket draw and fail(): the
        // ticket order IS the order the error slots are claimed in.
        const int my = ticket.fetch_add(1);
        ticket_of[static_cast<std::size_t>(i)] = my;
        exec::ModelAccess::fail(group, "err-" + std::to_string(i));
        last_retire[static_cast<std::size_t>(i)] =
            exec::ModelAccess::retire(group) ? 1 : 0;
      });
    }
    VirtualScheduler sched(forced, seed);
    const Result result = sched.run(std::move(bodies));
    EXPECT_FALSE(result.deadlock);
    EXPECT_FALSE(result.truncated);

    EXPECT_EQ(completions, 1) << "on_complete must run exactly once";
    EXPECT_EQ(last_retire[0] + last_retire[1] + last_retire[2], 1)
        << "exactly one thread is the last retirer";
    EXPECT_TRUE(group.done());
    int first = -1;
    for (int i = 0; i < kThreads; ++i) {
      if (ticket_of[static_cast<std::size_t>(i)] == 0) first = i;
    }
    EXPECT_NE(first, -1);
    if (first != -1) {
      EXPECT_EQ(group.error(), "err-" + std::to_string(first))
          << "first-error-wins: the earliest fail() call owns the message";
    }
    EXPECT_TRUE(group.aborted());
    return result;
  };
  const Exploration out = explore(round, /*dfs_depth=*/4, /*random_runs=*/600);
  EXPECT_GT(static_cast<int>(out.schedules.size()), 50);
  EXPECT_EQ(out.deadlocks, 0);
}

// ---------------------------------------------------------------------------
// 5. The scheduler itself: deadlock detection and determinism.

TEST(ModelScheduler, DetectsAbbaDeadlock) {
  auto round = [](const std::vector<int>& forced, std::uint64_t seed) {
    ModelMutex a;
    ModelMutex b;
    VirtualScheduler sched(forced, seed);
    return sched.run({
        [&] {
          ModelMutexLock la(a);
          ModelMutexLock lb(b);
        },
        [&] {
          ModelMutexLock lb(b);
          ModelMutexLock la(a);
        },
    });
  };
  const Exploration out = explore(round, /*dfs_depth=*/8, /*random_runs=*/100);
  EXPECT_GT(out.deadlocks, 0) << "ABBA must deadlock in some schedule";
  EXPECT_LT(out.deadlocks, out.executions)
      << "and complete cleanly in others";
  EXPECT_EQ(out.violations, 0);
}

// ---------------------------------------------------------------------------
// 6. The PR 9 wait_idle-vs-classification race, distilled from
// streaming.cpp complete_update(): the retired update's stats
// classification must land in the SAME critical section that clears
// inflight_update_ and notifies, or a wait_idle() caller can observe the
// session idle while the update is not yet counted. The buggy variant is
// the pre-fix shape — idleness published and waiters woken first,
// classification in a later critical section — and the checker must find
// a schedule where the waiter reads stale stats.

template <bool kClassifyUnderPublishLock>
struct StreamIdleGate {
  ModelMutex mu;
  ModelCondVar cv;
  bool inflight = true;  ///< one update already submitted and in flight
  int classified = 0;    ///< sum of the stats_.updates_* buckets

  /// complete_update()'s tail: classify the retired update and publish
  /// idleness.
  void complete() {
    if constexpr (kClassifyUnderPublishLock) {
      mu.lock();
      classified += 1;
      inflight = false;
      cv.notify_all();
      mu.unlock();
    } else {
      // BUG (pre-PR 9): wait_idle()'s predicate turns true and its waiter
      // wakes here, before the classification lands below.
      mu.lock();
      inflight = false;
      cv.notify_all();
      mu.unlock();
      mu.lock();
      classified += 1;
      mu.unlock();
    }
  }

  /// wait_idle() followed by the caller's stats read.
  int wait_idle_then_read() {
    mu.lock();
    while (inflight) cv.wait(mu);
    const int seen = classified;
    mu.unlock();
    return seen;
  }
};

template <bool kClassifyUnderPublishLock>
std::pair<Exploration, int> explore_idle_gate() {
  int stale_reads = 0;
  auto round = [&](const std::vector<int>& forced, std::uint64_t seed) {
    StreamIdleGate<kClassifyUnderPublishLock> gate;
    int seen = -1;
    VirtualScheduler sched(forced, seed);
    const Result result = sched.run({
        [&] { gate.complete(); },
        [&] { seen = gate.wait_idle_then_read(); },
    });
    if (!result.deadlock && !result.truncated && seen != 1) ++stale_reads;
    return result;
  };
  const Exploration out = explore(round, /*dfs_depth=*/10, /*random_runs=*/300);
  return {out, stale_reads};
}

TEST(ModelStreamIdle, ClassifyAfterPublishLeaksStaleStatsToWaitIdle) {
  const auto [out, stale_reads] =
      explore_idle_gate</*kClassifyUnderPublishLock=*/false>();
  EXPECT_GT(stale_reads, 0)
      << "the pre-fix classify-after-publish path should let wait_idle "
         "return before the update is counted in some schedule ("
      << out.executions << " explored)";
  EXPECT_EQ(out.deadlocks, 0);
  EXPECT_EQ(out.violations, 0);
}

TEST(ModelStreamIdle, ClassifyUnderPublishLockIsAlwaysCounted) {
  const auto [out, stale_reads] =
      explore_idle_gate</*kClassifyUnderPublishLock=*/true>();
  EXPECT_EQ(stale_reads, 0)
      << "an idle session must have every retired update classified";
  EXPECT_EQ(out.deadlocks, 0);
  EXPECT_EQ(out.truncated, 0);
  EXPECT_EQ(out.violations, 0);
}

// ---------------------------------------------------------------------------
// 7. The PR 6 mailbox abort protocol, distilled from comm.cpp: take()
// must check the abort flag inside its wait loop — but only when the box
// is empty, so messages delivered before the abort still drain (the
// gather path relies on that) — and abort() must lock/unlock the mailbox
// mutex before notifying, closing the check-then-wait lost-wakeup window.
// The buggy variant waits with no abort awareness: a receiver waiting for
// a message nobody will ever send parks forever, which the scheduler
// reports as a deadlock — the rank-failure hang PR 6 fixed, rediscovered
// here by exhaustive interleaving.

constexpr int kMailboxAborted = -1;

template <bool kAbortAware>
struct ModelMailbox {
  ModelMutex mu;
  ModelCondVar cv;
  std::vector<int> messages;    // guarded by mu
  ModelAtomic<int> aborted{0};  // real code: std::atomic<bool>, acq/rel

  void deliver(int payload) {
    mu.lock();
    messages.push_back(payload);
    mu.unlock();
    cv.notify_all();  // faithful to deliver(): notify outside the lock
  }

  /// Cluster::take(), returning kMailboxAborted where the real code
  /// throws aborted_error() (model threads must not leak exceptions).
  int take() {
    ModelMutexLock lock(mu);
    while (messages.empty()) {
      if constexpr (kAbortAware) {
        // Checked only when the box has nothing for us: pre-abort
        // deliveries drain normally, only a wait that could never be
        // satisfied turns into an abort.
        if (aborted.load() != 0) return kMailboxAborted;
      }
      cv.wait(mu);
    }
    const int payload = messages.front();
    messages.erase(messages.begin());
    return payload;
  }

  void abort() {
    aborted.store(1);
    if constexpr (kAbortAware) {
      // Lock/unlock before notifying (Cluster::abort does this per box):
      // a receiver is then either before its flag check under the mutex
      // (and will see the flag) or already parked in wait (and gets the
      // notify). Without the handshake the notify can land in between —
      // the classic lost wakeup.
      mu.lock();
      mu.unlock();
    }
    cv.notify_all();
  }
};

template <bool kAbortAware>
std::pair<Exploration, int> explore_mailbox() {
  int drain_violations = 0;
  auto round = [&](const std::vector<int>& forced, std::uint64_t seed) {
    ModelMailbox<kAbortAware> box;
    int first = 0;
    int second = 0;
    VirtualScheduler sched(forced, seed);
    const Result result = sched.run({
        [&] {  // sender rank: one payload, then the rank dies -> abort
          box.deliver(42);
          box.abort();
        },
        [&] {  // receiver rank: drains the payload, then waits on a
               // message nobody will ever send
          first = box.take();
          second = box.take();
        },
    });
    // Drain-after-abort: in every completed run the pre-abort delivery is
    // received and only the unsatisfiable wait aborts.
    if (!result.deadlock && !result.truncated &&
        (first != 42 || second != kMailboxAborted)) {
      ++drain_violations;
    }
    return result;
  };
  const Exploration out = explore(round, /*dfs_depth=*/10, /*random_runs=*/300);
  return {out, drain_violations};
}

TEST(ModelMailbox, AbortBlindWaitHangsTheReceiver) {
  const auto [out, drain_violations] = explore_mailbox</*kAbortAware=*/false>();
  (void)drain_violations;  // deadlocked runs never reach the drain check
  EXPECT_GT(out.deadlocks, 0)
      << "the pre-fix abort-blind wait should park the receiver forever in "
         "some schedule ("
      << out.executions << " explored)";
  // The hang is unconditional — the second take() can never be satisfied —
  // which is exactly the rank-failure symptom.
  EXPECT_EQ(out.deadlocks, out.executions);
  EXPECT_EQ(out.violations, 0);
}

TEST(ModelMailbox, AbortAwareTakeDrainsThenUnwinds) {
  const auto [out, drain_violations] = explore_mailbox</*kAbortAware=*/true>();
  EXPECT_EQ(out.deadlocks, 0)
      << "the abort-aware protocol must never hang, in any schedule";
  EXPECT_EQ(out.truncated, 0);
  EXPECT_EQ(out.violations, 0);
  EXPECT_EQ(drain_violations, 0)
      << "messages delivered before the abort must still drain, and the "
         "unsatisfiable wait must unwind as aborted";
}

TEST(ModelScheduler, FixedSeedIsDeterministic) {
  const Exploration a = explore(deque_round, /*dfs_depth=*/3,
                                /*random_runs=*/300, /*base_seed=*/42);
  const Exploration b = explore(deque_round, /*dfs_depth=*/3,
                                /*random_runs=*/300, /*base_seed=*/42);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.schedules, b.schedules)
      << "same (forced, seed) inputs must replay identical schedules";
  const Exploration c = explore(deque_round, /*dfs_depth=*/3,
                                /*random_runs=*/300, /*base_seed=*/43);
  EXPECT_NE(a.schedules, c.schedules)
      << "a different seed should explore a different schedule sample";
}

}  // namespace
}  // namespace sarbp::model
