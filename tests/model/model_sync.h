// Schedule-exploring model checker for the concurrency core.
//
// The checker runs a small fixed set of "model threads" under a virtual
// scheduler that allows exactly ONE thread to run at a time. Every access
// through the instrumented primitives (ModelAtomic, ModelMutex,
// ModelCondVar) is a scheduling point: the scheduler may preempt there and
// hand the token to any other runnable thread. Because context switches
// happen only at these points and each run's choice sequence is fully
// determined by a (forced-prefix, seed) pair, executions are deterministic
// and replayable — a failing schedule is a value you can print and re-run.
//
// Exploration combines two strategies (explore() in test_model.cpp):
//   * exhaustive-up-to-depth: a DFS over the first `dfs_depth` scheduling
//     choices, so every early divergence is systematically covered;
//   * randomized preemption: the remainder of each execution follows a
//     seeded RNG, sampling deep interleavings cheaply.
// Distinct interleavings are counted by hashing the chosen-thread sequence
// at every real choice point (>1 runnable thread).
//
// The interleaving semantics are sequentially consistent (one thread at a
// time, shared memory updated in place). That is deliberate: the deque
// under test uses the strong seq_cst Chase-Lev formulation, whose races —
// the owner/thief last-item race, the completion/abort races — are
// *interleaving* bugs, visible under SC. Weak-memory reorderings are out of
// scope here; tools/run_sanitized_tests.sh tsan covers those.
//
// Lifetime bugs (the PR 3 notify-after-unlock use-after-free class) are
// caught by poisoning: ModelMutex/ModelCondVar have an explicit destroy()
// the fixture calls where the real code would run a destructor, and any
// later use of the poisoned object is recorded as a violation instead of
// being undefined behaviour.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <random>
#include <thread>
#include <utility>
#include <vector>

namespace sarbp::model {

/// Thrown inside model threads to unwind them when a run is aborted
/// (deadlock detected or step cap hit). Bodies must let it propagate.
struct ModelAbort {};

struct ModelMutex;
struct ModelCondVar;

class VirtualScheduler {
 public:
  /// Outcome of one execution.
  struct Result {
    bool deadlock = false;        ///< no runnable thread, some still blocked
    bool truncated = false;       ///< hit kMaxSteps (livelocked schedule)
    bool use_after_destroy = false;  ///< poisoned primitive touched
    std::uint64_t hash = 1469598103934665603ULL;  ///< FNV over choices
    /// Number of runnable threads at each real choice point, in order —
    /// the branching structure explore() expands its DFS prefixes over.
    std::vector<std::uint8_t> branching;
  };

  static constexpr int kMaxSteps = 20000;

  /// `forced`: explicit choices (index into the runnable set) consumed
  /// first; the remainder of the schedule draws from `seed`.
  VirtualScheduler(std::vector<int> forced, std::uint64_t seed)
      : forced_(std::move(forced)), rng_(seed) {}

  /// Runs every body to completion (or abort) under one schedule.
  Result run(std::vector<std::function<void()>> bodies) {
    const int n = static_cast<int>(bodies.size());
    state_.assign(static_cast<std::size_t>(n), St::kReady);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back(
          [this, i,
           body = std::move(bodies[static_cast<std::size_t>(i)])]() mutable {
            tls_sched_ = this;
            tls_self_ = i;
            {
              std::unique_lock lk(m_);
              cv_.wait(lk, [&] { return current_ == i || abort_; });
            }
            if (!abort_) {
              try {
                body();
              } catch (const ModelAbort&) {
              }
            }
            std::unique_lock lk(m_);
            state_[static_cast<std::size_t>(i)] = St::kFinished;
            if (!abort_) hand_off_locked(/*self_runnable=*/false);
            cv_.notify_all();
            tls_sched_ = nullptr;
          });
    }
    {
      std::unique_lock lk(m_);
      current_ = pick_locked();  // n >= 1, all ready: never -1
      cv_.notify_all();
    }
    for (auto& t : threads) t.join();
    return result_;
  }

  /// Scheduling point for the *current* model thread. No-op when called
  /// outside a model run (so instrumented types work in plain tests too).
  static void yield() {
    if (tls_sched_ != nullptr) tls_sched_->yield_point(tls_self_);
  }

  /// The scheduler driving the calling thread; null outside a model run.
  [[nodiscard]] static VirtualScheduler* current() { return tls_sched_; }

  // ----- ModelMutex / ModelCondVar hooks ---------------------------------
  void lock(ModelMutex& mu);
  void unlock(ModelMutex& mu);
  void wait(ModelCondVar& cv, ModelMutex& mu);
  void notify(ModelCondVar& cv, bool all);

 private:
  enum class St : std::uint8_t { kReady, kBlocked, kFinished };

  /// Picks the next thread among runnable ones; -1 when none. Consumes a
  /// choice (and records branching + hash) only at real choice points.
  int pick_locked() {
    runnable_.clear();
    for (int i = 0; i < static_cast<int>(state_.size()); ++i) {
      if (state_[static_cast<std::size_t>(i)] == St::kReady) {
        runnable_.push_back(i);
      }
    }
    if (runnable_.empty()) return -1;
    std::size_t idx = 0;
    if (runnable_.size() > 1) {
      result_.branching.push_back(static_cast<std::uint8_t>(runnable_.size()));
      if (pos_ < forced_.size()) {
        idx = static_cast<std::size_t>(forced_[pos_++]) % runnable_.size();
      } else {
        idx = static_cast<std::size_t>(rng_()) % runnable_.size();
      }
      result_.hash ^= static_cast<std::uint64_t>(runnable_[idx]) + 0x9e37;
      result_.hash *= 0x100000001b3ULL;
    }
    return runnable_[idx];
  }

  /// With m_ held: choose the next thread and publish it. When the caller
  /// stays runnable it may well pick itself. Detects deadlock when the
  /// caller is leaving the runnable set for good.
  void hand_off_locked(bool self_runnable) {
    const int next = pick_locked();
    if (next == -1) {
      if (!self_runnable) {
        bool any_blocked = false;
        for (const St s : state_) any_blocked |= (s == St::kBlocked);
        if (any_blocked) {
          result_.deadlock = true;
          abort_ = true;
        }
      }
      current_ = -1;
      return;
    }
    current_ = next;
  }

  void yield_point(int self) {
    std::unique_lock lk(m_);
    bump_step_locked();
    hand_off_locked(/*self_runnable=*/true);
    wait_for_turn(lk, self);
  }

  void bump_step_locked() {
    if (++steps_ > kMaxSteps) {
      result_.truncated = true;
      abort_ = true;
      cv_.notify_all();
      throw ModelAbort{};
    }
  }

  /// With m_ held and state_[self] just set to kBlocked: hand control away
  /// and sleep until runnable *and* scheduled again (or the run aborts).
  void block_and_wait(std::unique_lock<std::mutex>& lk, int self) {
    hand_off_locked(/*self_runnable=*/false);
    wait_for_turn(lk, self);
  }

  void wait_for_turn(std::unique_lock<std::mutex>& lk, int self) {
    cv_.notify_all();
    cv_.wait(lk, [&] { return abort_ || current_ == self; });
    if (abort_) throw ModelAbort{};
  }

  void flag_poison_locked() { result_.use_after_destroy = true; }

  static thread_local VirtualScheduler* tls_sched_;
  static thread_local int tls_self_;

  std::mutex m_;
  std::condition_variable cv_;
  std::vector<St> state_;
  std::vector<int> runnable_;
  int current_ = -1;
  bool abort_ = false;
  int steps_ = 0;
  std::vector<int> forced_;
  std::size_t pos_ = 0;
  std::mt19937_64 rng_;
  Result result_;
};

inline thread_local VirtualScheduler* VirtualScheduler::tls_sched_ = nullptr;
inline thread_local int VirtualScheduler::tls_self_ = -1;

// --------------------------------------------------------------------------
/// Instrumented atomic: plain value + a scheduling point before every
/// access. Only one model thread runs at a time and scheduler hand-offs
/// synchronize, so unprotected access to v_ is race-free.
template <class T>
class ModelAtomic {
 public:
  ModelAtomic() noexcept : v_{} {}
  ModelAtomic(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)
  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order = std::memory_order_seq_cst) const {
    VirtualScheduler::yield();
    return v_;
  }
  void store(T v, std::memory_order = std::memory_order_seq_cst) {
    VirtualScheduler::yield();
    v_ = v;
  }
  T exchange(T v, std::memory_order = std::memory_order_seq_cst) {
    VirtualScheduler::yield();
    T old = v_;
    v_ = v;
    return old;
  }
  bool compare_exchange_strong(
      T& expected, T desired, std::memory_order = std::memory_order_seq_cst,
      std::memory_order = std::memory_order_seq_cst) {
    VirtualScheduler::yield();
    if (v_ == expected) {
      v_ = desired;
      return true;
    }
    expected = v_;
    return false;
  }
  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order mo1 = std::memory_order_seq_cst,
      std::memory_order mo2 = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo1, mo2);
  }
  T fetch_add(T delta, std::memory_order = std::memory_order_seq_cst) {
    VirtualScheduler::yield();
    T old = v_;
    v_ = static_cast<T>(v_ + delta);
    return old;
  }
  T fetch_sub(T delta, std::memory_order = std::memory_order_seq_cst) {
    VirtualScheduler::yield();
    T old = v_;
    v_ = static_cast<T>(v_ - delta);
    return old;
  }

 private:
  T v_;
};

/// Atomics policy binding BasicStealDeque (and friends) to the scheduler.
struct ModelAtomicPolicy {
  template <class T>
  using Atomic = ModelAtomic<T>;
};

// --------------------------------------------------------------------------
/// Cooperative mutex. destroy() poisons the object: later use is recorded
/// on the scheduler as a violation instead of being undefined behaviour.
struct ModelMutex {
  bool held = false;
  int owner = -1;
  bool destroyed = false;
  std::vector<int> waiters;

  void lock() {
    if (auto* s = VirtualScheduler::current()) s->lock(*this);
    else held = true;  // single-threaded fallback outside model runs
  }
  void unlock() {
    if (auto* s = VirtualScheduler::current()) s->unlock(*this);
    else held = false;
  }
  void destroy() { destroyed = true; }
};

/// Cooperative condition variable over ModelMutex.
struct ModelCondVar {
  std::vector<int> waiters;
  bool destroyed = false;

  /// Caller must hold `mu`. Releases it, blocks until notified, reacquires.
  void wait(ModelMutex& mu) {
    if (auto* s = VirtualScheduler::current()) s->wait(*this, mu);
  }
  void notify_one() {
    if (auto* s = VirtualScheduler::current()) s->notify(*this, false);
  }
  void notify_all() {
    if (auto* s = VirtualScheduler::current()) s->notify(*this, true);
  }
  void destroy() { destroyed = true; }
};

/// RAII lock for ModelMutex (mirrors sarbp::MutexLock).
class ModelMutexLock {
 public:
  explicit ModelMutexLock(ModelMutex& mu) : mu_(mu) { mu_.lock(); }
  ~ModelMutexLock() {
    if (held_) mu_.unlock();
  }
  ModelMutexLock(const ModelMutexLock&) = delete;
  ModelMutexLock& operator=(const ModelMutexLock&) = delete;
  void unlock() {
    mu_.unlock();
    held_ = false;
  }

 private:
  ModelMutex& mu_;
  bool held_ = true;
};

inline void VirtualScheduler::lock(ModelMutex& mu) {
  const int self = tls_self_;
  yield_point(self);  // the acquire attempt is a scheduling point
  std::unique_lock lk(m_);
  if (mu.destroyed) flag_poison_locked();
  while (mu.held) {
    state_[static_cast<std::size_t>(self)] = St::kBlocked;
    mu.waiters.push_back(self);
    block_and_wait(lk, self);
  }
  mu.held = true;
  mu.owner = self;
}

// unlock() must be usable from destructors unwinding on ModelAbort (RAII
// guards release their mutex while the abort exception is in flight), so
// unlike every other hook it NEVER throws: once the run is aborted it
// releases the mutex without a scheduling point. The body then stops at its
// next instrumented operation instead.
inline void VirtualScheduler::unlock(ModelMutex& mu) {
  const int self = tls_self_;
  std::unique_lock lk(m_);
  if (!abort_) {
    if (++steps_ > kMaxSteps) {
      result_.truncated = true;
      abort_ = true;
    } else {
      hand_off_locked(/*self_runnable=*/true);
      cv_.notify_all();
      cv_.wait(lk, [&] { return abort_ || current_ == self; });
    }
  }
  if (mu.destroyed) flag_poison_locked();
  mu.held = false;
  mu.owner = -1;
  for (const int w : mu.waiters) {
    state_[static_cast<std::size_t>(w)] = St::kReady;
  }
  mu.waiters.clear();
  if (abort_) cv_.notify_all();  // make sure peers wake up and unwind too
}

inline void VirtualScheduler::wait(ModelCondVar& cv, ModelMutex& mu) {
  const int self = tls_self_;
  {
    std::unique_lock lk(m_);
    if (cv.destroyed || mu.destroyed) flag_poison_locked();
    // Atomically release the mutex and join the wait set (no lost wakeup:
    // both happen under the scheduler lock, before control is handed off).
    mu.held = false;
    mu.owner = -1;
    for (const int w : mu.waiters) {
      state_[static_cast<std::size_t>(w)] = St::kReady;
    }
    mu.waiters.clear();
    cv.waiters.push_back(self);
    state_[static_cast<std::size_t>(self)] = St::kBlocked;
    block_and_wait(lk, self);
  }
  lock(mu);  // woken: reacquire before returning, like std::condition_variable
}

inline void VirtualScheduler::notify(ModelCondVar& cv, bool all) {
  const int self = tls_self_;
  yield_point(self);
  std::unique_lock lk(m_);
  if (cv.destroyed) {
    flag_poison_locked();  // notify on a destroyed condvar: the UAF class
    return;
  }
  if (all) {
    for (const int w : cv.waiters) {
      state_[static_cast<std::size_t>(w)] = St::kReady;
    }
    cv.waiters.clear();
  } else if (!cv.waiters.empty()) {
    state_[static_cast<std::size_t>(cv.waiters.front())] = St::kReady;
    cv.waiters.erase(cv.waiters.begin());
  }
}

}  // namespace sarbp::model
