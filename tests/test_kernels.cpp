// Backprojection kernel tests: every production kernel against the
// full-double reference (SNR floors per variant), SIMD/scalar parity,
// loop-order invariance, ASR block-size accuracy ordering (the Fig. 8
// property), additivity over pulse ranges and regions, and the end-to-end
// point-target focusing integration test.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "backprojection/kernel.h"
#include "common/snr.h"
#include "test_helpers.h"

namespace sarbp::bp {
namespace {

using sarbp::testing::ScenarioConfig;
using sarbp::testing::SmallScenario;
using sarbp::testing::make_scenario;

class KernelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.image = 128;
    cfg.pulses = 48;
    // Dense (noise-filled) pulse data: every pixel carries signal, so the
    // image SNR reflects the *average* phase error — the quantity the ASR
    // block-size analysis predicts — rather than the error at a handful of
    // reflector peaks.
    cfg.fidelity = sim::CollectionFidelity::kRandom;
    scenario_ = new SmallScenario(make_scenario(cfg));
    reference_ = new Grid2D<CDouble>(128, 128);
    Region all{0, 0, 128, 128};
    backproject_ref(scenario_->history, scenario_->grid, all, 0,
                    scenario_->history.num_pulses(), *reference_);
  }
  static void TearDownTestSuite() {
    delete scenario_;
    delete reference_;
    scenario_ = nullptr;
    reference_ = nullptr;
  }

  static Grid2D<CFloat> to_image(const SoaTile& tile) {
    Grid2D<CFloat> img(tile.width(), tile.height());
    Region all{0, 0, tile.width(), tile.height()};
    SoaTile copy = tile;
    copy.accumulate_into(img, all);
    return img;
  }

  static double run_kernel_snr(KernelKind kind, Index block,
                               geometry::LoopOrder order) {
    const auto& s = *scenario_;
    Region all{0, 0, s.grid.width(), s.grid.height()};
    SoaTile tile(all.width, all.height);
    switch (kind) {
      case KernelKind::kBaseline:
        backproject_baseline(s.history, s.grid, all, 0,
                             s.history.num_pulses(), false, order, tile);
        break;
      case KernelKind::kBaselineAllFloat:
        backproject_baseline(s.history, s.grid, all, 0,
                             s.history.num_pulses(), true, order, tile);
        break;
      case KernelKind::kAsrScalar:
        backproject_asr_scalar(s.history, s.grid, all, 0,
                               s.history.num_pulses(), block, block, order,
                               tile);
        break;
      case KernelKind::kAsrSimd:
        backproject_asr_simd(s.history, s.grid, all, 0,
                             s.history.num_pulses(), block, block, order,
                             tile);
        break;
      case KernelKind::kRefDouble:
        ADD_FAILURE() << "not a float kernel";
    }
    const Grid2D<CFloat> img = to_image(tile);
    return snr_db(img, *reference_);
  }

  static SmallScenario* scenario_;
  static Grid2D<CDouble>* reference_;
};

SmallScenario* KernelTest::scenario_ = nullptr;
Grid2D<CDouble>* KernelTest::reference_ = nullptr;

TEST_F(KernelTest, ReferenceImageIsNonTrivial) {
  double energy = 0.0;
  for (const auto& v : reference_->flat()) energy += std::norm(v);
  EXPECT_GT(energy, 0.0);
}

TEST_F(KernelTest, BaselineMatchesReferenceAtEpAccuracy) {
  // The baseline's EP-mode trig targets the paper's ~55 dB operating point.
  const double snr = run_kernel_snr(KernelKind::kBaseline, 64,
                                    geometry::LoopOrder::kXInner);
  EXPECT_GT(snr, 45.0);
  EXPECT_LT(snr, 80.0);
}

TEST_F(KernelTest, AllFloatBaselineCollapsesTowardTwelveDb) {
  // Fig. 8: computing r (and the trig argument reduction) in single
  // precision drops image SNR to ~12 dB.
  const double snr = run_kernel_snr(KernelKind::kBaselineAllFloat, 64,
                                    geometry::LoopOrder::kXInner);
  EXPECT_GT(snr, 0.5);
  EXPECT_LT(snr, 30.0);
}

TEST_F(KernelTest, AsrScalarReachesBaselineAccuracyAt64) {
  const double asr = run_kernel_snr(KernelKind::kAsrScalar, 64,
                                    geometry::LoopOrder::kXInner);
  EXPECT_GT(asr, 45.0);
}

TEST_F(KernelTest, AsrAccuracyDecreasesWithBlockSize) {
  const double snr16 = run_kernel_snr(KernelKind::kAsrScalar, 16,
                                      geometry::LoopOrder::kXInner);
  const double snr64 = run_kernel_snr(KernelKind::kAsrScalar, 64,
                                      geometry::LoopOrder::kXInner);
  const double snr128 = run_kernel_snr(KernelKind::kAsrScalar, 128,
                                       geometry::LoopOrder::kXInner);
  EXPECT_GT(snr16, snr64 - 3.0);   // small blocks at least as good
  EXPECT_GT(snr64, snr128);        // large blocks strictly worse
}

TEST_F(KernelTest, AsrSimdMatchesScalarClosely) {
  if (!asr_simd_available()) GTEST_SKIP() << "no SIMD kernel compiled";
  const auto& s = *scenario_;
  Region all{0, 0, s.grid.width(), s.grid.height()};
  SoaTile scalar_tile(all.width, all.height);
  SoaTile simd_tile(all.width, all.height);
  backproject_asr_scalar(s.history, s.grid, all, 0, s.history.num_pulses(),
                         64, 64, geometry::LoopOrder::kXInner, scalar_tile);
  backproject_asr_simd(s.history, s.grid, all, 0, s.history.num_pulses(),
                       64, 64, geometry::LoopOrder::kXInner, simd_tile);
  // FMA contraction reorders rounding, so equality is to ~1e-5 relative,
  // not bitwise.
  const double parity = snr_db(to_image(simd_tile), to_image(scalar_tile));
  EXPECT_GT(parity, 90.0);
}

TEST_F(KernelTest, AsrSimdAccuracyMatchesReference) {
  if (!asr_simd_available()) GTEST_SKIP() << "no SIMD kernel compiled";
  const double snr = run_kernel_snr(KernelKind::kAsrSimd, 64,
                                    geometry::LoopOrder::kXInner);
  EXPECT_GT(snr, 45.0);
}

TEST_F(KernelTest, LoopOrderDoesNotChangeResult) {
  for (KernelKind kind :
       {KernelKind::kBaseline, KernelKind::kAsrScalar, KernelKind::kAsrSimd}) {
    if (kind == KernelKind::kAsrSimd && !asr_simd_available()) continue;
    const auto& s = *scenario_;
    Region all{0, 0, s.grid.width(), s.grid.height()};
    SoaTile a(all.width, all.height);
    SoaTile b(all.width, all.height);
    auto run = [&](geometry::LoopOrder order, SoaTile& tile) {
      switch (kind) {
        case KernelKind::kBaseline:
          backproject_baseline(s.history, s.grid, all, 0, 16, false, order,
                               tile);
          break;
        case KernelKind::kAsrScalar:
          backproject_asr_scalar(s.history, s.grid, all, 0, 16, 64, 64,
                                 order, tile);
          break;
        default:
          backproject_asr_simd(s.history, s.grid, all, 0, 16, 64, 64, order,
                               tile);
      }
    };
    run(geometry::LoopOrder::kXInner, a);
    run(geometry::LoopOrder::kYInner, b);
    // Same math, different traversal: results agree to float rounding.
    const double parity = snr_db(to_image(a), to_image(b));
    EXPECT_GT(parity, 60.0) << kernel_name(kind);
  }
}

TEST_F(KernelTest, PulseRangesAreAdditive) {
  const auto& s = *scenario_;
  Region all{0, 0, s.grid.width(), s.grid.height()};
  const Index n = s.history.num_pulses();
  SoaTile whole(all.width, all.height);
  backproject_asr_scalar(s.history, s.grid, all, 0, n, 64, 64,
                         geometry::LoopOrder::kXInner, whole);
  SoaTile parts(all.width, all.height);
  backproject_asr_scalar(s.history, s.grid, all, 0, n / 3, 64, 64,
                         geometry::LoopOrder::kXInner, parts);
  backproject_asr_scalar(s.history, s.grid, all, n / 3, n, 64, 64,
                         geometry::LoopOrder::kXInner, parts);
  const double parity = snr_db(to_image(parts), to_image(whole));
  EXPECT_GT(parity, 100.0);
}

TEST_F(KernelTest, DisjointRegionsTileTheImage) {
  const auto& s = *scenario_;
  const Index w = s.grid.width();
  const Index h = s.grid.height();
  Grid2D<CFloat> whole_img(w, h);
  {
    Region all{0, 0, w, h};
    SoaTile t(w, h);
    backproject_asr_scalar(s.history, s.grid, all, 0, 16, 64, 64,
                           geometry::LoopOrder::kXInner, t);
    t.accumulate_into(whole_img, all);
  }
  Grid2D<CFloat> tiled_img(w, h);
  for (Index qy = 0; qy < 2; ++qy) {
    for (Index qx = 0; qx < 2; ++qx) {
      Region quad{qx * w / 2, qy * h / 2, w / 2, h / 2};
      SoaTile t(quad.width, quad.height);
      backproject_asr_scalar(s.history, s.grid, quad, 0, 16, 64, 64,
                             geometry::LoopOrder::kXInner, t);
      t.accumulate_into(tiled_img, quad);
    }
  }
  const double parity = snr_db(tiled_img, whole_img);
  EXPECT_GT(parity, 100.0);
}

TEST_F(KernelTest, EmptyPulseRangeLeavesTileZero) {
  const auto& s = *scenario_;
  Region all{0, 0, s.grid.width(), s.grid.height()};
  SoaTile tile(all.width, all.height);
  backproject_asr_scalar(s.history, s.grid, all, 5, 5, 64, 64,
                         geometry::LoopOrder::kXInner, tile);
  for (Index y = 0; y < tile.height(); ++y) {
    for (Index x = 0; x < tile.width(); ++x) {
      ASSERT_EQ(tile.at(x, y), CFloat{});
    }
  }
}

TEST_F(KernelTest, MismatchedTileShapeThrows) {
  const auto& s = *scenario_;
  Region all{0, 0, s.grid.width(), s.grid.height()};
  SoaTile wrong(8, 8);
  EXPECT_THROW(backproject_asr_scalar(s.history, s.grid, all, 0, 1, 64, 64,
                                      geometry::LoopOrder::kXInner, wrong),
               PreconditionError);
  EXPECT_THROW(backproject_baseline(s.history, s.grid, all, 0, 1, false,
                                    geometry::LoopOrder::kXInner, wrong),
               PreconditionError);
}

TEST_F(KernelTest, PulseRangeOutOfBoundsThrows) {
  const auto& s = *scenario_;
  Region all{0, 0, s.grid.width(), s.grid.height()};
  SoaTile tile(all.width, all.height);
  EXPECT_THROW(
      backproject_asr_scalar(s.history, s.grid, all, 0,
                             s.history.num_pulses() + 1, 64, 64,
                             geometry::LoopOrder::kXInner, tile),
      PreconditionError);
}

/// End-to-end focusing: a single point reflector must reconstruct to a
/// sharp peak at its own pixel with strong contrast over the background.
class FocusTest : public ::testing::TestWithParam<sim::CollectionFidelity> {};

TEST_P(FocusTest, PointTargetFocusesAtItsPixel) {
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 96;
  cfg.fidelity = GetParam();
  cfg.perturbation_sigma = 0.05;  // robustness: perturbed trajectory
  SmallScenario s = make_scenario(cfg);

  sim::Reflector r;
  const Index px = 40, py = 24;  // off-centre target
  r.position = s.grid.position(px, py);
  s.scene = sim::ReflectorScene({r});
  sim::CollectorParams params;
  params.fidelity = cfg.fidelity;
  Rng rng(3);
  s.history = sim::collect(params, s.grid, s.scene, s.poses, rng);

  Region all{0, 0, s.grid.width(), s.grid.height()};
  SoaTile tile(all.width, all.height);
  backproject_asr_simd(s.history, s.grid, all, 0, s.history.num_pulses(), 64,
                       64, geometry::LoopOrder::kXInner, tile);

  // Peak location.
  Index best_x = 0, best_y = 0;
  double best = 0.0;
  double total = 0.0;
  for (Index y = 0; y < all.height; ++y) {
    for (Index x = 0; x < all.width; ++x) {
      const double mag = std::abs(std::complex<double>(
          tile.at(x, y).real(), tile.at(x, y).imag()));
      total += mag;
      if (mag > best) {
        best = mag;
        best_x = x;
        best_y = y;
      }
    }
  }
  EXPECT_LE(std::abs(best_x - px), 1);
  EXPECT_LE(std::abs(best_y - py), 1);
  // Contrast: the peak should dominate the mean background strongly.
  const double mean = total / static_cast<double>(all.pixels());
  EXPECT_GT(best / mean, 30.0);
}

INSTANTIATE_TEST_SUITE_P(Fidelities, FocusTest,
                         ::testing::Values(sim::CollectionFidelity::kIdealResponse,
                                           sim::CollectionFidelity::kFullWaveform));

/// Property sweep: kernel correctness must hold across look directions,
/// standoffs, and altitudes — not just the calibrated default geometry.
struct GeometryCase {
  double azimuth_rad;
  double standoff_m;
  double altitude_m;
};

class KernelGeometrySweep : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(KernelGeometrySweep, AllKernelsTrackReference) {
  const GeometryCase g = GetParam();
  ScenarioConfig cfg;
  cfg.image = 96;
  cfg.pulses = 24;
  cfg.fidelity = sim::CollectionFidelity::kRandom;
  cfg.start_angle_rad = g.azimuth_rad;
  cfg.orbit_radius_m = g.standoff_m;
  cfg.orbit_altitude_m = g.altitude_m;
  cfg.seed = 1000 + static_cast<std::uint64_t>(g.azimuth_rad * 100.0);
  const SmallScenario s = make_scenario(cfg);

  const Region all{0, 0, s.grid.width(), s.grid.height()};
  Grid2D<CDouble> reference(all.width, all.height);
  backproject_ref(s.history, s.grid, all, 0, s.history.num_pulses(),
                  reference);

  auto run = [&](KernelKind kind, geometry::LoopOrder order) {
    SoaTile tile(all.width, all.height);
    switch (kind) {
      case KernelKind::kBaseline:
        backproject_baseline(s.history, s.grid, all, 0,
                             s.history.num_pulses(), false, order, tile);
        break;
      case KernelKind::kAsrScalar:
        backproject_asr_scalar(s.history, s.grid, all, 0,
                               s.history.num_pulses(), 64, 64, order, tile);
        break;
      default:
        backproject_asr_simd(s.history, s.grid, all, 0,
                             s.history.num_pulses(), 64, 64, order, tile);
    }
    Grid2D<CFloat> img(all.width, all.height);
    tile.accumulate_into(img, all);
    return snr_db(img, reference);
  };

  for (const auto order :
       {geometry::LoopOrder::kXInner, geometry::LoopOrder::kYInner}) {
    EXPECT_GT(run(KernelKind::kBaseline, order), 45.0)
        << "baseline az=" << g.azimuth_rad;
    EXPECT_GT(run(KernelKind::kAsrScalar, order), 45.0)
        << "asr-scalar az=" << g.azimuth_rad;
    if (asr_simd_available()) {
      EXPECT_GT(run(KernelKind::kAsrSimd, order), 45.0)
          << "asr-simd az=" << g.azimuth_rad;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, KernelGeometrySweep,
    ::testing::Values(GeometryCase{0.0, 40000, 8000},
                      GeometryCase{0.7854, 40000, 8000},   // 45 deg
                      GeometryCase{1.5708, 40000, 8000},   // 90 deg: look ~ y
                      GeometryCase{2.3562, 40000, 8000},   // 135 deg
                      GeometryCase{3.1416, 40000, 8000},   // 180 deg
                      GeometryCase{4.2, 40000, 8000},      // third quadrant
                      GeometryCase{5.5, 40000, 8000},      // fourth quadrant
                      GeometryCase{0.3, 60000, 8000},      // longer standoff
                      GeometryCase{0.3, 30000, 12000},     // steeper grazing
                      GeometryCase{1.0, 50000, 3000}),     // shallow grazing
    [](const ::testing::TestParamInfo<GeometryCase>& param_info) {
      return "az" + std::to_string(static_cast<int>(
                        param_info.param.azimuth_rad * 180.0 / 3.14159265)) +
             "_r" + std::to_string(static_cast<int>(param_info.param.standoff_m / 1000)) +
             "k_h" + std::to_string(static_cast<int>(param_info.param.altitude_m / 1000)) +
             "k";
    });

TEST(KernelName, AllNamesDistinct) {
  EXPECT_STREQ(kernel_name(KernelKind::kRefDouble), "ref-double");
  EXPECT_STREQ(kernel_name(KernelKind::kBaseline), "baseline");
  EXPECT_STREQ(kernel_name(KernelKind::kAsrScalar), "asr-scalar");
  EXPECT_STREQ(kernel_name(KernelKind::kAsrSimd), "asr-simd");
}

TEST(Simd, WidthConsistentWithAvailability) {
  if (asr_simd_available()) {
    EXPECT_GT(asr_simd_width(), 1);
  } else {
    EXPECT_EQ(asr_simd_width(), 1);
  }
}

TEST(Simd, AvailabilityMatchesCompiledWidth) {
  // A width-1 build (no vector ISA at compile time) must report the SIMD
  // kernel as unavailable, so selection falls back instead of running a
  // degenerate 1-lane "vector" path.
  EXPECT_EQ(asr_simd_available(), asr_simd_width() > 1);
}

TEST(Simd, ResolveKernelFallsBackToScalarWhenUnavailable) {
  const KernelKind resolved = resolve_kernel(KernelKind::kAsrSimd);
  if (asr_simd_available()) {
    EXPECT_EQ(resolved, KernelKind::kAsrSimd);
  } else {
    EXPECT_EQ(resolved, KernelKind::kAsrScalar);
  }
  // Every other kind resolves to itself regardless of ISA support.
  for (KernelKind kind :
       {KernelKind::kBaseline, KernelKind::kBaselineAllFloat,
        KernelKind::kAsrScalar}) {
    EXPECT_EQ(resolve_kernel(kind), kind) << kernel_name(kind);
  }
}

}  // namespace
}  // namespace sarbp::bp
