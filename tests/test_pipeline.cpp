// Pipeline-stage tests: affine fitting, registration shift recovery, CCD
// (incremental vs direct equality, change sensitivity), CFAR statistics,
// and the full threaded surveillance pipeline end-to-end.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <thread>

#include "common/rng.h"
#include "common/snr.h"
#include "obs/metrics.h"
#include "pipeline/affine.h"
#include "pipeline/ccd.h"
#include "pipeline/cfar.h"
#include "pipeline/pipeline.h"
#include "pipeline/registration.h"
#include "test_helpers.h"

namespace sarbp::pipeline {
namespace {

using sarbp::testing::ScenarioConfig;
using sarbp::testing::SmallScenario;
using sarbp::testing::make_scenario;

TEST(Affine, IdentityMapsPointsToThemselves) {
  const AffineTransform t = AffineTransform::identity();
  double x = 0, y = 0;
  t.apply(3.5, -2.25, x, y);
  EXPECT_DOUBLE_EQ(x, 3.5);
  EXPECT_DOUBLE_EQ(y, -2.25);
}

TEST(Affine, FitRecoversPureTranslation) {
  std::vector<ControlPointMatch> matches;
  for (double px : {10.0, 50.0, 90.0}) {
    for (double py : {20.0, 60.0}) {
      matches.push_back({px, py, 2.5, -1.75, 1.0});
    }
  }
  const AffineTransform t = fit_affine(matches);
  EXPECT_NEAR(t.axx, 1.0, 1e-9);
  EXPECT_NEAR(t.axy, 0.0, 1e-9);
  EXPECT_NEAR(t.tx, 2.5, 1e-9);
  EXPECT_NEAR(t.ayy, 1.0, 1e-9);
  EXPECT_NEAR(t.ty, -1.75, 1e-9);
}

TEST(Affine, FitRecoversGeneralAffine) {
  // Ground truth: x' = 1.02 x - 0.03 y + 4; y' = 0.01 x + 0.98 y - 2.
  const AffineTransform truth{1.02, -0.03, 4.0, 0.01, 0.98, -2.0};
  Rng rng(7);
  std::vector<ControlPointMatch> matches;
  for (int i = 0; i < 12; ++i) {
    ControlPointMatch m;
    m.x = rng.uniform(0, 200);
    m.y = rng.uniform(0, 200);
    double tx = 0, ty = 0;
    truth.apply(m.x, m.y, tx, ty);
    m.dx = tx - m.x;
    m.dy = ty - m.y;
    matches.push_back(m);
  }
  const AffineTransform t = fit_affine(matches);
  EXPECT_NEAR(t.axx, truth.axx, 1e-9);
  EXPECT_NEAR(t.axy, truth.axy, 1e-9);
  EXPECT_NEAR(t.tx, truth.tx, 1e-7);
  EXPECT_NEAR(t.ayx, truth.ayx, 1e-9);
  EXPECT_NEAR(t.ayy, truth.ayy, 1e-9);
  EXPECT_NEAR(t.ty, truth.ty, 1e-7);
}

TEST(Affine, WeightsDownweightOutliers) {
  std::vector<ControlPointMatch> matches;
  for (double px : {10.0, 50.0, 90.0, 130.0}) {
    for (double py : {20.0, 60.0, 100.0}) {
      matches.push_back({px, py, 1.0, 0.0, 1.0});
    }
  }
  // A wild outlier with (near-)zero confidence must not move the fit.
  matches.push_back({70.0, 70.0, 500.0, -400.0, 1e-9});
  const AffineTransform t = fit_affine(matches);
  EXPECT_NEAR(t.tx, 1.0, 1e-4);
  EXPECT_NEAR(t.ty, 0.0, 1e-4);
}

TEST(Affine, TooFewPointsThrow) {
  std::vector<ControlPointMatch> two = {{0, 0, 1, 1, 1}, {5, 5, 1, 1, 1}};
  EXPECT_THROW(fit_affine(two), PreconditionError);
}

TEST(Affine, CollinearPointsThrow) {
  std::vector<ControlPointMatch> collinear = {
      {0, 0, 1, 1, 1}, {10, 0, 1, 1, 1}, {20, 0, 1, 1, 1}};
  EXPECT_THROW(fit_affine(collinear), PreconditionError);
}

/// Synthetic speckle image with structure (random complex field smoothed
/// by local sums) so patch correlation has something to lock onto.
Grid2D<CFloat> speckle_image(Index w, Index h, std::uint64_t seed) {
  Rng rng(seed);
  Grid2D<CFloat> raw(w, h);
  for (auto& v : raw.flat()) {
    v = CFloat(static_cast<float>(rng.normal()),
               static_cast<float>(rng.normal()));
  }
  Grid2D<CFloat> out(w, h);
  for (Index y = 1; y + 1 < h; ++y) {
    for (Index x = 1; x + 1 < w; ++x) {
      CFloat acc{};
      for (Index dy = -1; dy <= 1; ++dy) {
        for (Index dx = -1; dx <= 1; ++dx) acc += raw.at(x + dx, y + dy);
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

/// Integer-shifted copy: out(x, y) = src(x - sx, y - sy).
Grid2D<CFloat> shifted(const Grid2D<CFloat>& src, Index sx, Index sy) {
  Grid2D<CFloat> out(src.width(), src.height());
  for (Index y = 0; y < src.height(); ++y) {
    for (Index x = 0; x < src.width(); ++x) {
      const Index ox = x - sx;
      const Index oy = y - sy;
      if (ox >= 0 && ox < src.width() && oy >= 0 && oy < src.height()) {
        out.at(x, y) = src.at(ox, oy);
      }
    }
  }
  return out;
}

TEST(Registration, RecoversKnownShift) {
  const Grid2D<CFloat> reference = speckle_image(160, 160, 11);
  const Grid2D<CFloat> current = shifted(reference, 3, -2);
  RegistrationParams params;
  params.patch = 31;
  const Registrar registrar(params);
  AffineTransform t;
  const Grid2D<CFloat> registered =
      registrar.register_image(current, reference, &t);
  EXPECT_NEAR(t.tx, 3.0, 0.3);
  EXPECT_NEAR(t.ty, -2.0, 0.3);
  EXPECT_NEAR(t.axx, 1.0, 0.01);
  EXPECT_NEAR(t.ayy, 1.0, 0.01);
  // The registered image should match the reference far better than the
  // unregistered one over the interior.
  double err_before = 0.0, err_after = 0.0, energy = 0.0;
  for (Index y = 20; y < 140; ++y) {
    for (Index x = 20; x < 140; ++x) {
      err_before += std::norm(current.at(x, y) - reference.at(x, y));
      err_after += std::norm(registered.at(x, y) - reference.at(x, y));
      energy += std::norm(reference.at(x, y));
    }
  }
  EXPECT_LT(err_after, 0.1 * err_before);
}

TEST(Registration, IdenticalImagesGiveIdentityTransform) {
  const Grid2D<CFloat> img = speckle_image(128, 128, 13);
  const Registrar registrar({});
  AffineTransform t;
  (void)registrar.register_image(img, img, &t);
  EXPECT_NEAR(t.tx, 0.0, 0.1);
  EXPECT_NEAR(t.ty, 0.0, 0.1);
}

TEST(Registration, MatchesCarryConfidence) {
  const Grid2D<CFloat> img = speckle_image(128, 128, 17);
  const Registrar registrar({});
  const auto matches = registrar.match_control_points(img, img);
  EXPECT_EQ(matches.size(), 16u);
  for (const auto& m : matches) {
    EXPECT_GT(m.confidence, 0.5);  // self-correlation is strong
    EXPECT_NEAR(m.dx, 0.0, 0.01);
    EXPECT_NEAR(m.dy, 0.0, 0.01);
  }
}

TEST(Registration, ImageTooSmallThrows) {
  const Grid2D<CFloat> img = speckle_image(40, 40, 19);
  const Registrar registrar({});
  EXPECT_THROW((void)registrar.match_control_points(img, img),
               PreconditionError);
}

TEST(Ccd, IdenticalImagesAreFullyCoherent) {
  const Grid2D<CFloat> img = speckle_image(64, 64, 23);
  const auto corr = ccd(img, img, {.window = 9});
  for (Index y = 0; y < 64; ++y) {
    for (Index x = 0; x < 64; ++x) {
      ASSERT_NEAR(corr.at(x, y), 1.0f, 1e-4) << x << "," << y;
    }
  }
}

TEST(Ccd, IndependentImagesDecorrelate) {
  const Grid2D<CFloat> a = speckle_image(64, 64, 29);
  const Grid2D<CFloat> b = speckle_image(64, 64, 31);
  const auto corr = ccd(a, b, {.window = 11});
  double mean = 0.0;
  for (const float v : corr.flat()) mean += v;
  mean /= static_cast<double>(corr.size());
  EXPECT_LT(mean, 0.5);
}

TEST(Ccd, IncrementalEqualsDirect) {
  const Grid2D<CFloat> a = speckle_image(48, 40, 37);
  Grid2D<CFloat> b = speckle_image(48, 40, 41);
  // Mix so there is partial correlation structure.
  for (Index i = 0; i < b.size(); ++i) {
    b.flat()[static_cast<std::size_t>(i)] =
        0.7f * a.flat()[static_cast<std::size_t>(i)] +
        0.3f * b.flat()[static_cast<std::size_t>(i)];
  }
  for (Index window : {3, 7, 11}) {
    const auto fast = ccd(a, b, {.window = window});
    const auto direct = ccd_direct(a, b, {.window = window});
    for (Index y = 0; y < a.height(); ++y) {
      for (Index x = 0; x < a.width(); ++x) {
        ASSERT_NEAR(fast.at(x, y), direct.at(x, y), 1e-4)
            << "window " << window << " at " << x << "," << y;
      }
    }
  }
}

TEST(Ccd, LocalChangeDropsCorrelationLocally) {
  const Grid2D<CFloat> reference = speckle_image(96, 96, 43);
  Grid2D<CFloat> current = reference;
  // Replace a small patch with new speckle (a "change").
  Rng rng(47);
  for (Index y = 40; y < 56; ++y) {
    for (Index x = 40; x < 56; ++x) {
      current.at(x, y) = CFloat(static_cast<float>(rng.normal() * 3),
                                static_cast<float>(rng.normal() * 3));
    }
  }
  const auto corr = ccd(current, reference, {.window = 9});
  EXPECT_LT(corr.at(48, 48), 0.6f);
  EXPECT_GT(corr.at(10, 10), 0.95f);
  EXPECT_GT(corr.at(85, 85), 0.95f);
}

TEST(Ccd, EvenWindowRejected) {
  const Grid2D<CFloat> img = speckle_image(16, 16, 53);
  EXPECT_THROW((void)ccd(img, img, {.window = 8}), PreconditionError);
}

TEST(Cfar, DetectsInjectedChange) {
  // Correlation map: high everywhere except one low blob.
  Grid2D<float> corr(96, 96, 0.97f);
  for (Index y = 30; y < 36; ++y) {
    for (Index x = 50; x < 56; ++x) corr.at(x, y) = 0.2f;
  }
  CfarParams params;
  params.window = 21;
  params.guard = 7;
  const CfarResult result = cfar_detect(corr, params);
  ASSERT_FALSE(result.detections.empty());
  for (const auto& d : result.detections) {
    EXPECT_GE(d.x, 50);
    EXPECT_LT(d.x, 56);
    EXPECT_GE(d.y, 30);
    EXPECT_LT(d.y, 36);
    EXPECT_GT(d.statistic, params.scale);
  }
  EXPECT_EQ(result.candidates, 36);
}

TEST(Cfar, UniformDecorrelationYieldsNoDetections) {
  // Everything equally decorrelated: no pixel stands out above the local
  // background, so CFAR stays quiet (the "constant false alarm" property).
  Grid2D<float> corr(64, 64, 0.5f);
  const CfarResult result = cfar_detect(corr, {});
  EXPECT_TRUE(result.detections.empty());
  // Default border margin = window/2 = 12: only the interior is tested.
  EXPECT_EQ(result.candidates, (64 - 24) * (64 - 24));
}

TEST(Cfar, CandidateThresholdLimitsWork) {
  Grid2D<float> corr(32, 32, 0.95f);
  CfarParams params;
  params.candidate_correlation = 0.5;
  const CfarResult result = cfar_detect(corr, params);
  EXPECT_EQ(result.candidates, 0);
  EXPECT_TRUE(result.detections.empty());
}

TEST(Cfar, BadWindowsThrow) {
  Grid2D<float> corr(16, 16, 1.0f);
  CfarParams params;
  params.window = 10;  // even
  EXPECT_THROW(cfar_detect(corr, params), PreconditionError);
  params.window = 9;
  params.guard = 9;  // guard not smaller than window
  EXPECT_THROW(cfar_detect(corr, params), PreconditionError);
}

TEST(Pipeline, EndToEndDetectsAppearingReflector) {
  // Two frames: a reflector appears between them; the pipeline must flag
  // it via CFAR at (approximately) its pixel.
  ScenarioConfig cfg;
  cfg.image = 96;
  cfg.pulses = 96;
  cfg.perturbation_sigma = 0.02;
  SmallScenario s = make_scenario(cfg);

  // Scene: dense persistent clutter (the coherent background CCD needs)
  // plus one strong transient that appears for frame 2.
  Rng rng(61);
  sim::ReflectorScene scene = sim::make_clutter_field(s.grid, 3, 0.8, rng);
  const Index change_px = 30, change_py = 60;
  sim::Reflector transient;
  transient.position = s.grid.position(change_px, change_py);
  transient.amplitude = 6.0;
  transient.appear_s = 0.5;  // present only in the second batch
  scene.add(transient);

  // Repeat-pass collection: both batches sweep the *same* aspect angles
  // (coherent change detection requires revisiting the geometry — disjoint
  // apertures would decorrelate the clutter speckle by themselves). The
  // aperture is sized to resolve the 0.5 m pixels: delta_theta ~
  // lambda / (2 * rho) ~ 0.031 rad over the 0.475 s batch.
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.066;
  orbit.prf_hz = 200.0;
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.02;
  Rng traj_rng(62);
  auto poses1_v = geometry::circular_orbit(orbit, errors, cfg.pulses, traj_rng);
  Rng traj_rng2(64);
  auto poses2_v = geometry::circular_orbit(orbit, errors, cfg.pulses, traj_rng2);
  for (auto& pose : poses2_v) pose.time_s += 1.0;  // second pass, 1 s later
  const std::span<const geometry::PulsePose> poses1(poses1_v);
  const std::span<const geometry::PulsePose> poses2(poses2_v);

  sim::CollectorParams collector;
  Rng col_rng(63);
  auto batch1 = sim::collect(collector, s.grid, scene, poses1, col_rng);
  auto batch2 = sim::collect(collector, s.grid, scene, poses2, col_rng);

  PipelineConfig config;
  config.accumulation_factor = 0;  // frames are independent batches
  config.registration.patch = 15;
  config.registration.control_points_x = 3;
  config.registration.control_points_y = 3;
  config.ccd.window = 9;
  config.cfar.window = 15;
  config.cfar.guard = 5;
  config.cfar.candidate_correlation = 0.7;
  config.cfar.scale = 2.0;
  config.backprojection.threads = 1;

  SurveillancePipeline pipeline(s.grid, config);
  ASSERT_TRUE(pipeline.push_pulses(std::move(batch1)));
  ASSERT_TRUE(pipeline.push_pulses(std::move(batch2)));
  pipeline.close_input();

  const auto frame0 = pipeline.pop_result();
  ASSERT_TRUE(frame0.has_value());
  EXPECT_TRUE(frame0->is_reference);
  EXPECT_EQ(frame0->frame, 0);
  EXPECT_TRUE(frame0->correlation.empty());

  const auto frame1 = pipeline.pop_result();
  ASSERT_TRUE(frame1.has_value());
  EXPECT_FALSE(frame1->is_reference);
  ASSERT_FALSE(frame1->correlation.empty());
  ASSERT_FALSE(frame1->cfar.detections.empty());
  // At least one detection lands near the transient reflector.
  bool near_change = false;
  for (const auto& d : frame1->cfar.detections) {
    if (std::abs(d.x - change_px) <= 6 && std::abs(d.y - change_py) <= 6) {
      near_change = true;
    }
  }
  EXPECT_TRUE(near_change);

  EXPECT_FALSE(pipeline.pop_result().has_value());  // drained

  const SectionTimes times = pipeline.cumulative_stage_times();
  EXPECT_GT(times.get("backprojection"), 0.0);
  EXPECT_GT(times.get("registration"), 0.0);
  EXPECT_GT(times.get("ccd"), 0.0);
}

TEST(Pipeline, FramesEmergeInOrderUnderBackpressure) {
  // Queue depth 2 with 5 frames pushed as fast as possible: the producer
  // blocks on backpressure, the stages stay pipelined, and results emerge
  // strictly in frame order.
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 8;
  const SmallScenario s = make_scenario(cfg);
  PipelineConfig config;
  config.queue_depth = 2;
  config.registration.patch = 15;
  config.registration.control_points_x = 3;
  config.registration.control_points_y = 3;
  config.ccd.window = 5;
  config.backprojection.threads = 1;
  SurveillancePipeline pipeline(s.grid, config);
  for (int f = 0; f < 5; ++f) {
    sim::PhaseHistory copy = s.history;
    ASSERT_TRUE(pipeline.push_pulses(std::move(copy)));
  }
  pipeline.close_input();
  Index expected = 0;
  while (auto frame = pipeline.pop_result()) {
    EXPECT_EQ(frame->frame, expected++);
  }
  EXPECT_EQ(expected, 5);
}

TEST(Pipeline, PushAfterCloseFails) {
  geometry::ImageGrid grid(64, 64, 0.5);
  PipelineConfig config;
  SurveillancePipeline pipeline(grid, config);
  pipeline.close_input();
  sim::PhaseHistory batch(1, 16, 0.5, 64.0);
  EXPECT_FALSE(pipeline.push_pulses(std::move(batch)));
  EXPECT_FALSE(pipeline.pop_result().has_value());
}

TEST(Pipeline, DrainsCleanlyWithNoInput) {
  geometry::ImageGrid grid(96, 96, 0.5);
  PipelineConfig config;
  SurveillancePipeline pipeline(grid, config);
  pipeline.close_input();
  EXPECT_FALSE(pipeline.pop_result().has_value());
}

TEST(Pipeline, DestructionWithUncollectedResultsDoesNotDeadlock) {
  // Regression (shutdown deadlock): with queue_depth=1, several pushed
  // batches, and *nothing* collected, the destructor used to hang — it
  // closed result_queue_, post_processing_stage broke out of its loop
  // without closing image_queue_, and backprojection_stage stayed blocked
  // forever pushing into the full image_queue_ while the destructor joined
  // it. The post stage must close image_queue_ on its early-exit path.
  //
  // Run under a watchdog so the seed bug shows up as a test timeout, not a
  // hung test runner.
  auto scenario = [] {
    ScenarioConfig cfg;
    cfg.image = 48;
    cfg.pulses = 8;
    const SmallScenario s = make_scenario(cfg);
    PipelineConfig config;
    config.queue_depth = 1;
    config.registration.patch = 15;
    config.registration.control_points_x = 3;
    config.registration.control_points_y = 3;
    config.ccd.window = 5;
    config.backprojection.threads = 1;
    SurveillancePipeline pipeline(s.grid, config);
    // Six batches: three fill result_queue_ (depth+2), one is in flight in
    // each stage, one fills image_queue_ — leaving the backprojection
    // stage blocked mid-push. (More than seven would block the producer
    // itself, since nothing is ever collected.)
    for (int f = 0; f < 6; ++f) {
      sim::PhaseHistory copy = s.history;
      if (!pipeline.push_pulses(std::move(copy))) break;
    }
    // Collect nothing; destroy with frames still queued everywhere.
  };
  std::packaged_task<void()> task(scenario);
  std::future<void> done = task.get_future();
  std::thread runner(std::move(task));
  const auto status = done.wait_for(std::chrono::seconds(60));
  if (status != std::future_status::ready) {
    runner.detach();  // deadlocked beyond recovery; fail loudly
    FAIL() << "pipeline destruction deadlocked (image_queue_ never closed)";
  }
  runner.join();
}

TEST(Pipeline, RecordsStageSpansAndQueueGauges) {
  // The observability contract the BENCH trajectories rely on: after a
  // pipeline run, its registry holds per-stage spans, frame latency, and
  // named queue metrics.
  obs::Registry metrics;
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 8;
  const SmallScenario s = make_scenario(cfg);
  PipelineConfig config;
  config.queue_depth = 2;
  config.registration.patch = 15;
  config.registration.control_points_x = 3;
  config.registration.control_points_y = 3;
  config.ccd.window = 5;
  config.backprojection.threads = 1;
  config.metrics = &metrics;
  {
    SurveillancePipeline pipeline(s.grid, config);
    for (int f = 0; f < 3; ++f) {
      sim::PhaseHistory copy = s.history;
      ASSERT_TRUE(pipeline.push_pulses(std::move(copy)));
    }
    pipeline.close_input();
    int collected = 0;
    while (pipeline.pop_result()) ++collected;
    EXPECT_EQ(collected, 3);

    const SectionTimes times = pipeline.cumulative_stage_times();
    EXPECT_GT(times.get("backprojection"), 0.0);
    EXPECT_GT(times.get("registration"), 0.0);
  }
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.histograms.at("pipeline.stage.backprojection").count, 3u);
  EXPECT_EQ(snap.histograms.at("pipeline.stage.registration").count, 2u);
  EXPECT_EQ(snap.histograms.at("pipeline.frame.latency_s").count, 3u);
  EXPECT_EQ(snap.counters.at("pipeline.frames"), 3u);
  EXPECT_EQ(snap.counters.at("queue.pipeline.pulse.pushed"), 3u);
  EXPECT_EQ(snap.counters.at("queue.pipeline.image.popped"), 3u);
  EXPECT_EQ(snap.counters.at("queue.pipeline.result.popped"), 3u);
  EXPECT_GE(snap.gauges.at("queue.pipeline.image.depth").max, 1);
  // Every queue was closed exactly once during orderly shutdown.
  EXPECT_EQ(snap.counters.at("queue.pipeline.pulse.close"), 1u);
  EXPECT_EQ(snap.counters.at("queue.pipeline.image.close"), 1u);
  EXPECT_EQ(snap.counters.at("queue.pipeline.result.close"), 1u);
}

TEST(Pipeline, AccumulatorCombinesBatchesAcrossFrames) {
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 16;
  SmallScenario s = make_scenario(cfg);

  PipelineConfig config;
  config.accumulation_factor = 3;
  config.backprojection.threads = 1;
  SurveillancePipeline pipeline(s.grid, config);

  // Push the same batch twice; frame 1's image must have ~2x amplitude
  // (sum of two identical batch results).
  sim::PhaseHistory copy1 = s.history;
  sim::PhaseHistory copy2 = s.history;
  ASSERT_TRUE(pipeline.push_pulses(std::move(copy1)));
  ASSERT_TRUE(pipeline.push_pulses(std::move(copy2)));
  pipeline.close_input();
  const auto f0 = pipeline.pop_result();
  const auto f1 = pipeline.pop_result();
  ASSERT_TRUE(f0.has_value());
  ASSERT_TRUE(f1.has_value());
  // Frame 1 is registered against frame 0; the transform is near identity,
  // so the amplitude ratio survives registration.
  double e0 = 0.0, e1 = 0.0;
  for (Index i = 0; i < f0->image.size(); ++i) {
    e0 += std::norm(f0->image.flat()[static_cast<std::size_t>(i)]);
    e1 += std::norm(f1->image.flat()[static_cast<std::size_t>(i)]);
  }
  EXPECT_NEAR(e1 / e0, 4.0, 0.8);  // amplitude 2x -> power 4x
}


TEST(Pipeline, CumulativeStageTimesZeroWithNoFrames) {
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 16;
  SmallScenario s = make_scenario(cfg);

  obs::Registry reg;
  PipelineConfig config;
  config.metrics = &reg;  // private registry: no cross-test accumulation
  config.backprojection.threads = 1;
  SurveillancePipeline pipeline(s.grid, config);
  pipeline.close_input();
  EXPECT_FALSE(pipeline.pop_result().has_value());

  // No frames ever entered the pipeline, so every stage total is zero.
  const SectionTimes times = pipeline.cumulative_stage_times();
  EXPECT_EQ(times.total(), 0.0);
  for (const char* stage :
       {"backprojection", "accumulate", "registration", "ccd", "cfar"}) {
    EXPECT_EQ(times.get(stage), 0.0) << stage;
  }
}

TEST(Pipeline, PopResultNulloptImmediatelyAfterCloseOnEmptyStream) {
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 16;
  SmallScenario s = make_scenario(cfg);

  obs::Registry reg;
  PipelineConfig config;
  config.metrics = &reg;
  config.backprojection.threads = 1;
  SurveillancePipeline pipeline(s.grid, config);
  pipeline.close_input();

  // End-of-stream must propagate promptly through both stage threads; a
  // blocking pop here would be the shutdown deadlock the close protocol
  // exists to prevent.
  auto result = std::async(std::launch::async,
                           [&] { return pipeline.pop_result(); });
  ASSERT_EQ(result.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_FALSE(result.get().has_value());

  // Still nullopt on every later pop, and pushes are refused.
  EXPECT_FALSE(pipeline.pop_result().has_value());
  EXPECT_FALSE(pipeline.push_pulses(sim::PhaseHistory(1, 8, 1.0, 40.0)));
}

}  // namespace
}  // namespace sarbp::pipeline
