// Driver-level tests: the OpenMP Backprojector against single-threaded
// kernel runs, every kernel option through the driver, incremental
// (circular-buffer) accumulation vs monolithic backprojection, the Fig. 7
// breakdown instrumentation, and the empirical gather-locality counter.
#include <gtest/gtest.h>

#include <cmath>

#include "backprojection/accumulator.h"
#include "backprojection/backprojector.h"
#include "backprojection/breakdown.h"
#include "backprojection/locality.h"
#include "common/snr.h"
#include "test_helpers.h"

namespace sarbp::bp {
namespace {

using sarbp::testing::ScenarioConfig;
using sarbp::testing::SmallScenario;
using sarbp::testing::make_scenario;

class DriverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.image = 128;
    cfg.pulses = 32;
    scenario_ = new SmallScenario(make_scenario(cfg));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static SmallScenario* scenario_;
};

SmallScenario* DriverTest::scenario_ = nullptr;

TEST_F(DriverTest, DriverMatchesDirectKernelCall) {
  const auto& s = *scenario_;
  BackprojectOptions opts;
  opts.kernel = KernelKind::kAsrScalar;
  opts.threads = 1;
  const Backprojector driver(s.grid, opts);
  const Grid2D<CFloat> via_driver = driver.form_image(s.history);

  Region all{0, 0, s.grid.width(), s.grid.height()};
  SoaTile tile(all.width, all.height);
  backproject_asr_scalar(s.history, s.grid, all, 0, s.history.num_pulses(),
                         64, 64, geometry::LoopOrder::kXInner, tile);
  Grid2D<CFloat> direct(all.width, all.height);
  tile.accumulate_into(direct, all);

  // The driver may reorder loops per pulse; results agree to rounding.
  EXPECT_GT(snr_db(via_driver, direct), 60.0);
}

TEST_F(DriverTest, MultiThreadMatchesSingleThread) {
  const auto& s = *scenario_;
  for (KernelKind kind : {KernelKind::kAsrSimd, KernelKind::kBaseline}) {
    if (kind == KernelKind::kAsrSimd && !asr_simd_available()) continue;
    BackprojectOptions opts;
    opts.kernel = kind;
    opts.threads = 1;
    const Grid2D<CFloat> one = Backprojector(s.grid, opts).form_image(s.history);
    opts.threads = 4;  // forces a multi-part decomposition even on 1 core
    const Grid2D<CFloat> four = Backprojector(s.grid, opts).form_image(s.history);
    EXPECT_GT(snr_db(four, one), 80.0) << kernel_name(kind);
  }
}

TEST_F(DriverTest, PulseSplitPartitionsStillCorrect) {
  // Tiny image + many workers forces pulse-dimension splitting, which
  // exercises the overlapping-region reduction path.
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 32;
  const SmallScenario s = make_scenario(cfg);
  BackprojectOptions opts;
  opts.kernel = KernelKind::kAsrScalar;
  opts.min_region_edge = 64;
  opts.threads = 1;
  const Grid2D<CFloat> one = Backprojector(s.grid, opts).form_image(s.history);
  opts.threads = 8;
  const Grid2D<CFloat> eight = Backprojector(s.grid, opts).form_image(s.history);
  EXPECT_GT(snr_db(eight, one), 80.0);
}

TEST_F(DriverTest, DynamicReorderPreservesResult) {
  const auto& s = *scenario_;
  BackprojectOptions opts;
  opts.kernel = KernelKind::kAsrScalar;
  opts.threads = 1;
  opts.dynamic_reorder = true;
  const Grid2D<CFloat> reordered = Backprojector(s.grid, opts).form_image(s.history);
  opts.dynamic_reorder = false;
  const Grid2D<CFloat> fixed = Backprojector(s.grid, opts).form_image(s.history);
  EXPECT_GT(snr_db(reordered, fixed), 60.0);
}

TEST_F(DriverTest, PulseChunkingPreservesResult) {
  const auto& s = *scenario_;
  BackprojectOptions opts;
  opts.kernel = KernelKind::kAsrScalar;
  opts.threads = 1;
  opts.pulse_chunk = 4;
  const Grid2D<CFloat> chunked = Backprojector(s.grid, opts).form_image(s.history);
  opts.pulse_chunk = 1024;
  const Grid2D<CFloat> monolithic = Backprojector(s.grid, opts).form_image(s.history);
  EXPECT_GT(snr_db(chunked, monolithic), 100.0);
}

TEST_F(DriverTest, AddPulsesRegionCoversSubimage) {
  const auto& s = *scenario_;
  BackprojectOptions opts;
  opts.kernel = KernelKind::kAsrScalar;
  const Backprojector driver(s.grid, opts);
  Grid2D<CFloat> out(s.grid.width(), s.grid.height());
  const Region region{32, 16, 64, 48};
  driver.add_pulses_region(s.history, region, 0, s.history.num_pulses(), out);
  // Pixels outside the region stay zero.
  for (Index y = 0; y < out.height(); ++y) {
    for (Index x = 0; x < out.width(); ++x) {
      if (!region.contains(x, y)) {
        ASSERT_EQ(out.at(x, y), CFloat{}) << x << "," << y;
      }
    }
  }
  // Pixels inside are populated.
  double energy = 0.0;
  for (Index y = region.y0; y < region.y0 + region.height; ++y) {
    for (Index x = region.x0; x < region.x0 + region.width; ++x) {
      energy += std::norm(out.at(x, y));
    }
  }
  EXPECT_GT(energy, 0.0);
}

TEST_F(DriverTest, BackprojectionsCountsPixelPulsePairs) {
  const auto& s = *scenario_;
  const Backprojector driver(s.grid, {});
  EXPECT_DOUBLE_EQ(driver.backprojections(s.history),
                   static_cast<double>(s.grid.width() * s.grid.height() *
                                       s.history.num_pulses()));
}

TEST(Accumulator, SumsStoredBatches) {
  IncrementalAccumulator acc(4, 4, 2);
  Grid2D<CFloat> a(4, 4, CFloat{1.0f, 0.0f});
  Grid2D<CFloat> b(4, 4, CFloat{0.0f, 2.0f});
  acc.push(a);
  acc.push(b);
  const Grid2D<CFloat> sum = acc.current();
  EXPECT_EQ(sum.at(1, 1), CFloat(1.0f, 2.0f));
  EXPECT_EQ(acc.stored(), 2);
  EXPECT_EQ(acc.capacity(), 3);
}

TEST(Accumulator, EvictsOldestBeyondCapacity) {
  IncrementalAccumulator acc(2, 2, 1);  // capacity 2 batches
  acc.push(Grid2D<CFloat>(2, 2, CFloat{1.0f, 0.0f}));
  acc.push(Grid2D<CFloat>(2, 2, CFloat{10.0f, 0.0f}));
  acc.push(Grid2D<CFloat>(2, 2, CFloat{100.0f, 0.0f}));
  EXPECT_EQ(acc.stored(), 2);
  EXPECT_EQ(acc.current().at(0, 0), CFloat(110.0f, 0.0f));
}

TEST(Accumulator, FootprintTracksStoredBatches) {
  IncrementalAccumulator acc(8, 8, 3);
  EXPECT_EQ(acc.footprint_bytes(), 0u);
  acc.push(Grid2D<CFloat>(8, 8));
  EXPECT_EQ(acc.footprint_bytes(), 8u * 8u * sizeof(CFloat));
}

TEST(Accumulator, PaperScaleFootprintDoesNotOverflow) {
  // The paper's wide-area grids are 57K x 57K pixels; one CFloat batch at
  // that size is ~26 GB. With Index (int64) factors multiplied in 32 bits
  // the product wraps — the arithmetic must widen to size_t first.
  constexpr Index kPaperDim = 57344;  // 57K, a 7 km scene at 0.125 m pixels
  constexpr std::size_t kExpected = static_cast<std::size_t>(kPaperDim) *
                                    static_cast<std::size_t>(kPaperDim) *
                                    sizeof(CFloat);
  EXPECT_EQ(IncrementalAccumulator::batch_bytes(kPaperDim, kPaperDim),
            kExpected);
  EXPECT_GT(kExpected, std::size_t{1} << 34);  // really is beyond 32 bits
  // The paper's pipeline keeps Naccum = 36 such buffers resident (~948 GB
  // across the cluster); the per-batch figure must scale without wrapping.
  EXPECT_EQ(36u * IncrementalAccumulator::batch_bytes(kPaperDim, kPaperDim),
            36u * kExpected);
}

TEST(Accumulator, IncrementalEqualsMonolithicBackprojection) {
  // The paper's §2 linearity argument: backprojecting pulse batches
  // separately and summing equals backprojecting all pulses at once.
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 30;
  const SmallScenario s = make_scenario(cfg);
  BackprojectOptions opts;
  opts.kernel = KernelKind::kAsrScalar;
  opts.threads = 1;
  const Backprojector driver(s.grid, opts);

  // Monolithic: all 30 pulses at once.
  const Grid2D<CFloat> monolithic = driver.form_image(s.history);

  // Incremental: three batches of 10 through the circular buffer.
  IncrementalAccumulator acc(s.grid.width(), s.grid.height(), 2);
  for (Index batch = 0; batch < 3; ++batch) {
    Grid2D<CFloat> img(s.grid.width(), s.grid.height());
    Region all{0, 0, s.grid.width(), s.grid.height()};
    driver.add_pulses_region(s.history, all, batch * 10, (batch + 1) * 10, img);
    acc.push(std::move(img));
  }
  EXPECT_GT(snr_db(acc.current(), monolithic), 100.0);
}

TEST(Accumulator, ShapeMismatchThrows) {
  IncrementalAccumulator acc(4, 4, 1);
  EXPECT_THROW(acc.push(Grid2D<CFloat>(3, 4)), PreconditionError);
}

TEST(Breakdown, BaselineSectionsRoughlySumToTotal) {
  ScenarioConfig cfg;
  cfg.image = 96;
  cfg.pulses = 12;
  const SmallScenario s = make_scenario(cfg);
  const Region all{0, 0, s.grid.width(), s.grid.height()};
  const BaselineBreakdown b = measure_baseline_breakdown(
      s.history, s.grid, all, 0, s.history.num_pulses());
  EXPECT_GT(b.total_s, 0.0);
  const double sum = b.other_s + b.sqrt_s + b.interp_s + b.argred_s + b.sincos_s;
  // Differential timing is noisy on a busy machine; the parts must still
  // land in the right ballpark of the whole.
  EXPECT_GT(sum, 0.3 * b.total_s);
  EXPECT_LT(sum, 3.0 * b.total_s);
  EXPECT_GE(b.trig_s(), b.sincos_s);
}

TEST(Breakdown, AsrInnerPlusPrecomputeIsTotal) {
  ScenarioConfig cfg;
  cfg.image = 96;
  cfg.pulses = 12;
  const SmallScenario s = make_scenario(cfg);
  const Region all{0, 0, s.grid.width(), s.grid.height()};
  const AsrBreakdown b = measure_asr_breakdown(s.history, s.grid, all, 0,
                                               s.history.num_pulses(), 64, 64);
  EXPECT_GT(b.total_s, 0.0);
  EXPECT_GE(b.precompute_s, 0.0);
  EXPECT_NEAR(b.precompute_s + b.inner_s, b.total_s, 1e-9);
}

TEST(Breakdown, AsrFasterThanBaseline) {
  // The core Fig. 7 claim at kernel granularity: the strength-reduced
  // kernel beats the baseline clearly (paper: 2.2x on Xeon).
  ScenarioConfig cfg;
  cfg.image = 128;
  cfg.pulses = 16;
  const SmallScenario s = make_scenario(cfg);
  const Region all{0, 0, s.grid.width(), s.grid.height()};
  const BaselineBreakdown base = measure_baseline_breakdown(
      s.history, s.grid, all, 0, s.history.num_pulses());
  const AsrBreakdown asr = measure_asr_breakdown(s.history, s.grid, all, 0,
                                                 s.history.num_pulses(), 64, 64);
  EXPECT_LT(asr.total_s, base.total_s);
}

TEST(Locality, ReorderingImprovesMeasuredRunLength) {
  ScenarioConfig cfg;
  cfg.image = 128;
  cfg.pulses = 4;
  const SmallScenario s = make_scenario(cfg);
  const Region all{0, 0, s.grid.width(), s.grid.height()};
  const geometry::LoopOrder good = geometry::choose_loop_order(
      s.history.meta(0).position, s.grid.centre());
  const geometry::LoopOrder bad = good == geometry::LoopOrder::kXInner
                                      ? geometry::LoopOrder::kYInner
                                      : geometry::LoopOrder::kXInner;
  const LocalityStats with = measure_gather_locality(s.history, s.grid, all,
                                                     0, good);
  const LocalityStats without = measure_gather_locality(s.history, s.grid,
                                                        all, 0, bad);
  EXPECT_GT(with.mean_run_length, without.mean_run_length);
  EXPECT_LE(with.cache_lines_per_gather, without.cache_lines_per_gather);
  EXPECT_GE(with.mean_run_length, 1.0);
  EXPECT_GE(without.mean_run_length, 1.0);
}

TEST(Locality, CacheLinesPerGatherBounded) {
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 2;
  const SmallScenario s = make_scenario(cfg);
  const Region all{0, 0, s.grid.width(), s.grid.height()};
  const LocalityStats stats = measure_gather_locality(
      s.history, s.grid, all, 0, geometry::LoopOrder::kXInner, 16);
  EXPECT_GE(stats.cache_lines_per_gather, 1.0);
  EXPECT_LE(stats.cache_lines_per_gather, 16.0);
}

}  // namespace
}  // namespace sarbp::bp
