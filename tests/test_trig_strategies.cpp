// Trig-strategy tests (paper §6 related work): CORDIC fixed-point
// rotations and Chebyshev near-minimax polynomials, compared with each
// other and with the production paths.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "signal/chebyshev.h"
#include "signal/cordic.h"
#include "signal/trig.h"

namespace sarbp::signal {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Cordic, ConvergesToLibm) {
  for (double x = -kPi / 2; x <= kPi / 2; x += 0.037) {
    const SinCos sc = sincos_cordic(static_cast<float>(x), 28);
    EXPECT_NEAR(sc.sin, std::sin(x), 1e-6) << x;
    EXPECT_NEAR(sc.cos, std::cos(x), 1e-6) << x;
  }
}

TEST(Cordic, ErrorShrinksWithIterations) {
  double prev_worst = 1e9;
  for (int iters : {6, 10, 14, 18, 24}) {
    double worst = 0.0;
    for (double x = -kPi / 2; x <= kPi / 2; x += 0.05) {
      const SinCos sc = sincos_cordic(static_cast<float>(x), iters);
      worst = std::max(worst, std::abs(sc.sin - std::sin(x)));
      worst = std::max(worst, std::abs(sc.cos - std::cos(x)));
    }
    EXPECT_LT(worst, prev_worst) << iters;
    prev_worst = worst;
  }
}

TEST(Cordic, ErrorBoundDominatesMeasured) {
  for (int iters : {8, 12, 16, 20, 24}) {
    const double bound = cordic_error_bound(iters);
    double worst = 0.0;
    for (double x = -kPi / 2; x <= kPi / 2; x += 0.03) {
      const SinCos sc = sincos_cordic(static_cast<float>(x), iters);
      worst = std::max(worst, std::abs(sc.sin - std::sin(x)));
      worst = std::max(worst, std::abs(sc.cos - std::cos(x)));
    }
    EXPECT_GE(bound, worst) << iters;
  }
}

TEST(Cordic, FullRangeWrapperHandlesLargeArguments) {
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(-1e6, 1e6);
    const SinCos sc = sincos_cordic_full(x, 28);
    EXPECT_NEAR(sc.sin, std::sin(x), 3e-6) << x;
    EXPECT_NEAR(sc.cos, std::cos(x), 3e-6) << x;
  }
}

TEST(Cordic, RejectsBadIterationCounts) {
  EXPECT_THROW((void)sincos_cordic(0.0f, 0), PreconditionError);
  EXPECT_THROW((void)sincos_cordic(0.0f, 31), PreconditionError);
}

TEST(Chebyshev, SeriesReproducesSmoothFunction) {
  const ChebyshevSeries series([](double x) { return std::exp(x); }, -1.0,
                               2.0, 20);
  for (double x = -1.0; x <= 2.0; x += 0.1) {
    EXPECT_NEAR(series.evaluate(x), std::exp(x), 1e-10) << x;
  }
}

TEST(Chebyshev, TruncationEstimateTracksError) {
  // A low-order fit of a wiggly function: the first dropped coefficient
  // should be within an order of magnitude of the actual worst error.
  const auto f = [](double x) { return std::sin(5.0 * x); };
  const ChebyshevSeries series(f, -1.0, 1.0, 8);
  double worst = 0.0;
  for (double x = -1.0; x <= 1.0; x += 0.01) {
    worst = std::max(worst, std::abs(series.evaluate(x) - f(x)));
  }
  EXPECT_GT(worst, 0.1 * series.truncation_estimate());
  EXPECT_LT(worst, 30.0 * series.truncation_estimate());
}

TEST(Chebyshev, NearMinimaxBeatsTaylorAtSameDegree) {
  // The §6 claim: Chebyshev coefficients give near-optimal worst-case
  // error. Compare degree-3 sine approximations on [-pi/4, pi/4]: the
  // Taylor truncation x - x^3/6 vs the Chebyshev fit.
  double worst_taylor = 0.0;
  double worst_cheb = 0.0;
  for (double x = -kPi / 4; x <= kPi / 4; x += 0.001) {
    const double taylor = x - x * x * x / 6.0;
    worst_taylor = std::max(worst_taylor, std::abs(taylor - std::sin(x)));
    const SinCos sc = sincos_chebyshev(static_cast<float>(x), 3);
    worst_cheb = std::max(worst_cheb,
                          std::abs(static_cast<double>(sc.sin) - std::sin(x)));
  }
  EXPECT_LT(worst_cheb, 0.5 * worst_taylor);
}

TEST(Chebyshev, SinCosAccurateAcrossQuadrants) {
  for (double x = -kPi; x <= kPi; x += 0.013) {
    const SinCos sc = sincos_chebyshev(static_cast<float>(x), 9);
    EXPECT_NEAR(sc.sin, std::sin(x), 5e-7) << x;
    EXPECT_NEAR(sc.cos, std::cos(x), 5e-7) << x;
  }
}

TEST(Chebyshev, HigherDegreeIsMoreAccurate) {
  auto worst_at = [](int degree) {
    double worst = 0.0;
    for (double x = -kPi; x <= kPi; x += 0.01) {
      const SinCos sc = sincos_chebyshev(static_cast<float>(x), degree);
      worst = std::max(worst,
                       std::abs(static_cast<double>(sc.sin) - std::sin(x)));
    }
    return worst;
  };
  EXPECT_GT(worst_at(2), worst_at(4));
  EXPECT_GT(worst_at(4), worst_at(7));
}

TEST(Chebyshev, RejectsBadDegrees) {
  EXPECT_THROW((void)sincos_chebyshev(0.0f, 0), PreconditionError);
  EXPECT_THROW((void)sincos_chebyshev(0.0f, 17), PreconditionError);
}

}  // namespace
}  // namespace sarbp::signal
