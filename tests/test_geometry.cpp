// Geometry tests: Vec3 algebra, image grid coordinate maps, trajectory
// generation and error injection, wavefront-driven loop-order choice, and
// the analytic gather-locality expectation (the paper's 5 -> 17 numbers).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/grid.h"
#include "geometry/trajectory.h"
#include "geometry/vec3.h"
#include "geometry/wavefront.h"

namespace sarbp::geometry {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
}

TEST(Vec3, DotCrossNorm) {
  const Vec3 a{1, 0, 0};
  const Vec3 b{0, 1, 0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_EQ(a.cross(b), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
  EXPECT_NEAR((Vec3{3, 4, 0}).normalized().norm(), 1.0, 1e-12);
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
}

TEST(ImageGrid, CentrePixelIsSceneCentre) {
  // Odd dimensions: the exact middle pixel lands on the centre.
  ImageGrid grid(101, 101, 2.0, Vec3{10, 20, 0});
  const Vec3 p = grid.position(50, 50);
  EXPECT_NEAR(p.x, 10.0, 1e-12);
  EXPECT_NEAR(p.y, 20.0, 1e-12);
}

TEST(ImageGrid, SpacingBetweenAdjacentPixels) {
  ImageGrid grid(64, 64, 1.5);
  const Vec3 a = grid.position(10, 10);
  const Vec3 b = grid.position(11, 10);
  const Vec3 c = grid.position(10, 11);
  EXPECT_NEAR(b.x - a.x, 1.5, 1e-12);
  EXPECT_NEAR(c.y - a.y, 1.5, 1e-12);
}

TEST(ImageGrid, InverseMapRoundTrips) {
  ImageGrid grid(64, 32, 0.5, Vec3{-5, 3, 0});
  for (Index x : {0, 7, 63}) {
    for (Index y : {0, 15, 31}) {
      const Vec3 p = grid.position(x, y);
      EXPECT_NEAR(grid.pixel_x(p.x), static_cast<double>(x), 1e-9);
      EXPECT_NEAR(grid.pixel_y(p.y), static_cast<double>(y), 1e-9);
    }
  }
}

TEST(ImageGrid, FractionalPositionInterpolates) {
  ImageGrid grid(16, 16, 1.0);
  const Vec3 a = grid.position(3, 4);
  const Vec3 b = grid.position(4, 4);
  const Vec3 mid = grid.position_f(3.5, 4.0);
  EXPECT_NEAR(mid.x, 0.5 * (a.x + b.x), 1e-12);
}

TEST(ImageGrid, Extents) {
  ImageGrid grid(100, 50, 2.0);
  EXPECT_DOUBLE_EQ(grid.extent_x(), 200.0);
  EXPECT_DOUBLE_EQ(grid.extent_y(), 100.0);
}

TEST(Orbit, SlantRange) {
  OrbitParams orbit;
  orbit.radius_m = 3000.0;
  orbit.altitude_m = 4000.0;
  EXPECT_DOUBLE_EQ(orbit.slant_range(), 5000.0);
}

TEST(Trajectory, PoseCountAndTiming) {
  OrbitParams orbit;
  orbit.prf_hz = 100.0;
  TrajectoryErrorModel errors;
  Rng rng(1);
  const auto poses = circular_orbit(orbit, errors, 50, rng);
  ASSERT_EQ(poses.size(), 50u);
  EXPECT_DOUBLE_EQ(poses[0].time_s, 0.0);
  EXPECT_NEAR(poses[10].time_s, 0.1, 1e-12);
}

TEST(Trajectory, StaysNearIdealOrbit) {
  OrbitParams orbit;
  TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.1;
  Rng rng(2);
  const auto poses = circular_orbit(orbit, errors, 200, rng);
  for (const auto& pose : poses) {
    const double horizontal =
        std::hypot(pose.true_position.x, pose.true_position.y);
    EXPECT_NEAR(horizontal, orbit.radius_m, 1.0);
    EXPECT_NEAR(pose.true_position.z, orbit.altitude_m, 1.0);
  }
}

TEST(Trajectory, RecordedBiasAppliesToRecordedOnly) {
  OrbitParams orbit;
  TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.0;
  errors.recorded_bias = Vec3{1.5, -2.0, 0.25};
  Rng rng(3);
  const auto poses = circular_orbit(orbit, errors, 10, rng);
  for (const auto& pose : poses) {
    const Vec3 d = pose.recorded_position - pose.true_position;
    EXPECT_NEAR(d.x, 1.5, 1e-12);
    EXPECT_NEAR(d.y, -2.0, 1e-12);
    EXPECT_NEAR(d.z, 0.25, 1e-12);
  }
}

TEST(Trajectory, ZeroSigmaIsIdealOrbit) {
  OrbitParams orbit;
  TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.0;
  Rng rng(4);
  const auto poses = circular_orbit(orbit, errors, 5, rng);
  for (const auto& pose : poses) {
    const double horizontal =
        std::hypot(pose.true_position.x, pose.true_position.y);
    EXPECT_NEAR(horizontal, orbit.radius_m, 1e-9);
  }
}

TEST(Trajectory, ApertureAngleAdvances) {
  OrbitParams orbit;
  orbit.angular_rate_rad_s = 0.05;
  orbit.prf_hz = 10.0;
  TrajectoryErrorModel errors;
  Rng rng(5);
  const auto poses = circular_orbit(orbit, errors, 3, rng);
  EXPECT_NEAR(poses[1].aperture_angle_rad - poses[0].aperture_angle_rad,
              0.005, 1e-12);
}

TEST(Wavefront, LookAlongXPrefersYInner) {
  // Radar east of the scene: look direction along x; iterate y first
  // (paper Fig. 6).
  EXPECT_EQ(choose_loop_order({20000, 0, 5000}, {0, 0, 0}),
            LoopOrder::kYInner);
}

TEST(Wavefront, LookAlongYPrefersXInner) {
  EXPECT_EQ(choose_loop_order({0, 20000, 5000}, {0, 0, 0}),
            LoopOrder::kXInner);
}

TEST(Wavefront, PaperLocalityNumbers) {
  // Paper §4.3: with the imaging-region edge 1/10 of the scene-to-radar
  // distance, ~5 consecutive same-bin accesses without reordering and ~17
  // with it. Geometry: radar along x at distance R, image edge R/10,
  // bin spacing == pixel spacing (the ratio the numbers imply).
  const double standoff = 20000.0;
  const Index n = 512;
  const double spacing = standoff / 10.0 / static_cast<double>(n);
  ImageGrid grid(n, n, spacing);
  const Vec3 radar{standoff, 0.0, 0.0};
  const double bin_spacing = spacing;

  const double bad = expected_consecutive_same_bin(radar, grid, bin_spacing,
                                                   LoopOrder::kXInner);
  const double good = expected_consecutive_same_bin(radar, grid, bin_spacing,
                                                    LoopOrder::kYInner);
  // Walking x (the range direction) changes r by ~spacing per step: ~1.
  EXPECT_NEAR(bad, 1.0, 0.2);
  // Walking y (tangent) changes r by ~ (y/r)*spacing; averaged over the
  // image this is ~ edge/(4r) * spacing -> tens of consecutive accesses.
  EXPECT_GT(good, 10.0);
  EXPECT_GT(good / bad, 5.0);
}

TEST(Wavefront, LocalityImprovesWithReordering) {
  ImageGrid grid(256, 256, 1.0);
  const Vec3 radar{15000, 2000, 8000};
  const LoopOrder chosen = choose_loop_order(radar, grid.centre());
  const LoopOrder other = chosen == LoopOrder::kXInner ? LoopOrder::kYInner
                                                       : LoopOrder::kXInner;
  const double with = expected_consecutive_same_bin(radar, grid, 0.5, chosen);
  const double without = expected_consecutive_same_bin(radar, grid, 0.5, other);
  EXPECT_GE(with, without);
}

}  // namespace
}  // namespace sarbp::geometry
