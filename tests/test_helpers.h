// Shared fixtures for the sarbp test suite: a small, physically calibrated
// imaging scenario (9.6 GHz carrier, ~15 km standoff — the regime DESIGN.md
// §5 calibrates Fig. 8 against) that every kernel/integration test reuses.
#pragma once

#include "common/rng.h"
#include "geometry/grid.h"
#include "geometry/trajectory.h"
#include "sim/collector.h"
#include "sim/scene.h"

namespace sarbp::testing {

struct SmallScenario {
  geometry::ImageGrid grid;
  sim::ReflectorScene scene;
  std::vector<geometry::PulsePose> poses;
  sim::PhaseHistory history;
};

struct ScenarioConfig {
  Index image = 128;
  Index pulses = 64;
  double pixel_spacing = 0.5;  ///< matched to the 300 MHz chirp's c/2B
  sim::CollectionFidelity fidelity = sim::CollectionFidelity::kIdealResponse;
  double perturbation_sigma = 0.05;
  geometry::Vec3 recorded_bias{};
  int clusters = 3;
  double transient_fraction = 0.0;
  std::uint64_t seed = 42;
  // Orbit geometry knobs (defaults reproduce the calibrated scenario).
  double orbit_radius_m = 40000.0;
  double orbit_altitude_m = 8000.0;
  double start_angle_rad = 0.0;
};

inline SmallScenario make_scenario(const ScenarioConfig& cfg = {}) {
  Rng rng(cfg.seed);
  geometry::ImageGrid grid(cfg.image, cfg.image, cfg.pixel_spacing);

  // 40 km standoff default: the range-curvature regime where 64x64 ASR
  // blocks sit at the baseline's ~55 dB operating point (DESIGN.md §5).
  geometry::OrbitParams orbit;
  orbit.radius_m = cfg.orbit_radius_m;
  orbit.altitude_m = cfg.orbit_altitude_m;
  orbit.angular_rate_rad_s = 0.02;
  orbit.prf_hz = 500.0;
  orbit.start_angle_rad = cfg.start_angle_rad;
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = cfg.perturbation_sigma;
  errors.recorded_bias = cfg.recorded_bias;
  auto poses = geometry::circular_orbit(orbit, errors, cfg.pulses, rng);

  sim::ClusterSceneParams scene_params;
  scene_params.clusters = cfg.clusters;
  scene_params.reflectors_per_cluster = 4;
  scene_params.transient_fraction = cfg.transient_fraction;
  auto scene = sim::make_cluster_scene(grid, scene_params, rng);

  sim::CollectorParams collector;
  collector.fidelity = cfg.fidelity;
  auto history = sim::collect(collector, grid, scene, poses, rng);

  return SmallScenario{grid, std::move(scene), std::move(poses),
                       std::move(history)};
}

}  // namespace sarbp::testing
