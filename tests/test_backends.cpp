// Tile compute backends and the §5.3 block router: scalar-backend sweeps
// are byte-identical to the plan executor (null-backends path), the SIMD
// backend agrees at SNR level, the BackendSet's split moves from
// capability priors to observed rates, partition() boundaries are sound,
// and the service routed end-to-end through ServiceConfig::backends stays
// byte-identical to the legacy path for scalar-only sets.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "backprojection/kernel.h"
#include "common/snr.h"
#include "exec/tile_backend.h"
#include "service/plan_cache.h"
#include "service/service.h"
#include "test_helpers.h"

namespace sarbp::service {
namespace {

using sarbp::testing::ScenarioConfig;
using sarbp::testing::SmallScenario;
using sarbp::testing::make_scenario;

struct PlanFixture {
  SmallScenario scenario;
  std::shared_ptr<const sim::PhaseHistory> pulses;
  Region region;
  std::shared_ptr<const service::FormationPlan> plan;
};

PlanFixture make_plan_fixture(Index image = 48, Index pulses = 16,
                              Index block = 16) {
  ScenarioConfig cfg;
  cfg.image = image;
  cfg.pulses = pulses;
  SmallScenario s = make_scenario(cfg);
  const Region region{0, 0, image, image};
  auto plan = service::build_formation_plan(s.grid, region, block, block,
                                            s.history);
  auto history = std::make_shared<const sim::PhaseHistory>(s.history);
  return {std::move(s), std::move(history), region, std::move(plan)};
}

exec::PlanView view_of(const PlanFixture& f) {
  exec::PlanView view;
  view.blocks = f.plan->blocks.data();
  view.num_blocks = static_cast<Index>(f.plan->blocks.size());
  view.pulse_order = f.plan->pulse_order.data();
  view.num_pulses = f.plan->num_pulses();
  view.tables = f.plan->tables.data();
  view.region_x0 = f.region.x0;
  view.region_y0 = f.region.y0;
  return view;
}

bool tiles_equal(const bp::SoaTile& a, const bp::SoaTile& b) {
  const auto bytes = sizeof(float) * static_cast<std::size_t>(a.width());
  for (Index y = 0; y < a.height(); ++y) {
    if (std::memcmp(a.row_re(y), b.row_re(y), bytes) != 0) return false;
    if (std::memcmp(a.row_im(y), b.row_im(y), bytes) != 0) return false;
  }
  return true;
}

Grid2D<CFloat> grid_of(const bp::SoaTile& tile) {
  Grid2D<CFloat> out(tile.width(), tile.height());
  for (Index y = 0; y < tile.height(); ++y) {
    for (Index x = 0; x < tile.width(); ++x) {
      out.at(x, y) = CFloat{tile.row_re(y)[x], tile.row_im(y)[x]};
    }
  }
  return out;
}

// --- backend sweeps vs the plan executor ---------------------------------

TEST(TileBackend, ScalarSweepMatchesExecutePlanExactly) {
  const PlanFixture f = make_plan_fixture();
  bp::SoaTile expected(f.region.width, f.region.height);
  ASSERT_TRUE(service::execute_plan(*f.plan, *f.pulses, expected, nullptr));

  exec::BackendSpec spec;  // kHostScalar
  const auto backend = exec::make_backend(spec, 0.5, nullptr);
  const exec::PlanView view = view_of(f);
  bp::SoaTile routed(f.region.width, f.region.height);
  for (Index b = 0; b < view.num_blocks; ++b) {
    backend->sweep_block(view, *f.pulses, b, 0, view.num_pulses, routed);
  }
  EXPECT_TRUE(tiles_equal(expected, routed));
}

TEST(TileBackend, SimdSweepMatchesScalarAtSnrLevel) {
  if (!bp::asr_simd_available()) GTEST_SKIP() << "no vector ISA usable";
  const PlanFixture f = make_plan_fixture();
  bp::SoaTile scalar(f.region.width, f.region.height);
  ASSERT_TRUE(service::execute_plan(*f.plan, *f.pulses, scalar, nullptr));

  exec::BackendSpec spec;
  spec.kind = exec::BackendSpec::Kind::kHostSimd;
  const auto backend = exec::make_backend(spec, 0.5, nullptr);
  const exec::PlanView view = view_of(f);
  bp::SoaTile simd(f.region.width, f.region.height);
  for (Index b = 0; b < view.num_blocks; ++b) {
    backend->sweep_block(view, *f.pulses, b, 0, view.num_pulses, simd);
  }
  EXPECT_GT(snr_db(grid_of(simd), grid_of(scalar)), 70.0);
}

TEST(TileBackend, OffloadSimRescalesMeasuredTime) {
  exec::BackendSpec spec;
  spec.kind = exec::BackendSpec::Kind::kOffloadSim;  // KNC vs dual-Xeon host
  const auto backend = exec::make_backend(spec, 0.5, nullptr);
  // KNC effective rate (1920 * 0.28) ~ 1.94x the dual Xeon (660 * 0.42):
  // a second of measured host arithmetic simulates to ~0.52 s.
  const double simulated = backend->simulated_seconds(1.0);
  EXPECT_NEAR(simulated, (660.0 * 0.42) / (1920.0 * 0.28), 1e-9);
  // The capability prior carries the same ratio (host scalar = 1).
  EXPECT_NEAR(backend->rate_prior(), (1920.0 * 0.28) / (660.0 * 0.42), 1e-9);
}

// --- BackendSet split / partition ----------------------------------------

TEST(BackendSet, SplitUsesPriorsUntilEveryBackendObserved) {
  std::vector<exec::BackendSpec> specs(2);
  specs[0].kind = exec::BackendSpec::Kind::kHostScalar;
  specs[1].kind = exec::BackendSpec::Kind::kOffloadSim;
  specs[1].name = "knc";
  obs::Registry reg;
  exec::BackendSet set(specs, 0.5, &reg);

  // No observations yet: split proportional to capability priors.
  const double p0 = set.backend(0).rate_prior();
  const double p1 = set.backend(1).rate_prior();
  auto split = set.split();
  ASSERT_EQ(split.size(), 2u);
  EXPECT_NEAR(split[0], p0 / (p0 + p1), 1e-12);
  EXPECT_NEAR(split[1], p1 / (p0 + p1), 1e-12);

  // One backend observed, the other not: still priors (observing only the
  // fast backend must not starve the unobserved one).
  set.backend(0).record(/*backprojections=*/1e6, /*measured_seconds=*/1.0);
  split = set.split();
  EXPECT_NEAR(split[0], p0 / (p0 + p1), 1e-12);

  // Both observed: split follows the observed rates. Make the "slow"
  // backend 3x faster than the other in simulated terms.
  set.backend(1).record(3e6, set.backend(1).simulated_seconds(1.0));
  split = set.split();
  const double r0 = set.backend(0).observed_rate();
  const double r1 = set.backend(1).observed_rate();
  EXPECT_GT(r1, r0);
  EXPECT_NEAR(split[0], r0 / (r0 + r1), 1e-12);
  EXPECT_NEAR(split[1], r1 / (r0 + r1), 1e-12);
}

TEST(BackendSet, PartitionBoundariesAreMonotoneAndComplete) {
  std::vector<exec::BackendSpec> specs(3);
  specs[0].kind = exec::BackendSpec::Kind::kHostScalar;
  specs[0].name = "a";
  specs[1].kind = exec::BackendSpec::Kind::kHostScalar;
  specs[1].name = "b";
  specs[2].kind = exec::BackendSpec::Kind::kOffloadSim;
  specs[2].name = "c";
  exec::BackendSet set(specs, 0.5, nullptr);

  for (const Index n : {0, 1, 2, 3, 7, 64, 1001}) {
    const auto bounds = set.partition(n);
    ASSERT_EQ(bounds.size(), 4u);
    EXPECT_EQ(bounds.front(), 0);
    EXPECT_EQ(bounds.back(), n);
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LE(bounds[i - 1], bounds[i]) << "n=" << n << " i=" << i;
    }
  }
}

// --- service end-to-end through the router -------------------------------

ImageFormationRequest request_for(const PlanFixture& f) {
  ImageFormationRequest req;
  req.grid = f.scenario.grid;
  req.pulses = f.pulses;
  req.asr_block_w = req.asr_block_h = 16;
  return req;
}

Grid2D<CFloat> form_via_service(const PlanFixture& f,
                                std::vector<exec::BackendSpec> backends,
                                int workers = 2) {
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = workers;
  sc.metrics = &reg;
  sc.backends = std::move(backends);
  ImageFormationService service(sc);
  auto outcome = service.submit(request_for(f));
  EXPECT_TRUE(outcome.admitted());
  const JobResult& result = outcome.handle->wait();
  EXPECT_EQ(result.state, JobState::kDone) << result.error;
  return result.image;
}

bool images_equal(const Grid2D<CFloat>& a, const Grid2D<CFloat>& b) {
  for (Index y = 0; y < a.height(); ++y) {
    for (Index x = 0; x < a.width(); ++x) {
      if (a.at(x, y) != b.at(x, y)) return false;
    }
  }
  return true;
}

TEST(ServiceBackends, ScalarBackendSetIsByteIdenticalToLegacyPath) {
  const PlanFixture f = make_plan_fixture();
  const Grid2D<CFloat> legacy = form_via_service(f, {});

  exec::BackendSpec scalar;  // kHostScalar
  const Grid2D<CFloat> routed = form_via_service(f, {scalar});
  EXPECT_TRUE(images_equal(legacy, routed));

  // Several scalar backends partition the block range differently but
  // sweep disjoint pixel rectangles with the same per-block pulse order —
  // still byte-identical.
  exec::BackendSpec second;
  second.name = "scalar2";
  const Grid2D<CFloat> split2 = form_via_service(f, {scalar, second});
  EXPECT_TRUE(images_equal(legacy, split2));
}

TEST(ServiceBackends, SimdBackendMatchesLegacyAtSnrLevel) {
  if (!bp::asr_simd_available()) GTEST_SKIP() << "no vector ISA usable";
  const PlanFixture f = make_plan_fixture();
  const Grid2D<CFloat> legacy = form_via_service(f, {});

  exec::BackendSpec simd;
  simd.kind = exec::BackendSpec::Kind::kHostSimd;
  const Grid2D<CFloat> routed = form_via_service(f, {simd});
  EXPECT_GT(snr_db(routed, legacy), 70.0);
}

TEST(ServiceBackends, MixedSetAdaptsSplitAcrossJobs) {
  // scalar + SIMD + simulated coprocessor: run several jobs and check the
  // split gauges end up reflecting observed rates (every backend swept at
  // least once, rates positive, split summing to ~1000 permille).
  const PlanFixture f = make_plan_fixture();
  std::vector<exec::BackendSpec> specs(2);
  specs[0].kind = exec::BackendSpec::Kind::kHostScalar;
  specs[1].kind = exec::BackendSpec::Kind::kOffloadSim;
  specs[1].name = "knc";

  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 2;
  sc.metrics = &reg;
  sc.backends = specs;
  {
    ImageFormationService service(sc);
    for (int job = 0; job < 4; ++job) {
      auto outcome = service.submit(request_for(f));
      ASSERT_TRUE(outcome.admitted());
      ASSERT_EQ(outcome.handle->wait().state, JobState::kDone);
    }
  }
  if constexpr (obs::kEnabled) {
    EXPECT_GE(reg.counter("backend.scalar.sweeps").value(), 1);
    EXPECT_GE(reg.counter("backend.knc.sweeps").value(), 1);
    EXPECT_GT(reg.gauge("backend.scalar.rate_bp_s").value(), 0);
    EXPECT_GT(reg.gauge("backend.knc.rate_bp_s").value(), 0);
    const auto permille = reg.gauge("backend.scalar.split_permille").value() +
                          reg.gauge("backend.knc.split_permille").value();
    EXPECT_NEAR(static_cast<double>(permille), 1000.0, 2.0);
  }
}

}  // namespace
}  // namespace sarbp::service
