// Observability-layer tests: counter/gauge/histogram semantics under
// concurrency, span timing, registry identity, and the schema-versioned
// JSON export round-trip the BENCH trajectories rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/queue.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace sarbp::obs {
namespace {

TEST(Counter, AccumulatesAcrossThreads) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST(Gauge, TracksValueAndHighWaterMark) {
  Gauge g;
  g.set(3);
  g.set(7);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 7);
  g.add(10);
  EXPECT_EQ(g.value(), 12);
  EXPECT_EQ(g.max(), 12);
  g.add(-5);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(g.max(), 12);
}

TEST(HistogramTest, SummaryStatisticsAreExact) {
  Histogram h;
  for (const double v : {0.001, 0.002, 0.004, 0.008}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 0.015, 1e-12);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.008);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(HistogramTest, SingleValuePercentilesCollapseToIt) {
  Histogram h;
  h.record(0.125);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 0.125) << "q=" << q;
  }
}

TEST(HistogramTest, PercentilesOrderedAndBounded) {
  Histogram h;
  // Latency-like spread over three decades.
  for (int i = 1; i <= 1000; ++i) h.record(1e-5 * i);
  const HistogramStats s = h.stats();
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
  // Geometric buckets give ~1-bit resolution: p50 of uniform[1e-5, 1e-2]
  // must land in the right octave.
  EXPECT_GT(s.p50, 1e-3);
  EXPECT_LT(s.p50, 1e-2);
}

TEST(HistogramTest, IgnoresNanClampsNegatives) {
  Histogram h;
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  h.record(-1.0);  // clamped to 0
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(HistogramTest, ConcurrentRecordsAllCounted) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i) {
        h.record(1e-6 * (t + 1) * (i + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kRecords);
  EXPECT_GT(h.sum(), 0.0);
}

TEST(RegistryTest, SameNameSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_NE(&reg.counter("x"), &reg.counter("y"));
}

TEST(RegistryTest, ResetDropsEverything) {
  Registry reg;
  reg.counter("c").add();
  reg.gauge("g").set(5);
  reg.histogram("h").record(1.0);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(RegistryTest, GlobalRegistryIsAProcessSingleton) {
  EXPECT_EQ(&registry(), &registry());
}

TEST(ScopedSpanTest, RecordsElapsedSeconds) {
  Registry reg;
  {
    ScopedSpan span(reg, "work");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Histogram& h = reg.histogram("work");
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 0.004);
  EXPECT_LT(h.max(), 5.0);
}

TEST(ScopedSpanTest, FinishEndsEarlyAndDestructorIsIdempotent) {
  Registry reg;
  {
    ScopedSpan span(reg, "early");
    span.finish();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(reg.histogram("early").count(), 1u);
}

/// The acceptance-criterion schema test: export -> parse -> identical
/// snapshot, and re-serializing the parsed snapshot reproduces the
/// document byte-for-byte.
TEST(JsonExport, SchemaRoundTrips) {
  Registry reg;
  reg.counter("pipeline.frames").add(42);
  reg.counter("queue.pipeline.image.pushed").add(7);
  reg.gauge("queue.pipeline.image.depth").set(2);
  reg.gauge("queue.pipeline.image.depth").set(1);
  Histogram& h = reg.histogram("pipeline.stage.backprojection");
  for (const double v : {0.125, 0.25, 0.5, 0.0625}) h.record(v);
  reg.histogram("pipeline.frame.latency_s").record(0.75);

  const MetricsSnapshot before = reg.snapshot();
  const std::string json = to_json(before);
  const MetricsSnapshot after = parse_snapshot_json(json);
  EXPECT_EQ(before, after);
  EXPECT_EQ(to_json(after), json);
}

TEST(JsonExport, EmptyRegistryStillCarriesSchema) {
  Registry reg;
  const std::string json = export_json(reg);
  EXPECT_NE(json.find("\"schema\": \"sarbp.metrics.v1\""), std::string::npos);
  const MetricsSnapshot snap = parse_snapshot_json(json);
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(JsonExport, EscapesAwkwardNames) {
  Registry reg;
  reg.counter("weird\"name\\with\tescapes").add(1);
  const MetricsSnapshot before = reg.snapshot();
  const MetricsSnapshot after = parse_snapshot_json(to_json(before));
  EXPECT_EQ(before, after);
}

TEST(JsonExport, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_snapshot_json(""), PreconditionError);
  EXPECT_THROW((void)parse_snapshot_json("{}"), PreconditionError);
  EXPECT_THROW((void)parse_snapshot_json("{\"schema\": \"other.v9\"}"),
               PreconditionError);
  EXPECT_THROW((void)parse_snapshot_json("{\"schema\": \"sarbp.metrics.v1\","
                                         " \"counters\": {\"x\": }}"),
               PreconditionError);
}

TEST(JsonExport, WriteJsonFileRoundTrips) {
  Registry reg;
  reg.counter("c").add(9);
  const std::string path = ::testing::TempDir() + "sarbp_metrics_test.json";
  write_json_file(reg, path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[512];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  const MetricsSnapshot snap = parse_snapshot_json(content);
  EXPECT_EQ(snap.counters.at("c"), 9u);
}

TEST(QueueInstrumentation, NamedQueueExportsDepthAndCounters) {
  // Unique name: the global registry persists across tests in this binary.
  BoundedQueue<int> q(2, "obs_test.instrumented");
  auto& reg = registry();
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  EXPECT_EQ(reg.gauge("queue.obs_test.instrumented.depth").value(), 2);
  EXPECT_FALSE(q.try_push(3));  // full; try_push does not count as blocked
  (void)q.pop();
  (void)q.pop();
  q.close();
  q.close();  // idempotent: counted once
  EXPECT_EQ(reg.counter("queue.obs_test.instrumented.pushed").value(), 2u);
  EXPECT_EQ(reg.counter("queue.obs_test.instrumented.popped").value(), 2u);
  EXPECT_EQ(reg.counter("queue.obs_test.instrumented.close").value(), 1u);
  EXPECT_EQ(reg.gauge("queue.obs_test.instrumented.depth").value(), 0);
  EXPECT_EQ(reg.gauge("queue.obs_test.instrumented.depth").max(), 2);
}

TEST(QueueInstrumentation, BlockedPushAndPopAreCounted) {
  BoundedQueue<int> q(1, "obs_test.blocking");
  auto& reg = registry();
  ASSERT_TRUE(q.push(1));
  std::thread producer([&q] { (void)q.push(2); });  // blocks: queue full
  // Wait for the producer to actually block.
  while (reg.counter("queue.obs_test.blocking.blocked_push").value() == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_EQ(q.pop(), 2);
  std::thread consumer([&q] { EXPECT_FALSE(q.pop().has_value()); });
  while (reg.counter("queue.obs_test.blocking.blocked_pop").value() == 0) {
    std::this_thread::yield();
  }
  q.close();
  consumer.join();
  EXPECT_GE(reg.counter("queue.obs_test.blocking.blocked_push").value(), 1u);
  EXPECT_GE(reg.counter("queue.obs_test.blocking.blocked_pop").value(), 1u);
}

}  // namespace
}  // namespace sarbp::obs
