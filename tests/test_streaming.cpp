// Streaming sliding-aperture tests: incremental-vs-full parity (bit-exact
// at re-anchors, > 70 dB drift bound between them, across scalar/SIMD and
// steal on/off), the O(delta) vs O(full) operation-count acceptance bound,
// re-anchor cadence, sub-aperture cache hit/eviction/collision behaviour,
// cancel and deadline expiry mid-update, the queued-cancel abandonment
// path, and the streaming trace round trip + replay.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/snr.h"
#include "service/trace.h"
#include "streaming/streaming.h"
#include "streaming/subaperture_cache.h"
#include "streaming/trace_replay.h"
#include "test_helpers.h"

namespace sarbp::streaming {
namespace {

using namespace std::chrono_literals;
using sarbp::testing::ScenarioConfig;
using sarbp::testing::SmallScenario;
using sarbp::testing::make_scenario;

constexpr auto kWait = 120s;

/// Copies pulses [p0, p1) of `h` into a standalone history.
sim::PhaseHistory slice(const sim::PhaseHistory& h, Index p0, Index p1) {
  sim::PhaseHistory out(p1 - p0, h.samples_per_pulse(), h.bin_spacing(),
                        h.wavenumber());
  for (Index p = p0; p < p1; ++p) {
    const auto src = h.pulse(p);
    std::copy(src.begin(), src.end(), out.pulse(p - p0).begin());
    out.meta(p - p0) = h.meta(p);
  }
  return out;
}

void expect_bit_identical(const Grid2D<CFloat>& a, const Grid2D<CFloat>& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  for (Index y = 0; y < a.height(); ++y) {
    const auto ra = a.row(y);
    const auto rb = b.row(y);
    for (Index x = 0; x < a.width(); ++x) {
      const auto ax = static_cast<std::size_t>(x);
      ASSERT_EQ(ra[ax].real(), rb[ax].real()) << "at (" << x << "," << y << ")";
      ASSERT_EQ(ra[ax].imag(), rb[ax].imag()) << "at (" << x << "," << y << ")";
    }
  }
}

// --- incremental vs from-scratch parity ----------------------------------

/// After every update: a re-anchored snapshot must equal reform_window()
/// bit for bit; an incremental one must track it within the drift bound.
void run_parity(bool simd, bool steal) {
  ScenarioConfig cfg;
  cfg.image = 48;
  cfg.pulses = 48;
  cfg.seed = 11;
  const SmallScenario s = make_scenario(cfg);

  obs::Registry reg;
  service::ServiceConfig sc;
  sc.workers = 2;
  sc.steal = steal;
  sc.metrics = &reg;
  service::ImageFormationService srv(sc);

  StreamConfig config;
  config.grid = s.grid;
  config.asr_block_w = config.asr_block_h = 16;
  config.chunk_pulses = 6;
  config.window_chunks = 4;
  config.reanchor_interval = 3;  // anchors land on updates 4 and 8
  config.use_simd = simd;
  StreamSession session = open_stream(srv, config);

  const Index chunks = cfg.pulses / config.chunk_pulses;
  bool saw_anchor = false;
  bool saw_incremental = false;
  for (Index c = 0; c < chunks; ++c) {
    ASSERT_TRUE(session.push(slice(s.history, c * config.chunk_pulses,
                                   (c + 1) * config.chunk_pulses)));
    ASSERT_TRUE(session.wait_for_update(static_cast<std::uint64_t>(c) + 1,
                                        kWait));
    ASSERT_TRUE(session.wait_idle(kWait));
    const auto snap = session.latest();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->seq, static_cast<std::uint64_t>(c) + 1);

    const sim::PhaseHistory window = session.window_history();
    EXPECT_EQ(window.num_pulses(), snap->window_pulses);
    const Grid2D<CFloat> reference = reform_window(config, window);
    if (snap->reanchored) {
      saw_anchor = true;
      expect_bit_identical(snap->image, reference);
    } else {
      saw_incremental = true;
      EXPECT_GT(snr_db(snap->image, reference), 70.0)
          << "drift bound violated at update " << snap->seq;
    }
  }
  EXPECT_TRUE(saw_anchor);
  EXPECT_TRUE(saw_incremental);
  EXPECT_EQ(session.stats().updates_completed,
            static_cast<std::uint64_t>(chunks));
  session.close();
}

TEST(StreamingParity, ScalarNoSteal) { run_parity(false, false); }
TEST(StreamingParity, ScalarSteal) { run_parity(false, true); }
TEST(StreamingParity, SimdNoSteal) { run_parity(true, false); }
TEST(StreamingParity, SimdSteal) { run_parity(true, true); }

// --- O(delta) vs O(full): the acceptance bound ---------------------------

TEST(StreamingOps, WindowedStreamBeatsFullReformsFiveFold) {
  ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 48;
  cfg.seed = 5;
  const SmallScenario s = make_scenario(cfg);

  obs::Registry reg;
  service::ServiceConfig sc;
  sc.workers = 2;
  sc.metrics = &reg;
  service::ImageFormationService srv(sc);

  StreamConfig config;
  config.grid = s.grid;
  config.asr_block_w = config.asr_block_h = 16;
  config.chunk_pulses = 2;  // delta << window
  config.window_chunks = 10;
  config.reanchor_interval = 12;
  StreamSession session = open_stream(srv, config);

  ASSERT_TRUE(session.push(s.history));
  const auto updates =
      static_cast<std::uint64_t>(cfg.pulses / config.chunk_pulses);
  ASSERT_TRUE(session.wait_for_update(updates, kWait));
  ASSERT_TRUE(session.wait_idle(kWait));

  const StreamStats stats = session.stats();
  EXPECT_EQ(stats.updates_completed, updates);
  EXPECT_EQ(stats.reanchors, 1u);  // update 13

  // What N from-scratch reforms of the same sliding windows would cost, in
  // the same (pixel, pulse) units the session counts.
  const auto pixels = static_cast<std::uint64_t>(cfg.image) *
                      static_cast<std::uint64_t>(cfg.image);
  std::uint64_t full_reform_ops = 0;
  for (std::uint64_t u = 1; u <= updates; ++u) {
    const std::uint64_t window_pulses =
        std::min<std::uint64_t>(u, static_cast<std::uint64_t>(
                                       config.window_chunks)) *
        static_cast<std::uint64_t>(config.chunk_pulses);
    full_reform_ops += pixels * window_pulses;
  }
  ASSERT_GT(stats.backprojections, 0u);
  EXPECT_GE(full_reform_ops, 5 * stats.backprojections)
      << "streaming spent " << stats.backprojections
      << " backprojections; N full reforms would spend " << full_reform_ops;
  // The obs counter is the same observable.
  EXPECT_EQ(reg.counter("streaming.backprojections").value(),
            stats.backprojections);
  EXPECT_EQ(reg.counter("streaming.reanchors").value(), stats.reanchors);
  session.close();
}

// --- re-anchor cadence ---------------------------------------------------

TEST(StreamingReanchor, CadenceFollowsConfiguredInterval) {
  ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 28;
  const SmallScenario s = make_scenario(cfg);

  service::ServiceConfig sc;
  sc.workers = 1;
  service::ImageFormationService srv(sc);

  StreamConfig config;
  config.grid = s.grid;
  config.asr_block_w = config.asr_block_h = 16;
  config.chunk_pulses = 4;
  config.window_chunks = 3;
  config.reanchor_interval = 2;  // updates 3 and 6 re-anchor
  StreamSession session = open_stream(srv, config);

  std::vector<bool> reanchored;
  for (Index c = 0; c < 7; ++c) {
    ASSERT_TRUE(session.push(slice(s.history, c * 4, (c + 1) * 4)));
    ASSERT_TRUE(session.wait_for_update(static_cast<std::uint64_t>(c) + 1,
                                        kWait));
    reanchored.push_back(session.latest()->reanchored);
  }
  const std::vector<bool> expected = {false, false, true, false,
                                      false, true,  false};
  EXPECT_EQ(reanchored, expected);
  EXPECT_EQ(session.stats().reanchors, 2u);
}

// --- sub-aperture cache --------------------------------------------------

TEST(SubApertureCache, SharedAcrossSessionsSkipsResweep) {
  ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 24;
  const SmallScenario s = make_scenario(cfg);

  obs::Registry reg;
  service::ServiceConfig sc;
  sc.workers = 2;
  sc.metrics = &reg;
  service::ImageFormationService srv(sc);

  SubApertureCacheConfig cache_config;
  cache_config.capacity = 16;
  cache_config.metrics = &reg;
  SubApertureCache cache(cache_config);

  StreamConfig config;
  config.grid = s.grid;
  config.asr_block_w = config.asr_block_h = 16;
  config.chunk_pulses = 4;
  config.window_chunks = 6;  // whole collection fits: no expiry
  config.reanchor_interval = 0;
  config.cache = &cache;

  StreamSession a = open_stream(srv, config);
  ASSERT_TRUE(a.push(s.history));
  ASSERT_TRUE(a.wait_for_update(6, kWait));
  ASSERT_TRUE(a.wait_idle(kWait));
  const StreamStats stats_a = a.stats();
  EXPECT_EQ(stats_a.cache_hits, 0u);
  ASSERT_GT(stats_a.backprojections, 0u);
  EXPECT_EQ(cache.size(), 6u);

  // Same scene, same geometry: every chunk partial comes from the cache,
  // and the image is the exact tile sum the first session committed.
  StreamSession b = open_stream(srv, config);
  ASSERT_TRUE(b.push(s.history));
  ASSERT_TRUE(b.wait_for_update(6, kWait));
  ASSERT_TRUE(b.wait_idle(kWait));
  const StreamStats stats_b = b.stats();
  EXPECT_EQ(stats_b.cache_hits, 6u);
  EXPECT_EQ(stats_b.backprojections, 0u);
  expect_bit_identical(b.latest()->image, a.latest()->image);

  EXPECT_EQ(reg.counter("streaming.cache.hits").value(), 6u);
  EXPECT_EQ(reg.counter("streaming.cache.inserts").value(), 6u);
}

TEST(SubApertureCache, EvictsLeastRecentlyUsed) {
  ScenarioConfig cfg;
  cfg.image = 24;
  cfg.pulses = 8;
  const SmallScenario s = make_scenario(cfg);
  const sim::PhaseHistory c1 = slice(s.history, 0, 4);
  const sim::PhaseHistory c2 = slice(s.history, 4, 8);
  const Region region{0, 0, cfg.image, cfg.image};

  obs::Registry reg;
  SubApertureCacheConfig config;
  config.capacity = 1;
  config.metrics = &reg;
  SubApertureCache cache(config);

  const auto k1 = cache.make_key(s.grid, region, 16, 16, c1);
  const auto k2 = cache.make_key(s.grid, region, 16, 16, c2);
  cache.insert(k1, c1, std::make_shared<bp::SoaTile>(cfg.image, cfg.image));
  EXPECT_NE(cache.find(k1, c1), nullptr);

  cache.insert(k2, c2, std::make_shared<bp::SoaTile>(cfg.image, cfg.image));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(k1, c1), nullptr);  // evicted
  EXPECT_NE(cache.find(k2, c2), nullptr);
  EXPECT_EQ(reg.counter("streaming.cache.evictions").value(), 1u);
}

TEST(SubApertureCache, SignatureCollisionServedAsMiss) {
  ScenarioConfig cfg;
  cfg.image = 24;
  cfg.pulses = 8;
  const SmallScenario s = make_scenario(cfg);
  const sim::PhaseHistory c1 = slice(s.history, 0, 4);
  const sim::PhaseHistory c2 = slice(s.history, 4, 8);
  const Region region{0, 0, cfg.image, cfg.image};

  obs::Registry reg;
  SubApertureCacheConfig config;
  config.metrics = &reg;
  // Force every chunk onto one key: c2's lookup collides with c1's entry.
  config.signature_fn = [](const sim::PhaseHistory&) -> std::uint64_t {
    return 42;
  };
  SubApertureCache cache(config);

  const auto k1 = cache.make_key(s.grid, region, 16, 16, c1);
  const auto k2 = cache.make_key(s.grid, region, 16, 16, c2);
  EXPECT_EQ(k1.pulse_signature, k2.pulse_signature);

  cache.insert(k1, c1, std::make_shared<bp::SoaTile>(cfg.image, cfg.image));
  EXPECT_EQ(cache.find(k2, c2), nullptr);  // fingerprint mismatch
  EXPECT_EQ(reg.counter("streaming.cache.collisions").value(), 1u);
  EXPECT_NE(cache.find(k1, c1), nullptr);  // the real owner still hits
}

// --- cancellation and deadlines mid-update -------------------------------

TEST(StreamingLifecycle, CancelMidUpdateMutatesNothing) {
  ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 16;
  const SmallScenario s = make_scenario(cfg);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool entered = false;
  bool released = false;
  service::ServiceConfig sc;
  sc.workers = 2;
  // Hold every worker at its first checkpoint until the test releases it,
  // so cancel() provably lands while the update is mid-flight.
  sc.inter_block_hook = [&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return released; });
  };
  service::ImageFormationService srv(sc);

  StreamConfig config;
  config.grid = s.grid;
  config.asr_block_w = config.asr_block_h = 16;
  config.chunk_pulses = 8;
  StreamSession session = open_stream(srv, config);

  ASSERT_TRUE(session.push(slice(s.history, 0, 8)));
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    ASSERT_TRUE(gate_cv.wait_for(lock, kWait, [&] { return entered; }));
  }
  session.cancel();
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    released = true;
    gate_cv.notify_all();
  }
  ASSERT_TRUE(session.wait_idle(kWait));

  StreamStats stats = session.stats();
  EXPECT_EQ(stats.updates_cancelled, 1u);
  EXPECT_EQ(stats.updates_completed, 0u);
  EXPECT_EQ(session.latest(), nullptr);
  EXPECT_EQ(session.window_history().num_pulses(), 0);

  // The session survives a cancelled update: the next chunk goes through.
  ASSERT_TRUE(session.push(slice(s.history, 8, 16)));
  ASSERT_TRUE(session.wait_for_update(1, kWait));
  EXPECT_EQ(session.stats().updates_completed, 1u);
}

TEST(StreamingLifecycle, DeadlineExpiryDropsUpdate) {
  ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 8;
  const SmallScenario s = make_scenario(cfg);

  std::atomic<bool> slept{false};
  service::ServiceConfig sc;
  sc.workers = 1;
  sc.inter_block_hook = [&] {
    if (!slept.exchange(true)) {
      // Push the first checkpoint past the update deadline.
      // lint: allow(sleep-poll) -- forcing a deterministic deadline miss
      std::this_thread::sleep_for(150ms);
    }
  };
  service::ImageFormationService srv(sc);

  StreamConfig config;
  config.grid = s.grid;
  config.asr_block_w = config.asr_block_h = 16;
  config.chunk_pulses = 8;
  config.update_deadline = 50ms;
  StreamSession session = open_stream(srv, config);

  ASSERT_TRUE(session.push(s.history));
  ASSERT_TRUE(session.wait_idle(kWait));
  const StreamStats stats = session.stats();
  EXPECT_EQ(stats.updates_expired, 1u)
      << "completed=" << stats.updates_completed
      << " failed=" << stats.updates_failed
      << " cancelled=" << stats.updates_cancelled
      << " rejected=" << stats.updates_rejected;
  EXPECT_EQ(stats.updates_completed, 0u);
  EXPECT_EQ(session.latest(), nullptr);
}

TEST(StreamingLifecycle, CancelWhileQueuedAbandonsCleanly) {
  ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 8;
  const SmallScenario s = make_scenario(cfg);

  service::ServiceConfig sc;
  sc.workers = 1;
  sc.start_paused = true;  // the update stays QUEUED until resume()
  service::ImageFormationService srv(sc);

  StreamConfig config;
  config.grid = s.grid;
  config.asr_block_w = config.asr_block_h = 16;
  config.chunk_pulses = 8;
  StreamSession session = open_stream(srv, config);

  ASSERT_TRUE(session.push(s.history));
  session.cancel();  // resolves the queued handle immediately
  srv.resume();
  // The dequeue-side abandonment must clear the in-flight slot even though
  // the update's factory never ran.
  ASSERT_TRUE(session.wait_idle(kWait));
  const StreamStats stats = session.stats();
  EXPECT_EQ(stats.updates_cancelled, 1u);
  EXPECT_EQ(stats.updates_completed, 0u);
}

TEST(StreamingLifecycle, CloseStopsIngestionButDrains) {
  ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 16;
  const SmallScenario s = make_scenario(cfg);

  service::ServiceConfig sc;
  sc.workers = 1;
  service::ImageFormationService srv(sc);

  StreamConfig config;
  config.grid = s.grid;
  config.asr_block_w = config.asr_block_h = 16;
  config.chunk_pulses = 8;
  StreamSession session = open_stream(srv, config);

  ASSERT_TRUE(session.push(slice(s.history, 0, 8)));
  session.close();
  EXPECT_FALSE(session.push(slice(s.history, 8, 16)));
  ASSERT_TRUE(session.wait_idle(kWait));
  EXPECT_EQ(session.stats().updates_completed, 1u);
}

TEST(StreamingLifecycle, InconsistentSamplingRejected) {
  ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 8;
  const SmallScenario s = make_scenario(cfg);

  service::ServiceConfig sc;
  sc.workers = 1;
  service::ImageFormationService srv(sc);

  StreamConfig config;
  config.grid = s.grid;
  config.asr_block_w = config.asr_block_h = 16;
  config.chunk_pulses = 8;
  StreamSession session = open_stream(srv, config);

  ASSERT_TRUE(session.push(s.history));
  const sim::PhaseHistory wrong(4, s.history.samples_per_pulse() + 1,
                                s.history.bin_spacing(),
                                s.history.wavenumber());
  EXPECT_FALSE(session.push(wrong));
  EXPECT_FALSE(session.push(sim::PhaseHistory{}));
}

// --- streaming trace extension -------------------------------------------

TEST(StreamingTrace, RoundTripsThroughJson) {
  service::Trace trace =
      service::make_streaming_trace(2, 3, 32, 8, 16, /*chunk=*/8, /*window=*/2,
                           /*reanchor=*/2);
  service::TraceEntry plain;
  plain.image = 32;
  plain.pulses = 8;
  plain.block = 16;
  plain.tenant = "batch";
  trace.requests.push_back(plain);

  const service::Trace back = service::parse_trace_json(to_json(trace));
  ASSERT_EQ(back.requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const auto& a = trace.requests[i];
    const auto& b = back.requests[i];
    EXPECT_EQ(a.image, b.image);
    EXPECT_EQ(a.pulses, b.pulses);
    EXPECT_EQ(a.block, b.block);
    EXPECT_EQ(a.scene, b.scene);
    EXPECT_EQ(a.tenant, b.tenant);
    EXPECT_EQ(a.stream, b.stream);
    EXPECT_EQ(a.chunk, b.chunk);
    EXPECT_EQ(a.window, b.window);
    EXPECT_EQ(a.reanchor, b.reanchor);
  }
}

TEST(StreamingTrace, ReplayDrivesSessions) {
  const service::Trace trace =
      service::make_streaming_trace(2, 3, 32, 8, 16, /*chunk=*/8, /*window=*/2,
                           /*reanchor=*/2);

  service::ServiceConfig sc;
  sc.workers = 2;
  service::ImageFormationService srv(sc);
  SubApertureCache cache;
  TraceStreamReplayer replayer(srv, &cache);
  const service::ReplayStats stats =
      service::replay_trace(trace, srv, &replayer);

  EXPECT_EQ(stats.streams, 2u);
  EXPECT_EQ(stats.stream_pushes, 6u);
  EXPECT_EQ(stats.stream_updates, 6u);
  EXPECT_EQ(stats.stream_reanchors, 2u);  // update 3 of each stream
  EXPECT_EQ(stats.stream_dropped, 0u);
  EXPECT_EQ(stats.submitted, 0u);
}

TEST(StreamingTrace, ReplayWithoutHandlerThrows) {
  const service::Trace trace =
      service::make_streaming_trace(1, 1, 32, 8, 16, 8, 2, 0);
  service::ServiceConfig sc;
  sc.workers = 1;
  service::ImageFormationService srv(sc);
  EXPECT_THROW(service::replay_trace(trace, srv), PreconditionError);
}

}  // namespace
}  // namespace sarbp::streaming
