// Unit tests for the runtime lock-order cycle detector (DESIGN.md §14,
// src/common/deadlock.h). The detector only exists in
// -DSARBP_DEADLOCK_CHECK=ON builds (tools/run_sanitized_tests.sh builds
// the TSan configuration that way, so these run under TSan too); in a
// plain build every test here skips.
//
// Levels are seeded with fictional "test.*" names so a deliberately
// inverted pair never contaminates the real hierarchy's edge set, and
// each test resets the global graph when it is done.

#include <gtest/gtest.h>

#include "common/thread_annotations.h"

#if SARBP_DEADLOCK_CHECK

#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/deadlock.h"

namespace sarbp {
namespace {

// Captured cycle reports. The handler may fire from any thread, so the
// sink is locked (a plain std::mutex: test code, and the detector must
// not track its own observer).
std::mutex g_reports_mu;
std::vector<lockdep::CycleReport> g_reports;

void capture_report(const lockdep::CycleReport& report) {
  std::lock_guard<std::mutex> lock(g_reports_mu);
  g_reports.push_back(report);
}

std::vector<lockdep::CycleReport> take_reports() {
  std::lock_guard<std::mutex> lock(g_reports_mu);
  std::vector<lockdep::CycleReport> out = g_reports;
  g_reports.clear();
  return out;
}

// Installs the capture handler and resets the global graph for the
// test's duration, restoring both afterwards.
class DeadlockDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::reset_for_test();
    take_reports();
    previous_ = lockdep::set_report_handler(&capture_report);
  }
  void TearDown() override {
    lockdep::set_report_handler(previous_);
    lockdep::reset_for_test();
  }

 private:
  lockdep::ReportHandler previous_ = nullptr;
};

bool has_edge(const lockdep::CycleReport& report, const char* from,
              const char* to) {
  for (const lockdep::CycleEdge& edge : report.edges) {
    if (std::strcmp(edge.from, from) == 0 &&
        std::strcmp(edge.to, to) == 0) {
      return true;
    }
  }
  return false;
}

TEST_F(DeadlockDetectorTest, AbBaInversionOnTwoThreadsReportsCycle) {
  Mutex a{SARBP_LOCK_LEVEL("test.order.a")};
  Mutex b{SARBP_LOCK_LEVEL("test.order.b")};

  // Thread 1 establishes a -> b; thread 2 (strictly afterwards, so the
  // test itself can never deadlock) acquires b -> a. The detector flags
  // the ORDER contradiction even though no run ever wedges.
  std::thread forward([&] {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  });
  forward.join();
  std::thread backward([&] {
    MutexLock lock_b(b);
    MutexLock lock_a(a);
  });
  backward.join();

  const auto reports = take_reports();
  ASSERT_EQ(reports.size(), 1u);
  const lockdep::CycleReport& cycle = reports[0];
  ASSERT_EQ(cycle.edges.size(), 2u);
  EXPECT_TRUE(has_edge(cycle, "test.order.b", "test.order.a"));
  EXPECT_TRUE(has_edge(cycle, "test.order.a", "test.order.b"));
  // The report carries real acquisition sites: both ends of both edges
  // were acquired in this file, on positive line numbers.
  for (const lockdep::CycleEdge& edge : cycle.edges) {
    EXPECT_NE(std::string(edge.holder_site.file).find("test_deadlock"),
              std::string::npos);
    EXPECT_NE(std::string(edge.acquire_site.file).find("test_deadlock"),
              std::string::npos);
    EXPECT_GT(edge.holder_site.line, 0);
    EXPECT_GT(edge.acquire_site.line, 0);
  }
  EXPECT_EQ(lockdep::cycles_reported(), 1u);
  EXPECT_EQ(lockdep::edges_observed(), 2u);
}

TEST_F(DeadlockDetectorTest, NestedSameLevelTryLockIsNotACycle) {
  // Two instances of ONE level, nested via try_lock: the pattern the
  // hierarchy permits for same-rank nesting (a try never blocks, so it
  // cannot close a wait cycle). No edge, no report.
  Mutex first{SARBP_LOCK_LEVEL("test.same")};
  Mutex second{SARBP_LOCK_LEVEL("test.same")};

  first.lock();
  ASSERT_TRUE(second.try_lock());
  second.unlock();
  first.unlock();

  EXPECT_TRUE(take_reports().empty());
  EXPECT_EQ(lockdep::cycles_reported(), 0u);
  EXPECT_EQ(lockdep::edges_observed(), 0u);
}

TEST_F(DeadlockDetectorTest, NestedSameLevelBlockingLockIsASelfCycle) {
  // The counterpart rule: BLOCKING same-level nesting is reported as a
  // one-edge cycle — two threads running this path against swapped
  // instances deadlock, and no hierarchy rank can distinguish them.
  Mutex first{SARBP_LOCK_LEVEL("test.self")};
  Mutex second{SARBP_LOCK_LEVEL("test.self")};

  {
    MutexLock outer(first);
    MutexLock inner(second);
  }

  const auto reports = take_reports();
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_EQ(reports[0].edges.size(), 1u);
  EXPECT_TRUE(has_edge(reports[0], "test.self", "test.self"));
}

TEST_F(DeadlockDetectorTest, ConsistentOrderAcrossThreadsIsClean) {
  // Many threads, same acquisition order: edges accumulate, cycles never.
  Mutex outer{SARBP_LOCK_LEVEL("test.outer")};
  Mutex middle{SARBP_LOCK_LEVEL("test.middle")};
  Mutex inner{SARBP_LOCK_LEVEL("test.inner")};

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < 10; ++rep) {
        MutexLock lock_outer(outer);
        MutexLock lock_middle(middle);
        MutexLock lock_inner(inner);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_TRUE(take_reports().empty());
  EXPECT_EQ(lockdep::cycles_reported(), 0u);
  // outer->middle, outer->inner, middle->inner: each recorded once.
  EXPECT_EQ(lockdep::edges_observed(), 3u);
}

TEST_F(DeadlockDetectorTest, ThreeLockCycleAcrossThreadsIsFound) {
  // No single inverted pair; the contradiction only exists around the
  // full a -> b -> c -> a loop, which the DFS walks.
  Mutex a{SARBP_LOCK_LEVEL("test.ring.a")};
  Mutex b{SARBP_LOCK_LEVEL("test.ring.b")};
  Mutex c{SARBP_LOCK_LEVEL("test.ring.c")};

  auto nest = [](Mutex& hold, Mutex& then) {
    std::thread t([&] {
      MutexLock lock_hold(hold);
      MutexLock lock_then(then);
    });
    t.join();
  };
  nest(a, b);
  nest(b, c);
  nest(c, a);  // closes the ring

  const auto reports = take_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].edges.size(), 3u);
  EXPECT_TRUE(has_edge(reports[0], "test.ring.c", "test.ring.a"));
  EXPECT_TRUE(has_edge(reports[0], "test.ring.a", "test.ring.b"));
  EXPECT_TRUE(has_edge(reports[0], "test.ring.b", "test.ring.c"));
}

TEST_F(DeadlockDetectorTest, CondVarWaitDoesNotHoldItsMutexInTheGraph) {
  // A consumer blocked in CondVar::wait has RELEASED its mutex; a
  // producer signalling it under a lock of its own must not read as
  // consumer-mutex -> producer-mutex nesting. The wait pops the held
  // entry, so only the true producer->consumer edge exists.
  Mutex queue_mutex{SARBP_LOCK_LEVEL("test.queue")};
  Mutex side_mutex{SARBP_LOCK_LEVEL("test.side")};
  CondVar ready_cv;
  bool ready = false;

  std::thread consumer([&] {
    MutexLock lock(queue_mutex);
    while (!ready) ready_cv.wait(lock);
  });
  std::thread producer([&] {
    MutexLock side(side_mutex);
    {
      MutexLock lock(queue_mutex);
      ready = true;
    }
    ready_cv.notify_all();
  });
  producer.join();
  consumer.join();

  EXPECT_TRUE(take_reports().empty());
  EXPECT_EQ(lockdep::cycles_reported(), 0u);
  // The one edge is side -> queue, with its first-observation sites.
  const auto edges = lockdep::snapshot_edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_STREQ(edges[0].from, "test.side");
  EXPECT_STREQ(edges[0].to, "test.queue");
}

}  // namespace
}  // namespace sarbp

#else  // !SARBP_DEADLOCK_CHECK

TEST(DeadlockDetector, SkippedWithoutDeadlockCheckBuild) {
  GTEST_SKIP() << "rebuild with -DSARBP_DEADLOCK_CHECK=ON to exercise the "
                  "lock-order cycle detector";
}

#endif  // SARBP_DEADLOCK_CHECK
