// Partitioner tests: coverage/disjointness of the 3D cube decomposition,
// the image-first / pulses-last policy of §4.2, and balance — swept over
// worker counts and cube shapes.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "backprojection/partition.h"

namespace sarbp::bp {
namespace {

TEST(ChoosePartition, SingleWorkerIsWholeCube) {
  const CubeShape shape{100, 512, 512};
  const auto c = choose_partition(shape, 1, 64);
  EXPECT_EQ(c.parts_x, 1);
  EXPECT_EQ(c.parts_y, 1);
  EXPECT_EQ(c.parts_pulse, 1);
}

TEST(ChoosePartition, PrefersImageSplitsOverPulseSplits) {
  // A big image: all workers should land in the image dimensions.
  const CubeShape shape{1000, 2048, 2048};
  for (Index workers : {2, 4, 8, 16}) {
    const auto c = choose_partition(shape, workers, 64);
    EXPECT_EQ(c.parts_pulse, 1) << workers;
    EXPECT_EQ(c.total(), workers);
  }
}

TEST(ChoosePartition, SplitsPulsesWhenTilesWouldBeTooSmall) {
  // §4.2: "We resort to partitioning input pulses only when the partition
  // size of output image pixels becomes smaller than the ASR block size."
  const CubeShape shape{1000, 64, 64};
  const auto c = choose_partition(shape, 16, 64);
  EXPECT_GT(c.parts_pulse, 1);
  EXPECT_EQ(c.total(), 16);
}

TEST(ChoosePartition, PrefersSquareTiles) {
  const CubeShape shape{100, 1024, 1024};
  const auto c = choose_partition(shape, 16, 64);
  EXPECT_EQ(c.parts_x, 4);
  EXPECT_EQ(c.parts_y, 4);
}

TEST(ChoosePartition, HandlesMoreWorkersThanPulses) {
  const CubeShape shape{2, 32, 32};
  const auto c = choose_partition(shape, 8, 64);
  EXPECT_LE(c.parts_pulse, 2);
  EXPECT_GE(c.total(), 1);
}

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<Index, Index, Index, Index>> {
};

TEST_P(PartitionSweep, CoversCubeExactlyOnce) {
  const auto [pulses, w, h, workers] = GetParam();
  const CubeShape shape{pulses, w, h};
  const auto choice = choose_partition(shape, workers, 16);
  const auto parts = partition_cube(shape, choice);
  EXPECT_EQ(static_cast<Index>(parts.size()), choice.total());

  // Each (pulse, x, y) cell covered exactly once: verify by volume plus
  // pairwise disjointness.
  Index volume = 0;
  for (const auto& part : parts) {
    EXPECT_GE(part.pulse_begin, 0);
    EXPECT_LE(part.pulse_end, pulses);
    EXPECT_GE(part.region.x0, 0);
    EXPECT_LE(part.region.x0 + part.region.width, w);
    EXPECT_LE(part.region.y0 + part.region.height, h);
    volume += (part.pulse_end - part.pulse_begin) * part.region.pixels();
  }
  EXPECT_EQ(volume, pulses * w * h);

  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      const auto& a = parts[i];
      const auto& b = parts[j];
      const bool pulse_overlap =
          a.pulse_begin < b.pulse_end && b.pulse_begin < a.pulse_end;
      const bool x_overlap =
          a.region.x0 < b.region.x0 + b.region.width &&
          b.region.x0 < a.region.x0 + a.region.width;
      const bool y_overlap =
          a.region.y0 < b.region.y0 + b.region.height &&
          b.region.y0 < a.region.y0 + a.region.height;
      EXPECT_FALSE(pulse_overlap && x_overlap && y_overlap)
          << "parts " << i << " and " << j << " overlap";
    }
  }
}

TEST_P(PartitionSweep, WorkIsBalanced) {
  const auto [pulses, w, h, workers] = GetParam();
  const CubeShape shape{pulses, w, h};
  const auto choice = choose_partition(shape, workers, 16);
  const auto parts = partition_cube(shape, choice);
  Index lo = parts[0].region.pixels() * (parts[0].pulse_end - parts[0].pulse_begin);
  Index hi = lo;
  for (const auto& part : parts) {
    const Index work =
        part.region.pixels() * (part.pulse_end - part.pulse_begin);
    lo = std::min(lo, work);
    hi = std::max(hi, work);
  }
  // Split remainders cost at most one row/column/pulse slab per dimension.
  EXPECT_LT(static_cast<double>(hi - lo), 0.35 * static_cast<double>(hi) + 64);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Values(std::make_tuple(Index{100}, Index{256}, Index{256}, Index{4}),
                      std::make_tuple(Index{17}, Index{130}, Index{94}, Index{6}),
                      std::make_tuple(Index{1}, Index{512}, Index{512}, Index{8}),
                      std::make_tuple(Index{64}, Index{64}, Index{64}, Index{16}),
                      std::make_tuple(Index{1000}, Index{33}, Index{65}, Index{12}),
                      std::make_tuple(Index{5}, Index{1024}, Index{16}, Index{3})));

TEST(SplitBegin, EvenSplitBoundaries) {
  EXPECT_EQ(split_begin(100, 4, 0), 0);
  EXPECT_EQ(split_begin(100, 4, 2), 50);
  EXPECT_EQ(split_begin(100, 4, 4), 100);
  // Uneven: 10 into 3 -> 0,3,6,10.
  EXPECT_EQ(split_begin(10, 3, 1), 3);
  EXPECT_EQ(split_begin(10, 3, 2), 6);
  EXPECT_EQ(split_begin(10, 3, 3), 10);
}

TEST(Region, BasicPredicates) {
  const Region r{10, 20, 5, 4};
  EXPECT_EQ(r.pixels(), 20);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains(10, 20));
  EXPECT_TRUE(r.contains(14, 23));
  EXPECT_FALSE(r.contains(15, 23));
  EXPECT_FALSE(r.contains(9, 20));
  EXPECT_TRUE((Region{0, 0, 0, 5}).empty());
}

}  // namespace
}  // namespace sarbp::bp
