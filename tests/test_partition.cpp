// Partitioner tests: coverage/disjointness of the 3D cube decomposition,
// the image-first / pulses-last policy of §4.2, and balance — swept over
// worker counts and cube shapes.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "backprojection/partition.h"

namespace sarbp::bp {
namespace {

TEST(ChoosePartition, SingleWorkerIsWholeCube) {
  const CubeShape shape{100, 512, 512};
  const auto c = choose_partition(shape, 1, 64);
  EXPECT_EQ(c.parts_x, 1);
  EXPECT_EQ(c.parts_y, 1);
  EXPECT_EQ(c.parts_pulse, 1);
}

TEST(ChoosePartition, PrefersImageSplitsOverPulseSplits) {
  // A big image: all workers should land in the image dimensions.
  const CubeShape shape{1000, 2048, 2048};
  for (Index workers : {2, 4, 8, 16}) {
    const auto c = choose_partition(shape, workers, 64);
    EXPECT_EQ(c.parts_pulse, 1) << workers;
    EXPECT_EQ(c.total(), workers);
  }
}

TEST(ChoosePartition, SplitsPulsesWhenTilesWouldBeTooSmall) {
  // §4.2: "We resort to partitioning input pulses only when the partition
  // size of output image pixels becomes smaller than the ASR block size."
  const CubeShape shape{1000, 64, 64};
  const auto c = choose_partition(shape, 16, 64);
  EXPECT_GT(c.parts_pulse, 1);
  EXPECT_EQ(c.total(), 16);
}

TEST(ChoosePartition, PrefersSquareTiles) {
  const CubeShape shape{100, 1024, 1024};
  const auto c = choose_partition(shape, 16, 64);
  EXPECT_EQ(c.parts_x, 4);
  EXPECT_EQ(c.parts_y, 4);
}

TEST(ChoosePartition, HandlesMoreWorkersThanPulses) {
  const CubeShape shape{2, 32, 32};
  const auto c = choose_partition(shape, 8, 64);
  EXPECT_LE(c.parts_pulse, 2);
  EXPECT_GE(c.total(), 1);
}

// Asserts the parts tile the cube exactly: total volume matches and no two
// parts overlap in (pulse, x, y).
void expect_exact_tiling(const CubeShape& shape,
                         const std::vector<CubePart>& parts) {
  Index volume = 0;
  for (const auto& part : parts) {
    EXPECT_GE(part.pulse_begin, 0);
    EXPECT_LE(part.pulse_end, shape.pulses);
    EXPECT_GE(part.region.x0, 0);
    EXPECT_GE(part.region.y0, 0);
    EXPECT_LE(part.region.x0 + part.region.width, shape.width);
    EXPECT_LE(part.region.y0 + part.region.height, shape.height);
    volume += (part.pulse_end - part.pulse_begin) * part.region.pixels();
  }
  EXPECT_EQ(volume, shape.pulses * shape.width * shape.height);

  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      const auto& a = parts[i];
      const auto& b = parts[j];
      const bool pulse_overlap =
          a.pulse_begin < b.pulse_end && b.pulse_begin < a.pulse_end;
      const bool x_overlap = a.region.x0 < b.region.x0 + b.region.width &&
                             b.region.x0 < a.region.x0 + a.region.width;
      const bool y_overlap = a.region.y0 < b.region.y0 + b.region.height &&
                             b.region.y0 < a.region.y0 + a.region.height;
      EXPECT_FALSE(pulse_overlap && x_overlap && y_overlap)
          << "parts " << i << " and " << j << " overlap";
    }
  }
}

// ----------------------------------------------------------- edge cases ---

TEST(PartitionEdgeCases, RegionSmallerThanMinEdgeStillTilesExactly) {
  // A 24x24 image with min_edge 64: no image split can keep tiles at the
  // minimum edge, so the edge constraint is relaxed — the parts must still
  // tile the cube exactly with every tile non-empty.
  const CubeShape shape{40, 24, 24};
  for (Index workers : {1, 2, 4, 8}) {
    const auto choice = choose_partition(shape, workers, 64);
    const auto parts = partition_cube(shape, choice);
    for (const auto& part : parts) {
      EXPECT_FALSE(part.region.empty()) << workers;
    }
    expect_exact_tiling(shape, parts);
  }
}

TEST(PartitionEdgeCases, ZeroPulsesYieldsSingleEmptyPart) {
  const CubeShape shape{0, 128, 128};
  const auto choice = choose_partition(shape, 8, 32);
  EXPECT_EQ(choice.parts_x, 1);
  EXPECT_EQ(choice.parts_y, 1);
  EXPECT_EQ(choice.parts_pulse, 1);
  const auto parts = partition_cube(shape, choice);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].pulse_begin, parts[0].pulse_end);
  expect_exact_tiling(shape, parts);
}

TEST(PartitionEdgeCases, PulseCountNotDivisibleByChunk) {
  // Pulse counts that don't divide evenly across the pulse split: spans
  // must still cover [0, pulses) exactly, off by at most one pulse.
  for (Index pulses : {7, 13, 97, 101}) {
    const CubeShape shape{pulses, 32, 32};
    for (Index workers : {3, 4, 5}) {
      const auto choice = choose_partition(shape, workers, 64);
      const auto parts = partition_cube(shape, choice);
      expect_exact_tiling(shape, parts);
      Index lo = shape.pulses;
      Index hi = 0;
      for (const auto& part : parts) {
        lo = std::min(lo, part.pulse_end - part.pulse_begin);
        hi = std::max(hi, part.pulse_end - part.pulse_begin);
      }
      EXPECT_LE(hi - lo, 1) << pulses << " pulses, " << workers << " workers";
    }
  }
}

TEST(PartitionEdgeCases, DegenerateOneByNGrids) {
  // 1-pixel-tall and 1-pixel-wide images: the partitioner must not emit
  // zero-area tiles or split below the single row/column.
  for (const CubeShape shape : {CubeShape{16, 1, 256}, CubeShape{16, 256, 1},
                                CubeShape{3, 1, 1}}) {
    for (Index workers : {1, 2, 8}) {
      const auto choice = choose_partition(shape, workers, 16);
      const auto parts = partition_cube(shape, choice);
      for (const auto& part : parts) {
        EXPECT_GT(part.region.width, 0);
        EXPECT_GT(part.region.height, 0);
      }
      expect_exact_tiling(shape, parts);
    }
  }
}

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<Index, Index, Index, Index>> {
};

TEST_P(PartitionSweep, CoversCubeExactlyOnce) {
  const auto [pulses, w, h, workers] = GetParam();
  const CubeShape shape{pulses, w, h};
  const auto choice = choose_partition(shape, workers, 16);
  const auto parts = partition_cube(shape, choice);
  EXPECT_EQ(static_cast<Index>(parts.size()), choice.total());

  // Each (pulse, x, y) cell covered exactly once: verify by volume plus
  // pairwise disjointness.
  Index volume = 0;
  for (const auto& part : parts) {
    EXPECT_GE(part.pulse_begin, 0);
    EXPECT_LE(part.pulse_end, pulses);
    EXPECT_GE(part.region.x0, 0);
    EXPECT_LE(part.region.x0 + part.region.width, w);
    EXPECT_LE(part.region.y0 + part.region.height, h);
    volume += (part.pulse_end - part.pulse_begin) * part.region.pixels();
  }
  EXPECT_EQ(volume, pulses * w * h);

  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      const auto& a = parts[i];
      const auto& b = parts[j];
      const bool pulse_overlap =
          a.pulse_begin < b.pulse_end && b.pulse_begin < a.pulse_end;
      const bool x_overlap =
          a.region.x0 < b.region.x0 + b.region.width &&
          b.region.x0 < a.region.x0 + a.region.width;
      const bool y_overlap =
          a.region.y0 < b.region.y0 + b.region.height &&
          b.region.y0 < a.region.y0 + a.region.height;
      EXPECT_FALSE(pulse_overlap && x_overlap && y_overlap)
          << "parts " << i << " and " << j << " overlap";
    }
  }
}

TEST_P(PartitionSweep, WorkIsBalanced) {
  const auto [pulses, w, h, workers] = GetParam();
  const CubeShape shape{pulses, w, h};
  const auto choice = choose_partition(shape, workers, 16);
  const auto parts = partition_cube(shape, choice);
  Index lo = parts[0].region.pixels() * (parts[0].pulse_end - parts[0].pulse_begin);
  Index hi = lo;
  for (const auto& part : parts) {
    const Index work =
        part.region.pixels() * (part.pulse_end - part.pulse_begin);
    lo = std::min(lo, work);
    hi = std::max(hi, work);
  }
  // Split remainders cost at most one row/column/pulse slab per dimension.
  EXPECT_LT(static_cast<double>(hi - lo), 0.35 * static_cast<double>(hi) + 64);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Values(std::make_tuple(Index{100}, Index{256}, Index{256}, Index{4}),
                      std::make_tuple(Index{17}, Index{130}, Index{94}, Index{6}),
                      std::make_tuple(Index{1}, Index{512}, Index{512}, Index{8}),
                      std::make_tuple(Index{64}, Index{64}, Index{64}, Index{16}),
                      std::make_tuple(Index{1000}, Index{33}, Index{65}, Index{12}),
                      std::make_tuple(Index{5}, Index{1024}, Index{16}, Index{3})));

TEST(SplitBegin, EvenSplitBoundaries) {
  EXPECT_EQ(split_begin(100, 4, 0), 0);
  EXPECT_EQ(split_begin(100, 4, 2), 50);
  EXPECT_EQ(split_begin(100, 4, 4), 100);
  // Uneven: 10 into 3 -> 0,3,6,10.
  EXPECT_EQ(split_begin(10, 3, 1), 3);
  EXPECT_EQ(split_begin(10, 3, 2), 6);
  EXPECT_EQ(split_begin(10, 3, 3), 10);
}

TEST(Region, BasicPredicates) {
  const Region r{10, 20, 5, 4};
  EXPECT_EQ(r.pixels(), 20);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains(10, 20));
  EXPECT_TRUE(r.contains(14, 23));
  EXPECT_FALSE(r.contains(15, 23));
  EXPECT_FALSE(r.contains(9, 20));
  EXPECT_TRUE((Region{0, 0, 0, 5}).empty());
}

}  // namespace
}  // namespace sarbp::bp
