// PFA tests: exact focusing at scene centre, target placement, absence of
// mirror ghosts, the paper's §2 robustness claim (PFA with an idealized
// trajectory defocuses under perturbation while backprojection does not),
// and the complexity model.
#include <gtest/gtest.h>

#include <cmath>

#include "backprojection/kernel.h"
#include "common/rng.h"
#include "geometry/trajectory.h"
#include "pfa/pfa.h"
#include "quality/metrics.h"
#include "sim/collector.h"

namespace sarbp::pfa {
namespace {

struct Collection {
  geometry::ImageGrid grid;
  sim::PhaseHistory history;
};

/// One point target, optional trajectory perturbation.
Collection collect_point_target(Index px, Index py, double perturbation_m,
                                std::uint64_t seed = 1) {
  geometry::ImageGrid grid(96, 96, 0.5);
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.066;
  orbit.prf_hz = 400.0;
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = perturbation_m;
  Rng rng(seed);
  const auto poses = geometry::circular_orbit(orbit, errors, 192, rng);
  sim::ReflectorScene scene;
  sim::Reflector r;
  r.position = grid.position(px, py);
  scene.add(r);
  sim::CollectorParams params;
  auto history = sim::collect(params, grid, scene, poses, rng);
  return {grid, std::move(history)};
}

std::pair<Index, Index> global_peak(const Grid2D<CFloat>& img) {
  Index bx = 0, by = 0;
  double best = 0.0;
  for (Index y = 0; y < img.height(); ++y) {
    for (Index x = 0; x < img.width(); ++x) {
      const double m = std::abs(img.at(x, y));
      if (m > best) {
        best = m;
        bx = x;
        by = y;
      }
    }
  }
  return {bx, by};
}

TEST(Pfa, CentreTargetFocusesExactly) {
  // Target at the exact scene centre, evaluated on a fine (0.125 m) output
  // grid: the K-space mapping must place the peak at the centre sample.
  geometry::ImageGrid collection_grid(96, 96, 0.5);
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.066;
  orbit.prf_hz = 400.0;
  Rng rng(1);
  const auto poses = geometry::circular_orbit(orbit, {}, 192, rng);
  sim::ReflectorScene scene;
  sim::Reflector r;
  r.position = collection_grid.centre();
  scene.add(r);
  const auto history =
      sim::collect({}, collection_grid, scene, poses, rng);

  geometry::ImageGrid fine(65, 65, 0.125);
  const PolarFormatter pfa(fine, {});
  const auto img = pfa.form_image(history);
  const auto [bx, by] = global_peak(img);
  EXPECT_EQ(bx, 32);
  EXPECT_EQ(by, 32);
}

TEST(Pfa, OffsetTargetLandsNearItsPixel) {
  const auto c = collect_point_target(70, 30, 0.0);
  const PolarFormatter pfa(c.grid, {});
  const auto img = pfa.form_image(c.history);
  const auto [bx, by] = global_peak(img);
  // Wavefront curvature (the planarity error inherent to PFA) plus output
  // resampling shift the peak by up to ~1.5 px at this scene edge.
  EXPECT_NEAR(static_cast<double>(bx), 70.0, 1.6);
  EXPECT_NEAR(static_cast<double>(by), 30.0, 1.6);
}

TEST(Pfa, NoMirrorGhost) {
  const auto c = collect_point_target(70, 30, 0.0);
  const PolarFormatter pfa(c.grid, {});
  const auto img = pfa.form_image(c.history);
  const auto [bx, by] = global_peak(img);
  const double peak = std::abs(img.at(bx, by));
  // The point mirrored through the centre must be far below the peak.
  const double ghost = std::abs(img.at(95 - bx, 95 - by));
  EXPECT_LT(ghost, 0.1 * peak);
}

TEST(Pfa, SharpImageHasHighContrast) {
  const auto c = collect_point_target(48, 48, 0.0);
  const PolarFormatter pfa(c.grid, {});
  const auto img = pfa.form_image(c.history);
  EXPECT_GT(quality::peak_to_mean(img), 100.0);
}

TEST(Pfa, IdealTrajectoryAssumptionDefocusesUnderPerturbation) {
  // The §2 claim. One collection with strong trajectory perturbation
  // (lambda-scale position noise). PFA that assumes the idealized orbit
  // loses focus badly; backprojection, consuming the recorded positions
  // exactly, keeps the target sharp.
  const double sigma = 0.05;  // ~1.6 lambda at X-band: severe for PFA
  const auto c = collect_point_target(48, 48, sigma);

  PfaParams ideal;
  ideal.assume_ideal_trajectory = true;
  const auto pfa_img = PolarFormatter(c.grid, ideal).form_image(c.history);

  bp::SoaTile tile(c.grid.width(), c.grid.height());
  bp::backproject_asr_simd(c.history, c.grid,
                           Region{0, 0, c.grid.width(), c.grid.height()}, 0,
                           c.history.num_pulses(), 64, 64,
                           geometry::LoopOrder::kXInner, tile);
  Grid2D<CFloat> bp_img(c.grid.width(), c.grid.height());
  tile.accumulate_into(bp_img, Region{0, 0, c.grid.width(), c.grid.height()});

  const double pfa_contrast = quality::peak_to_mean(pfa_img);
  const double bp_contrast = quality::peak_to_mean(bp_img);
  EXPECT_GT(bp_contrast, 3.0 * pfa_contrast);

  // And the unperturbed PFA is far sharper than the perturbed one — the
  // degradation really is trajectory-induced.
  const auto clean = collect_point_target(48, 48, 0.0);
  const auto pfa_clean =
      PolarFormatter(clean.grid, ideal).form_image(clean.history);
  EXPECT_GT(quality::peak_to_mean(pfa_clean), 3.0 * pfa_contrast);
}

TEST(Pfa, RecordedTrajectoryMappingToleratesPerturbationBetter) {
  // Even PFA improves when its polar mapping uses the recorded positions —
  // but it still carries the planar-wavefront approximation.
  const auto c = collect_point_target(48, 48, 0.05, 7);
  PfaParams ideal;
  ideal.assume_ideal_trajectory = true;
  PfaParams recorded;
  recorded.assume_ideal_trajectory = false;
  const double with_ideal =
      quality::peak_to_mean(PolarFormatter(c.grid, ideal).form_image(c.history));
  const double with_recorded = quality::peak_to_mean(
      PolarFormatter(c.grid, recorded).form_image(c.history));
  EXPECT_GT(with_recorded, with_ideal);
}

TEST(Pfa, FlopsModelFarBelowBackprojection) {
  // §2: PFA's FFT-based complexity is orders of magnitude below
  // backprojection's 38 N Ix Iy at the high-end scale.
  const double pfa_cost = pfa_flops(2809, 81000, 57000);
  const double bp_cost = 38.0 * 2809.0 * 57000.0 * 57000.0;
  EXPECT_LT(pfa_cost, 0.01 * bp_cost);
}

TEST(Pfa, RejectsDegenerateInputs) {
  geometry::ImageGrid grid(32, 32, 0.5);
  const PolarFormatter pfa(grid, {});
  sim::PhaseHistory one_pulse(1, 64, 0.5, 64.0);
  EXPECT_THROW((void)pfa.form_image(one_pulse), PreconditionError);
  PfaParams bad;
  bad.kspace_fill = 0.0;
  EXPECT_THROW(PolarFormatter(grid, bad), PreconditionError);
}

}  // namespace
}  // namespace sarbp::pfa
