// Ultrasound beamforming tests: the ASR-generality demonstration of paper
// §7. Scatterer focusing, baseline-vs-reference and ASR-vs-reference
// accuracy, block-size behaviour, and the structural speed claim.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "beamform/beamformer.h"
#include "beamform/simulator.h"
#include "common/snr.h"
#include "common/timer.h"

namespace sarbp::beamform {
namespace {

struct BfSetup {
  Transducer transducer;
  ScanRegion region;
  ChannelData data;
};

BfSetup single_scatterer(Index px = 64, Index pz = 64) {
  Transducer t;
  t.elements = 48;
  ScanRegion region;
  Scatterer s;
  s.x_m = region.pixel_x(px);
  s.z_m = region.pixel_z(pz);
  auto data = simulate_channels(t, region, std::span<const Scatterer>(&s, 1));
  return {t, region, std::move(data)};
}

std::pair<Index, Index> peak_of(const Grid2D<CFloat>& img) {
  Index bx = 0, bz = 0;
  double best = 0.0;
  for (Index z = 0; z < img.height(); ++z) {
    for (Index x = 0; x < img.width(); ++x) {
      const double m = std::abs(img.at(x, z));
      if (m > best) {
        best = m;
        bx = x;
        bz = z;
      }
    }
  }
  return {bx, bz};
}

TEST(Beamform, ReferenceFocusesScattererAtItsPixel) {
  const BfSetup s = single_scatterer(64, 64);
  const auto ref = beamform_ref(s.transducer, s.region, s.data);
  Index bx = 0, bz = 0;
  double best = 0.0;
  for (Index z = 0; z < ref.height(); ++z) {
    for (Index x = 0; x < ref.width(); ++x) {
      const double m = std::abs(ref.at(x, z));
      if (m > best) {
        best = m;
        bx = x;
        bz = z;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(bx), 64.0, 1.0);
  EXPECT_NEAR(static_cast<double>(bz), 64.0, 1.0);
}

TEST(Beamform, BaselineMatchesReference) {
  const BfSetup s = single_scatterer();
  const auto ref = beamform_ref(s.transducer, s.region, s.data);
  const auto baseline = beamform_baseline(s.transducer, s.region, s.data);
  EXPECT_GT(snr_db(baseline, ref), 40.0);  // EP trig operating point
}

TEST(Beamform, AsrFocusesAtSamePixelAsBaseline) {
  const BfSetup s = single_scatterer(40, 80);
  const auto baseline = beamform_baseline(s.transducer, s.region, s.data);
  const auto asr = beamform_asr(s.transducer, s.region, s.data);
  const auto [bx1, bz1] = peak_of(baseline);
  const auto [bx2, bz2] = peak_of(asr);
  EXPECT_LE(std::abs(bx1 - bx2), 1);
  EXPECT_LE(std::abs(bz1 - bz2), 1);
}

TEST(Beamform, AsrAccuracyAdequateForEnvelopeImaging) {
  // Ultrasound wavelengths are ~100x shorter relative to the geometry than
  // SAR's, so per-block phase errors of ~0.05 rad (~25-35 dB SNR) are the
  // operating point; that is far below the speckle dynamic range that
  // B-mode envelope display uses.
  const BfSetup s = single_scatterer();
  const auto ref = beamform_ref(s.transducer, s.region, s.data);
  const auto asr = beamform_asr(s.transducer, s.region, s.data);
  EXPECT_GT(snr_db(asr, ref), 20.0);
}

TEST(Beamform, SmallerBlocksAreMoreAccurate) {
  const BfSetup s = single_scatterer();
  const auto ref = beamform_ref(s.transducer, s.region, s.data);
  const double snr_small =
      snr_db(beamform_asr(s.transducer, s.region, s.data, 8, 16), ref);
  const double snr_large =
      snr_db(beamform_asr(s.transducer, s.region, s.data, 32, 64), ref);
  EXPECT_GT(snr_small, snr_large);
}

TEST(Beamform, AsrFasterThanBaseline) {
  // The §7 claim at kernel level (paper: 5x on their beamformer/hardware).
  Transducer t;
  t.elements = 48;
  ScanRegion region;
  region.width = 192;
  region.depth = 192;
  Rng rng(5);
  const auto phantom = random_phantom(region, 200, rng);
  const auto data = simulate_channels(t, region, phantom);

  Timer t_base;
  const auto baseline = beamform_baseline(t, region, data);
  const double base_s = t_base.seconds();
  Timer t_asr;
  const auto asr = beamform_asr(t, region, data);
  const double asr_s = t_asr.seconds();
  EXPECT_LT(asr_s, base_s);
}

TEST(Beamform, SpecklePhantomProducesFullField) {
  Transducer t;
  t.elements = 32;
  ScanRegion region;
  region.width = 64;
  region.depth = 64;
  Rng rng(9);
  const auto phantom = random_phantom(region, 300, rng);
  const auto data = simulate_channels(t, region, phantom);
  const auto img = beamform_asr(t, region, data);
  Index nonzero = 0;
  for (const auto& v : img.flat()) {
    if (std::abs(v) > 0.0f) ++nonzero;
  }
  EXPECT_GT(nonzero, img.size() * 9 / 10);
}

TEST(Beamform, MismatchedChannelCountThrows) {
  Transducer t;
  t.elements = 16;
  ScanRegion region;
  ChannelData wrong(8, 128);
  EXPECT_THROW((void)beamform_baseline(t, region, wrong), PreconditionError);
}

TEST(Beamform, RandomPhantomIsDeterministic) {
  ScanRegion region;
  Rng a(3), b(3);
  const auto p1 = random_phantom(region, 10, a);
  const auto p2 = random_phantom(region, 10, b);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].x_m, p2[i].x_m);
    EXPECT_EQ(p1[i].amplitude, p2[i].amplitude);
  }
}

TEST(Transducer, ElementPositionsCentred) {
  Transducer t;
  t.elements = 4;
  t.pitch_m = 1.0;
  EXPECT_DOUBLE_EQ(t.element_x(0), -1.5);
  EXPECT_DOUBLE_EQ(t.element_x(3), 1.5);
  EXPECT_DOUBLE_EQ(t.element_x(1) + t.element_x(2), 0.0);
}

}  // namespace
}  // namespace sarbp::beamform
