// Quality-metric tests: IRW/PSLR on synthetic impulse responses with known
// shapes, entropy/contrast behaviour, and the resolution-theory
// integration check (measured IRW ~ c/2B on a real backprojected target).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "backprojection/kernel.h"
#include "quality/metrics.h"
#include "test_helpers.h"

namespace sarbp::quality {
namespace {

/// Separable |sinc| impulse response centred at (cx, cy) with given
/// -3 dB width (in pixels) per axis.
Grid2D<CFloat> sinc_response(Index n, double cx, double cy, double irw_x,
                             double irw_y) {
  // For |sinc(x / w)|, the -3 dB width is ~0.886 w.
  const double wx = irw_x / 0.886;
  const double wy = irw_y / 0.886;
  Grid2D<CFloat> img(n, n);
  auto sinc = [](double t) {
    if (std::abs(t) < 1e-12) return 1.0;
    const double pt = std::numbers::pi * t;
    return std::sin(pt) / pt;
  };
  for (Index y = 0; y < n; ++y) {
    for (Index x = 0; x < n; ++x) {
      const double v = sinc((static_cast<double>(x) - cx) / wx) *
                       sinc((static_cast<double>(y) - cy) / wy);
      img.at(x, y) = CFloat(static_cast<float>(v), 0.0f);
    }
  }
  return img;
}

TEST(Metrics, IrwOfKnownSinc) {
  const auto img = sinc_response(64, 32.0, 32.0, 2.0, 3.0);
  const auto m = measure_point_target(img, 32, 32);
  EXPECT_NEAR(m.irw_x_px, 2.0, 0.25);
  EXPECT_NEAR(m.irw_y_px, 3.0, 0.35);
  EXPECT_NEAR(m.peak_x, 32.0, 0.05);
  EXPECT_NEAR(m.peak_y, 32.0, 0.05);
  EXPECT_NEAR(m.peak_magnitude, 1.0, 1e-6);
}

TEST(Metrics, SubpixelPeakPosition) {
  const auto img = sinc_response(64, 30.3, 33.7, 2.0, 2.0);
  const auto m = measure_point_target(img, 30, 34);
  EXPECT_NEAR(m.peak_x, 30.3, 0.15);
  EXPECT_NEAR(m.peak_y, 33.7, 0.15);
}

TEST(Metrics, PslrOfUnweightedSincIsMinus13dB) {
  const auto img = sinc_response(128, 64.0, 64.0, 2.0, 2.0);
  const auto m = measure_point_target(img, 64, 64, 4, 24);
  // First sidelobe of sinc: -13.26 dB. The separable 2D response's worst
  // sidelobe lies on an axis, same level.
  EXPECT_NEAR(m.pslr_db, -13.26, 1.2);
}

TEST(Metrics, IslrNegativeForConcentratedResponse) {
  const auto img = sinc_response(128, 64.0, 64.0, 2.0, 2.0);
  const auto m = measure_point_target(img, 64, 64, 4, 24);
  EXPECT_LT(m.islr_db, -5.0);
}

TEST(Metrics, PeakSearchFindsNearbyMaximum) {
  auto img = sinc_response(64, 32.0, 32.0, 2.0, 2.0);
  // Ask at an offset location within the search radius.
  const auto m = measure_point_target(img, 34, 30, 4);
  EXPECT_NEAR(m.peak_x, 32.0, 0.1);
  EXPECT_NEAR(m.peak_y, 32.0, 0.1);
}

TEST(Metrics, EntropyOrdersFocusCorrectly) {
  // A single sharp point has much lower entropy than spread-out energy.
  const auto sharp = sinc_response(64, 32.0, 32.0, 1.5, 1.5);
  const auto blurred = sinc_response(64, 32.0, 32.0, 8.0, 8.0);
  EXPECT_LT(image_entropy(sharp), image_entropy(blurred));
}

TEST(Metrics, EntropyOfUniformImageIsLogN) {
  Grid2D<CFloat> uniform(32, 32, CFloat{1.0f, 0.0f});
  EXPECT_NEAR(image_entropy(uniform), std::log(32.0 * 32.0), 1e-6);
}

TEST(Metrics, PeakToMeanContrast) {
  Grid2D<CFloat> img(16, 16, CFloat{0.1f, 0.0f});
  img.at(8, 8) = CFloat{10.0f, 0.0f};
  const double contrast = peak_to_mean(img);
  EXPECT_GT(contrast, 50.0);
  EXPECT_LT(contrast, 110.0);
}

TEST(Metrics, OutOfImageLocationThrows) {
  Grid2D<CFloat> img(8, 8);
  EXPECT_THROW((void)measure_point_target(img, 9, 0), PreconditionError);
  EXPECT_THROW((void)image_entropy(Grid2D<CFloat>{}), PreconditionError);
}

TEST(Metrics, BackprojectedTargetMeetsResolutionTheory) {
  // End-to-end: a backprojected point target's range-axis IRW should match
  // the theoretical c/2B (0.5 m = 1 px here) within the Taylor-window
  // broadening factor (~1.2-1.5x).
  sarbp::testing::ScenarioConfig cfg;
  cfg.image = 96;
  cfg.pulses = 192;
  cfg.perturbation_sigma = 0.0;
  auto s = sarbp::testing::make_scenario(cfg);
  sim::Reflector r;
  r.position = s.grid.position(48, 48);
  s.scene = sim::ReflectorScene({r});
  sim::CollectorParams params;
  Rng rng(3);
  s.history = sim::collect(params, s.grid, s.scene, s.poses, rng);

  const Region all{0, 0, s.grid.width(), s.grid.height()};
  bp::SoaTile tile(all.width, all.height);
  bp::backproject_asr_simd(s.history, s.grid, all, 0, s.history.num_pulses(),
                           64, 64, geometry::LoopOrder::kXInner, tile);
  Grid2D<CFloat> img(all.width, all.height);
  tile.accumulate_into(img, all);

  const auto m = measure_point_target(img, 48, 48);
  // Range direction is ~x for this geometry (radar along +x at start).
  // Theoretical IRW is ~1.1 px (c/2B with Taylor broadening); measuring a
  // ~1 px mainlobe from integer-pixel samples carries ~0.3 px error.
  EXPECT_GT(m.irw_x_px, 0.7);
  EXPECT_LT(m.irw_x_px, 2.5);
  EXPECT_GT(m.peak_magnitude, 0.0);
}

}  // namespace
}  // namespace sarbp::quality
