// Fast factorized backprojection tests: equivalence with direct
// backprojection at small group sizes, accuracy degradation with group
// size (the alignment-error budget), the work model, and the group=1
// identity.
#include <gtest/gtest.h>

#include "backprojection/ffbp.h"
#include "common/snr.h"
#include "test_helpers.h"

namespace sarbp::bp {
namespace {

using sarbp::testing::ScenarioConfig;
using sarbp::testing::SmallScenario;
using sarbp::testing::make_scenario;

class FfbpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.image = 128;
    cfg.pulses = 64;
    cfg.fidelity = sim::CollectionFidelity::kIdealResponse;
    scenario_ = new SmallScenario(make_scenario(cfg));
    // The equivalence reference consumes the same band-limited-upsampled
    // data FFBP does, so the comparison isolates FFBP's own approximation
    // (group alignment + tile resampling) from interpolation-chain
    // differences on near-critically-sampled profiles.
    const sim::PhaseHistory upsampled = scenario_->history.upsampled(4);
    direct_ = new Grid2D<CFloat>(128, 128);
    SoaTile tile(128, 128);
    backproject_asr_simd(upsampled, scenario_->grid, Region{0, 0, 128, 128},
                         0, upsampled.num_pulses(), 64, 64,
                         geometry::LoopOrder::kXInner, tile);
    tile.accumulate_into(*direct_, Region{0, 0, 128, 128});
  }
  static void TearDownTestSuite() {
    delete scenario_;
    delete direct_;
    scenario_ = nullptr;
    direct_ = nullptr;
  }
  static SmallScenario* scenario_;
  static Grid2D<CFloat>* direct_;
};

SmallScenario* FfbpTest::scenario_ = nullptr;
Grid2D<CFloat>* FfbpTest::direct_ = nullptr;

TEST_F(FfbpTest, GroupOfOneMatchesDirectClosely) {
  FfbpOptions options;
  options.group = 1;
  options.tile = 64;
  const auto img = ffbp_form_image(scenario_->history, scenario_->grid,
                                   options);
  // group=1 performs no pulse combining, only the tile-local resampling of
  // the (upsampled) pulse data — one extra linear interpolation per sample.
  EXPECT_GT(snr_db(img, *direct_), 33.0);
}

TEST_F(FfbpTest, SmallGroupsReproduceDirectImage) {
  FfbpOptions options;
  options.group = 4;
  options.tile = 32;
  const auto img = ffbp_form_image(scenario_->history, scenario_->grid,
                                   options);
  EXPECT_GT(snr_db(img, *direct_), 24.0);
}

TEST_F(FfbpTest, AccuracyDegradesWithGroupSize) {
  FfbpOptions small;
  small.group = 2;
  small.tile = 32;
  FfbpOptions large;
  large.group = 16;
  large.tile = 32;
  const double snr_small = snr_db(
      ffbp_form_image(scenario_->history, scenario_->grid, small), *direct_);
  const double snr_large = snr_db(
      ffbp_form_image(scenario_->history, scenario_->grid, large), *direct_);
  EXPECT_GT(snr_small, snr_large);
}

TEST_F(FfbpTest, SmallerTilesAreMoreAccurate) {
  FfbpOptions small;
  small.group = 8;
  small.tile = 16;
  FfbpOptions large;
  large.group = 8;
  large.tile = 128;
  const double snr_small = snr_db(
      ffbp_form_image(scenario_->history, scenario_->grid, small), *direct_);
  const double snr_large = snr_db(
      ffbp_form_image(scenario_->history, scenario_->grid, large), *direct_);
  EXPECT_GT(snr_small, snr_large);
}

TEST(FfbpModel, AlignmentErrorScalesLinearly) {
  const double base = ffbp_alignment_error(4, 1e-4, 50.0);
  EXPECT_NEAR(ffbp_alignment_error(8, 1e-4, 50.0), 2.0 * base, 1e-12);
  EXPECT_NEAR(ffbp_alignment_error(4, 1e-4, 100.0), 2.0 * base, 1e-12);
  EXPECT_NEAR(base, 0.5 * 4 * 1e-4 * 50.0, 1e-12);
}

TEST(FfbpModel, WorkFractionDropsWithGroupSize) {
  FfbpOptions o2;
  o2.group = 2;
  FfbpOptions o8;
  o8.group = 8;
  const double f2 = ffbp_work_fraction(o2, 2048, 2048, 256);
  const double f8 = ffbp_work_fraction(o8, 2048, 2048, 256);
  EXPECT_LT(f8, f2);
  EXPECT_LT(f2, 1.0);
}

TEST(FfbpModel, RejectsBadOptions) {
  ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 4;
  const SmallScenario s = make_scenario(cfg);
  FfbpOptions bad;
  bad.group = 0;
  EXPECT_THROW((void)ffbp_form_image(s.history, s.grid, bad),
               PreconditionError);
}

}  // namespace
}  // namespace sarbp::bp
