// I/O tests: PGM header/payload structure, NPY round trips (complex and
// real), and phase-history persistence round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/rng.h"
#include "io/history_io.h"
#include "io/image_io.h"
#include "test_helpers.h"

namespace sarbp::io {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Grid2D<CFloat> random_image(Index w, Index h, std::uint64_t seed) {
  Rng rng(seed);
  Grid2D<CFloat> img(w, h);
  for (auto& v : img.flat()) {
    v = CFloat(static_cast<float>(rng.normal()),
               static_cast<float>(rng.normal()));
  }
  return img;
}

TEST(ImageIo, PgmHasCorrectHeaderAndSize) {
  const auto path = temp_path("test.pgm");
  const auto img = random_image(17, 9, 1);
  write_pgm(path, img);
  std::ifstream in(path, std::ios::binary);
  std::string magic, dims1, dims2, maxval;
  in >> magic >> dims1 >> dims2 >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(dims1, "17");
  EXPECT_EQ(dims2, "9");
  EXPECT_EQ(maxval, "255");
  in.get();  // single whitespace after maxval
  std::string payload((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(payload.size(), 17u * 9u);
  std::remove(path.c_str());
}

TEST(ImageIo, PgmLinearVsLogDiffer) {
  const auto img = random_image(16, 16, 2);
  const auto p1 = temp_path("lin.pgm");
  const auto p2 = temp_path("log.pgm");
  PgmOptions linear;
  linear.dynamic_range_db = 0.0;
  write_pgm(p1, img, linear);
  write_pgm(p2, img, {});
  std::ifstream a(p1, std::ios::binary), b(p2, std::ios::binary);
  std::string sa((std::istreambuf_iterator<char>(a)),
                 std::istreambuf_iterator<char>());
  std::string sb((std::istreambuf_iterator<char>(b)),
                 std::istreambuf_iterator<char>());
  EXPECT_NE(sa, sb);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(ImageIo, NpyComplexRoundTrip) {
  const auto path = temp_path("test_c8.npy");
  const auto img = random_image(23, 11, 3);
  write_npy(path, img);
  const auto loaded = read_npy(path);
  ASSERT_EQ(loaded.width(), 23);
  ASSERT_EQ(loaded.height(), 11);
  EXPECT_EQ(loaded, img);
  std::remove(path.c_str());
}

TEST(ImageIo, NpyHeaderIsValidNumpyFormat) {
  const auto path = temp_path("hdr.npy");
  write_npy(path, random_image(4, 4, 5));
  std::ifstream in(path, std::ios::binary);
  char magic[6];
  in.read(magic, 6);
  EXPECT_EQ(std::string(magic, 6), std::string("\x93NUMPY", 6));
  char version[2];
  in.read(version, 2);
  EXPECT_EQ(version[0], 1);
  unsigned char len[2];
  in.read(reinterpret_cast<char*>(len), 2);
  const std::size_t hlen = len[0] | (static_cast<std::size_t>(len[1]) << 8);
  // Total header (magic+version+len+dict) must be 64-byte aligned.
  EXPECT_EQ((10 + hlen) % 64, 0u);
  std::string header(hlen, '\0');
  in.read(header.data(), static_cast<std::streamsize>(hlen));
  EXPECT_NE(header.find("'descr': '<c8'"), std::string::npos);
  EXPECT_NE(header.find("(4, 4)"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ImageIo, NpyFloatWrite) {
  const auto path = temp_path("test_f4.npy");
  Grid2D<float> img(6, 3, 0.5f);
  img.at(2, 1) = -1.25f;
  write_npy(path, img);
  std::ifstream in(path, std::ios::binary);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("'<f4'"), std::string::npos);
  // Payload: 18 floats after the 64-byte-aligned header.
  EXPECT_EQ(all.size() % 64, 18u * 4u % 64);
  std::remove(path.c_str());
}

TEST(ImageIo, ReadNpyRejectsGarbage) {
  const auto path = temp_path("garbage.npy");
  std::ofstream(path) << "not an npy file at all";
  EXPECT_THROW((void)read_npy(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(HistoryIo, RoundTripPreservesEverything) {
  sarbp::testing::ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 6;
  const auto s = sarbp::testing::make_scenario(cfg);
  const auto path = temp_path("history.sarbp");
  save_phase_history(path, s.history);
  const auto loaded = load_phase_history(path);
  ASSERT_EQ(loaded.num_pulses(), s.history.num_pulses());
  ASSERT_EQ(loaded.samples_per_pulse(), s.history.samples_per_pulse());
  EXPECT_DOUBLE_EQ(loaded.bin_spacing(), s.history.bin_spacing());
  EXPECT_DOUBLE_EQ(loaded.wavenumber(), s.history.wavenumber());
  for (Index p = 0; p < loaded.num_pulses(); ++p) {
    EXPECT_EQ(loaded.meta(p).position, s.history.meta(p).position);
    EXPECT_DOUBLE_EQ(loaded.meta(p).start_range_m,
                     s.history.meta(p).start_range_m);
    const auto a = loaded.pulse(p);
    const auto b = s.history.pulse(p);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << p << ":" << i;
    }
  }
  EXPECT_TRUE(loaded.has_soa());
  std::remove(path.c_str());
}

TEST(HistoryIo, LoadRejectsBadMagic) {
  const auto path = temp_path("bad.sarbp");
  std::ofstream(path) << "XXXXXXXXjunkjunkjunk";
  EXPECT_THROW((void)load_phase_history(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(HistoryIo, MissingFileThrows) {
  EXPECT_THROW((void)load_phase_history("/nonexistent/path/file.sarbp"),
               PreconditionError);
}

}  // namespace
}  // namespace sarbp::io
