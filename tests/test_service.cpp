// Job-service tests: planned-executor parity with the streaming scalar
// kernel, end-to-end image accuracy through the service, strict-priority
// scheduling, admission control, cancellation (queued and running),
// deadline expiry, plan-cache behaviour via the obs counters, drain with
// jobs in flight, and the request-trace JSON round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "backprojection/kernel.h"
#include "exec/task_group.h"
#include "common/check.h"
#include "common/snr.h"
#include "geometry/wavefront.h"
#include "service/plan_cache.h"
#include "service/service.h"
#include "service/trace.h"
#include "test_helpers.h"

namespace sarbp::service {
namespace {

using namespace std::chrono_literals;
using sarbp::testing::ScenarioConfig;
using sarbp::testing::SmallScenario;
using sarbp::testing::make_scenario;

/// Tiny scenario shared by the lifecycle tests (the image content is
/// irrelevant there; only the accuracy tests use a larger one).
struct TinyFixture {
  SmallScenario scenario;
  std::shared_ptr<const sim::PhaseHistory> pulses;
};

TinyFixture make_tiny(std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 12;
  cfg.seed = seed;
  SmallScenario s = make_scenario(cfg);
  auto pulses = std::make_shared<const sim::PhaseHistory>(s.history);
  return {std::move(s), std::move(pulses)};
}

ImageFormationRequest tiny_request(
    const SmallScenario& s, std::shared_ptr<const sim::PhaseHistory> pulses,
    Priority pri = Priority::kNormal) {
  ImageFormationRequest req;
  req.grid = s.grid;
  req.pulses = std::move(pulses);
  req.asr_block_w = req.asr_block_h = 16;
  req.priority = pri;
  return req;
}

// --- plan build / execute ------------------------------------------------

TEST(FormationPlan, ExecuteMatchesStreamingScalarKernelExactly) {
  const auto [s, pulses] = make_tiny();
  const Region region{0, 0, s.grid.width(), s.grid.height()};

  const auto plan = build_formation_plan(s.grid, region, 16, 16, *pulses);
  bp::SoaTile planned(region.width, region.height);
  ASSERT_TRUE(execute_plan(*plan, *pulses, planned, nullptr));

  // Per-pulse scalar calls with the plan's own loop orders accumulate each
  // pixel's contributions in the same order the planned executor does, so
  // the two paths must agree bit for bit.
  bp::SoaTile streamed(region.width, region.height);
  for (Index p = 0; p < pulses->num_pulses(); ++p) {
    bp::backproject_asr_scalar(*pulses, s.grid, region, p, p + 1, 16, 16,
                               plan->pulse_order[static_cast<std::size_t>(p)],
                               streamed);
  }
  for (Index y = 0; y < region.height; ++y) {
    const float* pr = planned.row_re(y);
    const float* pi = planned.row_im(y);
    const float* sr = streamed.row_re(y);
    const float* si = streamed.row_im(y);
    for (Index x = 0; x < region.width; ++x) {
      ASSERT_EQ(pr[x], sr[x]) << "re mismatch at (" << x << "," << y << ")";
      ASSERT_EQ(pi[x], si[x]) << "im mismatch at (" << x << "," << y << ")";
    }
  }
}

TEST(FormationPlan, CheckpointFalseAbortsExecution) {
  const auto [s, pulses] = make_tiny();
  const Region region{0, 0, s.grid.width(), s.grid.height()};
  const auto plan = build_formation_plan(s.grid, region, 16, 16, *pulses);

  bp::SoaTile tile(region.width, region.height);
  int calls = 0;
  EXPECT_FALSE(execute_plan(*plan, *pulses, tile,
                            [&] { return ++calls <= 1; }));
  EXPECT_EQ(calls, 2);  // first block ran, second checkpoint aborted
}

TEST(FormationPlan, SignatureSeparatesDistinctGeometries) {
  const auto ha = make_tiny(7).pulses;
  const auto hb = make_tiny(8).pulses;
  EXPECT_NE(pulse_geometry_signature(*ha), pulse_geometry_signature(*hb));
  EXPECT_EQ(pulse_geometry_signature(*ha), pulse_geometry_signature(*ha));
}

// --- service lifecycle ---------------------------------------------------

TEST(Service, FormsImageMatchingReference) {
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 24;
  SmallScenario s = make_scenario(cfg);
  const auto pulses = std::make_shared<const sim::PhaseHistory>(s.history);

  Grid2D<CDouble> reference(cfg.image, cfg.image);
  const Region all{0, 0, cfg.image, cfg.image};
  bp::backproject_ref(*pulses, s.grid, all, 0, pulses->num_pulses(),
                      reference);

  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  ImageFormationRequest req;
  req.grid = s.grid;
  req.pulses = pulses;
  req.asr_block_w = req.asr_block_h = 32;
  auto outcome = service.submit(std::move(req));
  ASSERT_TRUE(outcome.admitted());
  const JobResult& result = outcome.handle->wait();
  ASSERT_EQ(result.state, JobState::kDone) << result.error;
  EXPECT_EQ(result.image.width(), cfg.image);
  EXPECT_EQ(result.image.height(), cfg.image);
  EXPECT_GT(snr_db(result.image, reference), 45.0);
}

TEST(Service, StrictPriorityWithFifoWithinClass) {
  const auto [s, pulses] = make_tiny();

  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.start_paused = true;  // stage the whole batch before any job runs
  sc.metrics = &reg;
  ImageFormationService service(sc);

  auto low1 = service.submit(tiny_request(s, pulses, Priority::kLow));
  auto low2 = service.submit(tiny_request(s, pulses, Priority::kLow));
  auto normal = service.submit(tiny_request(s, pulses, Priority::kNormal));
  auto high = service.submit(tiny_request(s, pulses, Priority::kHigh));
  ASSERT_TRUE(low1.admitted() && low2.admitted() && normal.admitted() &&
              high.admitted());

  service.resume();
  service.drain();

  ASSERT_EQ(high.handle->result().state, JobState::kDone);
  ASSERT_EQ(normal.handle->result().state, JobState::kDone);
  ASSERT_EQ(low1.handle->result().state, JobState::kDone);
  ASSERT_EQ(low2.handle->result().state, JobState::kDone);

  // Completion order: high before normal before both lows; FIFO among lows.
  EXPECT_LT(high.handle->result().completion_index,
            normal.handle->result().completion_index);
  EXPECT_LT(normal.handle->result().completion_index,
            low1.handle->result().completion_index);
  EXPECT_LT(low1.handle->result().completion_index,
            low2.handle->result().completion_index);
}

TEST(Service, AdmissionRejectsWhenPendingSetFull) {
  const auto [s, pulses] = make_tiny();

  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.max_pending = 2;
  sc.start_paused = true;  // nothing dequeues, so the pending set stays full
  sc.metrics = &reg;
  ImageFormationService service(sc);

  auto a = service.submit(tiny_request(s, pulses));
  auto b = service.submit(tiny_request(s, pulses));
  ASSERT_TRUE(a.admitted() && b.admitted());

  auto c = service.submit(tiny_request(s, pulses));
  EXPECT_FALSE(c.admitted());
  EXPECT_EQ(c.reject, RejectReason::kQueueFull);
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("service.rejected.queue_full").value(), 1u);
  }

  service.resume();
  service.drain();
  EXPECT_EQ(a.handle->result().state, JobState::kDone);
  EXPECT_EQ(b.handle->result().state, JobState::kDone);
}

TEST(Service, RejectReasonNamesCoverEveryEnumerator) {
  // Guard rail for the metric namespace: every reject reason must map to a
  // distinct, non-placeholder name (the names become counter suffixes).
  std::set<std::string> names;
  for (int r = 0; r < kNumRejectReasons; ++r) {
    const std::string name = reject_reason_name(static_cast<RejectReason>(r));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumRejectReasons));
  EXPECT_EQ(names.count("quota_exceeded"), 1u);
}

TEST(Service, TenantQuotaRejectsExcessQueuedJobs) {
  const auto [s, pulses] = make_tiny();

  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.start_paused = true;  // nothing dequeues, so queued counts are exact
  sc.tenant_policies["alpha"].quota = 1;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  ImageFormationRequest first = tiny_request(s, pulses);
  first.tenant = "alpha";
  auto a = service.submit(std::move(first));
  ASSERT_TRUE(a.admitted());

  ImageFormationRequest second = tiny_request(s, pulses);
  second.tenant = "alpha";
  auto b = service.submit(std::move(second));
  EXPECT_FALSE(b.admitted());
  EXPECT_EQ(b.reject, RejectReason::kQuotaExceeded);

  // The quota is per tenant: another tenant (and the default unlimited
  // policy) is unaffected.
  ImageFormationRequest other = tiny_request(s, pulses);
  other.tenant = "beta";
  auto c = service.submit(std::move(other));
  ASSERT_TRUE(c.admitted());

  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("service.rejected.quota_exceeded").value(), 1u);
    EXPECT_EQ(reg.counter("tenant.alpha.rejected.quota").value(), 1u);
  }

  service.resume();
  service.drain();
  EXPECT_EQ(a.handle->result().state, JobState::kDone);
  EXPECT_EQ(c.handle->result().state, JobState::kDone);
}

TEST(Service, WeightedFairSchedulingInterleavesByWeight) {
  const auto [s, pulses] = make_tiny();

  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;  // sequential claims make the interleave deterministic
  sc.start_paused = true;
  sc.tenant_policies["alpha"].weight = 2.0;
  sc.tenant_policies["beta"].weight = 1.0;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  // Equal-cost jobs: start-time fair queuing gives alpha finish tags at
  // 0.5c, 1.0c, 1.5c, 2.0c and beta at 1.0c, 2.0c; ties break toward the
  // lexicographically smaller tenant. Expected claim order: A A B A A B.
  std::vector<std::shared_ptr<JobHandle>> alpha, beta;
  for (int i = 0; i < 4; ++i) {
    ImageFormationRequest req = tiny_request(s, pulses);
    req.tenant = "alpha";
    auto outcome = service.submit(std::move(req));
    ASSERT_TRUE(outcome.admitted());
    alpha.push_back(std::move(outcome.handle));
  }
  for (int i = 0; i < 2; ++i) {
    ImageFormationRequest req = tiny_request(s, pulses);
    req.tenant = "beta";
    auto outcome = service.submit(std::move(req));
    ASSERT_TRUE(outcome.admitted());
    beta.push_back(std::move(outcome.handle));
  }

  service.resume();
  service.drain();

  std::vector<std::uint64_t> order;
  for (const auto& h : {alpha[0], alpha[1], beta[0], alpha[2], alpha[3],
                        beta[1]}) {
    ASSERT_EQ(h->result().state, JobState::kDone);
    order.push_back(h->result().completion_index);
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i])
        << "weighted-fair order broke between positions " << i - 1 << " and "
        << i;
  }
}

TEST(Service, InvalidRequestsRejectedWithReason) {
  const auto [s, pulses] = make_tiny();
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  ImageFormationRequest no_pulses = tiny_request(s, pulses);
  no_pulses.pulses = nullptr;
  EXPECT_EQ(service.submit(std::move(no_pulses)).reject,
            RejectReason::kInvalidRequest);

  ImageFormationRequest bad_region = tiny_request(s, pulses);
  bad_region.region = Region{-4, 0, 8, 8};
  EXPECT_EQ(service.submit(std::move(bad_region)).reject,
            RejectReason::kInvalidRequest);

  ImageFormationRequest oversize = tiny_request(s, pulses);
  oversize.region = Region{0, 0, s.grid.width() + 1, 4};
  EXPECT_EQ(service.submit(std::move(oversize)).reject,
            RejectReason::kInvalidRequest);
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("service.rejected.invalid_request").value(), 3u);
  }
}

TEST(Service, CancelQueuedJobResolvesImmediately) {
  const auto [s, pulses] = make_tiny();
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.start_paused = true;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  auto outcome = service.submit(tiny_request(s, pulses));
  ASSERT_TRUE(outcome.admitted());
  EXPECT_EQ(outcome.handle->state(), JobState::kQueued);
  EXPECT_TRUE(outcome.handle->cancel());
  EXPECT_EQ(outcome.handle->state(), JobState::kCancelled);
  EXPECT_FALSE(outcome.handle->cancel());  // already terminal

  service.resume();
  service.drain();
  EXPECT_EQ(outcome.handle->result().state, JobState::kCancelled);
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("service.jobs.cancelled").value(), 1u);
  }
}

TEST(Service, CancelRunningJobStopsAtBlockCheckpoint) {
  const auto [s, pulses] = make_tiny();

  std::mutex m;
  std::condition_variable cv;
  bool at_checkpoint = false;
  bool release = false;

  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.metrics = &reg;
  sc.inter_block_hook = [&] {
    std::unique_lock lock(m);
    if (!at_checkpoint) {
      at_checkpoint = true;
      cv.notify_all();
    }
    cv.wait(lock, [&] { return release; });
  };
  ImageFormationService service(sc);

  auto outcome = service.submit(tiny_request(s, pulses));
  ASSERT_TRUE(outcome.admitted());
  {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return at_checkpoint; });
  }
  EXPECT_EQ(outcome.handle->state(), JobState::kRunning);
  EXPECT_TRUE(outcome.handle->cancel());
  {
    std::lock_guard lock(m);
    release = true;
  }
  cv.notify_all();

  const JobResult& result = outcome.handle->wait();
  EXPECT_EQ(result.state, JobState::kCancelled);
  EXPECT_EQ(result.error, "cancelled while running");
  service.drain();
}

TEST(Service, DeadlineExpiryWhileQueued) {
  const auto [s, pulses] = make_tiny();
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.start_paused = true;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  auto req = tiny_request(s, pulses);
  req.deadline = std::chrono::steady_clock::now() - 1ms;  // already missed
  auto outcome = service.submit(std::move(req));
  ASSERT_TRUE(outcome.admitted());

  service.resume();
  const JobResult& result = outcome.handle->wait();
  EXPECT_EQ(result.state, JobState::kExpired);
  EXPECT_EQ(result.error, "deadline passed while queued");
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("service.jobs.expired").value(), 1u);
  }
}

TEST(Service, DeadlineExpiryWhileRunning) {
  const auto [s, pulses] = make_tiny();

  const auto deadline = std::chrono::steady_clock::now() + 200ms;
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.metrics = &reg;
  // Every checkpoint sleeps past the deadline, so the first one taken
  // after kRunning begins must observe the expiry.
  sc.inter_block_hook = [deadline] {
    std::this_thread::sleep_until(deadline + 10ms);
  };
  ImageFormationService service(sc);

  auto req = tiny_request(s, pulses);
  req.deadline = deadline;
  auto outcome = service.submit(std::move(req));
  ASSERT_TRUE(outcome.admitted());

  const JobResult& result = outcome.handle->wait();
  EXPECT_EQ(result.state, JobState::kExpired);
  EXPECT_EQ(result.error, "deadline passed while running");
}

TEST(Service, PlanCacheHitOnRepeatedGeometry) {
  const auto [s, pulses] = make_tiny();
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.plan_cache_capacity = 4;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  auto first = service.submit(tiny_request(s, pulses));
  ASSERT_TRUE(first.admitted());
  ASSERT_EQ(first.handle->wait().state, JobState::kDone);
  EXPECT_FALSE(first.handle->result().plan_cache_hit);

  auto second = service.submit(tiny_request(s, pulses));
  ASSERT_TRUE(second.admitted());
  ASSERT_EQ(second.handle->wait().state, JobState::kDone);
  EXPECT_TRUE(second.handle->result().plan_cache_hit);

  EXPECT_EQ(service.plan_cache().size(), 1u);
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("service.plan_cache.hits").value(), 1u);
    EXPECT_EQ(reg.counter("service.plan_cache.misses").value(), 1u);
    EXPECT_GT(reg.gauge("service.plan_cache.bytes").value(), 0);
  }

  // Same collection, different region: a distinct plan key, so a miss.
  auto sub = tiny_request(s, pulses);
  sub.region = Region{0, 0, 16, 16};
  auto third = service.submit(std::move(sub));
  ASSERT_TRUE(third.admitted());
  ASSERT_EQ(third.handle->wait().state, JobState::kDone);
  EXPECT_FALSE(third.handle->result().plan_cache_hit);
  EXPECT_EQ(third.handle->result().image.width(), 16);
}

TEST(Service, PlanCacheCapacityZeroDisablesRetention) {
  const auto [s, pulses] = make_tiny();
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.plan_cache_capacity = 0;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  for (int i = 0; i < 2; ++i) {
    auto outcome = service.submit(tiny_request(s, pulses));
    ASSERT_TRUE(outcome.admitted());
    ASSERT_EQ(outcome.handle->wait().state, JobState::kDone);
    EXPECT_FALSE(outcome.handle->result().plan_cache_hit);
  }
  EXPECT_EQ(service.plan_cache().size(), 0u);
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("service.plan_cache.hits").value(), 0u);
    EXPECT_EQ(reg.counter("service.plan_cache.misses").value(), 2u);
  }
}

TEST(Service, DrainWithJobsInFlightRunsBacklogToCompletion) {
  const auto [s, pulses] = make_tiny();
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 2;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  std::vector<std::shared_ptr<JobHandle>> handles;
  for (int i = 0; i < 8; ++i) {
    auto outcome = service.submit(tiny_request(
        s, pulses, static_cast<Priority>(i % kNumPriorities)));
    ASSERT_TRUE(outcome.admitted());
    handles.push_back(std::move(outcome.handle));
  }
  service.drain();  // must run every queued job, then stop — no hang

  for (const auto& handle : handles) {
    EXPECT_EQ(handle->result().state, JobState::kDone)
        << handle->result().error;
  }
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("service.jobs.done").value(), 8u);
  }
}

TEST(Service, SubmitAfterDrainRejectsShuttingDown) {
  const auto [s, pulses] = make_tiny();
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.metrics = &reg;
  ImageFormationService service(sc);
  service.drain();

  auto outcome = service.submit(tiny_request(s, pulses));
  EXPECT_FALSE(outcome.admitted());
  EXPECT_EQ(outcome.reject, RejectReason::kShuttingDown);
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("service.rejected.shutting_down").value(), 1u);
  }
}

// --- traces --------------------------------------------------------------

TEST(Trace, JsonRoundTrip) {
  const Trace trace = make_repeated_scene_trace(2, 2, 48, 16, 16);
  ASSERT_EQ(trace.requests.size(), 4u);
  const Trace parsed = parse_trace_json(to_json(trace));
  ASSERT_EQ(parsed.requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    EXPECT_EQ(parsed.requests[i].image, trace.requests[i].image);
    EXPECT_EQ(parsed.requests[i].pulses, trace.requests[i].pulses);
    EXPECT_EQ(parsed.requests[i].block, trace.requests[i].block);
    EXPECT_EQ(parsed.requests[i].priority, trace.requests[i].priority);
    EXPECT_EQ(parsed.requests[i].scene, trace.requests[i].scene);
    EXPECT_EQ(parsed.requests[i].tenant, trace.requests[i].tenant);
  }
}

TEST(Trace, NearPastDeadlineRoundTripsAndExpiresOnReplay) {
  // A negative deadline_ms is a deadline already past at submission. It
  // must survive the JSON round trip (not get clamped to "no deadline")
  // and replay as an immediate expiry, not a completed job.
  Trace trace;
  TraceEntry entry;
  entry.image = 32;
  entry.pulses = 8;
  entry.block = 16;
  entry.deadline_ms = -5.0;
  trace.requests.push_back(entry);

  const Trace parsed = parse_trace_json(to_json(trace));
  ASSERT_EQ(parsed.requests.size(), 1u);
  EXPECT_EQ(parsed.requests[0].deadline_ms, -5.0);

  ServiceConfig sc;
  sc.workers = 1;
  ImageFormationService service(sc);
  const ReplayStats stats = replay_trace(parsed, service);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.done, 0u);
}

TEST(Trace, ParseRejectsBadInput) {
  EXPECT_THROW(parse_trace_json("{}"), PreconditionError);
  EXPECT_THROW(parse_trace_json("{\"schema\": \"sarbp.trace.v9\"}"),
               PreconditionError);
  EXPECT_THROW(
      parse_trace_json("{\"schema\": \"sarbp.trace.v1\", \"bogus\": 1}"),
      PreconditionError);
  EXPECT_THROW(parse_trace_json("{\"schema\": \"sarbp.trace.v1\", "
                                "\"requests\": [{\"frobnicate\": 3}]}"),
               PreconditionError);
  EXPECT_THROW(parse_trace_json("not json at all"), PreconditionError);
}

TEST(Trace, ReplayRepeatedScenesHitsPlanCache) {
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;  // sequential: every repeat lands after its scene's miss
  sc.plan_cache_capacity = 4;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  const Trace trace = make_repeated_scene_trace(2, 2, 48, 12, 16);
  const ReplayStats stats = replay_trace(trace, service);
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.done, 4u);
  EXPECT_EQ(stats.plan_misses, 2u);  // one per distinct scene
  EXPECT_EQ(stats.plan_hits, 2u);   // one per repeat
  EXPECT_GT(stats.throughput_jobs_per_s, 0.0);
  EXPECT_GE(stats.latency_p99_s, stats.latency_p50_s);
}

// --- custom jobs (the seam streaming updates ride through) ---------------

TEST(CustomJob, RunsFullLifecycleWithoutPulses) {
  ServiceConfig sc;
  sc.workers = 1;
  ImageFormationService service(sc);

  std::atomic<bool> ran{false};
  ImageFormationRequest req;
  req.grid = geometry::ImageGrid(16, 16, 0.5);
  req.custom = [&ran](const CustomJobContext& ctx) -> exec::GroupPtr {
    std::vector<exec::TaskGroup::Task> tasks;
    tasks.emplace_back([&ran](int, exec::TaskGroup&) { ran = true; });
    auto finish = ctx.finish;
    return std::make_shared<exec::TaskGroup>(
        std::move(tasks), ctx.checkpoint,
        [finish](exec::TaskGroup& group) {
          finish(group.aborted() ? JobState::kFailed : JobState::kDone, "");
        },
        "custom_test");
  };

  auto outcome = service.submit(std::move(req));
  ASSERT_TRUE(outcome.admitted());
  const JobResult& result = outcome.handle->wait();
  EXPECT_EQ(result.state, JobState::kDone);
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(result.image.width(), 0);  // custom jobs publish elsewhere
}

TEST(CustomJob, FinishReportsStateAfterLosingCancelRace) {
  // A custom job cancelled while QUEUED never runs its factory; the
  // abandonment callback is the only notification, and it must carry the
  // resolved state.
  ServiceConfig sc;
  sc.workers = 1;
  sc.start_paused = true;
  ImageFormationService service(sc);

  std::mutex mutex;
  std::condition_variable cv;
  std::optional<JobState> abandoned;
  std::atomic<bool> factory_ran{false};
  ImageFormationRequest req;
  req.grid = geometry::ImageGrid(16, 16, 0.5);
  req.custom = [&factory_ran](const CustomJobContext& ctx) -> exec::GroupPtr {
    factory_ran = true;
    ctx.finish(JobState::kDone, "");
    return nullptr;
  };
  req.custom_abandoned = [&](JobState state) {
    std::lock_guard<std::mutex> lock(mutex);
    abandoned = state;
    cv.notify_all();
  };

  auto outcome = service.submit(std::move(req));
  ASSERT_TRUE(outcome.admitted());
  EXPECT_TRUE(outcome.handle->cancel());
  service.resume();
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return abandoned.has_value(); }));
    EXPECT_EQ(*abandoned, JobState::kCancelled);
  }
  EXPECT_FALSE(factory_ran.load());
  EXPECT_EQ(outcome.handle->result().state, JobState::kCancelled);
}

TEST(CustomJob, RejectedInShardedMode) {
  ServiceConfig sc;
  sc.shards = 2;
  sc.shard_workers = 1;
  ImageFormationService service(sc);

  ImageFormationRequest req;
  req.grid = geometry::ImageGrid(16, 16, 0.5);
  req.custom = [](const CustomJobContext&) -> exec::GroupPtr {
    return nullptr;
  };
  const auto outcome = service.submit(std::move(req));
  EXPECT_FALSE(outcome.admitted());
  EXPECT_EQ(outcome.reject, RejectReason::kInvalidRequest);
}

TEST(CustomJob, ThrowingFactoryFailsTheJob) {
  ServiceConfig sc;
  sc.workers = 1;
  ImageFormationService service(sc);

  ImageFormationRequest req;
  req.grid = geometry::ImageGrid(16, 16, 0.5);
  req.custom = [](const CustomJobContext&) -> exec::GroupPtr {
    throw std::runtime_error("factory exploded");
  };
  auto outcome = service.submit(std::move(req));
  ASSERT_TRUE(outcome.admitted());
  const JobResult& result = outcome.handle->wait();
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_EQ(result.error, "factory exploded");
}

}  // namespace
}  // namespace sarbp::service
