// Unit tests for the common substrate: RNG determinism and statistics,
// bounded queue semantics under concurrency, Grid2D, SNR metric, aligned
// allocation, and precondition checking.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"
#include "common/grid2d.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/snr.h"
#include "common/timer.h"

namespace sarbp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalMeanStddev) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(21);
  Rng parent2(21);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  // Same construction -> same substreams.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next(), child2.next());
  // Parent continues on a different (jumped) stream than the child.
  Rng parent3(21);
  Rng child3 = parent3.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent3.next() == child3.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, RepeatedSplitsDiffer) {
  Rng parent(33);
  Rng a = parent.split();
  Rng b = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, TryPopEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseUnblocksWaitingConsumer) {
  BoundedQueue<int> q(2);
  std::atomic<bool> got_end{false};
  std::thread consumer([&] {
    auto v = q.pop();
    got_end = !v.has_value();
  });
  q.close();
  consumer.join();
  EXPECT_TRUE(got_end);
}

TEST(BoundedQueue, ProducerConsumerStressPreservesAllItems) {
  BoundedQueue<int> q(16);
  constexpr int kItems = 20000;
  constexpr int kProducers = 4;
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = p; i < kItems; i += kProducers) EXPECT_TRUE(q.push(i));
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        consumed_sum += *v;
        consumed_count++;
      }
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed_count.load(), kItems);
  EXPECT_EQ(consumed_sum.load(),
            static_cast<long long>(kItems) * (kItems - 1) / 2);
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));
    pushed = true;
  });
  // Give the producer a chance to block, then free a slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), std::optional<int>(2));
}

TEST(BoundedQueue, TryPushForTimesOutWhenFull) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.try_push_for(1, std::chrono::milliseconds(1)));
  EXPECT_FALSE(q.try_push_for(2, std::chrono::milliseconds(10)));
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueue, TryPushForSucceedsWhenSpaceFrees) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (void)q.pop();
  });
  EXPECT_TRUE(q.try_push_for(2, std::chrono::seconds(5)));
  consumer.join();
  EXPECT_EQ(q.pop(), std::optional<int>(2));
}

TEST(BoundedQueue, TryPushForReturnsFalsePromptlyWhenClosedDuringWait) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
  });
  // The wait is far longer than the close delay: a close() during the wait
  // must win over the deadline and fail the push immediately.
  Timer t;
  EXPECT_FALSE(q.try_push_for(2, std::chrono::seconds(30)));
  EXPECT_LT(t.seconds(), 10.0);
  closer.join();
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, TryPushForRacingCloseFromThirdThread) {
  // Three-way race: a producer blocked in try_push_for on a full queue, a
  // consumer that frees a slot, and a third thread that closes the queue —
  // all at once. Whatever interleaving wins, the producer must return (no
  // hang), and a true return means the item is actually delivered exactly
  // once (it can be popped or was popped by the consumer), never accepted
  // into a void.
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::atomic<int> consumed_42{0};
    std::thread consumer([&] {
      while (auto v = q.pop()) {
        if (*v == 42) consumed_42++;
      }
    });
    std::thread closer([&] { q.close(); });
    const bool accepted = q.try_push_for(42, std::chrono::seconds(10));
    closer.join();
    consumer.join();
    if (accepted) {
      // Accepted before the close won: drain semantics guarantee delivery.
      EXPECT_EQ(consumed_42.load(), 1) << "accepted item lost (round "
                                       << round << ")";
    } else {
      EXPECT_EQ(consumed_42.load(), 0) << "rejected item delivered (round "
                                       << round << ")";
    }
    EXPECT_TRUE(q.closed());
  }
}

TEST(BoundedQueue, PopWakeupOrderDeliversEveryItemToSomeWaiter) {
  // Wakeup-ordering contract on the pop side: with several consumers parked
  // in pop(), each push must wake enough waiters that every item is taken
  // promptly, and close() must wake the rest exactly once each (no consumer
  // hangs, none observes an item after end-of-stream).
  constexpr int kConsumers = 4;
  constexpr int kItems = 1000;
  BoundedQueue<int> q(2);
  std::atomic<int> popped{0};
  std::atomic<int> end_signals{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (q.pop()) popped++;
      end_signals++;
      // The end state is sticky: a second pop must also say end-of-stream.
      EXPECT_FALSE(q.pop().has_value());
    });
  }
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kItems);
  EXPECT_EQ(end_signals.load(), kConsumers);
}

TEST(BoundedQueue, TryPopForTimesOutWhenEmpty) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop_for(std::chrono::milliseconds(10)).has_value());
  EXPECT_FALSE(q.closed());
}

TEST(BoundedQueue, TryPopForReceivesLatePush) {
  BoundedQueue<int> q(2);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(q.push(42));
  });
  const auto v = q.try_pop_for(std::chrono::seconds(5));
  producer.join();
  EXPECT_EQ(v, std::optional<int>(42));
}

TEST(BoundedQueue, TryPopForDrainsBacklogAfterClose) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  q.close();
  EXPECT_EQ(q.try_pop_for(std::chrono::milliseconds(1)), std::optional<int>(1));
  EXPECT_FALSE(q.try_pop_for(std::chrono::milliseconds(1)).has_value());
}

TEST(BoundedQueue, TryPopForWokenByCloseNotDeadline) {
  BoundedQueue<int> q(2);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
  });
  Timer t;
  EXPECT_FALSE(q.try_pop_for(std::chrono::seconds(30)).has_value());
  EXPECT_LT(t.seconds(), 10.0);
  closer.join();
  // nullopt here means end-of-stream, distinguishable from a timeout.
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TimedOpsStressWithMidStreamClose) {
  // timeout-vs-close race: timed producers and consumers hammer a tiny
  // queue while it is closed mid-stream. Every accepted item must be
  // delivered exactly once whether the waiters lose to the deadline or to
  // the close.
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(2);
  std::atomic<long long> pushed_sum{0};
  std::atomic<long long> popped_sum{0};
  std::atomic<int> pushed_count{0};
  std::atomic<int> popped_count{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * kPerProducer + i;
        bool accepted = false;
        while (!q.closed()) {
          if (q.try_push_for(item, std::chrono::microseconds(50))) {
            accepted = true;
            break;
          }
        }
        if (!accepted) return;  // closed: all later pushes fail too
        pushed_sum += item;
        pushed_count++;
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        if (auto v = q.try_pop_for(std::chrono::microseconds(50))) {
          popped_sum += *v;
          popped_count++;
        } else if (q.closed()) {
          // Timed out or ended; with the queue closed and a nullopt in
          // hand the stream may still hold a backlog — drain it.
          while (auto rest = q.try_pop()) {
            popped_sum += *rest;
            popped_count++;
          }
          return;
        }
      }
    });
  }
  while (popped_count.load() < kPerProducer) std::this_thread::yield();
  q.close();
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped_count.load(), pushed_count.load());
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
}

TEST(BoundedQueue, MidStreamCloseWakesAllWaitersAndLosesNothing) {
  // Shutdown-protocol stress: N producers race M consumers on a tiny queue
  // while another thread closes it mid-stream. Every push that reported
  // success must be consumed (drain-then-end semantics), every blocked
  // waiter must wake, and pushes after close must fail.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 5000;
  BoundedQueue<int> q(4);
  std::atomic<long long> pushed_sum{0};
  std::atomic<int> pushed_count{0};
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::atomic<bool> rejected_push{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * kPerProducer + i;
        if (q.push(item)) {
          pushed_sum += item;
          pushed_count++;
        } else {
          rejected_push = true;
          break;  // queue closed; all later pushes would fail too
        }
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        popped_sum += *v;
        popped_count++;
      }
      // After pop() returns nullopt the queue must stay ended.
      EXPECT_FALSE(q.pop().has_value());
    });
  }
  // Let traffic flow, then slam the door mid-stream.
  while (popped_count.load() < kPerProducer / 2) std::this_thread::yield();
  q.close();

  for (auto& t : producers) t.join();  // blocked pushers must wake
  for (auto& t : consumers) t.join();  // blocked poppers must wake
  EXPECT_TRUE(rejected_push.load());
  // No successfully-pushed item may be lost *or* duplicated.
  EXPECT_EQ(popped_count.load(), pushed_count.load());
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
  EXPECT_LT(pushed_count.load(), kProducers * kPerProducer);
}

TEST(Grid2D, ShapeAndAccess) {
  Grid2D<int> g(4, 3, 7);
  EXPECT_EQ(g.width(), 4);
  EXPECT_EQ(g.height(), 3);
  EXPECT_EQ(g.size(), 12);
  EXPECT_EQ(g.at(2, 1), 7);
  g.at(2, 1) = 42;
  EXPECT_EQ(g.at(2, 1), 42);
  EXPECT_EQ(g.row(1)[2], 42);
}

TEST(Grid2D, RowSpansAreContiguous) {
  Grid2D<int> g(5, 2);
  std::iota(g.flat().begin(), g.flat().end(), 0);
  EXPECT_EQ(g.row(0)[4], 4);
  EXPECT_EQ(g.row(1)[0], 5);
}

TEST(Grid2D, FillAndEquality) {
  Grid2D<float> a(3, 3, 1.0f);
  Grid2D<float> b(3, 3, 1.0f);
  EXPECT_EQ(a, b);
  b.at(0, 0) = 2.0f;
  EXPECT_FALSE(a == b);
  b.fill(1.0f);
  EXPECT_EQ(a, b);
}

TEST(Snr, IdenticalSignalsAreInfinite) {
  std::vector<CFloat> a = {{1, 2}, {3, 4}};
  EXPECT_TRUE(std::isinf(snr_db(std::span<const CFloat>(a),
                                std::span<const CFloat>(a))));
}

TEST(Snr, KnownRatio) {
  // Signal power 1, error amplitude 1e-3 -> SNR = 60 dB.
  std::vector<CDouble> ref(100, CDouble{1.0, 0.0});
  std::vector<CFloat> meas(100, CFloat{1.0f + 1e-3f, 0.0f});
  EXPECT_NEAR(snr_db(std::span<const CFloat>(meas),
                     std::span<const CDouble>(ref)),
              60.0, 0.5);
}

TEST(Snr, TwentyDbPerDigit) {
  std::vector<CDouble> ref(10, CDouble{1.0, 0.0});
  std::vector<CFloat> m1(10, CFloat{1.01f, 0.0f});
  std::vector<CFloat> m2(10, CFloat{1.001f, 0.0f});
  const double s1 = snr_db(std::span<const CFloat>(m1), std::span<const CDouble>(ref));
  const double s2 = snr_db(std::span<const CFloat>(m2), std::span<const CDouble>(ref));
  EXPECT_NEAR(s2 - s1, 20.0, 1.0);
}

TEST(Snr, ZeroSignalZeroNoiseIsNan) {
  // Degenerate all-zero comparison: neither "perfect" (+inf) nor "broken"
  // (-inf) is honest, so the ratio is reported as NaN.
  std::vector<CFloat> zeros(8, CFloat{0.0f, 0.0f});
  EXPECT_TRUE(std::isnan(snr_db(std::span<const CFloat>(zeros),
                                std::span<const CFloat>(zeros))));
}

TEST(Snr, ZeroReferenceNonzeroErrorIsNotNan) {
  std::vector<CFloat> ref(8, CFloat{0.0f, 0.0f});
  std::vector<CFloat> meas(8, CFloat{1.0f, 0.0f});
  const double snr = snr_db(std::span<const CFloat>(meas),
                            std::span<const CFloat>(ref));
  EXPECT_FALSE(std::isnan(snr));
  EXPECT_TRUE(std::isinf(snr));
  EXPECT_LT(snr, 0.0);
}

TEST(Snr, MismatchedSizesThrow) {
  std::vector<CFloat> a(3), b(4);
  EXPECT_THROW(snr_db(std::span<const CFloat>(a), std::span<const CFloat>(b)),
               PreconditionError);
}

TEST(Aligned, VectorDataIs64ByteAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector<float> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  }
}

TEST(Check, EnsureThrowsWithLocation) {
  try {
    ensure(false, "expected failure");
    FAIL() << "ensure did not throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("expected failure"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

TEST(Check, EnsurePassesQuietly) { EXPECT_NO_THROW(ensure(true, "ok")); }

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_GE(t.seconds(), 0.010);
  t.reset();
  EXPECT_LT(t.seconds(), 0.010);
}

TEST(SectionTimes, AccumulatesByName) {
  SectionTimes times;
  times.add("a", 1.0);
  times.add("a", 0.5);
  times.add("b", 2.0);
  EXPECT_DOUBLE_EQ(times.get("a"), 1.5);
  EXPECT_DOUBLE_EQ(times.get("b"), 2.0);
  EXPECT_DOUBLE_EQ(times.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(times.total(), 3.5);
  times.clear();
  EXPECT_DOUBLE_EQ(times.total(), 0.0);
}

}  // namespace
}  // namespace sarbp
