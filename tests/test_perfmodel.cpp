// Performance-model tests: the FLOP formulas against the paper's Table 1
// numbers, the weak-scaling projection against Table 4/5 shapes, and the
// scenario scaling rules.
#include <gtest/gtest.h>

#include "perfmodel/flops.h"
#include "perfmodel/projection.h"

namespace sarbp::perfmodel {
namespace {

TEST(Flops, BackprojectionIs38PerPair) {
  EXPECT_DOUBLE_EQ(backprojection_flops(1, 1, 1), 38.0);
  EXPECT_DOUBLE_EQ(backprojection_flops(10, 100, 200), 38.0 * 10 * 100 * 200);
}

TEST(Flops, Fft2dFormula) {
  // 10 n^2 log2 n at n = 64: 10 * 4096 * 6.
  EXPECT_DOUBLE_EQ(fft2d_flops(64), 245760.0);
}

TEST(Flops, Table1BackprojectionRequirement) {
  // Paper Table 1: backprojection 347 TFLOPS for the high-end scenario.
  const HighEndScenario s;
  const ComputeRequirements r = compute_requirements(s);
  EXPECT_NEAR(r.backprojection_tflops, 347.0, 4.0);
}

TEST(Flops, Table1CorrelationRequirement) {
  // Paper Table 1: 2D-correlation 0.7 TFLOPS (929K patch correlations at
  // the padded 64x64 FFT size, three transforms each).
  const HighEndScenario s;
  const ComputeRequirements r = compute_requirements(s);
  EXPECT_NEAR(r.correlation_tflops, 0.7, 0.1);
}

TEST(Flops, Table1InterpolationRequirement) {
  // Paper Table 1: interpolation 0.2 TFLOPS (54 FLOPs x 57K^2 pixels).
  const HighEndScenario s;
  const ComputeRequirements r = compute_requirements(s);
  EXPECT_NEAR(r.interpolation_tflops, 0.2, 0.05);
}

TEST(Flops, Table1CcdRequirement) {
  // Paper Table 1: CCD 3 TFLOPS (40 x 25 x 57K^2).
  const HighEndScenario s;
  const ComputeRequirements r = compute_requirements(s);
  EXPECT_NEAR(r.ccd_tflops, 3.0, 0.3);
}

TEST(Flops, Table1TotalAndDominance) {
  // Paper: total 351 TFLOPS, backprojection "more than 98% of the total
  // FLOP count".
  const HighEndScenario s;
  const ComputeRequirements r = compute_requirements(s);
  EXPECT_NEAR(r.total_tflops(), 351.0, 4.0);
  EXPECT_GT(r.backprojection_fraction(), 0.98);
}

TEST(Flops, Footnote3MemoryRequirements) {
  // Paper footnote 3: incremental backprojection raises memory from ~100
  // to ~948 GB (119 Xeon Phis at 8 GB); compute alone needs >182 cards.
  const HighEndScenario s;
  const MemoryRequirements m = memory_requirements(s);
  EXPECT_NEAR(m.direct_gb, 100.0, 20.0);
  EXPECT_NEAR(m.incremental_gb, 948.0, 30.0);
  EXPECT_GE(m.coprocessors_for_memory, 115);
  EXPECT_LE(m.coprocessors_for_memory, 122);
  EXPECT_GT(m.coprocessors_for_compute, 182);
  // And the paper's conclusion: compute dominates the card count.
  EXPECT_GT(m.coprocessors_for_compute, m.coprocessors_for_memory);
}

TEST(Scaling, ScenarioRulesMatchTable4) {
  // Table 4: (nodes, image, k, S) = (1, 3K, 2, 4K) ... (16, 13K, 9, 19K).
  EXPECT_NEAR(static_cast<double>(samples_for_image(3000)), 4350, 500);
  EXPECT_NEAR(static_cast<double>(samples_for_image(13000)), 18850, 1500);
  EXPECT_NEAR(accumulation_for_image(3000), 2, 1);
  EXPECT_NEAR(accumulation_for_image(13000), 9, 1);
  EXPECT_NEAR(accumulation_for_image(54000), 33, 3);  // Table 5 last row
}

TEST(Scaling, ControlPointDensityIsConstant) {
  const Index nc57 = control_points_for_image(57000);
  EXPECT_NEAR(static_cast<double>(nc57), 929000.0, 1000.0);
  const Index nc28 = control_points_for_image(28500);
  EXPECT_NEAR(static_cast<double>(nc28), 929000.0 / 4.0, 1000.0);
}

TEST(Projection, SingleNodeRealtimeImageNearPaper3K) {
  // §5.1: "a single node can process one 3K x 3K image per second".
  const NodeModel model;
  const Index image = largest_realtime_image(model, 1);
  EXPECT_GE(image, 2000);
  EXPECT_LE(image, 4000);
}

TEST(Projection, SixteenNodeRealtimeImageNearPaper13K) {
  const NodeModel model;
  const Index image = largest_realtime_image(model, 16);
  EXPECT_GE(image, 11000);
  EXPECT_LE(image, 15000);
}

TEST(Projection, Table5NodeCounts) {
  // Table 5: 32 -> 18K, 64 -> 27K, 128 -> 38K, 256 -> 54K (within ~15%).
  const NodeModel model;
  const struct {
    Index nodes;
    double image;
  } expected[] = {{32, 18000}, {64, 27000}, {128, 38000}, {256, 54000}};
  for (const auto& row : expected) {
    const Index image = largest_realtime_image(model, row.nodes);
    EXPECT_NEAR(static_cast<double>(image), row.image, 0.15 * row.image)
        << row.nodes << " nodes";
  }
}

TEST(Projection, ThroughputScalesNearLinearly) {
  const NodeModel model;
  const Index counts[] = {1, 2, 4, 8, 16};
  const auto points = weak_scaling_projection(model, counts);
  ASSERT_EQ(points.size(), 5u);
  const double base = points[0].throughput_bp_per_s;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double ideal = base * static_cast<double>(points[i].nodes);
    EXPECT_GT(points[i].throughput_bp_per_s, 0.80 * ideal);
    EXPECT_LT(points[i].throughput_bp_per_s, 1.15 * ideal);
  }
}

TEST(Projection, SingleNodeThroughputNearPaper35G) {
  // Table 4 row 1: 35 billion backprojections/s on one node.
  const NodeModel model;
  const ScalingPoint p = evaluate_point(model, 1, 3000);
  EXPECT_NEAR(p.throughput_bp_per_s / 1e9, 35.0, 5.0);
}

TEST(Projection, EfficiencyHighAndBackprojectionDominant) {
  // Table 4/5: parallelization efficiency 0.92-1.00; registration + CCD
  // stay small fractions (paper keeps non-BP compute < 4%).
  const NodeModel model;
  for (Index nodes : {1, 16, 64, 256}) {
    const Index image = largest_realtime_image(model, nodes);
    const ScalingPoint p = evaluate_point(model, nodes, image);
    EXPECT_GT(p.parallel_efficiency, 0.90) << nodes;
    EXPECT_LE(p.parallel_efficiency, 1.0) << nodes;
    EXPECT_LT((p.t_registration + p.t_ccd) / p.frame_seconds(), 0.1) << nodes;
  }
}

TEST(Projection, TransfersStayUnderComputeBudget) {
  // §5.4: "data transfer times (through PCIe, MPI and disk I/O) will be
  // kept considerably smaller than the compute time."
  const NodeModel model;
  for (Index nodes : {32, 64, 128, 256}) {
    const Index image = largest_realtime_image(model, nodes);
    const ScalingPoint p = evaluate_point(model, nodes, image);
    EXPECT_LT(p.t_pcie, 0.3 * p.frame_seconds()) << nodes;
    EXPECT_LT(p.t_mpi, 0.3 * p.frame_seconds()) << nodes;
    EXPECT_LT(p.t_disk, 0.5 * p.frame_seconds()) << nodes;
  }
}

TEST(Projection, HighEndScenarioFitsInRoughly256Nodes) {
  // Paper abstract/§1: "the aforementioned high-end scenario can be
  // handled by approximately 256 nodes" (57K x 57K).
  const NodeModel model;
  const Index image_at_256 = largest_realtime_image(model, 256);
  EXPECT_GT(image_at_256, 45000);
  const Index image_at_512 = largest_realtime_image(model, 512);
  EXPECT_GT(image_at_512, 57000 * 9 / 10);
}

TEST(Projection, FrameSecondsMonotoneInImage) {
  const NodeModel model;
  double prev = 0.0;
  for (Index image : {2000, 4000, 8000, 16000}) {
    const ScalingPoint p = evaluate_point(model, 4, image);
    EXPECT_GT(p.frame_seconds(), prev);
    prev = p.frame_seconds();
  }
}

}  // namespace
}  // namespace sarbp::perfmodel
