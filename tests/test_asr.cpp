// ASR machinery tests: Taylor coefficients against finite differences,
// remainder bound vs measured error (property sweep over block sizes and
// geometries), strength-reduced table identities, and block planning.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "asr/block_plan.h"
#include "asr/error_model.h"
#include "asr/quadratic.h"
#include "asr/tables.h"
#include "common/rng.h"
#include "signal/trig.h"

namespace sarbp::asr {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

TEST(Quadratic, ExactAtExpansionCentre) {
  const geometry::Vec3 centre{100, 200, 0};
  const geometry::Vec3 radar{15000, 3000, 8000};
  const Quadratic2D q = range_quadratic(centre, radar, 1.0, 1.0);
  EXPECT_NEAR(q.f0, geometry::distance(centre, radar), 1e-9);
  EXPECT_NEAR(q.eval(0, 0), q.f0, 1e-12);
}

TEST(Quadratic, GradientMatchesFiniteDifference) {
  const geometry::Vec3 centre{-50, 80, 0};
  const geometry::Vec3 radar{12000, -4000, 7000};
  const double dx = 0.7, dy = 1.3;
  const Quadratic2D q = range_quadratic(centre, radar, dx, dy);
  const double h = 1e-4;
  const double dl =
      (exact_range(centre, radar, dx, dy, h, 0) -
       exact_range(centre, radar, dx, dy, -h, 0)) / (2 * h);
  const double dm =
      (exact_range(centre, radar, dx, dy, 0, h) -
       exact_range(centre, radar, dx, dy, 0, -h)) / (2 * h);
  EXPECT_NEAR(q.ax, dl, 1e-7);
  EXPECT_NEAR(q.ay, dm, 1e-7);
}

TEST(Quadratic, CurvatureMatchesFiniteDifference) {
  const geometry::Vec3 centre{30, -20, 0};
  const geometry::Vec3 radar{9000, 5000, 6000};
  const double dx = 1.0, dy = 1.0;
  const Quadratic2D q = range_quadratic(centre, radar, dx, dy);
  const double h = 1.0;
  auto f = [&](double l, double m) {
    return exact_range(centre, radar, dx, dy, l, m);
  };
  // Second differences: f_ll ~= 2*bx, f_mm ~= 2*by, f_lm ~= cxy.
  const double d2l = (f(h, 0) - 2 * f(0, 0) + f(-h, 0)) / (h * h);
  const double d2m = (f(0, h) - 2 * f(0, 0) + f(0, -h)) / (h * h);
  const double dlm =
      (f(h, h) - f(h, -h) - f(-h, h) + f(-h, -h)) / (4 * h * h);
  EXPECT_NEAR(2 * q.bx, d2l, 1e-8);
  EXPECT_NEAR(2 * q.by, d2m, 1e-8);
  EXPECT_NEAR(q.cxy, dlm, 1e-8);
}

TEST(Quadratic, MatchesPaperFormulaShape) {
  // Directly check the §3.3 closed forms against the implementation.
  const geometry::Vec3 centre{500, -300, 0};
  const geometry::Vec3 radar{14000, 2000, 9000};
  const geometry::Vec3 u = centre - radar;
  const double f0 = u.norm();
  const double dx = 0.8, dy = 1.1;
  const Quadratic2D q = range_quadratic(centre, radar, dx, dy);
  EXPECT_NEAR(q.ax, dx * u.x / f0, 1e-12);
  EXPECT_NEAR(q.ay, dy * u.y / f0, 1e-12);
  EXPECT_NEAR(q.bx, dx * dx / (2 * f0) - dx * dx * u.x * u.x / (2 * f0 * f0 * f0),
              1e-15);
  EXPECT_NEAR(q.cxy, -dx * dy * u.x * u.y / (f0 * f0 * f0), 1e-15);
}

TEST(Quadratic, CoincidentRadarThrows) {
  EXPECT_THROW(range_quadratic({1, 1, 0}, {1, 1, 0}, 1, 1), PreconditionError);
}

struct ErrorCase {
  Index block;
  double expected_max_error_m;  // loose ceiling for this geometry
};

class RemainderSweep : public ::testing::TestWithParam<Index> {};

TEST_P(RemainderSweep, BoundDominatesMeasuredError) {
  const Index block = GetParam();
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const geometry::Vec3 radar{rng.uniform(8000, 20000),
                               rng.uniform(-6000, 6000),
                               rng.uniform(4000, 10000)};
    const geometry::Vec3 centre{rng.uniform(-800, 800),
                                rng.uniform(-800, 800), 0};
    const double spacing = rng.uniform(0.5, 2.0);
    const BlockErrorStats measured =
        measure_block_error(centre, radar, spacing, spacing, block, block);
    const double bound = taylor_remainder_bound(
        centre, radar, spacing, spacing,
        0.5 * static_cast<double>(block), 0.5 * static_cast<double>(block));
    EXPECT_GE(bound, measured.max_abs_m)
        << "block " << block << " trial " << trial;
    EXPECT_GE(measured.max_abs_m, measured.rms_m);
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, RemainderSweep,
                         ::testing::Values(8, 16, 32, 64, 128, 256));

TEST(Remainder, ErrorGrowsWithBlockSize) {
  const geometry::Vec3 radar{15000, 3000, 8000};
  const geometry::Vec3 centre{200, -100, 0};
  double previous = 0.0;
  for (Index block : {16, 32, 64, 128, 256}) {
    const auto stats =
        measure_block_error(centre, radar, 1.0, 1.0, block, block);
    EXPECT_GT(stats.max_abs_m, previous) << "block " << block;
    previous = stats.max_abs_m;
  }
}

TEST(Remainder, ErrorShrinksCubicallyish) {
  // Halving the block edge should cut the max error by ~8x (third-order
  // remainder). Accept 5x..11x.
  const geometry::Vec3 radar{15000, 3000, 8000};
  const geometry::Vec3 centre{200, -100, 0};
  const auto big = measure_block_error(centre, radar, 1.0, 1.0, 256, 256);
  const auto small = measure_block_error(centre, radar, 1.0, 1.0, 128, 128);
  const double ratio = big.max_abs_m / small.max_abs_m;
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 11.0);
}

TEST(ErrorModel, SnrFormulaAnchors) {
  // sigma_phase = 1e-3 rad -> 60 dB.
  const double k = 1.0 / kTwoPi;  // makes sigma_phase == sigma_r
  EXPECT_NEAR(phase_error_snr_db(1e-3, k), 60.0, 1e-9);
  EXPECT_TRUE(std::isinf(phase_error_snr_db(0.0, 64.0)));
}

TEST(ErrorModel, PredictedSnrInCalibratedRegime) {
  // DESIGN.md §5: X-band, ~41 km slant range, 0.5 m pixels, 64x64 blocks
  // should predict SNR in the ~50-80 dB band (Fig. 8 regime).
  geometry::ImageGrid grid(512, 512, 0.5);
  const geometry::Vec3 radar{40000, 0, 8000};
  const double k = 2 * 9.6e9 / 299792458.0;
  const double snr64 = predicted_snr_db(grid, radar, k, 64, 64);
  EXPECT_GT(snr64, 45.0);
  EXPECT_LT(snr64, 110.0);
  // And it must fall as blocks grow.
  const double snr256 = predicted_snr_db(grid, radar, k, 256, 256);
  EXPECT_LT(snr256, snr64);
}

TEST(Tables, BinTableMatchesQuadraticDirectly) {
  const geometry::Vec3 radar{15000, 3000, 8000};
  const geometry::Vec3 centre{100, 50, 0};
  const Quadratic2D q = range_quadratic(centre, radar, 1.0, 1.0);
  const double r0 = q.f0 - 400.0;
  const double dr = 0.42;
  const Index L = 32, M = 24;
  BlockTables t;
  build_block_tables(q, r0, dr, 0.001, L, M, t);
  const double l0 = -0.5 * static_cast<double>(L - 1);
  const double m0 = -0.5 * static_cast<double>(M - 1);
  for (Index m = 0; m < M; m += 3) {
    for (Index l = 0; l < L; l += 3) {
      const double expected =
          (q.eval(static_cast<double>(l) + l0, static_cast<double>(m) + m0) -
           r0) / dr;
      EXPECT_NEAR(table_bin(t, l, m), expected, 2e-2) << l << "," << m;
    }
  }
}

TEST(Tables, TrigTablesReconstructPhase) {
  // Phi[l] * Psi[m] * Gamma[m]^l must equal exp(i*2*pi*k*q(lc, mc)).
  const geometry::Vec3 radar{12000, -2000, 7000};
  const geometry::Vec3 centre{-80, 120, 0};
  const Quadratic2D q = range_quadratic(centre, radar, 1.0, 1.0);
  const double two_pi_k = kTwoPi * 64.0;
  const Index L = 16, M = 16;
  BlockTables t;
  build_block_tables(q, q.f0 - 100.0, 0.5, two_pi_k, L, M, t);
  const double l0 = -0.5 * static_cast<double>(L - 1);
  const double m0 = -0.5 * static_cast<double>(M - 1);
  for (Index m = 0; m < M; ++m) {
    // gamma recurrence along l.
    double g_r = 1.0, g_i = 0.0;
    for (Index l = 0; l < L; ++l) {
      const auto li = static_cast<std::size_t>(l);
      const auto mi = static_cast<std::size_t>(m);
      const double t_r = t.phi_re[li] * g_r - t.phi_im[li] * g_i;
      const double t_i = t.phi_re[li] * g_i + t.phi_im[li] * g_r;
      const double a_r = t_r * t.psi_re[mi] - t_i * t.psi_im[mi];
      const double a_i = t_r * t.psi_im[mi] + t_i * t.psi_re[mi];
      const double phase =
          two_pi_k * q.eval(static_cast<double>(l) + l0,
                            static_cast<double>(m) + m0);
      EXPECT_NEAR(a_r, std::cos(phase), 5e-5) << l << "," << m;
      EXPECT_NEAR(a_i, std::sin(phase), 5e-5) << l << "," << m;
      const double ng_r = g_r * t.gam_re[mi] - g_i * t.gam_im[mi];
      g_i = g_r * t.gam_im[mi] + g_i * t.gam_re[mi];
      g_r = ng_r;
    }
  }
}

TEST(Tables, FastBuilderMatchesReference) {
  // The recurrence-based builder (§4.4 precompute vectorization) must be
  // interchangeable with the per-entry sincos reference across block
  // shapes and geometries.
  Rng rng(91);
  for (int trial = 0; trial < 6; ++trial) {
    const geometry::Vec3 radar{rng.uniform(10000, 45000),
                               rng.uniform(-5000, 5000),
                               rng.uniform(5000, 9000)};
    const geometry::Vec3 centre{rng.uniform(-500, 500),
                                rng.uniform(-500, 500), 0};
    const Quadratic2D q = range_quadratic(centre, radar, 0.5, 0.5);
    const double r0 = q.f0 - 300.0;
    const double two_pi_k = kTwoPi * 64.05;
    const Index L = 16 + 29 * trial;  // odd sizes, up to 161
    const Index M = 8 + 37 * trial;
    BlockTables ref;
    BlockTables fast;
    build_block_tables(q, r0, 0.416, two_pi_k, L, M, ref);
    build_block_tables_fast(q, r0, 0.416, two_pi_k, L, M, fast);
    for (Index l = 0; l < L; ++l) {
      const auto li = static_cast<std::size_t>(l);
      ASSERT_NEAR(fast.bin_a[li], ref.bin_a[li], 2e-3) << trial << " l=" << l;
      ASSERT_NEAR(fast.phi_re[li], ref.phi_re[li], 1e-5) << trial << " l=" << l;
      ASSERT_NEAR(fast.phi_im[li], ref.phi_im[li], 1e-5) << trial << " l=" << l;
    }
    for (Index m = 0; m < M; ++m) {
      const auto mi = static_cast<std::size_t>(m);
      ASSERT_NEAR(fast.bin_b[mi], ref.bin_b[mi], 2e-3) << trial << " m=" << m;
      ASSERT_NEAR(fast.bin_c[mi], ref.bin_c[mi], 1e-5) << trial << " m=" << m;
      ASSERT_NEAR(fast.psi_re[mi], ref.psi_re[mi], 1e-5) << trial;
      ASSERT_NEAR(fast.psi_im[mi], ref.psi_im[mi], 1e-5) << trial;
      ASSERT_NEAR(fast.gam_re[mi], ref.gam_re[mi], 1e-5) << trial;
      ASSERT_NEAR(fast.gam_im[mi], ref.gam_im[mi], 1e-5) << trial;
    }
  }
}

TEST(Tables, FastBuilderStableOverLongBlocks) {
  // 512-entry tables: the renormalized recurrence must not drift.
  const geometry::Vec3 radar{40000, 0, 8000};
  const geometry::Vec3 centre{0, 0, 0};
  const Quadratic2D q = range_quadratic(centre, radar, 0.5, 0.5);
  BlockTables ref;
  BlockTables fast;
  build_block_tables(q, q.f0 - 200.0, 0.416, kTwoPi * 64.05, 512, 512, ref);
  build_block_tables_fast(q, q.f0 - 200.0, 0.416, kTwoPi * 64.05, 512, 512,
                          fast);
  float worst = 0.0f;
  for (Index l = 0; l < 512; ++l) {
    const auto li = static_cast<std::size_t>(l);
    worst = std::max(worst, std::abs(fast.phi_re[li] - ref.phi_re[li]));
    worst = std::max(worst, std::abs(fast.phi_im[li] - ref.phi_im[li]));
  }
  EXPECT_LT(worst, 2e-5f);
  // Magnitudes stay on the unit circle.
  for (Index l = 0; l < 512; l += 61) {
    const auto li = static_cast<std::size_t>(l);
    EXPECT_NEAR(fast.phi_re[li] * fast.phi_re[li] +
                    fast.phi_im[li] * fast.phi_im[li],
                1.0f, 1e-4f);
  }
}

TEST(Tables, ResizeReusesCapacity) {
  BlockTables t;
  t.resize(64, 64);
  EXPECT_EQ(t.bin_a.size(), 64u);
  EXPECT_EQ(t.psi_re.size(), 64u);
  t.resize(16, 8);
  EXPECT_EQ(t.width, 16);
  EXPECT_EQ(t.height, 8);
  EXPECT_EQ(t.bin_a.size(), 16u);
  EXPECT_EQ(t.bin_b.size(), 8u);
}

TEST(BlockPlan, CoversRegionExactlyOnce) {
  const auto blocks = plan_blocks(3, 5, 100, 70, 32, 32);
  Index covered = 0;
  for (const auto& b : blocks) {
    EXPECT_GE(b.x0, 3);
    EXPECT_GE(b.y0, 5);
    EXPECT_LE(b.x0 + b.width, 103);
    EXPECT_LE(b.y0 + b.height, 75);
    EXPECT_GT(b.width, 0);
    EXPECT_LE(b.width, 32);
    covered += b.width * b.height;
  }
  EXPECT_EQ(covered, 100 * 70);
  // No pairwise overlap (sampled).
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      const bool overlap_x = blocks[i].x0 < blocks[j].x0 + blocks[j].width &&
                             blocks[j].x0 < blocks[i].x0 + blocks[i].width;
      const bool overlap_y = blocks[i].y0 < blocks[j].y0 + blocks[j].height &&
                             blocks[j].y0 < blocks[i].y0 + blocks[i].height;
      EXPECT_FALSE(overlap_x && overlap_y);
    }
  }
}

TEST(BlockPlan, ExactTilingHasUniformBlocks) {
  const auto blocks = plan_blocks(0, 0, 128, 128, 64, 64);
  EXPECT_EQ(blocks.size(), 4u);
  for (const auto& b : blocks) {
    EXPECT_EQ(b.width, 64);
    EXPECT_EQ(b.height, 64);
  }
}

TEST(BlockPlan, EmptyRegionYieldsNoBlocks) {
  EXPECT_TRUE(plan_blocks(0, 0, 0, 10, 8, 8).empty());
}

TEST(BlockPlan, RowMajorOrder) {
  const auto blocks = plan_blocks(0, 0, 64, 64, 32, 32);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].x0, 0);
  EXPECT_EQ(blocks[1].x0, 32);
  EXPECT_EQ(blocks[2].y0, 32);
}

}  // namespace
}  // namespace sarbp::asr
