// Signal-chain tests: windows, chirp synthesis, matched-filter range
// compression (peak position/phase), interpolators, and the baseline's
// polynomial trig with double/single argument reduction.
#include <gtest/gtest.h>

// GCC 12's -Warray-bounds misfires on std::complex<float> vector math
// inlined at -O3 (libstdc++'s __complex__ member access; GCC bug 101436
// family). The code indexes via size-checked spans; suppress for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif

#include <cmath>
#include <numbers>
#include <vector>

#include "common/rng.h"
#include "signal/chirp.h"
#include "signal/interp.h"
#include "signal/rangecomp.h"
#include "signal/trig.h"
#include "signal/window.h"

namespace sarbp::signal {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Window, RectIsAllOnes) {
  const auto w = make_window(WindowKind::kRect, 8);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HannEndsAtZeroPeaksAtCentre) {
  const auto w = make_window(WindowKind::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, HammingEndsAtPedestal) {
  const auto w = make_window(WindowKind::kHamming, 33);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
  EXPECT_NEAR(w[16], 1.0, 1e-12);
}

TEST(Window, AllWindowsSymmetric) {
  for (auto kind : {WindowKind::kHann, WindowKind::kHamming,
                    WindowKind::kBlackman, WindowKind::kTaylor}) {
    const auto w = make_window(kind, 41);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-10)
          << "kind " << static_cast<int>(kind) << " index " << i;
    }
  }
}

TEST(Window, TaylorIsPositiveAndNormalizedAtCentre) {
  const auto w = taylor_window(129, 4, -35.0);
  for (double v : w) EXPECT_GT(v, 0.0);
  // Centre is the maximum.
  const double centre = w[64];
  for (double v : w) EXPECT_LE(v, centre + 1e-12);
}

TEST(Window, TaylorSidelobesBelowSpec) {
  // DFT of a zero-padded Taylor window: sidelobes should sit near -35 dB.
  const std::size_t n = 64;
  const auto w = taylor_window(n, 4, -35.0);
  const std::size_t pad = 1024;
  std::vector<std::complex<double>> x(pad, std::complex<double>{});
  for (std::size_t i = 0; i < n; ++i) x[i] = w[i];
  // Direct DFT magnitude (small sizes, no FFT dependency needed here).
  double peak = 0.0;
  std::vector<double> mag(pad / 2);
  for (std::size_t k = 0; k < pad / 2; ++k) {
    std::complex<double> acc{};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * kPi * static_cast<double>(j * k) /
                           static_cast<double>(pad);
      acc += x[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    mag[k] = std::abs(acc);
    peak = std::max(peak, mag[k]);
  }
  // Beyond the mainlobe (few bins), all sidelobes < -30 dB of peak
  // (spec is -35; allow implementation margin).
  for (std::size_t k = 60; k < pad / 2; ++k) {
    EXPECT_LT(20.0 * std::log10(mag[k] / peak), -30.0) << "bin " << k;
  }
}

TEST(Chirp, ParameterDerivations) {
  ChirpParams p;
  p.carrier_hz = 10e9;
  p.bandwidth_hz = 300e6;
  p.duration_s = 10e-6;
  p.sample_rate_hz = 360e6;
  EXPECT_NEAR(p.chirp_rate(), 3e13, 1e6);
  EXPECT_NEAR(p.range_bin_spacing(), 299792458.0 / 720e6, 1e-9);
  EXPECT_NEAR(p.range_resolution(), 299792458.0 / 600e6, 1e-9);
  EXPECT_EQ(p.samples_per_pulse(), 3600u);
  EXPECT_NEAR(p.wavenumber(), 2.0 * 10e9 / 299792458.0, 1e-9);
}

TEST(Chirp, ValidateRejectsSubNyquist) {
  ChirpParams p;
  p.sample_rate_hz = p.bandwidth_hz / 2;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(Chirp, BasebandSamplesAreUnitModulus) {
  ChirpParams p;
  const auto s = baseband_chirp(p);
  EXPECT_EQ(s.size(), p.samples_per_pulse());
  for (const auto& v : s) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Chirp, InstantaneousFrequencySweepsBand) {
  // Phase difference between consecutive samples approximates 2*pi*f(t)/fs;
  // f sweeps from -B/2 to +B/2.
  ChirpParams p;
  const auto s = baseband_chirp(p);
  const double dt = 1.0 / p.sample_rate_hz;
  const double f_begin =
      std::arg(s[1] * std::conj(s[0])) / (2.0 * kPi * dt);
  const std::size_t n = s.size();
  const double f_end =
      std::arg(s[n - 1] * std::conj(s[n - 2])) / (2.0 * kPi * dt);
  EXPECT_NEAR(f_begin, -p.bandwidth_hz / 2, p.bandwidth_hz * 0.02);
  EXPECT_NEAR(f_end, p.bandwidth_hz / 2, p.bandwidth_hz * 0.02);
}

class RangeCompressionTest : public ::testing::Test {
 protected:
  ChirpParams chirp_;
  static constexpr std::size_t kWindow = 8192;
};

TEST_F(RangeCompressionTest, PointEchoPeaksAtDelayBin) {
  RangeCompressor rc(chirp_, kWindow, WindowKind::kRect);
  // Build a delayed replica at integer delay d.
  const auto replica = baseband_chirp(chirp_);
  const std::size_t d = 1500;
  std::vector<CDouble> raw(kWindow, CDouble{});
  for (std::size_t i = 0; i < replica.size() && d + i < kWindow; ++i) {
    raw[d + i] = replica[i];
  }
  std::vector<CFloat> out(kWindow);
  rc.compress(raw, out);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < kWindow; ++i) {
    if (std::abs(out[i]) > std::abs(out[peak])) peak = i;
  }
  EXPECT_EQ(peak, d);
}

TEST_F(RangeCompressionTest, PeakPhaseCarriesEchoPhase) {
  RangeCompressor rc(chirp_, kWindow, WindowKind::kRect);
  const auto replica = baseband_chirp(chirp_);
  const std::size_t d = 900;
  const CDouble carrier = std::polar(1.0, 1.2345);  // echo carrier phase
  std::vector<CDouble> raw(kWindow, CDouble{});
  for (std::size_t i = 0; i < replica.size(); ++i) raw[d + i] = replica[i] * carrier;
  std::vector<CFloat> out(kWindow);
  rc.compress(raw, out);
  EXPECT_NEAR(std::arg(CDouble(out[d].real(), out[d].imag())), 1.2345, 1e-2);
}

TEST_F(RangeCompressionTest, CompressionGainScalesWithPulseLength) {
  RangeCompressor rc(chirp_, kWindow, WindowKind::kRect);
  const auto replica = baseband_chirp(chirp_);
  std::vector<CDouble> raw(kWindow, CDouble{});
  for (std::size_t i = 0; i < replica.size(); ++i) raw[100 + i] = replica[i];
  std::vector<CFloat> out(kWindow);
  rc.compress(raw, out);
  // Normalized matched filter: unit-amplitude echo compresses to ~1 at peak.
  EXPECT_NEAR(std::abs(CDouble(out[100].real(), out[100].imag())), 1.0, 0.05);
}

TEST_F(RangeCompressionTest, LinearInSuperposition) {
  RangeCompressor rc(chirp_, kWindow, WindowKind::kTaylor);
  const auto replica = baseband_chirp(chirp_);
  std::vector<CDouble> raw_a(kWindow, CDouble{});
  std::vector<CDouble> raw_b(kWindow, CDouble{});
  for (std::size_t i = 0; i < replica.size(); ++i) {
    raw_a[200 + i] = replica[i];
    raw_b[2000 + i] = 0.5 * replica[i];
  }
  std::vector<CDouble> raw_sum(kWindow);
  for (std::size_t i = 0; i < kWindow; ++i) raw_sum[i] = raw_a[i] + raw_b[i];
  std::vector<CFloat> out_a(kWindow), out_b(kWindow), out_sum(kWindow);
  rc.compress(raw_a, out_a);
  rc.compress(raw_b, out_b);
  rc.compress(raw_sum, out_sum);
  for (std::size_t i = 0; i < kWindow; i += 37) {
    EXPECT_NEAR(out_sum[i].real(), out_a[i].real() + out_b[i].real(), 1e-3);
    EXPECT_NEAR(out_sum[i].imag(), out_a[i].imag() + out_b[i].imag(), 1e-3);
  }
}

TEST(Interp, LinearExactOnLinearData) {
  std::vector<CFloat> in = {{0, 0}, {2, -2}, {4, -4}, {6, -6}};
  const auto v = linear_interp<float>(in, 1.5);
  EXPECT_FLOAT_EQ(v.real(), 3.0f);
  EXPECT_FLOAT_EQ(v.imag(), -3.0f);
}

TEST(Interp, LinearAtIntegerBinReturnsSample) {
  std::vector<CFloat> in = {{1, 2}, {3, 4}, {5, 6}};
  const auto v = linear_interp<float>(in, 1.0);
  EXPECT_FLOAT_EQ(v.real(), 3.0f);
  EXPECT_FLOAT_EQ(v.imag(), 4.0f);
}

TEST(Interp, LinearOutOfRangeIsZero) {
  std::vector<CFloat> in = {{1, 1}, {2, 2}};
  EXPECT_EQ(linear_interp<float>(in, -0.5), CFloat{});
  EXPECT_EQ(linear_interp<float>(in, 1.5), CFloat{});  // needs in[2]
  EXPECT_EQ(linear_interp<float>(in, 10.0), CFloat{});
}

TEST(Interp, SincReconstructsBandlimitedTone) {
  // Samples of a slow complex tone; windowed-sinc should reconstruct
  // off-grid values much better than linear.
  const std::size_t n = 128;
  std::vector<CDouble> in(n);
  const double f = 0.11;  // cycles/sample, well below Nyquist
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = std::polar(1.0, 2.0 * kPi * f * static_cast<double>(i));
  }
  const double bin = 63.37;
  const CDouble expected = std::polar(1.0, 2.0 * kPi * f * bin);
  const CDouble sinc_v = sinc_interp(std::span<const CDouble>(in), bin);
  EXPECT_LT(std::abs(sinc_v - expected), 2e-3);
  const CDouble lin_v = [&] {
    const auto i = static_cast<std::size_t>(bin);
    const double frac = bin - static_cast<double>(i);
    return (1.0 - frac) * in[i] + frac * in[i + 1];
  }();
  EXPECT_GT(std::abs(lin_v - expected), std::abs(sinc_v - expected));
}

TEST(Interp, BilinearExactOnBilinearField) {
  Grid2D<float> img(4, 4);
  for (Index y = 0; y < 4; ++y) {
    for (Index x = 0; x < 4; ++x) {
      img.at(x, y) = static_cast<float>(2 * x + 3 * y + 1);
    }
  }
  EXPECT_NEAR(bilinear(img, 1.5, 2.25), 2 * 1.5 + 3 * 2.25 + 1, 1e-5);
  EXPECT_NEAR(bilinear(img, 0.0, 0.0), 1.0, 1e-6);
}

TEST(Interp, BilinearComplexMatchesComponents) {
  Grid2D<CFloat> img(3, 3);
  for (Index y = 0; y < 3; ++y) {
    for (Index x = 0; x < 3; ++x) {
      img.at(x, y) = CFloat(static_cast<float>(x), static_cast<float>(y));
    }
  }
  const CFloat v = bilinear(img, 0.5, 1.5);
  EXPECT_NEAR(v.real(), 0.5f, 1e-6);
  EXPECT_NEAR(v.imag(), 1.5f, 1e-6);
}

TEST(Interp, BilinearOutOfRangeIsZero) {
  Grid2D<CFloat> img(3, 3, CFloat{1.0f, 1.0f});
  EXPECT_EQ(bilinear(img, -0.1, 1.0), CFloat{});
  EXPECT_EQ(bilinear(img, 2.5, 1.0), CFloat{});
  EXPECT_EQ(bilinear(img, 1.0, 2.5), CFloat{});
}

TEST(Trig, ReduceToPiStaysInRange) {
  Rng rng(55);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-1e6, 1e6);
    const double r = reduce_to_pi(x);
    EXPECT_LE(std::abs(r), kPi + 1e-9);
    // Reduction preserves the angle modulo 2*pi.
    EXPECT_NEAR(std::sin(r), std::sin(x), 1e-9);
    EXPECT_NEAR(std::cos(r), std::cos(x), 1e-9);
  }
}

TEST(Trig, PolySinCosAccuracyOnReducedRange) {
  for (int i = -314; i <= 314; ++i) {
    const float x = static_cast<float>(i) * 0.01f;
    const SinCos sc = sincos_poly(x);
    EXPECT_NEAR(sc.sin, std::sin(static_cast<double>(x)), 5e-7) << x;
    EXPECT_NEAR(sc.cos, std::cos(static_cast<double>(x)), 5e-7) << x;
  }
}

TEST(Trig, BaselinePathAccurateForLargeArguments) {
  // 2*pi*k*r with r ~ 17 km, k ~ 64 -> arguments of magnitude ~7e6.
  Rng rng(66);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(6.8e6, 7.2e6);
    const SinCos sc = sincos_baseline(x);
    EXPECT_NEAR(sc.sin, std::sin(x), 2e-6);
    EXPECT_NEAR(sc.cos, std::cos(x), 2e-6);
  }
}

TEST(Trig, FloatReductionCollapsesAccuracy) {
  // The Fig. 8 12 dB story: reducing a ~7e6 argument in single precision
  // leaves ~0.5 rad errors. Verify the error is orders of magnitude worse
  // than the double-reduction path.
  Rng rng(77);
  double max_err_float = 0.0;
  double max_err_double = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(6.8e6, 7.2e6);
    const SinCos scf = sincos_float_reduction(static_cast<float>(x));
    const SinCos scd = sincos_baseline(x);
    max_err_float = std::max(max_err_float,
                             std::abs(scf.sin - std::sin(x)));
    max_err_double = std::max(max_err_double,
                              std::abs(scd.sin - std::sin(x)));
  }
  EXPECT_GT(max_err_float, 1e-2);
  EXPECT_LT(max_err_double, 1e-5);
  EXPECT_GT(max_err_float / max_err_double, 1e3);
}

}  // namespace
}  // namespace sarbp::signal
