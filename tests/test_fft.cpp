// FFT correctness: against the O(n^2) DFT, round-trip identity, Parseval,
// linearity, known closed forms, and Bluestein (non-power-of-two) parity —
// parameterized over a broad size sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/rng.h"
#include "common/grid2d.h"
#include "signal/fft.h"
#include "signal/fft2d.h"

namespace sarbp::signal {
namespace {

using std::complex;

std::vector<complex<double>> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<complex<double>> v(n);
  for (auto& x : v) x = {rng.normal(), rng.normal()};
  return v;
}

/// Direct O(n^2) DFT, forward convention exp(-2*pi*i*jk/n).
std::vector<complex<double>> direct_dft(const std::vector<complex<double>>& x) {
  const std::size_t n = x.size();
  std::vector<complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    complex<double> acc{};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(j * k % n) /
                           static_cast<double>(n);
      acc += x[j] * complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

double max_abs_diff(const std::vector<complex<double>>& a,
                    const std::vector<complex<double>>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesDirectDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 100 + n);
  const auto expected = direct_dft(x);
  fft<double>(x, FftDirection::kForward);
  EXPECT_LT(max_abs_diff(x, expected), 1e-9 * static_cast<double>(n))
      << "size " << n;
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 200 + n);
  auto x = original;
  Fft<double> plan(n);
  plan.forward(x);
  plan.inverse(x);
  EXPECT_LT(max_abs_diff(x, original), 1e-10 * static_cast<double>(n));
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 300 + n);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  fft<double>(x, FftDirection::kForward);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy);
}

TEST_P(FftSizes, Linearity) {
  const std::size_t n = GetParam();
  auto a = random_signal(n, 400 + n);
  auto b = random_signal(n, 500 + n);
  std::vector<complex<double>> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  Fft<double> plan(n);
  plan.forward(a);
  plan.forward(b);
  plan.forward(sum);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])));
  }
  EXPECT_LT(worst, 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));
INSTANTIATE_TEST_SUITE_P(Bluestein, FftSizes,
                         ::testing::Values(3, 5, 6, 7, 12, 31, 61, 100, 241,
                                           1000));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<complex<double>> x(16, complex<double>{});
  x[0] = 1.0;
  fft<double>(x, FftDirection::kForward);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<complex<double>> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(tone * j) /
                         static_cast<double>(n);
    x[j] = {std::cos(angle), std::sin(angle)};
  }
  fft<double>(x, FftDirection::kForward);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == tone) {
      EXPECT_NEAR(std::abs(x[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, FloatPrecisionRoundTrip) {
  Rng rng(77);
  std::vector<complex<float>> x(512);
  for (auto& v : x) {
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  }
  const auto original = x;
  Fft<float> plan(512);
  plan.forward(x);
  plan.inverse(x);
  float worst = 0.0f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(x[i] - original[i]));
  }
  EXPECT_LT(worst, 1e-4f);
}

TEST(Fft, NextPowerOfTwo) {
  EXPECT_EQ(Fft<double>::next_power_of_two(1), 1u);
  EXPECT_EQ(Fft<double>::next_power_of_two(2), 2u);
  EXPECT_EQ(Fft<double>::next_power_of_two(3), 4u);
  EXPECT_EQ(Fft<double>::next_power_of_two(1000), 1024u);
  EXPECT_EQ(Fft<double>::next_power_of_two(1024), 1024u);
}

TEST(Fft, IsPowerOfTwo) {
  EXPECT_TRUE(Fft<double>::is_power_of_two(1));
  EXPECT_TRUE(Fft<double>::is_power_of_two(64));
  EXPECT_FALSE(Fft<double>::is_power_of_two(0));
  EXPECT_FALSE(Fft<double>::is_power_of_two(63));
}

TEST(Fft, SizeMismatchThrows) {
  Fft<double> plan(8);
  std::vector<complex<double>> x(7);
  EXPECT_THROW(plan.forward(x), PreconditionError);
}

TEST(Fft2D, SeparableToneLandsInOneBin) {
  const Index w = 16, h = 8;
  Grid2D<complex<double>> g(w, h);
  const Index fx = 3, fy = 2;
  for (Index y = 0; y < h; ++y) {
    for (Index x = 0; x < w; ++x) {
      const double angle =
          2.0 * std::numbers::pi *
          (static_cast<double>(fx * x) / static_cast<double>(w) +
           static_cast<double>(fy * y) / static_cast<double>(h));
      g.at(x, y) = {std::cos(angle), std::sin(angle)};
    }
  }
  Fft2D<double> plan(w, h);
  plan.forward(g);
  for (Index y = 0; y < h; ++y) {
    for (Index x = 0; x < w; ++x) {
      const double expected = (x == fx && y == fy) ? static_cast<double>(w * h) : 0.0;
      EXPECT_NEAR(std::abs(g.at(x, y)), expected, 1e-8);
    }
  }
}

TEST(Fft2D, RoundTrip) {
  Rng rng(31);
  Grid2D<complex<double>> g(12, 10);  // non-power-of-two both axes
  for (auto& v : g.flat()) v = {rng.normal(), rng.normal()};
  Grid2D<complex<double>> original = g;
  Fft2D<double> plan(12, 10);
  plan.forward(g);
  plan.inverse(g);
  double worst = 0.0;
  for (Index i = 0; i < g.size(); ++i) {
    worst = std::max(worst, std::abs(g.flat()[static_cast<std::size_t>(i)] -
                                     original.flat()[static_cast<std::size_t>(i)]));
  }
  EXPECT_LT(worst, 1e-10);
}

TEST(Fft2D, MatchesRowColumnComposition) {
  Rng rng(41);
  const Index w = 8, h = 4;
  Grid2D<complex<double>> g(w, h);
  for (auto& v : g.flat()) v = {rng.normal(), rng.normal()};
  Grid2D<complex<double>> expected = g;
  // Manual: FFT rows then columns.
  Fft<double> row_plan(static_cast<std::size_t>(w));
  for (Index y = 0; y < h; ++y) row_plan.forward(expected.row(y));
  Fft<double> col_plan(static_cast<std::size_t>(h));
  std::vector<complex<double>> col(static_cast<std::size_t>(h));
  for (Index x = 0; x < w; ++x) {
    for (Index y = 0; y < h; ++y) col[static_cast<std::size_t>(y)] = expected.at(x, y);
    col_plan.forward(col);
    for (Index y = 0; y < h; ++y) expected.at(x, y) = col[static_cast<std::size_t>(y)];
  }
  Fft2D<double> plan(w, h);
  plan.forward(g);
  for (Index i = 0; i < g.size(); ++i) {
    EXPECT_LT(std::abs(g.flat()[static_cast<std::size_t>(i)] -
                       expected.flat()[static_cast<std::size_t>(i)]),
              1e-10);
  }
}

}  // namespace
}  // namespace sarbp::signal
