// Sharded formation-service tests: routing parity against the single-node
// path (byte-identical for single-shard and grid-split jobs, SNR-bounded
// for the pulse-scatter reduction), rank-fault injection resolving jobs as
// kFailed instead of hanging, and a multi-tenant sharded replay smoke.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/snr.h"
#include "service/service.h"
#include "service/trace.h"
#include "test_helpers.h"

namespace sarbp::service {
namespace {

using namespace std::chrono_literals;
using sarbp::testing::ScenarioConfig;
using sarbp::testing::SmallScenario;
using sarbp::testing::make_scenario;

struct Fixture {
  SmallScenario scenario;
  std::shared_ptr<const sim::PhaseHistory> pulses;
};

Fixture make_fixture(Index image, Index pulses, std::uint64_t seed = 11) {
  ScenarioConfig cfg;
  cfg.image = image;
  cfg.pulses = pulses;
  cfg.seed = seed;
  SmallScenario s = make_scenario(cfg);
  auto history = std::make_shared<const sim::PhaseHistory>(s.history);
  return {std::move(s), std::move(history)};
}

ImageFormationRequest make_request(const Fixture& f, Index block = 16) {
  ImageFormationRequest req;
  req.grid = f.scenario.grid;
  req.pulses = f.pulses;
  req.asr_block_w = req.asr_block_h = block;
  return req;
}

/// Forms one image through a service built from `sc` and returns it.
Grid2D<CFloat> form_once(ServiceConfig sc, const Fixture& f,
                         Index block = 16) {
  ImageFormationService service(std::move(sc));
  auto outcome = service.submit(make_request(f, block));
  EXPECT_TRUE(outcome.admitted());
  const JobResult& result = outcome.handle->wait();
  EXPECT_EQ(result.state, JobState::kDone) << result.error;
  return result.image;
}

TEST(ClusterService, SingleShardJobsAreByteIdenticalToLocal) {
  // A job under the small-job threshold routes whole to one shard, whose
  // worker builds the same full-region plan the local path would; the
  // gathered tile must match the single-node image byte for byte.
  const Fixture f = make_fixture(32, 12);

  ServiceConfig local;
  local.workers = 1;
  const Grid2D<CFloat> reference = form_once(local, f);

  ServiceConfig sharded;
  sharded.shards = 2;  // 32*32 = 1024 <= shard_small_pixels: single-shard
  const Grid2D<CFloat> image = form_once(sharded, f);

  EXPECT_TRUE(image == reference);
}

TEST(ClusterService, GridSplitIsBitIdenticalToLocal) {
  // Band cuts land on ASR block boundaries anchored at the region origin,
  // so each shard computes exactly the blocks the full plan would, and the
  // gather copies disjoint sub-rectangles: no floating-point reduction at
  // all, hence exact equality.
  const Fixture f = make_fixture(48, 12);

  ServiceConfig local;
  local.workers = 1;
  const Grid2D<CFloat> reference = form_once(local, f);

  ServiceConfig sharded;
  sharded.shards = 2;
  sharded.shard_small_pixels = 16;  // force the splitter for this job
  sharded.shard_strategy = ShardStrategy::kGridSplit;
  const Grid2D<CFloat> image = form_once(sharded, f);

  EXPECT_TRUE(image == reference);
}

TEST(ClusterService, PulseScatterMatchesLocalWithinReductionTolerance) {
  // Pulse scatter sums partial tiles in shard-index order — a different
  // float reduction order than the single-node pulse loop, so the images
  // agree to reduction precision (documented in DESIGN.md), not bytes.
  const Fixture f = make_fixture(48, 12);

  ServiceConfig local;
  local.workers = 1;
  const Grid2D<CFloat> reference = form_once(local, f);

  ServiceConfig sharded;
  sharded.shards = 2;
  sharded.shard_small_pixels = 16;
  sharded.shard_strategy = ShardStrategy::kPulseScatter;
  const Grid2D<CFloat> image = form_once(sharded, f);

  EXPECT_GT(snr_db(image, reference), 70.0);
}

TEST(ClusterService, ShardedAutoStrategyOnDegenerateRegions) {
  // 1xN and Nx1 grids cannot be band-split into two block-aligned pieces,
  // so kAuto must fall back (pulse scatter or single) and still produce a
  // faithful image rather than rejecting or crashing.
  for (const auto& shape :
       {std::pair<Index, Index>{1, 48}, std::pair<Index, Index>{48, 1}}) {
    const Fixture f = make_fixture(48, 12);
    ImageFormationRequest base = make_request(f);
    base.region = Region{0, 0, shape.first, shape.second};

    ServiceConfig local;
    local.workers = 1;
    ImageFormationService reference_service(local);
    auto ref_outcome = reference_service.submit(ImageFormationRequest(base));
    ASSERT_TRUE(ref_outcome.admitted());
    const JobResult& reference = ref_outcome.handle->wait();
    ASSERT_EQ(reference.state, JobState::kDone) << reference.error;

    ServiceConfig sharded;
    sharded.shards = 2;
    sharded.shard_small_pixels = 4;
    ImageFormationService service(sharded);
    auto outcome = service.submit(std::move(base));
    ASSERT_TRUE(outcome.admitted());
    const JobResult& result = outcome.handle->wait();
    ASSERT_EQ(result.state, JobState::kDone) << result.error;
    EXPECT_GT(snr_db(result.image, reference.image), 70.0)
        << shape.first << "x" << shape.second;
  }
}

TEST(ClusterService, ThrowingShardFailsJobInsteadOfHanging) {
  // The regression the abort protocol exists for: a rank that dies while
  // holding a dispatched part must fail the job promptly — before the fix,
  // the gather thread waited forever on a reply that could never come.
  const Fixture f = make_fixture(32, 12);

  ServiceConfig sc;
  sc.shards = 2;
  sc.shard_fault_hook = [](int /*shard*/, std::uint64_t seq) {
    if (seq == 1) throw std::runtime_error("injected shard fault");
  };
  ImageFormationService service(sc);

  auto outcome = service.submit(make_request(f));
  ASSERT_TRUE(outcome.admitted());
  ASSERT_TRUE(outcome.handle->wait_for(10s))
      << "job never resolved after the shard died";
  const JobResult& result = outcome.handle->result();
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_NE(result.error.find("shard cluster aborted"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("injected shard fault"), std::string::npos)
      << result.error;
  service.drain();  // must return despite the dead cluster
}

TEST(ClusterService, ShardedMultiTenantReplaySmoke) {
  // End-to-end: the repeated-scene multi-tenant trace through a sharded
  // service, with the threshold forcing every job through the splitter.
  obs::Registry reg;
  ServiceConfig sc;
  sc.workers = 1;
  sc.shards = 2;
  sc.shard_small_pixels = 16;
  sc.metrics = &reg;
  ImageFormationService service(sc);

  const Trace trace = make_repeated_scene_trace(2, 2, 48, 12, 16);
  const ReplayStats stats = replay_trace(trace, service);
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.done, 4u);
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("tenant.tenant-1.submitted").value(), 2u);
    EXPECT_EQ(reg.counter("tenant.tenant-2.submitted").value(), 2u);
    EXPECT_EQ(reg.counter("shard.parts.dispatched").value(), 8u);
  }
}

}  // namespace
}  // namespace sarbp::service
