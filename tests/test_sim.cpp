// Simulator tests: reflector visibility windows, cluster scene generation,
// phase-history layout (AoS/SoA parity), and the collector — including
// agreement between the full-waveform chain (chirp -> echo -> matched
// filter) and the analytic ideal response.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "common/rng.h"
#include "geometry/trajectory.h"
#include "sim/collector.h"
#include "sim/phase_history.h"
#include "sim/scene.h"
#include "test_helpers.h"

namespace sarbp::sim {
namespace {

TEST(Reflector, VisibilityWindow) {
  Reflector r;
  r.appear_s = 5.0;
  r.disappear_s = 10.0;
  EXPECT_FALSE(r.visible_at(4.9));
  EXPECT_TRUE(r.visible_at(5.0));
  EXPECT_TRUE(r.visible_at(9.99));
  EXPECT_FALSE(r.visible_at(10.0));
}

TEST(Reflector, DefaultAlwaysVisible) {
  Reflector r;
  EXPECT_TRUE(r.visible_at(0.0));
  EXPECT_TRUE(r.visible_at(1e9));
}

TEST(Scene, VisibleAtFilters) {
  ReflectorScene scene;
  Reflector a;
  a.disappear_s = 1.0;
  Reflector b;
  b.appear_s = 2.0;
  scene.add(a);
  scene.add(b);
  EXPECT_EQ(scene.visible_at(0.5).size(), 1u);
  EXPECT_EQ(scene.visible_at(1.5).size(), 0u);
  EXPECT_EQ(scene.visible_at(2.5).size(), 1u);
}

TEST(Scene, ClusterSceneIsDeterministicAndInBounds) {
  geometry::ImageGrid grid(256, 256, 1.0);
  ClusterSceneParams params;
  Rng rng1(99);
  Rng rng2(99);
  const auto s1 = make_cluster_scene(grid, params, rng1);
  const auto s2 = make_cluster_scene(grid, params, rng2);
  ASSERT_EQ(s1.size(), s2.size());
  EXPECT_EQ(s1.size(),
            static_cast<std::size_t>(params.clusters *
                                     params.reflectors_per_cluster));
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1.reflectors()[i].position, s2.reflectors()[i].position);
    // Clusters live in the central region; allow the cluster radius spill.
    EXPECT_LE(std::abs(s1.reflectors()[i].position.x),
              0.5 * grid.extent_x() + params.cluster_radius_m);
    EXPECT_GE(s1.reflectors()[i].amplitude, params.amplitude_min);
    EXPECT_LE(s1.reflectors()[i].amplitude, params.amplitude_max);
  }
}

TEST(PhaseHistory, ShapeAndMetadata) {
  PhaseHistory ph(4, 100, 0.5, 64.0);
  EXPECT_EQ(ph.num_pulses(), 4);
  EXPECT_EQ(ph.samples_per_pulse(), 100);
  EXPECT_DOUBLE_EQ(ph.bin_spacing(), 0.5);
  EXPECT_DOUBLE_EQ(ph.wavenumber(), 64.0);
  EXPECT_EQ(ph.pulse(0).size(), 100u);
  ph.meta(2).start_range_m = 123.0;
  EXPECT_DOUBLE_EQ(ph.meta(2).start_range_m, 123.0);
  EXPECT_EQ(ph.payload_bytes(), 4u * 100u * sizeof(CFloat));
}

TEST(PhaseHistory, SoaMirrorsAos) {
  PhaseHistory ph(2, 8, 1.0, 1.0);
  Rng rng(5);
  for (Index p = 0; p < 2; ++p) {
    for (auto& s : ph.pulse(p)) {
      s = CFloat(static_cast<float>(rng.normal()),
                 static_cast<float>(rng.normal()));
    }
  }
  EXPECT_FALSE(ph.has_soa());
  ph.build_soa();
  ASSERT_TRUE(ph.has_soa());
  for (Index p = 0; p < 2; ++p) {
    const auto aos = ph.pulse(p);
    const auto re = ph.pulse_re(p);
    const auto im = ph.pulse_im(p);
    for (std::size_t i = 0; i < aos.size(); ++i) {
      EXPECT_EQ(re[i], aos[i].real());
      EXPECT_EQ(im[i], aos[i].imag());
    }
  }
}

class CollectorTest : public ::testing::Test {
 protected:
  static constexpr double kTwoPi = 2.0 * std::numbers::pi;

  /// One reflector dead-centre, tiny scene, few pulses.
  testing::SmallScenario single_reflector(CollectionFidelity fidelity) {
    testing::ScenarioConfig cfg;
    cfg.image = 32;
    cfg.pulses = 4;
    cfg.fidelity = fidelity;
    cfg.perturbation_sigma = 0.0;
    testing::SmallScenario s = testing::make_scenario(cfg);
    // Replace the random scene with one exactly-centred unit reflector.
    Reflector r;
    r.position = s.grid.centre();
    s.scene = ReflectorScene({r});
    CollectorParams params;
    params.fidelity = fidelity;
    Rng rng(1);
    s.history = collect(params, s.grid, s.scene, s.poses, rng);
    return s;
  }
};

TEST_F(CollectorTest, IdealResponsePeaksAtTrueRangeBin) {
  const auto s = single_reflector(CollectionFidelity::kIdealResponse);
  for (Index p = 0; p < s.history.num_pulses(); ++p) {
    const auto& meta = s.history.meta(p);
    const double r = geometry::distance(
        s.grid.centre(), s.poses[static_cast<std::size_t>(p)].true_position);
    const double expected_bin = (r - meta.start_range_m) / s.history.bin_spacing();
    const auto samples = s.history.pulse(p);
    std::size_t peak = 0;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      if (std::abs(samples[i]) > std::abs(samples[peak])) peak = i;
    }
    EXPECT_NEAR(static_cast<double>(peak), expected_bin, 1.0) << "pulse " << p;
  }
}

TEST_F(CollectorTest, IdealResponsePhaseIsMinusTwoPiKR) {
  const auto s = single_reflector(CollectionFidelity::kIdealResponse);
  const auto& meta = s.history.meta(0);
  const double r = geometry::distance(s.grid.centre(),
                                      s.poses[0].true_position);
  const double bin = (r - meta.start_range_m) / s.history.bin_spacing();
  const auto samples = s.history.pulse(0);
  const auto v = samples[static_cast<std::size_t>(std::llround(bin))];
  const double expected =
      std::remainder(-kTwoPi * s.history.wavenumber() * r, kTwoPi);
  EXPECT_NEAR(std::remainder(std::arg(std::complex<double>(v.real(), v.imag())) -
                                 expected,
                             kTwoPi),
              0.0, 0.2);
}

TEST_F(CollectorTest, FullWaveformPeaksAtSameBinAsIdeal) {
  const auto full = single_reflector(CollectionFidelity::kFullWaveform);
  const auto ideal = single_reflector(CollectionFidelity::kIdealResponse);
  // Peak bin of the matched-filtered full waveform must agree with the
  // analytic response's (same geometry, same seed -> same poses).
  const auto fw = full.history.pulse(0);
  const auto id = ideal.history.pulse(0);
  auto argmax = [](std::span<const CFloat> v) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (std::abs(v[i]) > std::abs(v[best])) best = i;
    }
    return best;
  };
  // Windows can differ in length; compare peak *ranges*, not raw indices.
  const double r_fw = full.history.meta(0).start_range_m +
                      static_cast<double>(argmax(fw)) * full.history.bin_spacing();
  const double r_id = ideal.history.meta(0).start_range_m +
                      static_cast<double>(argmax(id)) * ideal.history.bin_spacing();
  EXPECT_NEAR(r_fw, r_id, 2.0 * full.history.bin_spacing());
}

TEST_F(CollectorTest, FullWaveformPeakPhaseMatchesCarrier) {
  const auto s = single_reflector(CollectionFidelity::kFullWaveform);
  const auto& meta = s.history.meta(0);
  const double r = geometry::distance(s.grid.centre(), s.poses[0].true_position);
  const double bin = (r - meta.start_range_m) / s.history.bin_spacing();
  const auto samples = s.history.pulse(0);
  const auto v = samples[static_cast<std::size_t>(std::llround(bin))];
  const double measured = std::arg(std::complex<double>(v.real(), v.imag()));
  const double expected = -kTwoPi * s.history.wavenumber() * r;
  EXPECT_NEAR(std::remainder(measured - expected, kTwoPi), 0.0, 0.3);
}

TEST(Collector, RandomFidelityFillsEverySample) {
  testing::ScenarioConfig cfg;
  cfg.image = 16;
  cfg.pulses = 3;
  cfg.fidelity = CollectionFidelity::kRandom;
  const auto s = testing::make_scenario(cfg);
  Index nonzero = 0;
  for (Index p = 0; p < s.history.num_pulses(); ++p) {
    for (const auto& v : s.history.pulse(p)) {
      if (v != CFloat{}) ++nonzero;
    }
  }
  EXPECT_EQ(nonzero, s.history.num_pulses() * s.history.samples_per_pulse());
}

TEST(Collector, NoiseChangesSamples) {
  testing::ScenarioConfig cfg;
  cfg.image = 16;
  cfg.pulses = 2;
  auto clean = testing::make_scenario(cfg);

  Rng rng(cfg.seed);
  (void)rng;
  CollectorParams noisy_params;
  noisy_params.noise_sigma = 0.1;
  Rng rng2(123);
  const auto noisy = collect(noisy_params, clean.grid, clean.scene,
                             clean.poses, rng2);
  double diff = 0.0;
  for (Index p = 0; p < clean.history.num_pulses(); ++p) {
    const auto a = clean.history.pulse(p);
    const auto b = noisy.pulse(p);
    for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(Collector, TransientReflectorAbsentBeforeAppearance) {
  testing::ScenarioConfig cfg;
  cfg.image = 32;
  cfg.pulses = 8;
  auto s = testing::make_scenario(cfg);
  // One reflector that appears only after the collection ends.
  Reflector r;
  r.position = s.grid.centre();
  r.appear_s = 1e6;
  s.scene = ReflectorScene({r});
  CollectorParams params;
  Rng rng(1);
  const auto history = collect(params, s.grid, s.scene, s.poses, rng);
  for (Index p = 0; p < history.num_pulses(); ++p) {
    for (const auto& v : history.pulse(p)) {
      EXPECT_EQ(v, CFloat{});
    }
  }
}

TEST(Collector, WindowCoversSceneSpan) {
  testing::ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 4;
  const auto s = testing::make_scenario(cfg);
  // Every grid pixel's range must land strictly inside the receive window.
  for (Index p = 0; p < s.history.num_pulses(); ++p) {
    const auto& meta = s.history.meta(p);
    for (Index corner = 0; corner < 4; ++corner) {
      const Index x = (corner & 1) ? s.grid.width() - 1 : 0;
      const Index y = (corner & 2) ? s.grid.height() - 1 : 0;
      const double r = geometry::distance(
          s.grid.position(x, y),
          s.poses[static_cast<std::size_t>(p)].recorded_position);
      const double bin = (r - meta.start_range_m) / s.history.bin_spacing();
      EXPECT_GT(bin, 0.0);
      EXPECT_LT(bin, static_cast<double>(s.history.samples_per_pulse() - 1));
    }
  }
}

TEST(Collector, CollectBuildsSoa) {
  testing::ScenarioConfig cfg;
  cfg.image = 16;
  cfg.pulses = 2;
  const auto s = testing::make_scenario(cfg);
  EXPECT_TRUE(s.history.has_soa());
}

}  // namespace
}  // namespace sarbp::sim
