// Cluster-substrate tests: point-to-point messaging, barrier semantics,
// collectives against serial references (parameterized over rank counts),
// halo exchange on rank grids, the torus model, and distributed
// backprojection equivalence to single-rank runs.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>

#include "cluster/collectives.h"
#include "cluster/comm.h"
#include "cluster/distributed.h"
#include "cluster/halo.h"
#include "cluster/shard.h"
#include "cluster/torus_model.h"
#include "common/snr.h"
#include "test_helpers.h"

namespace sarbp::cluster {
namespace {

TEST(Comm, PointToPointDelivery) {
  run_cluster(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 7, 42);
      EXPECT_EQ(comm.recv_value<int>(1, 8), 43);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 7), 42);
      comm.send_value<int>(0, 8, 43);
    }
  });
}

TEST(Comm, TagAndSourceMatching) {
  // Messages with different tags must not cross; order within a (source,
  // tag) channel is FIFO.
  run_cluster(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 100);
      comm.send_value<int>(1, 2, 200);
      comm.send_value<int>(1, 1, 101);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 2), 200);  // tag 2 first
      EXPECT_EQ(comm.recv_value<int>(0, 1), 100);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 101);
    }
  });
}

TEST(Comm, VectorPayloadsRoundTrip) {
  run_cluster(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data(1000);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send_vec<double>(1, 3, data);
    } else {
      const auto data = comm.recv_vec<double>(0, 3);
      ASSERT_EQ(data.size(), 1000u);
      EXPECT_DOUBLE_EQ(data[999], 999.0);
    }
  });
}

TEST(Comm, BarrierSynchronizesPhases) {
  std::atomic<int> counter{0};
  run_cluster(4, [&](Communicator& comm) {
    counter.fetch_add(1);
    comm.barrier();
    // After the barrier every rank's increment must be visible.
    EXPECT_EQ(counter.load(), 4);
    comm.barrier();
  });
}

TEST(Comm, SingleRankClusterWorks) {
  run_cluster(1, [](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
  });
}

TEST(Comm, RankExceptionPropagates) {
  EXPECT_THROW(run_cluster(2,
                           [](Communicator& comm) {
                             // Both ranks throw — no one is left waiting.
                             ensure(false, "rank failure " +
                                               std::to_string(comm.rank()));
                           }),
               PreconditionError);
}

TEST(Comm, AbortWakesBlockedRecv) {
  // The rank-failure hang this repo shipped with: rank 1 blocks on a recv
  // that rank 0 (dead from an exception) will never satisfy. The abort
  // protocol must wake the recv with ClusterAborted and surface rank 0's
  // root cause from run_cluster, not rank 1's secondary unwind.
  try {
    run_cluster(2, [](Communicator& comm) {
      if (comm.rank() == 0) {
        ensure(false, "rank 0 deliberate failure");
      } else {
        (void)comm.recv(0, 99);  // would hang forever without the abort
        FAIL() << "recv returned despite a dead peer";
      }
    });
    FAIL() << "run_cluster swallowed the rank failure";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("deliberate"), std::string::npos);
  }
}

TEST(Comm, AbortWakesBlockedBarrier) {
  // Same hang through the barrier path: a waiter whose peer died before
  // arriving must unwind, and the reported error is the root cause (a
  // plain runtime_error here, not the ClusterAborted it triggered).
  try {
    run_cluster(2, [](Communicator& comm) {
      if (comm.rank() == 0) throw std::runtime_error("boom at startup");
      comm.barrier();
      FAIL() << "barrier completed despite a dead peer";
    });
    FAIL() << "run_cluster swallowed the rank failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at startup");
  }
}

TEST(ShardCluster, FrontendRoundTripAndAbortReporting) {
  {
    // Healthy pool: the extra front-end endpoint round-trips messages with
    // both ranks, and a clean shutdown leaves no error recorded.
    ShardCluster pool(2, [](Communicator& comm) {
      const int frontend = comm.size() - 1;
      for (;;) {
        const int v = comm.recv_value<int>(frontend, 5);
        if (v < 0) break;  // shutdown sentinel
        comm.send_value<int>(frontend, 6, v * 10 + comm.rank());
      }
    });
    Communicator& fe = pool.frontend();
    fe.send_value<int>(0, 5, 1);
    fe.send_value<int>(1, 5, 2);
    EXPECT_EQ(fe.recv_value<int>(0, 6), 10);
    EXPECT_EQ(fe.recv_value<int>(1, 6), 21);
    fe.send_value<int>(0, 5, -1);
    fe.send_value<int>(1, 5, -1);
    pool.join();
    EXPECT_FALSE(pool.aborted());
    EXPECT_TRUE(pool.first_error().empty());
  }
  {
    // Faulty pool: a throwing rank aborts the cluster (waking its blocked
    // peer) and its message is reported as the first error.
    ShardCluster pool(2, [](Communicator& comm) {
      const int frontend = comm.size() - 1;
      if (comm.rank() == 0) throw std::runtime_error("shard down");
      (void)comm.recv(frontend, 5);  // unblocked by the abort
    });
    pool.join();
    EXPECT_TRUE(pool.aborted());
    EXPECT_NE(pool.first_error().find("shard down"), std::string::npos);
  }
}

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BroadcastReachesEveryRank) {
  const int ranks = GetParam();
  run_cluster(ranks, [&](Communicator& comm) {
    std::vector<int> values;
    if (comm.rank() == 0) values = {1, 2, 3, 4, 5};
    broadcast(comm, values, 0);
    ASSERT_EQ(values.size(), 5u);
    EXPECT_EQ(values[4], 5);
  });
}

TEST_P(CollectiveSweep, GatherConcatenatesInRankOrder) {
  const int ranks = GetParam();
  run_cluster(ranks, [&](Communicator& comm) {
    const int mine[2] = {comm.rank() * 10, comm.rank() * 10 + 1};
    const auto all = gather<int>(comm, std::span<const int>(mine, 2), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * ranks));
      for (int r = 0; r < ranks; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r * 10);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveSweep, AllReduceSumMatchesSerial) {
  const int ranks = GetParam();
  run_cluster(ranks, [&](Communicator& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    const double total = allreduce_sum(comm, mine);
    EXPECT_DOUBLE_EQ(total, ranks * (ranks + 1) / 2.0);
  });
}

TEST_P(CollectiveSweep, VectorAllReduce) {
  const int ranks = GetParam();
  run_cluster(ranks, [&](Communicator& comm) {
    const float mine[3] = {1.0f, static_cast<float>(comm.rank()), -1.0f};
    const auto sum = allreduce_sum<float>(comm, std::span<const float>(mine, 3));
    ASSERT_EQ(sum.size(), 3u);
    EXPECT_FLOAT_EQ(sum[0], static_cast<float>(ranks));
    EXPECT_FLOAT_EQ(sum[1], static_cast<float>(ranks * (ranks - 1) / 2));
    EXPECT_FLOAT_EQ(sum[2], -static_cast<float>(ranks));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Halo, ExchangeFillsMarginsFromNeighbours) {
  // 2x2 rank grid, interior 6x6, halo 2. Each rank fills its interior with
  // its rank id; after exchange every margin must carry the neighbour's id.
  const RankGrid ranks{2, 2};
  const Index interior = 6, halo = 2;
  run_cluster(4, [&](Communicator& comm) {
    Grid2D<int> tile(interior + 2 * halo, interior + 2 * halo, -1);
    for (Index y = halo; y < halo + interior; ++y) {
      for (Index x = halo; x < halo + interior; ++x) {
        tile.at(x, y) = comm.rank();
      }
    }
    exchange_halo(comm, ranks, tile, interior, interior, halo);
    const Index rx = ranks.rx_of(comm.rank());
    const Index ry = ranks.ry_of(comm.rank());
    // Horizontal neighbour margin.
    if (rx + 1 < ranks.ranks_x) {
      EXPECT_EQ(tile.at(halo + interior, halo + 1),
                ranks.rank_of(rx + 1, ry));
    }
    if (rx > 0) {
      EXPECT_EQ(tile.at(0, halo + 1), ranks.rank_of(rx - 1, ry));
      EXPECT_EQ(tile.at(1, halo + 1), ranks.rank_of(rx - 1, ry));
    }
    // Vertical neighbour margin.
    if (ry + 1 < ranks.ranks_y) {
      EXPECT_EQ(tile.at(halo + 1, halo + interior),
                ranks.rank_of(rx, ry + 1));
    }
    if (ry > 0) {
      EXPECT_EQ(tile.at(halo + 1, 0), ranks.rank_of(rx, ry - 1));
    }
    // Corner margin (diagonal neighbour).
    if (rx + 1 < ranks.ranks_x && ry + 1 < ranks.ranks_y) {
      EXPECT_EQ(tile.at(halo + interior, halo + interior),
                ranks.rank_of(rx + 1, ry + 1));
    }
    // Image-edge margins stay untouched.
    if (rx == 0) {
      EXPECT_EQ(tile.at(0, halo + 1), rx > 0 ? 0 : -1);
    }
  });
}

/// Property sweep: halo exchange must deliver every neighbour's strip
/// content for arbitrary rank-grid shapes and halo widths. Each rank fills
/// its interior with a position-encoding value (rank*10000 + y*100 + x in
/// *global* coordinates), so received margins can be checked against the
/// exact cells the neighbour owns.
class HaloSweep
    : public ::testing::TestWithParam<std::tuple<Index, Index, Index>> {};

TEST_P(HaloSweep, MarginsCarryNeighbourCells) {
  const auto [rx_count, ry_count, halo] = GetParam();
  const RankGrid ranks{rx_count, ry_count};
  const Index interior = 6;
  run_cluster(static_cast<int>(rx_count * ry_count), [&](Communicator& comm) {
    const Index rx = ranks.rx_of(comm.rank());
    const Index ry = ranks.ry_of(comm.rank());
    auto encode = [&](Index gx, Index gy) {
      return static_cast<int>(gy * 1000 + gx);
    };
    Grid2D<int> tile(interior + 2 * halo, interior + 2 * halo, -1);
    for (Index y = 0; y < interior; ++y) {
      for (Index x = 0; x < interior; ++x) {
        tile.at(halo + x, halo + y) =
            encode(rx * interior + x, ry * interior + y);
      }
    }
    exchange_halo(comm, ranks, tile, interior, interior, halo);
    // Every margin cell with an in-image global coordinate must hold the
    // encoding of that global cell; off-image margins stay -1.
    for (Index ty = 0; ty < tile.height(); ++ty) {
      for (Index tx = 0; tx < tile.width(); ++tx) {
        const bool in_interior = tx >= halo && tx < halo + interior &&
                                 ty >= halo && ty < halo + interior;
        if (in_interior) continue;
        const Index gx = rx * interior + (tx - halo);
        const Index gy = ry * interior + (ty - halo);
        const bool exists = gx >= 0 && gx < rx_count * interior && gy >= 0 &&
                            gy < ry_count * interior;
        if (exists) {
          ASSERT_EQ(tile.at(tx, ty), encode(gx, gy))
              << "rank " << comm.rank() << " tile (" << tx << "," << ty << ")";
        } else {
          ASSERT_EQ(tile.at(tx, ty), -1);
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, HaloSweep,
    ::testing::Values(std::make_tuple(Index{1}, Index{1}, Index{2}),
                      std::make_tuple(Index{2}, Index{1}, Index{1}),
                      std::make_tuple(Index{1}, Index{3}, Index{2}),
                      std::make_tuple(Index{2}, Index{2}, Index{3}),
                      std::make_tuple(Index{3}, Index{2}, Index{1}),
                      std::make_tuple(Index{3}, Index{3}, Index{2})));

TEST(Halo, ZeroHaloIsNoop) {
  const RankGrid ranks{2, 1};
  run_cluster(2, [&](Communicator& comm) {
    Grid2D<float> tile(4, 4, 1.0f);
    exchange_halo(comm, ranks, tile, 4, 4, 0);
    EXPECT_EQ(tile.at(0, 0), 1.0f);
  });
}

TEST(Torus, HopAndBisectionScaling) {
  InterconnectModel model;
  // 64-node torus: k = 4, average hops = 3 * 4/4 = 3.
  EXPECT_NEAR(model.average_hops(64), 3.0, 1e-9);
  // Bisection: 2 * k^2 * 2 GB/s = 64 GB/s.
  EXPECT_NEAR(model.bisection_gbps(64), 64.0, 1e-9);
  EXPECT_GT(model.average_hops(512), model.average_hops(64));
}

TEST(Torus, TimingHelpers) {
  InterconnectModel model;
  EXPECT_NEAR(model.mpi_seconds(2e9), 1.0, 1e-12);
  EXPECT_NEAR(model.disk_seconds(200e6), 1.0, 1e-12);
}

TEST(Torus, CommunicationVolumesScale) {
  const auto one = communication_volumes(1, 4096, 2809, 6000, 31, 25, 25);
  const auto sixteen = communication_volumes(16, 4096, 2809, 6000, 31, 25, 25);
  // Pulse scatter and disk recording shrink with the per-node pulse share;
  // boundaries shrink with the tile edge; image exchange with the slice.
  EXPECT_NEAR(one.pulse_scatter_bytes / 16.0, sixteen.pulse_scatter_bytes, 1.0);
  EXPECT_GT(one.boundary_bytes, sixteen.boundary_bytes);
  EXPECT_NEAR(one.disk_bytes / 16.0, sixteen.disk_bytes, 1.0);
  EXPECT_NEAR(one.image_exchange_bytes / 16.0, sixteen.image_exchange_bytes,
              1.0);
}

TEST(Torus, PulseDistributionMatchesPaperQuote) {
  // §4.1/Fig. 4: distributing the input pulses takes ~9 ms at 16 nodes
  // (13K image, S = 19K, N = 2809) over 2 GB/s MPI.
  InterconnectModel model;
  const auto v = communication_volumes(16, 13000, 2809, 19000, 31, 25, 25);
  EXPECT_NEAR(1e3 * model.mpi_seconds(v.pulse_scatter_bytes), 9.0, 6.0);
}

TEST(Distributed, MatchesSingleRankImage) {
  sarbp::testing::ScenarioConfig cfg;
  cfg.image = 96;
  cfg.pulses = 16;
  const auto s = sarbp::testing::make_scenario(cfg);
  bp::BackprojectOptions options;
  options.threads = 1;
  options.min_region_edge = 32;

  const Grid2D<CFloat> single =
      distributed_backprojection(1, s.history, s.grid, options);
  for (int ranks : {2, 4}) {
    DistributedReport report;
    const Grid2D<CFloat> multi = distributed_backprojection(
        ranks, s.history, s.grid, options, &report);
    EXPECT_GT(snr_db(multi, single), 70.0) << ranks << " ranks";
    EXPECT_GT(report.gather_bytes, 0.0);
    EXPECT_GT(report.broadcast_bytes, 0.0);
    EXPECT_GT(report.max_rank_compute_s, 0.0);
  }
}

TEST(Distributed, ParityAcrossRankCountsOnAwkwardGrids) {
  // Non-square, prime-ish, and degenerate 1xN / Nx1 grids stress the
  // partitioner's remainder handling; every rank count must agree with the
  // single-rank image.
  struct Shape {
    Index w, h;
  };
  for (const Shape shape : {Shape{51, 37}, Shape{1, 48}, Shape{48, 1}}) {
    sarbp::testing::ScenarioConfig cfg;
    cfg.image = 64;
    cfg.pulses = 12;
    const auto s = sarbp::testing::make_scenario(cfg);
    const geometry::ImageGrid grid(shape.w, shape.h, 0.5);
    bp::BackprojectOptions options;
    options.threads = 1;
    options.min_region_edge = 8;
    const Grid2D<CFloat> single =
        distributed_backprojection(1, s.history, grid, options);
    for (int ranks : {2, 4, 7}) {
      const Grid2D<CFloat> multi =
          distributed_backprojection(ranks, s.history, grid, options);
      EXPECT_GT(snr_db(multi, single), 70.0)
          << shape.w << "x" << shape.h << " on " << ranks << " ranks";
    }
  }
}

TEST(Distributed, ZeroPulseBatchFormsZeroImageWithoutHanging) {
  // A zero-pulse collection used to trip the pulse partitioner's
  // parts-vs-ranks check on multi-rank runs; now every rank count returns
  // an all-zero image.
  const sim::PhaseHistory empty(0, 64, 0.5, 400.0);
  const geometry::ImageGrid grid(32, 32, 0.5);
  bp::BackprojectOptions options;
  options.threads = 1;
  options.min_region_edge = 8;
  for (int ranks : {1, 2, 4, 7}) {
    const Grid2D<CFloat> image =
        distributed_backprojection(ranks, empty, grid, options);
    for (Index y = 0; y < image.height(); ++y) {
      for (Index x = 0; x < image.width(); ++x) {
        ASSERT_EQ(image.at(x, y), CFloat(0.0F, 0.0F))
            << "ranks=" << ranks << " at (" << x << "," << y << ")";
      }
    }
  }
}

TEST(Distributed, MatchesPlainBackprojector) {
  sarbp::testing::ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 8;
  const auto s = sarbp::testing::make_scenario(cfg);
  bp::BackprojectOptions options;
  options.threads = 1;
  options.min_region_edge = 16;
  const Grid2D<CFloat> distributed =
      distributed_backprojection(4, s.history, s.grid, options);
  const Grid2D<CFloat> plain = bp::Backprojector(s.grid, options).form_image(s.history);
  EXPECT_GT(snr_db(distributed, plain), 70.0);
}

}  // namespace
}  // namespace sarbp::cluster
