// Work-stealing tile executor tests: Chase-Lev deque semantics under
// contention, group lifecycle (completion continuation, abort, errors),
// steal behaviour, and the acceptance parity check — executor-formed
// images bit-identical to Backprojector::add_pulses for every kernel with
// stealing on and off.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "backprojection/backprojector.h"
#include "backprojection/kernel.h"
#include "backprojection/partition.h"
#include "backprojection/soa_tile.h"
#include "common/grid2d.h"
#include "exec/executor.h"
#include "exec/formation_tasks.h"
#include "exec/steal_deque.h"
#include "exec/task_group.h"
#include "test_helpers.h"

namespace sarbp::exec {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- deque ---

TEST(StealDeque, OwnerPopsLifoThievesStealFifo) {
  StealDeque deque(8);
  std::vector<TaskUnit> units(4);
  for (auto& unit : units) EXPECT_TRUE(deque.push(&unit));
  EXPECT_EQ(deque.size_approx(), 4u);

  EXPECT_EQ(deque.steal(), &units[0]);  // oldest first
  EXPECT_EQ(deque.pop(), &units[3]);    // newest first
  EXPECT_EQ(deque.steal(), &units[1]);
  EXPECT_EQ(deque.pop(), &units[2]);
  EXPECT_EQ(deque.pop(), nullptr);
  EXPECT_EQ(deque.steal(), nullptr);
}

TEST(StealDeque, PushFailsWhenFull) {
  StealDeque deque(4);  // rounds to capacity 4
  std::vector<TaskUnit> units(5);
  for (std::size_t i = 0; i < deque.capacity(); ++i) {
    EXPECT_TRUE(deque.push(&units[i]));
  }
  EXPECT_FALSE(deque.push(&units[4]));
  EXPECT_NE(deque.steal(), nullptr);  // stealing frees a slot
  EXPECT_TRUE(deque.push(&units[4]));
}

// Owner pushes and pops while thieves hammer steal(): every unit must be
// claimed exactly once, by exactly one side. This is the race the TSan run
// exists to check.
TEST(StealDeque, StressEveryUnitClaimedExactlyOnce) {
  constexpr int kUnits = 20000;
  constexpr int kThieves = 3;
  StealDeque deque(1024);
  std::vector<TaskUnit> units(kUnits);
  for (int i = 0; i < kUnits; ++i) units[i].index = static_cast<std::uint32_t>(i);

  std::vector<std::atomic<int>> claimed(kUnits);
  std::atomic<bool> done{false};
  std::atomic<int> total{0};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || deque.size_approx() > 0) {
        if (TaskUnit* unit = deque.steal()) {
          claimed[unit->index].fetch_add(1, std::memory_order_relaxed);
          total.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  int next = 0;
  while (next < kUnits) {
    // Push a burst, then pop roughly half of it back — exercises the
    // owner/thief race on the last item.
    int burst = 0;
    while (next < kUnits && burst < 64 && deque.push(&units[next])) {
      ++next;
      ++burst;
    }
    for (int k = 0; k < burst / 2; ++k) {
      if (TaskUnit* unit = deque.pop()) {
        claimed[unit->index].fetch_add(1, std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  while (TaskUnit* unit = deque.pop()) {
    claimed[unit->index].fetch_add(1, std::memory_order_relaxed);
    total.fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (auto& thief : thieves) thief.join();

  EXPECT_EQ(total.load(), kUnits);
  for (int i = 0; i < kUnits; ++i) {
    EXPECT_EQ(claimed[i].load(), 1) << "unit " << i;
  }
}

// ------------------------------------------------------------- executor ---

TEST(TileExecutor, RunsEveryTaskExactlyOnce) {
  constexpr int kTasks = 100;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<TaskGroup::Task> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&runs, i](int, TaskGroup&) {
      runs[i].fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::atomic<bool> completed{false};
  auto group = std::make_shared<TaskGroup>(
      std::move(tasks), nullptr,
      [&](TaskGroup&) { completed.store(true, std::memory_order_release); });

  obs::Registry registry;
  ExecOptions options;
  options.workers = 4;
  options.metrics = &registry;
  TileExecutor executor(std::move(options));
  executor.run(group);

  EXPECT_TRUE(completed.load());
  EXPECT_FALSE(group->aborted());
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
  EXPECT_EQ(registry.counter("exec.tasks.run").value(),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(registry.counter("exec.groups.completed").value(), 1u);
}

TEST(TileExecutor, CheckpointFalseAbortsAndSkipsRemainingTasks) {
  constexpr int kTasks = 64;
  std::atomic<int> ran{0};
  std::atomic<int> polls{0};
  std::vector<TaskGroup::Task> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(
        [&](int, TaskGroup&) { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // Trip after a handful of polls — mid-group, possibly during steals.
  auto checkpoint = [&]() -> bool {
    return polls.fetch_add(1, std::memory_order_relaxed) < 5;
  };
  auto group = std::make_shared<TaskGroup>(std::move(tasks), checkpoint,
                                           nullptr);

  obs::Registry registry;
  ExecOptions options;
  options.workers = 4;
  options.metrics = &registry;
  TileExecutor executor(std::move(options));
  executor.run(group);

  EXPECT_TRUE(group->aborted());
  EXPECT_TRUE(group->error().empty());  // checkpoint aborts carry no error
  EXPECT_LT(ran.load(), kTasks);
  EXPECT_EQ(registry.counter("exec.tasks.run").value() +
                registry.counter("exec.tasks.skipped").value(),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(registry.counter("exec.groups.aborted").value(), 1u);
}

TEST(TileExecutor, TaskExceptionAbortsGroupAndRecordsFirstError) {
  std::vector<TaskGroup::Task> tasks;
  tasks.push_back([](int, TaskGroup&) {});
  tasks.push_back(
      [](int, TaskGroup&) { throw std::runtime_error("tile exploded"); });
  for (int i = 0; i < 16; ++i) tasks.push_back([](int, TaskGroup&) {});
  auto group = std::make_shared<TaskGroup>(std::move(tasks), nullptr, nullptr);

  ExecOptions options;
  options.workers = 2;
  options.metrics = nullptr;  // default registry; counters not asserted here
  TileExecutor executor(std::move(options));
  executor.run(group);

  EXPECT_TRUE(group->aborted());
  EXPECT_EQ(group->error(), "tile exploded");
}

TEST(TileExecutor, IdleWorkerStealsFromRunningJob) {
  // One group, two workers: the claimer injects both tasks into its own
  // deque, so the pair can only overlap in time if the second worker
  // steals. Each task waits until both are in flight (with a timeout so a
  // regression fails instead of hanging).
  std::atomic<int> in_flight{0};
  auto body = [&](int, TaskGroup&) {
    in_flight.fetch_add(1, std::memory_order_acq_rel);
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (in_flight.load(std::memory_order_acquire) < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  };
  std::vector<TaskGroup::Task> tasks{body, body};
  auto group = std::make_shared<TaskGroup>(std::move(tasks), nullptr, nullptr);

  obs::Registry registry;
  ExecOptions options;
  options.workers = 2;
  options.steal = true;
  options.metrics = &registry;
  TileExecutor executor(std::move(options));
  executor.run(group);

  EXPECT_EQ(in_flight.load(), 2);
  EXPECT_GE(group->tasks_stolen(), 1u);
  EXPECT_GE(registry.counter("exec.tasks.stolen").value(), 1u);
}

TEST(TileExecutor, StealOffRunsGroupOnClaimingWorkerOnly) {
  constexpr int kTasks = 32;
  std::atomic<int> ran{0};
  std::vector<TaskGroup::Task> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(
        [&](int, TaskGroup&) { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  auto group = std::make_shared<TaskGroup>(std::move(tasks), nullptr, nullptr);

  ExecOptions options;
  options.workers = 4;
  options.steal = false;
  obs::Registry registry;
  options.metrics = &registry;
  TileExecutor executor(std::move(options));
  executor.run(group);

  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(group->tasks_stolen(), 0u);
  EXPECT_EQ(registry.counter("exec.tasks.stolen").value(), 0u);
}

TEST(TileExecutor, PullSourceDrainsToEndOfStream) {
  constexpr int kGroups = 8;
  std::atomic<int> handed{0};
  std::atomic<int> completed{0};

  ExecOptions options;
  options.workers = 2;
  obs::Registry registry;
  options.metrics = &registry;
  options.source = [&](int, std::chrono::microseconds, bool* end) -> GroupPtr {
    const int n = handed.fetch_add(1, std::memory_order_acq_rel);
    if (n >= kGroups) {
      handed.store(kGroups, std::memory_order_release);
      *end = true;
      return nullptr;
    }
    std::vector<TaskGroup::Task> tasks;
    for (int i = 0; i < 4; ++i) tasks.push_back([](int, TaskGroup&) {});
    return std::make_shared<TaskGroup>(
        std::move(tasks), nullptr,
        [&](TaskGroup&) { completed.fetch_add(1, std::memory_order_relaxed); });
  };
  {
    TileExecutor executor(std::move(options));
    executor.drain();
  }
  EXPECT_EQ(completed.load(), kGroups);
}

TEST(TileExecutor, SubmitAfterDrainIsRejected) {
  ExecOptions options;
  options.workers = 1;
  TileExecutor executor(std::move(options));
  executor.drain();
  std::vector<TaskGroup::Task> tasks{[](int, TaskGroup&) {}};
  auto group = std::make_shared<TaskGroup>(std::move(tasks), nullptr, nullptr);
  EXPECT_FALSE(executor.submit(group));
}

// --------------------------------------------------------------- parity ---

// Uninstrumented libgomp makes OpenMP regions false-positive under TSan
// (see tools/run_sanitized_tests.sh); the TSan run substitutes a serial
// replication of add_pulses' partition loop for the OpenMP driver itself.
#if defined(__SANITIZE_THREAD__)
#define SARBP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SARBP_TSAN 1
#endif
#endif

// The exact computation Backprojector::add_pulses performs — same
// partition, same per-part kernel, same tile reduction — minus the OpenMP
// fan-out. The normal build asserts this is bit-identical to the real
// driver, so the TSan build can use it as the reference without losing
// coverage.
Grid2D<CFloat> serial_add_pulses(const sim::PhaseHistory& history,
                                 const geometry::ImageGrid& grid,
                                 const bp::BackprojectOptions& options,
                                 int workers) {
  Grid2D<CFloat> out(grid.width(), grid.height());
  const bp::CubeShape shape{history.num_pulses(), grid.width(), grid.height()};
  const auto choice =
      bp::choose_partition(shape, workers, options.min_region_edge);
  bp::SoaTile tile;
  for (const auto& part : bp::partition_cube(shape, choice)) {
    tile.reset(part.region.width, part.region.height);
    bp::run_cube_part(history, grid, options, part, tile);
    tile.accumulate_into(out, part.region);
  }
  return out;
}

bool images_bit_identical(const Grid2D<CFloat>& a, const Grid2D<CFloat>& b) {
  if (a.width() != b.width() || a.height() != b.height()) return false;
  for (Index y = 0; y < a.height(); ++y) {
    if (std::memcmp(a.row(y).data(), b.row(y).data(),
                    static_cast<std::size_t>(a.width()) * sizeof(CFloat)) != 0) {
      return false;
    }
  }
  return true;
}

struct ParityShape {
  Index image;
  Index min_region_edge;
  int parallelism;
  const char* label;
};

// Acceptance criterion: the executor-produced image is bit-identical to
// Backprojector::add_pulses for the same request, for every kernel, with
// stealing on and off. Shapes are chosen so the partitioner yields
// parts_pulse <= 2 — with at most two addends per output pixel, float
// summation is order-free (commutativity suffices), so add_pulses itself
// is deterministic and the comparison is exact.
TEST(ExecutorParity, BitIdenticalToAddPulsesAllKernelsStealOnOff) {
  using bp::KernelKind;
  const ParityShape shapes[] = {
      {96, 32, 4, "image-split x4"},     // parts_pulse = 1
      {64, 64, 2, "pulse-split x2"},     // parts_pulse = 2
  };
  for (const auto& shape : shapes) {
    testing::ScenarioConfig cfg;
    cfg.image = shape.image;
    cfg.pulses = 48;
    const auto scenario = testing::make_scenario(cfg);

    for (KernelKind kind :
         {KernelKind::kBaseline, KernelKind::kBaselineAllFloat,
          KernelKind::kAsrScalar, KernelKind::kAsrSimd}) {
      if (kind == KernelKind::kAsrSimd && !bp::asr_simd_available()) continue;
      bp::BackprojectOptions options;
      options.kernel = kind;
      options.asr_block_w = 32;
      options.asr_block_h = 32;
      options.min_region_edge = shape.min_region_edge;
      options.threads = shape.parallelism;

      Grid2D<CFloat> reference = serial_add_pulses(
          scenario.history, scenario.grid, options, shape.parallelism);
#if !defined(SARBP_TSAN)
      {
        const bp::Backprojector driver(scenario.grid, options);
        Grid2D<CFloat> via_driver(scenario.grid.width(),
                                  scenario.grid.height());
        driver.add_pulses(scenario.history, via_driver);
        ASSERT_TRUE(images_bit_identical(reference, via_driver))
            << shape.label << ", kernel " << bp::kernel_name(kind)
            << ": serial replication diverged from add_pulses";
      }
#endif

      for (const bool steal : {false, true}) {
        Grid2D<CFloat> image(scenario.grid.width(), scenario.grid.height());
        ExecOptions exec_options;
        exec_options.workers = shape.parallelism;
        exec_options.steal = steal;
        obs::Registry registry;
        exec_options.metrics = &registry;
        TileExecutor executor(std::move(exec_options));
        executor.run(make_backprojection_group(scenario.history, scenario.grid,
                                               options, shape.parallelism,
                                               image));
        EXPECT_TRUE(images_bit_identical(reference, image))
            << shape.label << ", kernel " << bp::kernel_name(kind)
            << ", steal " << (steal ? "on" : "off");
      }
    }
  }
}

// The executor must produce the same bits regardless of scheduling: repeat
// the same group several times across worker counts and compare.
TEST(ExecutorParity, DeterministicAcrossWorkerCounts) {
  testing::ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 32;
  const auto scenario = testing::make_scenario(cfg);
  bp::BackprojectOptions options;
  options.kernel = bp::KernelKind::kAsrScalar;
  options.asr_block_w = 32;
  options.asr_block_h = 32;
  options.min_region_edge = 32;

  Grid2D<CFloat> first(0, 0);
  for (const int workers : {1, 2, 4}) {
    Grid2D<CFloat> image(scenario.grid.width(), scenario.grid.height());
    ExecOptions exec_options;
    exec_options.workers = workers;
    obs::Registry registry;
    exec_options.metrics = &registry;
    TileExecutor executor(std::move(exec_options));
    executor.run(make_backprojection_group(scenario.history, scenario.grid,
                                           options, 4, image));
    if (first.width() == 0) {
      first = std::move(image);
    } else {
      EXPECT_TRUE(images_bit_identical(first, image)) << workers << " workers";
    }
  }
}

TEST(FormationGroup, CheckpointAbortLeavesImageUntouched) {
  testing::ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 16;
  const auto scenario = testing::make_scenario(cfg);
  bp::BackprojectOptions options;
  options.kernel = bp::KernelKind::kAsrScalar;
  options.min_region_edge = 16;

  Grid2D<CFloat> image(scenario.grid.width(), scenario.grid.height());
  auto group = make_backprojection_group(scenario.history, scenario.grid,
                                         options, 4, image,
                                         [] { return false; });
  ExecOptions exec_options;
  exec_options.workers = 2;
  obs::Registry registry;
  exec_options.metrics = &registry;
  TileExecutor executor(std::move(exec_options));
  executor.run(group);

  EXPECT_TRUE(group->aborted());
  for (Index y = 0; y < image.height(); ++y) {
    for (Index x = 0; x < image.width(); ++x) {
      EXPECT_EQ(image.at(x, y), CFloat(0.0f, 0.0f));
    }
  }
}

}  // namespace
}  // namespace sarbp::exec
