// Autofocus tests: quadratic phase application round trip, defocus
// injection degrading the image, and entropy-minimizing recovery of an
// unknown injected phase error.
#include <gtest/gtest.h>

#include <cmath>

#include "backprojection/autofocus.h"
#include "common/snr.h"
#include "quality/metrics.h"
#include "test_helpers.h"

namespace sarbp::bp {
namespace {

using sarbp::testing::ScenarioConfig;
using sarbp::testing::SmallScenario;
using sarbp::testing::make_scenario;

/// A sharp point-target scenario with a long enough aperture that a few
/// radians of quadratic phase visibly defocuses it.
SmallScenario point_scenario() {
  ScenarioConfig cfg;
  cfg.image = 64;
  cfg.pulses = 96;
  cfg.perturbation_sigma = 0.0;
  SmallScenario s = make_scenario(cfg);
  sim::Reflector r;
  r.position = s.grid.position(32, 32);
  s.scene = sim::ReflectorScene({r});
  Rng rng(5);
  s.history = sim::collect({}, s.grid, s.scene, s.poses, rng);
  return s;
}

Grid2D<CFloat> form(const SmallScenario& s) {
  BackprojectOptions options;
  options.threads = 1;
  return Backprojector(s.grid, options).form_image(s.history);
}

TEST(Autofocus, QuadraticPhaseRoundTrips) {
  SmallScenario s = point_scenario();
  const auto original = form(s);
  apply_quadratic_phase(s.history, 4.0);
  apply_quadratic_phase(s.history, -4.0);
  const auto restored = form(s);
  EXPECT_GT(snr_db(restored, original), 55.0);
}

TEST(Autofocus, ZeroPhaseIsIdentity) {
  SmallScenario s = point_scenario();
  const auto before = form(s);
  apply_quadratic_phase(s.history, 0.0);
  const auto after = form(s);
  EXPECT_GT(snr_db(after, before), 120.0);
}

TEST(Autofocus, InjectedPhaseErrorDefocuses) {
  SmallScenario s = point_scenario();
  const double clean_contrast = quality::peak_to_mean(form(s));
  const double clean_entropy = quality::image_entropy(form(s));
  apply_quadratic_phase(s.history, 8.0);
  const auto defocused = form(s);
  EXPECT_LT(quality::peak_to_mean(defocused), 0.7 * clean_contrast);
  EXPECT_GT(quality::image_entropy(defocused), clean_entropy + 0.3);
}

TEST(Autofocus, RecoversInjectedQuadraticError) {
  SmallScenario s = point_scenario();
  const double clean_contrast = quality::peak_to_mean(form(s));

  const double injected = 7.5;
  apply_quadratic_phase(s.history, injected);

  BackprojectOptions bp_options;
  bp_options.threads = 1;
  AutofocusOptions options;
  options.search_span_rad = 15.0;
  const AutofocusResult result =
      autofocus_quadratic(s.history, s.grid, bp_options, options);

  // The estimate cancels the injection...
  EXPECT_NEAR(result.edge_phase_rad, -injected, 1.0);
  EXPECT_LT(result.entropy_after, result.entropy_before - 0.2);
  // ...and the corrected image recovers most of the clean contrast.
  const double recovered = quality::peak_to_mean(form(s));
  EXPECT_GT(recovered, 0.7 * clean_contrast);
}

TEST(Autofocus, NoErrorMeansNearZeroCorrection) {
  SmallScenario s = point_scenario();
  BackprojectOptions bp_options;
  bp_options.threads = 1;
  AutofocusOptions options;
  options.search_span_rad = 10.0;
  const AutofocusResult result =
      autofocus_quadratic(s.history, s.grid, bp_options, options);
  EXPECT_NEAR(result.edge_phase_rad, 0.0, 1.0);
}

TEST(Autofocus, RejectsBadOptions) {
  SmallScenario s = point_scenario();
  AutofocusOptions bad;
  bad.coarse_samples = 1;
  EXPECT_THROW((void)autofocus_quadratic(s.history, s.grid, {}, bad),
               PreconditionError);
}

}  // namespace
}  // namespace sarbp::bp
