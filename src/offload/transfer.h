// Asynchronous staging transfers — the software analogue of the paper's
// `#pragma offload_transfer` / `offload_wait` double-buffering (§5.3):
// submissions copy through a staging buffer on a dedicated I/O thread so
// the compute thread never blocks on the (modeled) PCIe wire time.
#pragma once

#include <cstddef>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace sarbp::offload {

/// Handle to an in-flight transfer. wait() blocks until the copy (and its
/// modeled wire time accounting) completed; returns the modeled seconds.
class TransferHandle {
 public:
  TransferHandle() = default;
  explicit TransferHandle(std::shared_future<double> future)
      : future_(std::move(future)) {}

  [[nodiscard]] bool valid() const { return future_.valid(); }
  double wait() const { return future_.get(); }

 private:
  std::shared_future<double> future_;
};

/// One I/O thread draining a bounded submission queue — the paper's
/// "remaining I/O thread handles ... PCIe operations" (§4.1). Copies are
/// real (memcpy into the destination span); wire time is modeled from the
/// configured bandwidth and returned to the waiter for accounting.
class AsyncTransferEngine {
 public:
  /// `bandwidth_gbps`: modeled wire bandwidth; `queue_depth`: in-flight cap.
  explicit AsyncTransferEngine(double bandwidth_gbps,
                               std::size_t queue_depth = 4);
  ~AsyncTransferEngine();

  AsyncTransferEngine(const AsyncTransferEngine&) = delete;
  AsyncTransferEngine& operator=(const AsyncTransferEngine&) = delete;

  /// Submits an asynchronous copy src -> dst (sizes must match). The spans
  /// must stay alive until the handle is waited on.
  TransferHandle submit(std::span<const std::byte> src,
                        std::span<std::byte> dst);

  [[nodiscard]] double bandwidth_gbps() const { return bandwidth_gbps_; }

 private:
  struct Job {
    std::span<const std::byte> src;
    std::span<std::byte> dst;
    std::promise<double> done;
  };

  void worker();

  double bandwidth_gbps_;
  BoundedQueue<Job> queue_;
  std::thread thread_;
};

}  // namespace sarbp::offload
