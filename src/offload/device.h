// Compute-device descriptors for the offload model.
//
// We have no Xeon Phi hardware (DESIGN.md §2): coprocessors are modeled by
// their paper-reported capability — peak single-precision GFLOP/s and the
// backprojection FLOP efficiency of Table 3 — while the actual arithmetic
// runs on the host. The model is anchored to the *measured* host kernel
// rate, so simulated device times scale with reality on this machine.
#pragma once

#include <string>

#include "common/check.h"

namespace sarbp::offload {

struct DeviceSpec {
  std::string name;
  double peak_gflops = 0.0;      ///< ideal single-precision peak (Table 2)
  double flop_efficiency = 0.0;  ///< backprojection efficiency (Table 3)
  double pcie_gbps = 0.0;        ///< realized PCIe bandwidth, GB/s (§5.3)
  bool is_host = false;

  /// Effective backprojection compute rate in GFLOP/s.
  [[nodiscard]] double effective_gflops() const {
    return peak_gflops * flop_efficiency;
  }

  void validate() const {
    sarbp::ensure(peak_gflops > 0, "DeviceSpec: peak must be positive");
    sarbp::ensure(flop_efficiency > 0 && flop_efficiency <= 1,
                  "DeviceSpec: efficiency in (0, 1]");
    sarbp::ensure(is_host || pcie_gbps > 0,
                  "DeviceSpec: coprocessors need PCIe bandwidth");
  }
};

/// Dual-socket Intel Xeon E5-2670 (Table 2): 660 GFLOP/s peak, 42%
/// backprojection efficiency (Table 3).
DeviceSpec xeon_e5_2670_dual();

/// Knights Corner evaluation card (Table 2): 1,920 GFLOP/s peak, 28%
/// efficiency, 6 GB/s realized PCIe (§5.3).
DeviceSpec knights_corner();

/// Simulated executor time for arithmetic that physically took
/// `measured_host_seconds` on this machine: rescaled by the ratio of the
/// host model's effective rate to the device's (DESIGN.md §2). Shared by
/// OffloadRuntime's frame loop and the exec layer's OffloadSimBackend so
/// both report the same clock.
[[nodiscard]] double simulated_compute_seconds(const DeviceSpec& device,
                                               const DeviceSpec& host_model,
                                               double measured_host_seconds);

/// Modeled PCIe time to move `bytes` over the device link (§5.3's
/// ~150 MB / 6 GB/s -> 0.03 s for the 3K case). Zero for host executors.
[[nodiscard]] double modeled_transfer_seconds(const DeviceSpec& device,
                                              double bytes);

}  // namespace sarbp::offload
