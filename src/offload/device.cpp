#include "offload/device.h"

namespace sarbp::offload {

DeviceSpec xeon_e5_2670_dual() {
  DeviceSpec spec;
  spec.name = "xeon-e5-2670-2s";
  spec.peak_gflops = 660.0;
  spec.flop_efficiency = 0.42;
  spec.pcie_gbps = 0.0;
  spec.is_host = true;
  return spec;
}

DeviceSpec knights_corner() {
  DeviceSpec spec;
  spec.name = "knights-corner";
  spec.peak_gflops = 1920.0;
  spec.flop_efficiency = 0.28;
  spec.pcie_gbps = 6.0;  // realized throughput reported in §5.3
  spec.is_host = false;
  return spec;
}

double simulated_compute_seconds(const DeviceSpec& device,
                                 const DeviceSpec& host_model,
                                 double measured_host_seconds) {
  return measured_host_seconds *
         (host_model.effective_gflops() / device.effective_gflops());
}

double modeled_transfer_seconds(const DeviceSpec& device, double bytes) {
  if (device.is_host) return 0.0;
  return bytes / (device.pcie_gbps * 1e9);
}

}  // namespace sarbp::offload
