#include "offload/transfer.h"

#include <cstring>

#include "common/check.h"

namespace sarbp::offload {

AsyncTransferEngine::AsyncTransferEngine(double bandwidth_gbps,
                                         std::size_t queue_depth)
    : bandwidth_gbps_(bandwidth_gbps), queue_(queue_depth) {
  ensure(bandwidth_gbps > 0, "AsyncTransferEngine: bandwidth must be positive");
  thread_ = std::thread([this] { worker(); });
}

AsyncTransferEngine::~AsyncTransferEngine() {
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

TransferHandle AsyncTransferEngine::submit(std::span<const std::byte> src,
                                           std::span<std::byte> dst) {
  ensure(src.size() == dst.size(), "AsyncTransferEngine: size mismatch");
  Job job;
  job.src = src;
  job.dst = dst;
  std::shared_future<double> future = job.done.get_future().share();
  ensure(queue_.push(std::move(job)),
         "AsyncTransferEngine: engine already shut down");
  return TransferHandle(future);
}

void AsyncTransferEngine::worker() {
  while (auto job = queue_.pop()) {
    if (!job->src.empty()) {
      std::memcpy(job->dst.data(), job->src.data(), job->src.size());
    }
    const double modeled_seconds =
        static_cast<double>(job->src.size()) / (bandwidth_gbps_ * 1e9);
    job->done.set_value(modeled_seconds);
  }
}

}  // namespace sarbp::offload
