#include "offload/runtime.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "backprojection/kernel.h"
#include "common/check.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace sarbp::offload {

OffloadRuntime::OffloadRuntime(const geometry::ImageGrid& grid,
                               bp::BackprojectOptions bp_options,
                               OffloadConfig config)
    : grid_(grid),
      backprojector_(grid, bp_options),
      config_(std::move(config)) {
  if (config_.use_host_compute) {
    config_.host.validate();
    specs_.push_back(config_.host);
  }
  for (const auto& coproc : config_.coprocessors) {
    coproc.validate();
    ensure(!coproc.is_host, "OffloadRuntime: coprocessor marked as host");
    specs_.push_back(coproc);
  }
  ensure(!specs_.empty(), "OffloadRuntime: no executors configured");
  if (!config_.coprocessors.empty()) {
    staging_engine_ = std::make_unique<AsyncTransferEngine>(
        config_.coprocessors.front().pcie_gbps);
  }
  // Initial split proportional to effective rates (the paper starts from
  // capability, then observes).
  rates_.assign(specs_.size(), 0.0);
  split_.resize(specs_.size());
  double total = 0.0;
  for (const auto& spec : specs_) total += spec.effective_gflops();
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    split_[i] = specs_[i].effective_gflops() / total;
  }
}

OffloadReport OffloadRuntime::form_image(const sim::PhaseHistory& history,
                                         Grid2D<CFloat>& out) {
  ensure(out.width() == grid_.width() && out.height() == grid_.height(),
         "OffloadRuntime::form_image: image shape mismatch");
  OffloadReport report;
  report.split = split_;
  report.executor_seconds.resize(specs_.size(), 0.0);
  report.backprojections = backprojector_.backprojections(history);

  // Partition image rows by the current split.
  std::vector<Index> row_begin(specs_.size() + 1, 0);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    cumulative += split_[i];
    row_begin[i + 1] = std::min<Index>(
        grid_.height(),
        static_cast<Index>(std::llround(cumulative * static_cast<double>(grid_.height()))));
  }
  row_begin.back() = grid_.height();

  const DeviceSpec host_model =
      config_.use_host_compute ? config_.host : xeon_e5_2670_dual();

  // Kick off the real asynchronous staging copy of the pulse batch (the
  // #pragma offload_transfer analogue): the I/O thread memcpys while the
  // executors below compute; we wait (and time the wait) at the end.
  TransferHandle staging;
  if (staging_engine_ != nullptr) {
    staging_buffer_.resize(history.payload_bytes());
    staging = staging_engine_->submit(
        std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(history.pulse(0).data()),
            history.payload_bytes()),
        staging_buffer_);
  }

  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const Region region{0, row_begin[i], grid_.width(),
                        row_begin[i + 1] - row_begin[i]};
    if (region.empty()) continue;
    Timer timer;
    backprojector_.add_pulses_region(history, region, 0,
                                     history.num_pulses(), out);
    const double measured = timer.seconds();
    // Simulated executor time: the measured host time rescaled to the
    // executor's effective rate relative to the host model (shared with
    // the exec layer's OffloadSimBackend).
    const double simulated =
        simulated_compute_seconds(specs_[i], host_model, measured);
    report.executor_seconds[i] = simulated;

    const double work = static_cast<double>(region.pixels()) *
                        static_cast<double>(history.num_pulses());
    const double observed_rate = simulated > 0 ? work / simulated : 0.0;
    rates_[i] = rates_[i] <= 0.0
                    ? observed_rate
                    : config_.rate_smoothing * observed_rate +
                          (1.0 - config_.rate_smoothing) * rates_[i];
  }

  if (staging.valid()) {
    Timer wait_timer;
    (void)staging.wait();
    report.staging_wait_seconds = wait_timer.seconds();
  }

  // PCIe model: each coprocessor receives the full pulse batch and returns
  // its image slice (§5.3's ~150 MB / 6 GB/s -> 0.03 s for the 3K case).
  double worst_transfer = 0.0;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].is_host) continue;
    const double in_bytes = static_cast<double>(history.payload_bytes());
    const double out_bytes =
        static_cast<double>(grid_.width()) *
        static_cast<double>(row_begin[i + 1] - row_begin[i]) * sizeof(CFloat);
    const double seconds =
        modeled_transfer_seconds(specs_[i], in_bytes + out_bytes);
    worst_transfer = std::max(worst_transfer, seconds);
  }
  report.transfer_seconds = worst_transfer;

  const double compute_wall = *std::max_element(
      report.executor_seconds.begin(), report.executor_seconds.end());
  report.wall_seconds = config_.overlap_transfers
                            ? std::max(compute_wall, worst_transfer)
                            : compute_wall + worst_transfer;

  // Adapt the split toward the observed rates (§5.3).
  double total_rate = std::accumulate(rates_.begin(), rates_.end(), 0.0);
  if (total_rate > 0.0) {
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      split_[i] = rates_[i] / total_rate;
    }
  }

  // Transfer/overlap telemetry: how much of the PCIe time the double
  // buffering actually hid, and how long the compute thread stalled on the
  // asynchronous staging copy.
  auto& reg = obs::registry();
  reg.counter("offload.frames").add();
  reg.gauge("offload.executors").set(static_cast<std::int64_t>(specs_.size()));
  reg.histogram("offload.wall_s").record(report.wall_seconds);
  reg.histogram("offload.compute_s").record(compute_wall);
  reg.histogram("offload.transfer_s").record(report.transfer_seconds);
  reg.histogram("offload.staging_wait_s").record(report.staging_wait_seconds);
  if (report.transfer_seconds > 0.0) {
    const double exposed = report.wall_seconds - compute_wall;
    reg.histogram("offload.transfer_hidden_frac")
        .record(1.0 - exposed / report.transfer_seconds);
  }
  return report;
}

}  // namespace sarbp::offload
