// Offload runtime (paper §4.1/§5.3): partitions each image across the host
// CPU and the attached coprocessor models, overlaps the (modeled) PCIe
// transfers with compute via asynchronous staging, and adapts the work
// split "based on the execution time ratio observed with the first few
// images".
//
// The arithmetic for every executor physically runs on this host; each
// executor's *simulated* wall time is its measured host time rescaled by
// the ratio of effective device rate to effective host rate (DESIGN.md §2).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "backprojection/backprojector.h"
#include "common/grid2d.h"
#include "geometry/grid.h"
#include "offload/device.h"
#include "offload/transfer.h"
#include "sim/phase_history.h"

namespace sarbp::offload {

struct OffloadConfig {
  DeviceSpec host = xeon_e5_2670_dual();
  std::vector<DeviceSpec> coprocessors;
  /// Overlap PCIe transfers with compute (double buffering). When false,
  /// transfer time adds to the critical path — the ablation case.
  bool overlap_transfers = true;
  /// Include the host CPU as a compute executor. When false, everything is
  /// offloaded (Table 3's "1 Xeon Phi" row).
  bool use_host_compute = true;
  /// Exponential-moving-average weight for the observed-rate tracker.
  double rate_smoothing = 0.5;
};

/// Per-frame accounting.
struct OffloadReport {
  double wall_seconds = 0.0;      ///< simulated frame latency
  double transfer_seconds = 0.0;  ///< modeled PCIe time (max over devices)
  /// Wall time the compute thread spent *waiting* on the asynchronous
  /// staging copy after its own work finished — ~0 when overlap succeeds.
  double staging_wait_seconds = 0.0;
  std::vector<double> executor_seconds;  ///< simulated per-executor compute
  std::vector<double> split;             ///< row fraction per executor
  double backprojections = 0.0;

  [[nodiscard]] double throughput_bp_per_s() const {
    return wall_seconds > 0 ? backprojections / wall_seconds : 0.0;
  }
};

class OffloadRuntime {
 public:
  OffloadRuntime(const geometry::ImageGrid& grid,
                 bp::BackprojectOptions bp_options, OffloadConfig config);

  /// Backprojects one pulse batch into `out` (real arithmetic, full image)
  /// and returns the simulated-time report. Successive calls refine the
  /// work split from observed execution-time ratios.
  OffloadReport form_image(const sim::PhaseHistory& history,
                           Grid2D<CFloat>& out);

  [[nodiscard]] int executors() const {
    return static_cast<int>(rates_.size());
  }
  [[nodiscard]] const std::vector<double>& current_split() const {
    return split_;
  }

 private:
  geometry::ImageGrid grid_;
  bp::Backprojector backprojector_;
  OffloadConfig config_;
  std::vector<DeviceSpec> specs_;   ///< executor order: host first (if used)
  std::vector<double> rates_;       ///< observed backprojections/s
  std::vector<double> split_;       ///< current row fractions
  /// Real staging machinery (the offload_transfer/offload_wait analogue):
  /// pulse batches are copied into the device staging buffer on an I/O
  /// thread while the host executor computes.
  std::unique_ptr<AsyncTransferEngine> staging_engine_;
  std::vector<std::byte> staging_buffer_;
};

}  // namespace sarbp::offload
