// ASR backprojection, portable scalar form — a direct realization of the
// paper's Fig. 3(b):
//
//   for each pixel block:
//     pre-compute A, B, C, Phi, Psi, Gamma          (tables.cpp, double)
//     for each m (outer image axis):
//       gamma = (1, 0)
//       for each l (inner image axis):
//         bin = A[l] + B[m] + l*C[m]
//         arg = Phi[l] * Psi[m] * gamma             (8 muls, 4 adds)
//         gamma *= Gamma[m]                         (4 muls, 2 adds)
//         sample = interp(In, bin)                  (irregular access)
//         Out[l, m] += arg * sample
//
// Loop structure is block-outer / pulse-inner (the cache-blocking cube C of
// Fig. 5(b)): one block's output tile stays resident while every pulse in
// the assigned range streams over it. The quadratic fit and the inner sweep
// live in kernel_asr_block.h, shared with the service's cached-plan
// executor; this file owns only the streaming table construction.
#include <numbers>

#include "asr/block_plan.h"
#include "asr/quadratic.h"
#include "asr/tables.h"
#include "backprojection/kernel.h"
#include "backprojection/kernel_asr_block.h"
#include "common/check.h"

namespace sarbp::bp {

void backproject_asr_scalar(const sim::PhaseHistory& history,
                            const geometry::ImageGrid& grid,
                            const Region& region, Index pulse_begin,
                            Index pulse_end, Index block_w, Index block_h,
                            geometry::LoopOrder order, SoaTile& out) {
  ensure(pulse_begin >= 0 && pulse_end <= history.num_pulses() &&
             pulse_begin <= pulse_end,
         "backproject_asr_scalar: pulse range out of bounds");
  ensure(out.width() == region.width && out.height() == region.height,
         "backproject_asr_scalar: tile/region shape mismatch");
  const double two_pi_k = 2.0 * std::numbers::pi * history.wavenumber();
  const Index samples = history.samples_per_pulse();
  const bool x_inner = order == geometry::LoopOrder::kXInner;

  const auto blocks = asr::plan_blocks(region.x0, region.y0, region.width,
                                       region.height, block_w, block_h);
  asr::BlockTables tables;

  for (const auto& block : blocks) {
    const geometry::Vec3 centre = grid.position_f(
        static_cast<double>(block.x0) + 0.5 * static_cast<double>(block.width - 1),
        static_cast<double>(block.y0) + 0.5 * static_cast<double>(block.height - 1));
    // Table extents under the chosen order: l is the inner image axis.
    const Index len_l = x_inner ? block.width : block.height;
    const Index len_m = x_inner ? block.height : block.width;
    // Tile-local coordinates of the block origin.
    const Index bx = block.x0 - region.x0;
    const Index by = block.y0 - region.y0;

    for (Index p = pulse_begin; p < pulse_end; ++p) {
      const auto& meta = history.meta(p);
      const asr::Quadratic2D q =
          block_range_quadratic(centre, meta.position, grid.spacing(), order);
      asr::build_block_tables_fast(q, meta.start_range_m, history.bin_spacing(),
                                   two_pi_k, len_l, len_m, tables);
      asr_sweep_block(tables, history.pulse(p).data(), samples, x_inner, bx,
                      by, len_l, len_m, out);
    }
  }
}

}  // namespace sarbp::bp
