// ASR backprojection, portable scalar form — a direct realization of the
// paper's Fig. 3(b):
//
//   for each pixel block:
//     pre-compute A, B, C, Phi, Psi, Gamma          (tables.cpp, double)
//     for each m (outer image axis):
//       gamma = (1, 0)
//       for each l (inner image axis):
//         bin = A[l] + B[m] + l*C[m]
//         arg = Phi[l] * Psi[m] * gamma             (8 muls, 4 adds)
//         gamma *= Gamma[m]                         (4 muls, 2 adds)
//         sample = interp(In, bin)                  (irregular access)
//         Out[l, m] += arg * sample
//
// Loop structure is block-outer / pulse-inner (the cache-blocking cube C of
// Fig. 5(b)): one block's output tile stays resident while every pulse in
// the assigned range streams over it.
#include <cmath>
#include <numbers>

#include "asr/block_plan.h"
#include "asr/quadratic.h"
#include "asr/tables.h"
#include "backprojection/kernel.h"
#include "common/check.h"

namespace sarbp::bp {
namespace {

/// Quadratic for a block under the chosen loop order. For kYInner the l/m
/// roles are the image's y/x axes; sqrt(x^2+y^2+alpha^2) is symmetric under
/// swapping its first two arguments, so swapping the horizontal components
/// of both points yields the swapped-axis expansion.
asr::Quadratic2D block_quadratic(const geometry::Vec3& centre,
                                 const geometry::Vec3& radar, double spacing,
                                 geometry::LoopOrder order) {
  if (order == geometry::LoopOrder::kXInner) {
    return asr::range_quadratic(centre, radar, spacing, spacing);
  }
  const geometry::Vec3 centre_swapped{centre.y, centre.x, centre.z};
  const geometry::Vec3 radar_swapped{radar.y, radar.x, radar.z};
  return asr::range_quadratic(centre_swapped, radar_swapped, spacing, spacing);
}

}  // namespace

void backproject_asr_scalar(const sim::PhaseHistory& history,
                            const geometry::ImageGrid& grid,
                            const Region& region, Index pulse_begin,
                            Index pulse_end, Index block_w, Index block_h,
                            geometry::LoopOrder order, SoaTile& out) {
  ensure(pulse_begin >= 0 && pulse_end <= history.num_pulses() &&
             pulse_begin <= pulse_end,
         "backproject_asr_scalar: pulse range out of bounds");
  ensure(out.width() == region.width && out.height() == region.height,
         "backproject_asr_scalar: tile/region shape mismatch");
  const double two_pi_k = 2.0 * std::numbers::pi * history.wavenumber();
  const Index samples = history.samples_per_pulse();
  const bool x_inner = order == geometry::LoopOrder::kXInner;

  const auto blocks = asr::plan_blocks(region.x0, region.y0, region.width,
                                       region.height, block_w, block_h);
  asr::BlockTables tables;

  for (const auto& block : blocks) {
    const geometry::Vec3 centre = grid.position_f(
        static_cast<double>(block.x0) + 0.5 * static_cast<double>(block.width - 1),
        static_cast<double>(block.y0) + 0.5 * static_cast<double>(block.height - 1));
    // Table extents under the chosen order: l is the inner image axis.
    const Index len_l = x_inner ? block.width : block.height;
    const Index len_m = x_inner ? block.height : block.width;
    // Tile-local coordinates of the block origin.
    const Index bx = block.x0 - region.x0;
    const Index by = block.y0 - region.y0;

    for (Index p = pulse_begin; p < pulse_end; ++p) {
      const auto& meta = history.meta(p);
      const CFloat* in = history.pulse(p).data();
      const asr::Quadratic2D q =
          block_quadratic(centre, meta.position, grid.spacing(), order);
      asr::build_block_tables_fast(q, meta.start_range_m, history.bin_spacing(),
                              two_pi_k, len_l, len_m, tables);

      for (Index m = 0; m < len_m; ++m) {
        const float bin_b = tables.bin_b[static_cast<std::size_t>(m)];
        const float bin_c = tables.bin_c[static_cast<std::size_t>(m)];
        const float psi_r = tables.psi_re[static_cast<std::size_t>(m)];
        const float psi_i = tables.psi_im[static_cast<std::size_t>(m)];
        const float gam_r = tables.gam_re[static_cast<std::size_t>(m)];
        const float gam_i = tables.gam_im[static_cast<std::size_t>(m)];
        // Output pointers: l walks x (stride 1) or y (stride tile width).
        float* out_re;
        float* out_im;
        Index stride;
        if (x_inner) {
          out_re = out.row_re(by + m) + bx;
          out_im = out.row_im(by + m) + bx;
          stride = 1;
        } else {
          out_re = out.row_re(by) + bx + m;
          out_im = out.row_im(by) + bx + m;
          stride = out.width();
        }
        float g_r = 1.0f;
        float g_i = 0.0f;
        for (Index l = 0; l < len_l; ++l) {
          const float bin = tables.bin_a[static_cast<std::size_t>(l)] + bin_b +
                            static_cast<float>(l) * bin_c;
          // arg = Phi[l] * Psi[m] * gamma
          const float phi_r = tables.phi_re[static_cast<std::size_t>(l)];
          const float phi_i = tables.phi_im[static_cast<std::size_t>(l)];
          const float t_r = phi_r * g_r - phi_i * g_i;
          const float t_i = phi_r * g_i + phi_i * g_r;
          const float a_r = t_r * psi_r - t_i * psi_i;
          const float a_i = t_r * psi_i + t_i * psi_r;
          // gamma *= Gamma[m]
          const float ng_r = g_r * gam_r - g_i * gam_i;
          g_i = g_r * gam_i + g_i * gam_r;
          g_r = ng_r;
          if (bin >= 0.0f) {
            const auto ibin = static_cast<Index>(bin);
            if (ibin + 1 < samples) {
              const float frac = bin - static_cast<float>(ibin);
              const CFloat v0 = in[ibin];
              const CFloat v1 = in[ibin + 1];
              const float s_r = v0.real() + frac * (v1.real() - v0.real());
              const float s_i = v0.imag() + frac * (v1.imag() - v0.imag());
              out_re[l * stride] += a_r * s_r - a_i * s_i;
              out_im[l * stride] += a_r * s_i + a_i * s_r;
            }
          }
        }
      }
    }
  }
}

}  // namespace sarbp::bp
