// Structure-of-arrays image tile: the private per-thread accumulation
// buffer of the paper's §4.3 ("each thread writes to a private image
// buffer so that each 3D block is accessed contiguously without long
// strides"), in the split re/im layout the SIMD kernels want.
#pragma once

#include "common/aligned.h"
#include "common/grid2d.h"
#include "common/region.h"
#include "common/types.h"

namespace sarbp::bp {

class SoaTile {
 public:
  SoaTile() = default;
  SoaTile(Index width, Index height) { reset(width, height); }

  void reset(Index width, Index height) {
    width_ = width;
    height_ = height;
    re_.assign(static_cast<std::size_t>(width * height), 0.0f);
    im_.assign(static_cast<std::size_t>(width * height), 0.0f);
  }

  [[nodiscard]] Index width() const { return width_; }
  [[nodiscard]] Index height() const { return height_; }

  [[nodiscard]] float* row_re(Index y) { return re_.data() + y * width_; }
  [[nodiscard]] float* row_im(Index y) { return im_.data() + y * width_; }
  [[nodiscard]] const float* row_re(Index y) const { return re_.data() + y * width_; }
  [[nodiscard]] const float* row_im(Index y) const { return im_.data() + y * width_; }

  [[nodiscard]] CFloat at(Index x, Index y) const {
    const auto i = static_cast<std::size_t>(y * width_ + x);
    return {re_[i], im_[i]};
  }

  void add(Index x, Index y, CFloat v) {
    const auto i = static_cast<std::size_t>(y * width_ + x);
    re_[i] += v.real();
    im_[i] += v.imag();
  }

  /// Accumulates this tile into `out` with the tile's origin at
  /// (region.x0, region.y0) — the end-of-loop copy/reduction of §4.3.
  void accumulate_into(Grid2D<CFloat>& out, const Region& region) const;

  /// Elementwise `this += other` over same-shape tiles: one step of the
  /// executor's deterministic per-job tree reduction over pulse slices.
  void accumulate_tile(const SoaTile& other);

  /// Elementwise `this -= other`: retiring an expired sub-aperture's
  /// partial image from a sliding-window accumulation. Floating-point
  /// add/subtract is not associative, so subtracting the exact tile that
  /// was added does not restore the pre-add bits — the bounded drift the
  /// streaming layer re-anchors away (DESIGN.md §13).
  void subtract_tile(const SoaTile& other);

 private:
  Index width_ = 0;
  Index height_ = 0;
  AlignedVector<float> re_;
  AlignedVector<float> im_;
};

}  // namespace sarbp::bp
