// Shared scalar ASR building blocks: the per-block range quadratic and the
// per-(block, pulse) inner sweep of the paper's Fig. 3(b).
//
// Two callers compose these the same way but own the tables differently:
//  - kernel_asr_scalar.cpp builds each (block, pulse) table immediately
//    before sweeping it (streaming, nothing retained);
//  - the service's plan executor (service/plan_cache.h) replays tables
//    prebuilt once per pulse-geometry and cached across requests, so a
//    repeated scene pays the table construction cost only on the first hit.
// Keeping the sweep in one place guarantees the cached-plan path computes
// bit-identical images to the streaming scalar kernel.
#pragma once

#include "asr/quadratic.h"
#include "asr/tables.h"
#include "backprojection/soa_tile.h"
#include "common/types.h"
#include "geometry/vec3.h"
#include "geometry/wavefront.h"

namespace sarbp::bp {

/// Quadratic for a block under the chosen loop order. For kYInner the l/m
/// roles are the image's y/x axes; sqrt(x^2+y^2+alpha^2) is symmetric under
/// swapping its first two arguments, so swapping the horizontal components
/// of both points yields the swapped-axis expansion.
inline asr::Quadratic2D block_range_quadratic(const geometry::Vec3& centre,
                                              const geometry::Vec3& radar,
                                              double spacing,
                                              geometry::LoopOrder order) {
  if (order == geometry::LoopOrder::kXInner) {
    return asr::range_quadratic(centre, radar, spacing, spacing);
  }
  const geometry::Vec3 centre_swapped{centre.y, centre.x, centre.z};
  const geometry::Vec3 radar_swapped{radar.y, radar.x, radar.z};
  return asr::range_quadratic(centre_swapped, radar_swapped, spacing, spacing);
}

/// One (block, pulse) pass of the ASR inner loop, reading prebuilt tables:
///
///   for each m: gamma = 1
///     for each l:
///       bin = A[l] + B[m] + l*C[m]
///       arg = Phi[l] * Psi[m] * gamma;  gamma *= Gamma[m]
///       Out[l, m] += arg * interp(in, bin)
///
/// `in`/`samples`: the pulse's range profile. `x_inner`: loop order the
/// tables were built for (l walks x when true, y otherwise). (bx, by):
/// tile-local block origin; len_l/len_m: table extents under that order.
inline void asr_sweep_block(const asr::BlockTables& tables, const CFloat* in,
                            Index samples, bool x_inner, Index bx, Index by,
                            Index len_l, Index len_m, SoaTile& out) {
  for (Index m = 0; m < len_m; ++m) {
    const float bin_b = tables.bin_b[static_cast<std::size_t>(m)];
    const float bin_c = tables.bin_c[static_cast<std::size_t>(m)];
    const float psi_r = tables.psi_re[static_cast<std::size_t>(m)];
    const float psi_i = tables.psi_im[static_cast<std::size_t>(m)];
    const float gam_r = tables.gam_re[static_cast<std::size_t>(m)];
    const float gam_i = tables.gam_im[static_cast<std::size_t>(m)];
    // Output pointers: l walks x (stride 1) or y (stride tile width).
    float* out_re;
    float* out_im;
    Index stride;
    if (x_inner) {
      out_re = out.row_re(by + m) + bx;
      out_im = out.row_im(by + m) + bx;
      stride = 1;
    } else {
      out_re = out.row_re(by) + bx + m;
      out_im = out.row_im(by) + bx + m;
      stride = out.width();
    }
    float g_r = 1.0f;
    float g_i = 0.0f;
    for (Index l = 0; l < len_l; ++l) {
      const float bin = tables.bin_a[static_cast<std::size_t>(l)] + bin_b +
                        static_cast<float>(l) * bin_c;
      // arg = Phi[l] * Psi[m] * gamma
      const float phi_r = tables.phi_re[static_cast<std::size_t>(l)];
      const float phi_i = tables.phi_im[static_cast<std::size_t>(l)];
      const float t_r = phi_r * g_r - phi_i * g_i;
      const float t_i = phi_r * g_i + phi_i * g_r;
      const float a_r = t_r * psi_r - t_i * psi_i;
      const float a_i = t_r * psi_i + t_i * psi_r;
      // gamma *= Gamma[m]
      const float ng_r = g_r * gam_r - g_i * gam_i;
      g_i = g_r * gam_i + g_i * gam_r;
      g_r = ng_r;
      if (bin >= 0.0f) {
        const auto ibin = static_cast<Index>(bin);
        if (ibin + 1 < samples) {
          const float frac = bin - static_cast<float>(ibin);
          const CFloat v0 = in[ibin];
          const CFloat v1 = in[ibin + 1];
          const float s_r = v0.real() + frac * (v1.real() - v0.real());
          const float s_i = v0.imag() + frac * (v1.imag() - v0.imag());
          out_re[l * stride] += a_r * s_r - a_i * s_i;
          out_im[l * stride] += a_r * s_i + a_i * s_r;
        }
      }
    }
  }
}

}  // namespace sarbp::bp
