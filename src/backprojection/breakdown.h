// Execution-time breakdown instrumentation for the Fig. 7 reproduction:
// how much of the backprojection time goes to square root, argument
// reduction, sine/cosine, interpolation (pulse access), and everything
// else — before (baseline) and after (ASR) strength reduction.
//
// Measured by differential passes over the identical iteration space: each
// pass adds exactly one more inner-loop component, and the component's cost
// is the time difference between consecutive passes. Results feed the
// fig7_asr_breakdown bench.
#pragma once

#include "common/region.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "sim/phase_history.h"

namespace sarbp::bp {

struct BaselineBreakdown {
  double other_s = 0.0;    ///< loop/address/position arithmetic
  double sqrt_s = 0.0;     ///< double-precision range computation
  double interp_s = 0.0;   ///< irregular pulse access + linear interp
  double argred_s = 0.0;   ///< double-precision reduction of 2*pi*k*r
  double sincos_s = 0.0;   ///< polynomial sin/cos + phase multiply
  double total_s = 0.0;    ///< full baseline kernel wall time

  [[nodiscard]] double trig_s() const { return argred_s + sincos_s; }
};

/// Differential breakdown of the baseline kernel over the given workload.
/// Single-threaded by construction (per-component timing).
BaselineBreakdown measure_baseline_breakdown(const sim::PhaseHistory& history,
                                             const geometry::ImageGrid& grid,
                                             const Region& region,
                                             Index pulse_begin,
                                             Index pulse_end);

struct AsrBreakdown {
  double precompute_s = 0.0;  ///< per-block table construction (A..Gamma)
  double inner_s = 0.0;       ///< strength-reduced inner loop
  double total_s = 0.0;       ///< full ASR kernel wall time
};

/// Precompute-vs-inner-loop split of the scalar ASR kernel.
AsrBreakdown measure_asr_breakdown(const sim::PhaseHistory& history,
                                   const geometry::ImageGrid& grid,
                                   const Region& region, Index pulse_begin,
                                   Index pulse_end, Index block_w,
                                   Index block_h);

}  // namespace sarbp::bp
