#include "backprojection/breakdown.h"

#include <cmath>
#include <numbers>

#include "asr/block_plan.h"
#include "asr/quadratic.h"
#include "asr/tables.h"
#include "backprojection/kernel.h"
#include "backprojection/soa_tile.h"
#include "common/timer.h"
#include "signal/trig.h"

namespace sarbp::bp {
namespace {

/// Pass levels: each adds one inner-loop component on top of the previous.
enum class Pass {
  kBase,       // pixel position + squared distance
  kSqrt,       // + double sqrt
  kInterp,     // + bin + irregular access + linear interpolation
  kArgRed,     // + double argument reduction of 2*pi*k*r
};

template <Pass P>
double run_pass(const sim::PhaseHistory& history,
                const geometry::ImageGrid& grid, const Region& region,
                Index pulse_begin, Index pulse_end) {
  const double inv_dr = 1.0 / history.bin_spacing();
  const double two_pi_k = 2.0 * std::numbers::pi * history.wavenumber();
  const Index samples = history.samples_per_pulse();
  // The sink defeats dead-code elimination without polluting the loop with
  // volatile reads.
  double sink = 0.0;
  Timer timer;
  for (Index p = pulse_begin; p < pulse_end; ++p) {
    const auto& meta = history.meta(p);
    const CFloat* in = history.pulse(p).data();
    for (Index y = region.y0; y < region.y0 + region.height; ++y) {
      for (Index x = region.x0; x < region.x0 + region.width; ++x) {
        const geometry::Vec3 pos = grid.position(x, y);
        const double dx = pos.x - meta.position.x;
        const double dy = pos.y - meta.position.y;
        const double dz = pos.z - meta.position.z;
        const double d2 = dx * dx + dy * dy + dz * dz;
        if constexpr (P == Pass::kBase) {
          sink += d2;
          continue;
        }
        const double r = std::sqrt(d2);
        if constexpr (P == Pass::kSqrt) {
          sink += r;
          continue;
        }
        const auto bin = static_cast<float>((r - meta.start_range_m) * inv_dr);
        float s_r = 0.0f;
        float s_i = 0.0f;
        if (bin >= 0.0f) {
          const auto ibin = static_cast<Index>(bin);
          if (ibin + 1 < samples) {
            const float frac = bin - static_cast<float>(ibin);
            const CFloat v0 = in[ibin];
            const CFloat v1 = in[ibin + 1];
            s_r = v0.real() + frac * (v1.real() - v0.real());
            s_i = v0.imag() + frac * (v1.imag() - v0.imag());
          }
        }
        if constexpr (P == Pass::kInterp) {
          sink += s_r + s_i;
          continue;
        }
        const double reduced = signal::reduce_to_pi(two_pi_k * r);
        sink += reduced + s_r + s_i;
      }
    }
  }
  const double elapsed = timer.seconds();
  // Consume the sink so the compiler cannot drop the passes.
  if (sink == 0.12345678901234) return -elapsed;
  return elapsed;
}

}  // namespace

BaselineBreakdown measure_baseline_breakdown(const sim::PhaseHistory& history,
                                             const geometry::ImageGrid& grid,
                                             const Region& region,
                                             Index pulse_begin,
                                             Index pulse_end) {
  BaselineBreakdown b;
  const double t_base = run_pass<Pass::kBase>(history, grid, region,
                                              pulse_begin, pulse_end);
  const double t_sqrt = run_pass<Pass::kSqrt>(history, grid, region,
                                              pulse_begin, pulse_end);
  const double t_interp = run_pass<Pass::kInterp>(history, grid, region,
                                                  pulse_begin, pulse_end);
  const double t_argred = run_pass<Pass::kArgRed>(history, grid, region,
                                                  pulse_begin, pulse_end);
  SoaTile tile(region.width, region.height);
  Timer timer;
  backproject_baseline(history, grid, region, pulse_begin, pulse_end,
                       /*all_float=*/false, geometry::LoopOrder::kXInner,
                       tile);
  const double t_full = timer.seconds();

  auto positive = [](double v) { return v > 0.0 ? v : 0.0; };
  b.other_s = positive(t_base);
  b.sqrt_s = positive(t_sqrt - t_base);
  b.interp_s = positive(t_interp - t_sqrt);
  b.argred_s = positive(t_argred - t_interp);
  b.sincos_s = positive(t_full - t_argred);
  b.total_s = t_full;
  return b;
}

AsrBreakdown measure_asr_breakdown(const sim::PhaseHistory& history,
                                   const geometry::ImageGrid& grid,
                                   const Region& region, Index pulse_begin,
                                   Index pulse_end, Index block_w,
                                   Index block_h) {
  AsrBreakdown b;
  // Precompute-only pass: per-(block, pulse) table construction, nothing
  // else — the cost ASR adds in exchange for removing the math functions.
  {
    const double two_pi_k = 2.0 * std::numbers::pi * history.wavenumber();
    const auto blocks = asr::plan_blocks(region.x0, region.y0, region.width,
                                         region.height, block_w, block_h);
    asr::BlockTables tables;
    Timer timer;
    for (const auto& block : blocks) {
      const geometry::Vec3 centre = grid.position_f(
          static_cast<double>(block.x0) +
              0.5 * static_cast<double>(block.width - 1),
          static_cast<double>(block.y0) +
              0.5 * static_cast<double>(block.height - 1));
      for (Index p = pulse_begin; p < pulse_end; ++p) {
        const auto& meta = history.meta(p);
        const asr::Quadratic2D q = asr::range_quadratic(
            centre, meta.position, grid.spacing(), grid.spacing());
        asr::build_block_tables_fast(q, meta.start_range_m, history.bin_spacing(),
                                two_pi_k, block.width, block.height, tables);
      }
    }
    b.precompute_s = timer.seconds();
  }
  {
    SoaTile tile(region.width, region.height);
    Timer timer;
    backproject_asr_scalar(history, grid, region, pulse_begin, pulse_end,
                           block_w, block_h, geometry::LoopOrder::kXInner,
                           tile);
    b.total_s = timer.seconds();
  }
  b.inner_s = b.total_s > b.precompute_s ? b.total_s - b.precompute_s : 0.0;
  return b;
}

}  // namespace sarbp::bp
