// Private seam between the ASR SIMD dispatcher (kernel_asr_simd.cpp) and
// the per-ISA kernel translation units (kernel_asr_avx2.cpp with
// -march=x86-64-v3, kernel_asr_avx512.cpp with -march=x86-64-v4). The
// dispatcher resolves host cpuid once and calls through these tables; the
// TUs never run unless selected, so a binary carrying AVX-512 code starts
// fine on an AVX2-only host.
//
// Everything here must stay ISA-neutral: this header is included by TUs
// compiled at three different -march levels, so no intrinsics and no
// vector types — function-pointer tables and plain scalar helpers only.
#pragma once

#include "asr/tables.h"
#include "backprojection/kernel.h"
#include "common/types.h"

namespace sarbp::bp::detail {

/// One ISA's row kernels. `acc_re`/`acc_im` are planar accumulation
/// buffers whose row m starts at `acc + m * acc_pitch` (pitch = len_l for
/// a block-local scratch, = tile width for fused in-place accumulation).
struct AsrIsaOps {
  int width;         ///< f32 lanes (8 or 16)
  const char* name;  ///< "avx2" / "avx512"
  /// Streaming-kernel rows: samples from split SoA planes (hardware
  /// gathers over pulse_re/pulse_im).
  void (*rows_soa)(const asr::BlockTables& t, const float* soa_re,
                   const float* soa_im, Index samples, float* acc_re,
                   float* acc_im, Index acc_pitch, Index len_l, Index len_m);
  /// Plan-replay rows: samples straight from the AoS pulse buffer (the
  /// form service plans hold), inner loop selected by `variant`.
  void (*rows_aos)(const asr::BlockTables& t, const CFloat* in, Index samples,
                   float* acc_re, float* acc_im, Index acc_pitch, Index len_l,
                   Index len_m, KernelVariant variant);
};

#if SARBP_HAVE_KERNEL_AVX2
const AsrIsaOps& asr_isa_ops_avx2();
#endif
#if SARBP_HAVE_KERNEL_AVX512
const AsrIsaOps& asr_isa_ops_avx512();
#endif

/// Per-row vector state for the W-step gamma recurrence (§4.4): lane i
/// carries Gamma^i and the whole vector advances by Gamma^W per chunk.
struct GammaLanes {
  alignas(64) float re[16];
  alignas(64) float im[16];
  float step_re;
  float step_im;
};

// `static`, not `inline`: each per-ISA TU must keep its *own* copy
// compiled at its own -march. A vague-linkage inline would be emitted once
// and COMDAT-merged across TUs, and if the linker kept the -march=x86-64-v4
// copy (GCC can auto-vectorize this loop with AVX-512) the AVX2 dispatch
// path would execute AVX-512 instructions.
[[maybe_unused]] static GammaLanes make_gamma_lanes(float gam_r, float gam_i,
                                                    int width) {
  GammaLanes lanes{};
  float gr = 1.0f;
  float gi = 0.0f;
  for (int lane = 0; lane < width; ++lane) {
    lanes.re[lane] = gr;
    lanes.im[lane] = gi;
    const float ngr = gr * gam_r - gi * gam_i;
    gi = gr * gam_i + gi * gam_r;
    gr = ngr;
  }
  lanes.step_re = gr;  // Gamma^W
  lanes.step_im = gi;
  return lanes;
}

}  // namespace sarbp::bp::detail
