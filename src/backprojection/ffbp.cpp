#include "backprojection/ffbp.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "asr/block_plan.h"
#include "common/check.h"
#include "signal/interp.h"

namespace sarbp::bp {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

}  // namespace

double ffbp_alignment_error(Index group, double pulse_angle_step_rad,
                            double tile_radius_m) {
  // A pulse at angular offset dtheta from the group reference sees a pixel
  // at tile-radius u with range differing from the plane-wave estimate by
  // ~u * dtheta (cross-range projection rotation). Worst pulse offset:
  // (group/2) steps.
  return 0.5 * static_cast<double>(group) * pulse_angle_step_rad *
         tile_radius_m;
}

double ffbp_work_fraction(const FfbpOptions& options, Index pulses,
                          Index image, Index samples_per_tile) {
  const double direct = static_cast<double>(pulses) *
                        static_cast<double>(image) *
                        static_cast<double>(image);
  const double tiles =
      std::ceil(static_cast<double>(image) / static_cast<double>(options.tile));
  const double combine = tiles * tiles * static_cast<double>(pulses) *
                         static_cast<double>(samples_per_tile);
  const double base_case = direct / static_cast<double>(options.group);
  return (combine + base_case) / direct;
}

Grid2D<CFloat> ffbp_form_image(const sim::PhaseHistory& history,
                               const geometry::ImageGrid& grid,
                               const FfbpOptions& options) {
  ensure(options.oversample > 0, "ffbp: oversample must be positive");
  ensure(history.num_pulses() > 0, "ffbp: empty history");
  // Band-limited range upsampling first (spectral zero-padding): the
  // compressed profiles are near-critically sampled, and the extra
  // resampling stage FFBP introduces would otherwise cost several dB.
  return ffbp_form_image_upsampled(history.upsampled(options.oversample),
                                   grid, options);
}

Grid2D<CFloat> ffbp_form_image_upsampled(const sim::PhaseHistory& upsampled,
                                         const geometry::ImageGrid& grid,
                                         const FfbpOptions& options) {
  ensure(options.tile > 0 && options.group > 0 && options.asr_block > 0 &&
             options.oversample > 0 && options.sinc_taps >= 1,
         "ffbp: options must be positive");
  ensure(upsampled.num_pulses() > 0, "ffbp: empty history");
  const Index pulses = upsampled.num_pulses();
  const Index groups = (pulses + options.group - 1) / options.group;
  const double dr_syn = upsampled.bin_spacing();
  const double two_pi_k = kTwoPi * upsampled.wavenumber();

  Grid2D<CFloat> out(grid.width(), grid.height());
  const auto tiles = asr::plan_blocks(0, 0, grid.width(), grid.height(),
                                      options.tile, options.tile);

  // Tiles are disjoint image regions with private decimated histories —
  // embarrassingly parallel.
#pragma omp parallel for schedule(dynamic)
  for (std::size_t tile_index = 0; tile_index < tiles.size(); ++tile_index) {
    const auto& tile = tiles[tile_index];
    const geometry::Vec3 centre = grid.position_f(
        static_cast<double>(tile.x0) + 0.5 * static_cast<double>(tile.width - 1),
        static_cast<double>(tile.y0) + 0.5 * static_cast<double>(tile.height - 1));
    const double tile_radius =
        0.5 * grid.spacing() *
        std::hypot(static_cast<double>(tile.width),
                   static_cast<double>(tile.height));

    // Per-group reference pulses and their centre ranges. Every synthetic
    // pulse carries its own start range (centred on its reference pulse's
    // tile-centre range), so the tile-local window length depends only on
    // the tile size — not on the range walk across the whole aperture.
    std::vector<Index> refs(static_cast<std::size_t>(groups));
    std::vector<double> ref_range(static_cast<std::size_t>(groups));
    for (Index g = 0; g < groups; ++g) {
      const Index begin = g * options.group;
      const Index end = std::min(begin + options.group, pulses);
      const Index ref = begin + (end - begin) / 2;
      refs[static_cast<std::size_t>(g)] = ref;
      ref_range[static_cast<std::size_t>(g)] =
          geometry::distance(centre, upsampled.meta(ref).position);
    }
    const double margin =
        tile_radius + static_cast<double>(options.range_margin_bins) * dr_syn;
    const auto tile_samples =
        static_cast<Index>(std::ceil(2.0 * margin / dr_syn)) + 1;

    // --- Level 1: decimate the group's pulses into one synthetic pulse
    // aligned to the tile centre (local plane-wave approximation), written
    // on the oversampled range grid.
    sim::PhaseHistory decimated(groups, tile_samples, dr_syn,
                                upsampled.wavenumber());
    for (Index g = 0; g < groups; ++g) {
      const Index begin = g * options.group;
      const Index end = std::min(begin + options.group, pulses);
      const Index ref = refs[static_cast<std::size_t>(g)];
      const double r_start = ref_range[static_cast<std::size_t>(g)] - margin;
      auto& meta = decimated.meta(g);
      meta.position = upsampled.meta(ref).position;
      meta.start_range_m = r_start;
      meta.time_s = upsampled.meta(ref).time_s;
      auto synthetic = decimated.pulse(g);

      for (Index j = begin; j < end; ++j) {
        const double delta =
            geometry::distance(centre, upsampled.meta(j).position) -
            ref_range[static_cast<std::size_t>(g)];
        const double phase = two_pi_k * delta;
        const CFloat rot(static_cast<float>(std::cos(phase)),
                         static_cast<float>(std::sin(phase)));
        const auto src = upsampled.pulse(j);
        const double src0 =
            (r_start + delta - upsampled.meta(j).start_range_m) / dr_syn;
        for (Index b = 0; b < tile_samples; ++b) {
          const double sb = src0 + static_cast<double>(b);
          // Linear interpolation is accurate here: the data is band-
          // limited-upsampled, so per-bin phase rotation is small.
          const CFloat sample = signal::linear_interp<float>(src, sb);
          synthetic[static_cast<std::size_t>(b)] += sample * rot;
        }
      }
    }
    decimated.build_soa();

    // --- Level 2: standard (ASR, SIMD) backprojection as the base case.
    const Region region{tile.x0, tile.y0, tile.width, tile.height};
    SoaTile acc(region.width, region.height);
    backproject_asr_simd(decimated, grid, region, 0, groups,
                         options.asr_block, options.asr_block,
                         geometry::LoopOrder::kXInner, acc);
    acc.accumulate_into(out, region);
  }
  return out;
}

}  // namespace sarbp::bp
