#include <cmath>
#include <numbers>

#include "backprojection/kernel.h"
#include "common/check.h"

namespace sarbp::bp {

const char* kernel_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kRefDouble: return "ref-double";
    case KernelKind::kBaseline: return "baseline";
    case KernelKind::kBaselineAllFloat: return "baseline-all-float";
    case KernelKind::kAsrScalar: return "asr-scalar";
    case KernelKind::kAsrSimd: return "asr-simd";
  }
  return "unknown";
}

void backproject_ref(const sim::PhaseHistory& history,
                     const geometry::ImageGrid& grid, const Region& region,
                     Index pulse_begin, Index pulse_end,
                     Grid2D<CDouble>& out) {
  ensure(pulse_begin >= 0 && pulse_end <= history.num_pulses() &&
             pulse_begin <= pulse_end,
         "backproject_ref: pulse range out of bounds");
  ensure(out.width() == grid.width() && out.height() == grid.height(),
         "backproject_ref: output is full-image sized");
  const double inv_dr = 1.0 / history.bin_spacing();
  const double two_pi_k = 2.0 * std::numbers::pi * history.wavenumber();
  const Index samples = history.samples_per_pulse();

  for (Index p = pulse_begin; p < pulse_end; ++p) {
    const auto& meta = history.meta(p);
    const auto in = history.pulse(p);
    for (Index y = region.y0; y < region.y0 + region.height; ++y) {
      for (Index x = region.x0; x < region.x0 + region.width; ++x) {
        const geometry::Vec3 pos = grid.position(x, y);
        const double r = geometry::distance(pos, meta.position);
        const double bin = (r - meta.start_range_m) * inv_dr;
        if (!(bin >= 0.0)) continue;
        const auto ibin = static_cast<Index>(bin);
        if (ibin + 1 >= samples) continue;
        const double frac = bin - static_cast<double>(ibin);
        const CFloat v0 = in[static_cast<std::size_t>(ibin)];
        const CFloat v1 = in[static_cast<std::size_t>(ibin) + 1];
        const CDouble sample{
            (1.0 - frac) * v0.real() + frac * v1.real(),
            (1.0 - frac) * v0.imag() + frac * v1.imag()};
        const double phase = two_pi_k * r;
        const CDouble arg{std::cos(phase), std::sin(phase)};
        out.at(x, y) += arg * sample;
      }
    }
  }
}

}  // namespace sarbp::bp
