// Backprojection kernels.
//
// Every kernel accumulates the contribution of pulses
// [pulse_begin, pulse_end) onto the pixels of `region`:
//
//   Out[x, y] += interp(In_p, (|p(x,y) - p0_p| - r0_p)/dr)
//                * exp(i * 2*pi*k * |p(x,y) - p0_p|)
//
// The variants differ in how the sqrt / sin / cos / interpolation are
// computed — they are the experimental units of the paper's evaluation:
//
//  - ref:          everything in double precision; ground truth for SNR.
//  - baseline:     the paper's pre-ASR production path — double-precision
//                  range and argument reduction, single-precision
//                  polynomial sin/cos and interpolation (Fig. 7 "before").
//  - baseline all-float: range in single precision — reproduces the 12 dB
//                  accuracy collapse quoted in §5.2.1 / Fig. 8.
//  - asr_scalar:   approximate strength reduction (Fig. 3(b)), portable.
//  - asr_simd:     ASR vectorized with AVX2/AVX-512 gathers over SoA pulse
//                  data, recurrence stepped by the SIMD width (§4.4).
//
// Float kernels write into a SoaTile covering exactly `region` (tile-local
// coordinates); the driver owns placement and reduction.
#pragma once

#include "backprojection/soa_tile.h"
#include "common/grid2d.h"
#include "common/region.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "geometry/wavefront.h"
#include "sim/phase_history.h"

namespace sarbp::bp {

enum class KernelKind {
  kRefDouble,
  kBaseline,
  kBaselineAllFloat,
  kAsrScalar,
  kAsrSimd,
};

/// Human-readable kernel name for benchmark output.
const char* kernel_name(KernelKind kind);

/// Full-double reference (accumulates into a double-precision image).
void backproject_ref(const sim::PhaseHistory& history,
                     const geometry::ImageGrid& grid, const Region& region,
                     Index pulse_begin, Index pulse_end,
                     Grid2D<CDouble>& out);

/// Paper baseline (Fig. 3(a)): mixed precision, polynomial trig.
/// `all_float` switches the range/reduction computation to single
/// precision (the Fig. 8 12 dB data point).
void backproject_baseline(const sim::PhaseHistory& history,
                          const geometry::ImageGrid& grid,
                          const Region& region, Index pulse_begin,
                          Index pulse_end, bool all_float,
                          geometry::LoopOrder order, SoaTile& out);

/// ASR kernel, portable scalar code (Fig. 3(b)).
/// block_w/block_h: ASR approximation block size (accuracy knob, §3.5).
void backproject_asr_scalar(const sim::PhaseHistory& history,
                            const geometry::ImageGrid& grid,
                            const Region& region, Index pulse_begin,
                            Index pulse_end, Index block_w, Index block_h,
                            geometry::LoopOrder order, SoaTile& out);

/// True when a vector (AVX2 or AVX-512) ASR kernel was compiled in.
bool asr_simd_available();
/// Lane count of the compiled SIMD kernel (16, 8, or 1 when scalar only).
int asr_simd_width();

/// Maps a requested kernel to the one that will actually run on this
/// build: kAsrSimd degrades to kAsrScalar when no vector ISA was compiled
/// in (kSimdWidth == 1), so drivers never dispatch the degenerate 1-lane
/// path. Every other kind maps to itself.
[[nodiscard]] inline KernelKind resolve_kernel(KernelKind requested) {
  if (requested == KernelKind::kAsrSimd && !asr_simd_available()) {
    return KernelKind::kAsrScalar;
  }
  return requested;
}

/// ASR kernel, SIMD. Falls back to the scalar kernel when no vector ISA
/// was compiled in. Requires history.has_soa().
void backproject_asr_simd(const sim::PhaseHistory& history,
                          const geometry::ImageGrid& grid,
                          const Region& region, Index pulse_begin,
                          Index pulse_end, Index block_w, Index block_h,
                          geometry::LoopOrder order, SoaTile& out);

/// FLOPs of one backprojection (pixel, pulse) pair in the ASR inner loop —
/// the paper's §5.2.2 count used for efficiency figures.
inline constexpr double kFlopsPerBackprojection = 38.0;

}  // namespace sarbp::bp
