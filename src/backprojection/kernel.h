// Backprojection kernels.
//
// Every kernel accumulates the contribution of pulses
// [pulse_begin, pulse_end) onto the pixels of `region`:
//
//   Out[x, y] += interp(In_p, (|p(x,y) - p0_p| - r0_p)/dr)
//                * exp(i * 2*pi*k * |p(x,y) - p0_p|)
//
// The variants differ in how the sqrt / sin / cos / interpolation are
// computed — they are the experimental units of the paper's evaluation:
//
//  - ref:          everything in double precision; ground truth for SNR.
//  - baseline:     the paper's pre-ASR production path — double-precision
//                  range and argument reduction, single-precision
//                  polynomial sin/cos and interpolation (Fig. 7 "before").
//  - baseline all-float: range in single precision — reproduces the 12 dB
//                  accuracy collapse quoted in §5.2.1 / Fig. 8.
//  - asr_scalar:   approximate strength reduction (Fig. 3(b)), portable.
//  - asr_simd:     ASR vectorized with AVX2/AVX-512 gathers over SoA pulse
//                  data, recurrence stepped by the SIMD width (§4.4).
//
// Float kernels write into a SoaTile covering exactly `region` (tile-local
// coordinates); the driver owns placement and reduction.
#pragma once

#include "asr/tables.h"
#include "backprojection/soa_tile.h"
#include "common/aligned.h"
#include "common/grid2d.h"
#include "common/region.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "geometry/wavefront.h"
#include "sim/phase_history.h"

namespace sarbp::bp {

enum class KernelKind {
  kRefDouble,
  kBaseline,
  kBaselineAllFloat,
  kAsrScalar,
  kAsrSimd,
};

/// Human-readable kernel name for benchmark output.
const char* kernel_name(KernelKind kind);

/// Full-double reference (accumulates into a double-precision image).
void backproject_ref(const sim::PhaseHistory& history,
                     const geometry::ImageGrid& grid, const Region& region,
                     Index pulse_begin, Index pulse_end,
                     Grid2D<CDouble>& out);

/// Paper baseline (Fig. 3(a)): mixed precision, polynomial trig.
/// `all_float` switches the range/reduction computation to single
/// precision (the Fig. 8 12 dB data point).
void backproject_baseline(const sim::PhaseHistory& history,
                          const geometry::ImageGrid& grid,
                          const Region& region, Index pulse_begin,
                          Index pulse_end, bool all_float,
                          geometry::LoopOrder order, SoaTile& out);

/// ASR kernel, portable scalar code (Fig. 3(b)).
/// block_w/block_h: ASR approximation block size (accuracy knob, §3.5).
void backproject_asr_scalar(const sim::PhaseHistory& history,
                            const geometry::ImageGrid& grid,
                            const Region& region, Index pulse_begin,
                            Index pulse_end, Index block_w, Index block_h,
                            geometry::LoopOrder order, SoaTile& out);

/// Which vector ISA the ASR SIMD kernel should run. The per-ISA kernel
/// translation units (kernel_asr_avx2.cpp / kernel_asr_avx512.cpp) are
/// compiled with their own explicit -march and linked unconditionally;
/// selection happens at runtime from host cpuid (src/common/cpu.h), so one
/// binary carries every width — no more compile-time-only dispatch.
enum class SimdIsa {
  kAuto,    ///< widest usable ISA on this host (the default)
  kScalar,  ///< force the portable scalar sweep
  kAvx2,    ///< force the 8-lane AVX2 TU (e.g. AVX2-on-AVX-512-host tests)
  kAvx512,  ///< force the 16-lane AVX-512 TU
};
const char* simd_isa_name(SimdIsa isa);

/// Inner-loop implementation variant of the fused plan-replay sweep — the
/// §4.4 ablation knobs benchmarked in bench/ablation_vectorization:
///  - kGather: hardware gathers of the interleaved In[bin], In[bin+1]
///    pairs straight from the AoS pulse buffer; FMA arithmetic. Default.
///  - kShuffleTranspose: one 16-byte contiguous load per lane (the four
///    floats re0,im0,re1,im1 are adjacent in AoS) + an in-register
///    transpose instead of gathers. Bit-identical to kGather: same
///    arithmetic in the same order, only the load mechanism differs.
///  - kGatherNoFma: gathers with separate mul+add in place of fused
///    multiply-add. Different rounding, so parity with kGather is at SNR
///    level (>70 dB), not bitwise.
enum class KernelVariant { kAuto, kGather, kShuffleTranspose, kGatherNoFma };
const char* kernel_variant_name(KernelVariant variant);

/// True when `isa` can run here: its kernel TU is linked in AND host cpuid
/// reports support. kScalar and kAuto are always available.
bool asr_isa_available(SimdIsa isa);

/// kAuto -> the widest usable ISA (kScalar when none). A concrete request
/// must be available — fails with a clear PreconditionError otherwise
/// (never SIGILL). First use also verifies the build's baseline ISA
/// against the host (cpu.h require_compiled_isa_supported).
SimdIsa asr_resolve_isa(SimdIsa requested);

/// True when a vector (AVX2 or AVX-512) ASR kernel is usable on this host.
bool asr_simd_available();
/// Lane count of the widest usable SIMD kernel (16, 8, or 1 when scalar).
int asr_simd_width();

/// Maps a requested kernel to the one that will actually run on this
/// build: kAsrSimd degrades to kAsrScalar when no vector ISA was compiled
/// in (kSimdWidth == 1), so drivers never dispatch the degenerate 1-lane
/// path. Every other kind maps to itself.
[[nodiscard]] inline KernelKind resolve_kernel(KernelKind requested) {
  if (requested == KernelKind::kAsrSimd && !asr_simd_available()) {
    return KernelKind::kAsrScalar;
  }
  return requested;
}

/// ASR kernel, SIMD (streaming: builds each block's tables on the fly).
/// Falls back to the scalar kernel when `isa` resolves to kScalar.
/// Requires history.has_soa() on the vector path.
void backproject_asr_simd(const sim::PhaseHistory& history,
                          const geometry::ImageGrid& grid,
                          const Region& region, Index pulse_begin,
                          Index pulse_end, Index block_w, Index block_h,
                          geometry::LoopOrder order, SoaTile& out,
                          SimdIsa isa = SimdIsa::kAuto);

/// Fused plan-replay sweep: one (block, pulse) pass of the ASR inner loop
/// reading *prebuilt* tables (the BlockTables stay resident across the
/// whole sweep) against the AoS pulse buffer — the SIMD counterpart of
/// kernel_asr_block.h's asr_sweep_block, sharing its signature so the
/// service's plan executor can swap between them per backend. Under
/// x_inner the vector rows accumulate straight into the tile (no scratch
/// round-trip); under y_inner they accumulate into the caller-owned
/// ws_re/ws_im workspace (resized here) and flush transposed. kScalar
/// resolution degrades to asr_sweep_block (bit-identical to the scalar
/// plan path). `variant` selects the inner-loop implementation; kAuto =
/// kGather.
///
/// zero_ws / flush_ws let a caller replaying many pulses of one block
/// amortize the y_inner workspace over a run of consecutive same-geometry
/// calls (same block, same orientation): pass zero_ws only on the first
/// call of the run and flush_ws only on the last, and the intermediate
/// calls keep accumulating into the still-resident workspace — the fused
/// counterpart of the streaming driver's once-per-block scratch. The
/// defaults (both true) keep the standalone one-call semantics. Both flags
/// are ignored under x_inner and under kScalar resolution, where nothing
/// is ever buffered.
void asr_plan_sweep_simd(const asr::BlockTables& tables, const CFloat* in,
                         Index samples, bool x_inner, Index bx, Index by,
                         Index len_l, Index len_m, SoaTile& out, SimdIsa isa,
                         KernelVariant variant, AlignedVector<float>& ws_re,
                         AlignedVector<float>& ws_im, bool zero_ws = true,
                         bool flush_ws = true);

/// FLOPs of one backprojection (pixel, pulse) pair in the ASR inner loop —
/// the paper's §5.2.2 count used for efficiency figures.
inline constexpr double kFlopsPerBackprojection = 38.0;

}  // namespace sarbp::bp
