// ASR backprojection, vectorized (paper §4.4):
//  - input pulse samples are read from the SoA planes with hardware
//    gather instructions (In[bin] and In[bin+1], real and imaginary);
//  - the loop-carried gamma recurrence is broken "by increasing the
//    recurrence step size to the SIMD width": each lane carries
//    Gamma[m]^lane and the whole vector is advanced by Gamma[m]^W;
//  - each block accumulates into an l-contiguous scratch tile so stores
//    stay unit-stride under either loop order, and is flushed into the
//    thread-private output tile once per block.
#include <cmath>
#include <numbers>

#include "asr/block_plan.h"
#include "asr/quadratic.h"
#include "asr/tables.h"
#include "backprojection/kernel.h"
#include "backprojection/kernel_asr_block.h"
#include "common/aligned.h"
#include "common/check.h"

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

// GCC's -Wmaybe-uninitialized fires inside the AVX-512 intrinsic headers
// when _mm512_cvttps_epi32 is inlined here: the intrinsics deliberately
// start from _mm512_undefined_epi32 (GCC bug 105593). Suppress just that
// diagnostic for this translation unit so -Werror builds stay clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace sarbp::bp {
namespace {

#if defined(__AVX512F__)
constexpr int kSimdWidth = 16;
#elif defined(__AVX2__)
constexpr int kSimdWidth = 8;
#else
constexpr int kSimdWidth = 1;
#endif

#if defined(__AVX512F__) || defined(__AVX2__)

/// Per-row vector state: lane gammas and the W-step factor.
struct GammaLanes {
  alignas(64) float re[16];
  alignas(64) float im[16];
  float step_re;
  float step_im;
};

GammaLanes make_gamma_lanes(float gam_r, float gam_i, int width) {
  GammaLanes lanes{};
  float gr = 1.0f;
  float gi = 0.0f;
  for (int lane = 0; lane < width; ++lane) {
    lanes.re[lane] = gr;
    lanes.im[lane] = gi;
    const float ngr = gr * gam_r - gi * gam_i;
    gi = gr * gam_i + gi * gam_r;
    gr = ngr;
  }
  lanes.step_re = gr;  // Gamma^W
  lanes.step_im = gi;
  return lanes;
}

#endif  // any SIMD

#if defined(__AVX512F__)

void asr_rows_avx512(const asr::BlockTables& t, const float* soa_re,
                     const float* soa_im, Index samples, float* scratch_re,
                     float* scratch_im, Index len_l, Index len_m) {
  const __m512 iota = _mm512_set_ps(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4,
                                    3, 2, 1, 0);
  const __m512i max_bin = _mm512_set1_epi32(static_cast<int>(samples) - 1);
  for (Index m = 0; m < len_m; ++m) {
    const float bin_b = t.bin_b[static_cast<std::size_t>(m)];
    const float bin_c = t.bin_c[static_cast<std::size_t>(m)];
    const float psi_r = t.psi_re[static_cast<std::size_t>(m)];
    const float psi_i = t.psi_im[static_cast<std::size_t>(m)];
    const GammaLanes lanes = make_gamma_lanes(
        t.gam_re[static_cast<std::size_t>(m)],
        t.gam_im[static_cast<std::size_t>(m)], 16);
    __m512 g_r = _mm512_load_ps(lanes.re);
    __m512 g_i = _mm512_load_ps(lanes.im);
    const __m512 step_r = _mm512_set1_ps(lanes.step_re);
    const __m512 step_i = _mm512_set1_ps(lanes.step_im);
    const __m512 psi_rv = _mm512_set1_ps(psi_r);
    const __m512 psi_iv = _mm512_set1_ps(psi_i);
    const __m512 bin_bv = _mm512_set1_ps(bin_b);
    const __m512 bin_cv = _mm512_set1_ps(bin_c);
    float* acc_re = scratch_re + m * len_l;
    float* acc_im = scratch_im + m * len_l;
    Index l = 0;
    for (; l + 16 <= len_l; l += 16) {
      const __m512 lvec =
          _mm512_add_ps(iota, _mm512_set1_ps(static_cast<float>(l)));
      const __m512 bin_av = _mm512_loadu_ps(&t.bin_a[static_cast<std::size_t>(l)]);
      const __m512 bin =
          _mm512_fmadd_ps(lvec, bin_cv, _mm512_add_ps(bin_av, bin_bv));
      const __m512i ibin = _mm512_cvttps_epi32(bin);
      const __mmask16 nonneg =
          _mm512_cmp_ps_mask(bin, _mm512_setzero_ps(), _CMP_GE_OQ);
      const __mmask16 inrange = _mm512_cmplt_epi32_mask(ibin, max_bin);
      // cvttps saturates float bins beyond INT_MAX to INT_MIN; the explicit
      // ibin >= 0 check keeps such lanes out of the gather.
      const __mmask16 iok =
          _mm512_cmpgt_epi32_mask(ibin, _mm512_set1_epi32(-1));
      const __mmask16 ok = nonneg & inrange & iok;
      const __m512 frac = _mm512_sub_ps(bin, _mm512_cvtepi32_ps(ibin));
      const __m512i ibin1 = _mm512_add_epi32(ibin, _mm512_set1_epi32(1));
      const __m512 zero = _mm512_setzero_ps();
      // 4 hardware gathers: In[bin]/In[bin+1] over both SoA planes; masked
      // lanes never touch memory and contribute exact zeros downstream.
      const __m512 re0 = _mm512_mask_i32gather_ps(zero, ok, ibin, soa_re, 4);
      const __m512 re1 = _mm512_mask_i32gather_ps(zero, ok, ibin1, soa_re, 4);
      const __m512 im0 = _mm512_mask_i32gather_ps(zero, ok, ibin, soa_im, 4);
      const __m512 im1 = _mm512_mask_i32gather_ps(zero, ok, ibin1, soa_im, 4);
      const __m512 s_r = _mm512_fmadd_ps(frac, _mm512_sub_ps(re1, re0), re0);
      const __m512 s_i = _mm512_fmadd_ps(frac, _mm512_sub_ps(im1, im0), im0);
      const __m512 phi_r = _mm512_loadu_ps(&t.phi_re[static_cast<std::size_t>(l)]);
      const __m512 phi_i = _mm512_loadu_ps(&t.phi_im[static_cast<std::size_t>(l)]);
      // arg = Phi * Psi * gamma (two complex multiplies)
      const __m512 t_r =
          _mm512_fmsub_ps(phi_r, g_r, _mm512_mul_ps(phi_i, g_i));
      const __m512 t_i =
          _mm512_fmadd_ps(phi_r, g_i, _mm512_mul_ps(phi_i, g_r));
      const __m512 a_r =
          _mm512_fmsub_ps(t_r, psi_rv, _mm512_mul_ps(t_i, psi_iv));
      const __m512 a_i =
          _mm512_fmadd_ps(t_r, psi_iv, _mm512_mul_ps(t_i, psi_rv));
      // gamma *= Gamma^16
      const __m512 ng_r =
          _mm512_fmsub_ps(g_r, step_r, _mm512_mul_ps(g_i, step_i));
      g_i = _mm512_fmadd_ps(g_r, step_i, _mm512_mul_ps(g_i, step_r));
      g_r = ng_r;
      // Out += arg * sample
      const __m512 c_r = _mm512_fmsub_ps(a_r, s_r, _mm512_mul_ps(a_i, s_i));
      const __m512 c_i = _mm512_fmadd_ps(a_r, s_i, _mm512_mul_ps(a_i, s_r));
      _mm512_storeu_ps(acc_re + l,
                       _mm512_add_ps(_mm512_loadu_ps(acc_re + l), c_r));
      _mm512_storeu_ps(acc_im + l,
                       _mm512_add_ps(_mm512_loadu_ps(acc_im + l), c_i));
    }
    // Scalar tail continues the recurrence from lane 0 of the vector state.
    float sg_r = _mm512_cvtss_f32(g_r);
    float sg_i = _mm512_cvtss_f32(g_i);
    const float gam_r = t.gam_re[static_cast<std::size_t>(m)];
    const float gam_i = t.gam_im[static_cast<std::size_t>(m)];
    for (; l < len_l; ++l) {
      const float bin = t.bin_a[static_cast<std::size_t>(l)] + bin_b +
                        static_cast<float>(l) * bin_c;
      const float phi_r = t.phi_re[static_cast<std::size_t>(l)];
      const float phi_i = t.phi_im[static_cast<std::size_t>(l)];
      const float t_r = phi_r * sg_r - phi_i * sg_i;
      const float t_i = phi_r * sg_i + phi_i * sg_r;
      const float a_r = t_r * psi_r - t_i * psi_i;
      const float a_i = t_r * psi_i + t_i * psi_r;
      const float ng_r = sg_r * gam_r - sg_i * gam_i;
      sg_i = sg_r * gam_i + sg_i * gam_r;
      sg_r = ng_r;
      if (bin >= 0.0f) {
        const auto ib = static_cast<Index>(bin);
        if (ib + 1 < samples) {
          const float frac = bin - static_cast<float>(ib);
          const float s_r = soa_re[ib] + frac * (soa_re[ib + 1] - soa_re[ib]);
          const float s_i = soa_im[ib] + frac * (soa_im[ib + 1] - soa_im[ib]);
          acc_re[l] += a_r * s_r - a_i * s_i;
          acc_im[l] += a_r * s_i + a_i * s_r;
        }
      }
    }
  }
}

#elif defined(__AVX2__)

void asr_rows_avx2(const asr::BlockTables& t, const float* soa_re,
                   const float* soa_im, Index samples, float* scratch_re,
                   float* scratch_im, Index len_l, Index len_m) {
  const __m256 iota = _mm256_set_ps(7, 6, 5, 4, 3, 2, 1, 0);
  const __m256i max_bin = _mm256_set1_epi32(static_cast<int>(samples) - 1);
  for (Index m = 0; m < len_m; ++m) {
    const float bin_b = t.bin_b[static_cast<std::size_t>(m)];
    const float bin_c = t.bin_c[static_cast<std::size_t>(m)];
    const float psi_r = t.psi_re[static_cast<std::size_t>(m)];
    const float psi_i = t.psi_im[static_cast<std::size_t>(m)];
    const GammaLanes lanes = make_gamma_lanes(
        t.gam_re[static_cast<std::size_t>(m)],
        t.gam_im[static_cast<std::size_t>(m)], 8);
    __m256 g_r = _mm256_load_ps(lanes.re);
    __m256 g_i = _mm256_load_ps(lanes.im);
    const __m256 step_r = _mm256_set1_ps(lanes.step_re);
    const __m256 step_i = _mm256_set1_ps(lanes.step_im);
    const __m256 psi_rv = _mm256_set1_ps(psi_r);
    const __m256 psi_iv = _mm256_set1_ps(psi_i);
    const __m256 bin_bv = _mm256_set1_ps(bin_b);
    const __m256 bin_cv = _mm256_set1_ps(bin_c);
    float* acc_re = scratch_re + m * len_l;
    float* acc_im = scratch_im + m * len_l;
    Index l = 0;
    for (; l + 8 <= len_l; l += 8) {
      const __m256 lvec =
          _mm256_add_ps(iota, _mm256_set1_ps(static_cast<float>(l)));
      const __m256 bin_av = _mm256_loadu_ps(&t.bin_a[static_cast<std::size_t>(l)]);
      const __m256 bin =
          _mm256_fmadd_ps(lvec, bin_cv, _mm256_add_ps(bin_av, bin_bv));
      const __m256i ibin = _mm256_cvttps_epi32(bin);
      const __m256 nonneg =
          _mm256_cmp_ps(bin, _mm256_setzero_ps(), _CMP_GE_OQ);
      const __m256 inrange =
          _mm256_castsi256_ps(_mm256_cmpgt_epi32(max_bin, ibin));
      // Guard against cvttps saturation (INT_MIN) for out-of-range bins.
      const __m256 iok = _mm256_castsi256_ps(
          _mm256_cmpgt_epi32(ibin, _mm256_set1_epi32(-1)));
      const __m256 ok = _mm256_and_ps(_mm256_and_ps(nonneg, inrange), iok);
      const __m256 frac = _mm256_sub_ps(bin, _mm256_cvtepi32_ps(ibin));
      const __m256i ibin1 = _mm256_add_epi32(ibin, _mm256_set1_epi32(1));
      const __m256 zero = _mm256_setzero_ps();
      const __m256 re0 = _mm256_mask_i32gather_ps(zero, soa_re, ibin, ok, 4);
      const __m256 re1 = _mm256_mask_i32gather_ps(zero, soa_re, ibin1, ok, 4);
      const __m256 im0 = _mm256_mask_i32gather_ps(zero, soa_im, ibin, ok, 4);
      const __m256 im1 = _mm256_mask_i32gather_ps(zero, soa_im, ibin1, ok, 4);
      const __m256 s_r = _mm256_fmadd_ps(frac, _mm256_sub_ps(re1, re0), re0);
      const __m256 s_i = _mm256_fmadd_ps(frac, _mm256_sub_ps(im1, im0), im0);
      const __m256 phi_r = _mm256_loadu_ps(&t.phi_re[static_cast<std::size_t>(l)]);
      const __m256 phi_i = _mm256_loadu_ps(&t.phi_im[static_cast<std::size_t>(l)]);
      const __m256 t_r =
          _mm256_fmsub_ps(phi_r, g_r, _mm256_mul_ps(phi_i, g_i));
      const __m256 t_i =
          _mm256_fmadd_ps(phi_r, g_i, _mm256_mul_ps(phi_i, g_r));
      const __m256 a_r =
          _mm256_fmsub_ps(t_r, psi_rv, _mm256_mul_ps(t_i, psi_iv));
      const __m256 a_i =
          _mm256_fmadd_ps(t_r, psi_iv, _mm256_mul_ps(t_i, psi_rv));
      const __m256 ng_r =
          _mm256_fmsub_ps(g_r, step_r, _mm256_mul_ps(g_i, step_i));
      g_i = _mm256_fmadd_ps(g_r, step_i, _mm256_mul_ps(g_i, step_r));
      g_r = ng_r;
      const __m256 c_r = _mm256_fmsub_ps(a_r, s_r, _mm256_mul_ps(a_i, s_i));
      const __m256 c_i = _mm256_fmadd_ps(a_r, s_i, _mm256_mul_ps(a_i, s_r));
      _mm256_storeu_ps(acc_re + l,
                       _mm256_add_ps(_mm256_loadu_ps(acc_re + l), c_r));
      _mm256_storeu_ps(acc_im + l,
                       _mm256_add_ps(_mm256_loadu_ps(acc_im + l), c_i));
    }
    float sg_r = _mm256_cvtss_f32(g_r);
    float sg_i = _mm256_cvtss_f32(g_i);
    const float gam_r = t.gam_re[static_cast<std::size_t>(m)];
    const float gam_i = t.gam_im[static_cast<std::size_t>(m)];
    for (; l < len_l; ++l) {
      const float bin = t.bin_a[static_cast<std::size_t>(l)] + bin_b +
                        static_cast<float>(l) * bin_c;
      const float phi_r = t.phi_re[static_cast<std::size_t>(l)];
      const float phi_i = t.phi_im[static_cast<std::size_t>(l)];
      const float t_r = phi_r * sg_r - phi_i * sg_i;
      const float t_i = phi_r * sg_i + phi_i * sg_r;
      const float a_r = t_r * psi_r - t_i * psi_i;
      const float a_i = t_r * psi_i + t_i * psi_r;
      const float ng_r = sg_r * gam_r - sg_i * gam_i;
      sg_i = sg_r * gam_i + sg_i * gam_r;
      sg_r = ng_r;
      if (bin >= 0.0f) {
        const auto ib = static_cast<Index>(bin);
        if (ib + 1 < samples) {
          const float frac = bin - static_cast<float>(ib);
          const float s_r = soa_re[ib] + frac * (soa_re[ib + 1] - soa_re[ib]);
          const float s_i = soa_im[ib] + frac * (soa_im[ib + 1] - soa_im[ib]);
          acc_re[l] += a_r * s_r - a_i * s_i;
          acc_im[l] += a_r * s_i + a_i * s_r;
        }
      }
    }
  }
}

#endif  // ISA selection

}  // namespace

bool asr_simd_available() { return kSimdWidth > 1; }
int asr_simd_width() { return kSimdWidth; }

void backproject_asr_simd(const sim::PhaseHistory& history,
                          const geometry::ImageGrid& grid,
                          const Region& region, Index pulse_begin,
                          Index pulse_end, Index block_w, Index block_h,
                          geometry::LoopOrder order, SoaTile& out) {
#if defined(__AVX512F__) || defined(__AVX2__)
  ensure(history.has_soa(), "backproject_asr_simd: call PhaseHistory::build_soa first");
  ensure(pulse_begin >= 0 && pulse_end <= history.num_pulses() &&
             pulse_begin <= pulse_end,
         "backproject_asr_simd: pulse range out of bounds");
  ensure(out.width() == region.width && out.height() == region.height,
         "backproject_asr_simd: tile/region shape mismatch");
  const double two_pi_k = 2.0 * std::numbers::pi * history.wavenumber();
  const Index samples = history.samples_per_pulse();
  const bool x_inner = order == geometry::LoopOrder::kXInner;

  const auto blocks = asr::plan_blocks(region.x0, region.y0, region.width,
                                       region.height, block_w, block_h);
  asr::BlockTables tables;
  AlignedVector<float> scratch_re;
  AlignedVector<float> scratch_im;

  for (const auto& block : blocks) {
    const geometry::Vec3 centre = grid.position_f(
        static_cast<double>(block.x0) + 0.5 * static_cast<double>(block.width - 1),
        static_cast<double>(block.y0) + 0.5 * static_cast<double>(block.height - 1));
    const Index len_l = x_inner ? block.width : block.height;
    const Index len_m = x_inner ? block.height : block.width;
    const Index bx = block.x0 - region.x0;
    const Index by = block.y0 - region.y0;
    scratch_re.assign(static_cast<std::size_t>(len_l * len_m), 0.0f);
    scratch_im.assign(static_cast<std::size_t>(len_l * len_m), 0.0f);

    for (Index p = pulse_begin; p < pulse_end; ++p) {
      const auto& meta = history.meta(p);
      const asr::Quadratic2D q =
          block_range_quadratic(centre, meta.position, grid.spacing(), order);
      asr::build_block_tables_fast(q, meta.start_range_m, history.bin_spacing(),
                              two_pi_k, len_l, len_m, tables);
      const float* soa_re = history.pulse_re(p).data();
      const float* soa_im = history.pulse_im(p).data();
#if defined(__AVX512F__)
      asr_rows_avx512(tables, soa_re, soa_im, samples, scratch_re.data(),
                      scratch_im.data(), len_l, len_m);
#else
      asr_rows_avx2(tables, soa_re, soa_im, samples, scratch_re.data(),
                    scratch_im.data(), len_l, len_m);
#endif
    }

    // Flush the block scratch into the thread tile under the (l, m) ->
    // (x, y) mapping of the chosen order.
    if (x_inner) {
      for (Index m = 0; m < len_m; ++m) {
        float* dst_re = out.row_re(by + m) + bx;
        float* dst_im = out.row_im(by + m) + bx;
        const float* src_re = scratch_re.data() + m * len_l;
        const float* src_im = scratch_im.data() + m * len_l;
        for (Index l = 0; l < len_l; ++l) {
          dst_re[l] += src_re[l];
          dst_im[l] += src_im[l];
        }
      }
    } else {
      for (Index m = 0; m < len_m; ++m) {
        const float* src_re = scratch_re.data() + m * len_l;
        const float* src_im = scratch_im.data() + m * len_l;
        for (Index l = 0; l < len_l; ++l) {
          out.row_re(by + l)[bx + m] += src_re[l];
          out.row_im(by + l)[bx + m] += src_im[l];
        }
      }
    }
  }
#else
  backproject_asr_scalar(history, grid, region, pulse_begin, pulse_end,
                         block_w, block_h, order, out);
#endif
}

}  // namespace sarbp::bp
