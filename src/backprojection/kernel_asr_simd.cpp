// ASR SIMD kernel dispatch (paper §4.4). The vector code itself lives in
// the per-ISA translation units kernel_asr_avx2.cpp (-march=x86-64-v3) and
// kernel_asr_avx512.cpp (-march=x86-64-v4); this TU is ISA-neutral and
// picks one at runtime from host cpuid — one binary carries every width.
// First use also fail-fasts (clear PreconditionError, never SIGILL) when
// the build's *baseline* -march exceeds the host.
//
// Two drivers share the row kernels:
//  - backproject_asr_simd: streaming — builds each (block, pulse) table on
//    the fly, gathers from the SoA pulse planes, accumulates into an
//    l-contiguous scratch flushed once per block;
//  - asr_plan_sweep_simd: fused plan replay — reads tables prebuilt by the
//    service's plan cache (resident across the whole sweep), reads samples
//    straight from the AoS pulse buffer, and under x_inner accumulates
//    directly into the output tile with no scratch round-trip. Under
//    y_inner the zero_ws/flush_ws flags let the caller keep the workspace
//    resident across a run of consecutive pulses so the zero + transposed
//    flush amortizes per block, not per pulse.
#include <cmath>
#include <numbers>

#include "asr/block_plan.h"
#include "asr/quadratic.h"
#include "asr/tables.h"
#include "backprojection/kernel.h"
#include "backprojection/kernel_asr_block.h"
#include "backprojection/kernel_simd_ops.h"
#include "common/aligned.h"
#include "common/check.h"
#include "common/cpu.h"

namespace sarbp::bp {
namespace {

/// Host capabilities, resolved once. The first kernel call is the natural
/// fail-fast point for baseline-vs-host mismatch: anything that got this
/// far is about to run vector code.
const CpuInfo& host_caps() {
  static const CpuInfo info = [] {
    require_compiled_isa_supported();
    return cpu_info();
  }();
  return info;
}

/// Ops table for a *concrete* resolved ISA; null for kScalar (and for a
/// vector ISA whose TU was not built into this binary).
const detail::AsrIsaOps* ops_for(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAvx512:
#if SARBP_HAVE_KERNEL_AVX512
      return &detail::asr_isa_ops_avx512();
#else
      return nullptr;
#endif
    case SimdIsa::kAvx2:
#if SARBP_HAVE_KERNEL_AVX2
      return &detail::asr_isa_ops_avx2();
#else
      return nullptr;
#endif
    case SimdIsa::kScalar:
    case SimdIsa::kAuto:
      return nullptr;
  }
  return nullptr;
}

}  // namespace

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAuto: return "auto";
    case SimdIsa::kScalar: return "scalar";
    case SimdIsa::kAvx2: return "avx2";
    case SimdIsa::kAvx512: return "avx512";
  }
  return "?";
}

const char* kernel_variant_name(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kAuto: return "auto";
    case KernelVariant::kGather: return "gather";
    case KernelVariant::kShuffleTranspose: return "shuffle";
    case KernelVariant::kGatherNoFma: return "gather-nofma";
  }
  return "?";
}

bool asr_isa_available(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAuto:
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
      return host_caps().avx2;
    case SimdIsa::kAvx512:
      return host_caps().avx512f;
  }
  return false;
}

SimdIsa asr_resolve_isa(SimdIsa requested) {
  if (requested == SimdIsa::kAuto) {
    if (host_caps().avx512f) return SimdIsa::kAvx512;
    if (host_caps().avx2) return SimdIsa::kAvx2;
    return SimdIsa::kScalar;
  }
  ensure(asr_isa_available(requested),
         "asr_resolve_isa: requested SIMD ISA is not usable here (kernel TU "
         "not built in, or the host cpuid lacks it); query "
         "asr_isa_available first");
  return requested;
}

bool asr_simd_available() {
  return asr_resolve_isa(SimdIsa::kAuto) != SimdIsa::kScalar;
}

int asr_simd_width() { return host_caps().simd_width_floats; }

void backproject_asr_simd(const sim::PhaseHistory& history,
                          const geometry::ImageGrid& grid,
                          const Region& region, Index pulse_begin,
                          Index pulse_end, Index block_w, Index block_h,
                          geometry::LoopOrder order, SoaTile& out,
                          SimdIsa isa) {
  const detail::AsrIsaOps* ops = ops_for(asr_resolve_isa(isa));
  if (ops == nullptr) {
    backproject_asr_scalar(history, grid, region, pulse_begin, pulse_end,
                           block_w, block_h, order, out);
    return;
  }
  ensure(history.has_soa(),
         "backproject_asr_simd: call PhaseHistory::build_soa first");
  ensure(pulse_begin >= 0 && pulse_end <= history.num_pulses() &&
             pulse_begin <= pulse_end,
         "backproject_asr_simd: pulse range out of bounds");
  ensure(out.width() == region.width && out.height() == region.height,
         "backproject_asr_simd: tile/region shape mismatch");
  const double two_pi_k = 2.0 * std::numbers::pi * history.wavenumber();
  const Index samples = history.samples_per_pulse();
  const bool x_inner = order == geometry::LoopOrder::kXInner;

  const auto blocks = asr::plan_blocks(region.x0, region.y0, region.width,
                                       region.height, block_w, block_h);
  asr::BlockTables tables;
  AlignedVector<float> scratch_re;
  AlignedVector<float> scratch_im;

  for (const auto& block : blocks) {
    const geometry::Vec3 centre = grid.position_f(
        static_cast<double>(block.x0) +
            0.5 * static_cast<double>(block.width - 1),
        static_cast<double>(block.y0) +
            0.5 * static_cast<double>(block.height - 1));
    const Index len_l = x_inner ? block.width : block.height;
    const Index len_m = x_inner ? block.height : block.width;
    const Index bx = block.x0 - region.x0;
    const Index by = block.y0 - region.y0;
    scratch_re.assign(static_cast<std::size_t>(len_l * len_m), 0.0f);
    scratch_im.assign(static_cast<std::size_t>(len_l * len_m), 0.0f);

    for (Index p = pulse_begin; p < pulse_end; ++p) {
      const auto& meta = history.meta(p);
      const asr::Quadratic2D q =
          block_range_quadratic(centre, meta.position, grid.spacing(), order);
      asr::build_block_tables_fast(q, meta.start_range_m,
                                   history.bin_spacing(), two_pi_k, len_l,
                                   len_m, tables);
      ops->rows_soa(tables, history.pulse_re(p).data(),
                    history.pulse_im(p).data(), samples, scratch_re.data(),
                    scratch_im.data(), len_l, len_l, len_m);
    }

    // Flush the block scratch into the thread tile under the (l, m) ->
    // (x, y) mapping of the chosen order.
    if (x_inner) {
      for (Index m = 0; m < len_m; ++m) {
        float* dst_re = out.row_re(by + m) + bx;
        float* dst_im = out.row_im(by + m) + bx;
        const float* src_re = scratch_re.data() + m * len_l;
        const float* src_im = scratch_im.data() + m * len_l;
        for (Index l = 0; l < len_l; ++l) {
          dst_re[l] += src_re[l];
          dst_im[l] += src_im[l];
        }
      }
    } else {
      for (Index m = 0; m < len_m; ++m) {
        const float* src_re = scratch_re.data() + m * len_l;
        const float* src_im = scratch_im.data() + m * len_l;
        for (Index l = 0; l < len_l; ++l) {
          out.row_re(by + l)[bx + m] += src_re[l];
          out.row_im(by + l)[bx + m] += src_im[l];
        }
      }
    }
  }
}

void asr_plan_sweep_simd(const asr::BlockTables& tables, const CFloat* in,
                         Index samples, bool x_inner, Index bx, Index by,
                         Index len_l, Index len_m, SoaTile& out, SimdIsa isa,
                         KernelVariant variant, AlignedVector<float>& ws_re,
                         AlignedVector<float>& ws_im, bool zero_ws,
                         bool flush_ws) {
  const detail::AsrIsaOps* ops = ops_for(asr_resolve_isa(isa));
  if (ops == nullptr) {
    // Scalar resolution: bit-identical to the plan executor's scalar path.
    asr_sweep_block(tables, in, samples, x_inner, bx, by, len_l, len_m, out);
    return;
  }
  // With fewer than two samples no bin is interpolable (every lane is
  // masked); returning early also keeps the shuffle variant's clamped
  // dummy loads in bounds. Safe under run batching: `samples` is constant
  // across a history, so the whole run bails out and nothing is flushed.
  if (samples < 2) return;
  if (x_inner) {
    // l walks x: rows are contiguous in the tile, so accumulate the vector
    // rows in place with the tile width as the row pitch.
    ops->rows_aos(tables, in, samples, out.row_re(by) + bx,
                  out.row_im(by) + bx, out.width(), len_l, len_m, variant);
    return;
  }
  // l walks y: accumulate l-contiguous rows into the workspace, and flush
  // transposed at the end of the run (same structure as the streaming
  // kernel's once-per-block scratch).
  if (zero_ws) {
    ws_re.assign(static_cast<std::size_t>(len_l * len_m), 0.0f);
    ws_im.assign(static_cast<std::size_t>(len_l * len_m), 0.0f);
  }
  ops->rows_aos(tables, in, samples, ws_re.data(), ws_im.data(), len_l,
                len_l, len_m, variant);
  if (!flush_ws) return;
  for (Index m = 0; m < len_m; ++m) {
    const float* src_re = ws_re.data() + m * len_l;
    const float* src_im = ws_im.data() + m * len_l;
    for (Index l = 0; l < len_l; ++l) {
      out.row_re(by + l)[bx + m] += src_re[l];
      out.row_im(by + l)[bx + m] += src_im[l];
    }
  }
}

}  // namespace sarbp::bp
