#include "backprojection/soa_tile.h"

#include "common/check.h"

namespace sarbp::bp {

void SoaTile::accumulate_into(Grid2D<CFloat>& out, const Region& region) const {
  ensure(region.width == width_ && region.height == height_,
         "SoaTile::accumulate_into: region shape mismatch");
  ensure(region.x0 >= 0 && region.y0 >= 0 &&
             region.x0 + region.width <= out.width() &&
             region.y0 + region.height <= out.height(),
         "SoaTile::accumulate_into: region outside image");
  for (Index y = 0; y < height_; ++y) {
    auto dst = out.row(region.y0 + y);
    const float* src_re = row_re(y);
    const float* src_im = row_im(y);
    for (Index x = 0; x < width_; ++x) {
      dst[static_cast<std::size_t>(region.x0 + x)] +=
          CFloat(src_re[x], src_im[x]);
    }
  }
}

void SoaTile::accumulate_tile(const SoaTile& other) {
  ensure(other.width_ == width_ && other.height_ == height_,
         "SoaTile::accumulate_tile: shape mismatch");
  const std::size_t n = re_.size();
  for (std::size_t i = 0; i < n; ++i) re_[i] += other.re_[i];
  for (std::size_t i = 0; i < n; ++i) im_[i] += other.im_[i];
}

void SoaTile::subtract_tile(const SoaTile& other) {
  ensure(other.width_ == width_ && other.height_ == height_,
         "SoaTile::subtract_tile: shape mismatch");
  const std::size_t n = re_.size();
  for (std::size_t i = 0; i < n; ++i) re_[i] -= other.re_[i];
  for (std::size_t i = 0; i < n; ++i) im_[i] -= other.im_[i];
}

}  // namespace sarbp::bp
