// Incremental backprojection (paper §2): instead of backprojecting
// (k+1)*N pulses per output image, backproject only the N new pulses and
// combine with the previous k batch results — valid because backprojection
// is linear. "This incremental backprojection is implemented using a
// circular buffer that stores the prior k and the current backprojection
// results", trading memory for a k-fold compute reduction.
#pragma once

#include <deque>

#include "common/grid2d.h"
#include "common/types.h"

namespace sarbp::bp {

class IncrementalAccumulator {
 public:
  /// `accumulation_factor` is the paper's k: the buffer holds k+1 batches.
  IncrementalAccumulator(Index width, Index height, int accumulation_factor);

  /// Inserts the newest batch image (the backprojection of the latest N
  /// pulses), evicting the oldest once k+1 batches are stored.
  void push(Grid2D<CFloat> batch);

  /// Current output image: the coherent sum of all stored batches.
  [[nodiscard]] Grid2D<CFloat> current() const;
  void current_into(Grid2D<CFloat>& out) const;

  [[nodiscard]] int stored() const { return static_cast<int>(batches_.size()); }
  [[nodiscard]] int capacity() const { return accumulation_factor_ + 1; }
  [[nodiscard]] Index width() const { return width_; }
  [[nodiscard]] Index height() const { return height_; }

  /// Buffer memory footprint in bytes (the paper's 100 GB -> 948 GB
  /// capacity-cost discussion, footnote 3).
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Bytes one stored batch image occupies; overflow-safe at paper-scale
  /// (57K x 57K) dimensions.
  [[nodiscard]] static std::size_t batch_bytes(Index width, Index height);

 private:
  Index width_;
  Index height_;
  int accumulation_factor_;
  std::deque<Grid2D<CFloat>> batches_;
};

}  // namespace sarbp::bp
