// Fast factorized backprojection (two-level) — the hierarchical
// complexity-reduction family of paper §6:
//
//   "Typically, these methods hierarchically decimate the phase history
//    data in the pulse dimension for localized regions of the image in a
//    manner that maintains sampling requirements and preserves image
//    quality. Thus, the larger image formation problem is decomposed into
//    several smaller image formation problems each with a corresponding
//    reduced-size data set. In such cases, traditional backprojection is
//    utilized as a base case operation for the reduced-size data sets."
//
// and the §7 outlook: "When combined with hierarchical backprojection
// techniques, we believe our optimizations will render computationally
// challenging SAR imaging via backprojection considerably more affordable."
//
// Two-level scheme: the image splits into tiles, the aperture into groups
// of `group` consecutive pulses. For each (tile, group), the group's
// pulses are range-aligned and phase-aligned to the tile centre and summed
// into ONE synthetic pulse (the local plane-wave approximation); the ASR
// backprojection kernel then runs as the base case on the N/group
// synthetic pulses. The inner-loop work drops by ~group x; accuracy is
// governed by (group angular extent) x (tile radius), the same
// error-budget game as the ASR block size.
#pragma once

#include "backprojection/kernel.h"
#include "common/grid2d.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "sim/phase_history.h"

namespace sarbp::bp {

struct FfbpOptions {
  Index tile = 64;        ///< image tile edge (pixels)
  Index group = 4;        ///< pulses combined per synthetic pulse
  Index asr_block = 64;   ///< base-case ASR block size
  /// Extra range bins kept around each tile's range span in the decimated
  /// (tile-local) pulse data.
  Index range_margin_bins = 32;
  /// Band-limited (FFT zero-padding) range upsampling factor applied to
  /// the whole history before combining — "in a manner that maintains
  /// sampling requirements" (§6). The compressed profiles are
  /// near-critically sampled; without upsampling, the extra resampling
  /// stage costs ~20 dB.
  Index oversample = 4;
  /// Retained for the naive sinc-resample variant used in ablations.
  int sinc_taps = 6;
};

/// Forms the full image by two-level factorized backprojection
/// (internally range-upsamples the history by options.oversample first).
Grid2D<CFloat> ffbp_form_image(const sim::PhaseHistory& history,
                               const geometry::ImageGrid& grid,
                               const FfbpOptions& options);

/// Variant consuming data already upsampled by options.oversample —
/// streaming pipelines amortize the FFT upsampling once per pulse batch
/// instead of once per image.
Grid2D<CFloat> ffbp_form_image_upsampled(const sim::PhaseHistory& upsampled,
                                         const geometry::ImageGrid& grid,
                                         const FfbpOptions& options);

/// Analytic worst-case range-alignment error (metres) of combining `group`
/// pulses for a tile of half-diagonal `tile_radius_m` at `slant_range_m`,
/// given the per-pulse angular step: err ~ group_angle * tile_radius.
/// Controls quality exactly as the ASR Taylor remainder does.
double ffbp_alignment_error(Index group, double pulse_angle_step_rad,
                            double tile_radius_m);

/// Inner-loop work model relative to direct backprojection: 1/group for
/// the base case plus the per-tile combining pass.
double ffbp_work_fraction(const FfbpOptions& options, Index pulses,
                          Index image, Index samples_per_tile);

}  // namespace sarbp::bp
