// Paper baseline kernel (Fig. 3(a)): per-pixel sqrt, argument reduction,
// and polynomial sin/cos. The accuracy-critical pieces (range, reduction)
// run in double precision by default; `all_float` demotes them to single
// precision to reproduce the Fig. 8 accuracy collapse.
#include <cmath>
#include <numbers>

#include "backprojection/kernel.h"
#include "common/check.h"
#include "signal/trig.h"

namespace sarbp::bp {
namespace {

struct PulseView {
  const CFloat* in;
  Index samples;
  geometry::Vec3 position;
  double start_range;
};

/// One pixel of baseline backprojection; templated on range precision.
template <bool kAllFloat>
inline void pixel(const PulseView& pulse, const geometry::ImageGrid& grid,
                  double inv_dr, double two_pi_k, Index x, Index y,
                  float* out_re, float* out_im) {
  const geometry::Vec3 pos = grid.position(x, y);
  float bin;
  signal::SinCos sc;
  if constexpr (kAllFloat) {
    const auto dx = static_cast<float>(pos.x - pulse.position.x);
    const auto dy = static_cast<float>(pos.y - pulse.position.y);
    const auto dz = static_cast<float>(pos.z - pulse.position.z);
    const float r = std::sqrt(dx * dx + dy * dy + dz * dz);
    bin = (r - static_cast<float>(pulse.start_range)) *
          static_cast<float>(inv_dr);
    sc = signal::sincos_float_reduction(static_cast<float>(two_pi_k) * r);
  } else {
    const double dx = pos.x - pulse.position.x;
    const double dy = pos.y - pulse.position.y;
    const double dz = pos.z - pulse.position.z;
    const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
    bin = static_cast<float>((r - pulse.start_range) * inv_dr);
    // EP-accuracy polynomial: the trig operating point of the paper's
    // baseline (MKL VML EP equivalence, 55 dB in Fig. 8).
    sc = signal::sincos_baseline_ep(two_pi_k * r);
  }
  if (!(bin >= 0.0f)) return;
  const auto ibin = static_cast<Index>(bin);
  if (ibin + 1 >= pulse.samples) return;
  const float frac = bin - static_cast<float>(ibin);
  const CFloat v0 = pulse.in[ibin];
  const CFloat v1 = pulse.in[ibin + 1];
  const float sr = (1.0f - frac) * v0.real() + frac * v1.real();
  const float si = (1.0f - frac) * v0.imag() + frac * v1.imag();
  *out_re += sc.cos * sr - sc.sin * si;
  *out_im += sc.cos * si + sc.sin * sr;
}

template <bool kAllFloat>
void run(const sim::PhaseHistory& history, const geometry::ImageGrid& grid,
         const Region& region, Index pulse_begin, Index pulse_end,
         geometry::LoopOrder order, SoaTile& out) {
  const double inv_dr = 1.0 / history.bin_spacing();
  const double two_pi_k = 2.0 * std::numbers::pi * history.wavenumber();
  for (Index p = pulse_begin; p < pulse_end; ++p) {
    const auto& meta = history.meta(p);
    const PulseView pulse{history.pulse(p).data(), history.samples_per_pulse(),
                          meta.position, meta.start_range_m};
    if (order == geometry::LoopOrder::kXInner) {
      for (Index ty = 0; ty < region.height; ++ty) {
        float* row_re = out.row_re(ty);
        float* row_im = out.row_im(ty);
        for (Index tx = 0; tx < region.width; ++tx) {
          pixel<kAllFloat>(pulse, grid, inv_dr, two_pi_k, region.x0 + tx,
                           region.y0 + ty, row_re + tx, row_im + tx);
        }
      }
    } else {
      for (Index tx = 0; tx < region.width; ++tx) {
        for (Index ty = 0; ty < region.height; ++ty) {
          pixel<kAllFloat>(pulse, grid, inv_dr, two_pi_k, region.x0 + tx,
                           region.y0 + ty, out.row_re(ty) + tx,
                           out.row_im(ty) + tx);
        }
      }
    }
  }
}

}  // namespace

void backproject_baseline(const sim::PhaseHistory& history,
                          const geometry::ImageGrid& grid,
                          const Region& region, Index pulse_begin,
                          Index pulse_end, bool all_float,
                          geometry::LoopOrder order, SoaTile& out) {
  ensure(pulse_begin >= 0 && pulse_end <= history.num_pulses() &&
             pulse_begin <= pulse_end,
         "backproject_baseline: pulse range out of bounds");
  ensure(out.width() == region.width && out.height() == region.height,
         "backproject_baseline: tile/region shape mismatch");
  if (all_float) {
    run<true>(history, grid, region, pulse_begin, pulse_end, order, out);
  } else {
    run<false>(history, grid, region, pulse_begin, pulse_end, order, out);
  }
}

}  // namespace sarbp::bp
