// Parametric autofocus: estimates and removes a quadratic phase error
// across the aperture by minimizing image entropy.
//
// The paper's simulator injects exactly the defect this corrects: "random
// perturbation and induced shifts are designed to mimic inaccuracies in
// the platform location provided by the inertial navigation system"
// (§5.1). Backprojection consumes the *recorded* positions; any smooth
// mismatch between recorded and true positions appears as a low-order
// phase error over the aperture — dominated by the quadratic term, the
// classic defocus. Registration (pipeline/) fixes the induced *shifts*;
// autofocus fixes the *focus*.
//
// Method: per-pulse correction phi(j) = c * ((j - j0)/j0)^2 (c = phase at
// the aperture edges, j0 = aperture centre); a coarse scan plus
// golden-section refinement over c picks the image with minimum entropy,
// re-forming a (sub-sampled) ASR image per candidate.
#pragma once

#include "backprojection/backprojector.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "sim/phase_history.h"

namespace sarbp::bp {

struct AutofocusOptions {
  /// Search interval for the edge phase c, radians: [-span, +span].
  double search_span_rad = 25.0;
  /// Coarse-scan sample count across the interval (unimodality guard).
  int coarse_samples = 11;
  /// Golden-section refinement iterations after the coarse scan.
  int refine_iterations = 24;
  /// Every `pulse_stride`-th pulse is used for the focus-metric images —
  /// the metric needs contrast, not full aperture quality.
  Index pulse_stride = 1;
};

struct AutofocusResult {
  double edge_phase_rad = 0.0;  ///< estimated correction c
  double entropy_before = 0.0;
  double entropy_after = 0.0;
};

/// Applies the per-pulse quadratic phase exp(i * c * ((j-j0)/j0)^2) to
/// every sample of every pulse (in place). Used both to inject synthetic
/// phase errors in tests and to apply the estimated correction.
void apply_quadratic_phase(sim::PhaseHistory& history, double edge_phase_rad);

/// Estimates the quadratic phase error of `history` against minimum image
/// entropy on `grid`, applies the correction in place, and reports it.
AutofocusResult autofocus_quadratic(sim::PhaseHistory& history,
                                    const geometry::ImageGrid& grid,
                                    const BackprojectOptions& bp_options,
                                    const AutofocusOptions& options = {});

}  // namespace sarbp::bp
