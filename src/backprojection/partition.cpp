#include "backprojection/partition.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sarbp::bp {
namespace {

/// All (a, b) with a*b == n.
std::vector<std::pair<Index, Index>> factor_pairs(Index n) {
  std::vector<std::pair<Index, Index>> pairs;
  for (Index a = 1; a * a <= n; ++a) {
    if (n % a == 0) {
      pairs.emplace_back(a, n / a);
      if (a != n / a) pairs.emplace_back(n / a, a);
    }
  }
  return pairs;
}

}  // namespace

PartitionChoice choose_partition(const CubeShape& shape, Index workers,
                                 Index min_edge) {
  ensure(workers >= 1, "choose_partition: need at least one worker");
  ensure(shape.width > 0 && shape.height > 0,
         "choose_partition: empty image");
  // Zero pulses is a legal degenerate cube (an empty batch): one part
  // covering the whole image with an empty pulse range tiles it exactly.
  if (shape.pulses == 0) return {1, 1, 1};
  PartitionChoice best;
  bool found = false;
  double best_aspect = 0.0;
  // Smallest pulse split first; within it, the most square image tiles.
  for (Index pn = 1; pn <= workers; ++pn) {
    if (workers % pn != 0 || pn > shape.pulses) continue;
    const Index image_parts = workers / pn;
    for (const auto& [px, py] : factor_pairs(image_parts)) {
      const Index tile_w = shape.width / px;
      const Index tile_h = shape.height / py;
      if (tile_w < 1 || tile_h < 1) continue;
      if (tile_w < min_edge || tile_h < min_edge) continue;
      const double aspect =
          static_cast<double>(std::min(tile_w, tile_h)) /
          static_cast<double>(std::max(tile_w, tile_h));
      if (!found || aspect > best_aspect) {
        best = {px, py, pn};
        best_aspect = aspect;
        found = true;
      }
    }
    if (found) return best;
  }
  // Image too small for min_edge tiles at this worker count: relax the
  // edge constraint but still prefer image splits over pulse splits.
  for (Index pn = 1; pn <= workers; ++pn) {
    if (workers % pn != 0 || pn > shape.pulses) continue;
    const Index image_parts = workers / pn;
    for (const auto& [px, py] : factor_pairs(image_parts)) {
      if (shape.width / px < 1 || shape.height / py < 1) continue;
      return {px, py, pn};
    }
  }
  return {1, 1, std::min(workers, shape.pulses)};
}

std::vector<CubePart> partition_cube(const CubeShape& shape,
                                     const PartitionChoice& choice) {
  ensure(choice.parts_x >= 1 && choice.parts_y >= 1 && choice.parts_pulse >= 1,
         "partition_cube: invalid choice");
  std::vector<CubePart> parts;
  parts.reserve(static_cast<std::size_t>(choice.total()));
  for (Index pp = 0; pp < choice.parts_pulse; ++pp) {
    const Index p0 = split_begin(shape.pulses, choice.parts_pulse, pp);
    const Index p1 = split_begin(shape.pulses, choice.parts_pulse, pp + 1);
    for (Index py = 0; py < choice.parts_y; ++py) {
      const Index y0 = split_begin(shape.height, choice.parts_y, py);
      const Index y1 = split_begin(shape.height, choice.parts_y, py + 1);
      for (Index px = 0; px < choice.parts_x; ++px) {
        const Index x0 = split_begin(shape.width, choice.parts_x, px);
        const Index x1 = split_begin(shape.width, choice.parts_x, px + 1);
        CubePart part;
        part.pulse_begin = p0;
        part.pulse_end = p1;
        part.region = Region{x0, y0, x1 - x0, y1 - y0};
        parts.push_back(part);
      }
    }
  }
  return parts;
}

}  // namespace sarbp::bp
