// Empirical gather-locality measurement (paper §4.3): "We can analytically
// compute how many consecutive backprojections access the same entry of In
// on average. This value is 5 when reordering optimization is not used ...
// This value increases to 17 when reordering optimization is applied."
//
// Counts, over the actual pixel traversal order, the average run length of
// consecutive pixels whose interpolation reads the same integer range bin —
// the quantity that determines how many cache lines a SIMD gather touches.
#pragma once

#include "common/region.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "geometry/wavefront.h"
#include "sim/phase_history.h"

namespace sarbp::bp {

struct LocalityStats {
  double mean_run_length = 0.0;      ///< consecutive same-bin accesses
  double cache_lines_per_gather = 0.0;  ///< expected distinct 64 B lines per
                                        ///< SIMD-width gather
};

/// Measures access locality for one pulse under the given loop order.
LocalityStats measure_gather_locality(const sim::PhaseHistory& history,
                                      const geometry::ImageGrid& grid,
                                      const Region& region, Index pulse,
                                      geometry::LoopOrder order,
                                      int simd_width = 16);

}  // namespace sarbp::bp
