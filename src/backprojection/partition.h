// Hierarchical 3D partitioning of the backprojection iteration cube
// (paper Fig. 5(b)): the (pulse x y x x) space is cut into cuboids at the
// MPI level, the OpenMP level, and the cache-blocking level.
//
// Partitioning policy (§4.2): split output-image dimensions first — pulse
// splits force privatized output buffers plus a reduction — and split the
// pulse dimension only when an image tile would drop below `min_edge`
// (the ASR block size).
#pragma once

#include <vector>

#include "common/region.h"
#include "common/types.h"

namespace sarbp::bp {

struct CubeShape {
  Index pulses = 0;
  Index width = 0;
  Index height = 0;
};

/// One partition: a pulse range crossed with an image region.
struct CubePart {
  Index pulse_begin = 0;
  Index pulse_end = 0;
  Region region;

  friend bool operator==(const CubePart&, const CubePart&) = default;
};

/// Factorization of a worker count into per-dimension part counts.
struct PartitionChoice {
  Index parts_x = 1;
  Index parts_y = 1;
  Index parts_pulse = 1;

  [[nodiscard]] Index total() const { return parts_x * parts_y * parts_pulse; }
};

/// Picks (parts_x, parts_y, parts_pulse) for `workers` workers. Prefers the
/// smallest possible pulse-dimension split, then the most square image
/// tiles, subject to tiles not dropping below min_edge on either axis
/// (when the image is large enough to allow it).
PartitionChoice choose_partition(const CubeShape& shape, Index workers,
                                 Index min_edge);

/// Enumerates the parts of a choice, in pulse-major then y then x order.
/// Work is balanced to within one row/column/pulse per dimension.
std::vector<CubePart> partition_cube(const CubeShape& shape,
                                     const PartitionChoice& choice);

/// Evenly splits [0, extent) into `parts` contiguous spans; span i is
/// [split_begin(extent, parts, i), split_begin(extent, parts, i+1)).
[[nodiscard]] inline Index split_begin(Index extent, Index parts, Index i) {
  return extent * i / parts;
}

}  // namespace sarbp::bp
