// AVX2 ASR row kernels (paper §4.4, the Xeon-style 8-lane path). This TU
// is compiled with -march=x86-64-v3 regardless of the build's baseline
// -march — on an AVX-512 build host it still emits genuine 8-lane AVX2
// code, which is what lets the parity tests force AVX2-on-an-AVX-512-host
// and the dispatcher serve hosts without AVX-512 from the same binary.
// Entered only through a runtime cpuid check (kernel_simd_ops.h); all
// code is in an anonymous namespace so none of it can leak to other TUs
// through vague linkage.
#include "asr/tables.h"
#include "backprojection/kernel.h"
#include "backprojection/kernel_simd_ops.h"
#include "common/types.h"

#include <immintrin.h>

#include <cstddef>

namespace sarbp::bp::detail {
namespace {

template <bool kFma>
inline __m256 madd(__m256 a, __m256 b, __m256 c) {
  if constexpr (kFma) {
    return _mm256_fmadd_ps(a, b, c);
  } else {
    return _mm256_add_ps(_mm256_mul_ps(a, b), c);
  }
}

template <bool kFma>
inline __m256 msub(__m256 a, __m256 b, __m256 c) {
  if constexpr (kFma) {
    return _mm256_fmsub_ps(a, b, c);
  } else {
    return _mm256_sub_ps(_mm256_mul_ps(a, b), c);
  }
}

/// 4 hardware gathers over the AoS buffer; scale 8 strides two floats per
/// index so base+0/+1/+2/+3 pick re0/im0/re1/im1 of In[bin]. `ok` is a
/// full-lane float mask; masked lanes never touch memory.
struct GatherSamples {
  static void load(const float* base, __m256i ibin, __m256 ok,
                   Index /*samples*/, __m256& re0, __m256& im0, __m256& re1,
                   __m256& im1) {
    const __m256 zero = _mm256_setzero_ps();
    re0 = _mm256_mask_i32gather_ps(zero, base, ibin, ok, 8);
    im0 = _mm256_mask_i32gather_ps(zero, base + 1, ibin, ok, 8);
    re1 = _mm256_mask_i32gather_ps(zero, base + 2, ibin, ok, 8);
    im1 = _mm256_mask_i32gather_ps(zero, base + 3, ibin, ok, 8);
  }
};

/// One 16-byte contiguous load per lane + an 8x4 in-register transpose.
/// Masked lanes load a clamped in-bounds dummy and are zeroed afterwards:
/// bit-identical to GatherSamples.
struct ShuffleSamples {
  static void load(const float* base, __m256i ibin, __m256 ok, Index samples,
                   __m256& re0, __m256& im0, __m256& re1, __m256& im1) {
    const __m256i ic = _mm256_min_epi32(
        _mm256_max_epi32(ibin, _mm256_setzero_si256()),
        _mm256_set1_epi32(static_cast<int>(samples) - 2));
    alignas(32) int idx[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), ic);
    __m128 v[8];
    for (int lane = 0; lane < 8; ++lane) {
      v[lane] = _mm_loadu_ps(base + 2 * static_cast<std::size_t>(
                                      static_cast<unsigned>(idx[lane])));
    }
    const __m256 y0 = _mm256_set_m128(v[1], v[0]);  // lanes 0, 1
    const __m256 y1 = _mm256_set_m128(v[3], v[2]);  // lanes 2, 3
    const __m256 y2 = _mm256_set_m128(v[5], v[4]);  // lanes 4, 5
    const __m256 y3 = _mm256_set_m128(v[7], v[6]);  // lanes 6, 7
    // 8x4 transpose: unpack pairs, pick components per 128-bit half, then
    // fix the half-interleaved lane order {0,4,1,5,2,6,3,7}.
    const __m256 t0 = _mm256_unpacklo_ps(y0, y1);
    const __m256 t1 = _mm256_unpackhi_ps(y0, y1);
    const __m256 t2 = _mm256_unpacklo_ps(y2, y3);
    const __m256 t3 = _mm256_unpackhi_ps(y2, y3);
    const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    const auto fix = [&](__m256 x) { return _mm256_permutevar8x32_ps(x, order); };
    re0 = _mm256_and_ps(
        fix(_mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0))), ok);
    im0 = _mm256_and_ps(
        fix(_mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2))), ok);
    re1 = _mm256_and_ps(
        fix(_mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0))), ok);
    im1 = _mm256_and_ps(
        fix(_mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2))), ok);
  }
};

/// Shared row sweep over prebuilt tables reading AoS samples; kFma selects
/// fused vs split multiply-add throughout the vector body.
template <class SampleLoad, bool kFma>
void rows_impl(const asr::BlockTables& t, const float* base, Index samples,
               float* acc_re, float* acc_im, Index acc_pitch, Index len_l,
               Index len_m) {
  const __m256 iota = _mm256_set_ps(7, 6, 5, 4, 3, 2, 1, 0);
  const __m256i max_bin = _mm256_set1_epi32(static_cast<int>(samples) - 1);
  for (Index m = 0; m < len_m; ++m) {
    const float bin_b = t.bin_b[static_cast<std::size_t>(m)];
    const float bin_c = t.bin_c[static_cast<std::size_t>(m)];
    const float psi_r = t.psi_re[static_cast<std::size_t>(m)];
    const float psi_i = t.psi_im[static_cast<std::size_t>(m)];
    const GammaLanes lanes =
        make_gamma_lanes(t.gam_re[static_cast<std::size_t>(m)],
                         t.gam_im[static_cast<std::size_t>(m)], 8);
    __m256 g_r = _mm256_load_ps(lanes.re);
    __m256 g_i = _mm256_load_ps(lanes.im);
    const __m256 step_r = _mm256_set1_ps(lanes.step_re);
    const __m256 step_i = _mm256_set1_ps(lanes.step_im);
    const __m256 psi_rv = _mm256_set1_ps(psi_r);
    const __m256 psi_iv = _mm256_set1_ps(psi_i);
    const __m256 bin_bv = _mm256_set1_ps(bin_b);
    const __m256 bin_cv = _mm256_set1_ps(bin_c);
    float* row_re = acc_re + m * acc_pitch;
    float* row_im = acc_im + m * acc_pitch;
    Index l = 0;
    for (; l + 8 <= len_l; l += 8) {
      const __m256 lvec =
          _mm256_add_ps(iota, _mm256_set1_ps(static_cast<float>(l)));
      const __m256 bin_av =
          _mm256_loadu_ps(&t.bin_a[static_cast<std::size_t>(l)]);
      const __m256 bin =
          madd<kFma>(lvec, bin_cv, _mm256_add_ps(bin_av, bin_bv));
      const __m256i ibin = _mm256_cvttps_epi32(bin);
      const __m256 nonneg =
          _mm256_cmp_ps(bin, _mm256_setzero_ps(), _CMP_GE_OQ);
      const __m256 inrange =
          _mm256_castsi256_ps(_mm256_cmpgt_epi32(max_bin, ibin));
      // Guard against cvttps saturation (INT_MIN) for out-of-range bins.
      const __m256 iok = _mm256_castsi256_ps(
          _mm256_cmpgt_epi32(ibin, _mm256_set1_epi32(-1)));
      const __m256 ok = _mm256_and_ps(_mm256_and_ps(nonneg, inrange), iok);
      const __m256 frac = _mm256_sub_ps(bin, _mm256_cvtepi32_ps(ibin));
      __m256 re0;
      __m256 im0;
      __m256 re1;
      __m256 im1;
      SampleLoad::load(base, ibin, ok, samples, re0, im0, re1, im1);
      const __m256 s_r = madd<kFma>(frac, _mm256_sub_ps(re1, re0), re0);
      const __m256 s_i = madd<kFma>(frac, _mm256_sub_ps(im1, im0), im0);
      const __m256 phi_r =
          _mm256_loadu_ps(&t.phi_re[static_cast<std::size_t>(l)]);
      const __m256 phi_i =
          _mm256_loadu_ps(&t.phi_im[static_cast<std::size_t>(l)]);
      const __m256 t_r = msub<kFma>(phi_r, g_r, _mm256_mul_ps(phi_i, g_i));
      const __m256 t_i = madd<kFma>(phi_r, g_i, _mm256_mul_ps(phi_i, g_r));
      const __m256 a_r = msub<kFma>(t_r, psi_rv, _mm256_mul_ps(t_i, psi_iv));
      const __m256 a_i = madd<kFma>(t_r, psi_iv, _mm256_mul_ps(t_i, psi_rv));
      const __m256 ng_r = msub<kFma>(g_r, step_r, _mm256_mul_ps(g_i, step_i));
      g_i = madd<kFma>(g_r, step_i, _mm256_mul_ps(g_i, step_r));
      g_r = ng_r;
      const __m256 c_r = msub<kFma>(a_r, s_r, _mm256_mul_ps(a_i, s_i));
      const __m256 c_i = madd<kFma>(a_r, s_i, _mm256_mul_ps(a_i, s_r));
      _mm256_storeu_ps(row_re + l,
                       _mm256_add_ps(_mm256_loadu_ps(row_re + l), c_r));
      _mm256_storeu_ps(row_im + l,
                       _mm256_add_ps(_mm256_loadu_ps(row_im + l), c_i));
    }
    float sg_r = _mm256_cvtss_f32(g_r);
    float sg_i = _mm256_cvtss_f32(g_i);
    const float gam_r = t.gam_re[static_cast<std::size_t>(m)];
    const float gam_i = t.gam_im[static_cast<std::size_t>(m)];
    for (; l < len_l; ++l) {
      const float bin = t.bin_a[static_cast<std::size_t>(l)] + bin_b +
                        static_cast<float>(l) * bin_c;
      const float phi_r = t.phi_re[static_cast<std::size_t>(l)];
      const float phi_i = t.phi_im[static_cast<std::size_t>(l)];
      const float t_r = phi_r * sg_r - phi_i * sg_i;
      const float t_i = phi_r * sg_i + phi_i * sg_r;
      const float a_r = t_r * psi_r - t_i * psi_i;
      const float a_i = t_r * psi_i + t_i * psi_r;
      const float ng_r = sg_r * gam_r - sg_i * gam_i;
      sg_i = sg_r * gam_i + sg_i * gam_r;
      sg_r = ng_r;
      if (bin >= 0.0f) {
        const auto ib = static_cast<Index>(bin);
        if (ib + 1 < samples) {
          const float frac = bin - static_cast<float>(ib);
          const float r0 = base[2 * ib];
          const float i0 = base[2 * ib + 1];
          const float r1 = base[2 * ib + 2];
          const float i1 = base[2 * ib + 3];
          const float s_r = r0 + frac * (r1 - r0);
          const float s_i = i0 + frac * (i1 - i0);
          row_re[l] += a_r * s_r - a_i * s_i;
          row_im[l] += a_r * s_i + a_i * s_r;
        }
      }
    }
  }
}

void rows_soa_avx2(const asr::BlockTables& t, const float* soa_re,
                   const float* soa_im, Index samples, float* acc_re,
                   float* acc_im, Index acc_pitch, Index len_l, Index len_m) {
  const __m256 iota = _mm256_set_ps(7, 6, 5, 4, 3, 2, 1, 0);
  const __m256i max_bin = _mm256_set1_epi32(static_cast<int>(samples) - 1);
  for (Index m = 0; m < len_m; ++m) {
    const float bin_b = t.bin_b[static_cast<std::size_t>(m)];
    const float bin_c = t.bin_c[static_cast<std::size_t>(m)];
    const float psi_r = t.psi_re[static_cast<std::size_t>(m)];
    const float psi_i = t.psi_im[static_cast<std::size_t>(m)];
    const GammaLanes lanes =
        make_gamma_lanes(t.gam_re[static_cast<std::size_t>(m)],
                         t.gam_im[static_cast<std::size_t>(m)], 8);
    __m256 g_r = _mm256_load_ps(lanes.re);
    __m256 g_i = _mm256_load_ps(lanes.im);
    const __m256 step_r = _mm256_set1_ps(lanes.step_re);
    const __m256 step_i = _mm256_set1_ps(lanes.step_im);
    const __m256 psi_rv = _mm256_set1_ps(psi_r);
    const __m256 psi_iv = _mm256_set1_ps(psi_i);
    const __m256 bin_bv = _mm256_set1_ps(bin_b);
    const __m256 bin_cv = _mm256_set1_ps(bin_c);
    float* row_re = acc_re + m * acc_pitch;
    float* row_im = acc_im + m * acc_pitch;
    Index l = 0;
    for (; l + 8 <= len_l; l += 8) {
      const __m256 lvec =
          _mm256_add_ps(iota, _mm256_set1_ps(static_cast<float>(l)));
      const __m256 bin_av =
          _mm256_loadu_ps(&t.bin_a[static_cast<std::size_t>(l)]);
      const __m256 bin =
          _mm256_fmadd_ps(lvec, bin_cv, _mm256_add_ps(bin_av, bin_bv));
      const __m256i ibin = _mm256_cvttps_epi32(bin);
      const __m256 nonneg =
          _mm256_cmp_ps(bin, _mm256_setzero_ps(), _CMP_GE_OQ);
      const __m256 inrange =
          _mm256_castsi256_ps(_mm256_cmpgt_epi32(max_bin, ibin));
      // Guard against cvttps saturation (INT_MIN) for out-of-range bins.
      const __m256 iok = _mm256_castsi256_ps(
          _mm256_cmpgt_epi32(ibin, _mm256_set1_epi32(-1)));
      const __m256 ok = _mm256_and_ps(_mm256_and_ps(nonneg, inrange), iok);
      const __m256 frac = _mm256_sub_ps(bin, _mm256_cvtepi32_ps(ibin));
      const __m256i ibin1 = _mm256_add_epi32(ibin, _mm256_set1_epi32(1));
      const __m256 zero = _mm256_setzero_ps();
      const __m256 re0 = _mm256_mask_i32gather_ps(zero, soa_re, ibin, ok, 4);
      const __m256 re1 = _mm256_mask_i32gather_ps(zero, soa_re, ibin1, ok, 4);
      const __m256 im0 = _mm256_mask_i32gather_ps(zero, soa_im, ibin, ok, 4);
      const __m256 im1 = _mm256_mask_i32gather_ps(zero, soa_im, ibin1, ok, 4);
      const __m256 s_r = _mm256_fmadd_ps(frac, _mm256_sub_ps(re1, re0), re0);
      const __m256 s_i = _mm256_fmadd_ps(frac, _mm256_sub_ps(im1, im0), im0);
      const __m256 phi_r =
          _mm256_loadu_ps(&t.phi_re[static_cast<std::size_t>(l)]);
      const __m256 phi_i =
          _mm256_loadu_ps(&t.phi_im[static_cast<std::size_t>(l)]);
      const __m256 t_r =
          _mm256_fmsub_ps(phi_r, g_r, _mm256_mul_ps(phi_i, g_i));
      const __m256 t_i =
          _mm256_fmadd_ps(phi_r, g_i, _mm256_mul_ps(phi_i, g_r));
      const __m256 a_r =
          _mm256_fmsub_ps(t_r, psi_rv, _mm256_mul_ps(t_i, psi_iv));
      const __m256 a_i =
          _mm256_fmadd_ps(t_r, psi_iv, _mm256_mul_ps(t_i, psi_rv));
      const __m256 ng_r =
          _mm256_fmsub_ps(g_r, step_r, _mm256_mul_ps(g_i, step_i));
      g_i = _mm256_fmadd_ps(g_r, step_i, _mm256_mul_ps(g_i, step_r));
      g_r = ng_r;
      const __m256 c_r = _mm256_fmsub_ps(a_r, s_r, _mm256_mul_ps(a_i, s_i));
      const __m256 c_i = _mm256_fmadd_ps(a_r, s_i, _mm256_mul_ps(a_i, s_r));
      _mm256_storeu_ps(row_re + l,
                       _mm256_add_ps(_mm256_loadu_ps(row_re + l), c_r));
      _mm256_storeu_ps(row_im + l,
                       _mm256_add_ps(_mm256_loadu_ps(row_im + l), c_i));
    }
    float sg_r = _mm256_cvtss_f32(g_r);
    float sg_i = _mm256_cvtss_f32(g_i);
    const float gam_r = t.gam_re[static_cast<std::size_t>(m)];
    const float gam_i = t.gam_im[static_cast<std::size_t>(m)];
    for (; l < len_l; ++l) {
      const float bin = t.bin_a[static_cast<std::size_t>(l)] + bin_b +
                        static_cast<float>(l) * bin_c;
      const float phi_r = t.phi_re[static_cast<std::size_t>(l)];
      const float phi_i = t.phi_im[static_cast<std::size_t>(l)];
      const float t_r = phi_r * sg_r - phi_i * sg_i;
      const float t_i = phi_r * sg_i + phi_i * sg_r;
      const float a_r = t_r * psi_r - t_i * psi_i;
      const float a_i = t_r * psi_i + t_i * psi_r;
      const float ng_r = sg_r * gam_r - sg_i * gam_i;
      sg_i = sg_r * gam_i + sg_i * gam_r;
      sg_r = ng_r;
      if (bin >= 0.0f) {
        const auto ib = static_cast<Index>(bin);
        if (ib + 1 < samples) {
          const float frac = bin - static_cast<float>(ib);
          const float s_r = soa_re[ib] + frac * (soa_re[ib + 1] - soa_re[ib]);
          const float s_i = soa_im[ib] + frac * (soa_im[ib + 1] - soa_im[ib]);
          row_re[l] += a_r * s_r - a_i * s_i;
          row_im[l] += a_r * s_i + a_i * s_r;
        }
      }
    }
  }
}

void rows_aos_avx2(const asr::BlockTables& t, const CFloat* in, Index samples,
                   float* acc_re, float* acc_im, Index acc_pitch, Index len_l,
                   Index len_m, KernelVariant variant) {
  const auto* base = reinterpret_cast<const float*>(in);
  switch (variant) {
    case KernelVariant::kShuffleTranspose:
      rows_impl<ShuffleSamples, true>(t, base, samples, acc_re, acc_im,
                                      acc_pitch, len_l, len_m);
      return;
    case KernelVariant::kGatherNoFma:
      rows_impl<GatherSamples, false>(t, base, samples, acc_re, acc_im,
                                      acc_pitch, len_l, len_m);
      return;
    case KernelVariant::kAuto:
    case KernelVariant::kGather:
      rows_impl<GatherSamples, true>(t, base, samples, acc_re, acc_im,
                                     acc_pitch, len_l, len_m);
      return;
  }
}

}  // namespace

const AsrIsaOps& asr_isa_ops_avx2() {
  static const AsrIsaOps ops{8, "avx2", &rows_soa_avx2, &rows_aos_avx2};
  return ops;
}

}  // namespace sarbp::bp::detail
