#include "backprojection/locality.h"

#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"

namespace sarbp::bp {

LocalityStats measure_gather_locality(const sim::PhaseHistory& history,
                                      const geometry::ImageGrid& grid,
                                      const Region& region, Index pulse,
                                      geometry::LoopOrder order,
                                      int simd_width) {
  ensure(pulse >= 0 && pulse < history.num_pulses(),
         "measure_gather_locality: pulse out of range");
  ensure(!region.empty(), "measure_gather_locality: empty region");
  const auto& meta = history.meta(pulse);
  const double inv_dr = 1.0 / history.bin_spacing();

  // Bin sequence in traversal order.
  std::vector<Index> bins;
  bins.reserve(static_cast<std::size_t>(region.pixels()));
  auto bin_at = [&](Index x, Index y) {
    const double r = geometry::distance(grid.position(x, y), meta.position);
    return static_cast<Index>((r - meta.start_range_m) * inv_dr);
  };
  if (order == geometry::LoopOrder::kXInner) {
    for (Index y = region.y0; y < region.y0 + region.height; ++y) {
      for (Index x = region.x0; x < region.x0 + region.width; ++x) {
        bins.push_back(bin_at(x, y));
      }
    }
  } else {
    for (Index x = region.x0; x < region.x0 + region.width; ++x) {
      for (Index y = region.y0; y < region.y0 + region.height; ++y) {
        bins.push_back(bin_at(x, y));
      }
    }
  }

  LocalityStats stats;
  // Mean run length of equal consecutive bins.
  std::size_t runs = 1;
  for (std::size_t i = 1; i < bins.size(); ++i) {
    if (bins[i] != bins[i - 1]) ++runs;
  }
  stats.mean_run_length =
      static_cast<double>(bins.size()) / static_cast<double>(runs);

  // Distinct 64-byte lines touched by each simd_width-wide gather of
  // 4-byte elements (SoA plane; 16 bins per line).
  constexpr Index kBinsPerLine = 16;
  double total_lines = 0.0;
  std::size_t gathers = 0;
  for (std::size_t base = 0; base + static_cast<std::size_t>(simd_width) <= bins.size();
       base += static_cast<std::size_t>(simd_width)) {
    std::set<Index> lines;
    for (int lane = 0; lane < simd_width; ++lane) {
      lines.insert(bins[base + static_cast<std::size_t>(lane)] / kBinsPerLine);
    }
    total_lines += static_cast<double>(lines.size());
    ++gathers;
  }
  stats.cache_lines_per_gather =
      gathers > 0 ? total_lines / static_cast<double>(gathers)
                  : 1.0;
  return stats;
}

}  // namespace sarbp::bp
