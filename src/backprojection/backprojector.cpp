#include "backprojection/backprojector.h"

#include <omp.h>

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "geometry/wavefront.h"
#include "obs/metrics.h"

namespace sarbp::bp {
namespace {

/// Contiguous run of pulses sharing one loop order.
struct OrderRun {
  Index begin;
  Index end;
  geometry::LoopOrder order;
};

/// Segments [begin, end) into runs of equal loop order. Along a smooth
/// orbit the orientation changes slowly, so runs are long and the per-run
/// kernel-call overhead is negligible.
std::vector<OrderRun> order_runs(const sim::PhaseHistory& history,
                                 const geometry::ImageGrid& grid,
                                 Index begin, Index end, bool dynamic) {
  std::vector<OrderRun> runs;
  if (begin >= end) return runs;
  if (!dynamic) {
    runs.push_back({begin, end, geometry::LoopOrder::kXInner});
    return runs;
  }
  auto order_of = [&](Index p) {
    return geometry::choose_loop_order(history.meta(p).position,
                                       grid.centre());
  };
  Index run_start = begin;
  geometry::LoopOrder current = order_of(begin);
  for (Index p = begin + 1; p < end; ++p) {
    const geometry::LoopOrder o = order_of(p);
    if (o != current) {
      runs.push_back({run_start, p, current});
      run_start = p;
      current = o;
    }
  }
  runs.push_back({run_start, end, current});
  return runs;
}

}  // namespace

void run_cube_part(const sim::PhaseHistory& history,
                   const geometry::ImageGrid& grid,
                   const BackprojectOptions& options, const CubePart& part,
                   SoaTile& tile) {
  const KernelKind kernel = resolve_kernel(options.kernel);
  // Cache blocking along the pulse dimension: each chunk sweeps the part's
  // pixel blocks while its slice of In is hot.
  for (Index chunk = part.pulse_begin; chunk < part.pulse_end;
       chunk += options.pulse_chunk) {
    const Index chunk_end =
        std::min(chunk + options.pulse_chunk, part.pulse_end);
    for (const OrderRun& run :
         order_runs(history, grid, chunk, chunk_end,
                    options.dynamic_reorder)) {
      switch (kernel) {
        case KernelKind::kBaseline:
          backproject_baseline(history, grid, part.region, run.begin,
                               run.end, /*all_float=*/false, run.order, tile);
          break;
        case KernelKind::kBaselineAllFloat:
          backproject_baseline(history, grid, part.region, run.begin,
                               run.end, /*all_float=*/true, run.order, tile);
          break;
        case KernelKind::kAsrScalar:
          backproject_asr_scalar(history, grid, part.region, run.begin,
                                 run.end, options.asr_block_w,
                                 options.asr_block_h, run.order, tile);
          break;
        case KernelKind::kAsrSimd:
          backproject_asr_simd(history, grid, part.region, run.begin,
                               run.end, options.asr_block_w,
                               options.asr_block_h, run.order, tile);
          break;
        case KernelKind::kRefDouble:
          ensure(false, "run_cube_part: use backproject_ref for the double reference");
      }
    }
  }
}

Backprojector::Backprojector(const geometry::ImageGrid& grid,
                             BackprojectOptions options)
    : grid_(grid), options_(options) {
  ensure(options_.asr_block_w > 0 && options_.asr_block_h > 0,
         "Backprojector: ASR block must be positive");
  ensure(options_.pulse_chunk > 0, "Backprojector: pulse chunk must be positive");
}

void Backprojector::add_pulses(const sim::PhaseHistory& history,
                               Grid2D<CFloat>& out) const {
  ensure(out.width() == grid_.width() && out.height() == grid_.height(),
         "Backprojector::add_pulses: image shape mismatch");
  if (history.num_pulses() == 0) return;

  const int workers =
      options_.threads > 0 ? options_.threads : omp_get_max_threads();
  const CubeShape shape{history.num_pulses(), grid_.width(), grid_.height()};
  const PartitionChoice choice =
      choose_partition(shape, workers, options_.min_region_edge);
  const std::vector<CubePart> parts = partition_cube(shape, choice);

  auto& reg = obs::registry();
  reg.gauge("bp.partition.parts_x").set(choice.parts_x);
  reg.gauge("bp.partition.parts_y").set(choice.parts_y);
  reg.gauge("bp.partition.parts_pulse").set(choice.parts_pulse);
  obs::Histogram& part_span = reg.histogram("bp.part_s");
  Timer batch_timer;

#pragma omp parallel num_threads(workers)
  {
    // Private tile per part (paper §4.3): contiguous accumulation, then a
    // reduction into the shared image. Regions of different parts overlap
    // only when the pulse dimension is split, but the critical section is
    // cheap either way relative to the backprojection itself.
    SoaTile tile;
#pragma omp for schedule(dynamic, 1)
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const CubePart& part = parts[i];
      obs::ScopedSpan span(part_span);
      tile.reset(part.region.width, part.region.height);
      run_cube_part(history, grid_, options_, part, tile);
#pragma omp critical(sarbp_bp_reduce)
      tile.accumulate_into(out, part.region);
    }
  }

  const double seconds = batch_timer.seconds();
  reg.histogram("bp.add_pulses_s").record(seconds);
  reg.counter("bp.batches").add();
  reg.counter("bp.pulses").add(static_cast<std::uint64_t>(history.num_pulses()));
  if (seconds > 0.0) {
    reg.histogram("bp.pulses_per_s")
        .record(static_cast<double>(history.num_pulses()) / seconds);
    reg.histogram("bp.backprojections_per_s")
        .record(backprojections(history) / seconds);
  }
}

void Backprojector::add_pulses_region(const sim::PhaseHistory& history,
                                      const Region& region, Index pulse_begin,
                                      Index pulse_end,
                                      Grid2D<CFloat>& out) const {
  if (region.empty() || pulse_begin >= pulse_end) return;
  CubePart part;
  part.pulse_begin = pulse_begin;
  part.pulse_end = pulse_end;
  part.region = region;
  SoaTile tile(region.width, region.height);
  run_cube_part(history, grid_, options_, part, tile);
  tile.accumulate_into(out, region);
}

Grid2D<CFloat> Backprojector::form_image(const sim::PhaseHistory& history) const {
  Grid2D<CFloat> out(grid_.width(), grid_.height());
  add_pulses(history, out);
  return out;
}

}  // namespace sarbp::bp
