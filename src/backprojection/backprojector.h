// High-level OpenMP backprojection driver.
//
// Composes the optimizations of §4: 3D partitioning across threads
// (partition.h), per-thread private output tiles with end-of-loop
// reduction, cache blocking along the pulse dimension, dynamic x/y loop
// reordering per pulse (wavefront.h), and the kernel selection (ASR/SIMD vs
// the baselines).
#pragma once

#include "backprojection/kernel.h"
#include "backprojection/partition.h"
#include "common/grid2d.h"
#include "common/timer.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "sim/phase_history.h"

namespace sarbp::bp {

struct BackprojectOptions {
  KernelKind kernel = asr_simd_available() ? KernelKind::kAsrSimd
                                           : KernelKind::kAsrScalar;
  /// ASR approximation block (accuracy knob; 64 matches the baseline SNR).
  Index asr_block_w = 64;
  Index asr_block_h = 64;
  /// Per-pulse x/y loop-order selection from the wavefront orientation.
  bool dynamic_reorder = true;
  /// OpenMP workers; 0 = omp_get_max_threads().
  int threads = 0;
  /// Cache-blocking chunk along the pulse dimension (cube C of Fig. 5(b)).
  Index pulse_chunk = 64;
  /// Minimum image-tile edge before the partitioner switches to splitting
  /// pulses (§4.2); defaults to the ASR block size.
  Index min_region_edge = 64;
};

/// Executes one cuboid of the iteration space — pulses
/// [part.pulse_begin, part.pulse_end) over part.region — into a tile that
/// must already cover exactly part.region. Single-threaded; this is the
/// shared task body of the OpenMP driver below and the work-stealing tile
/// executor (src/exec/), so both produce bit-identical per-part sums.
void run_cube_part(const sim::PhaseHistory& history,
                   const geometry::ImageGrid& grid,
                   const BackprojectOptions& options, const CubePart& part,
                   SoaTile& tile);

class Backprojector {
 public:
  Backprojector(const geometry::ImageGrid& grid, BackprojectOptions options);

  [[nodiscard]] const geometry::ImageGrid& grid() const { return grid_; }
  [[nodiscard]] const BackprojectOptions& options() const { return options_; }

  /// Accumulates every pulse of `history` into the full image `out`
  /// (+=; callers zero the image for a fresh batch).
  void add_pulses(const sim::PhaseHistory& history, Grid2D<CFloat>& out) const;

  /// Accumulates pulses [pulse_begin, pulse_end) over `region` only —
  /// the entry point the cluster ranks and the offload slices use.
  /// Single-threaded (the caller owns parallelization at this level).
  void add_pulses_region(const sim::PhaseHistory& history,
                         const Region& region, Index pulse_begin,
                         Index pulse_end, Grid2D<CFloat>& out) const;

  /// Convenience: zeroed image + add_pulses.
  [[nodiscard]] Grid2D<CFloat> form_image(const sim::PhaseHistory& history) const;

  /// Backprojections (pixel-pulse pairs) a full-image pass performs.
  [[nodiscard]] double backprojections(const sim::PhaseHistory& history) const {
    return static_cast<double>(grid_.width()) *
           static_cast<double>(grid_.height()) *
           static_cast<double>(history.num_pulses());
  }

 private:
  geometry::ImageGrid grid_;
  BackprojectOptions options_;
};

}  // namespace sarbp::bp
