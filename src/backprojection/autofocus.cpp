#include "backprojection/autofocus.h"

#include <cmath>
#include <complex>

#include "common/check.h"
#include "quality/metrics.h"

namespace sarbp::bp {
namespace {

/// Phase profile value for pulse j of n: c * ((j - j0)/j0)^2, j0 = centre.
double quadratic_phase(double edge_phase_rad, Index j, Index n) {
  const double j0 = 0.5 * static_cast<double>(n - 1);
  if (j0 <= 0.0) return 0.0;
  const double t = (static_cast<double>(j) - j0) / j0;
  return edge_phase_rad * t * t;
}

/// Image entropy of `history` corrected by candidate edge phase `c`,
/// evaluated on a working copy (the original stays pristine).
class FocusEvaluator {
 public:
  FocusEvaluator(const sim::PhaseHistory& history,
                 const geometry::ImageGrid& grid,
                 const BackprojectOptions& bp_options, Index pulse_stride)
      : pristine_(history),
        grid_(grid),
        backprojector_(grid, bp_options),
        stride_(pulse_stride) {}

  double entropy_at(double candidate_rad) {
    sim::PhaseHistory working = pristine_;
    apply_quadratic_phase(working, candidate_rad);
    Grid2D<CFloat> image(grid_.width(), grid_.height());
    const Region all{0, 0, grid_.width(), grid_.height()};
    for (Index p = 0; p < working.num_pulses(); p += stride_) {
      backprojector_.add_pulses_region(working, all, p, p + 1, image);
    }
    return quality::image_entropy(image);
  }

 private:
  const sim::PhaseHistory& pristine_;
  geometry::ImageGrid grid_;
  Backprojector backprojector_;
  Index stride_;
};

}  // namespace

void apply_quadratic_phase(sim::PhaseHistory& history, double edge_phase_rad) {
  for (Index j = 0; j < history.num_pulses(); ++j) {
    const double phase = quadratic_phase(edge_phase_rad, j, history.num_pulses());
    const CFloat rot(static_cast<float>(std::cos(phase)),
                     static_cast<float>(std::sin(phase)));
    for (auto& sample : history.pulse(j)) sample *= rot;
  }
  history.build_soa();
}

AutofocusResult autofocus_quadratic(sim::PhaseHistory& history,
                                    const geometry::ImageGrid& grid,
                                    const BackprojectOptions& bp_options,
                                    const AutofocusOptions& options) {
  ensure(history.num_pulses() >= 3, "autofocus: need at least 3 pulses");
  ensure(options.coarse_samples >= 3 && options.refine_iterations >= 1 &&
             options.search_span_rad > 0 && options.pulse_stride >= 1,
         "autofocus: invalid options");

  FocusEvaluator evaluator(history, grid, bp_options, options.pulse_stride);
  AutofocusResult result;
  result.entropy_before = evaluator.entropy_at(0.0);

  // Coarse scan: entropy over c is only locally unimodal, so bracket the
  // global minimum first.
  double best_c = 0.0;
  double best_entropy = result.entropy_before;
  const double span = options.search_span_rad;
  const double step =
      2.0 * span / static_cast<double>(options.coarse_samples - 1);
  for (int i = 0; i < options.coarse_samples; ++i) {
    const double c = -span + static_cast<double>(i) * step;
    const double e = evaluator.entropy_at(c);
    if (e < best_entropy) {
      best_entropy = e;
      best_c = c;
    }
  }

  // Golden-section refinement within +/- one coarse step of the best point.
  constexpr double kGolden = 0.6180339887498949;
  double lo = best_c - step;
  double hi = best_c + step;
  double x1 = hi - kGolden * (hi - lo);
  double x2 = lo + kGolden * (hi - lo);
  double e1 = evaluator.entropy_at(x1);
  double e2 = evaluator.entropy_at(x2);
  for (int i = 0; i < options.refine_iterations; ++i) {
    if (e1 < e2) {
      hi = x2;
      x2 = x1;
      e2 = e1;
      x1 = hi - kGolden * (hi - lo);
      e1 = evaluator.entropy_at(x1);
    } else {
      lo = x1;
      x1 = x2;
      e1 = e2;
      x2 = lo + kGolden * (hi - lo);
      e2 = evaluator.entropy_at(x2);
    }
  }
  const double refined = 0.5 * (lo + hi);
  const double refined_entropy = evaluator.entropy_at(refined);
  if (refined_entropy < best_entropy) {
    best_c = refined;
    best_entropy = refined_entropy;
  }

  result.edge_phase_rad = best_c;
  result.entropy_after = best_entropy;
  apply_quadratic_phase(history, best_c);
  return result;
}

}  // namespace sarbp::bp
