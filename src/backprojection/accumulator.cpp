#include "backprojection/accumulator.h"

#include "common/check.h"

namespace sarbp::bp {

IncrementalAccumulator::IncrementalAccumulator(Index width, Index height,
                                               int accumulation_factor)
    : width_(width), height_(height), accumulation_factor_(accumulation_factor) {
  ensure(width > 0 && height > 0, "IncrementalAccumulator: empty image");
  ensure(accumulation_factor >= 0,
         "IncrementalAccumulator: negative accumulation factor");
}

void IncrementalAccumulator::push(Grid2D<CFloat> batch) {
  ensure(batch.width() == width_ && batch.height() == height_,
         "IncrementalAccumulator::push: batch shape mismatch");
  batches_.push_back(std::move(batch));
  while (static_cast<int>(batches_.size()) > capacity()) {
    batches_.pop_front();
  }
}

void IncrementalAccumulator::current_into(Grid2D<CFloat>& out) const {
  ensure(out.width() == width_ && out.height() == height_,
         "IncrementalAccumulator::current_into: shape mismatch");
  out.fill(CFloat{});
  // A straight re-sum (rather than running-sum update) avoids unbounded
  // floating-point drift; it is memory-bound and costs k+1 streaming passes
  // versus the O(N * Ix * Iy * k) backprojection work it replaces.
  for (const auto& batch : batches_) {
    auto dst = out.flat();
    auto src = batch.flat();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
  }
}

Grid2D<CFloat> IncrementalAccumulator::current() const {
  Grid2D<CFloat> out(width_, height_);
  current_into(out);
  return out;
}

std::size_t IncrementalAccumulator::footprint_bytes() const {
  return batches_.size() * batch_bytes(width_, height_);
}

std::size_t IncrementalAccumulator::batch_bytes(Index width, Index height) {
  // Widen each factor *before* multiplying: at paper scale (57K x 57K)
  // the pixel count overflows a 32-bit Index, so `width * height` must
  // never be formed in Index arithmetic.
  return static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
         sizeof(CFloat);
}

}  // namespace sarbp::bp
