// AVX-512 ASR row kernels (paper §4.4, the Phi-style 16-lane path).
// This TU is compiled with -march=x86-64-v4 regardless of the build's
// baseline -march and is only ever entered through the dispatcher after a
// runtime cpuid check (kernel_simd_ops.h). Everything lives in an
// anonymous namespace so no v4-compiled code can leak to other TUs through
// vague linkage.
//
// Two row families share the arithmetic:
//  - rows_soa: the streaming kernel's form — samples gathered from split
//    SoA planes (pulse_re/pulse_im);
//  - rows_aos: the fused plan-replay form — samples read straight from the
//    AoS pulse buffer, where In[bin] and In[bin+1] are four adjacent
//    floats; selectable gather / shuffle-transpose / no-FMA inner loops.
#include "asr/tables.h"
#include "backprojection/kernel.h"
#include "backprojection/kernel_simd_ops.h"
#include "common/types.h"

#include <immintrin.h>

#include <cstddef>

// GCC's -Wmaybe-uninitialized fires inside the AVX-512 intrinsic headers
// when _mm512_cvttps_epi32 is inlined here: the intrinsics deliberately
// start from _mm512_undefined_epi32 (GCC bug 105593). Suppress just that
// diagnostic for this translation unit so -Werror builds stay clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace sarbp::bp::detail {
namespace {

/// Fused vs split multiply-add: the only difference between the default
/// and the kGatherNoFma rounding-ablation variant.
template <bool kFma>
inline __m512 madd(__m512 a, __m512 b, __m512 c) {
  if constexpr (kFma) {
    return _mm512_fmadd_ps(a, b, c);
  } else {
    return _mm512_add_ps(_mm512_mul_ps(a, b), c);
  }
}

template <bool kFma>
inline __m512 msub(__m512 a, __m512 b, __m512 c) {
  if constexpr (kFma) {
    return _mm512_fmsub_ps(a, b, c);
  } else {
    return _mm512_sub_ps(_mm512_mul_ps(a, b), c);
  }
}

/// Sample-load policy: 4 hardware gathers over the AoS buffer. Scale 8
/// strides two floats per index, so base+0/+1/+2/+3 pick re0/im0/re1/im1
/// of the complex pair at In[bin]. Masked lanes never touch memory and
/// come back as exact zeros.
struct GatherSamples {
  static void load(const float* base, __m512i ibin, __mmask16 ok,
                   Index /*samples*/, __m512& re0, __m512& im0, __m512& re1,
                   __m512& im1) {
    const __m512 zero = _mm512_setzero_ps();
    re0 = _mm512_mask_i32gather_ps(zero, ok, ibin, base, 8);
    im0 = _mm512_mask_i32gather_ps(zero, ok, ibin, base + 1, 8);
    re1 = _mm512_mask_i32gather_ps(zero, ok, ibin, base + 2, 8);
    im1 = _mm512_mask_i32gather_ps(zero, ok, ibin, base + 3, 8);
  }
};

/// Sample-load policy: one 16-byte contiguous load per lane — the four
/// floats re0,im0,re1,im1 are adjacent in AoS — then a 16x4 in-register
/// transpose. Masked lanes load a clamped in-bounds dummy and are zeroed
/// afterwards, so the numeric result is bit-identical to GatherSamples.
struct ShuffleSamples {
  static void load(const float* base, __m512i ibin, __mmask16 ok,
                   Index samples, __m512& re0, __m512& im0, __m512& re1,
                   __m512& im1) {
    const __m512i ic = _mm512_min_epi32(
        _mm512_max_epi32(ibin, _mm512_setzero_si512()),
        _mm512_set1_epi32(static_cast<int>(samples) - 2));
    alignas(64) int idx[16];
    _mm512_store_si512(idx, ic);
    __m128 v[16];
    for (int lane = 0; lane < 16; ++lane) {
      v[lane] = _mm_loadu_ps(base + 2 * static_cast<std::size_t>(
                                      static_cast<unsigned>(idx[lane])));
    }
    const auto pack4 = [](const __m128* q) {
      __m512 z = _mm512_castps128_ps512(q[0]);
      z = _mm512_insertf32x4(z, q[1], 1);
      z = _mm512_insertf32x4(z, q[2], 2);
      z = _mm512_insertf32x4(z, q[3], 3);
      return z;
    };
    const __m512 z0 = pack4(v);       // lanes 0..3, 4 floats each
    const __m512 z1 = pack4(v + 4);   // lanes 4..7
    const __m512 z2 = pack4(v + 8);   // lanes 8..11
    const __m512 z3 = pack4(v + 12);  // lanes 12..15
    // Component c of every lane: positions {c, 4+c, 8+c, 12+c} of each
    // zmm. permutex2var fills lanes 0..7 from (z0, z1) / (z2, z3); the
    // insert stitches the halves.
    const auto comp = [&](int c) {
      const __m512i sel = _mm512_setr_epi32(c, 4 + c, 8 + c, 12 + c, 16 + c,
                                            20 + c, 24 + c, 28 + c, 0, 0, 0,
                                            0, 0, 0, 0, 0);
      const __m512 lo = _mm512_permutex2var_ps(z0, sel, z1);
      const __m512 hi = _mm512_permutex2var_ps(z2, sel, z3);
      return _mm512_insertf32x8(lo, _mm512_castps512_ps256(hi), 1);
    };
    re0 = _mm512_maskz_mov_ps(ok, comp(0));
    im0 = _mm512_maskz_mov_ps(ok, comp(1));
    re1 = _mm512_maskz_mov_ps(ok, comp(2));
    im1 = _mm512_maskz_mov_ps(ok, comp(3));
  }
};

/// The shared row sweep. SampleLoad supplies the interpolation operands;
/// kFma selects fused vs split multiply-add everywhere in the vector body
/// (bin recurrence, interpolation, complex products).
template <class SampleLoad, bool kFma>
void rows_impl(const asr::BlockTables& t, const float* base, Index samples,
               float* acc_re, float* acc_im, Index acc_pitch, Index len_l,
               Index len_m) {
  const __m512 iota =
      _mm512_set_ps(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  const __m512i max_bin = _mm512_set1_epi32(static_cast<int>(samples) - 1);
  for (Index m = 0; m < len_m; ++m) {
    const float bin_b = t.bin_b[static_cast<std::size_t>(m)];
    const float bin_c = t.bin_c[static_cast<std::size_t>(m)];
    const float psi_r = t.psi_re[static_cast<std::size_t>(m)];
    const float psi_i = t.psi_im[static_cast<std::size_t>(m)];
    const GammaLanes lanes =
        make_gamma_lanes(t.gam_re[static_cast<std::size_t>(m)],
                         t.gam_im[static_cast<std::size_t>(m)], 16);
    __m512 g_r = _mm512_load_ps(lanes.re);
    __m512 g_i = _mm512_load_ps(lanes.im);
    const __m512 step_r = _mm512_set1_ps(lanes.step_re);
    const __m512 step_i = _mm512_set1_ps(lanes.step_im);
    const __m512 psi_rv = _mm512_set1_ps(psi_r);
    const __m512 psi_iv = _mm512_set1_ps(psi_i);
    const __m512 bin_bv = _mm512_set1_ps(bin_b);
    const __m512 bin_cv = _mm512_set1_ps(bin_c);
    float* row_re = acc_re + m * acc_pitch;
    float* row_im = acc_im + m * acc_pitch;
    Index l = 0;
    for (; l + 16 <= len_l; l += 16) {
      const __m512 lvec =
          _mm512_add_ps(iota, _mm512_set1_ps(static_cast<float>(l)));
      const __m512 bin_av =
          _mm512_loadu_ps(&t.bin_a[static_cast<std::size_t>(l)]);
      const __m512 bin =
          madd<kFma>(lvec, bin_cv, _mm512_add_ps(bin_av, bin_bv));
      const __m512i ibin = _mm512_cvttps_epi32(bin);
      const __mmask16 nonneg =
          _mm512_cmp_ps_mask(bin, _mm512_setzero_ps(), _CMP_GE_OQ);
      const __mmask16 inrange = _mm512_cmplt_epi32_mask(ibin, max_bin);
      // cvttps saturates float bins beyond INT_MAX to INT_MIN; the explicit
      // ibin >= 0 check keeps such lanes out of the sample loads.
      const __mmask16 iok =
          _mm512_cmpgt_epi32_mask(ibin, _mm512_set1_epi32(-1));
      const __mmask16 ok = nonneg & inrange & iok;
      const __m512 frac = _mm512_sub_ps(bin, _mm512_cvtepi32_ps(ibin));
      __m512 re0;
      __m512 im0;
      __m512 re1;
      __m512 im1;
      SampleLoad::load(base, ibin, ok, samples, re0, im0, re1, im1);
      const __m512 s_r = madd<kFma>(frac, _mm512_sub_ps(re1, re0), re0);
      const __m512 s_i = madd<kFma>(frac, _mm512_sub_ps(im1, im0), im0);
      const __m512 phi_r =
          _mm512_loadu_ps(&t.phi_re[static_cast<std::size_t>(l)]);
      const __m512 phi_i =
          _mm512_loadu_ps(&t.phi_im[static_cast<std::size_t>(l)]);
      // arg = Phi * Psi * gamma (two complex multiplies)
      const __m512 t_r = msub<kFma>(phi_r, g_r, _mm512_mul_ps(phi_i, g_i));
      const __m512 t_i = madd<kFma>(phi_r, g_i, _mm512_mul_ps(phi_i, g_r));
      const __m512 a_r = msub<kFma>(t_r, psi_rv, _mm512_mul_ps(t_i, psi_iv));
      const __m512 a_i = madd<kFma>(t_r, psi_iv, _mm512_mul_ps(t_i, psi_rv));
      // gamma *= Gamma^16
      const __m512 ng_r = msub<kFma>(g_r, step_r, _mm512_mul_ps(g_i, step_i));
      g_i = madd<kFma>(g_r, step_i, _mm512_mul_ps(g_i, step_r));
      g_r = ng_r;
      // Out += arg * sample
      const __m512 c_r = msub<kFma>(a_r, s_r, _mm512_mul_ps(a_i, s_i));
      const __m512 c_i = madd<kFma>(a_r, s_i, _mm512_mul_ps(a_i, s_r));
      _mm512_storeu_ps(row_re + l,
                       _mm512_add_ps(_mm512_loadu_ps(row_re + l), c_r));
      _mm512_storeu_ps(row_im + l,
                       _mm512_add_ps(_mm512_loadu_ps(row_im + l), c_i));
    }
    // Scalar tail continues the recurrence from lane 0 of the vector state.
    float sg_r = _mm512_cvtss_f32(g_r);
    float sg_i = _mm512_cvtss_f32(g_i);
    const float gam_r = t.gam_re[static_cast<std::size_t>(m)];
    const float gam_i = t.gam_im[static_cast<std::size_t>(m)];
    for (; l < len_l; ++l) {
      const float bin = t.bin_a[static_cast<std::size_t>(l)] + bin_b +
                        static_cast<float>(l) * bin_c;
      const float phi_r = t.phi_re[static_cast<std::size_t>(l)];
      const float phi_i = t.phi_im[static_cast<std::size_t>(l)];
      const float t_r = phi_r * sg_r - phi_i * sg_i;
      const float t_i = phi_r * sg_i + phi_i * sg_r;
      const float a_r = t_r * psi_r - t_i * psi_i;
      const float a_i = t_r * psi_i + t_i * psi_r;
      const float ng_r = sg_r * gam_r - sg_i * gam_i;
      sg_i = sg_r * gam_i + sg_i * gam_r;
      sg_r = ng_r;
      if (bin >= 0.0f) {
        const auto ib = static_cast<Index>(bin);
        if (ib + 1 < samples) {
          const float frac = bin - static_cast<float>(ib);
          const float r0 = base[2 * ib];
          const float i0 = base[2 * ib + 1];
          const float r1 = base[2 * ib + 2];
          const float i1 = base[2 * ib + 3];
          const float s_r = r0 + frac * (r1 - r0);
          const float s_i = i0 + frac * (i1 - i0);
          row_re[l] += a_r * s_r - a_i * s_i;
          row_im[l] += a_r * s_i + a_i * s_r;
        }
      }
    }
  }
}

/// SoA adaptor: same vector body, but the streaming kernel's split planes
/// need per-plane gathers at scale 4 instead of the AoS pair loads.
void rows_soa_avx512(const asr::BlockTables& t, const float* soa_re,
                     const float* soa_im, Index samples, float* acc_re,
                     float* acc_im, Index acc_pitch, Index len_l,
                     Index len_m) {
  const __m512 iota =
      _mm512_set_ps(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  const __m512i max_bin = _mm512_set1_epi32(static_cast<int>(samples) - 1);
  for (Index m = 0; m < len_m; ++m) {
    const float bin_b = t.bin_b[static_cast<std::size_t>(m)];
    const float bin_c = t.bin_c[static_cast<std::size_t>(m)];
    const float psi_r = t.psi_re[static_cast<std::size_t>(m)];
    const float psi_i = t.psi_im[static_cast<std::size_t>(m)];
    const GammaLanes lanes =
        make_gamma_lanes(t.gam_re[static_cast<std::size_t>(m)],
                         t.gam_im[static_cast<std::size_t>(m)], 16);
    __m512 g_r = _mm512_load_ps(lanes.re);
    __m512 g_i = _mm512_load_ps(lanes.im);
    const __m512 step_r = _mm512_set1_ps(lanes.step_re);
    const __m512 step_i = _mm512_set1_ps(lanes.step_im);
    const __m512 psi_rv = _mm512_set1_ps(psi_r);
    const __m512 psi_iv = _mm512_set1_ps(psi_i);
    const __m512 bin_bv = _mm512_set1_ps(bin_b);
    const __m512 bin_cv = _mm512_set1_ps(bin_c);
    float* row_re = acc_re + m * acc_pitch;
    float* row_im = acc_im + m * acc_pitch;
    Index l = 0;
    for (; l + 16 <= len_l; l += 16) {
      const __m512 lvec =
          _mm512_add_ps(iota, _mm512_set1_ps(static_cast<float>(l)));
      const __m512 bin_av =
          _mm512_loadu_ps(&t.bin_a[static_cast<std::size_t>(l)]);
      const __m512 bin =
          _mm512_fmadd_ps(lvec, bin_cv, _mm512_add_ps(bin_av, bin_bv));
      const __m512i ibin = _mm512_cvttps_epi32(bin);
      const __mmask16 nonneg =
          _mm512_cmp_ps_mask(bin, _mm512_setzero_ps(), _CMP_GE_OQ);
      const __mmask16 inrange = _mm512_cmplt_epi32_mask(ibin, max_bin);
      // cvttps saturates float bins beyond INT_MAX to INT_MIN; the explicit
      // ibin >= 0 check keeps such lanes out of the gather.
      const __mmask16 iok =
          _mm512_cmpgt_epi32_mask(ibin, _mm512_set1_epi32(-1));
      const __mmask16 ok = nonneg & inrange & iok;
      const __m512 frac = _mm512_sub_ps(bin, _mm512_cvtepi32_ps(ibin));
      const __m512i ibin1 = _mm512_add_epi32(ibin, _mm512_set1_epi32(1));
      const __m512 zero = _mm512_setzero_ps();
      // 4 hardware gathers: In[bin]/In[bin+1] over both SoA planes; masked
      // lanes never touch memory and contribute exact zeros downstream.
      const __m512 re0 = _mm512_mask_i32gather_ps(zero, ok, ibin, soa_re, 4);
      const __m512 re1 = _mm512_mask_i32gather_ps(zero, ok, ibin1, soa_re, 4);
      const __m512 im0 = _mm512_mask_i32gather_ps(zero, ok, ibin, soa_im, 4);
      const __m512 im1 = _mm512_mask_i32gather_ps(zero, ok, ibin1, soa_im, 4);
      const __m512 s_r = _mm512_fmadd_ps(frac, _mm512_sub_ps(re1, re0), re0);
      const __m512 s_i = _mm512_fmadd_ps(frac, _mm512_sub_ps(im1, im0), im0);
      const __m512 phi_r =
          _mm512_loadu_ps(&t.phi_re[static_cast<std::size_t>(l)]);
      const __m512 phi_i =
          _mm512_loadu_ps(&t.phi_im[static_cast<std::size_t>(l)]);
      // arg = Phi * Psi * gamma (two complex multiplies)
      const __m512 t_r =
          _mm512_fmsub_ps(phi_r, g_r, _mm512_mul_ps(phi_i, g_i));
      const __m512 t_i =
          _mm512_fmadd_ps(phi_r, g_i, _mm512_mul_ps(phi_i, g_r));
      const __m512 a_r =
          _mm512_fmsub_ps(t_r, psi_rv, _mm512_mul_ps(t_i, psi_iv));
      const __m512 a_i =
          _mm512_fmadd_ps(t_r, psi_iv, _mm512_mul_ps(t_i, psi_rv));
      // gamma *= Gamma^16
      const __m512 ng_r =
          _mm512_fmsub_ps(g_r, step_r, _mm512_mul_ps(g_i, step_i));
      g_i = _mm512_fmadd_ps(g_r, step_i, _mm512_mul_ps(g_i, step_r));
      g_r = ng_r;
      // Out += arg * sample
      const __m512 c_r = _mm512_fmsub_ps(a_r, s_r, _mm512_mul_ps(a_i, s_i));
      const __m512 c_i = _mm512_fmadd_ps(a_r, s_i, _mm512_mul_ps(a_i, s_r));
      _mm512_storeu_ps(row_re + l,
                       _mm512_add_ps(_mm512_loadu_ps(row_re + l), c_r));
      _mm512_storeu_ps(row_im + l,
                       _mm512_add_ps(_mm512_loadu_ps(row_im + l), c_i));
    }
    // Scalar tail continues the recurrence from lane 0 of the vector state.
    float sg_r = _mm512_cvtss_f32(g_r);
    float sg_i = _mm512_cvtss_f32(g_i);
    const float gam_r = t.gam_re[static_cast<std::size_t>(m)];
    const float gam_i = t.gam_im[static_cast<std::size_t>(m)];
    for (; l < len_l; ++l) {
      const float bin = t.bin_a[static_cast<std::size_t>(l)] + bin_b +
                        static_cast<float>(l) * bin_c;
      const float phi_r = t.phi_re[static_cast<std::size_t>(l)];
      const float phi_i = t.phi_im[static_cast<std::size_t>(l)];
      const float t_r = phi_r * sg_r - phi_i * sg_i;
      const float t_i = phi_r * sg_i + phi_i * sg_r;
      const float a_r = t_r * psi_r - t_i * psi_i;
      const float a_i = t_r * psi_i + t_i * psi_r;
      const float ng_r = sg_r * gam_r - sg_i * gam_i;
      sg_i = sg_r * gam_i + sg_i * gam_r;
      sg_r = ng_r;
      if (bin >= 0.0f) {
        const auto ib = static_cast<Index>(bin);
        if (ib + 1 < samples) {
          const float frac = bin - static_cast<float>(ib);
          const float s_r = soa_re[ib] + frac * (soa_re[ib + 1] - soa_re[ib]);
          const float s_i = soa_im[ib] + frac * (soa_im[ib + 1] - soa_im[ib]);
          row_re[l] += a_r * s_r - a_i * s_i;
          row_im[l] += a_r * s_i + a_i * s_r;
        }
      }
    }
  }
}

void rows_aos_avx512(const asr::BlockTables& t, const CFloat* in,
                     Index samples, float* acc_re, float* acc_im,
                     Index acc_pitch, Index len_l, Index len_m,
                     KernelVariant variant) {
  const auto* base = reinterpret_cast<const float*>(in);
  switch (variant) {
    case KernelVariant::kShuffleTranspose:
      rows_impl<ShuffleSamples, true>(t, base, samples, acc_re, acc_im,
                                      acc_pitch, len_l, len_m);
      return;
    case KernelVariant::kGatherNoFma:
      rows_impl<GatherSamples, false>(t, base, samples, acc_re, acc_im,
                                      acc_pitch, len_l, len_m);
      return;
    case KernelVariant::kAuto:
    case KernelVariant::kGather:
      rows_impl<GatherSamples, true>(t, base, samples, acc_re, acc_im,
                                     acc_pitch, len_l, len_m);
      return;
  }
}

}  // namespace

const AsrIsaOps& asr_isa_ops_avx512() {
  static const AsrIsaOps ops{16, "avx512", &rows_soa_avx512,
                             &rows_aos_avx512};
  return ops;
}

}  // namespace sarbp::bp::detail
