#include "beamform/simulator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace sarbp::beamform {
namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}

}  // namespace

ChannelData simulate_channels(const Transducer& transducer,
                              const ScanRegion& region,
                              std::span<const Scatterer> scatterers,
                              double noise_sigma, std::uint64_t seed) {
  transducer.validate();
  // Receive window: covers the deepest pixel's two-way path plus margin.
  const double z_max =
      region.z_start_m + static_cast<double>(region.depth) * region.pixel_m;
  const double half_aperture =
      0.5 * static_cast<double>(transducer.elements - 1) * transducer.pitch_m;
  const double lateral_max =
      0.5 * static_cast<double>(region.width) * region.pixel_m + half_aperture;
  const double max_path =
      z_max + std::sqrt(lateral_max * lateral_max + z_max * z_max) + 2e-3;
  const auto samples = static_cast<Index>(
      std::ceil(max_path * transducer.samples_per_metre()));

  ChannelData data(transducer.elements, samples);
  // Pulse envelope: ~0.6 fractional bandwidth -> mainlobe of a few carrier
  // cycles; in samples: fs / (0.6 f0).
  const double samples_per_lobe =
      transducer.sample_rate_hz / (0.6 * transducer.centre_frequency_hz);
  const int reach = static_cast<int>(std::ceil(6.0 * samples_per_lobe));
  const double k = transducer.wavenumber();

  for (int e = 0; e < transducer.elements; ++e) {
    auto channel = data.channel(e);
    const double xe = transducer.element_x(e);
    for (const auto& s : scatterers) {
      const double rx = std::hypot(s.x_m - xe, s.z_m);
      const double path = s.z_m + rx;  // plane-wave tx + element rx
      const double centre_sample = path * transducer.samples_per_metre();
      const double phase =
          -2.0 * std::numbers::pi * k * path + s.phase_rad;
      const CDouble carrier{s.amplitude * std::cos(phase),
                            s.amplitude * std::sin(phase)};
      const auto centre = static_cast<Index>(std::llround(centre_sample));
      for (Index b = std::max<Index>(0, centre - reach);
           b <= std::min<Index>(samples - 1, centre + reach); ++b) {
        const double d =
            (static_cast<double>(b) - centre_sample) / samples_per_lobe;
        const double envelope =
            sinc(d) * (0.5 + 0.5 * std::cos(std::numbers::pi *
                                            std::clamp(d / 6.0, -1.0, 1.0)));
        const CDouble v = carrier * envelope;
        channel[static_cast<std::size_t>(b)] +=
            CFloat(static_cast<float>(v.real()), static_cast<float>(v.imag()));
      }
    }
  }

  if (noise_sigma > 0.0) {
    Rng rng(seed);
    for (int e = 0; e < transducer.elements; ++e) {
      for (auto& v : data.channel(e)) {
        v += CFloat(static_cast<float>(rng.normal(0.0, noise_sigma)),
                    static_cast<float>(rng.normal(0.0, noise_sigma)));
      }
    }
  }
  return data;
}

std::vector<Scatterer> random_phantom(const ScanRegion& region, int count,
                                      sarbp::Rng& rng) {
  std::vector<Scatterer> scatterers(static_cast<std::size_t>(count));
  const double half_width =
      0.5 * static_cast<double>(region.width) * region.pixel_m;
  const double z_end =
      region.z_start_m + static_cast<double>(region.depth) * region.pixel_m;
  for (auto& s : scatterers) {
    s.x_m = rng.uniform(-half_width, half_width);
    s.z_m = rng.uniform(region.z_start_m, z_end);
    const double sigma = 1.0 / 1.2533;
    s.amplitude = std::hypot(rng.normal(0.0, sigma), rng.normal(0.0, sigma));
    s.phase_rad = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  return scatterers;
}

}  // namespace sarbp::beamform
