// Synthetic ultrasound channel-data generator: point scatterers insonified
// by a 0-degree plane wave; each element records the complex-baseband echo
// with the exact two-way delay and carrier phase.
#pragma once

#include <vector>

#include "beamform/transducer.h"
#include "common/rng.h"

namespace sarbp::beamform {

struct Scatterer {
  double x_m = 0.0;
  double z_m = 0.0;
  double amplitude = 1.0;
  double phase_rad = 0.0;
};

/// Simulates plane-wave (0 degree) insonification: the scatterer at (x, z)
/// echoes into element e at path length z + sqrt((x - x_e)^2 + z^2), with
/// a windowed-sinc pulse envelope (fractional bandwidth ~0.6) and carrier
/// phase exp(-i * 2*pi * f0/c * path).
ChannelData simulate_channels(const Transducer& transducer,
                              const ScanRegion& region,
                              std::span<const Scatterer> scatterers,
                              double noise_sigma = 0.0,
                              std::uint64_t seed = 1);

/// Random speckle phantom: `count` scatterers uniform over the region with
/// Rayleigh amplitudes (for contrast/cyst-style scenes add explicit
/// scatterers on top).
std::vector<Scatterer> random_phantom(const ScanRegion& region, int count,
                                      sarbp::Rng& rng);

}  // namespace sarbp::beamform
