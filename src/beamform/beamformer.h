// Delay-and-sum beamformers: the baseline (per-pixel sqrt + trig) and the
// approximate-strength-reduction form, which reuses the SAR ASR machinery
// unchanged — the path function z + sqrt((x - x_e)^2 + z^2) is the SAR
// range function plus a linear term, so the per-block quadratic tables
// (A, B, C, Phi, Psi, Gamma) apply verbatim. Paper §7 reports 5x from this
// transformation on their beamformer.
#pragma once

#include "beamform/transducer.h"
#include "common/grid2d.h"

namespace sarbp::beamform {

/// Reference/baseline delay-and-sum: per (pixel, element) one double sqrt,
/// one double argument reduction + polynomial sin/cos (EP accuracy — same
/// operating point as the SAR baseline), one linear interpolation.
Grid2D<CFloat> beamform_baseline(const Transducer& transducer,
                                 const ScanRegion& region,
                                 const ChannelData& data);

/// All-double reference for accuracy measurements.
Grid2D<CDouble> beamform_ref(const Transducer& transducer,
                             const ScanRegion& region,
                             const ChannelData& data);

/// ASR delay-and-sum: per (element, pixel-block) quadratic tables, inner
/// loop of multiply/adds only. The block edges are the accuracy knob
/// (§3.5); ultrasound's near-field path curvature is dominated by the
/// lateral coordinate, so blocks default to narrow-in-x / tall-in-depth.
Grid2D<CFloat> beamform_asr(const Transducer& transducer,
                            const ScanRegion& region, const ChannelData& data,
                            Index block_x = 16, Index block_z = 32);

}  // namespace sarbp::beamform
