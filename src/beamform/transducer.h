// Ultrasound transducer and imaging-geometry model for the ASR-generality
// demonstration (paper §7): "although purposely omitted to focus on SAR,
// we have applied the ASR method to beamforming used in ultrasound
// imaging, thereby achieving a 5x speedup."
//
// The computational analogy is exact: delay-and-sum beamforming evaluates,
// per (element, pixel), a square root (the element-to-pixel path length),
// a complex exponential (IQ phase rotation at the carrier), and an
// irregular interpolation into the channel data — the same inner loop as
// SAR backprojection with pulses replaced by array elements.
#pragma once

#include <span>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace sarbp::beamform {

struct Transducer {
  int elements = 64;
  double pitch_m = 0.3e-3;        ///< element spacing (lambda/2 at 2.5 MHz)
  double centre_frequency_hz = 5.0e6;
  double sample_rate_hz = 20.0e6; ///< IQ sampling rate of the channel data
  double sound_speed_m_s = 1540.0;

  /// x-position of element e; the array is centred on x = 0 at depth 0.
  [[nodiscard]] double element_x(int e) const {
    return (static_cast<double>(e) -
            0.5 * static_cast<double>(elements - 1)) *
           pitch_m;
  }

  /// Samples per metre of one-way path: fs / c.
  [[nodiscard]] double samples_per_metre() const {
    return sample_rate_hz / sound_speed_m_s;
  }

  /// One-way carrier wavenumber (cycles per metre): f0 / c — the `k` of
  /// the SAR tables.
  [[nodiscard]] double wavenumber() const {
    return centre_frequency_hz / sound_speed_m_s;
  }

  void validate() const {
    sarbp::ensure(elements >= 2, "Transducer: need at least 2 elements");
    sarbp::ensure(pitch_m > 0 && centre_frequency_hz > 0 &&
                      sample_rate_hz > 0 && sound_speed_m_s > 0,
                  "Transducer: physical parameters must be positive");
  }
};

/// Imaging grid in the array plane: x lateral (centred on the array),
/// z depth (away from the face). Row-major pixels, x fast.
struct ScanRegion {
  Index width = 128;    ///< lateral pixels
  Index depth = 128;    ///< axial pixels
  double pixel_m = 0.15e-3;  ///< lambda/2 at 5 MHz
  double z_start_m = 25e-3;  ///< imaging depth window start

  [[nodiscard]] double pixel_x(Index ix) const {
    return (static_cast<double>(ix) -
            0.5 * static_cast<double>(width - 1)) *
           pixel_m;
  }
  [[nodiscard]] double pixel_z(Index iz) const {
    return z_start_m + static_cast<double>(iz) * pixel_m;
  }
};

/// Per-element IQ channel data: elements x samples, complex baseband.
class ChannelData {
 public:
  ChannelData(int elements, Index samples)
      : elements_(elements), samples_(samples) {
    sarbp::ensure(elements >= 1 && samples >= 1, "ChannelData: empty");
    data_.assign(static_cast<std::size_t>(elements) *
                     static_cast<std::size_t>(samples),
                 CFloat{});
  }

  [[nodiscard]] int elements() const { return elements_; }
  [[nodiscard]] Index samples() const { return samples_; }

  [[nodiscard]] std::span<CFloat> channel(int e) {
    return {data_.data() + static_cast<std::size_t>(e) *
                               static_cast<std::size_t>(samples_),
            static_cast<std::size_t>(samples_)};
  }
  [[nodiscard]] std::span<const CFloat> channel(int e) const {
    return {data_.data() + static_cast<std::size_t>(e) *
                               static_cast<std::size_t>(samples_),
            static_cast<std::size_t>(samples_)};
  }

 private:
  int elements_;
  Index samples_;
  std::vector<CFloat> data_;
};

}  // namespace sarbp::beamform
