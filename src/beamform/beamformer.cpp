#include "beamform/beamformer.h"

#include <cmath>
#include <numbers>

#include "asr/block_plan.h"
#include "asr/quadratic.h"
#include "asr/tables.h"
#include "common/check.h"
#include "signal/trig.h"

namespace sarbp::beamform {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

void validate(const Transducer& transducer, const ScanRegion& region,
              const ChannelData& data) {
  transducer.validate();
  ensure(region.width > 0 && region.depth > 0 && region.pixel_m > 0,
         "beamform: empty scan region");
  ensure(data.elements() == transducer.elements,
         "beamform: channel count mismatch");
}

}  // namespace

Grid2D<CDouble> beamform_ref(const Transducer& transducer,
                             const ScanRegion& region,
                             const ChannelData& data) {
  validate(transducer, region, data);
  Grid2D<CDouble> out(region.width, region.depth);
  const double spm = transducer.samples_per_metre();
  const double k = transducer.wavenumber();
  for (int e = 0; e < transducer.elements; ++e) {
    const auto channel = data.channel(e);
    const double xe = transducer.element_x(e);
    for (Index iz = 0; iz < region.depth; ++iz) {
      const double z = region.pixel_z(iz);
      for (Index ix = 0; ix < region.width; ++ix) {
        const double x = region.pixel_x(ix);
        const double path = z + std::hypot(x - xe, z);
        const double bin = path * spm;
        const auto b = static_cast<Index>(bin);
        if (bin < 0.0 || b + 1 >= data.samples()) continue;
        const double frac = bin - static_cast<double>(b);
        const CFloat v0 = channel[static_cast<std::size_t>(b)];
        const CFloat v1 = channel[static_cast<std::size_t>(b) + 1];
        const CDouble sample{(1.0 - frac) * v0.real() + frac * v1.real(),
                             (1.0 - frac) * v0.imag() + frac * v1.imag()};
        const double phase = kTwoPi * k * path;
        out.at(ix, iz) += CDouble{std::cos(phase), std::sin(phase)} * sample;
      }
    }
  }
  return out;
}

Grid2D<CFloat> beamform_baseline(const Transducer& transducer,
                                 const ScanRegion& region,
                                 const ChannelData& data) {
  validate(transducer, region, data);
  Grid2D<CFloat> out(region.width, region.depth);
  const double spm = transducer.samples_per_metre();
  const double two_pi_k = kTwoPi * transducer.wavenumber();
  for (int e = 0; e < transducer.elements; ++e) {
    const auto channel = data.channel(e);
    const double xe = transducer.element_x(e);
    for (Index iz = 0; iz < region.depth; ++iz) {
      const double z = region.pixel_z(iz);
      for (Index ix = 0; ix < region.width; ++ix) {
        const double x = region.pixel_x(ix);
        const double dx = x - xe;
        const double path = z + std::sqrt(dx * dx + z * z);
        const auto bin = static_cast<float>(path * spm);
        const auto b = static_cast<Index>(bin);
        if (!(bin >= 0.0f) || b + 1 >= data.samples()) continue;
        const float frac = bin - static_cast<float>(b);
        const CFloat v0 = channel[static_cast<std::size_t>(b)];
        const CFloat v1 = channel[static_cast<std::size_t>(b) + 1];
        const float s_r = v0.real() + frac * (v1.real() - v0.real());
        const float s_i = v0.imag() + frac * (v1.imag() - v0.imag());
        const signal::SinCos sc = signal::sincos_baseline_ep(two_pi_k * path);
        out.at(ix, iz) += CFloat(sc.cos * s_r - sc.sin * s_i,
                                 sc.cos * s_i + sc.sin * s_r);
      }
    }
  }
  return out;
}

Grid2D<CFloat> beamform_asr(const Transducer& transducer,
                            const ScanRegion& region, const ChannelData& data,
                            Index block_x, Index block_z) {
  validate(transducer, region, data);
  ensure(block_x > 0 && block_z > 0, "beamform_asr: blocks must be positive");
  Grid2D<CFloat> out(region.width, region.depth);
  const double dr = 1.0 / transducer.samples_per_metre();
  const double two_pi_k = kTwoPi * transducer.wavenumber();
  const Index samples = data.samples();

  const auto blocks =
      asr::plan_blocks(0, 0, region.width, region.depth, block_x, block_z);
  asr::BlockTables tables;

  for (const auto& spec : blocks) {
    // Block centre in physical coordinates; l walks x, m walks z.
    const double x_c = region.pixel_x(spec.x0) +
                       0.5 * static_cast<double>(spec.width - 1) * region.pixel_m;
    const double z_c = region.pixel_z(spec.y0) +
                       0.5 * static_cast<double>(spec.height - 1) * region.pixel_m;
    for (int e = 0; e < transducer.elements; ++e) {
      const auto channel = data.channel(e);
      const CFloat* in = channel.data();
      const double xe = transducer.element_x(e);
      // Receive path sqrt((x - xe)^2 + z^2) == the SAR range function with
      // u = (x_c - xe, z_c, 0); the plane-wave transmit path z is linear
      // in m and folds into the quadratic's constant and m-slope.
      asr::Quadratic2D q = asr::range_quadratic(
          {x_c, z_c, 0.0}, {xe, 0.0, 0.0}, region.pixel_m, region.pixel_m);
      q.f0 += z_c;
      q.ay += region.pixel_m;
      asr::build_block_tables_fast(q, /*start_range=*/0.0, dr, two_pi_k,
                              spec.width, spec.height, tables);

      for (Index m = 0; m < spec.height; ++m) {
        const float bin_b = tables.bin_b[static_cast<std::size_t>(m)];
        const float bin_c = tables.bin_c[static_cast<std::size_t>(m)];
        const float psi_r = tables.psi_re[static_cast<std::size_t>(m)];
        const float psi_i = tables.psi_im[static_cast<std::size_t>(m)];
        const float gam_r = tables.gam_re[static_cast<std::size_t>(m)];
        const float gam_i = tables.gam_im[static_cast<std::size_t>(m)];
        float g_r = 1.0f;
        float g_i = 0.0f;
        auto row = out.row(spec.y0 + m);
        for (Index l = 0; l < spec.width; ++l) {
          const float bin = tables.bin_a[static_cast<std::size_t>(l)] + bin_b +
                            static_cast<float>(l) * bin_c;
          const float phi_r = tables.phi_re[static_cast<std::size_t>(l)];
          const float phi_i = tables.phi_im[static_cast<std::size_t>(l)];
          const float t_r = phi_r * g_r - phi_i * g_i;
          const float t_i = phi_r * g_i + phi_i * g_r;
          const float a_r = t_r * psi_r - t_i * psi_i;
          const float a_i = t_r * psi_i + t_i * psi_r;
          const float ng_r = g_r * gam_r - g_i * gam_i;
          g_i = g_r * gam_i + g_i * gam_r;
          g_r = ng_r;
          if (bin >= 0.0f) {
            const auto b = static_cast<Index>(bin);
            if (b + 1 < samples) {
              const float frac = bin - static_cast<float>(b);
              const CFloat v0 = in[b];
              const CFloat v1 = in[b + 1];
              const float s_r = v0.real() + frac * (v1.real() - v0.real());
              const float s_i = v0.imag() + frac * (v1.imag() - v0.imag());
              auto& pixel = row[static_cast<std::size_t>(spec.x0 + l)];
              pixel += CFloat(a_r * s_r - a_i * s_i, a_r * s_i + a_i * s_r);
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace sarbp::beamform
