// Polar formatting algorithm (PFA) — the Fourier-domain image formation
// method the paper positions backprojection against (§2):
//
//   "PFA has a relatively low computational complexity due to its
//    utilization of the fast Fourier transform, but it imposes assumptions
//    of planarity on both the reconstruction surface and the wavefront
//    within the imaged scene. In addition, PFA assumes an idealized
//    trajectory for the radar platform. ... image quality degrades as the
//    deviations increase."
//
// Pipeline: per-pulse range-profile FFT back to the spectral domain ->
// scene-centre motion compensation -> polar-to-rectangular resampling of
// the K-space annulus sector -> 2D taper -> 2D FFT -> image in the
// mid-aperture (range, cross-range) frame, resampled onto the requested
// scene grid.
//
// The `assume_ideal_trajectory` knob reproduces the paper's robustness
// argument: when on, the polar mapping uses the nominal circular orbit
// instead of the recorded per-pulse positions, and trajectory
// perturbations defocus the PFA image while backprojection (which consumes
// the recorded positions exactly) stays sharp.
#pragma once

#include "common/grid2d.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "geometry/trajectory.h"
#include "sim/phase_history.h"
#include "signal/window.h"

namespace sarbp::pfa {

struct PfaParams {
  signal::WindowKind taper = signal::WindowKind::kTaylor;
  /// Use the nominal orbit (fitted from the first/last recorded positions)
  /// for the polar mapping instead of the recorded per-pulse positions.
  bool assume_ideal_trajectory = false;
  /// Fraction of the sampled K-space annulus used for the rectangular
  /// inscription (guard band against extrapolation at the sector edges).
  double kspace_fill = 0.9;
};

class PolarFormatter {
 public:
  PolarFormatter(const geometry::ImageGrid& grid, PfaParams params);

  /// Forms the image on the constructor's scene grid.
  [[nodiscard]] Grid2D<CFloat> form_image(const sim::PhaseHistory& history) const;

  [[nodiscard]] const PfaParams& params() const { return params_; }

 private:
  geometry::ImageGrid grid_;
  PfaParams params_;
};

/// FLOP estimate of one PFA image (for the complexity comparison): N 1D
/// FFTs + resampling + one n x n 2D FFT, vs backprojection's 38 N Ix Iy.
double pfa_flops(Index pulses, Index samples, Index image);

}  // namespace sarbp::pfa
