#include "pfa/pfa.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/check.h"
#include "signal/fft.h"
#include "signal/fft2d.h"

namespace sarbp::pfa {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Per-pulse polar geometry: ground look direction and ranges.
struct PulseGeometry {
  double theta = 0.0;        ///< ground angle of the scene->radar direction
  double cos_grazing = 0.0;  ///< |ground component| of the unit direction
  double range = 0.0;        ///< slant range to the scene centre
  double start_range = 0.0;  ///< r0 of the recorded window
};

std::vector<PulseGeometry> pulse_geometry(const sim::PhaseHistory& history,
                                          const geometry::ImageGrid& grid,
                                          bool assume_ideal) {
  const Index n = history.num_pulses();
  std::vector<PulseGeometry> geo(static_cast<std::size_t>(n));
  // Nominal-orbit fit (what an idealizing processor would assume): constant
  // slant range / grazing from the first pulse, uniform angular steps
  // between the first and last recorded angles.
  const geometry::Vec3 first =
      history.meta(0).position - grid.centre();
  const geometry::Vec3 last =
      history.meta(n - 1).position - grid.centre();
  const double theta_first = std::atan2(first.y, first.x);
  const double theta_last = std::atan2(last.y, last.x);
  const double r_nominal = first.norm();
  const double cosg_nominal = std::hypot(first.x, first.y) / first.norm();

  for (Index p = 0; p < n; ++p) {
    PulseGeometry& g = geo[static_cast<std::size_t>(p)];
    g.start_range = history.meta(p).start_range_m;
    if (assume_ideal) {
      const double f = n > 1 ? static_cast<double>(p) /
                                   static_cast<double>(n - 1)
                             : 0.0;
      g.theta = theta_first + f * (theta_last - theta_first);
      g.range = r_nominal;
      g.cos_grazing = cosg_nominal;
    } else {
      const geometry::Vec3 d = history.meta(p).position - grid.centre();
      g.theta = std::atan2(d.y, d.x);
      g.range = d.norm();
      g.cos_grazing = std::hypot(d.x, d.y) / d.norm();
    }
  }
  return geo;
}

}  // namespace

PolarFormatter::PolarFormatter(const geometry::ImageGrid& grid,
                               PfaParams params)
    : grid_(grid), params_(params) {
  ensure(params_.kspace_fill > 0.0 && params_.kspace_fill <= 1.0,
         "PolarFormatter: kspace_fill in (0, 1]");
}

Grid2D<CFloat> PolarFormatter::form_image(
    const sim::PhaseHistory& history) const {
  const Index pulses = history.num_pulses();
  const Index samples = history.samples_per_pulse();
  ensure(pulses >= 2, "PolarFormatter: need at least two pulses");
  const double dr = history.bin_spacing();
  const double k_carrier = kTwoPi * history.wavenumber();  // rad/m two-way

  const auto geo = pulse_geometry(history, grid_, params_.assume_ideal_trajectory);

  // --- 1. Per-pulse spectra with scene-centre motion compensation.
  // Spectrum bin m (signed) sits at radial offset kappa_m = 2*pi*m/(S*dr);
  // after compensation the sample is the scene spectrum at radial
  // wavenumber k_r = k_carrier + kappa_m along the pulse's look direction.
  const signal::Fft<double> fft(static_cast<std::size_t>(samples));
  Grid2D<CDouble> spectra(samples, pulses);  // x: bin (signed, fftshifted later)
  std::vector<CDouble> work(static_cast<std::size_t>(samples));
  for (Index p = 0; p < pulses; ++p) {
    const auto profile = history.pulse(p);
    for (Index i = 0; i < samples; ++i) {
      const CFloat v = profile[static_cast<std::size_t>(i)];
      work[static_cast<std::size_t>(i)] = CDouble(v.real(), v.imag());
    }
    fft.forward(work);
    const PulseGeometry& g = geo[static_cast<std::size_t>(p)];
    for (Index m = 0; m < samples; ++m) {
      const Index signed_m = m < samples / 2 ? m : m - samples;
      const double kappa = kTwoPi * static_cast<double>(signed_m) /
                           (static_cast<double>(samples) * dr);
      const double k_r = k_carrier + kappa;
      // Compensation: remove the window-origin phase (kappa * r0) and the
      // scene-centre range phase (k_r * R_j); see DESIGN.md / pfa.h.
      const double phase = -kappa * g.start_range + k_r * g.range;
      const CDouble c{std::cos(phase), std::sin(phase)};
      spectra.at(m, p) = work[static_cast<std::size_t>(m)] * c;
    }
  }

  // --- 2. Rectangular K-space grid inscribed in the sampled sector,
  // in the mid-aperture rotated frame (k_xi radial, k_eta cross).
  const double radial_halfband =
      kTwoPi * static_cast<double>(samples / 2) /
      (static_cast<double>(samples) * dr) * params_.kspace_fill;
  double theta_min = geo.front().theta;
  double theta_max = geo.back().theta;
  if (theta_min > theta_max) std::swap(theta_min, theta_max);
  const double theta_c = 0.5 * (theta_min + theta_max);
  const double cosg_c = geo[geo.size() / 2].cos_grazing;
  const double k_centre = k_carrier * cosg_c;
  const double half_angle =
      0.5 * (theta_max - theta_min) * params_.kspace_fill;

  const Index n = std::max(grid_.width(), grid_.height());
  const double dk_xi = 2.0 * radial_halfband * cosg_c / static_cast<double>(n);
  const double dk_eta =
      2.0 * k_centre * std::sin(half_angle) / static_cast<double>(n);
  ensure(dk_xi > 0.0 && dk_eta > 0.0,
         "PolarFormatter: degenerate K-space sector");

  // --- 3. Polar -> rect resampling (bilinear in pulse-angle x radial-bin).
  const auto taper_1d = signal::make_window(params_.taper,
                                            static_cast<std::size_t>(n));
  Grid2D<CDouble> rect(n, n);
  const double theta0 = geo.front().theta;
  const double theta1 = geo.back().theta;
  for (Index q = 0; q < n; ++q) {
    const double k_eta =
        (static_cast<double>(q) - 0.5 * static_cast<double>(n - 1)) * dk_eta;
    for (Index p = 0; p < n; ++p) {
      const double k_xi =
          k_centre +
          (static_cast<double>(p) - 0.5 * static_cast<double>(n - 1)) * dk_xi;
      const double rho = std::hypot(k_xi, k_eta);
      const double theta = theta_c + std::atan2(k_eta, k_xi);
      // Fractional pulse index: invert the (monotone) angle sequence with
      // a linear map, good to first order for near-uniform sampling.
      const double tf = (theta - theta0) / (theta1 - theta0) *
                        static_cast<double>(pulses - 1);
      if (!(tf >= 0.0) || tf > static_cast<double>(pulses - 1)) continue;
      const auto j0 = static_cast<Index>(tf);
      const Index j1 = std::min(j0 + 1, pulses - 1);
      const double ft = tf - static_cast<double>(j0);

      CDouble acc{};
      double weight = 0.0;
      for (const auto& [j, wj] : {std::pair{j0, 1.0 - ft}, {j1, ft}}) {
        if (wj <= 0.0) continue;
        const PulseGeometry& g = geo[static_cast<std::size_t>(j)];
        // Radial bin: rho = (k_carrier + kappa) * cos_grazing.
        const double kappa = rho / g.cos_grazing - k_carrier;
        const double mf = kappa * static_cast<double>(samples) * dr / kTwoPi;
        if (!(mf > -static_cast<double>(samples / 2 - 1)) ||
            mf > static_cast<double>(samples / 2 - 2)) {
          continue;
        }
        const double mfloor = std::floor(mf);
        const auto m0 = static_cast<Index>(mfloor);
        const double fm = mf - mfloor;
        auto at_signed = [&](Index sm) {
          return spectra.at((sm % samples + samples) % samples, j);
        };
        acc += wj * ((1.0 - fm) * at_signed(m0) + fm * at_signed(m0 + 1));
        weight += wj;
      }
      if (weight > 0.0) {
        rect.at(p, q) = acc / weight *
                        (taper_1d[static_cast<std::size_t>(p)] *
                         taper_1d[static_cast<std::size_t>(q)]);
      }
    }
  }

  // --- 4. 2D transform to the rotated image frame. The compensated
  // samples are G(k) = sum a e^{+i k . u}, so a forward FFT (e^{-i})
  // focuses the image; sample s maps to offset xi = 2*pi*s/(n*dk).
  signal::Fft2D<double> fft2(n, n);
  fft2.forward(rect);

  // --- 5. Resample the rotated image onto the requested scene grid.
  const double span_xi = kTwoPi / dk_xi;   // unambiguous extent along xi
  const double span_eta = kTwoPi / dk_eta;
  const double ex_c = std::cos(theta_c);
  const double ey_c = std::sin(theta_c);
  Grid2D<CFloat> out(grid_.width(), grid_.height());
  for (Index y = 0; y < grid_.height(); ++y) {
    for (Index x = 0; x < grid_.width(); ++x) {
      const geometry::Vec3 pos = grid_.position(x, y);
      const double ux = pos.x - grid_.centre().x;
      const double uy = pos.y - grid_.centre().y;
      // Rotated coordinates: xi toward the radar (range), eta cross-range.
      const double xi = ux * ex_c + uy * ey_c;
      const double eta = -ux * ey_c + uy * ex_c;
      // FFT output sample s corresponds to xi = 2*pi*s/(n*dk_xi) modulo the
      // span; map and bilinearly interpolate (with wraparound).
      const double sf =
          (xi / span_xi + 1.0) * static_cast<double>(n);  // +1: positive wrap
      const double tf2 = (eta / span_eta + 1.0) * static_cast<double>(n);
      const double s_m = std::fmod(sf, static_cast<double>(n));
      const double t_m = std::fmod(tf2, static_cast<double>(n));
      const auto s0 = static_cast<Index>(s_m);
      const auto t0 = static_cast<Index>(t_m);
      const double fs = s_m - static_cast<double>(s0);
      const double ft2 = t_m - static_cast<double>(t0);
      auto wrap_at = [&](Index s, Index t) {
        return rect.at(s % n, t % n);
      };
      const CDouble v = (1.0 - fs) * (1.0 - ft2) * wrap_at(s0, t0) +
                        fs * (1.0 - ft2) * wrap_at(s0 + 1, t0) +
                        (1.0 - fs) * ft2 * wrap_at(s0, t0 + 1) +
                        fs * ft2 * wrap_at(s0 + 1, t0 + 1);
      out.at(x, y) = CFloat(static_cast<float>(v.real()),
                            static_cast<float>(v.imag()));
    }
  }
  return out;
}

double pfa_flops(Index pulses, Index samples, Index image) {
  const double fft_1d = 5.0 * static_cast<double>(samples) *
                        std::log2(static_cast<double>(samples));
  const double resample = 20.0 * static_cast<double>(image) *
                          static_cast<double>(image);
  const double fft_2d = 10.0 * static_cast<double>(image) *
                        static_cast<double>(image) *
                        std::log2(static_cast<double>(image));
  return static_cast<double>(pulses) * fft_1d + resample + fft_2d;
}

}  // namespace sarbp::pfa
