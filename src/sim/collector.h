// Pulse collector: turns (trajectory, reflector scene) into a
// range-compressed phase history. This is the paper's §5.1 data generator.
//
// Three fidelity levels, trading physics for speed:
//  - kFullWaveform: synthesize the raw baseband echo per pulse (delayed,
//    scaled chirp copies, down-converted), then FFT matched-filter it —
//    exercises the whole signal substrate;
//  - kIdealResponse: write the analytic post-compression point response
//    (sinc in range, exact carrier phase) directly — two orders of
//    magnitude faster, same backprojection-facing content;
//  - kRandom: band-limited noise profiles — for throughput benchmarking
//    where only the data volume matters.
#pragma once

#include "common/rng.h"
#include "geometry/grid.h"
#include "geometry/trajectory.h"
#include "sim/phase_history.h"
#include "sim/scene.h"
#include "signal/chirp.h"

namespace sarbp::sim {

enum class CollectionFidelity { kFullWaveform, kIdealResponse, kRandom };

struct CollectorParams {
  signal::ChirpParams chirp;
  CollectionFidelity fidelity = CollectionFidelity::kIdealResponse;
  /// Extra metres of receive window on each side of the scene's range span.
  double range_margin_m = 50.0;
  /// Thermal noise standard deviation added per compressed sample (0 = off).
  double noise_sigma = 0.0;
};

/// Collects one pulse batch. The phase history's per-pulse metadata carries
/// the *recorded* positions (what image formation may legitimately use);
/// echo delays are computed from the *true* positions.
PhaseHistory collect(const CollectorParams& params,
                     const geometry::ImageGrid& grid,
                     const ReflectorScene& scene,
                     std::span<const geometry::PulsePose> poses,
                     sarbp::Rng& rng);

/// Number of compressed samples per pulse the collector will produce for
/// this geometry (scene span + margins + pulse length).
Index window_samples(const CollectorParams& params,
                     const geometry::ImageGrid& grid,
                     std::span<const geometry::PulsePose> poses);

}  // namespace sarbp::sim
