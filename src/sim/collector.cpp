#include "sim/collector.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "signal/rangecomp.h"

namespace sarbp::sim {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

struct RangeSpan {
  double min_m;
  double max_m;
};

/// Conservative slant-range span from any pose to any point of the grid,
/// evaluated at the grid corners and centre (the range function is convex
/// enough over a flat grid for corners to bound it in practice; the margin
/// absorbs the rest).
RangeSpan scene_range_span(const geometry::ImageGrid& grid,
                           std::span<const geometry::PulsePose> poses) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  const Index xs[] = {0, grid.width() - 1, 0, grid.width() - 1,
                      grid.width() / 2};
  const Index ys[] = {0, 0, grid.height() - 1, grid.height() - 1,
                      grid.height() / 2};
  for (const auto& pose : poses) {
    for (int c = 0; c < 5; ++c) {
      const double r =
          geometry::distance(grid.position(xs[c], ys[c]), pose.true_position);
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
  }
  return {lo, hi};
}

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}

void add_ideal_response(PhaseHistory& history, Index pulse_index,
                        const Reflector& reflector,
                        const geometry::PulsePose& pose,
                        const signal::ChirpParams& chirp) {
  const double r = geometry::distance(reflector.position, pose.true_position);
  const auto meta = history.meta(pulse_index);
  const double bin = (r - meta.start_range_m) / history.bin_spacing();
  // Post-compression mainlobe: sinc with first null at fs/B bins; the
  // Taylor taper widens it slightly — the 1.2x factor matches the -35 dB
  // nbar=4 taper's measured mainlobe broadening.
  const double bins_per_lobe =
      1.2 * chirp.sample_rate_hz / chirp.bandwidth_hz;
  const int reach = static_cast<int>(std::ceil(8.0 * bins_per_lobe));
  const double phase = -kTwoPi * history.wavenumber() * r + reflector.phase_rad;
  const CDouble carrier{reflector.amplitude * std::cos(phase),
                        reflector.amplitude * std::sin(phase)};
  auto samples = history.pulse(pulse_index);
  const auto centre = static_cast<Index>(std::llround(bin));
  for (Index b = std::max<Index>(0, centre - reach);
       b <= std::min<Index>(history.samples_per_pulse() - 1, centre + reach);
       ++b) {
    const double d = (static_cast<double>(b) - bin) / bins_per_lobe;
    const double envelope = sinc(d) * (0.5 + 0.5 * std::cos(std::numbers::pi *
                                                            std::clamp(d / 8.0, -1.0, 1.0)));
    const CDouble v = carrier * envelope;
    samples[static_cast<std::size_t>(b)] +=
        CFloat(static_cast<float>(v.real()), static_cast<float>(v.imag()));
  }
}

void synthesize_full_waveform(PhaseHistory& history, Index pulse_index,
                              const std::vector<Reflector>& visible,
                              const geometry::PulsePose& pose,
                              const CollectorParams& params,
                              const signal::RangeCompressor& compressor) {
  const auto meta = history.meta(pulse_index);
  const double t_start = 2.0 * meta.start_range_m / signal::kSpeedOfLight;
  const double fs = params.chirp.sample_rate_hz;
  const double tp = params.chirp.duration_s;
  const double gamma = params.chirp.chirp_rate();
  const auto window = static_cast<std::size_t>(history.samples_per_pulse());

  std::vector<CDouble> raw(window, CDouble{});
  for (const auto& reflector : visible) {
    const double r = geometry::distance(reflector.position, pose.true_position);
    const double tau = 2.0 * r / signal::kSpeedOfLight;
    // Down-converted echo: chirp envelope delayed by tau carrying the
    // carrier phase exp(-i*2*pi*f0*tau) = exp(-i*2*pi*k*r).
    const double carrier_phase =
        -kTwoPi * params.chirp.carrier_hz * tau + reflector.phase_rad;
    const auto first =
        static_cast<std::ptrdiff_t>(std::ceil((tau - t_start) * fs));
    const auto last = static_cast<std::ptrdiff_t>((tau - t_start + tp) * fs);
    for (std::ptrdiff_t m = std::max<std::ptrdiff_t>(0, first);
         m <= std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(window) - 1, last);
         ++m) {
      const double t = t_start + static_cast<double>(m) / fs - tau;  // in-pulse time
      if (t < 0.0 || t >= tp) continue;
      const double tc = t - 0.5 * tp;
      const double phase = std::numbers::pi * gamma * tc * tc + carrier_phase;
      raw[static_cast<std::size_t>(m)] +=
          CDouble(reflector.amplitude * std::cos(phase),
                  reflector.amplitude * std::sin(phase));
    }
  }
  compressor.compress(raw, history.pulse(pulse_index));
}

}  // namespace

Index window_samples(const CollectorParams& params,
                     const geometry::ImageGrid& grid,
                     std::span<const geometry::PulsePose> poses) {
  ensure(!poses.empty(), "window_samples: no pulses");
  const RangeSpan span = scene_range_span(grid, poses);
  const double extent =
      span.max_m - span.min_m + 2.0 * params.range_margin_m;
  const double dr = params.chirp.range_bin_spacing();
  Index n = static_cast<Index>(std::ceil(extent / dr));
  if (params.fidelity == CollectionFidelity::kFullWaveform) {
    // Room for the uncompressed pulse tail inside the receive window.
    n += static_cast<Index>(params.chirp.samples_per_pulse());
  }
  return n;
}

PhaseHistory collect(const CollectorParams& params,
                     const geometry::ImageGrid& grid,
                     const ReflectorScene& scene,
                     std::span<const geometry::PulsePose> poses,
                     sarbp::Rng& rng) {
  params.chirp.validate();
  ensure(!poses.empty(), "collect: no pulses");
  const RangeSpan span = scene_range_span(grid, poses);
  const double start_range = span.min_m - params.range_margin_m;
  const Index samples = window_samples(params, grid, poses);

  PhaseHistory history(static_cast<Index>(poses.size()), samples,
                       params.chirp.range_bin_spacing(),
                       params.chirp.wavenumber());

  for (Index p = 0; p < history.num_pulses(); ++p) {
    auto& meta = history.meta(p);
    meta.position = poses[static_cast<std::size_t>(p)].recorded_position;
    meta.start_range_m = start_range;
    meta.time_s = poses[static_cast<std::size_t>(p)].time_s;
  }

  switch (params.fidelity) {
    case CollectionFidelity::kRandom: {
      for (Index p = 0; p < history.num_pulses(); ++p) {
        auto samples_span = history.pulse(p);
        for (auto& s : samples_span) {
          s = CFloat(static_cast<float>(rng.normal()),
                     static_cast<float>(rng.normal()));
        }
      }
      break;
    }
    case CollectionFidelity::kIdealResponse: {
      // Pulses are independent and draw nothing from the RNG: parallel.
#pragma omp parallel for schedule(static)
      for (Index p = 0; p < history.num_pulses(); ++p) {
        const auto& pose = poses[static_cast<std::size_t>(p)];
        for (const auto& reflector : scene.reflectors()) {
          if (!reflector.visible_at(pose.time_s)) continue;
          add_ideal_response(history, p, reflector, pose, params.chirp);
        }
      }
      break;
    }
    case CollectionFidelity::kFullWaveform: {
      const signal::RangeCompressor compressor(
          params.chirp, static_cast<std::size_t>(samples));
#pragma omp parallel for schedule(dynamic)
      for (Index p = 0; p < history.num_pulses(); ++p) {
        const auto& pose = poses[static_cast<std::size_t>(p)];
        synthesize_full_waveform(history, p,
                                 scene.visible_at(pose.time_s), pose, params,
                                 compressor);
      }
      break;
    }
  }

  if (params.noise_sigma > 0.0) {
    for (Index p = 0; p < history.num_pulses(); ++p) {
      for (auto& s : history.pulse(p)) {
        s += CFloat(static_cast<float>(rng.normal(0.0, params.noise_sigma)),
                    static_cast<float>(rng.normal(0.0, params.noise_sigma)));
      }
    }
  }

  history.build_soa();
  return history;
}

}  // namespace sarbp::sim
