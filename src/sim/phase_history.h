// Range-compressed phase history: the `In` array of the paper's Fig. 3,
// one compressed range profile per pulse plus the per-pulse metadata
// (recorded platform position, start range) backprojection needs.
//
// Two layouts are kept (paper §4.4):
//  - AoS (interleaved re/im): natural on CPUs, where In[bin] and In[bin+1]
//    are fetched with one 128-bit load and shuffled;
//  - SoA (separate re[] / im[] planes): what gather-capable hardware wants,
//    one vgather per plane.
#pragma once

#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"
#include "common/types.h"
#include "geometry/vec3.h"

namespace sarbp::sim {

struct PulseMeta {
  geometry::Vec3 position;  ///< recorded (INS) platform position
  double start_range_m = 0.0;  ///< slant range of bin 0 (the paper's r0)
  double time_s = 0.0;
};

class PhaseHistory {
 public:
  PhaseHistory() = default;

  /// `bin_spacing_m`: the paper's dr; `wavenumber`: the paper's k (2 f0/c).
  PhaseHistory(Index num_pulses, Index samples_per_pulse,
               double bin_spacing_m, double wavenumber);

  [[nodiscard]] Index num_pulses() const { return num_pulses_; }
  [[nodiscard]] Index samples_per_pulse() const { return samples_; }
  [[nodiscard]] double bin_spacing() const { return bin_spacing_; }
  [[nodiscard]] double wavenumber() const { return wavenumber_; }

  [[nodiscard]] std::span<CFloat> pulse(Index p) {
    return {aos_.data() + p * samples_, static_cast<std::size_t>(samples_)};
  }
  [[nodiscard]] std::span<const CFloat> pulse(Index p) const {
    return {aos_.data() + p * samples_, static_cast<std::size_t>(samples_)};
  }

  [[nodiscard]] PulseMeta& meta(Index p) { return meta_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] const PulseMeta& meta(Index p) const {
    return meta_[static_cast<std::size_t>(p)];
  }

  /// Rebuilds the SoA planes from the AoS data. Call once after filling;
  /// the gather kernels read these.
  void build_soa();
  [[nodiscard]] bool has_soa() const { return !soa_re_.empty(); }
  [[nodiscard]] std::span<const float> pulse_re(Index p) const {
    return {soa_re_.data() + p * samples_, static_cast<std::size_t>(samples_)};
  }
  [[nodiscard]] std::span<const float> pulse_im(Index p) const {
    return {soa_im_.data() + p * samples_, static_cast<std::size_t>(samples_)};
  }

  /// Total AoS payload in bytes (PCIe-transfer accounting).
  [[nodiscard]] std::size_t payload_bytes() const {
    return aos_.size() * sizeof(CFloat);
  }

  /// FFT-based range upsampling: returns a history with `factor` x the
  /// samples per pulse at bin spacing dr/factor (band-limited
  /// interpolation via spectral zero-padding). Used by the hierarchical
  /// backprojection front end, where near-critically-sampled profiles make
  /// direct resampling lossy.
  [[nodiscard]] PhaseHistory upsampled(Index factor) const;

 private:
  Index num_pulses_ = 0;
  Index samples_ = 0;
  double bin_spacing_ = 1.0;
  double wavenumber_ = 0.0;
  AlignedVector<CFloat> aos_;
  AlignedVector<float> soa_re_;
  AlignedVector<float> soa_im_;
  std::vector<PulseMeta> meta_;
};

}  // namespace sarbp::sim
