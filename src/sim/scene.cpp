#include "sim/scene.h"

#include <cmath>
#include <numbers>

namespace sarbp::sim {

std::vector<Reflector> ReflectorScene::visible_at(double time_s) const {
  std::vector<Reflector> out;
  out.reserve(reflectors_.size());
  for (const auto& r : reflectors_) {
    if (r.visible_at(time_s)) out.push_back(r);
  }
  return out;
}

void ReflectorScene::extend(const ReflectorScene& other) {
  reflectors_.insert(reflectors_.end(), other.reflectors_.begin(),
                     other.reflectors_.end());
}

ReflectorScene make_clutter_field(const geometry::ImageGrid& grid,
                                  Index cell_px, double mean_amplitude,
                                  sarbp::Rng& rng) {
  ReflectorScene scene;
  for (Index cy = 0; cy + cell_px <= grid.height(); cy += cell_px) {
    for (Index cx = 0; cx + cell_px <= grid.width(); cx += cell_px) {
      Reflector r;
      const double fx = static_cast<double>(cx) +
                        rng.uniform(0.0, static_cast<double>(cell_px - 1));
      const double fy = static_cast<double>(cy) +
                        rng.uniform(0.0, static_cast<double>(cell_px - 1));
      r.position = grid.position_f(fx, fy);
      // Rayleigh amplitude: |N(0,s) + i N(0,s)| with s chosen so the mean
      // equals mean_amplitude.
      const double s = mean_amplitude / 1.2533;  // mean of Rayleigh = s*sqrt(pi/2)
      r.amplitude = std::hypot(rng.normal(0.0, s), rng.normal(0.0, s));
      r.phase_rad = rng.uniform(0.0, 2.0 * std::numbers::pi);
      scene.add(r);
    }
  }
  return scene;
}

ReflectorScene make_cluster_scene(const geometry::ImageGrid& grid,
                                  const ClusterSceneParams& params,
                                  sarbp::Rng& rng) {
  ReflectorScene scene;
  const double half_x = 0.4 * grid.extent_x();  // central 80% of the image
  const double half_y = 0.4 * grid.extent_y();
  for (int c = 0; c < params.clusters; ++c) {
    const geometry::Vec3 centre{
        grid.centre().x + rng.uniform(-half_x, half_x),
        grid.centre().y + rng.uniform(-half_y, half_y), grid.centre().z};
    for (int i = 0; i < params.reflectors_per_cluster; ++i) {
      Reflector r;
      const double radius = params.cluster_radius_m * std::sqrt(rng.uniform());
      const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
      r.position = centre + geometry::Vec3{radius * std::cos(angle),
                                           radius * std::sin(angle), 0.0};
      r.amplitude = rng.uniform(params.amplitude_min, params.amplitude_max);
      r.phase_rad = rng.uniform(0.0, 2.0 * std::numbers::pi);
      if (rng.uniform() < params.transient_fraction) {
        // Half the transients appear mid-collection, half disappear.
        const double when = rng.uniform(0.0, params.timeline_s);
        if (rng.uniform() < 0.5) {
          r.appear_s = when;
        } else {
          r.disappear_s = when;
        }
      }
      scene.add(r);
    }
  }
  return scene;
}

}  // namespace sarbp::sim
