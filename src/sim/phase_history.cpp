#include "sim/phase_history.h"

#include <algorithm>
#include <vector>

#include "signal/fft.h"

namespace sarbp::sim {

PhaseHistory::PhaseHistory(Index num_pulses, Index samples_per_pulse,
                           double bin_spacing_m, double wavenumber)
    : num_pulses_(num_pulses),
      samples_(samples_per_pulse),
      bin_spacing_(bin_spacing_m),
      wavenumber_(wavenumber) {
  ensure(num_pulses >= 0 && samples_per_pulse > 0,
         "PhaseHistory: invalid shape");
  ensure(bin_spacing_m > 0, "PhaseHistory: bin spacing must be positive");
  aos_.assign(static_cast<std::size_t>(num_pulses * samples_per_pulse),
              CFloat{});
  meta_.resize(static_cast<std::size_t>(num_pulses));
}

PhaseHistory PhaseHistory::upsampled(Index factor) const {
  ensure(factor >= 1, "PhaseHistory::upsampled: factor must be >= 1");
  if (factor == 1) {
    PhaseHistory copy = *this;
    return copy;
  }
  const Index n = samples_;
  const Index m = n * factor;
  PhaseHistory out(num_pulses_, m, bin_spacing_ / static_cast<double>(factor),
                   wavenumber_);
  const signal::Fft<double> fwd(static_cast<std::size_t>(n));
  const signal::Fft<double> inv(static_cast<std::size_t>(m));
  std::vector<CDouble> spectrum(static_cast<std::size_t>(n));
  std::vector<CDouble> padded(static_cast<std::size_t>(m));
  for (Index p = 0; p < num_pulses_; ++p) {
    out.meta(p) = meta(p);  // start range and positions are unchanged
    const auto src = pulse(p);
    for (Index i = 0; i < n; ++i) {
      spectrum[static_cast<std::size_t>(i)] =
          CDouble(src[static_cast<std::size_t>(i)].real(),
                  src[static_cast<std::size_t>(i)].imag());
    }
    fwd.forward(spectrum);
    // Zero-pad in the middle: keep [0, n/2) low and [n/2, n) high halves
    // at the ends of the longer spectrum (the Nyquist bin goes low-side;
    // profiles are oversampled enough that it carries ~nothing).
    std::fill(padded.begin(), padded.end(), CDouble{});
    const Index half = n / 2;
    for (Index i = 0; i < half; ++i) {
      padded[static_cast<std::size_t>(i)] = spectrum[static_cast<std::size_t>(i)];
    }
    for (Index i = half; i < n; ++i) {
      padded[static_cast<std::size_t>(m - n + i)] =
          spectrum[static_cast<std::size_t>(i)];
    }
    inv.inverse(padded);
    auto dst = out.pulse(p);
    const double scale = static_cast<double>(factor);  // preserve amplitude
    for (Index i = 0; i < m; ++i) {
      dst[static_cast<std::size_t>(i)] =
          CFloat(static_cast<float>(padded[static_cast<std::size_t>(i)].real() * scale),
                 static_cast<float>(padded[static_cast<std::size_t>(i)].imag() * scale));
    }
  }
  out.build_soa();
  return out;
}

void PhaseHistory::build_soa() {
  soa_re_.resize(aos_.size());
  soa_im_.resize(aos_.size());
  for (std::size_t i = 0; i < aos_.size(); ++i) {
    soa_re_[i] = aos_[i].real();
    soa_im_[i] = aos_[i].imag();
  }
}

}  // namespace sarbp::sim
