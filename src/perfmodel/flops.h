// FLOP-count formulas of the paper's evaluation:
//  - 38 FLOPs per backprojection (§5.2.2),
//  - 10 n^2 log2(n) per n x n 2D FFT (§5.4),
//  - 54 FLOPs per bilinear interpolation (§5.4),
//  - 20 FLOPs per dropped/obtained value in incremental CCD, 2*Ncor values
//    per pixel (footnote 7),
// plus the Table 1 high-end-scenario requirement calculator built on them.
#pragma once

#include "common/types.h"

namespace sarbp::perfmodel {

/// FLOPs of backprojecting `pulses` pulses onto an ix x iy image.
double backprojection_flops(Index pulses, Index ix, Index iy);

/// FLOPs of one n x n complex 2D FFT (paper model: 10 n^2 log2 n).
double fft2d_flops(Index n);

/// Registration correlation cost: `control_points` patch correlations,
/// each three 2D FFTs (two forward, one inverse) at the zero-padded size
/// next_pow2(2*sc).
double registration_correlation_flops(Index control_points, Index sc);

/// Registration resampling: one 54-FLOP bilinear interpolation per pixel.
double registration_interp_flops(Index ix, Index iy);

/// Incremental CCD: 20 FLOPs for each of the 2*ncor dropped/obtained
/// values per pixel.
double ccd_flops(Index ncor, Index ix, Index iy);

/// CFAR: one window pass per below-threshold candidate (paper:
/// Theta(Ncfar * Nd)); ~4 FLOPs per window cell visited.
double cfar_flops(Index ncfar, Index candidates);

/// Paper Table 1: the high-end persistent-surveillance input.
struct HighEndScenario {
  Index new_pulses = 2809;         ///< N (quoted as 3K; 2,809 per §5.1)
  Index samples_per_pulse = 81000; ///< S
  Index image = 57000;             ///< Ix = Iy
  int accumulation_factor = 34;    ///< k
  Index control_points = 929000;   ///< Nc
  Index sc = 31;                   ///< registration neighbourhood
  Index ncor = 25;                 ///< CCD neighbourhood
  Index ncfar = 25;                ///< CFAR neighbourhood
};

/// Per-stage compute requirement in TFLOPs per output image (= TFLOPS under
/// the one-image-per-second real-time constraint) — regenerates the bottom
/// block of Table 1.
struct ComputeRequirements {
  double backprojection_tflops = 0.0;
  double correlation_tflops = 0.0;  ///< registration 2D correlations
  double interpolation_tflops = 0.0;
  double ccd_tflops = 0.0;

  [[nodiscard]] double total_tflops() const {
    return backprojection_tflops + correlation_tflops +
           interpolation_tflops + ccd_tflops;
  }
  [[nodiscard]] double backprojection_fraction() const {
    return backprojection_tflops / total_tflops();
  }
};

ComputeRequirements compute_requirements(const HighEndScenario& scenario);

/// Paper footnote 3: the memory cost of incremental backprojection.
/// "the memory capacity requirements will increase from 100 to 948 GB,
/// where double buffering for pipelining is taken into account. This
/// requires 119 Xeon Phis, assuming 8 GB GDDR each."
struct MemoryRequirements {
  double direct_gb = 0.0;       ///< recompute-every-frame organization
  double incremental_gb = 0.0;  ///< circular-buffer organization
  int coprocessors_for_memory = 0;  ///< 8 GB GDDR cards to hold it
  int coprocessors_for_compute = 0; ///< cards needed for 351 TFLOPS at peak
};

MemoryRequirements memory_requirements(const HighEndScenario& scenario);

}  // namespace sarbp::perfmodel
