#include "perfmodel/projection.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "perfmodel/flops.h"

namespace sarbp::perfmodel {

Index samples_for_image(Index image) {
  // Table 4: S/Ix ~ 1.33-1.5 (4K/3K ... 19K/13K). The range swath grows
  // with the scene edge; 1.45 reproduces the table's S column closely.
  return static_cast<Index>(std::llround(1.45 * static_cast<double>(image)));
}

int accumulation_for_image(Index image) {
  // Table 4/5: k = 2 at 3K up to 33 at 54K; ~0.65 per 1K of image edge.
  return std::max(1, static_cast<int>(std::llround(
                         0.65 * static_cast<double>(image) / 1000.0)));
}

Index control_points_for_image(Index image) {
  // Table 1: Nc = 929K at 57K x 57K; control-point density is constant, so
  // Nc scales with image area.
  const double density = 929000.0 / (57000.0 * 57000.0);
  return static_cast<Index>(std::llround(
      density * static_cast<double>(image) * static_cast<double>(image)));
}

ScalingPoint evaluate_point(const NodeModel& model, Index nodes,
                            Index image) {
  ensure(nodes >= 1 && image >= 1, "evaluate_point: bad arguments");
  ScalingPoint p;
  p.nodes = nodes;
  p.image = image;
  p.samples = samples_for_image(image);
  p.accumulation = accumulation_for_image(image);

  const double nodes_d = static_cast<double>(nodes);
  const double bp_rate = model.peak_gflops * 1e9 * model.bp_efficiency;
  const double fft_rate = model.peak_gflops * 1e9 * model.fft_efficiency;

  // Per-node compute times (work is area-partitioned evenly).
  p.t_backprojection =
      backprojection_flops(model.new_pulses, image, image) / nodes_d / bp_rate;
  const double reg_fft =
      registration_correlation_flops(control_points_for_image(image),
                                     /*sc=*/31) / nodes_d;
  const double reg_interp =
      registration_interp_flops(image, image) / nodes_d;
  p.t_registration = reg_fft / fft_rate + reg_interp / bp_rate;
  p.t_ccd = ccd_flops(/*ncor=*/25, image, image) / nodes_d / bp_rate;

  // Transfers (overlapped; reported for the breakdown columns).
  const auto volumes = cluster::communication_volumes(
      nodes, image, model.new_pulses, p.samples, 31, 25, 25);
  p.t_pcie = (volumes.pulse_scatter_bytes + volumes.image_exchange_bytes) /
             (model.pcie_gbps * 1e9);
  p.t_mpi = model.interconnect.mpi_seconds(volumes.pulse_scatter_bytes +
                                           volumes.boundary_bytes +
                                           volumes.image_exchange_bytes);
  p.t_disk = model.interconnect.disk_seconds(volumes.disk_bytes);

  const double backprojections = static_cast<double>(model.new_pulses) *
                                 static_cast<double>(image) *
                                 static_cast<double>(image);
  p.throughput_bp_per_s = backprojections / p.frame_seconds();
  // Efficiency vs pure-backprojection scaling: the fraction of the frame
  // the nodes spend on backprojection itself.
  p.parallel_efficiency = p.t_backprojection / p.frame_seconds();
  return p;
}

Index largest_realtime_image(const NodeModel& model, Index nodes,
                             Index step) {
  ensure(step >= 1, "largest_realtime_image: bad step");
  Index best = step;
  for (Index image = step;; image += step) {
    const ScalingPoint p = evaluate_point(model, nodes, image);
    if (p.frame_seconds() > 1.0) break;
    best = image;
  }
  return best;
}

std::vector<ScalingPoint> weak_scaling_projection(
    const NodeModel& model, std::span<const Index> node_counts) {
  std::vector<ScalingPoint> points;
  points.reserve(node_counts.size());
  for (Index nodes : node_counts) {
    const Index image = largest_realtime_image(model, nodes);
    points.push_back(evaluate_point(model, nodes, image));
  }
  return points;
}

}  // namespace sarbp::perfmodel
