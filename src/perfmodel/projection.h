// Multi-node analytic projection (paper §5.4 / Table 5): estimates, for a
// node count, the largest image that satisfies the one-image-per-second
// real-time constraint and the resulting per-stage time breakdown.
//
// Exactly the paper's method: "The compute time of each component is
// estimated as (FLOPS required)/((Processors' ideal peak FLOPS) x (FLOP
// efficiency)). The FLOP efficiency of the 2D-FFTs used in the registration
// step is assumed to be 10%. Other stages' FLOP efficiencies are assumed to
// be same as that of backprojection ... each node can realize 6 GB/s PCIe
// and 2 GB/s MPI, and 200 MB/s disk I/O bandwidth."
#pragma once

#include <span>
#include <vector>

#include "cluster/torus_model.h"
#include "common/types.h"

namespace sarbp::perfmodel {

struct NodeModel {
  /// Xeon (660) + 2x Xeon Phi (1,920 each) ideal peak, GFLOP/s.
  double peak_gflops = 660.0 + 2.0 * 1920.0;
  /// Backprojection FLOP efficiency of the combined node (Table 3).
  double bp_efficiency = 0.30;
  /// 2D-FFT efficiency assumption (§5.4).
  double fft_efficiency = 0.10;
  double pcie_gbps = 6.0;
  cluster::InterconnectModel interconnect;
  Index new_pulses = 2809;  ///< N is fixed across the weak-scaling sweep
};

/// Scenario scaling rules observed in Tables 4/5: samples per pulse and the
/// accumulation factor grow with the image edge.
Index samples_for_image(Index image);
int accumulation_for_image(Index image);
Index control_points_for_image(Index image);

/// One weak-scaling row.
struct ScalingPoint {
  Index nodes = 0;
  Index image = 0;       ///< Ix = Iy
  Index samples = 0;     ///< S
  int accumulation = 0;  ///< k
  double throughput_bp_per_s = 0.0;
  double parallel_efficiency = 0.0;  ///< vs nodes x single-node throughput
  // Per-node, per-image times (seconds; real-time budget is 1 s).
  double t_backprojection = 0.0;
  double t_registration = 0.0;
  double t_ccd = 0.0;
  double t_pcie = 0.0;
  double t_mpi = 0.0;
  double t_disk = 0.0;

  [[nodiscard]] double frame_seconds() const {
    // PCIe/MPI/disk overlap with compute (§4.1): the frame critical path is
    // the compute chain, as long as every transfer fits under it — which
    // the projection verifies by reporting the transfer times separately.
    return t_backprojection + t_registration + t_ccd;
  }
};

/// Evaluates the model at a given (nodes, image) point.
ScalingPoint evaluate_point(const NodeModel& model, Index nodes, Index image);

/// Largest image (multiple of `step`) whose frame time fits in 1 s.
Index largest_realtime_image(const NodeModel& model, Index nodes,
                             Index step = 1000);

/// Full weak-scaling sweep: for each node count, size the image to the
/// real-time constraint and evaluate — regenerates Table 4 (1-16 nodes,
/// model side) and Table 5 (32-256 nodes).
std::vector<ScalingPoint> weak_scaling_projection(
    const NodeModel& model, std::span<const Index> node_counts);

}  // namespace sarbp::perfmodel
