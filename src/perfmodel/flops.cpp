#include "perfmodel/flops.h"

#include <cmath>

#include "backprojection/kernel.h"
#include "common/check.h"
#include "signal/fft.h"

namespace sarbp::perfmodel {

double backprojection_flops(Index pulses, Index ix, Index iy) {
  return bp::kFlopsPerBackprojection * static_cast<double>(pulses) *
         static_cast<double>(ix) * static_cast<double>(iy);
}

double fft2d_flops(Index n) {
  ensure(n > 0, "fft2d_flops: size must be positive");
  return 10.0 * static_cast<double>(n) * static_cast<double>(n) *
         std::log2(static_cast<double>(n));
}

double registration_correlation_flops(Index control_points, Index sc) {
  const auto pad = static_cast<Index>(
      signal::Fft<double>::next_power_of_two(static_cast<std::size_t>(2 * sc)));
  return static_cast<double>(control_points) * 3.0 * fft2d_flops(pad);
}

double registration_interp_flops(Index ix, Index iy) {
  return 54.0 * static_cast<double>(ix) * static_cast<double>(iy);
}

double ccd_flops(Index ncor, Index ix, Index iy) {
  return 20.0 * 2.0 * static_cast<double>(ncor) * static_cast<double>(ix) *
         static_cast<double>(iy);
}

double cfar_flops(Index ncfar, Index candidates) {
  return 4.0 * static_cast<double>(ncfar) * static_cast<double>(ncfar) *
         static_cast<double>(candidates);
}

MemoryRequirements memory_requirements(const HighEndScenario& s) {
  const double image_bytes = static_cast<double>(s.image) *
                             static_cast<double>(s.image) * 8.0;  // complex64
  const double batch_pulses_bytes = static_cast<double>(s.new_pulses) *
                                    static_cast<double>(s.samples_per_pulse) *
                                    8.0;
  const double k1 = static_cast<double>(s.accumulation_factor + 1);
  MemoryRequirements m;
  // Direct (no incremental buffer): all (k+1)N pulses resident for the
  // recompute, plus a double-buffered output image.
  m.direct_gb = (k1 * batch_pulses_bytes + 2.0 * image_bytes) / 1e9;
  // Incremental: k+1 stored batch images (the circular buffer), the
  // current/reference working image, and a double-buffered pulse batch.
  m.incremental_gb =
      (k1 * image_bytes + image_bytes + 2.0 * batch_pulses_bytes) / 1e9;
  m.coprocessors_for_memory =
      static_cast<int>(std::ceil(m.incremental_gb / 8.0));
  // Footnote 3's compute side: "more than 182 are required for 351 TFLOPS
  // ... even assuming 100% FLOP efficiency (1,920 GFLOPS per Xeon Phi)".
  m.coprocessors_for_compute = static_cast<int>(
      std::ceil(compute_requirements(s).total_tflops() * 1000.0 / 1920.0));
  return m;
}

ComputeRequirements compute_requirements(const HighEndScenario& s) {
  ComputeRequirements r;
  r.backprojection_tflops =
      backprojection_flops(s.new_pulses, s.image, s.image) / 1e12;
  r.correlation_tflops =
      registration_correlation_flops(s.control_points, s.sc) / 1e12;
  r.interpolation_tflops = registration_interp_flops(s.image, s.image) / 1e12;
  r.ccd_tflops = ccd_flops(s.ncor, s.image, s.image) / 1e12;
  return r;
}

}  // namespace sarbp::perfmodel
