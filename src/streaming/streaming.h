// Streaming sliding-aperture imaging (DESIGN.md §13): pulses arrive
// forever, the image tracks the last W sub-aperture chunks, and each
// update costs O(delta-pulses) instead of a full reform.
//
// A StreamSession ingests pulses in fixed chunks of `chunk_pulses`. Each
// completed chunk becomes one *update* — a custom job submitted through
// the ImageFormationService, so updates ride the full serving stack: fair
// queueing and admission control, priority classes, per-update deadlines,
// cooperative cancellation, and the work-stealing tile executor (claimed
// through its pull-model source hook). Exactly one update per session is
// in flight; completed updates publish an immutable Snapshot.
//
// Update modes (backprojection is linear, paper §2):
//  - incremental: sweep only the new chunk into a partial tile (or fetch
//    it from the SubApertureCache), then live += partial and
//    live -= each expired chunk's retained partial. O(delta).
//  - re-anchor: after `reanchor_interval` consecutive incremental updates
//    the whole window is re-swept from scratch, block-outer/pulse-inner —
//    the same arithmetic in the same order as a one-shot reform, so the
//    published image is *bit-identical* to reform_window() over the
//    session's window_history(). O(window).
//
// Drift contract: float accumulation is not associative, so an
// incremental add/subtract sequence does not reproduce a from-scratch
// reform bit-for-bit — it tracks it within a bounded error (> 70 dB SNR
// in the repo's tests; see EXPERIMENTS.md). Re-anchoring restores exact
// equality and resets the drift clock. A failed/cancelled/expired update
// mutates nothing: all image state changes happen in the update's commit,
// so the live image always equals the *applied* window exactly as the
// incremental algebra left it.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "asr/block_plan.h"
#include "common/grid2d.h"
#include "common/region.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "service/service.h"
#include "sim/phase_history.h"
#include "streaming/subaperture_cache.h"

namespace sarbp::streaming {

struct StreamConfig {
  geometry::ImageGrid grid{0, 0, 1.0};
  /// Sub-rectangle of the grid to maintain; empty = the full grid.
  Region region;
  Index asr_block_w = asr::kDefaultBlock;
  Index asr_block_h = asr::kDefaultBlock;
  /// Sub-aperture chunk size: pulses are ingested in fixed chunks of this
  /// many pulses, and one completed chunk is one update. A trailing
  /// partial chunk is held until it fills (and discarded at close()).
  Index chunk_pulses = 16;
  /// Sliding aperture = the last `window_chunks` applied chunks.
  Index window_chunks = 4;
  /// Re-anchor cadence: after this many consecutive incremental updates
  /// the next update re-sweeps the whole window from scratch. 0 = never.
  int reanchor_interval = 16;
  /// Per-update completion deadline, measured from update admission
  /// (queue wait included). Zero = none. A missed deadline drops that
  /// chunk — the image never shows a half-applied update.
  std::chrono::milliseconds update_deadline{0};
  service::Priority priority = service::Priority::kNormal;
  std::string tenant;
  /// Sweeps through the fused SIMD plan replay (auto ISA); degrades to the
  /// scalar sweep bit-identically-to-itself when no vector ISA is usable.
  bool use_simd = false;
  /// Optional shared sub-aperture partial cache (may be shared across
  /// sessions on the same scene); null = no partial reuse. Must outlive
  /// the session.
  SubApertureCache* cache = nullptr;
};

/// One published update result. Immutable once published; `latest()`
/// hands out shared ownership so readers never block the updater.
struct Snapshot {
  std::uint64_t seq = 0;    ///< 1-based update sequence number
  bool reanchored = false;  ///< this update was a full window re-sweep
  Index window_pulses = 0;  ///< pulses in the applied window
  Grid2D<CFloat> image{0, 0};
  double latency_seconds = 0.0;  ///< chunk completed -> snapshot published
};

struct StreamStats {
  std::uint64_t updates_completed = 0;
  std::uint64_t updates_failed = 0;
  std::uint64_t updates_cancelled = 0;
  std::uint64_t updates_expired = 0;
  /// Admission rejections; the chunk is dropped (stream backpressure).
  std::uint64_t updates_rejected = 0;
  std::uint64_t reanchors = 0;
  /// (pixel, pulse) sweep operations performed — the O(delta) vs O(full)
  /// observable the acceptance test asserts on.
  std::uint64_t backprojections = 0;
  /// Chunk partials this session took from the sub-aperture cache.
  std::uint64_t cache_hits = 0;
};

/// Handle to one sliding-aperture session. Copyable (shared); thread-safe.
/// The service must outlive every session opened against it (sessions are
/// drained with it: in-flight updates resolve, queued chunks reject).
class StreamSession {
 public:
  StreamSession() = default;

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }

  /// Ingests a batch of pulses (any size; chunking is internal). The batch
  /// must match the session's sampling geometry (samples per pulse, bin
  /// spacing, wavenumber — fixed by the first push). Returns false when
  /// the session is closed or the batch is inconsistent/empty.
  bool push(const sim::PhaseHistory& pulses);

  /// Stops ingestion; queued and in-flight updates still run to
  /// completion (drain semantics). Idempotent.
  void close();

  /// Cancels the in-flight update (cooperatively, at its next inter-block
  /// checkpoint) and drops every queued chunk.
  void cancel();

  /// Blocks until no update is queued or in flight. False on timeout.
  bool wait_idle(std::chrono::milliseconds timeout);

  /// Blocks until an update with sequence >= `seq` has been published.
  bool wait_for_update(std::uint64_t seq, std::chrono::milliseconds timeout);

  /// Latest published snapshot; null before the first completed update.
  [[nodiscard]] std::shared_ptr<const Snapshot> latest() const;

  [[nodiscard]] StreamStats stats() const;

  /// The applied window as one concatenated phase history, oldest chunk
  /// first — the from-scratch reference input of the parity contract (see
  /// reform_window). Empty history before the first completed update.
  [[nodiscard]] sim::PhaseHistory window_history() const;

  class Impl;

 private:
  explicit StreamSession(std::shared_ptr<Impl> impl)
      : impl_(std::move(impl)) {}

  friend StreamSession open_stream(service::ImageFormationService& service,
                                   StreamConfig config);

  std::shared_ptr<Impl> impl_;
};

/// Opens a session against `service` (local mode only — custom jobs do not
/// shard). Throws PreconditionError on invalid config. Obs metrics (under
/// the service's registry): streaming.sessions.{opened,closed} counters,
/// streaming.updates.{completed,failed,cancelled,expired,rejected},
/// streaming.reanchors, streaming.backprojections counters, and the
/// streaming.update.latency_s histogram.
[[nodiscard]] StreamSession open_stream(service::ImageFormationService& service,
                                        StreamConfig config);

/// Reference semantics of the streaming contract: a serial block-outer /
/// pulse-inner reform of `window` under `config`'s geometry and kernel
/// selection — the same arithmetic order a re-anchor performs. Immediately
/// after a re-anchor, latest()->image equals this bit-for-bit over
/// window_history(); between re-anchors it matches within the documented
/// drift bound (DESIGN.md §13).
[[nodiscard]] Grid2D<CFloat> reform_window(const StreamConfig& config,
                                           const sim::PhaseHistory& window);

}  // namespace sarbp::streaming
