// The streaming side of the trace replayer seam: service::replay_trace
// routes entries with a nonzero `stream` id here, and this class turns
// them into live StreamSessions against the service — one session per
// distinct id, configured by the id's first entry (see the schema comment
// in service/trace.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "service/trace.h"
#include "streaming/streaming.h"
#include "streaming/subaperture_cache.h"

namespace sarbp::streaming {

/// Drives streaming trace entries into sliding-aperture sessions. Not
/// thread-safe (the replayer calls it from its single submission thread);
/// finish() closes every session, drains in-flight updates, and reports
/// the aggregate counters. `cache`, when non-null, is shared by every
/// session the trace opens — the cross-session reuse case.
class TraceStreamReplayer final : public service::StreamReplayer {
 public:
  explicit TraceStreamReplayer(service::ImageFormationService& service,
                               SubApertureCache* cache = nullptr)
      : service_(service), cache_(cache) {}

  void ingest(const service::TraceEntry& entry,
            std::shared_ptr<const sim::PhaseHistory> pulses) override;
  Totals finish() override;

 private:
  service::ImageFormationService& service_;
  SubApertureCache* cache_;
  std::map<std::uint64_t, StreamSession> sessions_;
  std::size_t pushes_ = 0;
  std::size_t failed_pushes_ = 0;
};

}  // namespace sarbp::streaming
