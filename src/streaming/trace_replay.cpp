#include "streaming/trace_replay.h"

#include <chrono>
#include <utility>

#include "geometry/grid.h"

namespace sarbp::streaming {

void TraceStreamReplayer::ingest(
    const service::TraceEntry& entry,
    std::shared_ptr<const sim::PhaseHistory> pulses) {
  auto it = sessions_.find(entry.stream);
  if (it == sessions_.end()) {
    // First entry of the stream fixes the session configuration.
    StreamConfig config;
    config.grid = geometry::ImageGrid(entry.image, entry.image, 0.5);
    config.asr_block_w = config.asr_block_h = entry.block;
    if (entry.chunk > 0) config.chunk_pulses = entry.chunk;
    if (entry.window > 0) config.window_chunks = entry.window;
    config.reanchor_interval = entry.reanchor;
    if (entry.deadline_ms > 0.0) {
      config.update_deadline = std::chrono::milliseconds(
          static_cast<long long>(entry.deadline_ms));
    }
    config.priority = entry.priority;
    config.tenant = entry.tenant;
    config.cache = cache_;
    it = sessions_
             .emplace(entry.stream, open_stream(service_, std::move(config)))
             .first;
  }
  ++pushes_;
  if (!it->second.push(*pulses)) ++failed_pushes_;
}

service::StreamReplayer::Totals TraceStreamReplayer::finish() {
  Totals totals;
  totals.streams = sessions_.size();
  totals.pushes = pushes_;
  totals.dropped = failed_pushes_;
  for (auto& [id, session] : sessions_) {
    session.close();
    // Bounded drain: an update stuck past this is a bug the timeout
    // surfaces as dropped work, not a hang.
    session.wait_idle(std::chrono::milliseconds(60000));
    const StreamStats stats = session.stats();
    totals.updates += stats.updates_completed;
    totals.reanchors += stats.reanchors;
    totals.cache_hits += stats.cache_hits;
    totals.dropped += stats.updates_failed + stats.updates_cancelled +
                      stats.updates_expired + stats.updates_rejected;
  }
  sessions_.clear();
  return totals;
}

}  // namespace sarbp::streaming
