// Sub-aperture partial-image cache: fixed-size pulse chunks backprojected
// once into partial images, keyed like formation plans on (scene geometry,
// chunk pulse-geometry signature) and shared across overlapping windows
// and concurrent streaming sessions over the same scene (DESIGN.md §13).
//
// The cache generalizes the service's plan cache from "reusable setup"
// (BlockTables) to "reusable compute" (the chunk's swept tile): a window
// slide that re-admits a chunk another session already swept pays O(1),
// not O(chunk). Keys reuse service::PlanKey — the grid geometry (including
// the scene centre), region, ASR block size, and the FNV-1a pulse-geometry
// signature — so two sessions only share partials when their sweeps would
// be bit-identical.
//
// Signature collisions: the 64-bit signature is a hash, so two distinct
// chunks can collide. Every entry therefore carries an independent
// verification fingerprint (pulse count + first/last pulse geometry bits);
// a lookup whose key matches but whose fingerprint does not is counted as
// a collision and served as a miss — never a wrong image.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/thread_annotations.h"

#include "backprojection/soa_tile.h"
#include "common/region.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "obs/metrics.h"
#include "service/plan_cache.h"
#include "sim/phase_history.h"

namespace sarbp::streaming {

struct SubApertureCacheConfig {
  /// Cached chunk partials; 0 disables retention (every lookup misses —
  /// the bench's cache-off baseline).
  std::size_t capacity = 64;
  /// Metrics sink; null selects the process-global obs::registry().
  obs::Registry* metrics = nullptr;
  /// Test seam: replaces the pulse-geometry signature used in keys (e.g. a
  /// constant function to force collisions). Null selects
  /// service::pulse_geometry_signature.
  std::function<std::uint64_t(const sim::PhaseHistory&)> signature_fn;
};

/// Thread-safe LRU cache of chunk partial images.
///
/// Metrics (under the configured registry):
///   streaming.cache.{hits,misses,evictions,collisions,inserts} counters,
///   streaming.cache.{entries,bytes} gauges.
class SubApertureCache {
 public:
  using Partial = std::shared_ptr<const bp::SoaTile>;

  explicit SubApertureCache(SubApertureCacheConfig config = {});

  SubApertureCache(const SubApertureCache&) = delete;
  SubApertureCache& operator=(const SubApertureCache&) = delete;

  /// Key of `chunk`'s partial under the session's scene geometry.
  [[nodiscard]] service::PlanKey make_key(const geometry::ImageGrid& grid,
                                          const Region& region, Index block_w,
                                          Index block_h,
                                          const sim::PhaseHistory& chunk) const;

  /// Lookup. Null on miss; a key hit whose verification fingerprint does
  /// not match `chunk` is a signature collision — counted, and reported as
  /// a miss.
  [[nodiscard]] Partial find(const service::PlanKey& key,
                             const sim::PhaseHistory& chunk);

  /// Publishes a chunk's swept partial. First insert wins when concurrent
  /// sessions race to compute the same chunk; eviction is LRU.
  void insert(const service::PlanKey& key, const sim::PhaseHistory& chunk,
              Partial partial);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::size_t capacity() const { return config_.capacity; }
  void clear();

 private:
  struct Entry {
    service::PlanKey key;
    std::uint64_t fingerprint = 0;
    Partial partial;
    std::size_t bytes = 0;
  };

  /// Collision check independent of the key's signature hash: pulse count
  /// plus the raw bit patterns of the first/last pulse geometry.
  [[nodiscard]] static std::uint64_t fingerprint(
      const sim::PhaseHistory& chunk);

  const SubApertureCacheConfig config_;

  mutable Mutex mutex_{SARBP_LOCK_LEVEL("streaming.cache")};
  /// Front = most recently used.
  std::list<Entry> lru_ SARBP_GUARDED_BY(mutex_);
  std::unordered_map<service::PlanKey, std::list<Entry>::iterator,
                     service::PlanKeyHash>
      index_ SARBP_GUARDED_BY(mutex_);
  std::size_t bytes_ SARBP_GUARDED_BY(mutex_) = 0;

  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* collisions_ = nullptr;
  obs::Counter* inserts_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
};

}  // namespace sarbp::streaming
