#include "streaming/streaming.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <numbers>
#include <span>
#include <utility>
#include <vector>

#include "asr/quadratic.h"
#include "asr/tables.h"
#include "backprojection/kernel.h"
#include "backprojection/kernel_asr_block.h"
#include "backprojection/partition.h"
#include "backprojection/soa_tile.h"
#include "common/check.h"
#include "exec/task_group.h"
#include "geometry/wavefront.h"

namespace sarbp::streaming {
namespace {

/// Which inner sweep the session runs; resolved once at open so every
/// update of a session uses one kernel.
struct KernelSel {
  bool simd = false;
  bp::SimdIsa isa = bp::SimdIsa::kScalar;
};

/// Per-task scratch: the on-the-fly BlockTables plus the SIMD y_inner
/// workspace, reused across every (block, pulse) pair the task sweeps.
struct SweepScratch {
  asr::BlockTables tables;
  AlignedVector<float> ws_re;
  AlignedVector<float> ws_im;
};

/// Sweeps every pulse of `chunks` (in order) over one block into `tile`,
/// building each (block, pulse) table on the fly with exactly the inputs
/// build_formation_plan would use — so a whole-window sweep here is
/// bit-identical to a cached-plan replay (and to reform_window) over the
/// concatenated history. Returns the (pixel, pulse) operation count.
std::uint64_t sweep_block(const geometry::ImageGrid& grid,
                          const Region& region, const asr::BlockSpec& block,
                          std::span<const sim::PhaseHistory* const> chunks,
                          const KernelSel& sel, SweepScratch& scratch,
                          bp::SoaTile& tile) {
  const geometry::Vec3 centre = grid.position_f(
      static_cast<double>(block.x0) +
          0.5 * static_cast<double>(block.width - 1),
      static_cast<double>(block.y0) +
          0.5 * static_cast<double>(block.height - 1));
  const Index bx = block.x0 - region.x0;
  const Index by = block.y0 - region.y0;
  std::uint64_t ops = 0;
  for (const sim::PhaseHistory* chunk : chunks) {
    const double two_pi_k = 2.0 * std::numbers::pi * chunk->wavenumber();
    const Index samples = chunk->samples_per_pulse();
    for (Index p = 0; p < chunk->num_pulses(); ++p) {
      const auto& meta = chunk->meta(p);
      const geometry::LoopOrder order =
          geometry::choose_loop_order(meta.position, grid.centre());
      const bool x_inner = order == geometry::LoopOrder::kXInner;
      const Index len_l = x_inner ? block.width : block.height;
      const Index len_m = x_inner ? block.height : block.width;
      const asr::Quadratic2D q = bp::block_range_quadratic(
          centre, meta.position, grid.spacing(), order);
      asr::build_block_tables_fast(q, meta.start_range_m,
                                   chunk->bin_spacing(), two_pi_k, len_l,
                                   len_m, scratch.tables);
      if (sel.simd) {
        bp::asr_plan_sweep_simd(scratch.tables, chunk->pulse(p).data(),
                                samples, x_inner, bx, by, len_l, len_m, tile,
                                sel.isa, bp::KernelVariant::kAuto,
                                scratch.ws_re, scratch.ws_im);
      } else {
        bp::asr_sweep_block(scratch.tables, chunk->pulse(p).data(), samples,
                            x_inner, bx, by, len_l, len_m, tile);
      }
    }
    ops += static_cast<std::uint64_t>(block.width) *
           static_cast<std::uint64_t>(block.height) *
           static_cast<std::uint64_t>(chunk->num_pulses());
  }
  return ops;
}

Region effective_region(const StreamConfig& config) {
  return config.region.empty()
             ? Region{0, 0, config.grid.width(), config.grid.height()}
             : config.region;
}

}  // namespace

class StreamSession::Impl : public std::enable_shared_from_this<Impl> {
 public:
  Impl(service::ImageFormationService& service, StreamConfig config)
      : service_(service),
        config_(std::move(config)),
        region_(effective_region(config_)),
        blocks_(asr::plan_blocks(region_.x0, region_.y0, region_.width,
                                 region_.height, config_.asr_block_w,
                                 config_.asr_block_h)),
        live_(region_.width, region_.height) {
    sel_.simd = config_.use_simd && bp::asr_simd_available();
    if (sel_.simd) sel_.isa = bp::asr_resolve_isa(bp::SimdIsa::kAuto);
    if constexpr (obs::kEnabled) {
      auto& reg = service_.metrics();
      opened_ = &reg.counter("streaming.sessions.opened");
      closed_counter_ = &reg.counter("streaming.sessions.closed");
      completed_ = &reg.counter("streaming.updates.completed");
      failed_ = &reg.counter("streaming.updates.failed");
      cancelled_ = &reg.counter("streaming.updates.cancelled");
      expired_counter_ = &reg.counter("streaming.updates.expired");
      rejected_ = &reg.counter("streaming.updates.rejected");
      reanchors_ = &reg.counter("streaming.reanchors");
      ops_counter_ = &reg.counter("streaming.backprojections");
      latency_s_ = &reg.histogram("streaming.update.latency_s");
    }
    if (opened_) opened_->add();
  }

  ~Impl() { close(); }

  bool push(const sim::PhaseHistory& pulses) SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_) return false;
    if (pulses.num_pulses() <= 0 || pulses.samples_per_pulse() <= 0) {
      return false;
    }
    if (!have_params_) {
      samples_ = pulses.samples_per_pulse();
      bin_spacing_ = pulses.bin_spacing();
      wavenumber_ = pulses.wavenumber();
      have_params_ = true;
    } else if (pulses.samples_per_pulse() != samples_ ||
               pulses.bin_spacing() != bin_spacing_ ||
               pulses.wavenumber() != wavenumber_) {
      return false;
    }
    for (Index p = 0; p < pulses.num_pulses(); ++p) {
      fill_meta_.push_back(pulses.meta(p));
      const auto src = pulses.pulse(p);
      fill_samples_.insert(fill_samples_.end(), src.begin(), src.end());
      if (static_cast<Index>(fill_meta_.size()) == config_.chunk_pulses) {
        auto chunk = std::make_shared<sim::PhaseHistory>(
            config_.chunk_pulses, samples_, bin_spacing_, wavenumber_);
        for (Index i = 0; i < config_.chunk_pulses; ++i) {
          const auto begin = fill_samples_.begin() + i * samples_;
          std::copy(begin, begin + samples_, chunk->pulse(i).begin());
          chunk->meta(i) = fill_meta_[static_cast<std::size_t>(i)];
        }
        fill_samples_.clear();
        fill_meta_.clear();
        pending_.push_back(
            Chunk{std::move(chunk), std::chrono::steady_clock::now()});
      }
    }
    pump_locked();
    return true;
  }

  void close() SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_) return;
    closed_ = true;
    fill_samples_.clear();
    fill_meta_.clear();
    if (closed_counter_) closed_counter_->add();
  }

  void cancel() SARBP_EXCLUDES(mutex_) {
    std::shared_ptr<service::JobHandle> job;
    {
      MutexLock lock(mutex_);
      const auto dropped = static_cast<std::uint64_t>(pending_.size());
      pending_.clear();
      stats_.updates_cancelled += dropped;
      if (cancelled_ && dropped > 0) cancelled_->add(dropped);
      if (inflight_update_ != nullptr) job = inflight_update_->job;
      cv_.notify_all();
    }
    // Outside the session lock: cancel() takes the handle's mutex, and the
    // lock order everywhere else is session -> handle.
    if (job != nullptr) job->cancel();
  }

  bool wait_idle(std::chrono::milliseconds timeout) SARBP_EXCLUDES(mutex_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mutex_);
    while (inflight_update_ != nullptr || !pending_.empty()) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        return inflight_update_ == nullptr && pending_.empty();
      }
    }
    return true;
  }

  bool wait_for_update(std::uint64_t seq, std::chrono::milliseconds timeout)
      SARBP_EXCLUDES(mutex_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mutex_);
    while (seq_ < seq) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        return seq_ >= seq;
      }
    }
    return true;
  }

  std::shared_ptr<const Snapshot> latest() const SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return latest_;
  }

  StreamStats stats() const SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

  sim::PhaseHistory window_history() const SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    Index total = 0;
    for (const Applied& a : window_) total += a.history->num_pulses();
    if (total == 0 || !have_params_) return {};
    sim::PhaseHistory out(total, samples_, bin_spacing_, wavenumber_);
    Index p = 0;
    for (const Applied& a : window_) {
      for (Index i = 0; i < a.history->num_pulses(); ++i, ++p) {
        const auto src = a.history->pulse(i);
        std::copy(src.begin(), src.end(), out.pulse(p).begin());
        out.meta(p) = a.history->meta(i);
      }
    }
    return out;
  }

 private:
  /// One completed ingestion chunk, waiting to become an update.
  struct Chunk {
    std::shared_ptr<const sim::PhaseHistory> history;
    std::chrono::steady_clock::time_point ready;
  };

  /// A window slot: the chunk plus the exact partial tile that was added
  /// to the live image for it — retained independently of cache eviction
  /// so the expiry subtraction is the exact inverse of the addition.
  struct Applied {
    std::shared_ptr<const sim::PhaseHistory> history;
    SubApertureCache::Partial partial;
  };

  /// State of one in-flight update, shared between the sweep tasks and
  /// the completion continuation.
  struct Update {
    Chunk chunk;
    bool anchor = false;
    bool cache_hit = false;
    bool have_key = false;
    service::PlanKey key;
    /// Anchor mode: the window chunks that survive the slide, oldest
    /// first (the new chunk is appended after them in the sweep).
    std::vector<std::shared_ptr<const sim::PhaseHistory>> survivors;
    SubApertureCache::Partial cached;     ///< cache-hit partial
    std::shared_ptr<bp::SoaTile> partial; ///< freshly swept chunk partial
    std::shared_ptr<bp::SoaTile> fresh;   ///< anchor: whole-window sweep
    std::shared_ptr<service::JobHandle> job;
    std::atomic<std::uint64_t> ops{0};
  };

  /// Submits pending chunks until one is in flight or the queue is empty.
  /// Holds mutex_ across submit(): the only callbacks that need this
  /// session's lock belong to the job being submitted, and they cannot be
  /// dispatched before submit() admits it.
  void pump_locked() SARBP_REQUIRES(mutex_) {
    while (inflight_update_ == nullptr && !pending_.empty()) {
      auto u = std::make_shared<Update>();
      u->chunk = std::move(pending_.front());
      pending_.pop_front();
      inflight_update_ = u;

      service::ImageFormationRequest req;
      req.grid = config_.grid;
      req.region = config_.region;
      req.asr_block_w = config_.asr_block_w;
      req.asr_block_h = config_.asr_block_h;
      req.priority = config_.priority;
      req.tenant = config_.tenant;
      // The chunk is the update's SFQ cost basis (region pixels x delta
      // pulses), exactly as a formation job over the chunk would be.
      req.pulses = u->chunk.history;
      if (config_.update_deadline.count() > 0) {
        req.deadline =
            std::chrono::steady_clock::now() + config_.update_deadline;
      }
      auto self = shared_from_this();
      req.custom = [self, u](const service::CustomJobContext& cctx) {
        return self->build_update_group(u, cctx);
      };
      req.custom_abandoned = [self, u](service::JobState state) {
        self->abandon_update(u, state);
      };
      const service::SubmitOutcome outcome = service_.submit(std::move(req));
      if (outcome.admitted()) {
        u->job = outcome.handle;
        return;
      }
      // Rejected: drop the chunk (stream backpressure) and try the next.
      inflight_update_ = nullptr;
      stats_.updates_rejected += 1;
      if (rejected_) rejected_->add();
      if (outcome.reject == service::RejectReason::kShuttingDown) {
        closed_ = true;
        stats_.updates_rejected += pending_.size();
        if (rejected_ && !pending_.empty()) rejected_->add(pending_.size());
        pending_.clear();
        if (closed_counter_) closed_counter_->add();
      }
      cv_.notify_all();
    }
  }

  void pump() SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    pump_locked();
  }

  /// The custom-job factory: runs on the claiming worker at dequeue.
  exec::GroupPtr build_update_group(const std::shared_ptr<Update>& u,
                                    const service::CustomJobContext& cctx)
      SARBP_EXCLUDES(mutex_) {
    {
      // Decide the mode and snapshot the window. Only a committing update
      // mutates the window and exactly one update is in flight, so the
      // snapshot stays valid for the group's whole run.
      MutexLock lock(mutex_);
      u->anchor = config_.reanchor_interval > 0 &&
                  updates_since_anchor_ >= config_.reanchor_interval;
      if (u->anchor) {
        const std::size_t new_size = window_.size() + 1;
        const std::size_t expire =
            new_size > static_cast<std::size_t>(config_.window_chunks)
                ? new_size - static_cast<std::size_t>(config_.window_chunks)
                : 0;
        u->survivors.reserve(window_.size() - expire);
        for (std::size_t i = expire; i < window_.size(); ++i) {
          u->survivors.push_back(window_[i].history);
        }
      }
    }
    if (config_.cache != nullptr) {
      u->key = config_.cache->make_key(config_.grid, region_,
                                       config_.asr_block_w,
                                       config_.asr_block_h, *u->chunk.history);
      u->have_key = true;
      u->cached = config_.cache->find(u->key, *u->chunk.history);
      u->cache_hit = u->cached != nullptr;
    }
    // Every update needs the chunk's partial for the eventual expiry
    // subtraction; a cache hit supplies it, anything else sweeps it. An
    // anchor additionally re-sweeps the whole window into a fresh tile.
    if (!u->cache_hit) {
      u->partial = std::make_shared<bp::SoaTile>(region_.width, region_.height);
    }
    if (u->anchor) {
      u->fresh = std::make_shared<bp::SoaTile>(region_.width, region_.height);
    }

    auto self = shared_from_this();
    std::vector<exec::TaskGroup::Task> tasks;
    if (!u->anchor && u->cache_hit) {
      // Nothing to sweep: one trivial task keeps the group machinery (and
      // its checkpoint/abort/completion semantics) uniform.
      tasks.emplace_back([](int, exec::TaskGroup&) {});
    } else {
      const Index nblocks = static_cast<Index>(blocks_.size());
      // Mirror make_plan_replay_group's fan-out: ~2 tasks per worker,
      // never finer than one block per task.
      Index fanout =
          cctx.tile_tasks > 0
              ? cctx.tile_tasks
              : std::max<Index>(2, 2 * static_cast<Index>(cctx.workers));
      fanout = std::clamp<Index>(fanout, 1, nblocks);
      for (Index ti = 0; ti < fanout; ++ti) {
        const Index b0 = bp::split_begin(nblocks, fanout, ti);
        const Index b1 = bp::split_begin(nblocks, fanout, ti + 1);
        auto checkpoint = cctx.checkpoint;
        tasks.emplace_back(
            [self, u, checkpoint, b0, b1](int, exec::TaskGroup& group) {
              self->sweep_task(*u, b0, b1, checkpoint, group);
            });
      }
    }
    auto on_complete = [self, u, cctx](exec::TaskGroup& group) {
      self->complete_update(u, cctx, group);
    };
    return std::make_shared<exec::TaskGroup>(std::move(tasks), cctx.checkpoint,
                                             std::move(on_complete),
                                             "stream_update");
  }

  void sweep_task(Update& u, Index b0, Index b1,
                  const std::function<bool()>& checkpoint,
                  exec::TaskGroup& group) {
    SweepScratch scratch;
    std::uint64_t ops = 0;
    std::vector<const sim::PhaseHistory*> window_chunks;
    if (u.anchor) {
      window_chunks.reserve(u.survivors.size() + 1);
      for (const auto& h : u.survivors) window_chunks.push_back(h.get());
      window_chunks.push_back(u.chunk.history.get());
    }
    const sim::PhaseHistory* new_chunk[] = {u.chunk.history.get()};
    for (Index b = b0; b < b1; ++b) {
      // execute_plan's granularity: one cancellation poll per block sweep.
      if (checkpoint && !checkpoint()) {
        group.abort();
        break;
      }
      const asr::BlockSpec& block = blocks_[static_cast<std::size_t>(b)];
      if (u.anchor) {
        ops += sweep_block(config_.grid, region_, block, window_chunks, sel_,
                           scratch, *u.fresh);
      }
      if (u.partial != nullptr) {
        ops += sweep_block(config_.grid, region_, block, new_chunk, sel_,
                           scratch, *u.partial);
      }
    }
    // order: relaxed — statistics accumulator; the group's completion
    // machinery orders it before on_complete reads it.
    u.ops.fetch_add(ops, std::memory_order_relaxed);
  }

  /// Runs on the worker that retires the update's last task.
  void complete_update(const std::shared_ptr<Update>& u,
                       const service::CustomJobContext& cctx,
                       exec::TaskGroup& group) SARBP_EXCLUDES(mutex_) {
    const bool ok = !group.aborted();
    if (ok && config_.cache != nullptr && u->have_key && !u->cache_hit &&
        u->partial != nullptr) {
      config_.cache->insert(u->key, *u->chunk.history, u->partial);
    }
    // Resolve the handle first, with no locks held (lock order: session ->
    // handle). The service substitutes the checkpoint's verdict — the
    // return value is what the job actually resolved to. Classification
    // must land under the same critical section that clears
    // inflight_update_, or a wait_idle() waiter can observe the session
    // idle with the update not yet counted.
    const service::JobState final_state = cctx.finish(
        ok ? service::JobState::kDone : service::JobState::kFailed,
        ok ? std::string()
           : (group.error().empty() ? std::string("update aborted")
                                    : group.error()));
    {
      MutexLock lock(mutex_);
      // order: relaxed — every sweep task finished before the completion
      // continuation runs (group barrier); this is the only reader.
      const std::uint64_t ops = u->ops.load(std::memory_order_relaxed);
      stats_.backprojections += ops;
      if (ops_counter_ && ops > 0) ops_counter_->add(ops);
      if (ok) {
        // Commit: slide the window, update the live image, publish. This
        // is the only place image state mutates, so an aborted update
        // leaves the live image exactly consistent with the applied
        // window.
        const SubApertureCache::Partial partial =
            u->cache_hit ? u->cached : SubApertureCache::Partial(u->partial);
        window_.push_back(Applied{u->chunk.history, partial});
        std::vector<Applied> expired;
        while (window_.size() >
               static_cast<std::size_t>(config_.window_chunks)) {
          expired.push_back(std::move(window_.front()));
          window_.pop_front();
        }
        if (u->anchor) {
          live_ = std::move(*u->fresh);
          updates_since_anchor_ = 0;
          stats_.reanchors += 1;
          if (reanchors_) reanchors_->add();
        } else {
          live_.accumulate_tile(*partial);
          for (const Applied& e : expired) live_.subtract_tile(*e.partial);
          ++updates_since_anchor_;
        }
        if (u->cache_hit) stats_.cache_hits += 1;
        seq_ += 1;
        auto snap = std::make_shared<Snapshot>();
        snap->seq = seq_;
        snap->reanchored = u->anchor;
        Index window_pulses = 0;
        for (const Applied& a : window_) {
          window_pulses += a.history->num_pulses();
        }
        snap->window_pulses = window_pulses;
        snap->image = Grid2D<CFloat>(region_.width, region_.height);
        live_.accumulate_into(snap->image,
                              Region{0, 0, region_.width, region_.height});
        snap->latency_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          u->chunk.ready)
                .count();
        latest_ = std::move(snap);
        stats_.updates_completed += 1;
        if (completed_) completed_->add();
        if (latency_s_) latency_s_->record(latest_->latency_seconds);
      } else {
        switch (final_state) {
          case service::JobState::kCancelled:
            stats_.updates_cancelled += 1;
            if (cancelled_) cancelled_->add();
            break;
          case service::JobState::kExpired:
            stats_.updates_expired += 1;
            if (expired_counter_) expired_counter_->add();
            break;
          default:
            stats_.updates_failed += 1;
            if (failed_) failed_->add();
            break;
        }
      }
      inflight_update_ = nullptr;
      cv_.notify_all();
    }
    pump();
  }

  /// The job resolved terminally without the factory running (cancelled
  /// while queued, expired at dequeue, dropped at drain).
  void abandon_update(const std::shared_ptr<Update>& u,
                      service::JobState state) SARBP_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (inflight_update_ != u) return;
      inflight_update_ = nullptr;
      switch (state) {
        case service::JobState::kCancelled:
          stats_.updates_cancelled += 1;
          if (cancelled_) cancelled_->add();
          break;
        case service::JobState::kExpired:
          stats_.updates_expired += 1;
          if (expired_counter_) expired_counter_->add();
          break;
        default:
          stats_.updates_failed += 1;
          if (failed_) failed_->add();
          break;
      }
      cv_.notify_all();
    }
    pump();
  }

  service::ImageFormationService& service_;
  const StreamConfig config_;
  const Region region_;
  const std::vector<asr::BlockSpec> blocks_;
  KernelSel sel_;

  mutable Mutex mutex_{SARBP_LOCK_LEVEL("streaming.session")};
  CondVar cv_;

  // Sampling geometry, fixed by the first push.
  bool have_params_ SARBP_GUARDED_BY(mutex_) = false;
  Index samples_ SARBP_GUARDED_BY(mutex_) = 0;
  double bin_spacing_ SARBP_GUARDED_BY(mutex_) = 1.0;
  double wavenumber_ SARBP_GUARDED_BY(mutex_) = 0.0;

  std::vector<CFloat> fill_samples_ SARBP_GUARDED_BY(mutex_);
  std::vector<sim::PulseMeta> fill_meta_ SARBP_GUARDED_BY(mutex_);

  std::deque<Chunk> pending_ SARBP_GUARDED_BY(mutex_);
  std::shared_ptr<Update> inflight_update_ SARBP_GUARDED_BY(mutex_);
  std::deque<Applied> window_ SARBP_GUARDED_BY(mutex_);
  bp::SoaTile live_ SARBP_GUARDED_BY(mutex_);
  int updates_since_anchor_ SARBP_GUARDED_BY(mutex_) = 0;
  std::uint64_t seq_ SARBP_GUARDED_BY(mutex_) = 0;
  std::shared_ptr<const Snapshot> latest_ SARBP_GUARDED_BY(mutex_);
  StreamStats stats_ SARBP_GUARDED_BY(mutex_);
  bool closed_ SARBP_GUARDED_BY(mutex_) = false;

  obs::Counter* opened_ = nullptr;
  obs::Counter* closed_counter_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* failed_ = nullptr;
  obs::Counter* cancelled_ = nullptr;
  obs::Counter* expired_counter_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* reanchors_ = nullptr;
  obs::Counter* ops_counter_ = nullptr;
  obs::Histogram* latency_s_ = nullptr;
};

bool StreamSession::push(const sim::PhaseHistory& pulses) {
  ensure(impl_ != nullptr, "StreamSession: not open");
  return impl_->push(pulses);
}

void StreamSession::close() {
  ensure(impl_ != nullptr, "StreamSession: not open");
  impl_->close();
}

void StreamSession::cancel() {
  ensure(impl_ != nullptr, "StreamSession: not open");
  impl_->cancel();
}

bool StreamSession::wait_idle(std::chrono::milliseconds timeout) {
  ensure(impl_ != nullptr, "StreamSession: not open");
  return impl_->wait_idle(timeout);
}

bool StreamSession::wait_for_update(std::uint64_t seq,
                                    std::chrono::milliseconds timeout) {
  ensure(impl_ != nullptr, "StreamSession: not open");
  return impl_->wait_for_update(seq, timeout);
}

std::shared_ptr<const Snapshot> StreamSession::latest() const {
  ensure(impl_ != nullptr, "StreamSession: not open");
  return impl_->latest();
}

StreamStats StreamSession::stats() const {
  ensure(impl_ != nullptr, "StreamSession: not open");
  return impl_->stats();
}

sim::PhaseHistory StreamSession::window_history() const {
  ensure(impl_ != nullptr, "StreamSession: not open");
  return impl_->window_history();
}

StreamSession open_stream(service::ImageFormationService& service,
                          StreamConfig config) {
  const Region region = effective_region(config);
  ensure(config.grid.width() > 0 && config.grid.height() > 0,
         "open_stream: empty grid");
  ensure(!region.empty() && region.x0 >= 0 && region.y0 >= 0 &&
             region.x0 + region.width <= config.grid.width() &&
             region.y0 + region.height <= config.grid.height(),
         "open_stream: region outside grid");
  ensure(config.asr_block_w > 0 && config.asr_block_h > 0,
         "open_stream: ASR block must be positive");
  ensure(config.chunk_pulses > 0, "open_stream: chunk_pulses must be positive");
  ensure(config.window_chunks > 0,
         "open_stream: window_chunks must be positive");
  ensure(config.reanchor_interval >= 0,
         "open_stream: reanchor_interval must be >= 0");
  ensure(!service.sharded(),
         "open_stream: streaming requires a local-mode service");
  return StreamSession(
      std::make_shared<StreamSession::Impl>(service, std::move(config)));
}

Grid2D<CFloat> reform_window(const StreamConfig& config,
                             const sim::PhaseHistory& window) {
  const Region region = effective_region(config);
  ensure(!region.empty() && config.asr_block_w > 0 && config.asr_block_h > 0,
         "reform_window: bad geometry");
  KernelSel sel;
  sel.simd = config.use_simd && bp::asr_simd_available();
  if (sel.simd) sel.isa = bp::asr_resolve_isa(bp::SimdIsa::kAuto);
  bp::SoaTile tile(region.width, region.height);
  if (window.num_pulses() > 0) {
    const auto blocks =
        asr::plan_blocks(region.x0, region.y0, region.width, region.height,
                         config.asr_block_w, config.asr_block_h);
    SweepScratch scratch;
    const sim::PhaseHistory* chunks[] = {&window};
    for (const asr::BlockSpec& block : blocks) {
      sweep_block(config.grid, region, block, chunks, sel, scratch, tile);
    }
  }
  Grid2D<CFloat> image(region.width, region.height);
  tile.accumulate_into(image, Region{0, 0, region.width, region.height});
  return image;
}

}  // namespace sarbp::streaming
