#include "streaming/subaperture_cache.h"

#include <cstring>
#include <utility>

#include "common/check.h"

namespace sarbp::streaming {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline void fnv_mix(std::uint64_t& h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
}

inline std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::size_t tile_bytes(const bp::SoaTile& tile) {
  return static_cast<std::size_t>(tile.width()) *
         static_cast<std::size_t>(tile.height()) * 2 * sizeof(float);
}

}  // namespace

SubApertureCache::SubApertureCache(SubApertureCacheConfig config)
    : config_(std::move(config)) {
  if constexpr (obs::kEnabled) {
    auto& reg =
        config_.metrics != nullptr ? *config_.metrics : obs::registry();
    hits_ = &reg.counter("streaming.cache.hits");
    misses_ = &reg.counter("streaming.cache.misses");
    evictions_ = &reg.counter("streaming.cache.evictions");
    collisions_ = &reg.counter("streaming.cache.collisions");
    inserts_ = &reg.counter("streaming.cache.inserts");
    entries_gauge_ = &reg.gauge("streaming.cache.entries");
    bytes_gauge_ = &reg.gauge("streaming.cache.bytes");
  }
}

std::uint64_t SubApertureCache::fingerprint(const sim::PhaseHistory& chunk) {
  // Deliberately *not* the key's signature function: the fields are mixed
  // in a different order from a different seed, so a forced or accidental
  // signature collision still trips the mismatch check below.
  std::uint64_t h = kFnvOffset ^ 0x5AB5AB5AB5AB5AB5ULL;
  fnv_mix(h, static_cast<std::uint64_t>(chunk.samples_per_pulse()));
  fnv_mix(h, static_cast<std::uint64_t>(chunk.num_pulses()));
  const auto& first = chunk.meta(0);
  const auto& last = chunk.meta(chunk.num_pulses() - 1);
  fnv_mix(h, double_bits(first.position.x));
  fnv_mix(h, double_bits(first.position.y));
  fnv_mix(h, double_bits(first.position.z));
  fnv_mix(h, double_bits(first.start_range_m));
  fnv_mix(h, double_bits(last.position.x));
  fnv_mix(h, double_bits(last.position.y));
  fnv_mix(h, double_bits(last.position.z));
  fnv_mix(h, double_bits(last.start_range_m));
  return h;
}

service::PlanKey SubApertureCache::make_key(
    const geometry::ImageGrid& grid, const Region& region, Index block_w,
    Index block_h, const sim::PhaseHistory& chunk) const {
  ensure(chunk.num_pulses() > 0, "SubApertureCache::make_key: empty chunk");
  service::PlanKey key =
      service::make_plan_key(grid, region, block_w, block_h, chunk);
  if (config_.signature_fn) key.pulse_signature = config_.signature_fn(chunk);
  return key;
}

SubApertureCache::Partial SubApertureCache::find(
    const service::PlanKey& key, const sim::PhaseHistory& chunk) {
  MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    if (misses_) misses_->add();
    return nullptr;
  }
  if (it->second->fingerprint != fingerprint(chunk)) {
    if (collisions_) collisions_->add();
    if (misses_) misses_->add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (hits_) hits_->add();
  return it->second->partial;
}

void SubApertureCache::insert(const service::PlanKey& key,
                              const sim::PhaseHistory& chunk,
                              Partial partial) {
  ensure(partial != nullptr, "SubApertureCache::insert: null partial");
  if (config_.capacity == 0) return;
  MutexLock lock(mutex_);
  if (index_.find(key) != index_.end()) return;  // first insert wins
  Entry entry;
  entry.key = key;
  entry.fingerprint = fingerprint(chunk);
  entry.bytes = tile_bytes(*partial);
  entry.partial = std::move(partial);
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  if (inserts_) inserts_->add();
  while (lru_.size() > config_.capacity) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    if (evictions_) evictions_->add();
  }
  if (entries_gauge_) {
    entries_gauge_->set(static_cast<std::int64_t>(lru_.size()));
  }
  if (bytes_gauge_) bytes_gauge_->set(static_cast<std::int64_t>(bytes_));
}

std::size_t SubApertureCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

std::size_t SubApertureCache::bytes() const {
  MutexLock lock(mutex_);
  return bytes_;
}

void SubApertureCache::clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  if (entries_gauge_) entries_gauge_->set(0);
  if (bytes_gauge_) bytes_gauge_->set(0);
}

}  // namespace sarbp::streaming
