// Job model of the image-formation service: the request envelope, the
// QUEUED -> RUNNING -> {DONE, FAILED, CANCELLED, EXPIRED} lifecycle, and
// the handle a submitter holds while the job moves through the scheduler.
//
// Thread-safety contract: state() is a lock-free read; transitions happen
// under the handle's mutex so a terminal state and its JobResult become
// visible atomically to wait()/result(). cancel() is safe from any thread
// at any point in the lifecycle — a QUEUED job transitions immediately, a
// RUNNING job is interrupted at the worker's next inter-block checkpoint
// (see service.h), and cancelling a terminal job is a no-op.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "asr/block_plan.h"
#include "common/thread_annotations.h"
#include "common/grid2d.h"
#include "common/region.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "obs/metrics.h"
#include "sim/phase_history.h"

namespace sarbp::exec {
class TaskGroup;
using GroupPtr = std::shared_ptr<TaskGroup>;
}  // namespace sarbp::exec

namespace sarbp::service {

/// Scheduling class. Strict priority: the scheduler never runs a lower
/// class while a higher one has work; FIFO within a class.
enum class Priority { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr int kNumPriorities = 3;

[[nodiscard]] constexpr const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "?";
}

enum class JobState {
  kQueued,     ///< admitted, waiting for a worker
  kRunning,    ///< a worker is forming the image
  kDone,       ///< image formed; JobResult::image is valid
  kFailed,     ///< formation threw; JobResult::error explains
  kCancelled,  ///< cancel() won the race (queued or between ASR blocks)
  kExpired,    ///< the deadline passed before or during formation
};

[[nodiscard]] constexpr const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_terminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

/// Hand-off the service gives a custom job's group factory at dequeue
/// time. `checkpoint` is the service's cooperative cancel/deadline poll —
/// the factory's tasks must call it with the same granularity as the plan
/// replay (once per block sweep) and abort their group when it returns
/// false. `finish` resolves the JobHandle exactly once; the factory's
/// completion continuation must call it with the outcome it proposes
/// (kDone on success, kFailed on abort — the service substitutes the
/// checkpoint's kCancelled/kExpired verdict when one was recorded first)
/// and receives back the state the job actually resolved to, so callers
/// can classify outcomes without racing the handle.
struct CustomJobContext {
  std::function<bool()> checkpoint;
  std::function<JobState(JobState, const std::string&)> finish;
  /// Executor sizing, so factories can fan out like the plan replay does.
  int workers = 1;
  Index tile_tasks = 0;
};

/// Builds the task group of a custom (long-running-type) job when a worker
/// claims it. Returning null means the factory resolved the job itself
/// (it must still call ctx.finish); throwing fails the job.
using CustomGroupFactory =
    std::function<exec::GroupPtr(const CustomJobContext& ctx)>;

/// One image-formation request. `pulses` is shared so many requests over
/// the same collection (the repeated-scene case) alias one phase history.
struct ImageFormationRequest {
  geometry::ImageGrid grid{0, 0, 1.0};
  /// Sub-rectangle of the grid to form; empty (default) means the full
  /// grid. Plans are keyed per region, so tiled sub-image requests each
  /// get their own cached plan.
  Region region;
  std::shared_ptr<const sim::PhaseHistory> pulses;
  /// ASR approximation block (accuracy knob, paper §3.5).
  Index asr_block_w = asr::kDefaultBlock;
  Index asr_block_h = asr::kDefaultBlock;
  Priority priority = Priority::kNormal;
  /// Absolute completion deadline. Checked at dequeue and between ASR
  /// blocks while running; a miss yields kExpired, not a partial image.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Free-form submitter label (multi-tenant accounting in traces/logs).
  std::string tenant;
  /// Non-null marks a *custom* job: instead of the cached-plan replay, the
  /// service calls this factory at dequeue and runs whatever group it
  /// returns — the seam long-running job types (streaming updates) ride
  /// through. Custom jobs keep the whole lifecycle (fair queueing,
  /// admission, cancel/deadline checkpoints) but publish their results
  /// through their own channel, so JobResult::image stays empty on kDone.
  /// `pulses` may be null for a custom job (cost defaults to 1 in the fair
  /// scheduler); when set it is the SFQ cost basis, exactly as for
  /// formation jobs. Rejected kInvalidRequest in sharded mode — ranks
  /// cannot replay an opaque factory.
  CustomGroupFactory custom;
  /// Called (with no service or handle locks held) when a custom job
  /// resolves terminally *without* the factory ever running — cancelled
  /// while queued, deadline already passed at dequeue, or dropped at
  /// drain. Exactly one of {factory invocation, this callback} happens
  /// for every admitted custom job, so submitters can track in-flight
  /// work without polling. Ignored for non-custom jobs.
  std::function<void(JobState)> custom_abandoned;

  [[nodiscard]] Region effective_region() const {
    return region.empty() ? Region{0, 0, grid.width(), grid.height()} : region;
  }
};

/// Outcome of a finished job. `image` covers the request's effective
/// region (origin at the region's corner) and is valid only for kDone.
struct JobResult {
  JobState state = JobState::kFailed;
  Grid2D<CFloat> image{0, 0};
  std::string error;
  bool plan_cache_hit = false;
  double queue_seconds = 0.0;    ///< admission -> dequeue
  double setup_seconds = 0.0;    ///< plan lookup/build (the cacheable part)
  double compute_seconds = 0.0;  ///< block sweeps
  double latency_seconds = 0.0;  ///< admission -> terminal
  /// Global completion order (0-based) across the owning service — the
  /// observable the priority tests assert on.
  std::uint64_t completion_index = 0;
};

class ImageFormationService;

/// Shared handle to one submitted job. The service keeps it queued; the
/// submitter polls or waits on it. Destroying the service resolves every
/// handle (drain), so wait() never blocks on a dead service.
class JobHandle {
 public:
  [[nodiscard]] JobState state() const {
    // order: acquire — pairs with finish_locked's release store so a
    // lock-free reader that observes a terminal state also observes the
    // JobResult written before it (result() then reads it under the lock).
    return state_.load(std::memory_order_acquire);
  }

  [[nodiscard]] Priority priority() const { return request_.priority; }
  [[nodiscard]] const std::string& tenant() const { return request_.tenant; }
  /// The request is immutable after submission, so exposing it is safe;
  /// the scheduler reads its geometry for cost-based fair queueing.
  [[nodiscard]] const ImageFormationRequest& request() const {
    return request_;
  }

  /// Requests cancellation. A QUEUED job transitions to kCancelled
  /// immediately; a RUNNING job transitions at the worker's next
  /// inter-block checkpoint. Returns false when the job was already
  /// terminal (too late to cancel).
  bool cancel() SARBP_EXCLUDES(mutex_) {
    // order: release — pairs with the workers' acquire poll in the
    // inter-block checkpoint; nothing precedes it that matters, but the
    // flag must not sink below the state checks under the lock.
    cancel_requested_.store(true, std::memory_order_release);
    MutexLock lock(mutex_);
    if (state() != JobState::kQueued && state() != JobState::kRunning) {
      return false;
    }
    if (state() == JobState::kQueued) {
      finish_locked(JobState::kCancelled);
    }
    return true;  // running: the worker observes the flag between blocks
  }

  /// Blocks until the job reaches a terminal state; returns the result.
  const JobResult& wait() SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!is_terminal(state())) cv_.wait(lock);
    return result_;
  }

  /// Bounded wait; true when the job is terminal within `timeout`.
  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout)
      SARBP_EXCLUDES(mutex_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mutex_);
    while (!is_terminal(state())) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        return is_terminal(state());
      }
    }
    return true;
  }

  /// Terminal result; call only after wait()/wait_for() succeeded (or
  /// state() reported a terminal state).
  [[nodiscard]] const JobResult& result() const SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return result_;
  }

 private:
  friend class ImageFormationService;
  friend class ShardRouter;  // claim-side + gather-side job resolution

  explicit JobHandle(ImageFormationRequest req) : request_(std::move(req)) {}

  [[nodiscard]] bool cancel_requested() const {
    // order: acquire — pairs with cancel()'s release store.
    return cancel_requested_.load(std::memory_order_acquire);
  }

  /// QUEUED -> RUNNING; false when a cancel/expiry already won.
  bool start_running() SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (state() != JobState::kQueued) return false;
    // order: release — keeps the lock-free state() contract uniform; the
    // transition itself is serialized by mutex_.
    state_.store(JobState::kRunning, std::memory_order_release);
    return true;
  }

  /// Transition to a terminal state, stamp bookkeeping, wake waiters, and
  /// bump the service-level accounting shared through the registry. Safe to
  /// call once; later calls are no-ops (first terminal transition wins).
  void finish(JobState terminal) SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (is_terminal(state())) return;
    finish_locked(terminal);
  }

  /// Caller holds mutex_ and has verified the state is not yet terminal.
  /// Notifies while still holding the lock: a waiter may destroy this
  /// handle the moment it observes the terminal state, so the condition
  /// variable must not be touched after the mutex is released (same
  /// discipline as the executor's group completion; see
  /// tests/model/test_model.cpp, UseAfterFree).
  void finish_locked(JobState terminal) SARBP_REQUIRES(mutex_) {
    result_.state = terminal;
    result_.latency_seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - submitted_)
                                  .count();
    if (completion_seq_ != nullptr) {
      result_.completion_index =
          // order: relaxed — a pure ticket counter: atomicity gives each
          // finished job a unique, monotonically assigned index, and the
          // index is published to readers by the release store of state_
          // below (PR 5 audit; was acq_rel, TSan-clean relaxed).
          completion_seq_->fetch_add(1, std::memory_order_relaxed);
    }
    if (metrics_ != nullptr) {
      metrics_->counter(std::string("service.jobs.") +
                        job_state_name(terminal))
          .add();
      metrics_->histogram(std::string("service.job.latency_s.") +
                          priority_name(request_.priority))
          .record(result_.latency_seconds);
      if (!request_.tenant.empty()) {
        metrics_->counter("tenant." + request_.tenant + ".jobs." +
                          job_state_name(terminal))
            .add();
        metrics_->histogram("tenant." + request_.tenant + ".latency_s")
            .record(result_.latency_seconds);
      }
    }
    // order: release — publishes result_ to lock-free state() readers (see
    // state()); waiters under the lock are woken below.
    state_.store(terminal, std::memory_order_release);
    cv_.notify_all();
  }

  ImageFormationRequest request_;
  std::atomic<JobState> state_{JobState::kQueued};
  std::atomic<bool> cancel_requested_{false};
  mutable Mutex mutex_{SARBP_LOCK_LEVEL("service.job")};
  CondVar cv_;
  JobResult result_ SARBP_GUARDED_BY(mutex_);
  // Stamped by the service at admission. The registry and sequence pointer
  // must outlive every in-flight handle; the service guarantees that by
  // draining before destruction.
  std::chrono::steady_clock::time_point submitted_{};
  obs::Registry* metrics_ = nullptr;
  std::atomic<std::uint64_t>* completion_seq_ = nullptr;
};

}  // namespace sarbp::service
