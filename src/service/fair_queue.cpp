#include "service/fair_queue.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace sarbp::service {
namespace {

/// Predicted work of a job in "megapixel-pulses": the block sweeps are
/// linear in region pixels × pulse count. Only ratios matter to SFQ; the
/// normalization just keeps the virtual clock in a human-readable range.
double job_cost(const JobHandle& job) {
  const Region region = job.request().effective_region();
  const double pixels = static_cast<double>(region.pixels());
  const double pulses =
      static_cast<double>(std::max<Index>(1, job.request().pulses != nullptr
                                                 ? job.request().pulses->num_pulses()
                                                 : 1));
  return std::max(1e-9, pixels * pulses / 1e6);
}

}  // namespace

FairScheduler::FairScheduler(FairSchedulerConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : &obs::registry()) {
  ensure(config_.max_pending > 0, "FairScheduler: max_pending must be positive");
  ensure(config_.default_policy.weight > 0.0,
         "FairScheduler: default weight must be positive");
  for (const auto& [name, policy] : config_.tenants) {
    ensure(policy.weight > 0.0,
           "FairScheduler: tenant weight must be positive: " + name);
  }
  if constexpr (obs::kEnabled) {
    pending_gauge_ = &metrics_->gauge("service.pending");
  }
}

const TenantPolicy& FairScheduler::policy_for(
    const std::string& tenant) const {
  const auto it = config_.tenants.find(tenant);
  return it != config_.tenants.end() ? it->second : config_.default_policy;
}

AdmitResult FairScheduler::submit(const JobPtr& job,
                                  std::chrono::milliseconds grace) {
  ensure(job != nullptr, "FairScheduler::submit: null job");
  const std::string& tenant = job->tenant();
  const TenantPolicy& policy = policy_for(tenant);

  MutexLock lock(mutex_);
  if (closed_) return AdmitResult::kClosed;
  if (policy.quota > 0 && tenant_queued_[tenant] >= policy.quota) {
    if constexpr (obs::kEnabled) {
      if (!tenant.empty()) {
        metrics_->counter("tenant." + tenant + ".rejected.quota").add();
      }
    }
    return AdmitResult::kQuotaExceeded;
  }
  const auto deadline = std::chrono::steady_clock::now() + grace;
  while (pending_ >= config_.max_pending && !closed_) {
    if (grace.count() <= 0 ||
        std::chrono::steady_clock::now() >= deadline) {
      return AdmitResult::kQueueFull;
    }
    space_cv_.wait_until(lock, deadline);
  }
  if (closed_) return AdmitResult::kClosed;
  // Re-check the quota: another submitter of the same tenant may have been
  // admitted while this one waited for pending space.
  if (policy.quota > 0 && tenant_queued_[tenant] >= policy.quota) {
    return AdmitResult::kQuotaExceeded;
  }

  ClassState& cls = classes_[static_cast<std::size_t>(job->priority())];
  TenantQueue& queue = cls.tenants[tenant];
  Entry entry;
  entry.start = std::max(cls.vtime, queue.last_finish);
  entry.finish = entry.start + job_cost(*job) / policy.weight;
  queue.last_finish = entry.finish;
  entry.job = job;
  queue.entries.push_back(std::move(entry));
  ++cls.jobs;
  ++tenant_queued_[tenant];
  ++pending_;
  update_gauge_locked();
  if constexpr (obs::kEnabled) {
    if (!tenant.empty()) {
      metrics_->counter("tenant." + tenant + ".submitted").add();
    }
  }
  claim_cv_.notify_one();
  return AdmitResult::kAdmitted;
}

FairScheduler::JobPtr FairScheduler::claim(std::chrono::microseconds budget,
                                           bool* end) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  MutexLock lock(mutex_);
  for (;;) {
    if (JobPtr job = pop_best_locked()) {
      update_gauge_locked();
      space_cv_.notify_one();
      return job;
    }
    if (closed_) {
      if (end != nullptr) *end = true;
      return nullptr;
    }
    if (budget.count() <= 0 ||
        std::chrono::steady_clock::now() >= deadline) {
      return nullptr;
    }
    claim_cv_.wait_until(lock, deadline);
  }
}

FairScheduler::JobPtr FairScheduler::pop_best_locked() {
  for (auto& cls : classes_) {
    if (cls.jobs == 0) continue;
    std::map<std::string, TenantQueue>::iterator best = cls.tenants.end();
    for (auto it = cls.tenants.begin(); it != cls.tenants.end(); ++it) {
      if (it->second.entries.empty()) continue;
      // Strict less: on equal finish tags the first (lexicographically
      // smallest) tenant wins — a deterministic schedule the tests pin.
      if (best == cls.tenants.end() ||
          it->second.entries.front().finish <
              best->second.entries.front().finish) {
        best = it;
      }
    }
    ensure(best != cls.tenants.end(), "FairScheduler: class count desynced");
    Entry entry = std::move(best->second.entries.front());
    best->second.entries.pop_front();
    // SFQ virtual time: advance to the start tag of the job in service, so
    // tenants idling through a busy period get no unbounded credit.
    cls.vtime = std::max(cls.vtime, entry.start);
    --cls.jobs;
    --pending_;
    auto queued = tenant_queued_.find(best->first);
    ensure(queued != tenant_queued_.end() && queued->second > 0,
           "FairScheduler: tenant count desynced");
    --queued->second;
    return std::move(entry.job);
  }
  return nullptr;
}

void FairScheduler::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  // Waking everyone is a shutdown-path cost only. Claimers drain the
  // backlog then see end-of-stream; blocked submitters give up.
  claim_cv_.notify_all();
  space_cv_.notify_all();
}

std::size_t FairScheduler::pending() const {
  MutexLock lock(mutex_);
  return pending_;
}

void FairScheduler::update_gauge_locked() {
  if (pending_gauge_ != nullptr) {
    pending_gauge_->set(static_cast<std::int64_t>(pending_));
  }
}

}  // namespace sarbp::service
