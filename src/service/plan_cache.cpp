#include "service/plan_cache.h"

#include <algorithm>
#include <cstring>
#include <numbers>
#include <utility>

#include "backprojection/kernel_asr_block.h"
#include "backprojection/partition.h"
#include "common/check.h"
#include "common/timer.h"

namespace sarbp::service {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline void fnv_mix(std::uint64_t& h, std::uint64_t word) {
  // Byte-wise FNV-1a over the 8-byte word.
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
}

inline std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Approximate payload of one BlockTables (the float vectors).
std::size_t tables_bytes(const asr::BlockTables& t) {
  return (t.bin_a.size() + t.bin_b.size() + t.bin_c.size() + t.phi_re.size() +
          t.phi_im.size() + t.psi_re.size() + t.psi_im.size() +
          t.gam_re.size() + t.gam_im.size()) *
         sizeof(float);
}

}  // namespace

std::uint64_t pulse_geometry_signature(const sim::PhaseHistory& history) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(history.num_pulses()));
  fnv_mix(h, static_cast<std::uint64_t>(history.samples_per_pulse()));
  fnv_mix(h, double_bits(history.bin_spacing()));
  fnv_mix(h, double_bits(history.wavenumber()));
  for (Index p = 0; p < history.num_pulses(); ++p) {
    const auto& meta = history.meta(p);
    fnv_mix(h, double_bits(meta.position.x));
    fnv_mix(h, double_bits(meta.position.y));
    fnv_mix(h, double_bits(meta.position.z));
    fnv_mix(h, double_bits(meta.start_range_m));
  }
  return h;
}

std::size_t PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(k.grid_w));
  fnv_mix(h, static_cast<std::uint64_t>(k.grid_h));
  fnv_mix(h, double_bits(k.spacing));
  fnv_mix(h, double_bits(k.centre.x));
  fnv_mix(h, double_bits(k.centre.y));
  fnv_mix(h, double_bits(k.centre.z));
  fnv_mix(h, static_cast<std::uint64_t>(k.region.x0));
  fnv_mix(h, static_cast<std::uint64_t>(k.region.y0));
  fnv_mix(h, static_cast<std::uint64_t>(k.region.width));
  fnv_mix(h, static_cast<std::uint64_t>(k.region.height));
  fnv_mix(h, static_cast<std::uint64_t>(k.block_w));
  fnv_mix(h, static_cast<std::uint64_t>(k.block_h));
  fnv_mix(h, k.pulse_signature);
  return static_cast<std::size_t>(h);
}

PlanKey make_plan_key(const geometry::ImageGrid& grid, const Region& region,
                      Index block_w, Index block_h,
                      const sim::PhaseHistory& history) {
  PlanKey key;
  key.grid_w = grid.width();
  key.grid_h = grid.height();
  key.spacing = grid.spacing();
  key.centre = grid.centre();
  key.region = region;
  key.block_w = block_w;
  key.block_h = block_h;
  key.pulse_signature = pulse_geometry_signature(history);
  return key;
}

std::shared_ptr<const FormationPlan> build_formation_plan(
    const geometry::ImageGrid& grid, const Region& region, Index block_w,
    Index block_h, const sim::PhaseHistory& history) {
  ensure(!region.empty(), "build_formation_plan: empty region");
  ensure(block_w > 0 && block_h > 0,
         "build_formation_plan: ASR block must be positive");
  ensure(history.num_pulses() > 0, "build_formation_plan: no pulses");

  auto plan = std::make_shared<FormationPlan>();
  plan->key = make_plan_key(grid, region, block_w, block_h, history);
  plan->blocks = asr::plan_blocks(region.x0, region.y0, region.width,
                                  region.height, block_w, block_h);

  const Index pulses = history.num_pulses();
  plan->pulse_order.resize(static_cast<std::size_t>(pulses));
  for (Index p = 0; p < pulses; ++p) {
    plan->pulse_order[static_cast<std::size_t>(p)] =
        geometry::choose_loop_order(history.meta(p).position, grid.centre());
  }

  const double two_pi_k = 2.0 * std::numbers::pi * history.wavenumber();
  plan->tables.resize(plan->blocks.size() * static_cast<std::size_t>(pulses));
  for (std::size_t b = 0; b < plan->blocks.size(); ++b) {
    const auto& block = plan->blocks[b];
    const geometry::Vec3 centre = grid.position_f(
        static_cast<double>(block.x0) +
            0.5 * static_cast<double>(block.width - 1),
        static_cast<double>(block.y0) +
            0.5 * static_cast<double>(block.height - 1));
    for (Index p = 0; p < pulses; ++p) {
      const geometry::LoopOrder order =
          plan->pulse_order[static_cast<std::size_t>(p)];
      const bool x_inner = order == geometry::LoopOrder::kXInner;
      const Index len_l = x_inner ? block.width : block.height;
      const Index len_m = x_inner ? block.height : block.width;
      const auto& meta = history.meta(p);
      const asr::Quadratic2D q = bp::block_range_quadratic(
          centre, meta.position, grid.spacing(), order);
      asr::BlockTables& tables =
          plan->tables[b * static_cast<std::size_t>(pulses) +
                       static_cast<std::size_t>(p)];
      asr::build_block_tables_fast(q, meta.start_range_m,
                                   history.bin_spacing(), two_pi_k, len_l,
                                   len_m, tables);
      plan->bytes += tables_bytes(tables);
    }
  }
  return plan;
}

bool execute_plan(const FormationPlan& plan, const sim::PhaseHistory& history,
                  bp::SoaTile& tile, const std::function<bool()>& checkpoint) {
  const Index pulses = history.num_pulses();
  ensure(pulses == plan.num_pulses(),
         "execute_plan: history pulse count does not match the plan");
  ensure(tile.width() == plan.key.region.width &&
             tile.height() == plan.key.region.height,
         "execute_plan: tile/region shape mismatch");
  const Index samples = history.samples_per_pulse();

  // Block-outer / pulse-inner, the cache-blocking order of the scalar
  // kernel: one block's output rows stay resident while the pulses stream.
  for (std::size_t b = 0; b < plan.blocks.size(); ++b) {
    if (checkpoint && !checkpoint()) return false;
    const auto& block = plan.blocks[b];
    const Index bx = block.x0 - plan.key.region.x0;
    const Index by = block.y0 - plan.key.region.y0;
    for (Index p = 0; p < pulses; ++p) {
      const bool x_inner =
          plan.pulse_order[static_cast<std::size_t>(p)] ==
          geometry::LoopOrder::kXInner;
      const Index len_l = x_inner ? block.width : block.height;
      const Index len_m = x_inner ? block.height : block.width;
      bp::asr_sweep_block(plan.tables_for(b, p), history.pulse(p).data(),
                          samples, x_inner, bx, by, len_l, len_m, tile);
    }
  }
  return true;
}

namespace {

/// exec-layer projection of a plan (see exec/tile_backend.h). Valid while
/// the plan lives — the task lambdas own a shared_ptr to it.
exec::PlanView plan_view(const FormationPlan& plan) {
  exec::PlanView view;
  view.blocks = plan.blocks.data();
  view.num_blocks = static_cast<Index>(plan.blocks.size());
  view.pulse_order = plan.pulse_order.data();
  view.num_pulses = plan.num_pulses();
  view.tables = plan.tables.data();
  view.region_x0 = plan.key.region.x0;
  view.region_y0 = plan.key.region.y0;
  return view;
}

}  // namespace

exec::GroupPtr make_plan_replay_group(
    std::shared_ptr<const FormationPlan> plan,
    std::shared_ptr<const sim::PhaseHistory> history, int parallelism,
    Index tile_tasks, std::shared_ptr<bp::SoaTile> tile,
    std::function<bool()> checkpoint,
    std::function<void(exec::TaskGroup&)> on_complete,
    Index pulse_begin, Index pulse_end,
    std::shared_ptr<exec::BackendSet> backends) {
  ensure(plan != nullptr && history != nullptr && tile != nullptr,
         "make_plan_replay_group: null plan/history/tile");
  ensure(history->num_pulses() == plan->num_pulses(),
         "make_plan_replay_group: history pulse count does not match the plan");
  ensure(tile->width() == plan->key.region.width &&
             tile->height() == plan->key.region.height,
         "make_plan_replay_group: tile/region shape mismatch");
  ensure(parallelism >= 1, "make_plan_replay_group: parallelism >= 1");
  if (pulse_end < 0) pulse_end = plan->num_pulses();
  ensure(pulse_begin >= 0 && pulse_begin <= pulse_end &&
             pulse_end <= plan->num_pulses(),
         "make_plan_replay_group: bad pulse range");

  const Index nblocks = static_cast<Index>(plan->blocks.size());
  // ~2 tasks per worker so thieves always find a remainder to take, but
  // never finer than one block per task.
  Index fanout = tile_tasks > 0
                     ? tile_tasks
                     : std::max<Index>(2, 2 * static_cast<Index>(parallelism));
  fanout = std::clamp<Index>(fanout, 1, nblocks);

  std::vector<exec::TaskGroup::Task> tasks;
  tasks.reserve(static_cast<std::size_t>(fanout));

  if (backends == nullptr) {
    // Direct scalar-sweep path, exactly as before backends existed.
    for (Index ti = 0; ti < fanout; ++ti) {
      const Index b0 = bp::split_begin(nblocks, fanout, ti);
      const Index b1 = bp::split_begin(nblocks, fanout, ti + 1);
      tasks.push_back([plan, history, tile, checkpoint, b0, b1, pulse_begin,
                       pulse_end](int, exec::TaskGroup& group) {
        const Index samples = history->samples_per_pulse();
        for (Index b = b0; b < b1; ++b) {
          // Same granularity as execute_plan: one cancellation poll per
          // block sweep, not per task.
          if (checkpoint && !checkpoint()) {
            group.abort();
            return;
          }
          const auto& block = plan->blocks[static_cast<std::size_t>(b)];
          const Index bx = block.x0 - plan->key.region.x0;
          const Index by = block.y0 - plan->key.region.y0;
          for (Index p = pulse_begin; p < pulse_end; ++p) {
            const bool x_inner =
                plan->pulse_order[static_cast<std::size_t>(p)] ==
                geometry::LoopOrder::kXInner;
            const Index len_l = x_inner ? block.width : block.height;
            const Index len_m = x_inner ? block.height : block.width;
            bp::asr_sweep_block(
                plan->tables_for(static_cast<std::size_t>(b), p),
                history->pulse(p).data(), samples, x_inner, bx, by, len_l,
                len_m, *tile);
          }
        }
      });
    }
  } else {
    // Backend routing (§5.3): each backend owns a contiguous block range
    // sized by the current dynamic split, sub-divided into tasks in
    // proportion to its share of the fan-out. Each task times its whole
    // sweep and feeds the backend's observed-rate tracker, which steers
    // the *next* job's partition.
    const std::vector<Index> bounds = backends->partition(nblocks);
    const Index pulses = pulse_end - pulse_begin;
    for (int k = 0; k < backends->size(); ++k) {
      const Index k0 = bounds[static_cast<std::size_t>(k)];
      const Index k1 = bounds[static_cast<std::size_t>(k) + 1];
      if (k0 >= k1) continue;
      const Index kblocks = k1 - k0;
      const Index ktasks = std::clamp<Index>(
          static_cast<Index>(std::llround(static_cast<double>(fanout) *
                                          static_cast<double>(kblocks) /
                                          static_cast<double>(nblocks))),
          1, kblocks);
      for (Index ti = 0; ti < ktasks; ++ti) {
        const Index b0 = k0 + bp::split_begin(kblocks, ktasks, ti);
        const Index b1 = k0 + bp::split_begin(kblocks, ktasks, ti + 1);
        exec::TileBackend* backend = &backends->backend(k);
        tasks.push_back([plan, history, tile, checkpoint, backends, backend,
                         b0, b1, pulse_begin, pulse_end,
                         pulses](int, exec::TaskGroup& group) {
          const exec::PlanView view = plan_view(*plan);
          Timer timer;
          double backprojections = 0.0;
          for (Index b = b0; b < b1; ++b) {
            if (checkpoint && !checkpoint()) {
              group.abort();
              return;
            }
            const auto& block = plan->blocks[static_cast<std::size_t>(b)];
            backend->sweep_block(view, *history, b, pulse_begin, pulse_end,
                                 *tile);
            backprojections += static_cast<double>(block.width) *
                               static_cast<double>(block.height) *
                               static_cast<double>(pulses);
          }
          backend->record(backprojections, timer.seconds());
        });
      }
    }
  }

  return std::make_shared<exec::TaskGroup>(
      std::move(tasks), std::move(checkpoint), std::move(on_complete),
      "plan_replay");
}

PlanCache::PlanCache(std::size_t capacity, obs::Registry* metrics)
    : capacity_(capacity) {
  if constexpr (obs::kEnabled) {
    auto& reg = metrics != nullptr ? *metrics : obs::registry();
    hits_ = &reg.counter("service.plan_cache.hits");
    misses_ = &reg.counter("service.plan_cache.misses");
    evictions_ = &reg.counter("service.plan_cache.evictions");
    entries_gauge_ = &reg.gauge("service.plan_cache.entries");
    bytes_gauge_ = &reg.gauge("service.plan_cache.bytes");
  }
}

std::shared_ptr<const FormationPlan> PlanCache::get_or_build(
    const geometry::ImageGrid& grid, const Region& region, Index block_w,
    Index block_h, const sim::PhaseHistory& history, bool* hit) {
  const PlanKey key = make_plan_key(grid, region, block_w, block_h, history);
  {
    MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      if (hits_) hits_->add();
      if (hit != nullptr) *hit = true;
      return *it->second;
    }
  }
  if (misses_) misses_->add();
  if (hit != nullptr) *hit = false;
  auto plan = build_formation_plan(grid, region, block_w, block_h, history);
  if (capacity_ > 0) {
    MutexLock lock(mutex_);
    if (index_.find(key) == index_.end()) {
      insert_locked(plan);
    }
  }
  return plan;
}

void PlanCache::insert_locked(std::shared_ptr<const FormationPlan> plan) {
  lru_.push_front(std::move(plan));
  index_[lru_.front()->key] = lru_.begin();
  bytes_ += lru_.front()->bytes;
  while (lru_.size() > capacity_) {
    const auto& victim = lru_.back();
    bytes_ -= victim->bytes;
    index_.erase(victim->key);
    lru_.pop_back();
    if (evictions_) evictions_->add();
  }
  update_gauges_locked();
}

void PlanCache::update_gauges_locked() {
  if (entries_gauge_) entries_gauge_->set(static_cast<std::int64_t>(lru_.size()));
  if (bytes_gauge_) bytes_gauge_->set(static_cast<std::int64_t>(bytes_));
}

std::size_t PlanCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

std::size_t PlanCache::bytes() const {
  MutexLock lock(mutex_);
  return bytes_;
}

void PlanCache::clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  update_gauges_locked();
}

}  // namespace sarbp::service
