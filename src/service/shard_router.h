// Shard router: the front end of the sharded image-formation service
// (DESIGN.md §11). Partitions each claimed job across the ranks of an
// in-process ShardCluster, dispatches job descriptors through the cluster
// mailbox layer, and gathers the partial tiles back into one image on a
// dedicated gather thread.
//
// Routing policy:
//   - Small jobs (region pixels <= small_job_pixels) go whole to a single
//     shard chosen by hashing the tenant (or round-robin by sequence for
//     the empty tenant): the same plan replay as the single-node path, so
//     the result is byte-identical to an unsharded service.
//   - Large jobs split by strategy. kGridSplit cuts the region into
//     ASR-block-aligned row (or column) bands, one per shard; because
//     plan_blocks anchors at the region origin and every cut lands on a
//     block_h (block_w) multiple, each band's plan blocks coincide with
//     the full-region plan's blocks and the assembled image is
//     bit-identical to the single-node result. kPulseScatter replays one
//     shared full-region plan with a disjoint pulse range per shard; the
//     gather sums the partial tiles in shard-index order — the one
//     documented deviation from single-node float reduction order.
//     kAuto prefers a grid split (>= 2 block bands) and falls back to
//     pulse scatter, then to a single shard.
//
// Gather protocol: for each part the router sends DispatchMsg{seq, part}
// to the owning shard (tag kTagShardJob; seq 0 is the shutdown sentinel)
// and enqueues the job on the gather queue. Shards process dispatches in
// FIFO order and reply on (shard -> front end, kTagShardReply) with a
// ReplyHeader + payload (tile bytes on success, error string otherwise);
// per-(source, tag) mailbox FIFO plus the gather thread draining jobs in
// dispatch order means the head reply from a shard always belongs to the
// oldest ungathered part on that shard. Every dispatched part gets
// exactly one reply — a worker catches per-part exceptions and replies
// kPartFailed; an uncaught error kills the rank, aborts the cluster, and
// every blocked gather recv unwinds with ClusterAborted, failing the
// affected jobs instead of wedging their wait().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard.h"
#include "common/queue.h"
#include "common/region.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "service/job.h"
#include "service/plan_cache.h"

namespace sarbp::service {

/// How a large job is spread across shards. kAuto picks per job (grid
/// split when the region has >= 2 ASR block bands, else pulse scatter).
enum class ShardStrategy { kAuto, kPulseScatter, kGridSplit };

[[nodiscard]] constexpr const char* shard_strategy_name(ShardStrategy s) {
  switch (s) {
    case ShardStrategy::kAuto: return "auto";
    case ShardStrategy::kPulseScatter: return "pulse_scatter";
    case ShardStrategy::kGridSplit: return "grid_split";
  }
  return "?";
}

struct ShardRouterConfig {
  /// Cluster width (>= 1). The service only builds a router for >= 2.
  int shards = 2;
  /// Tile-executor width inside each shard rank.
  int shard_workers = 1;
  bool steal = true;
  Index tile_tasks = 0;
  /// Jobs at most this many region pixels route whole to one shard.
  Index small_job_pixels = 64 * 64;
  ShardStrategy strategy = ShardStrategy::kAuto;
  /// Backlog bound of the gather queue (dispatched, not yet gathered).
  std::size_t gather_capacity = 64;
  /// Test hook shared with the single-node path: polled at every
  /// inter-block checkpoint on every shard.
  std::function<void()> inter_block_hook;
  /// Fault-injection hook: runs on the shard rank before it executes a
  /// dispatch. Throwing here is an *uncaught* rank error — the rank dies
  /// and the cluster aborts (the failure-model test seam).
  std::function<void(int shard, std::uint64_t seq)> shard_fault_hook;
  obs::Registry* metrics = nullptr;
  /// Shared formation-plan cache (the service's); must outlive the router.
  PlanCache* plan_cache = nullptr;
};

class ShardRouter {
 public:
  using JobPtr = std::shared_ptr<JobHandle>;

  explicit ShardRouter(ShardRouterConfig config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  [[nodiscard]] int shards() const { return config_.shards; }

  /// Claim-side of one job: queue accounting, deadline check, RUNNING
  /// transition, split, dispatch to the shards, and hand-off to the
  /// gather thread. Jobs that resolve terminally without compute
  /// (cancelled while queued, deadline already passed, setup failure)
  /// are finished here. Single-threaded caller (the route loop).
  void dispatch(const JobPtr& job);

  /// Sends the shutdown sentinel to every shard, drains the gather
  /// backlog, and joins the gather thread and the rank pool. Idempotent;
  /// implied by the destructor. Callers must have stopped dispatching.
  void shutdown();

  [[nodiscard]] bool aborted() const { return cluster_.aborted(); }
  [[nodiscard]] std::string abort_reason() const {
    return cluster_.abort_reason();
  }

 private:
  /// Wire messages. Trivially copyable; moved through the cluster
  /// mailboxes with the typed send/recv wrappers.
  struct DispatchMsg {
    std::uint64_t seq = 0;  ///< 0 = shutdown sentinel
    std::int32_t part = 0;
    std::int32_t pad = 0;
  };
  enum PartStatus : std::int32_t {
    kPartDone = 0,
    kPartFailed = 1,
    kPartCancelled = 2,
    kPartExpired = 3,
  };
  struct ReplyHeader {
    std::uint64_t seq = 0;
    std::int32_t part = 0;
    std::int32_t status = kPartFailed;
    std::int32_t cache_hit = 0;
    std::int32_t pad = 0;
    double compute_seconds = 0.0;
  };

  struct ShardPart {
    int shard = 0;
    Region region;  ///< sub-region (grid split) or the full region
    Index pulse_begin = 0;
    Index pulse_end = 0;
  };

  /// Everything the shard workers and the gather thread need for one
  /// dispatched job. Immutable after dispatch() publishes it.
  struct ShardJobCtx {
    std::uint64_t seq = 0;
    JobPtr job;
    Region region;
    ShardStrategy used = ShardStrategy::kAuto;
    /// Shared full-region plan (single-shard and pulse-scatter routes);
    /// null for grid splits, whose workers plan their own band.
    std::shared_ptr<const FormationPlan> plan;
    std::vector<ShardPart> parts;
    double queued_for = 0.0;
    double setup_seconds = 0.0;
    bool front_cache_hit = false;
  };
  using CtxPtr = std::shared_ptr<ShardJobCtx>;

  void worker_loop(cluster::Communicator& comm);
  [[nodiscard]] std::vector<std::byte> run_part(exec::TileExecutor& exec,
                                                const ShardJobCtx& ctx,
                                                const DispatchMsg& msg);
  void gather_loop();
  void finish_job(const ShardJobCtx& ctx);
  void finish_without_compute(const JobPtr& job, JobState terminal,
                              const char* error, double queued_for,
                              double setup_seconds);

  /// Splits the job into parts per the configured strategy; may build the
  /// shared plan (throws propagate to dispatch(), which fails the job).
  void split_job(ShardJobCtx& ctx);
  [[nodiscard]] int pick_home_shard(const JobPtr& job,
                                    std::uint64_t seq) const;

  [[nodiscard]] CtxPtr find_ctx(std::uint64_t seq) const;

  ShardRouterConfig config_;
  obs::Registry* metrics_;

  mutable Mutex table_mutex_{SARBP_LOCK_LEVEL("service.shard_table")};
  std::map<std::uint64_t, CtxPtr> inflight_ SARBP_GUARDED_BY(table_mutex_);

  /// Dispatched jobs in dispatch order — what the gather thread drains.
  BoundedQueue<CtxPtr> gather_;
  std::uint64_t next_seq_ = 1;  ///< route-thread-only; 0 is the sentinel
  std::atomic<bool> shut_down_{false};

  obs::Counter* jobs_single_ = nullptr;
  obs::Counter* jobs_pulse_scatter_ = nullptr;
  obs::Counter* jobs_grid_split_ = nullptr;
  obs::Counter* parts_dispatched_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Histogram* queue_s_ = nullptr;
  obs::Histogram* setup_s_ = nullptr;
  obs::Histogram* compute_s_ = nullptr;
  obs::Histogram* gather_s_ = nullptr;

  /// Rank pool + gather thread last: their loops touch everything above.
  cluster::ShardCluster cluster_;
  std::thread gather_thread_;
};

}  // namespace sarbp::service
