#include "service/shard_router.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <utility>

#include "backprojection/partition.h"
#include "common/check.h"
#include "common/grid2d.h"
#include "common/timer.h"

namespace sarbp::service {
namespace {

/// Mailbox tags of the dispatch/gather protocol. One tag per direction is
/// enough: mailboxes match on (source, tag) and deliver FIFO within a key,
/// and both the dispatch stream per shard and the gather stream per shard
/// are processed strictly in order.
constexpr int kTagShardJob = 120;
constexpr int kTagShardReply = 121;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

int severity(JobState s) {
  switch (s) {
    case JobState::kFailed: return 3;
    case JobState::kExpired: return 2;
    case JobState::kCancelled: return 1;
    default: return 0;
  }
}

/// Shared outcome of one part's replay: whichever worker's checkpoint
/// trips first decides (same first-trip-wins discipline as the service's
/// single-node RunCtx).
struct PartState {
  Mutex mutex{SARBP_LOCK_LEVEL("service.part")};
  std::int32_t status SARBP_GUARDED_BY(mutex);
  std::string error SARBP_GUARDED_BY(mutex);

  explicit PartState(std::int32_t initial) : status(initial) {}

  void trip(std::int32_t s, const char* message) SARBP_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (status == 0) {
      status = s;
      error = message;
    }
  }
};

}  // namespace

ShardRouter::ShardRouter(ShardRouterConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : &obs::registry()),
      gather_(config_.gather_capacity > 0 ? config_.gather_capacity : 1,
              "service.gather", metrics_),
      // The rank pool starts inside this initializer: everything
      // worker_loop touches (config_, metrics_, the ctx table) is
      // initialized above it, and the first dispatch cannot arrive before
      // the constructor returns.
      cluster_(config_.shards,
               [this](cluster::Communicator& comm) { worker_loop(comm); }) {
  ensure(config_.shards >= 1, "ShardRouter: shards must be positive");
  ensure(config_.shard_workers >= 1,
         "ShardRouter: shard_workers must be positive");
  ensure(config_.plan_cache != nullptr, "ShardRouter: plan cache required");
  if constexpr (obs::kEnabled) {
    jobs_single_ = &metrics_->counter("shard.jobs.single");
    jobs_pulse_scatter_ = &metrics_->counter("shard.jobs.pulse_scatter");
    jobs_grid_split_ = &metrics_->counter("shard.jobs.grid_split");
    parts_dispatched_ = &metrics_->counter("shard.parts.dispatched");
    inflight_gauge_ = &metrics_->gauge("shard.jobs.inflight");
    queue_s_ = &metrics_->histogram("service.job.queue_s");
    setup_s_ = &metrics_->histogram("service.job.setup_s");
    compute_s_ = &metrics_->histogram("service.job.compute_s");
    gather_s_ = &metrics_->histogram("shard.job.gather_s");
  }
  gather_thread_ = std::thread([this] { gather_loop(); });
}

ShardRouter::~ShardRouter() { shutdown(); }

void ShardRouter::shutdown() {
  bool expected = false;
  if (!shut_down_.compare_exchange_strong(expected, true)) return;
  // Sentinels queue FIFO behind every already-dispatched job message, so
  // each rank finishes its backlog first. Aborted ranks are already gone;
  // the sentinel just sits in a mailbox nobody reads.
  for (int s = 0; s < config_.shards; ++s) {
    cluster_.frontend().send_value(s, kTagShardJob, DispatchMsg{});
  }
  gather_.close();  // gather drains the dispatched backlog, then exits
  if (gather_thread_.joinable()) gather_thread_.join();
  cluster_.join();
}

int ShardRouter::pick_home_shard(const JobPtr& job, std::uint64_t seq) const {
  const std::string& tenant = job->tenant();
  const std::uint64_t key = tenant.empty() ? seq : fnv1a(tenant);
  return static_cast<int>(key % static_cast<std::uint64_t>(config_.shards));
}

void ShardRouter::split_job(ShardJobCtx& ctx) {
  const auto& request = ctx.job->request();
  const Region region = ctx.region;
  const Index pulses = request.pulses->num_pulses();
  const Index shards = config_.shards;

  const auto single = [&] {
    ctx.parts.push_back(
        ShardPart{pick_home_shard(ctx.job, ctx.seq), region, 0, pulses});
    if (jobs_single_) jobs_single_->add();
  };

  // Band cuts land on ASR block boundaries relative to the region origin,
  // so each band's plan blocks coincide with the full-region plan's blocks
  // and the assembled image is bit-identical to the single-node result.
  const auto try_grid_split = [&]() -> bool {
    const Index blocks_y =
        (region.height + request.asr_block_h - 1) / request.asr_block_h;
    const Index blocks_x =
        (region.width + request.asr_block_w - 1) / request.asr_block_w;
    const bool by_rows = blocks_y >= 2;
    if (!by_rows && blocks_x < 2) return false;
    const Index bands = by_rows ? blocks_y : blocks_x;
    const Index edge = by_rows ? request.asr_block_h : request.asr_block_w;
    const Index extent = by_rows ? region.height : region.width;
    const Index k = std::min<Index>(shards, bands);
    for (Index i = 0; i < k; ++i) {
      const Index c0 = bp::split_begin(bands, k, i) * edge;
      const Index c1 = std::min(bp::split_begin(bands, k, i + 1) * edge, extent);
      const Region band =
          by_rows ? Region{region.x0, region.y0 + c0, region.width, c1 - c0}
                  : Region{region.x0 + c0, region.y0, c1 - c0, region.height};
      ctx.parts.push_back(ShardPart{static_cast<int>(i), band, 0, pulses});
    }
    ctx.used = ShardStrategy::kGridSplit;
    if (jobs_grid_split_) jobs_grid_split_->add();
    return true;
  };

  // The front end builds (or cache-hits) the one shared full-region plan;
  // each shard replays a disjoint pulse range of it.
  const auto try_pulse_scatter = [&]() -> bool {
    if (pulses < 2) return false;
    Timer setup_timer;
    ctx.plan = config_.plan_cache->get_or_build(
        request.grid, region, request.asr_block_w, request.asr_block_h,
        *request.pulses, &ctx.front_cache_hit);
    ctx.setup_seconds = setup_timer.seconds();
    if (setup_s_) setup_s_->record(ctx.setup_seconds);
    const Index k = std::min<Index>(shards, pulses);
    for (Index i = 0; i < k; ++i) {
      ctx.parts.push_back(ShardPart{static_cast<int>(i), region,
                                    bp::split_begin(pulses, k, i),
                                    bp::split_begin(pulses, k, i + 1)});
    }
    ctx.used = ShardStrategy::kPulseScatter;
    if (jobs_pulse_scatter_) jobs_pulse_scatter_->add();
    return true;
  };

  if (shards <= 1 || region.pixels() <= config_.small_job_pixels) {
    single();
    return;
  }
  switch (config_.strategy) {
    case ShardStrategy::kAuto:
      if (!try_grid_split() && !try_pulse_scatter()) single();
      return;
    case ShardStrategy::kGridSplit:
      if (!try_grid_split()) single();
      return;
    case ShardStrategy::kPulseScatter:
      if (!try_pulse_scatter()) single();
      return;
  }
}

void ShardRouter::finish_without_compute(const JobPtr& job, JobState terminal,
                                         const char* error, double queued_for,
                                         double setup_seconds) {
  MutexLock lock(job->mutex_);
  if (is_terminal(job->state())) return;
  job->result_.queue_seconds = queued_for;
  job->result_.setup_seconds = setup_seconds;
  job->result_.error = error;
  job->finish_locked(terminal);
}

void ShardRouter::dispatch(const JobPtr& job) {
  const auto now = std::chrono::steady_clock::now();
  const double queued_for =
      std::chrono::duration<double>(now - job->submitted_).count();
  if (queue_s_) queue_s_->record(queued_for);

  // Cancelled while queued: the handle is already terminal, just drop it.
  if (is_terminal(job->state())) return;

  const auto& request = job->request();
  if (request.deadline.has_value() && now > *request.deadline) {
    finish_without_compute(job, JobState::kExpired,
                           "deadline passed while queued", queued_for, 0.0);
    return;
  }
  if (!job->start_running()) return;

  auto ctx = std::make_shared<ShardJobCtx>();
  ctx->seq = next_seq_++;
  ctx->job = job;
  ctx->region = request.effective_region();
  ctx->queued_for = queued_for;
  try {
    split_job(*ctx);
  } catch (const std::exception& e) {
    finish_without_compute(job, JobState::kFailed, e.what(), queued_for,
                           ctx->setup_seconds);
    return;
  }

  if (inflight_gauge_) inflight_gauge_->add(1);
  {
    // Published before any dispatch message: a shard's lookup must win.
    MutexLock lock(table_mutex_);
    inflight_.emplace(ctx->seq, ctx);
  }
  for (std::size_t i = 0; i < ctx->parts.size(); ++i) {
    DispatchMsg msg;
    msg.seq = ctx->seq;
    msg.part = static_cast<std::int32_t>(i);
    cluster_.frontend().send_value(ctx->parts[i].shard, kTagShardJob, msg);
  }
  if (parts_dispatched_) parts_dispatched_->add(ctx->parts.size());
  if (!gather_.push(ctx)) {
    // Defensive: shutdown() closed the gather queue under us (callers stop
    // dispatching first). Resolve the handle rather than leak a waiter.
    finish_without_compute(job, JobState::kFailed, "service shutting down",
                           queued_for, ctx->setup_seconds);
    MutexLock lock(table_mutex_);
    inflight_.erase(ctx->seq);
    if (inflight_gauge_) inflight_gauge_->add(-1);
  }
}

ShardRouter::CtxPtr ShardRouter::find_ctx(std::uint64_t seq) const {
  MutexLock lock(table_mutex_);
  const auto it = inflight_.find(seq);
  return it != inflight_.end() ? it->second : nullptr;
}

void ShardRouter::worker_loop(cluster::Communicator& comm) {
  const int shard = comm.rank();
  const int frontend = comm.size() - 1;
  exec::ExecOptions exec_options;
  exec_options.workers = config_.shard_workers;
  exec_options.steal = config_.steal;
  exec_options.metrics = metrics_;
  exec_options.metric_prefix = "shard." + std::to_string(shard) + ".";
  exec::TileExecutor exec(exec_options);

  for (;;) {
    const auto msg = comm.recv_value<DispatchMsg>(frontend, kTagShardJob);
    if (msg.seq == 0) break;  // shutdown sentinel
    if (config_.shard_fault_hook) config_.shard_fault_hook(shard, msg.seq);
    const CtxPtr ctx = find_ctx(msg.seq);
    ensure(ctx != nullptr, "ShardRouter: dispatch for unknown job");
    comm.send(frontend, kTagShardReply, run_part(exec, *ctx, msg));
  }
}

std::vector<std::byte> ShardRouter::run_part(exec::TileExecutor& exec,
                                             const ShardJobCtx& ctx,
                                             const DispatchMsg& msg) {
  ensure(msg.part >= 0 &&
             static_cast<std::size_t>(msg.part) < ctx.parts.size(),
         "ShardRouter: part index out of range");
  const ShardPart& part = ctx.parts[static_cast<std::size_t>(msg.part)];

  ReplyHeader header;
  header.seq = msg.seq;
  header.part = msg.part;
  header.status = kPartDone;
  std::string error;
  Grid2D<CFloat> image(0, 0);
  Timer compute_timer;
  try {
    const auto& request = ctx.job->request();
    std::shared_ptr<const FormationPlan> plan = ctx.plan;
    if (plan == nullptr) {
      // Single-shard and grid-split routes plan their own (sub-)region —
      // through the shared cache, so repeated scenes still hit.
      bool hit = false;
      plan = config_.plan_cache->get_or_build(
          request.grid, part.region, request.asr_block_w, request.asr_block_h,
          *request.pulses, &hit);
      header.cache_hit = hit ? 1 : 0;
    }

    auto state = std::make_shared<PartState>(kPartDone);
    const JobPtr job = ctx.job;
    auto checkpoint = [this, state, job]() -> bool {
      if (config_.inter_block_hook) config_.inter_block_hook();
      if (job->cancel_requested()) {
        state->trip(kPartCancelled, "cancelled while running");
        return false;
      }
      const auto& deadline = job->request().deadline;
      if (deadline.has_value() &&
          std::chrono::steady_clock::now() > *deadline) {
        state->trip(kPartExpired, "deadline passed while running");
        return false;
      }
      return true;
    };

    auto tile =
        std::make_shared<bp::SoaTile>(part.region.width, part.region.height);
    auto group = make_plan_replay_group(
        std::move(plan), request.pulses, config_.shard_workers,
        config_.tile_tasks, tile, std::move(checkpoint), nullptr,
        part.pulse_begin, part.pulse_end);
    exec.run(group);
    header.compute_seconds = compute_timer.seconds();
    {
      MutexLock lock(state->mutex);
      header.status = state->status;
      error = state->error;
    }
    if (header.status == kPartDone && group->aborted()) {
      header.status = kPartFailed;
      error = group->error().empty() ? "part aborted" : group->error();
    }
    if (header.status == kPartDone) {
      image = Grid2D<CFloat>(part.region.width, part.region.height);
      tile->accumulate_into(image,
                            Region{0, 0, part.region.width, part.region.height});
    }
  } catch (const cluster::ClusterAborted&) {
    throw;  // the cluster is poisoned; no reply will be read
  } catch (const std::exception& e) {
    header.status = kPartFailed;
    header.compute_seconds = compute_timer.seconds();
    error = e.what();
  }

  const std::size_t payload_size =
      header.status == kPartDone
          ? static_cast<std::size_t>(image.size()) * sizeof(CFloat)
          : error.size();
  std::vector<std::byte> reply(sizeof(ReplyHeader) + payload_size);
  std::memcpy(reply.data(), &header, sizeof(header));
  if (payload_size > 0) {
    const void* payload = header.status == kPartDone
                              ? static_cast<const void*>(image.data())
                              : static_cast<const void*>(error.data());
    std::memcpy(reply.data() + sizeof(header), payload, payload_size);
  }
  return reply;
}

void ShardRouter::gather_loop() {
  // Close-then-drain: after shutdown() every already-dispatched job is
  // still popped and resolved before the thread exits.
  while (auto popped = gather_.pop()) {
    const CtxPtr ctx = std::move(*popped);
    Timer gather_timer;
    finish_job(*ctx);
    if (gather_s_) gather_s_->record(gather_timer.seconds());
    {
      MutexLock lock(table_mutex_);
      inflight_.erase(ctx->seq);
    }
    if (inflight_gauge_) inflight_gauge_->add(-1);
  }
}

void ShardRouter::finish_job(const ShardJobCtx& ctx) {
  const Region region = ctx.region;
  Grid2D<CFloat> image(region.width, region.height);
  JobState outcome = JobState::kDone;
  std::string error;
  bool cache_hit = ctx.front_cache_hit;
  double compute_max = 0.0;
  // Pulse-scatter parts cover the whole region and sum; the disjoint
  // routes (single shard, grid split) copy their band verbatim, keeping
  // the assembled bytes exactly the part bytes.
  const bool sum_parts = ctx.plan != nullptr;

  for (std::size_t i = 0; i < ctx.parts.size(); ++i) {
    const ShardPart& part = ctx.parts[i];
    std::vector<std::byte> bytes;
    try {
      bytes = cluster_.frontend().recv(part.shard, kTagShardReply);
    } catch (const cluster::ClusterAborted&) {
      // A rank died. Every un-replied part of this job (and of every job
      // behind it) resolves the same way, immediately — the fix for the
      // rank-failure hang, surfaced as a FAILED job instead of a stuck
      // wait().
      outcome = JobState::kFailed;
      const std::string reason = cluster_.abort_reason();
      error = reason.empty() ? std::string("shard cluster aborted")
                             : "shard cluster aborted: " + reason;
      break;
    }
    ensure(bytes.size() >= sizeof(ReplyHeader), "ShardRouter: short reply");
    ReplyHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    ensure(header.seq == ctx.seq &&
               header.part == static_cast<std::int32_t>(i),
           "ShardRouter: reply out of order");
    compute_max = std::max(compute_max, header.compute_seconds);
    cache_hit = cache_hit || header.cache_hit != 0;
    const std::byte* payload = bytes.data() + sizeof(header);
    const std::size_t payload_size = bytes.size() - sizeof(header);
    if (header.status == kPartDone) {
      ensure(payload_size == static_cast<std::size_t>(part.region.pixels()) *
                                 sizeof(CFloat),
             "ShardRouter: tile size mismatch");
      const auto* tile = reinterpret_cast<const CFloat*>(payload);
      if (sum_parts) {
        // Shard-index order — the documented reduction order of the
        // pulse-scatter route.
        auto flat = image.flat();
        for (std::size_t j = 0; j < flat.size(); ++j) flat[j] += tile[j];
      } else {
        const Index dx = part.region.x0 - region.x0;
        const Index dy = part.region.y0 - region.y0;
        for (Index y = 0; y < part.region.height; ++y) {
          std::memcpy(image.row(dy + y).data() + dx,
                      tile + y * part.region.width,
                      static_cast<std::size_t>(part.region.width) *
                          sizeof(CFloat));
        }
      }
    } else {
      const JobState part_outcome = header.status == kPartFailed
                                        ? JobState::kFailed
                                        : header.status == kPartExpired
                                              ? JobState::kExpired
                                              : JobState::kCancelled;
      if (severity(part_outcome) > severity(outcome)) {
        outcome = part_outcome;
        error.assign(reinterpret_cast<const char*>(payload), payload_size);
      }
    }
  }

  if (compute_s_) compute_s_->record(compute_max);
  JobHandle& job = *ctx.job;
  MutexLock lock(job.mutex_);
  if (is_terminal(job.state())) return;  // lost a race to cancel()
  job.result_.queue_seconds = ctx.queued_for;
  job.result_.setup_seconds = ctx.setup_seconds;
  job.result_.compute_seconds = compute_max;
  job.result_.plan_cache_hit = cache_hit;
  job.result_.error = std::move(error);
  if (outcome == JobState::kDone) job.result_.image = std::move(image);
  job.finish_locked(outcome);
}

}  // namespace sarbp::service
