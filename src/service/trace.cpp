#include "service/trace.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <thread>
#include <tuple>

#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "geometry/grid.h"
#include "geometry/trajectory.h"
#include "sim/collector.h"
#include "sim/scene.h"

namespace sarbp::service {
namespace {

// --- minimal JSON subset reader (objects, arrays, strings, numbers) ------

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    ensure(pos_ < text_.size() && text_[pos_] == c,
           std::string("trace JSON: expected '") + c + "' at offset " +
               std::to_string(pos_));
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    ensure(pos_ < text_.size(), "trace JSON: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  [[nodiscard]] double number() {
    skip_ws();
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(text_.substr(pos_), &used);
    } catch (...) {
      ensure(false, "trace JSON: expected a number at offset " +
                        std::to_string(pos_));
    }
    pos_ += used;
    return value;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

Priority parse_priority(const std::string& name) {
  if (name == "high") return Priority::kHigh;
  if (name == "normal") return Priority::kNormal;
  if (name == "low") return Priority::kLow;
  ensure(false, "trace JSON: unknown priority \"" + name + "\"");
  return Priority::kNormal;
}

TraceEntry parse_entry(JsonCursor& cur) {
  TraceEntry entry;
  cur.expect('{');
  if (!cur.consume('}')) {
    do {
      const std::string key = cur.string();
      cur.expect(':');
      if (key == "ix") {
        entry.image = static_cast<Index>(cur.number());
      } else if (key == "pulses") {
        entry.pulses = static_cast<Index>(cur.number());
      } else if (key == "block") {
        entry.block = static_cast<Index>(cur.number());
      } else if (key == "priority") {
        entry.priority = parse_priority(cur.string());
      } else if (key == "scene") {
        entry.scene = static_cast<std::uint64_t>(cur.number());
      } else if (key == "repeat") {
        entry.repeat = static_cast<int>(cur.number());
      } else if (key == "delay_ms") {
        entry.delay_ms = cur.number();
      } else if (key == "deadline_ms") {
        entry.deadline_ms = cur.number();
      } else if (key == "tenant") {
        entry.tenant = cur.string();
      } else if (key == "stream") {
        entry.stream = static_cast<std::uint64_t>(cur.number());
      } else if (key == "chunk") {
        entry.chunk = static_cast<Index>(cur.number());
      } else if (key == "window") {
        entry.window = static_cast<Index>(cur.number());
      } else if (key == "reanchor") {
        entry.reanchor = static_cast<int>(cur.number());
      } else {
        ensure(false, "trace JSON: unknown request key \"" + key + "\"");
      }
    } while (cur.consume(','));
    cur.expect('}');
  }
  ensure(entry.image > 0 && entry.pulses > 0 && entry.block > 0 &&
             entry.repeat > 0,
         "trace JSON: request fields must be positive");
  ensure(entry.chunk >= 0 && entry.window >= 0 && entry.reanchor >= 0,
         "trace JSON: streaming fields must be non-negative");
  ensure(entry.stream != 0 ||
             (entry.chunk == 0 && entry.window == 0 && entry.reanchor == 0),
         "trace JSON: chunk/window/reanchor require a nonzero stream");
  return entry;
}

/// Simulated collection for one (scene, image, pulses): a cluster scene on
/// a perturbed circular orbit — small but physically plausible, so ASR bins
/// land in range and plans differ between scene seeds.
sim::PhaseHistory synthesize_collection(std::uint64_t scene, Index image,
                                        Index pulses) {
  Rng rng(scene * 1000003ULL + 17);
  const geometry::ImageGrid grid(image, image, 0.5);
  geometry::OrbitParams orbit;
  orbit.radius_m = 40000.0;
  orbit.altitude_m = 8000.0;
  orbit.angular_rate_rad_s = 0.02;
  orbit.prf_hz = 500.0;
  // Distinct scenes look at the arc from different angles, so their pulse
  // geometries (and plan signatures) genuinely differ.
  orbit.start_angle_rad = 0.05 * static_cast<double>(scene % 97);
  geometry::TrajectoryErrorModel errors;
  errors.perturbation_sigma_m = 0.05;
  const auto poses = geometry::circular_orbit(orbit, errors, pulses, rng);

  sim::ClusterSceneParams scene_params;
  scene_params.clusters = 3;
  scene_params.reflectors_per_cluster = 4;
  const auto reflectors = sim::make_cluster_scene(grid, scene_params, rng);

  sim::CollectorParams collector;
  return sim::collect(collector, grid, reflectors, poses, rng);
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(std::llround(
      q * static_cast<double>(sorted.size() - 1)));
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

Trace parse_trace_json(const std::string& json) {
  JsonCursor cur(json);
  Trace trace;
  cur.expect('{');
  bool saw_schema = false;
  do {
    const std::string key = cur.string();
    cur.expect(':');
    if (key == "schema") {
      const std::string schema = cur.string();
      ensure(schema == Trace::kSchemaName,
             "trace JSON: schema mismatch (got \"" + schema + "\", want \"" +
                 Trace::kSchemaName + "\")");
      saw_schema = true;
    } else if (key == "requests") {
      cur.expect('[');
      if (!cur.consume(']')) {
        do {
          trace.requests.push_back(parse_entry(cur));
        } while (cur.consume(','));
        cur.expect(']');
      }
    } else {
      ensure(false, "trace JSON: unknown top-level key \"" + key + "\"");
    }
  } while (cur.consume(','));
  cur.expect('}');
  ensure(saw_schema, "trace JSON: missing \"schema\"");
  return trace;
}

std::string to_json(const Trace& trace) {
  std::string out = "{\n  \"schema\": \"";
  out += Trace::kSchemaName;
  out += "\",\n  \"requests\": [";
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const auto& e = trace.requests[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"ix\": %lld, \"pulses\": %lld, \"block\": %lld, "
                  "\"priority\": \"%s\", \"scene\": %llu, \"repeat\": %d, "
                  "\"delay_ms\": %g, \"deadline_ms\": %g",
                  i == 0 ? "" : ",", static_cast<long long>(e.image),
                  static_cast<long long>(e.pulses),
                  static_cast<long long>(e.block), priority_name(e.priority),
                  static_cast<unsigned long long>(e.scene), e.repeat,
                  e.delay_ms, e.deadline_ms);
    out += buf;
    if (!e.tenant.empty()) {
      out += ", \"tenant\": \"" + e.tenant + "\"";
    }
    if (e.stream != 0) {
      // Emitted only for streaming entries, so pre-extension traces
      // round-trip byte-identically.
      char stream_buf[160];
      std::snprintf(stream_buf, sizeof(stream_buf),
                    ", \"stream\": %llu, \"chunk\": %lld, \"window\": %lld, "
                    "\"reanchor\": %d",
                    static_cast<unsigned long long>(e.stream),
                    static_cast<long long>(e.chunk),
                    static_cast<long long>(e.window), e.reanchor);
      out += stream_buf;
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

Trace make_repeated_scene_trace(int scenes, int repeats, Index image,
                                Index pulses, Index block) {
  ensure(scenes > 0 && repeats > 0, "make_repeated_scene_trace: counts must be positive");
  Trace trace;
  static constexpr Priority kCycle[] = {Priority::kHigh, Priority::kNormal,
                                        Priority::kLow};
  int n = 0;
  // Round-robin over scenes so hits interleave with misses, the way a
  // multi-tenant front end interleaves users.
  for (int r = 0; r < repeats; ++r) {
    for (int s = 0; s < scenes; ++s) {
      TraceEntry entry;
      entry.image = image;
      entry.pulses = pulses;
      entry.block = block;
      entry.scene = static_cast<std::uint64_t>(s + 1);
      entry.priority = kCycle[n++ % 3];
      entry.tenant = "tenant-" + std::to_string(s + 1);
      trace.requests.push_back(entry);
    }
  }
  return trace;
}

Trace make_streaming_trace(int streams, int pushes, Index image, Index pulses,
                           Index block, Index chunk, Index window,
                           int reanchor) {
  ensure(streams > 0 && pushes > 0,
         "make_streaming_trace: counts must be positive");
  ensure(chunk > 0 && window > 0 && reanchor >= 0,
         "make_streaming_trace: bad session geometry");
  Trace trace;
  // Round-robin over sessions, the way concurrent collectors interleave.
  for (int p = 0; p < pushes; ++p) {
    for (int s = 0; s < streams; ++s) {
      TraceEntry entry;
      entry.image = image;
      entry.pulses = pulses;
      entry.block = block;
      entry.scene = static_cast<std::uint64_t>(s + 1);
      entry.tenant = "stream-" + std::to_string(s + 1);
      entry.stream = static_cast<std::uint64_t>(s + 1);
      entry.chunk = chunk;
      entry.window = window;
      entry.reanchor = reanchor;
      trace.requests.push_back(entry);
    }
  }
  return trace;
}

ReplayStats replay_trace(const Trace& trace, ImageFormationService& service,
                         StreamReplayer* streams) {
  // One synthesis per distinct collection; requests alias it shared.
  std::map<std::tuple<std::uint64_t, Index, Index>,
           std::shared_ptr<const sim::PhaseHistory>>
      collections;
  for (const auto& entry : trace.requests) {
    ensure(entry.stream == 0 || streams != nullptr,
           "replay_trace: trace has streaming entries but no StreamReplayer");
    const auto key = std::make_tuple(entry.scene, entry.image, entry.pulses);
    if (collections.find(key) == collections.end()) {
      collections[key] = std::make_shared<const sim::PhaseHistory>(
          synthesize_collection(entry.scene, entry.image, entry.pulses));
    }
  }

  ReplayStats stats;
  std::vector<std::shared_ptr<JobHandle>> handles;
  Timer wall;
  for (const auto& entry : trace.requests) {
    for (int r = 0; r < entry.repeat; ++r) {
      if (entry.delay_ms > 0.0) {
        // Open-loop arrival pacing, not a wait for another thread's state.
        // lint: allow(sleep-poll) -- pacing; nothing could notify this wait
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(entry.delay_ms));
      }
      if (entry.stream != 0) {
        streams->ingest(entry, collections[std::make_tuple(
                                 entry.scene, entry.image, entry.pulses)]);
        continue;
      }
      ImageFormationRequest request;
      request.grid = geometry::ImageGrid(entry.image, entry.image, 0.5);
      request.pulses =
          collections[std::make_tuple(entry.scene, entry.image, entry.pulses)];
      request.asr_block_w = request.asr_block_h = entry.block;
      request.priority = entry.priority;
      request.tenant = entry.tenant;
      if (entry.deadline_ms != 0.0) {
        // The trace stores the deadline *relative* to submission, so the
        // absolute point is reconstructed here. A negative offset is a
        // deadline already in the past at submission (replayed faithfully
        // as an immediate expiry), not "no deadline" — only 0 means none.
        request.deadline = std::chrono::steady_clock::now() +
                           std::chrono::microseconds(static_cast<long long>(
                               entry.deadline_ms * 1000.0));
      }
      auto outcome = service.submit(std::move(request));
      if (outcome.admitted()) {
        ++stats.submitted;
        handles.push_back(std::move(outcome.handle));
      } else {
        ++stats.rejected;
      }
    }
  }

  std::vector<double> latencies;
  double setup_hit_sum = 0.0;
  double setup_miss_sum = 0.0;
  for (const auto& handle : handles) {
    const JobResult& result = handle->wait();
    switch (result.state) {
      case JobState::kDone:
        ++stats.done;
        latencies.push_back(result.latency_seconds);
        if (result.plan_cache_hit) {
          ++stats.plan_hits;
          setup_hit_sum += result.setup_seconds;
        } else {
          ++stats.plan_misses;
          setup_miss_sum += result.setup_seconds;
        }
        break;
      case JobState::kFailed: ++stats.failed; break;
      case JobState::kCancelled: ++stats.cancelled; break;
      case JobState::kExpired: ++stats.expired; break;
      default: break;
    }
  }
  if (streams != nullptr) {
    // Drains every session (updates still in flight complete), so the wall
    // clock covers streaming work just as it covers the handle waits.
    const StreamReplayer::Totals totals = streams->finish();
    stats.streams = totals.streams;
    stats.stream_pushes = totals.pushes;
    stats.stream_updates = totals.updates;
    stats.stream_reanchors = totals.reanchors;
    stats.stream_cache_hits = totals.cache_hits;
    stats.stream_dropped = totals.dropped;
  }
  stats.wall_seconds = wall.seconds();
  if (stats.wall_seconds > 0.0) {
    stats.throughput_jobs_per_s =
        static_cast<double>(stats.done) / stats.wall_seconds;
  }
  std::sort(latencies.begin(), latencies.end());
  stats.latency_p50_s = percentile(latencies, 0.50);
  stats.latency_p90_s = percentile(latencies, 0.90);
  stats.latency_p99_s = percentile(latencies, 0.99);
  if (stats.plan_hits > 0) {
    stats.mean_setup_hit_s = setup_hit_sum / static_cast<double>(stats.plan_hits);
  }
  if (stats.plan_misses > 0) {
    stats.mean_setup_miss_s =
        setup_miss_sum / static_cast<double>(stats.plan_misses);
  }
  return stats;
}

}  // namespace sarbp::service
