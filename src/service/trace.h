// Request traces for the job service: a small JSON schema describing a
// stream of image-formation requests, a parser/serializer for it, and a
// replayer that synthesizes the referenced collections, submits against a
// live service with the recorded pacing, and reports throughput/latency.
//
// Trace schema ("sarbp.trace.v1"):
//   {
//     "schema": "sarbp.trace.v1",
//     "requests": [
//       { "ix": 96, "pulses": 48, "block": 32, "priority": "high",
//         "scene": 1, "repeat": 4, "delay_ms": 0.0, "deadline_ms": 0.0,
//         "tenant": "alpha" },
//       ...
//     ]
//   }
// `scene` seeds the simulated collection geometry: entries sharing
// (scene, ix, pulses) reuse the same phase history, which is exactly the
// repeated-scene case the plan cache exists for. `repeat` expands one
// entry into that many consecutive submissions. `deadline_ms` is the
// completion deadline *relative to submission*: 0 means no deadline, and a
// negative value is a deadline already past at submission (the job expires
// immediately — replayed as recorded, not dropped). `delay_ms` is the
// inter-arrival gap before each submission.
//
// Streaming extension (schema-compatible: the fields are optional and a
// v1 reader that rejects unknown keys only sees them in traces that use
// them): a request with a nonzero `stream` is a *push* into the
// sliding-aperture streaming session with that id instead of a one-shot
// formation job. The first entry of a stream fixes the session's
// configuration — `ix`/`block` its geometry, `chunk` the sub-aperture
// chunk size in pulses, `window` the aperture width in chunks, `reanchor`
// the re-anchor cadence in updates, and `priority`/`tenant`/`deadline_ms`
// the per-update service parameters. Each entry then pushes `pulses`
// pulses of its `scene`'s collection (`repeat`/`delay_ms` pace the pushes
// exactly like submissions). The service-layer replayer drives streaming
// entries through a StreamReplayer so this module needs no dependency on
// the streaming library; see streaming/trace_replay.h.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "sim/phase_history.h"

namespace sarbp::service {

struct TraceEntry {
  Index image = 96;        ///< square grid edge ("ix")
  Index pulses = 48;
  Index block = 32;        ///< ASR block edge
  Priority priority = Priority::kNormal;
  std::uint64_t scene = 1; ///< collection-geometry seed
  int repeat = 1;
  double delay_ms = 0.0;
  double deadline_ms = 0.0;
  std::string tenant;
  /// Nonzero marks a streaming push: the sliding-aperture session id this
  /// entry feeds (see the schema comment above). 0 = a formation request.
  std::uint64_t stream = 0;
  Index chunk = 0;   ///< stream sessions: sub-aperture chunk, pulses
  Index window = 0;  ///< stream sessions: aperture width, chunks
  int reanchor = 0;  ///< stream sessions: re-anchor cadence, updates
};

struct Trace {
  static constexpr const char* kSchemaName = "sarbp.trace.v1";
  std::vector<TraceEntry> requests;
};

/// Parses a "sarbp.trace.v1" document. Throws PreconditionError on
/// malformed input, unknown keys, or a schema mismatch.
[[nodiscard]] Trace parse_trace_json(const std::string& json);

/// Serializes a trace; round-trips through parse_trace_json.
[[nodiscard]] std::string to_json(const Trace& trace);

/// Canonical repeated-scene workload: `scenes` distinct collection
/// geometries, each requested `repeats` times, interleaved round-robin so
/// cache hits interleave with misses; priorities cycle high/normal/low.
[[nodiscard]] Trace make_repeated_scene_trace(int scenes, int repeats,
                                              Index image, Index pulses,
                                              Index block);

/// Canonical streaming workload: `streams` concurrent sessions over
/// distinct scenes, each receiving `pushes` pushes of `pulses` pulses,
/// interleaved round-robin.
[[nodiscard]] Trace make_streaming_trace(int streams, int pushes, Index image,
                                         Index pulses, Index block,
                                         Index chunk, Index window,
                                         int reanchor);

struct ReplayStats {
  std::size_t submitted = 0;
  std::size_t rejected = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t expired = 0;
  double wall_seconds = 0.0;
  double throughput_jobs_per_s = 0.0;  ///< completed jobs / wall
  double latency_p50_s = 0.0;
  double latency_p90_s = 0.0;
  double latency_p99_s = 0.0;
  double mean_setup_hit_s = 0.0;   ///< plan-cache hits: mean setup time
  double mean_setup_miss_s = 0.0;  ///< plan-cache misses: mean setup time
  std::size_t plan_hits = 0;
  std::size_t plan_misses = 0;
  // Streaming entries (zero when the trace has none).
  std::size_t streams = 0;            ///< sessions opened
  std::size_t stream_pushes = 0;      ///< pushes delivered
  std::size_t stream_updates = 0;     ///< incremental updates completed
  std::size_t stream_reanchors = 0;   ///< of which full re-anchors
  std::size_t stream_cache_hits = 0;  ///< sub-aperture cache hits
  std::size_t stream_dropped = 0;     ///< updates failed/cancelled/expired/rejected
};

/// Sink the replayer drives for streaming entries, so this module needs no
/// dependency on the streaming library (which depends on this one). The
/// streaming implementation is streaming::TraceStreamReplayer. ingest() is
/// called once per expanded repetition, after the entry's delay; finish()
/// once after the last trace submission — it must drain the sessions and
/// report the totals folded into ReplayStats.
class StreamReplayer {
 public:
  virtual ~StreamReplayer() = default;

  struct Totals {
    std::size_t streams = 0;
    std::size_t pushes = 0;
    std::size_t updates = 0;
    std::size_t reanchors = 0;
    std::size_t cache_hits = 0;
    std::size_t dropped = 0;
  };

  virtual void ingest(const TraceEntry& entry,
                    std::shared_ptr<const sim::PhaseHistory> pulses) = 0;
  virtual Totals finish() = 0;
};

/// Simulates each distinct (scene, image, pulses) collection once, then
/// replays the trace against `service` with the recorded pacing and blocks
/// until every submitted job is terminal. Rejected submissions are counted,
/// not retried. Streaming entries are routed to `streams`; a trace that
/// contains any while `streams` is null throws PreconditionError.
ReplayStats replay_trace(const Trace& trace, ImageFormationService& service,
                         StreamReplayer* streams = nullptr);

}  // namespace sarbp::service
