// Multi-tenant image-formation job service: a weighted-fair scheduler with
// admission control and per-tenant quotas in front of either a local
// work-stealing tile executor (shards <= 1) or a sharded cluster of rank
// executors behind a front-end router (shards >= 2), plus an LRU
// formation-plan cache, cooperative cancellation/deadline checks between
// ASR blocks, and a graceful drain (DESIGN.md §8, §9, §11).
//
// Scheduling structure: admitted jobs enter a FairScheduler — strict
// priority across classes, start-time fair queueing across tenants within
// a class, FIFO within a tenant (fair_queue.h). In local mode, idle
// executor workers claim jobs straight from the scheduler and decompose
// each into block-range tasks on their own deque; other workers claim
// further jobs first and steal tasks only when no whole job is ready. In
// sharded mode a route thread claims jobs and hands them to the
// ShardRouter, which partitions each across the cluster ranks
// (shard_router.h) and gathers the partial tiles asynchronously.
//
// Overload semantics: admission is bounded by `max_pending` jobs across
// all classes. A submit against a full pending set waits up to
// `admission_grace` for space, then is rejected with kQueueFull; a submit
// that would push a tenant past its quota is rejected kQuotaExceeded
// immediately (the backlog is the tenant's own — waiting cannot help).
//
// Shutdown: drain() stops admission, lets the workers (or the router)
// finish every queued job, and joins them. The destructor drains, so
// every JobHandle is resolved before the service dies and wait() can
// never block on a dead service — including when a shard rank died: the
// cluster abort fails the affected jobs instead of wedging them.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "exec/executor.h"
#include "exec/tile_backend.h"
#include "obs/metrics.h"
#include "service/fair_queue.h"
#include "service/job.h"
#include "service/plan_cache.h"
#include "service/shard_router.h"

namespace sarbp::service {

/// Why a submit was turned away.
enum class RejectReason {
  kNone,
  kQueueFull,      ///< pending set at max_pending for longer than the grace
  kShuttingDown,   ///< drain()/destructor already started
  kInvalidRequest, ///< no pulses, empty grid, or a bad block size
  kQuotaExceeded,  ///< the tenant's queued-job quota is exhausted
};
inline constexpr int kNumRejectReasons = 5;

/// Exhaustive by construction: no default and no fall-through return, so
/// adding a RejectReason without naming it is a compile error under
/// -Werror (-Wswitch/-Wreturn-type), not a silent "?" at runtime.
[[nodiscard]] constexpr const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShuttingDown: return "shutting_down";
    case RejectReason::kInvalidRequest: return "invalid_request";
    case RejectReason::kQuotaExceeded: return "quota_exceeded";
  }
  // Unreachable for in-range enumerators; keeps UB away from casts.
  return "?";
}

struct SubmitOutcome {
  std::shared_ptr<JobHandle> handle;  ///< null when rejected
  RejectReason reject = RejectReason::kNone;

  [[nodiscard]] bool admitted() const { return handle != nullptr; }
};

struct ServiceConfig {
  /// Width of the local work-stealing tile executor (shards <= 1 mode).
  int workers = 2;
  /// Disables stealing when false: each job runs entirely on the worker
  /// that claimed it (the pre-executor serial behaviour; bench baseline).
  bool steal = true;
  /// Task fan-out per job; 0 = auto (~2 tasks per worker, capped at the
  /// plan's block count).
  Index tile_tasks = 0;
  /// Admission bound: maximum jobs queued (not yet claimed) across all
  /// priority classes.
  std::size_t max_pending = 64;
  /// How long submit() may wait for pending space before rejecting with
  /// kQueueFull. Zero = reject immediately (pure admission control).
  std::chrono::milliseconds admission_grace{0};
  /// Formation-plan LRU capacity in entries; 0 disables caching (every
  /// request rebuilds its plan — the bench's baseline mode).
  std::size_t plan_cache_capacity = 8;
  /// Test/ops hook: when true the workers hold at a gate until resume(),
  /// so a batch of requests can be staged and released atomically.
  bool start_paused = false;
  /// Test hook: invoked at every inter-block checkpoint before the
  /// cancellation/deadline checks (on every shard, in sharded mode).
  std::function<void()> inter_block_hook;
  /// Metrics sink; null selects the process-global obs::registry(). Must
  /// outlive the service and every handle it issued.
  obs::Registry* metrics = nullptr;

  // --- tile compute backends (local mode) --------------------------------
  /// Backends the plan-replay tasks target, with blocks routed by the §5.3
  /// dynamic split from observed per-backend rates (exec/tile_backend.h).
  /// Empty keeps the direct scalar-sweep path — byte-identical to the
  /// pre-backend executor, as is a list holding only kHostScalar entries.
  /// Ignored in sharded mode (shards >= 2), where the ranks replay plans
  /// themselves.
  std::vector<exec::BackendSpec> backends;
  /// EMA weight for each backend's observed-rate tracker.
  double backend_rate_smoothing = 0.5;

  // --- weighted-fair scheduling ------------------------------------------
  /// Policy for tenants without an explicit entry (and the empty tenant).
  TenantPolicy default_tenant_policy;
  /// Per-tenant weight/quota overrides.
  std::map<std::string, TenantPolicy> tenant_policies;

  // --- sharding (>= 2 activates the cluster-backed router) ---------------
  /// Cluster width. <= 1 keeps the single-node executor path.
  int shards = 1;
  /// Tile-executor width inside each shard rank.
  int shard_workers = 1;
  /// Jobs at most this many region pixels route whole to one shard
  /// (byte-identical to the single-node path).
  Index shard_small_pixels = 64 * 64;
  ShardStrategy shard_strategy = ShardStrategy::kAuto;
  /// Fault-injection seam: runs on a shard rank before each dispatch;
  /// throwing kills the rank and aborts the cluster (tests).
  std::function<void(int shard, std::uint64_t seq)> shard_fault_hook;
};

/// The job service. Instrumentation (per configured registry):
///   counters   service.jobs.submitted, service.jobs.{done,failed,
///              cancelled,expired}, service.rejected.<reject_reason_name>,
///              tenant.<t>.{submitted,rejected.quota,jobs.<state>},
///              shard.jobs.{single,pulse_scatter,grid_split},
///              shard.parts.dispatched
///   gauges     service.pending, service.workers.busy, shard.jobs.inflight
///   histograms service.job.queue_s, service.job.setup_s,
///              service.job.compute_s, service.job.latency_s.<priority>,
///              tenant.<t>.latency_s, shard.job.gather_s
///   queues     queue.service.gather.* (sharded mode)
///   executors  exec.* (local mode) / shard.<k>.exec.* (per shard rank)
///   plan cache service.plan_cache.* (see plan_cache.h)
class ImageFormationService {
 public:
  explicit ImageFormationService(ServiceConfig config);
  ~ImageFormationService();

  ImageFormationService(const ImageFormationService&) = delete;
  ImageFormationService& operator=(const ImageFormationService&) = delete;

  /// Admission-controlled submit. On success the returned handle tracks
  /// the job through its lifecycle; on rejection `reject` says why and no
  /// handle exists.
  SubmitOutcome submit(ImageFormationRequest request);

  /// Opens the start_paused gate. Idempotent; no-op when not paused.
  void resume();

  /// Stops admission, runs every queued job to a terminal state, joins the
  /// workers. Idempotent; implied by the destructor.
  void drain();

  [[nodiscard]] obs::Registry& metrics() const { return *metrics_; }
  [[nodiscard]] const PlanCache& plan_cache() const { return plan_cache_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] bool sharded() const { return router_ != nullptr; }

 private:
  using JobPtr = std::shared_ptr<JobHandle>;

  /// Counts the rejection in service.rejected.<name> and wraps it.
  SubmitOutcome reject(RejectReason reason);

  /// The local executor's pull-model source: claims the next job from the
  /// fair scheduler and turns it into a task group.
  exec::GroupPtr next_group(int worker, std::chrono::microseconds budget,
                            bool* end);
  /// Runs the claim-side of a job (queue accounting, deadline check,
  /// RUNNING transition, plan setup) and builds its plan-replay group.
  /// Null when the job resolved terminally without any compute.
  exec::GroupPtr build_job_group(const JobPtr& job);
  /// Sharded mode: claims jobs and hands them to the router until the
  /// scheduler reports end-of-stream.
  void route_loop();
  void wait_gate();

  ServiceConfig config_;
  obs::Registry* metrics_;
  PlanCache plan_cache_;

  std::unique_ptr<FairScheduler> sched_;

  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> completion_seq_{0};

  Mutex gate_mutex_{SARBP_LOCK_LEVEL("service.gate")};
  CondVar gate_cv_;
  bool gate_open_ SARBP_GUARDED_BY(gate_mutex_);

  obs::Counter* submitted_ = nullptr;
  obs::Gauge* busy_gauge_ = nullptr;
  obs::Histogram* queue_s_ = nullptr;
  obs::Histogram* setup_s_ = nullptr;
  obs::Histogram* compute_s_ = nullptr;

  /// Null unless config_.backends is non-empty (local mode); shared with
  /// every plan-replay group so observed rates outlive individual jobs.
  std::shared_ptr<exec::BackendSet> backend_set_;

  /// Constructed last: their workers claim from sched_ and touch every
  /// member above. Destroyed first (drain) for the same reason. Exactly
  /// one of exec_ (local) / router_ + route_thread_ (sharded) is live.
  std::unique_ptr<exec::TileExecutor> exec_;
  std::unique_ptr<ShardRouter> router_;
  std::thread route_thread_;
};

}  // namespace sarbp::service
