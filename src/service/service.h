// Multi-tenant image-formation job service: a work-stealing tile executor
// behind a strict-priority, FIFO-within-priority scheduler with admission
// control, an LRU formation-plan cache, cooperative cancellation/deadline
// checks between ASR blocks, and a graceful drain built on the
// BoundedQueue close protocol (DESIGN.md §service, §executor).
//
// Scheduling structure: one BoundedQueue per priority class holds the
// admitted jobs; a token queue (one token per admitted job) is what idle
// executor workers poll. A worker that wins a token is guaranteed at least
// one job is queued somewhere, and always takes the highest-priority job
// available at that instant — so a high-priority submission never waits
// behind queued lower-priority work, only behind already-running jobs.
// The claimed job is decomposed into block-range tasks on the claiming
// worker's deque; other workers claim further jobs first and steal tasks
// only when no whole job is ready, so many small jobs still spread
// one-per-worker while a single big job fans out across the pool.
//
// Overload semantics: admission is bounded by `max_pending` jobs across
// all classes. A submit against a full pending set waits up to
// `admission_grace` for space, then is rejected with kQueueFull — callers
// see the rejection immediately instead of unbounded queueing (the
// serving-layer stability property; cf. bounded run queues in the
// real-time SAR serving literature).
//
// Shutdown: drain() stops admission, lets the workers finish every queued
// job (BoundedQueue close-then-drain), and joins them. The destructor
// drains, so every JobHandle is resolved before the service dies and
// wait() can never block on a dead service.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/thread_annotations.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "service/job.h"
#include "service/plan_cache.h"

namespace sarbp::service {

/// Why a submit was turned away.
enum class RejectReason {
  kNone,
  kQueueFull,      ///< pending set at max_pending for longer than the grace
  kShuttingDown,   ///< drain()/destructor already started
  kInvalidRequest, ///< no pulses, empty grid, or a bad block size
};

[[nodiscard]] constexpr const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShuttingDown: return "shutting_down";
    case RejectReason::kInvalidRequest: return "invalid_request";
  }
  return "?";
}

struct SubmitOutcome {
  std::shared_ptr<JobHandle> handle;  ///< null when rejected
  RejectReason reject = RejectReason::kNone;

  [[nodiscard]] bool admitted() const { return handle != nullptr; }
};

struct ServiceConfig {
  /// Width of the shared work-stealing tile executor. Jobs are claimed
  /// one per idle worker (job-level concurrency, as before), but each
  /// claimed job is decomposed into block-range tasks that otherwise-idle
  /// workers steal — so one large job can saturate the whole pool.
  int workers = 2;
  /// Disables stealing when false: each job runs entirely on the worker
  /// that claimed it (the pre-executor serial behaviour; bench baseline).
  bool steal = true;
  /// Task fan-out per job; 0 = auto (~2 tasks per worker, capped at the
  /// plan's block count).
  Index tile_tasks = 0;
  /// Admission bound: maximum jobs queued (not yet dequeued by a worker)
  /// across all priority classes.
  std::size_t max_pending = 64;
  /// How long submit() may wait for pending space before rejecting with
  /// kQueueFull. Zero = reject immediately (pure admission control).
  std::chrono::milliseconds admission_grace{0};
  /// Formation-plan LRU capacity in entries; 0 disables caching (every
  /// request rebuilds its plan — the bench's baseline mode).
  std::size_t plan_cache_capacity = 8;
  /// Test/ops hook: when true the workers hold at a gate until resume(),
  /// so a batch of requests can be staged and released atomically.
  bool start_paused = false;
  /// Test hook: invoked at every inter-block checkpoint before the
  /// cancellation/deadline checks. Lets tests synchronize with a RUNNING
  /// job deterministically. Null in production.
  std::function<void()> inter_block_hook;
  /// Metrics sink; null selects the process-global obs::registry(). Must
  /// outlive the service and every handle it issued.
  obs::Registry* metrics = nullptr;
};

/// The job service. Instrumentation (per configured registry):
///   counters   service.jobs.submitted, service.jobs.{done,failed,
///              cancelled,expired}, service.rejected.{queue_full,
///              shutting_down,invalid_request}
///   gauges     service.pending, service.workers.busy
///   histograms service.job.queue_s, service.job.setup_s,
///              service.job.compute_s, service.job.latency_s.<priority>
///   queues     queue.service.ready.<priority>.*, queue.service.tokens.*
///   plan cache service.plan_cache.* (see plan_cache.h)
class ImageFormationService {
 public:
  explicit ImageFormationService(ServiceConfig config);
  ~ImageFormationService();

  ImageFormationService(const ImageFormationService&) = delete;
  ImageFormationService& operator=(const ImageFormationService&) = delete;

  /// Admission-controlled submit. On success the returned handle tracks
  /// the job through its lifecycle; on rejection `reject` says why and no
  /// handle exists.
  SubmitOutcome submit(ImageFormationRequest request);

  /// Opens the start_paused gate. Idempotent; no-op when not paused.
  void resume();

  /// Stops admission, runs every queued job to a terminal state, joins the
  /// workers. Idempotent; implied by the destructor.
  void drain();

  [[nodiscard]] obs::Registry& metrics() const { return *metrics_; }
  [[nodiscard]] const PlanCache& plan_cache() const { return plan_cache_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  using JobPtr = std::shared_ptr<JobHandle>;

  /// The executor's pull-model source: claims the next admission token,
  /// takes the highest-priority job, and turns it into a task group.
  exec::GroupPtr next_group(int worker, std::chrono::microseconds budget,
                            bool* end);
  [[nodiscard]] JobPtr take_highest_priority();
  /// Runs the claim-side of a job (queue accounting, deadline check,
  /// RUNNING transition, plan setup) and builds its plan-replay group.
  /// Null when the job resolved terminally without any compute.
  exec::GroupPtr build_job_group(const JobPtr& job);
  void wait_gate();

  ServiceConfig config_;
  obs::Registry* metrics_;
  PlanCache plan_cache_;

  /// Admitted jobs per priority class (FIFO within a class).
  std::array<std::unique_ptr<BoundedQueue<JobPtr>>, kNumPriorities> ready_;
  /// One token per admitted job; what the workers block on. Closed by
  /// drain(): workers consume the backlog, then see end-of-stream.
  BoundedQueue<int> tokens_;

  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> completion_seq_{0};

  Mutex gate_mutex_;
  CondVar gate_cv_;
  bool gate_open_ SARBP_GUARDED_BY(gate_mutex_);

  obs::Counter* submitted_ = nullptr;
  obs::Counter* rejected_full_ = nullptr;
  obs::Counter* rejected_shutdown_ = nullptr;
  obs::Counter* rejected_invalid_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* busy_gauge_ = nullptr;
  obs::Histogram* queue_s_ = nullptr;
  obs::Histogram* setup_s_ = nullptr;
  obs::Histogram* compute_s_ = nullptr;

  /// Constructed last: its workers call next_group(), which touches every
  /// member above. Destroyed first (drain) for the same reason.
  std::unique_ptr<exec::TileExecutor> exec_;
};

}  // namespace sarbp::service
