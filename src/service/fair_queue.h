// Per-tenant weighted-fair scheduler with quotas, layered on the service's
// strict-priority classes (DESIGN.md §8).
//
// Structure: one scheduling class per Priority; inside a class, one FIFO
// deque per tenant plus start-time fair queueing (SFQ) tags. At admission
// a job is stamped with a virtual finish time
//
//     start  = max(class virtual time, tenant's last finish tag)
//     finish = start + cost / weight
//
// where cost is the job's predicted work (region pixels × pulses,
// normalized) and weight the tenant's configured share. claim() serves
// classes in strict priority order and, within a class, the tenant whose
// head job has the minimal finish tag (ties broken by tenant name, so the
// schedule is deterministic). One tenant, or equal-weight tenants with
// equal-cost jobs, degenerates to plain FIFO — the pre-sharding behaviour.
//
// Quotas bound a tenant's share of the pending set: a submit that would
// push the tenant above its quota is rejected kQuotaExceeded immediately
// (no grace — the backlog is the tenant's own, waiting cannot help
// against itself). The global max_pending bound keeps its grace-then-
// kQueueFull semantics.
//
// This single structure replaces the previous ready-queues + token-queue
// pair: admission, claim, and close/drain share one mutex, so the
// submit-vs-drain races the token design had to patch up cannot occur.
// close() keeps the drain guarantee — queued jobs are still claimable
// until the backlog is empty, then claim() reports end-of-stream.
#pragma once

#include <array>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "service/job.h"

namespace sarbp::service {

/// Per-tenant scheduling policy.
struct TenantPolicy {
  /// Relative share of a scheduling class; higher drains faster.
  double weight = 1.0;
  /// Max jobs the tenant may have queued (not yet claimed) across all
  /// classes; 0 = unlimited.
  std::size_t quota = 0;
};

enum class AdmitResult { kAdmitted, kQueueFull, kQuotaExceeded, kClosed };

struct FairSchedulerConfig {
  std::size_t max_pending = 64;
  TenantPolicy default_policy;
  /// Explicit per-tenant overrides; any other tenant (including the empty
  /// tenant) uses default_policy.
  std::map<std::string, TenantPolicy> tenants;
  obs::Registry* metrics = nullptr;
};

class FairScheduler {
 public:
  using JobPtr = std::shared_ptr<JobHandle>;

  explicit FairScheduler(FairSchedulerConfig config);

  /// Admission. Quota violations reject immediately; a full pending set
  /// waits up to `grace` for space before rejecting kQueueFull. kClosed
  /// after close().
  AdmitResult submit(const JobPtr& job, std::chrono::milliseconds grace);

  /// Claims the next job by (priority, weighted-fair, FIFO) order,
  /// blocking up to `budget`. Null with *end set once closed and drained;
  /// null with *end untouched means "poll again".
  JobPtr claim(std::chrono::microseconds budget, bool* end);

  /// Stops admission. Queued jobs stay claimable (the drain guarantee).
  void close();

  [[nodiscard]] std::size_t pending() const;

 private:
  struct Entry {
    JobPtr job;
    double finish = 0.0;  ///< SFQ virtual finish tag
    double start = 0.0;
  };
  struct TenantQueue {
    std::deque<Entry> entries;
    double last_finish = 0.0;
  };
  struct ClassState {
    /// std::map: deterministic tie-break order over tenant names.
    std::map<std::string, TenantQueue> tenants;
    double vtime = 0.0;
    std::size_t jobs = 0;
  };

  [[nodiscard]] const TenantPolicy& policy_for(const std::string& tenant) const;
  [[nodiscard]] JobPtr pop_best_locked() SARBP_REQUIRES(mutex_);
  void update_gauge_locked() SARBP_REQUIRES(mutex_);

  FairSchedulerConfig config_;
  obs::Registry* metrics_;

  mutable Mutex mutex_{SARBP_LOCK_LEVEL("service.fair")};
  CondVar claim_cv_;   ///< signalled on admit and close
  CondVar space_cv_;   ///< signalled on claim (pending space freed)
  std::array<ClassState, kNumPriorities> classes_ SARBP_GUARDED_BY(mutex_);
  /// Queued-job count per tenant, across classes (the quota basis).
  std::map<std::string, std::size_t> tenant_queued_ SARBP_GUARDED_BY(mutex_);
  std::size_t pending_ SARBP_GUARDED_BY(mutex_) = 0;
  bool closed_ SARBP_GUARDED_BY(mutex_) = false;

  obs::Gauge* pending_gauge_ = nullptr;
};

}  // namespace sarbp::service
