// Formation plans and the LRU plan cache — the serving layer's answer to
// the repeated-scene workload: many requests forming the same grid from
// the same collection geometry (different priorities, tenants, or sample
// data) share one precomputation.
//
// A FormationPlan captures everything the ASR sweep needs that depends
// only on *geometry*, not on sample values: the block decomposition, the
// per-pulse loop order (wavefront orientation), and the per-(block, pulse)
// strength-reduction tables of paper Fig. 3(b) line 02. Building those
// tables is the per-request setup cost; replaying a cached plan skips it
// entirely, and because the executor drives the same inner sweep as the
// scalar kernel (kernel_asr_block.h) the image is bit-identical to the
// streaming path.
//
// Cache keying: (grid geometry, region, ASR block size, pulse-geometry
// signature). The signature hashes per-pulse positions/start ranges plus
// the sampling constants — two collections with equal trajectories hit the
// same plan even when their sample payloads differ.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"

#include "asr/block_plan.h"
#include "asr/tables.h"
#include "backprojection/soa_tile.h"
#include "common/region.h"
#include "exec/task_group.h"
#include "exec/tile_backend.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "geometry/wavefront.h"
#include "obs/metrics.h"
#include "sim/phase_history.h"

namespace sarbp::service {

/// FNV-1a over the per-pulse geometry (positions, start ranges) and the
/// sampling constants (count, samples per pulse, bin spacing, wavenumber)
/// — every input of the ASR tables except the sample values.
[[nodiscard]] std::uint64_t pulse_geometry_signature(
    const sim::PhaseHistory& history);

struct PlanKey {
  Index grid_w = 0;
  Index grid_h = 0;
  double spacing = 0.0;
  geometry::Vec3 centre;
  Region region;
  Index block_w = 0;
  Index block_h = 0;
  std::uint64_t pulse_signature = 0;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept;
};

[[nodiscard]] PlanKey make_plan_key(const geometry::ImageGrid& grid,
                                    const Region& region, Index block_w,
                                    Index block_h,
                                    const sim::PhaseHistory& history);

/// Precomputed setup for one (grid, region, block size, pulse geometry).
struct FormationPlan {
  PlanKey key;
  std::vector<asr::BlockSpec> blocks;
  std::vector<geometry::LoopOrder> pulse_order;  ///< [pulses]
  /// Per-(block, pulse) tables, block-major: tables[b * pulses + p].
  std::vector<asr::BlockTables> tables;
  std::size_t bytes = 0;  ///< approximate resident size (table payloads)

  [[nodiscard]] Index num_pulses() const {
    return static_cast<Index>(pulse_order.size());
  }
  [[nodiscard]] const asr::BlockTables& tables_for(std::size_t block,
                                                   Index pulse) const {
    return tables[block * pulse_order.size() + static_cast<std::size_t>(pulse)];
  }
};

/// Builds a plan from scratch — the cache-miss path, and the "cache off"
/// baseline the throughput bench compares against.
[[nodiscard]] std::shared_ptr<const FormationPlan> build_formation_plan(
    const geometry::ImageGrid& grid, const Region& region, Index block_w,
    Index block_h, const sim::PhaseHistory& history);

/// Replays a plan over `history`, accumulating into `tile` (shaped like the
/// plan's region). `checkpoint` runs before every block sweep; returning
/// false aborts the replay (cooperative cancellation / deadline expiry) and
/// the partially-formed tile must be discarded. Returns true on completion.
bool execute_plan(const FormationPlan& plan, const sim::PhaseHistory& history,
                  bp::SoaTile& tile, const std::function<bool()>& checkpoint);

/// Decomposes one plan replay into a TaskGroup for the tile executor: the
/// plan's blocks are split into contiguous block-range tasks that all
/// sweep into the shared region-sized `tile`. Blocks cover disjoint pixel
/// rectangles, so concurrent tasks never write the same element and the
/// result is byte-identical to a serial execute_plan() no matter how tasks
/// are scheduled or stolen — the accumulation order per pixel is always
/// the plan's pulse order within that pixel's block.
///
/// `checkpoint` keeps execute_plan's granularity: it is polled before
/// every block sweep (inside tasks) and again before each task starts
/// (by the executor); the first false aborts the whole group.
/// `tile_tasks` caps the fan-out; 0 = auto (~2 tasks per unit of
/// `parallelism`, never more than the block count). `on_complete` runs on
/// the worker that retires the last task — aborted groups must discard the
/// partially-swept tile there.
///
/// `[pulse_begin, pulse_end)` restricts the replay to a pulse range of the
/// plan (pulse_end == -1 means all pulses) — the pulse-scatter unit of the
/// sharded service: each shard replays its range of the same full-region
/// plan and the gather sums the partial tiles (shard-index order, the
/// documented reduction-order deviation from the single-node path).
///
/// `backends` (nullable) routes the plan's blocks across a BackendSet by
/// its §5.3 dynamic split: each backend gets a contiguous block range,
/// sub-divided into tasks proportional to its share, and each task's
/// measured sweep feeds the backend's observed-rate tracker. Null keeps
/// the direct scalar-sweep path — the exact PR 3 code — and a set holding
/// only scalar backends is still byte-identical to it (disjoint block
/// rectangles; same per-block pulse order).
[[nodiscard]] exec::GroupPtr make_plan_replay_group(
    std::shared_ptr<const FormationPlan> plan,
    std::shared_ptr<const sim::PhaseHistory> history, int parallelism,
    Index tile_tasks, std::shared_ptr<bp::SoaTile> tile,
    std::function<bool()> checkpoint,
    std::function<void(exec::TaskGroup&)> on_complete,
    Index pulse_begin = 0, Index pulse_end = -1,
    std::shared_ptr<exec::BackendSet> backends = nullptr);

/// Thread-safe LRU cache of formation plans.
///
/// A capacity of 0 disables retention: every lookup builds (and counts a
/// miss) — the knob the bench uses for its cache-off baseline. Lookups that
/// miss build *outside* the lock, so concurrent workers missing on the same
/// key may build duplicate plans; the last insert wins and the duplicates
/// are garbage-collected by shared_ptr. That trade keeps a slow build from
/// stalling unrelated hits.
///
/// Metrics (under the provided registry or the global one):
///   service.plan_cache.{hits,misses,evictions} counters,
///   service.plan_cache.{entries,bytes} gauges.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity, obs::Registry* metrics = nullptr);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the plan for the request's geometry, building it on a miss.
  /// `hit` (optional) reports whether the cache satisfied the lookup.
  std::shared_ptr<const FormationPlan> get_or_build(
      const geometry::ImageGrid& grid, const Region& region, Index block_w,
      Index block_h, const sim::PhaseHistory& history, bool* hit = nullptr);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  void insert_locked(std::shared_ptr<const FormationPlan> plan)
      SARBP_REQUIRES(mutex_);
  void update_gauges_locked() SARBP_REQUIRES(mutex_);

  const std::size_t capacity_;
  mutable Mutex mutex_{SARBP_LOCK_LEVEL("service.plan_cache")};
  /// Front = most recently used.
  std::list<std::shared_ptr<const FormationPlan>> lru_
      SARBP_GUARDED_BY(mutex_);
  std::unordered_map<PlanKey, decltype(lru_)::iterator, PlanKeyHash> index_
      SARBP_GUARDED_BY(mutex_);
  std::size_t bytes_ SARBP_GUARDED_BY(mutex_) = 0;

  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
};

}  // namespace sarbp::service
