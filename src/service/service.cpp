#include "service/service.h"

#include <exception>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/timer.h"

namespace sarbp::service {

ImageFormationService::ImageFormationService(ServiceConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : &obs::registry()),
      plan_cache_(config_.plan_cache_capacity, metrics_),
      gate_open_(!config_.start_paused) {
  ensure(config_.workers > 0, "ImageFormationService: workers must be positive");
  ensure(config_.max_pending > 0,
         "ImageFormationService: max_pending must be positive");

  FairSchedulerConfig sched_config;
  sched_config.max_pending = config_.max_pending;
  sched_config.default_policy = config_.default_tenant_policy;
  sched_config.tenants = config_.tenant_policies;
  sched_config.metrics = metrics_;
  sched_ = std::make_unique<FairScheduler>(std::move(sched_config));

  if constexpr (obs::kEnabled) {
    submitted_ = &metrics_->counter("service.jobs.submitted");
    busy_gauge_ = &metrics_->gauge("service.workers.busy");
    queue_s_ = &metrics_->histogram("service.job.queue_s");
    setup_s_ = &metrics_->histogram("service.job.setup_s");
    compute_s_ = &metrics_->histogram("service.job.compute_s");
  }

  if (config_.shards >= 2) {
    ShardRouterConfig router_config;
    router_config.shards = config_.shards;
    router_config.shard_workers = config_.shard_workers;
    router_config.steal = config_.steal;
    router_config.tile_tasks = config_.tile_tasks;
    router_config.small_job_pixels = config_.shard_small_pixels;
    router_config.strategy = config_.shard_strategy;
    router_config.gather_capacity = config_.max_pending;
    router_config.inter_block_hook = config_.inter_block_hook;
    router_config.shard_fault_hook = config_.shard_fault_hook;
    router_config.metrics = metrics_;
    router_config.plan_cache = &plan_cache_;
    router_ = std::make_unique<ShardRouter>(std::move(router_config));
    route_thread_ = std::thread([this] { route_loop(); });
  } else {
    if (!config_.backends.empty()) {
      backend_set_ = std::make_shared<exec::BackendSet>(
          config_.backends, config_.backend_rate_smoothing, metrics_);
    }
    exec::ExecOptions exec_options;
    exec_options.workers = config_.workers;
    exec_options.steal = config_.steal;
    exec_options.metrics = metrics_;
    exec_options.source = [this](int worker, std::chrono::microseconds budget,
                                 bool* end) {
      return next_group(worker, budget, end);
    };
    exec_ = std::make_unique<exec::TileExecutor>(std::move(exec_options));
  }
}

ImageFormationService::~ImageFormationService() { drain(); }

SubmitOutcome ImageFormationService::reject(RejectReason reason) {
  if constexpr (obs::kEnabled) {
    // Cold path; the by-name lookup keeps one registration site per
    // reason and the names mechanically tied to reject_reason_name.
    metrics_->counter(std::string("service.rejected.") +
                      reject_reason_name(reason))
        .add();
  }
  return {nullptr, reason};
}

SubmitOutcome ImageFormationService::submit(ImageFormationRequest request) {
  // order: acquire — pairs with drain()'s release store; a submitter that
  // observes the flag also observes the closed scheduler behind it.
  if (draining_.load(std::memory_order_acquire)) {
    return reject(RejectReason::kShuttingDown);
  }
  const Region region = request.effective_region();
  // Custom jobs bring their own compute, so pulses are optional (they are
  // only the fair scheduler's cost basis); formation jobs need them. The
  // geometry checks apply to both. Custom jobs cannot ride the sharded
  // path — an opaque factory has no rank-side replay.
  const bool needs_pulses = !request.custom;
  if ((needs_pulses && (request.pulses == nullptr ||
                        request.pulses->num_pulses() <= 0)) ||
      (request.pulses != nullptr && request.pulses->num_pulses() <= 0) ||
      (request.custom && sharded()) || region.empty() ||
      request.asr_block_w <= 0 || request.asr_block_h <= 0 || region.x0 < 0 ||
      region.y0 < 0 || region.x0 + region.width > request.grid.width() ||
      region.y0 + region.height > request.grid.height()) {
    return reject(RejectReason::kInvalidRequest);
  }

  auto job = JobPtr(new JobHandle(std::move(request)));
  job->submitted_ = std::chrono::steady_clock::now();
  job->metrics_ = metrics_;
  job->completion_seq_ = &completion_seq_;

  switch (sched_->submit(job, config_.admission_grace)) {
    case AdmitResult::kAdmitted:
      if (submitted_) submitted_->add();
      return {std::move(job), RejectReason::kNone};
    case AdmitResult::kQueueFull:
      return reject(RejectReason::kQueueFull);
    case AdmitResult::kQuotaExceeded:
      return reject(RejectReason::kQuotaExceeded);
    case AdmitResult::kClosed:
      return reject(RejectReason::kShuttingDown);
  }
  return reject(RejectReason::kShuttingDown);  // unreachable
}

void ImageFormationService::resume() {
  {
    MutexLock lock(gate_mutex_);
    gate_open_ = true;
  }
  gate_cv_.notify_all();
}

void ImageFormationService::drain() {
  // order: release — pairs with submit()'s acquire load (see submit()).
  draining_.store(true, std::memory_order_release);
  resume();  // paused workers must run to drain the backlog
  sched_->close();
  if (exec_) exec_->drain();
  if (route_thread_.joinable()) route_thread_.join();
  if (router_) router_->shutdown();
}

void ImageFormationService::wait_gate() {
  MutexLock lock(gate_mutex_);
  while (!gate_open_) gate_cv_.wait(lock);
}

exec::GroupPtr ImageFormationService::next_group(
    int /*worker*/, std::chrono::microseconds budget, bool* end) {
  wait_gate();
  JobPtr job = sched_->claim(budget, end);
  if (job == nullptr) return nullptr;
  return build_job_group(job);
}

void ImageFormationService::route_loop() {
  for (;;) {
    wait_gate();
    bool end = false;
    JobPtr job = sched_->claim(std::chrono::milliseconds(50), &end);
    if (job != nullptr) {
      router_->dispatch(job);
      continue;
    }
    // The drain guarantee: end is only reported once the backlog is empty,
    // so every admitted job has been dispatched by the time we exit.
    if (end) return;
  }
}

namespace {

/// Shared outcome of one running job, written by whichever worker's
/// checkpoint trips first and read by the completion continuation.
struct RunCtx {
  Mutex mutex{SARBP_LOCK_LEVEL("service.runctx")};
  JobState outcome SARBP_GUARDED_BY(mutex) = JobState::kDone;
  std::string error SARBP_GUARDED_BY(mutex);
  std::chrono::steady_clock::time_point compute_start;

  void set_failure(JobState state, const char* message)
      SARBP_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (outcome == JobState::kDone) {
      outcome = state;
      error = message;
    }
  }
};

}  // namespace

exec::GroupPtr ImageFormationService::build_job_group(const JobPtr& job) {
  const auto now = std::chrono::steady_clock::now();
  const double queued_for =
      std::chrono::duration<double>(now - job->submitted_).count();
  if (queue_s_) queue_s_->record(queued_for);

  // Cancelled while queued (or dropped already-terminal at drain): the
  // handle is resolved, just drop it — after telling a custom submitter
  // its factory will never run.
  if (is_terminal(job->state())) {
    if (job->request_.custom_abandoned) {
      job->request_.custom_abandoned(job->state());
    }
    return nullptr;
  }

  const auto& request = job->request_;
  if (request.deadline.has_value() && now > *request.deadline) {
    {
      MutexLock lock(job->mutex_);
      if (!is_terminal(job->state())) {
        job->result_.error = "deadline passed while queued";
        job->result_.queue_seconds = queued_for;
        job->finish_locked(JobState::kExpired);
      }
    }
    if (request.custom_abandoned) request.custom_abandoned(job->state());
    return nullptr;
  }
  if (!job->start_running()) {
    // A cancel resolved the handle between the checks above and here.
    if (request.custom_abandoned) request.custom_abandoned(job->state());
    return nullptr;
  }
  if (busy_gauge_) busy_gauge_->add(1);

  // Cooperative checkpoint, polled before every ASR block sweep — now
  // possibly from several workers at once, so the outcome write is
  // serialized through the RunCtx (first trip wins).
  const auto make_checkpoint = [this, job](std::shared_ptr<RunCtx> ctx) {
    return [this, ctx, job]() -> bool {
      if (config_.inter_block_hook) config_.inter_block_hook();
      if (job->cancel_requested()) {
        ctx->set_failure(JobState::kCancelled, "cancelled while running");
        return false;
      }
      const auto& deadline = job->request_.deadline;
      if (deadline.has_value() &&
          std::chrono::steady_clock::now() > *deadline) {
        ctx->set_failure(JobState::kExpired, "deadline passed while running");
        return false;
      }
      return true;
    };
  };

  if (request.custom) {
    // Custom job: the factory builds the group, the service supplies the
    // lifecycle — the same checkpoint the plan replay polls, and a finish
    // that resolves the handle with the checkpoint verdict taking
    // precedence over the factory's proposed outcome.
    auto ctx = std::make_shared<RunCtx>();
    ctx->compute_start = std::chrono::steady_clock::now();
    CustomJobContext cctx;
    cctx.checkpoint = make_checkpoint(ctx);
    cctx.workers = config_.workers;
    cctx.tile_tasks = config_.tile_tasks;
    cctx.finish = [this, ctx, job, queued_for](
                      JobState proposed,
                      const std::string& message) -> JobState {
      const double compute_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        ctx->compute_start)
              .count();
      if (compute_s_) compute_s_->record(compute_seconds);
      JobState outcome;
      std::string error;
      {
        MutexLock lock(ctx->mutex);
        outcome = ctx->outcome;
        error = ctx->error;
      }
      if (outcome == JobState::kDone) {
        outcome = proposed;
        error = message;
      }
      if (busy_gauge_) busy_gauge_->add(-1);
      MutexLock lock(job->mutex_);
      // Lost a race to cancel(): report the state the job actually
      // resolved to, not the proposal.
      if (is_terminal(job->state())) return job->state();
      job->result_.queue_seconds = queued_for;
      job->result_.compute_seconds = compute_seconds;
      job->result_.error = std::move(error);
      job->finish_locked(outcome);
      return outcome;
    };
    exec::GroupPtr group;
    try {
      group = job->request_.custom(cctx);
    } catch (const std::exception& e) {
      cctx.finish(JobState::kFailed, e.what());
      return nullptr;
    }
    return group;
  }

  const Region region = request.effective_region();
  bool cache_hit = false;
  double setup_seconds = 0.0;
  std::shared_ptr<const FormationPlan> plan;
  try {
    Timer setup_timer;
    plan = plan_cache_.get_or_build(request.grid, region, request.asr_block_w,
                                    request.asr_block_h, *request.pulses,
                                    &cache_hit);
    setup_seconds = setup_timer.seconds();
    if (setup_s_) setup_s_->record(setup_seconds);
  } catch (const std::exception& e) {
    if (busy_gauge_) busy_gauge_->add(-1);
    MutexLock lock(job->mutex_);
    if (!is_terminal(job->state())) {
      job->result_.queue_seconds = queued_for;
      job->result_.setup_seconds = setup_seconds;
      job->result_.error = e.what();
      job->finish_locked(JobState::kFailed);
    }
    return nullptr;
  }

  auto ctx = std::make_shared<RunCtx>();
  ctx->compute_start = std::chrono::steady_clock::now();
  auto checkpoint = make_checkpoint(ctx);

  auto tile = std::make_shared<bp::SoaTile>(region.width, region.height);
  // Runs on whichever worker retires the job's last task: publish the
  // image (or the failure) and resolve the handle. The claiming worker has
  // long since moved on to the next claim.
  auto done = [this, ctx, job, tile, region, cache_hit, setup_seconds,
               queued_for](exec::TaskGroup& group) {
    const double compute_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ctx->compute_start)
            .count();
    if (compute_s_) compute_s_->record(compute_seconds);

    JobState outcome;
    std::string error;
    {
      MutexLock lock(ctx->mutex);
      outcome = ctx->outcome;
      error = ctx->error;
    }
    if (outcome == JobState::kDone && group.aborted()) {
      // Aborted without a checkpoint verdict: a task threw.
      outcome = JobState::kFailed;
      error = group.error().empty() ? "job aborted" : group.error();
    }
    Grid2D<CFloat> image(0, 0);
    if (outcome == JobState::kDone) {
      image = Grid2D<CFloat>(region.width, region.height);
      tile->accumulate_into(image, Region{0, 0, region.width, region.height});
    }
    if (busy_gauge_) busy_gauge_->add(-1);

    MutexLock lock(job->mutex_);
    if (is_terminal(job->state())) return;  // lost a race to cancel()
    job->result_.queue_seconds = queued_for;
    job->result_.setup_seconds = setup_seconds;
    job->result_.compute_seconds = compute_seconds;
    job->result_.plan_cache_hit = cache_hit;
    job->result_.error = std::move(error);
    if (outcome == JobState::kDone) job->result_.image = std::move(image);
    job->finish_locked(outcome);
  };

  return make_plan_replay_group(std::move(plan), request.pulses,
                                config_.workers, config_.tile_tasks,
                                std::move(tile), std::move(checkpoint),
                                std::move(done), /*pulse_begin=*/0,
                                /*pulse_end=*/-1, backend_set_);
}

}  // namespace sarbp::service
