#include "service/service.h"

#include <exception>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/timer.h"

namespace sarbp::service {

ImageFormationService::ImageFormationService(ServiceConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : &obs::registry()),
      plan_cache_(config_.plan_cache_capacity, metrics_),
      // Tokens never outnumber pending jobs, so max_pending bounds both.
      tokens_(config_.max_pending > 0 ? config_.max_pending : 1,
              "service.tokens", metrics_),
      gate_open_(!config_.start_paused) {
  ensure(config_.workers > 0, "ImageFormationService: workers must be positive");
  ensure(config_.max_pending > 0,
         "ImageFormationService: max_pending must be positive");
  static constexpr const char* kQueueNames[kNumPriorities] = {
      "service.ready.high", "service.ready.normal", "service.ready.low"};
  for (int p = 0; p < kNumPriorities; ++p) {
    ready_[static_cast<std::size_t>(p)] = std::make_unique<BoundedQueue<JobPtr>>(
        config_.max_pending, kQueueNames[p], metrics_);
  }
  if constexpr (obs::kEnabled) {
    submitted_ = &metrics_->counter("service.jobs.submitted");
    rejected_full_ = &metrics_->counter("service.rejected.queue_full");
    rejected_shutdown_ = &metrics_->counter("service.rejected.shutting_down");
    rejected_invalid_ = &metrics_->counter("service.rejected.invalid_request");
    pending_gauge_ = &metrics_->gauge("service.pending");
    busy_gauge_ = &metrics_->gauge("service.workers.busy");
    queue_s_ = &metrics_->histogram("service.job.queue_s");
    setup_s_ = &metrics_->histogram("service.job.setup_s");
    compute_s_ = &metrics_->histogram("service.job.compute_s");
  }
  exec::ExecOptions exec_options;
  exec_options.workers = config_.workers;
  exec_options.steal = config_.steal;
  exec_options.metrics = metrics_;
  exec_options.source = [this](int worker, std::chrono::microseconds budget,
                               bool* end) {
    return next_group(worker, budget, end);
  };
  exec_ = std::make_unique<exec::TileExecutor>(std::move(exec_options));
}

ImageFormationService::~ImageFormationService() { drain(); }

SubmitOutcome ImageFormationService::submit(ImageFormationRequest request) {
  // order: acquire — pairs with drain()'s release store; a submitter that
  // observes the flag also observes the closed queues behind it.
  if (draining_.load(std::memory_order_acquire)) {
    if (rejected_shutdown_) rejected_shutdown_->add();
    return {nullptr, RejectReason::kShuttingDown};
  }
  const Region region = request.effective_region();
  if (request.pulses == nullptr || request.pulses->num_pulses() <= 0 ||
      region.empty() || request.asr_block_w <= 0 || request.asr_block_h <= 0 ||
      region.x0 < 0 || region.y0 < 0 ||
      region.x0 + region.width > request.grid.width() ||
      region.y0 + region.height > request.grid.height()) {
    if (rejected_invalid_) rejected_invalid_->add();
    return {nullptr, RejectReason::kInvalidRequest};
  }

  const int pri = static_cast<int>(request.priority);
  auto job = JobPtr(new JobHandle(std::move(request)));
  job->submitted_ = std::chrono::steady_clock::now();
  job->metrics_ = metrics_;
  job->completion_seq_ = &completion_seq_;

  // Admission: the ready queue for this class holds at most max_pending
  // jobs; a full pending set makes this try_push_for wait out the grace
  // period and then fail — the reject-with-reason overload behaviour.
  // order: relaxed on pending_ throughout — an advisory admission counter:
  // only its atomically-updated value matters, never its ordering against
  // other state (jobs are published through the ready queues' mutexes).
  // PR 5 audit; was acq_rel, TSan-clean relaxed.
  if (std::size_t n = pending_.fetch_add(1, std::memory_order_relaxed);
      n >= config_.max_pending) {
    // order: relaxed — advisory admission counter (see note above).
    pending_.fetch_sub(1, std::memory_order_relaxed);
    if (config_.admission_grace.count() == 0 ||
        !ready_[static_cast<std::size_t>(pri)]->try_push_for(
            job, config_.admission_grace)) {
      if (rejected_full_) rejected_full_->add();
      return {nullptr, RejectReason::kQueueFull};
    }
    // order: relaxed — advisory admission counter (see note above).
    pending_.fetch_add(1, std::memory_order_relaxed);
  } else if (!ready_[static_cast<std::size_t>(pri)]->try_push_for(
                 job, config_.admission_grace)) {
    // order: relaxed — advisory admission counter (see note above).
    pending_.fetch_sub(1, std::memory_order_relaxed);
    const bool closed = ready_[static_cast<std::size_t>(pri)]->closed();
    if (closed) {
      if (rejected_shutdown_) rejected_shutdown_->add();
      return {nullptr, RejectReason::kShuttingDown};
    }
    if (rejected_full_) rejected_full_->add();
    return {nullptr, RejectReason::kQueueFull};
  }
  if (pending_gauge_) {
    // order: relaxed — advisory admission counter (see note above).
    pending_gauge_->set(static_cast<std::int64_t>(
        pending_.load(std::memory_order_relaxed)));
  }

  if (!tokens_.push(pri)) {
    // drain() closed the token queue between our admission check and here.
    // The job sits in a ready queue no worker will be told about — resolve
    // the handle so nobody waits forever.
    // order: relaxed — see the admission-counter note above.
    pending_.fetch_sub(1, std::memory_order_relaxed);
    {
      MutexLock lock(job->mutex_);
      if (!is_terminal(job->state())) {
        job->result_.error = "service shutting down";
        job->finish_locked(JobState::kCancelled);
      }
    }
    if (rejected_shutdown_) rejected_shutdown_->add();
    return {nullptr, RejectReason::kShuttingDown};
  }
  if (submitted_) submitted_->add();
  return {std::move(job), RejectReason::kNone};
}

void ImageFormationService::resume() {
  {
    MutexLock lock(gate_mutex_);
    gate_open_ = true;
  }
  gate_cv_.notify_all();
}

void ImageFormationService::drain() {
  // order: release — pairs with submit()'s acquire load (see submit()).
  draining_.store(true, std::memory_order_release);
  resume();  // paused workers must run to drain the backlog
  tokens_.close();
  if (exec_) exec_->drain();
  for (auto& queue : ready_) queue->close();
}

void ImageFormationService::wait_gate() {
  MutexLock lock(gate_mutex_);
  while (!gate_open_) gate_cv_.wait(lock);
}

exec::GroupPtr ImageFormationService::next_group(
    int /*worker*/, std::chrono::microseconds budget, bool* end) {
  wait_gate();
  // One token == one admitted job somewhere in the ready queues. After
  // close(), the pops hand out the remaining backlog before signalling
  // end-of-stream — the drain guarantee.
  auto token = budget.count() > 0 ? tokens_.try_pop_for(budget)
                                  : tokens_.try_pop();
  if (!token.has_value()) {
    if (tokens_.closed() && tokens_.size() == 0) *end = true;
    return nullptr;
  }
  JobPtr job = take_highest_priority();
  if (job == nullptr) return nullptr;  // defensive; the invariant says never
  // order: relaxed — advisory admission counter (see submit()).
  pending_.fetch_sub(1, std::memory_order_relaxed);
  if (pending_gauge_) {
    pending_gauge_->set(static_cast<std::int64_t>(
        pending_.load(std::memory_order_relaxed)));
  }
  return build_job_group(job);
}

ImageFormationService::JobPtr ImageFormationService::take_highest_priority() {
  // A token guarantees a job exists, but another token-holder may snatch
  // the one we saw first — the scan retries with a short timed pop per
  // class until the invariant pays out.
  while (true) {
    for (auto& queue : ready_) {
      if (auto job = queue->try_pop()) return std::move(*job);
    }
    for (auto& queue : ready_) {
      if (auto job = queue->try_pop_for(std::chrono::microseconds(200))) {
        return std::move(*job);
      }
    }
  }
}

namespace {

/// Shared outcome of one running job, written by whichever worker's
/// checkpoint trips first and read by the completion continuation.
struct RunCtx {
  Mutex mutex;
  JobState outcome SARBP_GUARDED_BY(mutex) = JobState::kDone;
  std::string error SARBP_GUARDED_BY(mutex);
  std::chrono::steady_clock::time_point compute_start;

  void set_failure(JobState state, const char* message)
      SARBP_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (outcome == JobState::kDone) {
      outcome = state;
      error = message;
    }
  }
};

}  // namespace

exec::GroupPtr ImageFormationService::build_job_group(const JobPtr& job) {
  const auto now = std::chrono::steady_clock::now();
  const double queued_for =
      std::chrono::duration<double>(now - job->submitted_).count();
  if (queue_s_) queue_s_->record(queued_for);

  // Cancelled while queued: the handle is already terminal, just drop it.
  if (is_terminal(job->state())) return nullptr;

  const auto& request = job->request_;
  if (request.deadline.has_value() && now > *request.deadline) {
    MutexLock lock(job->mutex_);
    if (!is_terminal(job->state())) {
      job->result_.error = "deadline passed while queued";
      job->result_.queue_seconds = queued_for;
      job->finish_locked(JobState::kExpired);
    }
    return nullptr;
  }
  if (!job->start_running()) return nullptr;
  if (busy_gauge_) busy_gauge_->add(1);

  const Region region = request.effective_region();
  bool cache_hit = false;
  double setup_seconds = 0.0;
  std::shared_ptr<const FormationPlan> plan;
  try {
    Timer setup_timer;
    plan = plan_cache_.get_or_build(request.grid, region, request.asr_block_w,
                                    request.asr_block_h, *request.pulses,
                                    &cache_hit);
    setup_seconds = setup_timer.seconds();
    if (setup_s_) setup_s_->record(setup_seconds);
  } catch (const std::exception& e) {
    if (busy_gauge_) busy_gauge_->add(-1);
    MutexLock lock(job->mutex_);
    if (!is_terminal(job->state())) {
      job->result_.queue_seconds = queued_for;
      job->result_.setup_seconds = setup_seconds;
      job->result_.error = e.what();
      job->finish_locked(JobState::kFailed);
    }
    return nullptr;
  }

  auto ctx = std::make_shared<RunCtx>();
  ctx->compute_start = std::chrono::steady_clock::now();

  // Cooperative checkpoint, polled before every ASR block sweep — now
  // possibly from several workers at once, so the outcome write is
  // serialized through the RunCtx (first trip wins).
  auto checkpoint = [this, ctx, job]() -> bool {
    if (config_.inter_block_hook) config_.inter_block_hook();
    if (job->cancel_requested()) {
      ctx->set_failure(JobState::kCancelled, "cancelled while running");
      return false;
    }
    const auto& deadline = job->request_.deadline;
    if (deadline.has_value() &&
        std::chrono::steady_clock::now() > *deadline) {
      ctx->set_failure(JobState::kExpired, "deadline passed while running");
      return false;
    }
    return true;
  };

  auto tile = std::make_shared<bp::SoaTile>(region.width, region.height);
  // Runs on whichever worker retires the job's last task: publish the
  // image (or the failure) and resolve the handle. The claiming worker has
  // long since moved on to the next admission token.
  auto done = [this, ctx, job, tile, region, cache_hit, setup_seconds,
               queued_for](exec::TaskGroup& group) {
    const double compute_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ctx->compute_start)
            .count();
    if (compute_s_) compute_s_->record(compute_seconds);

    JobState outcome;
    std::string error;
    {
      MutexLock lock(ctx->mutex);
      outcome = ctx->outcome;
      error = ctx->error;
    }
    if (outcome == JobState::kDone && group.aborted()) {
      // Aborted without a checkpoint verdict: a task threw.
      outcome = JobState::kFailed;
      error = group.error().empty() ? "job aborted" : group.error();
    }
    Grid2D<CFloat> image(0, 0);
    if (outcome == JobState::kDone) {
      image = Grid2D<CFloat>(region.width, region.height);
      tile->accumulate_into(image, Region{0, 0, region.width, region.height});
    }
    if (busy_gauge_) busy_gauge_->add(-1);

    MutexLock lock(job->mutex_);
    if (is_terminal(job->state())) return;  // lost a race to cancel()
    job->result_.queue_seconds = queued_for;
    job->result_.setup_seconds = setup_seconds;
    job->result_.compute_seconds = compute_seconds;
    job->result_.plan_cache_hit = cache_hit;
    job->result_.error = std::move(error);
    if (outcome == JobState::kDone) job->result_.image = std::move(image);
    job->finish_locked(outcome);
  };

  return make_plan_replay_group(std::move(plan), request.pulses,
                                config_.workers, config_.tile_tasks,
                                std::move(tile), std::move(checkpoint),
                                std::move(done));
}

}  // namespace sarbp::service
