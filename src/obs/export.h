// Schema-versioned JSON export of a metrics registry, plus the matching
// parser so dashboards/tests can validate that the schema round-trips.
//
// Layout (schema "sarbp.metrics.v1"):
//   {
//     "schema": "sarbp.metrics.v1",
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": {"value": <int>, "max": <int>}, ... },
//     "histograms": { "<name>": {"count": <uint>, "sum": <double>,
//                                "min": .., "max": .., "p50": ..,
//                                "p90": .., "p99": ..}, ... }
//   }
#pragma once

#include <string>

#include "obs/metrics.h"

namespace sarbp::obs {

/// Serializes a snapshot; doubles are printed with enough digits to
/// round-trip bit-exactly through parse_snapshot_json.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Convenience: snapshot + serialize.
[[nodiscard]] std::string export_json(const Registry& reg);

/// Parses a "sarbp.metrics.v1" document produced by to_json. Throws
/// PreconditionError on malformed input or a schema mismatch.
[[nodiscard]] MetricsSnapshot parse_snapshot_json(const std::string& json);

/// Writes export_json(reg) to `path`; throws PreconditionError on I/O error.
void write_json_file(const Registry& reg, const std::string& path);

}  // namespace sarbp::obs
