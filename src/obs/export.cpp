#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/check.h"

namespace sarbp::obs {
namespace {

// ---------------------------------------------------------------- writing

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[40];
  // %.17g round-trips IEEE doubles exactly.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

template <class Map, class Writer>
void append_section(std::string& out, const char* key, const Map& map,
                    Writer&& write_value) {
  out += "  ";
  out += '"';
  out += key;
  out += "\": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": ";
    write_value(out, value);
  }
  out += first ? "}" : "\n  }";
}

// ---------------------------------------------------------------- parsing
//
// Minimal recursive-descent parser for the subset to_json emits (objects,
// strings, numbers). Kept private: this is a round-trip validator, not a
// general JSON library.

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    ensure(pos_ < text_.size() && text_[pos_] == c,
           std::string("metrics JSON: expected '") + c + "' at offset " +
               std::to_string(pos_));
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        ensure(pos_ < text_.size(), "metrics JSON: dangling escape");
        c = text_[pos_++];
        if (c == 'u') {
          ensure(pos_ + 4 <= text_.size(), "metrics JSON: bad \\u escape");
          c = static_cast<char>(
              std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
        }
      }
      out += c;
    }
    ensure(pos_ < text_.size(), "metrics JSON: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    ensure(end != begin, "metrics JSON: expected a number at offset " +
                             std::to_string(pos_));
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  /// Parses {"k": v, ...} handing each (key, this) to the callback.
  template <class OnEntry>
  void parse_object(OnEntry&& on_entry) {
    expect('{');
    if (consume('}')) return;
    do {
      const std::string key = parse_string();
      expect(':');
      on_entry(key);
    } while (consume(','));
    expect('}');
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(256 + 160 * (snapshot.counters.size() + snapshot.gauges.size() +
                           snapshot.histograms.size()));
  out += "{\n  \"schema\": \"";
  out += MetricsSnapshot::kSchemaName;
  out += "\",\n";
  append_section(out, "counters", snapshot.counters,
                 [](std::string& o, std::uint64_t v) {
                   char buf[24];
                   std::snprintf(buf, sizeof buf, "%" PRIu64, v);
                   o += buf;
                 });
  out += ",\n";
  append_section(out, "gauges", snapshot.gauges,
                 [](std::string& o, const MetricsSnapshot::GaugeStats& g) {
                   char buf[64];
                   std::snprintf(buf, sizeof buf,
                                 "{\"value\": %" PRId64 ", \"max\": %" PRId64 "}",
                                 g.value, g.max);
                   o += buf;
                 });
  out += ",\n";
  append_section(out, "histograms", snapshot.histograms,
                 [](std::string& o, const HistogramStats& h) {
                   char buf[24];
                   std::snprintf(buf, sizeof buf, "%" PRIu64, h.count);
                   o += "{\"count\": ";
                   o += buf;
                   for (const auto& [key, v] :
                        {std::pair<const char*, double>{"sum", h.sum},
                         {"min", h.min},
                         {"max", h.max},
                         {"p50", h.p50},
                         {"p90", h.p90},
                         {"p99", h.p99}}) {
                     o += ", \"";
                     o += key;
                     o += "\": ";
                     append_double(o, v);
                   }
                   o += '}';
                 });
  out += "\n}\n";
  return out;
}

std::string export_json(const Registry& reg) { return to_json(reg.snapshot()); }

MetricsSnapshot parse_snapshot_json(const std::string& json) {
  MetricsSnapshot snap;
  Parser p(json);
  bool saw_schema = false;
  p.parse_object([&](const std::string& section) {
    if (section == "schema") {
      const std::string schema = p.parse_string();
      ensure(schema == MetricsSnapshot::kSchemaName,
             "metrics JSON: unsupported schema '" + schema + "'");
      saw_schema = true;
    } else if (section == "counters") {
      p.parse_object([&](const std::string& name) {
        snap.counters[name] = static_cast<std::uint64_t>(p.parse_number());
      });
    } else if (section == "gauges") {
      p.parse_object([&](const std::string& name) {
        MetricsSnapshot::GaugeStats g;
        p.parse_object([&](const std::string& field) {
          const auto v = static_cast<std::int64_t>(p.parse_number());
          if (field == "value") {
            g.value = v;
          } else if (field == "max") {
            g.max = v;
          } else {
            ensure(false, "metrics JSON: unknown gauge field '" + field + "'");
          }
        });
        snap.gauges[name] = g;
      });
    } else if (section == "histograms") {
      p.parse_object([&](const std::string& name) {
        HistogramStats h;
        p.parse_object([&](const std::string& field) {
          const double v = p.parse_number();
          if (field == "count") {
            h.count = static_cast<std::uint64_t>(v);
          } else if (field == "sum") {
            h.sum = v;
          } else if (field == "min") {
            h.min = v;
          } else if (field == "max") {
            h.max = v;
          } else if (field == "p50") {
            h.p50 = v;
          } else if (field == "p90") {
            h.p90 = v;
          } else if (field == "p99") {
            h.p99 = v;
          } else {
            ensure(false,
                   "metrics JSON: unknown histogram field '" + field + "'");
          }
        });
        snap.histograms[name] = h;
      });
    } else {
      ensure(false, "metrics JSON: unknown section '" + section + "'");
    }
  });
  ensure(saw_schema, "metrics JSON: missing \"schema\" field");
  return snap;
}

void write_json_file(const Registry& reg, const std::string& path) {
  const std::string json = export_json(reg);
  std::FILE* f = std::fopen(path.c_str(), "w");
  ensure(f != nullptr, "metrics export: cannot open '" + path + "'");
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  ensure(written == json.size() && close_rc == 0,
         "metrics export: short write to '" + path + "'");
}

}  // namespace sarbp::obs
