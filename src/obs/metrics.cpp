#include "obs/metrics.h"

#include <bit>
#include <cmath>

namespace sarbp::obs {
namespace {

double from_bits(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Lower bound of bucket i (geometric, doubling from kMinValue).
double bucket_floor(int i) {
  return i == 0 ? 0.0
               : Histogram::kMinValue * std::ldexp(1.0, i - 1);
}

}  // namespace

int Histogram::bucket_of(double value) noexcept {
  if (!(value > kMinValue)) return 0;  // includes 0, negatives, NaN
  const int idx = 1 + std::ilogb(value / kMinValue);
  return idx >= kBuckets ? kBuckets - 1 : idx;
}

void Histogram::record(double value) noexcept {
  if constexpr (!kEnabled) {
    (void)value;
    return;
  }
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  // order: relaxed — per-bucket event count; exporters accept slight skew
  // between buckets and count_ (eventually-consistent summaries).
  buckets_[static_cast<std::size_t>(bucket_of(value))].fetch_add(
      1, std::memory_order_relaxed);
  // order: relaxed — see the bucket increment above.
  count_.fetch_add(1, std::memory_order_relaxed);

  // CAS loops over the double bit patterns; relaxed is fine — readers only
  // need eventually-consistent summary values.
  // order: relaxed CAS — atomicity alone makes the add lossless; no
  // ordering against the bucket counts is required.
  std::uint64_t seen = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(seen, to_bits(from_bits(seen) + value),
                                          std::memory_order_relaxed)) {
  }
  // order: relaxed CAS — monotone watermark, same argument as Gauge::max.
  seen = min_bits_.load(std::memory_order_relaxed);
  while (value < from_bits(seen) &&
         !min_bits_.compare_exchange_weak(seen, to_bits(value),
                                          std::memory_order_relaxed)) {
  }
  // order: relaxed CAS — monotone watermark, same argument as Gauge::max.
  seen = max_bits_.load(std::memory_order_relaxed);
  while (value > from_bits(seen) &&
         !max_bits_.compare_exchange_weak(seen, to_bits(value),
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const noexcept {
  // order: relaxed — eventually-consistent summary (see record()).
  return from_bits(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const noexcept {
  // order: relaxed — eventually-consistent summary (see record()).
  return count() == 0 ? 0.0
                      : from_bits(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const noexcept {
  // order: relaxed — eventually-consistent summary (see record()).
  return count() == 0 ? 0.0
                      : from_bits(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket =
        // order: relaxed — eventually-consistent summary (see record()).
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) >= target) {
      // Linear interpolation to the bucket's upper edge, clamped to the
      // exact observed range.
      const double lo = bucket_floor(i);
      const double hi = i + 1 < kBuckets ? bucket_floor(i + 1) : max();
      const double frac =
          1.0 - (static_cast<double>(cumulative) - target) /
                    static_cast<double>(in_bucket);
      double estimate = lo + (hi - lo) * frac;
      if (estimate < min()) estimate = min();
      if (estimate > max()) estimate = max();
      return estimate;
    }
  }
  return max();
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

namespace {

// Callers hold the registry mutex; the maps are guarded members passed by
// reference under it.
template <class Map>
auto& get_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  if constexpr (!kEnabled) {
    static Counter disabled;
    return disabled;
  }
  MutexLock lock(mutex_);
  return get_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  if constexpr (!kEnabled) {
    static Gauge disabled;
    return disabled;
  }
  MutexLock lock(mutex_);
  return get_or_create(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  if constexpr (!kEnabled) {
    static Histogram disabled;
    return disabled;
  }
  MutexLock lock(mutex_);
  return get_or_create(histograms_, name);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = {g->value(), g->max()};
  }
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->stats();
  return snap;
}

void Registry::reset() {
  MutexLock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& registry() {
  static Registry global;
  return global;
}

}  // namespace sarbp::obs
