// Structured observability: thread-safe counters, gauges, latency
// histograms, and named span timers behind a process-global registry.
//
// The paper validates its pipelined image formation with per-stage timing
// and throughput accounting (Fig. 4, Table 3-5); this module makes that
// telemetry a first-class, always-on subsystem instead of ad-hoc printf
// plumbing. Hot-path cost is one relaxed atomic op per event; compiling
// with SARBP_OBS_ENABLED=0 (-DSARBP_OBS=OFF) reduces every call to an
// empty inline function.
//
// Naming convention: dotted lowercase paths, coarse-to-fine —
// "pipeline.stage.backprojection", "queue.pipeline.image.depth",
// "offload.transfer_s". Histograms of durations carry an "_s" unit suffix
// or live under a ".stage." / "span" path and are recorded in seconds.
#pragma once

#include <atomic>
#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/thread_annotations.h"

#ifndef SARBP_OBS_ENABLED
#define SARBP_OBS_ENABLED 1
#endif

namespace sarbp::obs {

inline constexpr bool kEnabled = SARBP_OBS_ENABLED != 0;

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    // order: relaxed — independent event count; exporters only need an
    // eventually-consistent value, never ordering against other state.
    if constexpr (kEnabled) value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    // order: relaxed — see add().
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, in-flight frames) with a high-water
/// mark. `set`/`add` are wait-free except for the watermark CAS loop.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if constexpr (kEnabled) {
      // order: relaxed — levels are advisory snapshots; readers tolerate
      // any interleaving of concurrent set()s.
      value_.store(v, std::memory_order_relaxed);
      raise_max(v);
    }
  }

  void add(std::int64_t delta) noexcept {
    if constexpr (kEnabled) {
      const std::int64_t v =
          // order: relaxed — atomic RMW keeps the level exact under
          // concurrent add()s; no cross-variable ordering needed.
          value_.fetch_add(delta, std::memory_order_relaxed) + delta;
      raise_max(v);
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    // order: relaxed — advisory snapshot (see set()).
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    // order: relaxed — advisory snapshot (see set()).
    return max_.load(std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t v) noexcept {
    // order: relaxed CAS loop — the watermark only ever grows; the loop
    // retries until this writer's v is reflected or beaten by a larger one.
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Summary statistics of one histogram, as exported.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  friend bool operator==(const HistogramStats&, const HistogramStats&) = default;
};

/// Lock-free geometric-bucket histogram for non-negative samples (latency
/// in seconds, rates, byte counts). Buckets double from kMinValue; the
/// percentile estimate interpolates within the chosen bucket and clamps to
/// the exact observed [min, max].
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr double kMinValue = 1e-9;

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    // order: relaxed — summary statistic; exporters accept slight skew
    // between count_ and the bucket array (documented in DESIGN.md §6).
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  /// q in [0, 1]; 0 over an empty histogram.
  [[nodiscard]] double percentile(double q) const noexcept;

  [[nodiscard]] HistogramStats stats() const;

 private:
  static int bucket_of(double value) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  // Stored as bit patterns so sum/min/max stay lock-free.
  std::atomic<std::uint64_t> sum_bits_{0};
  std::atomic<std::uint64_t> min_bits_{0x7FF0000000000000ULL};   // +inf
  std::atomic<std::uint64_t> max_bits_{0xFFF0000000000000ULL};   // -inf
};

/// Full point-in-time view of a registry, schema-versioned for export.
struct MetricsSnapshot {
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "sarbp.metrics.v1";

  struct GaugeStats {
    std::int64_t value = 0;
    std::int64_t max = 0;
    friend bool operator==(const GaugeStats&, const GaugeStats&) = default;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeStats> gauges;
  std::map<std::string, HistogramStats> histograms;

  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&) = default;
};

/// Name -> metric store. Metrics are created on first use and live as long
/// as the registry; returned references stay valid across later calls, so
/// hot paths resolve a name once and keep the pointer.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Drops every metric (tests and repeated bench passes). Invalidates
  /// previously returned references.
  void reset();

 private:
  // Innermost level of the whole hierarchy: metric lookups happen under
  // module locks everywhere (queue depths, job finish stamps), so nothing
  // may be acquired while the registry lock is held.
  mutable Mutex mutex_{SARBP_LOCK_LEVEL("obs.registry")};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SARBP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SARBP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SARBP_GUARDED_BY(mutex_);
};

/// The process-global registry every instrumented layer records into.
Registry& registry();

/// RAII span: records the scope's wall-clock duration (seconds) into a
/// histogram on destruction. Construct from a resolved histogram on hot
/// paths, or by name for one-shot scopes.
class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram& sink) : sink_(&sink) { start(); }
  ScopedSpan(Registry& reg, std::string_view name) {
    if constexpr (kEnabled) sink_ = &reg.histogram(name);
    start();
  }
  explicit ScopedSpan(std::string_view name) : ScopedSpan(registry(), name) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { finish(); }

  /// Ends the span early; the destructor then does nothing.
  void finish() noexcept {
    if constexpr (kEnabled) {
      if (sink_ == nullptr) return;
      sink_->record(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
      sink_ = nullptr;
    }
  }

 private:
  void start() noexcept {
    if constexpr (kEnabled) start_ = std::chrono::steady_clock::now();
  }

  Histogram* sink_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace sarbp::obs
