#include "geometry/trajectory.h"

#include <cmath>

#include "common/check.h"

namespace sarbp::geometry {

double OrbitParams::slant_range() const {
  return std::sqrt(radius_m * radius_m + altitude_m * altitude_m);
}

std::vector<PulsePose> circular_orbit(const OrbitParams& orbit,
                                      const TrajectoryErrorModel& errors,
                                      Index count, sarbp::Rng& rng) {
  ensure(count >= 0, "circular_orbit: negative pulse count");
  ensure(orbit.prf_hz > 0, "circular_orbit: PRF must be positive");
  std::vector<PulsePose> poses;
  poses.reserve(static_cast<std::size_t>(count));
  const double dt = 1.0 / orbit.prf_hz;
  for (Index i = 0; i < count; ++i) {
    PulsePose pose;
    pose.time_s = static_cast<double>(i) * dt;
    pose.aperture_angle_rad =
        orbit.start_angle_rad + orbit.angular_rate_rad_s * pose.time_s;
    const Vec3 ideal{orbit.radius_m * std::cos(pose.aperture_angle_rad),
                     orbit.radius_m * std::sin(pose.aperture_angle_rad),
                     orbit.altitude_m};
    const Vec3 noise{rng.normal(0.0, errors.perturbation_sigma_m),
                     rng.normal(0.0, errors.perturbation_sigma_m),
                     rng.normal(0.0, errors.perturbation_sigma_m)};
    pose.true_position = ideal + noise;
    // The INS knows the perturbed position (it measures the real motion)
    // but carries a bias; image formation consumes recorded_position.
    pose.recorded_position = pose.true_position + errors.recorded_bias;
    poses.push_back(pose);
  }
  return poses;
}

}  // namespace sarbp::geometry
