// Minimal 3D vector for platform/scene geometry.
#pragma once

#include <cmath>

namespace sarbp::geometry {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
};

/// Euclidean distance — the p - p0 range of the backprojection loop.
inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

}  // namespace sarbp::geometry
