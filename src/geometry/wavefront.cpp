#include "geometry/wavefront.h"

#include <algorithm>
#include <cmath>

namespace sarbp::geometry {

double expected_consecutive_same_bin(const Vec3& radar_position,
                                     const ImageGrid& grid,
                                     double bin_spacing_m, LoopOrder order) {
  // Average |d r / d s| over the image for a unit step s along the chosen
  // inner axis, evaluated at the grid midline. dr/ds = (p - p0) . e / r.
  const Vec3 step = order == LoopOrder::kXInner ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  const Index samples = 17;  // coarse quadrature across the image is plenty
  double mean_abs_drds = 0.0;
  for (Index i = 0; i < samples; ++i) {
    const double fx = static_cast<double>(i) / static_cast<double>(samples - 1);
    const Index ix = static_cast<Index>(fx * static_cast<double>(grid.width() - 1));
    const Index iy = static_cast<Index>(fx * static_cast<double>(grid.height() - 1));
    const Vec3 p = order == LoopOrder::kXInner ? grid.position(ix, grid.height() / 2)
                                               : grid.position(grid.width() / 2, iy);
    const Vec3 d = p - radar_position;
    const double r = d.norm();
    mean_abs_drds += std::abs(d.dot(step)) / r;
  }
  mean_abs_drds /= static_cast<double>(samples);
  const double range_step = mean_abs_drds * grid.spacing();
  if (range_step <= 0.0) return static_cast<double>(grid.width());
  return std::max(1.0, bin_spacing_m / range_step);
}

}  // namespace sarbp::geometry
