// Radar platform trajectory models.
//
// Spotlight mode (paper Fig. 1): the platform "repeatedly flies around the
// target imaging area while maintaining an approximate circular orbit".
// A random perturbation is induced per pulse "to test the robustness of SAR
// imaging via backprojection", and shifts in the *recorded* trajectory are
// induced between images to exercise the registration stage (§5.1).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "geometry/vec3.h"

namespace sarbp::geometry {

struct OrbitParams {
  double radius_m = 15000.0;    ///< horizontal standoff from scene centre
  double altitude_m = 8000.0;   ///< platform height above the z=0 scene
  double angular_rate_rad_s = 0.02;  ///< orbit rate (rad/s of aperture angle)
  double prf_hz = 500.0;        ///< pulse repetition frequency
  double start_angle_rad = 0.0;

  /// Slant range from orbit to scene centre.
  [[nodiscard]] double slant_range() const;
};

/// Gaussian per-pulse position noise (true trajectory never exactly matches
/// the ideal orbit) plus an optional constant recorded-position bias that
/// models inertial-navigation drift between images.
struct TrajectoryErrorModel {
  double perturbation_sigma_m = 0.05;  ///< iid per-pulse, each axis
  Vec3 recorded_bias;                  ///< added to *recorded* positions only
};

/// Platform state for one pulse: where the radar actually was when the
/// pulse was transmitted, and where the INS *says* it was (what image
/// formation uses).
struct PulsePose {
  Vec3 true_position;
  Vec3 recorded_position;
  double time_s = 0.0;
  double aperture_angle_rad = 0.0;
};

/// Generates `count` pulse poses along a perturbed circular orbit.
/// Deterministic given the RNG seed.
std::vector<PulsePose> circular_orbit(const OrbitParams& orbit,
                                      const TrajectoryErrorModel& errors,
                                      Index count, sarbp::Rng& rng);

}  // namespace sarbp::geometry
