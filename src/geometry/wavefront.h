// Wavefront-orientation analysis for the dynamic loop-reordering
// optimization (paper §4.3, Fig. 6).
//
// Iterating the image dimension that is most nearly *tangent* to the radar
// wavefront keeps consecutive pixels at nearly equal range r, so the inner
// loop re-reads the same In[bin] entries — better gather locality. Which
// dimension that is depends on the pulse's look direction, so the x/y loop
// order is chosen per pulse.
#pragma once

#include "geometry/grid.h"
#include "geometry/vec3.h"

namespace sarbp::geometry {

enum class LoopOrder {
  kXInner,  ///< inner loop walks x (use when the look direction is mostly y)
  kYInner,  ///< inner loop walks y (use when the look direction is mostly x)
};

/// Chooses the loop order for a pulse: walk the image axis most orthogonal
/// to the ground-projected look direction. With the radar "mostly
/// horizontally distanced from the imaging centre" (paper Fig. 6), i.e.
/// look direction along x, iterating along y first yields similar r values.
[[nodiscard]] inline LoopOrder choose_loop_order(const Vec3& radar_position,
                                                 const Vec3& scene_centre) {
  const Vec3 look = scene_centre - radar_position;
  return std::abs(look.x) >= std::abs(look.y) ? LoopOrder::kYInner
                                              : LoopOrder::kXInner;
}

/// Analytic expectation of how many consecutive inner-loop backprojections
/// hit the same range bin (the paper's 5 -> 17 locality analysis, §4.3).
///
/// For a pixel step of `pixel_spacing` along the inner-loop axis, the range
/// change per step is |cos(theta)| * spacing (theta: angle between the look
/// direction and the step direction). One range bin spans `bin_spacing`
/// metres, so on average bin_spacing / (|cos(theta)| * spacing) consecutive
/// pixels share a bin. The paper's scenario — edge length 1/10 of the
/// scene-to-radar distance — gives ~5 without reordering and ~17 with it.
double expected_consecutive_same_bin(const Vec3& radar_position,
                                     const ImageGrid& grid,
                                     double bin_spacing_m, LoopOrder order);

}  // namespace sarbp::geometry
