// Output image grid: maps pixel indices to scene positions.
#pragma once

#include "common/check.h"
#include "common/types.h"
#include "geometry/vec3.h"

namespace sarbp::geometry {

/// Flat (z = 0 plane) imaging grid centred on a scene reference point.
/// Pixel (0, 0) is the grid's lower-left corner; x is the fast dimension.
class ImageGrid {
 public:
  ImageGrid(Index width, Index height, double pixel_spacing_m,
            Vec3 centre = {}) noexcept
      : width_(width),
        height_(height),
        spacing_(pixel_spacing_m),
        centre_(centre) {}

  [[nodiscard]] Index width() const { return width_; }
  [[nodiscard]] Index height() const { return height_; }
  [[nodiscard]] double spacing() const { return spacing_; }
  [[nodiscard]] const Vec3& centre() const { return centre_; }

  /// Scene position of pixel (ix, iy): centre + spacing * (ix - w/2, iy - h/2).
  [[nodiscard]] Vec3 position(Index ix, Index iy) const {
    return {centre_.x + spacing_ * (static_cast<double>(ix) -
                                    0.5 * static_cast<double>(width_ - 1)),
            centre_.y + spacing_ * (static_cast<double>(iy) -
                                    0.5 * static_cast<double>(height_ - 1)),
            centre_.z};
  }

  /// Scene position at continuous pixel coordinates (block centres fall on
  /// half-integers).
  [[nodiscard]] Vec3 position_f(double fx, double fy) const {
    return {centre_.x + spacing_ * (fx - 0.5 * static_cast<double>(width_ - 1)),
            centre_.y + spacing_ * (fy - 0.5 * static_cast<double>(height_ - 1)),
            centre_.z};
  }

  /// Continuous pixel x-coordinate of a scene x position (inverse map).
  [[nodiscard]] double pixel_x(double scene_x) const {
    return (scene_x - centre_.x) / spacing_ +
           0.5 * static_cast<double>(width_ - 1);
  }
  [[nodiscard]] double pixel_y(double scene_y) const {
    return (scene_y - centre_.y) / spacing_ +
           0.5 * static_cast<double>(height_ - 1);
  }

  /// Physical edge length of the imaged region along x.
  [[nodiscard]] double extent_x() const {
    return spacing_ * static_cast<double>(width_);
  }
  [[nodiscard]] double extent_y() const {
    return spacing_ * static_cast<double>(height_);
  }

 private:
  Index width_;
  Index height_;
  double spacing_;
  Vec3 centre_;
};

}  // namespace sarbp::geometry
