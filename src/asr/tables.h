// Strength-reduced per-block lookup tables (paper Fig. 3(b) line 02:
// "pre-compute A, B, C, Phi, Psi and Gamma").
//
// After the quadratic approximation r~(l, m) (quadratic.h), both inner-loop
// math functions collapse to table reads plus a recurrence:
//
//   bin(l, m) = A[l] + B[m] + l * C[m]                       (pure FMA)
//   arg(l, m) = Phi[l] * Psi[m] * gamma,   gamma *= Gamma[m] (complex muls)
//
// with l, m the 0-based indices inside the block. The centred-expansion
// bookkeeping (paper footnote 4) is folded into the tables themselves:
// A/Phi absorb the block-centre offset along l, B/Psi absorb it along m and
// the cross-term's l-offset contribution.
//
// The tables are *computed in double* — including the mod-2*pi reduction of
// the huge 2*pi*k*f0 constant phase — and *stored in float*, which is what
// lets the inner loop run entirely in single precision at full accuracy
// (paper §3.5, §5.2.1).
#pragma once

#include "asr/quadratic.h"
#include "common/aligned.h"
#include "common/types.h"

namespace sarbp::asr {

/// Reusable workspace for one block's tables; resize is amortized away by
/// reuse across blocks/pulses.
struct BlockTables {
  Index width = 0;   ///< L: block extent along l (the inner/x loop)
  Index height = 0;  ///< M: block extent along m (the outer/y loop)

  AlignedVector<float> bin_a;  ///< [L]
  AlignedVector<float> bin_b;  ///< [M]
  AlignedVector<float> bin_c;  ///< [M]

  AlignedVector<float> phi_re, phi_im;  ///< [L]
  AlignedVector<float> psi_re, psi_im;  ///< [M]
  AlignedVector<float> gam_re, gam_im;  ///< [M] step factor Gamma[m]

  void resize(Index w, Index h);
};

/// Fills `tables` for one (block, pulse) pair.
///   q:            range quadratic about the block centre (centred indices)
///   start_range:  r0 — slant range of range bin 0 for this pulse
///   bin_spacing:  dr
///   two_pi_k:     2*pi*k with k the carrier wavenumber factor
void build_block_tables(const Quadratic2D& q, double start_range,
                        double bin_spacing, double two_pi_k, Index width,
                        Index height, BlockTables& tables);

/// Fast table construction (paper §4.4: "it is important to also vectorize
/// the pre-computation step"): the phases of Phi/Psi/Gamma are quadratic
/// (or linear) in the index, so each table follows a two-level complex
/// recurrence — U[l+1] = U[l]*V[l], V[l+1] = V[l]*W — seeded by three exact
/// complex exponentials per axis. All per-entry sin/cos calls disappear;
/// the double-precision recurrence (with periodic renormalization) holds
/// the error at the float-storage floor for any practical block size.
/// Produces tables interchangeable with build_block_tables.
void build_block_tables_fast(const Quadratic2D& q, double start_range,
                             double bin_spacing, double two_pi_k, Index width,
                             Index height, BlockTables& tables);

/// Reconstructs bin(l, m) from the tables — the scalar identity the SIMD
/// kernels must match; used by tests.
[[nodiscard]] inline float table_bin(const BlockTables& t, Index l, Index m) {
  return t.bin_a[static_cast<std::size_t>(l)] +
         t.bin_b[static_cast<std::size_t>(m)] +
         static_cast<float>(l) * t.bin_c[static_cast<std::size_t>(m)];
}

}  // namespace sarbp::asr
