#include "asr/tables.h"

#include <cmath>
#include <complex>

#include "common/check.h"
#include "signal/trig.h"

namespace sarbp::asr {
namespace {

/// Unit complex number for a (large) phase, reduced in double.
std::complex<double> unit_phase(double phase) {
  const double reduced = signal::reduce_to_pi(phase);
  return {std::cos(reduced), std::sin(reduced)};
}

/// Fills re/im arrays with exp(i*(c0 + c1*j + c2*j^2)), j = 0..n-1, via the
/// two-level recurrence U *= V; V *= W with W = exp(2i*c2). Three exact
/// exponentials total; |U| is renormalized every 64 steps to pin the
/// magnitude drift far below float resolution.
void quadratic_phase_table(double c0, double c1, double c2, Index n,
                           float* out_re, float* out_im) {
  std::complex<double> u = unit_phase(c0);
  std::complex<double> v = unit_phase(c1 + c2);  // phase(1) - phase(0)
  const std::complex<double> w = unit_phase(2.0 * c2);
  for (Index j = 0; j < n; ++j) {
    out_re[j] = static_cast<float>(u.real());
    out_im[j] = static_cast<float>(u.imag());
    u *= v;
    v *= w;
    if ((j & 63) == 63) {
      u /= std::abs(u);
      v /= std::abs(v);
    }
  }
}

}  // namespace

void BlockTables::resize(Index w, Index h) {
  ensure(w > 0 && h > 0, "BlockTables: block must be non-empty");
  width = w;
  height = h;
  const auto lw = static_cast<std::size_t>(w);
  const auto lh = static_cast<std::size_t>(h);
  bin_a.resize(lw);
  bin_b.resize(lh);
  bin_c.resize(lh);
  phi_re.resize(lw);
  phi_im.resize(lw);
  psi_re.resize(lh);
  psi_im.resize(lh);
  gam_re.resize(lh);
  gam_im.resize(lh);
}

void build_block_tables(const Quadratic2D& q, double start_range,
                        double bin_spacing, double two_pi_k, Index width,
                        Index height, BlockTables& tables) {
  tables.resize(width, height);
  const double inv_dr = 1.0 / bin_spacing;
  // Centred offset of index 0 along each axis (expansion is about the
  // block centre; paper footnote 4).
  const double l0 = -0.5 * static_cast<double>(width - 1);
  const double m0 = -0.5 * static_cast<double>(height - 1);

  for (Index l = 0; l < width; ++l) {
    const double lc = static_cast<double>(l) + l0;
    const double range_l = q.f0 + q.ax * lc + q.bx * lc * lc;
    tables.bin_a[static_cast<std::size_t>(l)] =
        static_cast<float>((range_l - start_range) * inv_dr);
    // Phi[l] carries the enormous constant phase 2*pi*k*f0; reduce in
    // double *before* the trig evaluation — this is the step the baseline
    // pays for on every pixel and ASR pays for only once per block column.
    const double phase = signal::reduce_to_pi(two_pi_k * range_l);
    tables.phi_re[static_cast<std::size_t>(l)] = static_cast<float>(std::cos(phase));
    tables.phi_im[static_cast<std::size_t>(l)] = static_cast<float>(std::sin(phase));
  }

  for (Index m = 0; m < height; ++m) {
    const double mc = static_cast<double>(m) + m0;
    const double cross = q.cxy * mc;  // d(bin)/dl contribution per unit l
    tables.bin_c[static_cast<std::size_t>(m)] = static_cast<float>(cross * inv_dr);
    // B absorbs the l-offset part of the cross term: l_c = l + l0.
    const double range_m = q.ay * mc + q.by * mc * mc + cross * l0;
    tables.bin_b[static_cast<std::size_t>(m)] = static_cast<float>(range_m * inv_dr);
    const double psi_phase = signal::reduce_to_pi(two_pi_k * range_m);
    tables.psi_re[static_cast<std::size_t>(m)] = static_cast<float>(std::cos(psi_phase));
    tables.psi_im[static_cast<std::size_t>(m)] = static_cast<float>(std::sin(psi_phase));
    const double gam_phase = signal::reduce_to_pi(two_pi_k * cross);
    tables.gam_re[static_cast<std::size_t>(m)] = static_cast<float>(std::cos(gam_phase));
    tables.gam_im[static_cast<std::size_t>(m)] = static_cast<float>(std::sin(gam_phase));
  }
}

void build_block_tables_fast(const Quadratic2D& q, double start_range,
                             double bin_spacing, double two_pi_k, Index width,
                             Index height, BlockTables& tables) {
  tables.resize(width, height);
  const double inv_dr = 1.0 / bin_spacing;
  const double l0 = -0.5 * static_cast<double>(width - 1);
  const double m0 = -0.5 * static_cast<double>(height - 1);

  // --- l axis: range_l(j) = f0 + ax*(j+l0) + bx*(j+l0)^2, j = 0..width-1.
  const double l_const = q.f0 + q.ax * l0 + q.bx * l0 * l0;
  const double l_lin = q.ax + 2.0 * q.bx * l0;
  {
    // bin_a: second-order additive recurrence (the §3.2 pre-computation).
    double value = (l_const - start_range) * inv_dr;
    double delta = (l_lin + q.bx) * inv_dr;  // value(1) - value(0)
    const double delta2 = 2.0 * q.bx * inv_dr;
    for (Index l = 0; l < width; ++l) {
      tables.bin_a[static_cast<std::size_t>(l)] = static_cast<float>(value);
      value += delta;
      delta += delta2;
    }
    quadratic_phase_table(two_pi_k * l_const, two_pi_k * l_lin,
                          two_pi_k * q.bx, width, tables.phi_re.data(),
                          tables.phi_im.data());
  }

  // --- m axis: range_m(j) = a'*(j+m0) + by*(j+m0)^2 with the cross term's
  // l-offset folded in (a' = ay + cxy*l0), plus the linear Gamma phase.
  const double a_eff = q.ay + q.cxy * l0;
  const double m_const = a_eff * m0 + q.by * m0 * m0;
  const double m_lin = a_eff + 2.0 * q.by * m0;
  {
    double value = m_const * inv_dr;
    double delta = (m_lin + q.by) * inv_dr;
    const double delta2 = 2.0 * q.by * inv_dr;
    double cross = q.cxy * m0 * inv_dr;
    const double cross_step = q.cxy * inv_dr;
    for (Index m = 0; m < height; ++m) {
      tables.bin_b[static_cast<std::size_t>(m)] = static_cast<float>(value);
      tables.bin_c[static_cast<std::size_t>(m)] = static_cast<float>(cross);
      value += delta;
      delta += delta2;
      cross += cross_step;
    }
    quadratic_phase_table(two_pi_k * m_const, two_pi_k * m_lin,
                          two_pi_k * q.by, height, tables.psi_re.data(),
                          tables.psi_im.data());
    quadratic_phase_table(two_pi_k * q.cxy * m0, two_pi_k * q.cxy, 0.0,
                          height, tables.gam_re.data(),
                          tables.gam_im.data());
  }
}

}  // namespace sarbp::asr

